package satori

import (
	"errors"
	"testing"

	"satori/internal/core"
	"satori/internal/sim"
)

// churnSession builds a 2-job session whose policy is a SATORI engine,
// optionally on the FullRefit proxy path, and runs it long enough to
// accumulate GP observations.
func churnSession(t *testing.T, fullRefit bool) *Session {
	t.Helper()
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(SessionConfig{
		Workloads: jobs[:2],
		Seed:      11,
		Policy: func(p Platform) (Policy, error) {
			return core.New(p.Space(), core.Options{Seed: 11, FullRefit: fullRefit})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return sess
}

// testChurnReinit is the membership-change contract, shared by the
// incremental and FullRefit engine paths: after AddWorkload /
// RemoveWorkload the isolated baselines are re-measured at the new job
// count, the engine is a fresh instance with an empty observation window
// (no stale-job observations can leak into the GP — its inputs are
// per-(resource, job) coordinates), and the next observation carries
// BaselineReset.
func testChurnReinit(t *testing.T, fullRefit bool) {
	sess := churnSession(t, fullRefit)
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}

	before, ok := sess.loop.Policy().(*core.Engine)
	if !ok {
		t.Fatalf("policy is %T, want *core.Engine", sess.loop.Policy())
	}
	if before.Records().Len() == 0 {
		t.Fatal("warm-up produced no observations; test is vacuous")
	}

	if err := sess.AddWorkload(jobs[2]); err != nil {
		t.Fatal(err)
	}
	if sess.NumJobs() != 3 || sess.SpaceInfo().Jobs != 3 {
		t.Fatalf("job set after AddWorkload: %d jobs, space %d", sess.NumJobs(), sess.SpaceInfo().Jobs)
	}
	if len(sess.loop.Isolated()) != 3 {
		t.Fatalf("isolated baselines not re-measured: %d entries, want 3", len(sess.loop.Isolated()))
	}
	after, ok := sess.loop.Policy().(*core.Engine)
	if !ok {
		t.Fatalf("rebuilt policy is %T, want *core.Engine", sess.loop.Policy())
	}
	if after == before {
		t.Fatal("engine not rebuilt after AddWorkload")
	}
	if n := after.Records().Len(); n != 0 {
		t.Fatalf("observation window not reset: %d stale records", n)
	}
	st, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !st.BaselineReset {
		t.Error("first observation after AddWorkload must carry BaselineReset")
	}
	if len(st.IPS) != 3 || len(st.Speedups) != 3 {
		t.Fatalf("post-churn status not re-dimensioned: %d IPS", len(st.IPS))
	}
	for i := 0; i < 10; i++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Departure path: same contract in the shrink direction.
	shrinkBefore := sess.loop.Policy().(*core.Engine)
	if err := sess.RemoveWorkload(1); err != nil {
		t.Fatal(err)
	}
	if sess.NumJobs() != 2 || len(sess.loop.Isolated()) != 2 {
		t.Fatalf("after RemoveWorkload: %d jobs, %d baselines", sess.NumJobs(), len(sess.loop.Isolated()))
	}
	shrinkAfter := sess.loop.Policy().(*core.Engine)
	if shrinkAfter == shrinkBefore || shrinkAfter.Records().Len() != 0 {
		t.Fatal("engine not freshly rebuilt after RemoveWorkload")
	}
	st, err = sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !st.BaselineReset || len(st.IPS) != 2 {
		t.Fatalf("post-departure observation wrong: reset=%v len=%d", st.BaselineReset, len(st.IPS))
	}
}

func TestChurnReinitIncremental(t *testing.T) { testChurnReinit(t, false) }
func TestChurnReinitFullRefit(t *testing.T)   { testChurnReinit(t, true) }

// TestChurnRejectsStaleConfig: a config captured before churn must be
// rejected by the platform with the typed shape error, end to end
// through the session's platform.
func TestChurnRejectsStaleConfig(t *testing.T) {
	sess := churnSession(t, false)
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	stale := sess.platform.Current()
	if err := sess.AddWorkload(jobs[2]); err != nil {
		t.Fatal(err)
	}
	var shapeErr *sim.ConfigShapeError
	if err := sess.platform.Apply(stale); !errors.As(err, &shapeErr) {
		t.Fatalf("stale config accepted after churn: %v", err)
	}
	// The session keeps stepping regardless: Step ignores a failed Apply
	// and keeps the live configuration.
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
}

// TestChurnDefaultPolicyRebuild covers the default rebuild closure (no
// custom factory): churn must rebuild the default engine on the live
// space too.
func TestChurnDefaultPolicyRebuild(t *testing.T) {
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(SessionConfig{Workloads: jobs[:2], Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.AddWorkload(jobs[3]); err != nil {
		t.Fatal(err)
	}
	eng, ok := sess.loop.Policy().(*core.Engine)
	if !ok {
		t.Fatalf("default rebuild produced %T", sess.loop.Policy())
	}
	if eng.Records().Len() != 0 {
		t.Fatal("default rebuild kept stale observations")
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
}
