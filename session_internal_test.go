package satori

import (
	"testing"

	"satori/internal/metrics"
)

// loopTM/loopFM expose the loop's resolved metric choices to the
// metric-selection regression tests.
func (s *Session) loopTM() metrics.ThroughputMetric { tm, _ := s.loop.Objectives(); return tm }
func (s *Session) loopFM() metrics.FairnessMetric   { _, fm := s.loop.Objectives(); return fm }

// Regression for the metric-selection aliasing bug: GeoMeanSpeedup and
// JainIndex used to share the enum zero value with "unset", so asking
// for exactly this pairing was silently rewritten to SumIPS + Jain.
func TestNewSessionHonorsExplicitMetrics(t *testing.T) {
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(SessionConfig{
		Workloads:        jobs[:3],
		Seed:             7,
		ThroughputMetric: GeoMeanSpeedup,
		FairnessMetric:   JainIndex,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.loopTM() != metrics.GeoMeanSpeedup {
		t.Errorf("throughput metric rewritten to %v, want geomean", sess.loopTM())
	}
	if sess.loopFM() != metrics.JainIndex {
		t.Errorf("fairness metric rewritten to %v, want jain", sess.loopFM())
	}
}

// The zero-valued config must still resolve to the paper's evaluation
// defaults (SumIPS + JainIndex), now via the Default* sentinels.
func TestNewSessionDefaultMetrics(t *testing.T) {
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(SessionConfig{Workloads: jobs[:2], Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sess.loopTM() != metrics.SumIPS || sess.loopFM() != metrics.JainIndex {
		t.Errorf("defaults resolved to %v/%v, want sum-ips/jain", sess.loopTM(), sess.loopFM())
	}
}
