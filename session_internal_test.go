package satori

import (
	"testing"

	"satori/internal/metrics"
)

// Regression for the metric-selection aliasing bug: GeoMeanSpeedup and
// JainIndex used to share the enum zero value with "unset", so asking
// for exactly this pairing was silently rewritten to SumIPS + Jain.
func TestNewSessionHonorsExplicitMetrics(t *testing.T) {
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(SessionConfig{
		Workloads:        jobs[:3],
		Seed:             7,
		ThroughputMetric: GeoMeanSpeedup,
		FairnessMetric:   JainIndex,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.tm != metrics.GeoMeanSpeedup {
		t.Errorf("throughput metric rewritten to %v, want geomean", sess.tm)
	}
	if sess.fm != metrics.JainIndex {
		t.Errorf("fairness metric rewritten to %v, want jain", sess.fm)
	}
}

// The zero-valued config must still resolve to the paper's evaluation
// defaults (SumIPS + JainIndex), now via the Default* sentinels.
func TestNewSessionDefaultMetrics(t *testing.T) {
	jobs, err := Suite(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(SessionConfig{Workloads: jobs[:2], Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sess.tm != metrics.SumIPS || sess.fm != metrics.JainIndex {
		t.Errorf("defaults resolved to %v/%v, want sum-ips/jain", sess.tm, sess.fm)
	}
}
