package satori_test

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"satori"
	"satori/internal/rdt"
	"satori/internal/resource"
)

// TestResctrlSessionEndToEnd drives a full SATORI session over the
// resctrl backend against a scratch root: the complete Algorithm-1 loop
// (sample → score → decide → apply → periodic baseline refresh) runs
// hermetically, and after every tick the control-group files on disk
// must equal the compiled form of exactly the configuration the status
// reports — the resctrl tree is the partition, tick for tick.
func TestResctrlSessionEndToEnd(t *testing.T) {
	names := []string{"blackscholes", "canneal", "streamcluster"}
	isolated := []float64{2.5e9, 1.8e9, 2.1e9}
	// A short synthetic IPS recording; it replays in a loop, so 120
	// ticks cross the 100-tick equalization boundary with a 7-row trace.
	rows := [][]float64{
		{1.2e9, 0.9e9, 1.0e9},
		{1.3e9, 0.8e9, 1.1e9},
		{1.1e9, 1.0e9, 0.9e9},
		{1.4e9, 0.7e9, 1.2e9},
		{1.0e9, 1.1e9, 0.8e9},
		{1.2e9, 0.9e9, 1.1e9},
		{1.3e9, 1.0e9, 1.0e9},
	}
	sampler, err := rdt.NewTraceSampler(isolated, rows)
	if err != nil {
		t.Fatal(err)
	}
	machine := satori.DefaultMachine()
	writer := rdt.ResctrlWriter{Root: t.TempDir()}
	platform, err := rdt.NewResctrlPlatform(machine, names, writer, sampler)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := satori.NewSessionOn(platform, satori.SessionConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.JobNames(); len(got) != 3 || got[1] != "canneal" {
		t.Fatalf("JobNames = %v", got)
	}

	changed := 0
	var prev satori.Config
	var sawReset bool
	for tick := 1; tick <= 120; tick++ {
		st, err := sess.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if st.RejectedApply != nil {
			t.Fatalf("tick %d: rejected apply: %v", tick, st.RejectedApply)
		}
		if st.ResetErr != nil {
			t.Fatalf("tick %d: baseline refresh failed: %v", tick, st.ResetErr)
		}
		if tick == 101 && st.BaselineReset {
			sawReset = true
		}
		plan, err := rdt.Compile(platform.Space(), st.Config)
		if err != nil {
			t.Fatalf("tick %d: status config does not compile: %v", tick, err)
		}
		for j := range names {
			got, err := writer.ReadGroup(j)
			if err != nil {
				t.Fatalf("tick %d job %d: %v", tick, j, err)
			}
			want := plan.Jobs[j]
			if got.CATMask != want.CATMask || got.MBAPercent != want.MBAPercent {
				t.Fatalf("tick %d job %d: resctrl tree has mask %#x MB %d%%, status config compiles to mask %#x MB %d%%",
					tick, j, got.CATMask, got.MBAPercent, want.CATMask, want.MBAPercent)
			}
			if rdt.FormatCPUList(got.CPUSet) != rdt.FormatCPUList(want.CPUSet) {
				t.Fatalf("tick %d job %d: cpus_list %q, want %q",
					tick, j, rdt.FormatCPUList(got.CPUSet), rdt.FormatCPUList(want.CPUSet))
			}
		}
		if tick > 1 && !st.Config.Equal(prev) {
			changed++
		}
		prev = st.Config.Clone()
	}
	if changed == 0 {
		t.Error("the engine never moved the partition in 120 ticks")
	}
	if !sawReset {
		t.Error("no baseline refresh observed at the 100-tick equalization boundary")
	}
	sum := sess.Summary()
	if sum.Ticks != 120 || sum.RejectedApplies != 0 {
		t.Errorf("summary = %+v, want 120 ticks and no rejections", sum)
	}

	// The backend's job set is fixed: churn must be refused with the
	// typed capability error, and the session must keep running.
	w, err := satori.WorkloadByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AddWorkload(w); err == nil {
		t.Error("AddWorkload succeeded on a churn-incapable backend")
	}
	if _, err := sess.Step(); err != nil {
		t.Errorf("session unusable after refused churn: %v", err)
	}
}

// TestResctrlClusteredEndToEnd breaks the one-job-one-CLOS wall
// hermetically: six jobs on a resctrl tree advertising only four classes
// of service (three usable groups — the root pins CLOS0). Per-job
// operation must fail preflight with the typed *rdt.CLOSLimitError;
// clustered SATORI at K=3 must run the full loop using at most three
// control-group directories, tick for tick.
func TestResctrlClusteredEndToEnd(t *testing.T) {
	names := []string{"blackscholes", "canneal", "streamcluster", "swaptions", "dedup", "ferret"}
	isolated := []float64{2.5e9, 1.8e9, 2.1e9, 2.4e9, 1.9e9, 2.0e9}
	rows := [][]float64{
		{1.2e9, 0.9e9, 1.0e9, 1.3e9, 0.8e9, 1.1e9},
		{1.3e9, 0.8e9, 1.1e9, 1.2e9, 0.9e9, 1.0e9},
		{1.1e9, 1.0e9, 0.9e9, 1.4e9, 0.7e9, 1.2e9},
		{1.4e9, 0.7e9, 1.2e9, 1.1e9, 1.0e9, 0.9e9},
		{1.0e9, 1.1e9, 0.8e9, 1.2e9, 0.9e9, 1.1e9},
	}
	newSampler := func() rdt.Sampler {
		s, err := rdt.NewTraceSampler(isolated, rows)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "info", "L3"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "info", "L3", "num_closids"), []byte("4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	machine := satori.DefaultMachine()
	writer := rdt.ResctrlWriter{Root: root}

	// Per-job operation: 6 jobs > 3 usable CLOS — loud typed preflight.
	_, err := rdt.NewResctrlPlatform(machine, names, writer, newSampler())
	var lim *rdt.CLOSLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("ungrouped construction = %v, want *rdt.CLOSLimitError", err)
	}
	if lim.Need != 6 || lim.Have != 3 {
		t.Fatalf("CLOSLimitError = %+v, want Need=6 Have=3", lim)
	}

	// Clustered: bootstrap the platform on the same grouping the
	// classifier starts from, then run clustered SATORI at K=3.
	const k = 3
	platform, err := rdt.NewResctrlPlatformGrouped(machine, names, writer, newSampler(),
		resource.RoundRobinGrouping(len(names), k))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := satori.NewSessionOn(platform, satori.SessionConfig{
		Policy: satori.NewClusteredSatoriPolicy(k, satori.EngineOptions{Seed: 11}),
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	countGroups := func() int {
		t.Helper()
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if !e.IsDir() || !strings.HasPrefix(e.Name(), "satori-job") {
				continue
			}
			if _, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "satori-job")); err == nil {
				n++
			}
		}
		return n
	}
	for tick := 1; tick <= 120; tick++ {
		st, err := sess.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if st.RejectedApply != nil {
			t.Fatalf("tick %d: rejected apply: %v", tick, st.RejectedApply)
		}
		if n := countGroups(); n > k {
			t.Fatalf("tick %d: %d control groups on disk, CLOS budget is %d", tick, n, k)
		}
	}
	g := platform.Grouping()
	if g == nil || g.Jobs() != len(names) || g.Clusters > k {
		t.Fatalf("final grouping = %v, want %d jobs over ≤ %d clusters", g, len(names), k)
	}
	// The on-disk groups must equal the grouped compile of the installed
	// configuration — the resctrl tree is the cluster partition.
	plan, err := rdt.CompileGrouped(platform.Space(), platform.Current(), g)
	if err != nil {
		t.Fatal(err)
	}
	for c := range plan.Jobs {
		got, err := writer.ReadGroup(c)
		if err != nil {
			t.Fatalf("cluster %d: %v", c, err)
		}
		want := plan.Jobs[c]
		if got.CATMask != want.CATMask || got.MBAPercent != want.MBAPercent {
			t.Fatalf("cluster %d: tree has mask %#x MB %d%%, config compiles to mask %#x MB %d%%",
				c, got.CATMask, got.MBAPercent, want.CATMask, want.MBAPercent)
		}
	}
}
