package satori_test

import (
	"testing"

	"satori"
	"satori/internal/rdt"
)

// TestResctrlSessionEndToEnd drives a full SATORI session over the
// resctrl backend against a scratch root: the complete Algorithm-1 loop
// (sample → score → decide → apply → periodic baseline refresh) runs
// hermetically, and after every tick the control-group files on disk
// must equal the compiled form of exactly the configuration the status
// reports — the resctrl tree is the partition, tick for tick.
func TestResctrlSessionEndToEnd(t *testing.T) {
	names := []string{"blackscholes", "canneal", "streamcluster"}
	isolated := []float64{2.5e9, 1.8e9, 2.1e9}
	// A short synthetic IPS recording; it replays in a loop, so 120
	// ticks cross the 100-tick equalization boundary with a 7-row trace.
	rows := [][]float64{
		{1.2e9, 0.9e9, 1.0e9},
		{1.3e9, 0.8e9, 1.1e9},
		{1.1e9, 1.0e9, 0.9e9},
		{1.4e9, 0.7e9, 1.2e9},
		{1.0e9, 1.1e9, 0.8e9},
		{1.2e9, 0.9e9, 1.1e9},
		{1.3e9, 1.0e9, 1.0e9},
	}
	sampler, err := rdt.NewTraceSampler(isolated, rows)
	if err != nil {
		t.Fatal(err)
	}
	machine := satori.DefaultMachine()
	writer := rdt.ResctrlWriter{Root: t.TempDir()}
	platform, err := rdt.NewResctrlPlatform(machine, names, writer, sampler)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := satori.NewSessionOn(platform, satori.SessionConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.JobNames(); len(got) != 3 || got[1] != "canneal" {
		t.Fatalf("JobNames = %v", got)
	}

	changed := 0
	var prev satori.Config
	var sawReset bool
	for tick := 1; tick <= 120; tick++ {
		st, err := sess.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if st.RejectedApply != nil {
			t.Fatalf("tick %d: rejected apply: %v", tick, st.RejectedApply)
		}
		if st.ResetErr != nil {
			t.Fatalf("tick %d: baseline refresh failed: %v", tick, st.ResetErr)
		}
		if tick == 101 && st.BaselineReset {
			sawReset = true
		}
		plan, err := rdt.Compile(platform.Space(), st.Config)
		if err != nil {
			t.Fatalf("tick %d: status config does not compile: %v", tick, err)
		}
		for j := range names {
			got, err := writer.ReadGroup(j)
			if err != nil {
				t.Fatalf("tick %d job %d: %v", tick, j, err)
			}
			want := plan.Jobs[j]
			if got.CATMask != want.CATMask || got.MBAPercent != want.MBAPercent {
				t.Fatalf("tick %d job %d: resctrl tree has mask %#x MB %d%%, status config compiles to mask %#x MB %d%%",
					tick, j, got.CATMask, got.MBAPercent, want.CATMask, want.MBAPercent)
			}
			if rdt.FormatCPUList(got.CPUSet) != rdt.FormatCPUList(want.CPUSet) {
				t.Fatalf("tick %d job %d: cpus_list %q, want %q",
					tick, j, rdt.FormatCPUList(got.CPUSet), rdt.FormatCPUList(want.CPUSet))
			}
		}
		if tick > 1 && !st.Config.Equal(prev) {
			changed++
		}
		prev = st.Config.Clone()
	}
	if changed == 0 {
		t.Error("the engine never moved the partition in 120 ticks")
	}
	if !sawReset {
		t.Error("no baseline refresh observed at the 100-tick equalization boundary")
	}
	sum := sess.Summary()
	if sum.Ticks != 120 || sum.RejectedApplies != 0 {
		t.Errorf("summary = %+v, want 120 ticks and no rejections", sum)
	}

	// The backend's job set is fixed: churn must be refused with the
	// typed capability error, and the session must keep running.
	w, err := satori.WorkloadByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AddWorkload(w); err == nil {
		t.Error("AddWorkload succeeded on a churn-incapable backend")
	}
	if _, err := sess.Step(); err != nil {
		t.Errorf("session unusable after refused churn: %v", err)
	}
}
