package satori

import (
	"satori/internal/cluster"
	"satori/internal/core"
	"satori/internal/harness"
	"satori/internal/policies/copart"
	"satori/internal/policies/dcat"
	"satori/internal/policies/oracle"
	"satori/internal/policies/parties"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
)

// EngineOptions re-exports the SATORI engine configuration.
type EngineOptions = core.Options

// SchedulerOptions re-exports the goal-weight scheduler configuration.
type SchedulerOptions = core.SchedulerOptions

// Weight modes (Sec. III-C).
const (
	WeightsDynamic       = core.WeightsDynamic
	WeightsStatic        = core.WeightsStatic
	WeightsFavorStronger = core.WeightsFavorStronger
)

// Engine is the SATORI BO engine (policy implementation).
type Engine = core.Engine

// NewSatoriPolicy builds full SATORI with dynamic goal prioritization.
// Pass the result as SessionConfig.Policy.
func NewSatoriPolicy(opt EngineOptions) func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		return core.New(p.Space(), opt)
	}
}

// NewStaticSatoriPolicy builds SATORI with fixed weights: wT = 1 is
// Throughput SATORI, wT = 0 is Fairness SATORI, wT = 0.5 is the
// no-dynamic-prioritization variant.
func NewStaticSatoriPolicy(wT float64) func(Platform) (Policy, error) {
	return NewSatoriPolicy(EngineOptions{
		Scheduler:   SchedulerOptions{Mode: WeightsStatic},
		StaticWT:    wT,
		StaticWTSet: true,
	})
}

// NewRandomPolicy builds the Random Search baseline.
func NewRandomPolicy(seed uint64) func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		return policy.NewRandom(p.Space(), seed), nil
	}
}

// NewStaticPolicy builds the hold-current-partition (unmanaged) baseline.
func NewStaticPolicy() func(Platform) (Policy, error) {
	return func(Platform) (Policy, error) { return policy.Static{}, nil }
}

// NewDCATPolicy builds the dCAT baseline (throughput-oriented dynamic LLC
// way partitioning).
func NewDCATPolicy() func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		return dcat.New(p.Space(), dcat.Options{})
	}
}

// NewCoPartPolicy builds the CoPart baseline (fairness-oriented dual-FSM
// partitioning of LLC ways and memory bandwidth).
func NewCoPartPolicy() func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		return copart.New(p.Space(), copart.Options{})
	}
}

// NewPARTIESPolicy builds the adapted-PARTIES baseline (gradient-descent,
// one resource dimension at a time, balanced objective).
func NewPARTIESPolicy() func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		return parties.New(p.Space(), parties.Options{}), nil
	}
}

// NewClusteredSatoriPolicy builds SATORI behind the cluster indirection:
// jobs are classified online (LFOC-style) into at most k clusters and
// the BO engine searches the reduced cluster space, so a co-location
// larger than the machine's CLOS budget still fits — one control group
// per cluster. With k ≥ jobs the behavior is bit-identical to plain
// SATORI. When the platform implements the Grouper capability (both the
// simulator and the resctrl backend do), the grouping is pushed down so
// the hardware layout follows every membership migration.
func NewClusteredSatoriPolicy(k int, opt EngineOptions) func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		g, _ := p.(rdt.Grouper)
		return cluster.New(p.Space(), cluster.Options{
			K:       k,
			Inner:   func(space *resource.Space) (Policy, error) { return core.New(space, opt) },
			Grouper: g,
		})
	}
}

// NewLFOCPolicy builds the standalone LFOC baseline: the same online
// classifier, allocation computed directly from the classes (no search).
func NewLFOCPolicy(k int) func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		g, _ := p.(rdt.Grouper)
		return cluster.NewLFOC(p.Space(), cluster.LFOCOptions{K: k, Grouper: g})
	}
}

// OracleGoal selects a brute-force oracle variant.
type OracleGoal = oracle.Goal

// Oracle goals.
const (
	BalancedOracle   = oracle.Balanced
	ThroughputOracle = oracle.Throughput
	FairnessOracle   = oracle.Fairness
)

// NewOraclePolicy builds a brute-force oracle. It requires a simulated
// platform (oracles read the noise-free model — they are offline,
// practically-infeasible references).
func NewOraclePolicy(goal OracleGoal) func(Platform) (Policy, error) {
	return func(p Platform) (Policy, error) {
		sp, ok := p.(*rdt.SimPlatform)
		if !ok {
			return nil, errNotSimulated
		}
		return oracle.New(goal, sp.Simulator(), oracle.Options{
			ThroughputMetric: SumIPS,
			FairnessMetric:   JainIndex,
		}), nil
	}
}

// NewPolicyByName builds a session policy factory from the shared policy
// name registry — the same table cmd/satori, cmd/fleet and the harness
// use, so every front-end accepts identical names. Unknown names error
// with the sorted list of valid ones. seed parameterizes stochastic
// policies (SATORI's candidate sampling, Random's draw sequence).
func NewPolicyByName(name string, seed uint64) (func(Platform) (Policy, error), error) {
	factory, err := harness.PolicyByName(name)
	if err != nil {
		return nil, err
	}
	return func(p Platform) (Policy, error) {
		sp, ok := p.(*rdt.SimPlatform)
		if !ok {
			return nil, errNotSimulated
		}
		return factory(sp, seed)
	}, nil
}

// PolicyNames lists every registered policy name, sorted.
func PolicyNames() []string { return harness.PolicyNames() }

type notSimulatedError struct{}

func (notSimulatedError) Error() string {
	return "satori: oracle policies need a simulated platform (noise-free model access)"
}

var errNotSimulated = notSimulatedError{}
