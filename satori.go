package satori

import (
	"fmt"

	"satori/internal/core"
	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/stats"
)

// Re-exported model types. These aliases are the public names of the
// engine's data model; the internal packages are implementation detail.
type (
	// MachineSpec describes the partitionable hardware.
	MachineSpec = sim.MachineSpec
	// Workload is a benchmark profile: a looping schedule of phases.
	Workload = sim.Profile
	// Phase is one program phase with its resource sensitivities.
	Phase = sim.Phase
	// Config is a resource partitioning configuration.
	Config = resource.Config
	// Space is a configuration search space.
	Space = resource.Space
	// ResourceKind identifies one partitionable resource.
	ResourceKind = resource.Kind
	// Policy is a partitioning strategy (SATORI or a baseline).
	Policy = policy.Policy
	// Observation is the per-interval input every policy sees.
	Observation = policy.Observation
	// Platform is the control+monitoring surface policies run against.
	Platform = rdt.Platform
	// Weights is SATORI's per-tick goal-weight decomposition.
	Weights = core.Weights
)

// Resource kinds.
const (
	Cores   = resource.Cores
	LLCWays = resource.LLCWays
	MemBW   = resource.MemBW
	Power   = resource.Power
)

// DefaultMachine mirrors the paper's testbed: 10 cores, 11 LLC ways,
// 10 memory-bandwidth steps.
func DefaultMachine() MachineSpec { return sim.DefaultMachine() }

// TickSeconds is the monitoring/decision interval (100 ms, 10 Hz).
const TickSeconds = sim.TickSeconds

// SessionConfig describes a co-location session.
type SessionConfig struct {
	// Machine defaults to DefaultMachine().
	Machine *MachineSpec
	// Workloads are the co-located jobs (required).
	Workloads []*Workload
	// Policy defaults to full SATORI; use the New*Policy constructors
	// to select a baseline. The function receives the session platform
	// so policies needing simulator access (oracles) can be built.
	Policy func(Platform) (Policy, error)
	// Seed makes the session reproducible (default 1).
	Seed uint64
	// NoiseSigma is the relative IPS measurement noise (default ~2%;
	// negative disables noise).
	NoiseSigma float64
	// ThroughputMetric selects the throughput objective. The zero
	// value is the DefaultThroughput sentinel, which resolves to the
	// paper's evaluation default (SumIPS); explicit choices — including
	// GeoMeanSpeedup — are always honored.
	ThroughputMetric metrics.ThroughputMetric
	// FairnessMetric selects the fairness objective. The zero value is
	// the DefaultFairness sentinel, resolving to JainIndex.
	FairnessMetric metrics.FairnessMetric
	// BaselineResetTicks is the isolated-baseline refresh period
	// (default 100 ticks = 10 s, the equalization period).
	BaselineResetTicks int
}

// Objective metric choices, re-exported. The Default* sentinels are the
// zero values and resolve to the paper's evaluation pairing
// (SumIPS + JainIndex, Sec. IV).
const (
	DefaultThroughput   = metrics.DefaultThroughput
	GeoMeanSpeedup      = metrics.GeoMeanSpeedup
	HarmonicMeanSpeedup = metrics.HarmonicMeanSpeedup
	SumIPS              = metrics.SumIPS
	DefaultFairness     = metrics.DefaultFairness
	JainIndex           = metrics.JainIndex
	OneMinusCoV         = metrics.OneMinusCoV
)

// Status is one interval's outcome.
type Status struct {
	// Tick counts completed 100 ms intervals.
	Tick int
	// Time is elapsed seconds.
	Time float64
	// IPS is the observed per-job instructions/second.
	IPS []float64
	// Speedups is IPS over the isolated baselines.
	Speedups []float64
	// Throughput is the normalized system-throughput score in [0, 1].
	Throughput float64
	// Fairness is the normalized fairness score in [0, 1].
	Fairness float64
	// Config is the partition that will run during the next interval.
	Config Config
	// BaselineReset reports whether isolated baselines were just
	// re-measured.
	BaselineReset bool
}

// Session drives one co-location under a policy, one 100 ms interval at a
// time — the library embodiment of Algorithm 1's outer loop.
type Session struct {
	platform   *rdt.SimPlatform
	pol        Policy
	rebuild    func() (Policy, error) // rebuilds the policy on the live space after job churn
	tm         metrics.ThroughputMetric
	fm         metrics.FairnessMetric
	isolated   []float64
	current    Config
	tick       int
	resetEvery int
	pendReset  bool

	accT, accF, accObj stats.Welford
}

// NewSession builds a session on the simulated platform.
func NewSession(cfg SessionConfig) (*Session, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("satori: SessionConfig.Workloads is required")
	}
	machine := sim.DefaultMachine()
	if cfg.Machine != nil {
		machine = *cfg.Machine
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	simulator, err := sim.New(machine, cfg.Workloads, sim.Options{Seed: seed, NoiseSigma: cfg.NoiseSigma})
	if err != nil {
		return nil, err
	}
	platform, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		return nil, err
	}
	// rebuild constructs the policy against the platform's *live* space,
	// so calling it again after job churn yields a policy of the right
	// dimension (factories read p.Space() at call time).
	rebuild := func() (Policy, error) {
		if cfg.Policy != nil {
			return cfg.Policy(platform)
		}
		return core.New(platform.Space(), core.Options{Seed: seed})
	}
	pol, err := rebuild()
	if err != nil {
		return nil, err
	}
	iso, err := platform.MeasureIsolated()
	if err != nil {
		return nil, err
	}
	resetEvery := cfg.BaselineResetTicks
	if resetEvery <= 0 {
		resetEvery = 100
	}
	// The Default* sentinels (the zero values) resolve to the paper's
	// pairing (SumIPS + Jain); explicit choices pass through untouched.
	tm := cfg.ThroughputMetric.Resolve()
	fm := cfg.FairnessMetric.Resolve()
	return &Session{
		platform:   platform,
		pol:        pol,
		rebuild:    rebuild,
		tm:         tm,
		fm:         fm,
		isolated:   iso,
		current:    platform.Current(),
		resetEvery: resetEvery,
		pendReset:  true,
	}, nil
}

// Policy returns the active policy (e.g. to inspect SATORI's weights via
// a type assertion to *Engine).
func (s *Session) Policy() Policy { return s.pol }

// SpaceInfo returns the session's configuration space.
func (s *Session) SpaceInfo() *Space { return s.platform.Space() }

// JobNames labels the co-located jobs.
func (s *Session) JobNames() []string { return s.platform.JobNames() }

// Step advances one 100 ms interval: sample IPS, score both goals, let
// the policy decide, and apply the next partition.
func (s *Session) Step() (Status, error) {
	ips, err := s.platform.Sample()
	if err != nil {
		return Status{}, err
	}
	s.tick++
	speedups := metrics.Speedups(ips, s.isolated)
	t := metrics.NormalizedThroughput(s.tm, ips, s.isolated)
	f := metrics.NormalizedFairness(s.fm, ips, s.isolated)
	s.accT.Add(t)
	s.accF.Add(f)
	s.accObj.Add(0.5*t + 0.5*f)

	obs := Observation{
		Tick: s.tick, Time: float64(s.tick) * TickSeconds,
		IPS: ips, Isolated: s.isolated, Speedups: speedups,
		Throughput: t, Fairness: f,
		BaselineReset: s.pendReset,
	}
	wasReset := s.pendReset
	s.pendReset = false
	next := s.pol.Decide(obs, s.current)
	if err := s.platform.Apply(next); err == nil {
		s.current = s.platform.Current()
	}
	if s.tick%s.resetEvery == 0 {
		if iso, err := s.platform.MeasureIsolated(); err == nil {
			s.isolated = iso
			s.pendReset = true
		}
	}
	return Status{
		Tick: s.tick, Time: float64(s.tick) * TickSeconds,
		IPS: ips, Speedups: speedups,
		Throughput: t, Fairness: f,
		Config:        s.current,
		BaselineReset: wasReset,
	}, nil
}

// ReplaceWorkload swaps the workload running in slot j for a new one —
// a job departure plus a new arrival (Algorithm 1 line 12). Isolated
// baselines are re-measured immediately and the policy sees a
// BaselineReset on its next observation; SATORI requires no other
// re-initialization (Sec. III-C).
func (s *Session) ReplaceWorkload(j int, w *Workload) error {
	if err := s.platform.Simulator().ReplaceJob(j, w); err != nil {
		return err
	}
	iso, err := s.platform.MeasureIsolated()
	if err != nil {
		return err
	}
	s.isolated = iso
	s.pendReset = true
	return nil
}

// NumJobs returns the number of currently co-located jobs.
func (s *Session) NumJobs() int { return s.platform.Simulator().NumJobs() }

// AddWorkload admits a new job into the co-location (a fleet-layer job
// arrival). The configuration space changes dimension, so unlike
// ReplaceWorkload this is a full membership change: the partition is
// re-split, isolated baselines are re-measured, and the policy is rebuilt
// on the new space — the engine re-initialization that a job-count change
// requires (its proxy-model inputs are per-(resource, job) coordinates).
// The session's tick counter and running aggregates carry on.
func (s *Session) AddWorkload(w *Workload) error {
	if err := s.platform.Simulator().AddJob(w); err != nil {
		return err
	}
	return s.reinit()
}

// RemoveWorkload evicts the job in slot j (a departure); jobs above j
// shift down one slot. Like AddWorkload this re-splits the partition,
// re-measures baselines and rebuilds the policy on the shrunken space.
// The last job cannot be removed.
func (s *Session) RemoveWorkload(j int) error {
	if err := s.platform.Simulator().RemoveJob(j); err != nil {
		return err
	}
	return s.reinit()
}

// reinit is the common membership-change tail: recompile the hardware
// plan, rebuild the policy on the live space, and re-record baselines so
// the next observation carries BaselineReset (Algorithm 1 line 13,
// extended to job-count changes).
func (s *Session) reinit() error {
	if err := s.platform.Resync(); err != nil {
		return err
	}
	pol, err := s.rebuild()
	if err != nil {
		return err
	}
	iso, err := s.platform.MeasureIsolated()
	if err != nil {
		return err
	}
	s.pol = pol
	s.isolated = iso
	s.current = s.platform.Current()
	s.pendReset = true
	return nil
}

// Run advances n intervals and returns the last status.
func (s *Session) Run(n int) (Status, error) {
	var last Status
	var err error
	for i := 0; i < n; i++ {
		last, err = s.Step()
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// Summary aggregates the session so far.
type Summary struct {
	// Ticks is the number of completed intervals.
	Ticks int
	// MeanThroughput and MeanFairness are run averages of the
	// normalized scores.
	MeanThroughput, MeanFairness float64
	// MeanObjective is the run average of 0.5·T + 0.5·F.
	MeanObjective float64
}

// Summary returns the running aggregate.
func (s *Session) Summary() Summary {
	return Summary{
		Ticks:          s.tick,
		MeanThroughput: s.accT.Mean(),
		MeanFairness:   s.accF.Mean(),
		MeanObjective:  s.accObj.Mean(),
	}
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("ticks=%d throughput=%.3f fairness=%.3f objective=%.3f",
		s.Ticks, s.MeanThroughput, s.MeanFairness, s.MeanObjective)
}
