package satori

import (
	"fmt"

	"satori/internal/control"
	"satori/internal/core"
	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/slo"
)

// Re-exported model types. These aliases are the public names of the
// engine's data model; the internal packages are implementation detail.
type (
	// MachineSpec describes the partitionable hardware.
	MachineSpec = sim.MachineSpec
	// Workload is a benchmark profile: a looping schedule of phases.
	Workload = sim.Profile
	// Phase is one program phase with its resource sensitivities.
	Phase = sim.Phase
	// Config is a resource partitioning configuration.
	Config = resource.Config
	// Space is a configuration search space.
	Space = resource.Space
	// ResourceKind identifies one partitionable resource.
	ResourceKind = resource.Kind
	// Policy is a partitioning strategy (SATORI or a baseline).
	Policy = policy.Policy
	// Observation is the per-interval input every policy sees.
	Observation = policy.Observation
	// Platform is the control+monitoring surface policies run against.
	// Two backends ship: the simulator (NewSession) and the Linux
	// resctrl filesystem (rdt.ResctrlPlatform via NewSessionOn).
	Platform = rdt.Platform
	// Weights is SATORI's per-tick goal-weight decomposition.
	Weights = core.Weights
	// Status is one interval's outcome (control.Loop's per-tick record).
	Status = control.Status
	// Summary aggregates a session so far, including the count of
	// policy decisions the platform rejected.
	Summary = control.Summary
	// Health is the loop's liveness summary: consecutive failures,
	// circuit-breaker state, and the resilience counters.
	Health = control.Health
	// SLOSpec declares a latency-critical job's service-level objective:
	// target p99, per-request service demand, and offered load. Attach
	// one to Workload.SLO to make a job latency-critical (see
	// internal/slo for the M/M/1 latency model behind it).
	SLOSpec = slo.Spec
	// Grouping maps jobs many-to-one onto clusters — the indirection the
	// clustered policies (NewClusteredSatoriPolicy, NewLFOCPolicy) use to
	// fit co-locations larger than the hardware CLOS budget; resource
	// partitions are then one control group per cluster.
	Grouping = resource.Grouping
)

// Resource kinds.
const (
	Cores   = resource.Cores
	LLCWays = resource.LLCWays
	MemBW   = resource.MemBW
	Power   = resource.Power
)

// DefaultMachine mirrors the paper's testbed: 10 cores, 11 LLC ways,
// 10 memory-bandwidth steps.
func DefaultMachine() MachineSpec { return sim.DefaultMachine() }

// TickSeconds is the monitoring/decision interval (100 ms, 10 Hz).
const TickSeconds = sim.TickSeconds

// SessionConfig describes a co-location session.
type SessionConfig struct {
	// Machine defaults to DefaultMachine().
	Machine *MachineSpec
	// Workloads are the co-located jobs (required by NewSession; unused
	// by NewSessionOn, whose platform already fixes the job set).
	Workloads []*Workload
	// Policy defaults to full SATORI; use the New*Policy constructors
	// to select a baseline. The function receives the session platform
	// so policies needing simulator access (oracles) can be built.
	Policy func(Platform) (Policy, error)
	// Seed makes the session reproducible (default 1).
	Seed uint64
	// NoiseSigma is the relative IPS measurement noise (default ~2%;
	// negative disables noise). Simulator backend only.
	NoiseSigma float64
	// ThroughputMetric selects the throughput objective. The zero
	// value is the DefaultThroughput sentinel, which resolves to the
	// paper's evaluation default (SumIPS); explicit choices — including
	// GeoMeanSpeedup — are always honored.
	ThroughputMetric metrics.ThroughputMetric
	// FairnessMetric selects the fairness objective. The zero value is
	// the DefaultFairness sentinel, resolving to JainIndex.
	FairnessMetric metrics.FairnessMetric
	// BaselineResetTicks is the isolated-baseline refresh period
	// (default 100 ticks = 10 s, the equalization period).
	BaselineResetTicks int
	// Sampled enables Pac-Sim-style sampled simulation: phase-stable
	// intervals are extrapolated instead of evaluated in detail (see
	// control.SamplingOptions). On the simulator backend the outputs are
	// bit-identical to a fully detailed run, so this is purely a
	// per-tick cost knob.
	Sampled bool
	// SLOGoalSwitch arbitrates goals under SLO violations: while a
	// violation persists (hysteretically detected), the fairness channel
	// is re-scored as the worst LC service's attainment so the optimizer
	// prioritizes SLO recovery; the goal reverts once the violation
	// clears. No effect without latency-critical workloads.
	SLOGoalSwitch bool
}

// Objective metric choices, re-exported. The Default* sentinels are the
// zero values and resolve to the paper's evaluation pairing
// (SumIPS + JainIndex, Sec. IV).
const (
	DefaultThroughput   = metrics.DefaultThroughput
	GeoMeanSpeedup      = metrics.GeoMeanSpeedup
	HarmonicMeanSpeedup = metrics.HarmonicMeanSpeedup
	SumIPS              = metrics.SumIPS
	// P99Latency scores tail-latency headroom on the throughput channel
	// (latency-critical sessions only; falls back to SumIPS otherwise).
	P99Latency      = metrics.P99Latency
	DefaultFairness = metrics.DefaultFairness
	JainIndex       = metrics.JainIndex
	OneMinusCoV     = metrics.OneMinusCoV
	// SLOAttainment scores the fraction of LC requests served within
	// their p99 targets on the fairness channel.
	SLOAttainment = metrics.SLOAttainment
)

// Session drives one co-location under a policy, one 100 ms interval at
// a time — a thin facade over internal/control's backend-agnostic loop
// (Algorithm 1's outer loop). NewSession runs it on the simulated
// testbed; NewSessionOn runs the identical loop on any Platform backend,
// e.g. rdt.ResctrlPlatform against /sys/fs/resctrl.
type Session struct {
	loop     *control.Loop
	platform Platform
}

// NewSession builds a session on the simulated platform.
func NewSession(cfg SessionConfig) (*Session, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("satori: SessionConfig.Workloads is required")
	}
	machine := sim.DefaultMachine()
	if cfg.Machine != nil {
		machine = *cfg.Machine
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	simulator, err := sim.New(machine, cfg.Workloads, sim.Options{Seed: seed, NoiseSigma: cfg.NoiseSigma})
	if err != nil {
		return nil, err
	}
	platform, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	return NewSessionOn(platform, cfg)
}

// NewSessionOn builds a session driving an already-constructed Platform
// backend — the deployment path for rdt.ResctrlPlatform (and any future
// backend). cfg.Workloads, Machine and NoiseSigma are ignored (the
// platform fixes all three); Policy, Seed, metrics and the baseline
// refresh period apply as in NewSession.
func NewSessionOn(platform Platform, cfg SessionConfig) (*Session, error) {
	if platform == nil {
		return nil, fmt.Errorf("satori: NewSessionOn needs a platform")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// The policy closure constructs against the platform's *live* space,
	// so re-invoking it after job churn yields a policy of the right
	// dimension (factories read p.Space() at call time).
	build := func(p Platform) (Policy, error) {
		if cfg.Policy != nil {
			return cfg.Policy(p)
		}
		return core.New(p.Space(), core.Options{Seed: seed})
	}
	loop, err := control.New(control.Options{
		Platform:           platform,
		Policy:             build,
		Throughput:         cfg.ThroughputMetric,
		Fairness:           cfg.FairnessMetric,
		BaselineResetTicks: cfg.BaselineResetTicks,
		Sampling:           control.SamplingOptions{Enabled: cfg.Sampled},
		SLO:                control.SLOOptions{GoalSwitch: cfg.SLOGoalSwitch},
	})
	if err != nil {
		return nil, err
	}
	return &Session{loop: loop, platform: platform}, nil
}

// Policy returns the active policy (e.g. to inspect SATORI's weights via
// a type assertion to *Engine).
func (s *Session) Policy() Policy { return s.loop.Policy() }

// Platform returns the backend the session drives.
func (s *Session) Platform() Platform { return s.platform }

// SpaceInfo returns the session's configuration space.
func (s *Session) SpaceInfo() *Space { return s.platform.Space() }

// JobNames labels the co-located jobs.
func (s *Session) JobNames() []string { return s.platform.JobNames() }

// Step advances one 100 ms interval: sample IPS, score both goals, let
// the policy decide, and apply the next partition. A rejected apply or a
// failed periodic baseline refresh is surfaced in the status
// (Status.RejectedApply / Status.ResetErr), not silently dropped.
func (s *Session) Step() (Status, error) { return s.loop.Step() }

// ReplaceWorkload swaps the workload running in slot j for a new one —
// a job departure plus a new arrival (Algorithm 1 line 12). Isolated
// baselines are re-measured immediately and the policy sees a
// BaselineReset on its next observation; SATORI requires no other
// re-initialization (Sec. III-C).
func (s *Session) ReplaceWorkload(j int, w *Workload) error { return s.loop.ReplaceJob(j, w) }

// NumJobs returns the number of currently co-located jobs.
func (s *Session) NumJobs() int { return s.loop.NumJobs() }

// AddWorkload admits a new job into the co-location (a fleet-layer job
// arrival). The configuration space changes dimension, so unlike
// ReplaceWorkload this is a full membership change: the partition is
// re-split, isolated baselines are re-measured, and the policy is rebuilt
// on the new space — the engine re-initialization that a job-count change
// requires (its proxy-model inputs are per-(resource, job) coordinates).
// The session's tick counter and running aggregates carry on. Errors
// with control.ErrChurnUnsupported on backends without the capability.
func (s *Session) AddWorkload(w *Workload) error { return s.loop.AddJob(w) }

// RemoveWorkload evicts the job in slot j (a departure); jobs above j
// shift down one slot. Like AddWorkload this re-splits the partition,
// re-measures baselines and rebuilds the policy on the shrunken space.
// The last job cannot be removed.
func (s *Session) RemoveWorkload(j int) error { return s.loop.RemoveJob(j) }

// Run advances n intervals and returns the last status.
func (s *Session) Run(n int) (Status, error) { return s.loop.Run(n) }

// Summary returns the running aggregate.
func (s *Session) Summary() Summary { return s.loop.Summary() }

// Health returns the loop's liveness summary — breaker state,
// consecutive failures, and the resilience counters (see
// control.ResilienceOptions for the policies behind them).
func (s *Session) Health() Health { return s.loop.Health() }
