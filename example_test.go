package satori_test

import (
	"fmt"

	"satori"
)

// ExampleNewSession shows the minimal SATORI loop: co-locate jobs, step
// the session at 10 Hz, read the summary.
func ExampleNewSession() {
	jobs, _ := satori.Suite(satori.SuitePARSEC)
	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads:  jobs[:3],
		Seed:       1,
		NoiseSigma: -1, // deterministic output for the example
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := sess.Run(50); err != nil { // 5 simulated seconds
		fmt.Println(err)
		return
	}
	fmt.Println("jobs:", sess.JobNames())
	fmt.Println("ticks:", sess.Summary().Ticks)
	// Output:
	// jobs: [blackscholes canneal fluidanimate]
	// ticks: 50
}

// ExampleSession_ReplaceWorkload demonstrates a workload-mix change
// (Algorithm 1 line 12): a job departs and a new one arrives; SATORI
// needs no re-initialization.
func ExampleSession_ReplaceWorkload() {
	jobs, _ := satori.Suite(satori.SuiteECP)
	sess, _ := satori.NewSession(satori.SessionConfig{
		Workloads: jobs[:2], Seed: 1, NoiseSigma: -1,
	})
	sess.Run(20)
	arrival, _ := satori.WorkloadByName("amg")
	if err := sess.ReplaceWorkload(1, arrival); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("jobs now:", sess.JobNames())
	// Output:
	// jobs now: [minife amg]
}

// ExamplePaperMixes enumerates the paper's job-mix sets.
func ExamplePaperMixes() {
	mixes, _ := satori.PaperMixes(satori.SuitePARSEC)
	fmt.Println("PARSEC mixes:", len(mixes))
	fmt.Println("mix 0:", mixes[0].Names())
	// Output:
	// PARSEC mixes: 21
	// mix 0: [blackscholes canneal fluidanimate freqmine streamcluster]
}

// ExampleRunExperiment reproduces one paper figure programmatically.
func ExampleRunExperiment() {
	rep, err := satori.RunExperiment("space", satori.ExperimentOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rep.ID, "tables:", len(rep.Tables))
	// Output:
	// space tables: 1
}
