module satori

go 1.22
