package satori

import (
	"io"

	"satori/internal/harness"
	"satori/internal/workloads"
)

// Benchmark suite names.
const (
	SuitePARSEC     = workloads.SuitePARSEC
	SuiteCloudSuite = workloads.SuiteCloudSuite
	SuiteECP        = workloads.SuiteECP
	SuiteLC         = workloads.SuiteLC
)

// Suite returns fresh copies of a benchmark suite's workload profiles
// (PARSEC: 7, CloudSuite: 5, ECP: 5 — Tables I-III of the paper — plus
// the 3-service latency-critical suite).
func Suite(name string) ([]*Workload, error) {
	switch name {
	case SuitePARSEC:
		return workloads.PARSEC(), nil
	case SuiteCloudSuite:
		return workloads.CloudSuite(), nil
	case SuiteECP:
		return workloads.ECP(), nil
	case SuiteLC:
		return workloads.LC(), nil
	}
	// Delegate the error formatting.
	_, err := workloads.PaperMixes(name)
	return nil, err
}

// WorkloadByName returns a fresh copy of any known benchmark profile.
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// WorkloadNames lists every known benchmark.
func WorkloadNames() []string { return workloads.Names() }

// LoadWorkloads parses workload profiles from JSON (the schema written by
// SaveWorkloads), validating every phase.
func LoadWorkloads(r io.Reader) ([]*Workload, error) { return workloads.ReadProfiles(r) }

// SaveWorkloads serializes workload profiles as indented JSON, suitable
// for editing by hand and reloading with LoadWorkloads.
func SaveWorkloads(w io.Writer, profiles []*Workload) error {
	return workloads.WriteProfiles(w, profiles)
}

// Mix is one co-location job mix.
type Mix = workloads.Mix

// Mixes enumerates all k-of-n combinations of profiles in deterministic
// order (the paper's job-mix construction).
func Mixes(profiles []*Workload, k int) ([]Mix, error) { return workloads.Mixes(profiles, k) }

// PaperMixes returns the paper's mix sets: 21 PARSEC mixes of 5 jobs,
// 10 CloudSuite mixes of 3, 10 ECP mixes of 2.
func PaperMixes(suite string) ([]Mix, error) { return workloads.PaperMixes(suite) }

// MixedMixOptions parameterizes MixedMixes.
type MixedMixOptions = workloads.MixedMixOptions

// MixedMixes generates reproducible mixed batch+latency-critical
// co-location mixes: each holds ceil(Jobs·LCFraction) LC services with
// per-instance scaled p99 targets next to distinct batch jobs.
func MixedMixes(opt MixedMixOptions) ([]Mix, error) { return workloads.MixedMixes(opt) }

// Experiment re-exports the figure-reproduction registry entry.
type Experiment = harness.Experiment

// ExperimentOptions sizes a figure reproduction.
type ExperimentOptions = harness.ExpOptions

// ExperimentReport is a reproduced figure/table.
type ExperimentReport = harness.Report

// Experiments lists every figure reproduction, in paper order.
func Experiments() []Experiment { return harness.Experiments() }

// RunExperiment reproduces one paper figure by ID (e.g. "fig7").
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentReport, error) {
	e, ok := harness.FindExperiment(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(opt)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "satori: unknown experiment " + string(e) + " (see Experiments())"
}
