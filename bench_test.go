// Benchmarks: one per reproduced paper figure/table (running the figure's
// driver at reduced scale — the full-scale numbers are produced by
// cmd/experiments and recorded in EXPERIMENTS.md), plus microbenchmarks of
// the engine's hot paths (GP refit, acquisition maximization, one full
// Decide, oracle search, simulator step).
package satori_test

import (
	"testing"

	"satori"
	"satori/internal/bo"
	"satori/internal/core"
	"satori/internal/gp"
	"satori/internal/harness"
	"satori/internal/metrics"
	"satori/internal/policies/oracle"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/workloads"
)

// benchExperiment runs one figure driver per iteration at smoke scale.
func benchExperiment(b *testing.B, id string, opt harness.ExpOptions) {
	b.Helper()
	e, ok := harness.FindExperiment(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// smoke is the per-iteration scale for figure benchmarks.
var smoke = harness.ExpOptions{Ticks: 60, Seed: 9, MixLimit: 1}

func BenchmarkFig01(b *testing.B) { benchExperiment(b, "fig1", smoke) }
func BenchmarkFig02(b *testing.B) { benchExperiment(b, "fig2", smoke) }
func BenchmarkFig03(b *testing.B) { benchExperiment(b, "fig3", smoke) }
func BenchmarkFig07(b *testing.B) { benchExperiment(b, "fig7", smoke) }
func BenchmarkFig08(b *testing.B) { benchExperiment(b, "fig8", smoke) }
func BenchmarkFig09(b *testing.B) { benchExperiment(b, "fig9", smoke) }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", smoke) }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11", smoke) }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12", smoke) }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13", smoke) }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14", smoke) }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15", smoke) }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16", smoke) }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17", smoke) }
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18", smoke) }
func BenchmarkFig19(b *testing.B) { benchExperiment(b, "fig19", smoke) }
func BenchmarkScalability(b *testing.B) {
	benchExperiment(b, "scalability", harness.ExpOptions{Ticks: 60, Seed: 9, MixLimit: 1})
}
func BenchmarkAblationResources(b *testing.B) { benchExperiment(b, "ablation-resources", smoke) }
func BenchmarkAblationInit(b *testing.B)      { benchExperiment(b, "ablation-init", smoke) }
func BenchmarkAblationWindow(b *testing.B)    { benchExperiment(b, "ablation-window", smoke) }
func BenchmarkAblationBounds(b *testing.B)    { benchExperiment(b, "ablation-bounds", smoke) }
func BenchmarkSpaceSize(b *testing.B)         { benchExperiment(b, "space", smoke) }

// benchSuite runs the Fig. 7-style suite (4 mixes × 2 policies + oracle
// references) under the given worker count; the serial/parallel pair
// quantifies the harness fan-out's wall-clock win.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		b.Fatal(err)
	}
	spec := harness.SuiteSpec{
		Mixes: mixes[:4],
		Policies: []harness.NamedFactory{
			{Name: "satori", Factory: harness.SatoriFactory(core.Options{})},
			{Name: "random", Factory: harness.RandomFactory()},
		},
		Base:    harness.DefaultSuiteBase(9, 60),
		Workers: workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunSuite(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSerial vs BenchmarkSuiteParallel4 measure the identical
// workload with 1 and 4 workers (expected: >1.5x faster at 4 workers on
// a 4+-core machine, with byte-identical results — see
// TestRunSuiteParallelMatchesSerial).
func BenchmarkSuiteSerial(b *testing.B)    { benchSuite(b, 1) }
func BenchmarkSuiteParallel4(b *testing.B) { benchSuite(b, 4) }

// benchEngineOverhead measures one full SATORI BO iteration — the
// quantity the paper reports as 1.2 ms within the 100 ms interval
// (Sec. V overhead analysis; the "overhead" experiment prints the same
// measurement with more context). Run time-based (-benchtime 2s, not Nx):
// the first few hundred iterations are seeding/warm-up ticks that are far
// cheaper than steady-state Decide calls.
func benchEngineOverhead(b *testing.B, opt core.Options) {
	b.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	platform, err := rdt.NewSimPlatform(s)
	if err != nil {
		b.Fatal(err)
	}
	opt.Seed = 9
	eng, err := core.New(platform.Space(), opt)
	if err != nil {
		b.Fatal(err)
	}
	iso, err := platform.MeasureIsolated()
	if err != nil {
		b.Fatal(err)
	}
	current := platform.Current()
	met := harness.DefaultMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ips, err := platform.Sample()
		if err != nil {
			b.Fatal(err)
		}
		obs := policy.Observation{
			Tick: i + 1, IPS: ips, Isolated: iso,
			Speedups:   metrics.Speedups(ips, iso),
			Throughput: metrics.NormalizedThroughput(met.Throughput, ips, iso),
			Fairness:   metrics.NormalizedFairness(met.Fairness, ips, iso),
		}
		b.StartTimer()
		next := eng.Decide(obs, current)
		b.StopTimer()
		if err := platform.Apply(next); err == nil {
			current = platform.Current()
		}
		b.StartTimer()
	}
}

// BenchmarkEngineOverhead is the headline per-tick cost under default
// options (incremental proxy updates).
func BenchmarkEngineOverhead(b *testing.B) { benchEngineOverhead(b, core.Options{}) }

// BenchmarkEngineOverheadIncremental / BenchmarkEngineOverheadFullRefit
// pin both proxy-update paths at the paper's Window=64 so the incremental
// win (ns/op and allocs/op) is measured against the from-scratch refit
// baseline it replaced; EXPERIMENTS.md records the numbers.
func BenchmarkEngineOverheadIncremental(b *testing.B) {
	benchEngineOverhead(b, core.Options{Window: 64})
}

func BenchmarkEngineOverheadFullRefit(b *testing.B) {
	benchEngineOverhead(b, core.Options{Window: 64, FullRefit: true})
}

// benchIncrementalModel builds a warm n-observation incremental GP. The
// targets sit under the 0.01 variance floor — matching the normalized
// objectives the engine feeds it — so UpdateTargets takes the α-only
// fast path rather than rebuilding.
func benchIncrementalModel(b *testing.B, n, dim int) (*gp.Incremental, [][]float64, []float64) {
	b.Helper()
	rng := stats.NewRNG(5)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = 0.5 + 0.05*rng.Float64()
	}
	m := gp.NewIncremental(gp.Options{})
	if err := m.Reset(xs, ys); err != nil {
		b.Fatal(err)
	}
	return m, xs, ys
}

// BenchmarkGPIncrementalUpdateTargets measures the α-only re-solve that
// replaces a full refit when only the goal weights (targets) change.
func BenchmarkGPIncrementalUpdateTargets(b *testing.B) {
	m, _, ys := benchIncrementalModel(b, 64, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ys[i%len(ys)] += 1e-9
		if err := m.UpdateTargets(ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPIncrementalPredict measures one alloc-free posterior query.
func BenchmarkGPIncrementalPredict(b *testing.B) {
	m, xs, _ := benchIncrementalModel(b, 64, 15)
	var scratch gp.PredictScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictInto(&scratch, xs[i%len(xs)])
	}
}

// benchPredictPool scores a candidate pool against the warm Window=64
// model either one candidate at a time (the pre-batching engine path,
// kept as the golden reference) or through the matrix-level batch solve.
// The ns/cand metric is the per-candidate cost the BENCH_pr6.json speedup
// gate tracks; both paths produce bit-identical mu/sigma.
func benchPredictPool(b *testing.B, pool int, batch bool) {
	m, _, _ := benchIncrementalModel(b, 64, 15)
	rng := stats.NewRNG(6)
	pts := make([][]float64, pool)
	for i := range pts {
		pts[i] = make([]float64, 15)
		for d := range pts[i] {
			pts[i][d] = rng.Float64()
		}
	}
	mu := make([]float64, pool)
	sigma := make([]float64, pool)
	var scratch gp.PredictScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			m.PredictBatchInto(&scratch, mu, sigma, pts)
		} else {
			for c, x := range pts {
				mu[c], sigma[c] = m.PredictInto(&scratch, x)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(pool), "ns/cand")
}

func BenchmarkPredictPoolPerCandidate32(b *testing.B)  { benchPredictPool(b, 32, false) }
func BenchmarkPredictPoolBatch32(b *testing.B)         { benchPredictPool(b, 32, true) }
func BenchmarkPredictPoolPerCandidate128(b *testing.B) { benchPredictPool(b, 128, false) }
func BenchmarkPredictPoolBatch128(b *testing.B)        { benchPredictPool(b, 128, true) }

// BenchmarkGPFit measures one proxy-model refit on a typical window.
func BenchmarkGPFit(b *testing.B) {
	rng := stats.NewRNG(3)
	const n, dim = 64, 15
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gp.Fit(xs, ys, gp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAcquisition measures EI maximization over a candidate pool.
func BenchmarkAcquisition(b *testing.B) {
	rng := stats.NewRNG(4)
	const n, dim, cands = 64, 15, 100
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.Float64()
	}
	model, err := gp.Fit(xs, ys, gp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pool := make([][]float64, cands)
	for i := range pool {
		pool[i] = make([]float64, dim)
		for d := range pool[i] {
			pool[i][d] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bo.Suggest(model, bo.EI{}, 0.9, pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStep measures one 100 ms tick of the 5-job testbed.
func BenchmarkSimulatorStep(b *testing.B) {
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkOracleSearch measures one Balanced-Oracle hill-climb on the
// 3.3M-configuration PARSEC space.
func BenchmarkOracleSearch(b *testing.B) {
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{Seed: 9, NoiseSigma: -1})
	if err != nil {
		b.Fatal(err)
	}
	met := harness.DefaultMetrics()
	sr := oracle.NewSearcher(s, oracle.Options{Seed: 9, ThroughputMetric: met.Throughput, FairnessMetric: met.Fairness})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.Search(0.5, 0.5)
	}
}

// BenchmarkSessionStep isolates the control loop's own steady-state
// cost: a warmed session past the first equalization boundary, under the
// hold-current Static policy so no engine work is measured — just
// sample → score → decide → apply through internal/control. This guards
// the loop's per-tick allocation budget (a handful of slices per step:
// the IPS sample, the speedup vector, and the status copies).
func BenchmarkSessionStep(b *testing.B) {
	jobs, err := satori.Suite(satori.SuitePARSEC)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads: jobs[:5],
		Seed:      9,
		Policy:    satori.NewStaticPolicy(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Run(150); err != nil { // warm past tick 101's refresh
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionStepLC is BenchmarkSessionStep with latency-critical
// jobs in the mix and goal switching armed: the extra steady-state cost
// is the SLO tracker's per-tick pass (latency quantiles, attainment,
// detector update) plus the per-job quantile slices in the status. The
// delta against SessionStep is the whole subsystem's scoring overhead —
// the batch-only path must stay at its prior allocation budget.
func BenchmarkSessionStepLC(b *testing.B) {
	batch, err := satori.Suite(satori.SuitePARSEC)
	if err != nil {
		b.Fatal(err)
	}
	lc, err := satori.Suite(satori.SuiteLC)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads:     append(lc[:2], batch[:3]...),
		Seed:          9,
		Policy:        satori.NewStaticPolicy(),
		SLOGoalSwitch: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Run(150); err != nil { // warm past tick 101's refresh
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClusterDecide measures one steady-state Decide over the 24-job
// jobs ≫ classes co-location (the "cluster" experiment's machine): the
// cost of choosing the next partition once the policy is warm. Per-job
// SATORI searches 24 coordinates per resource; clustered SATORI at K=8
// searches 8 over the reduced cluster space — the speedup is the
// BENCH_pr10.json gate. Sampling and Apply are excluded so the two
// variants are compared on exactly the search they run.
func benchClusterDecide(b *testing.B, factory harness.PolicyFactory) {
	b.Helper()
	base := workloads.PARSEC()
	profiles := make([]*sim.Profile, 24)
	for i := range profiles {
		profiles[i] = base[i%len(base)]
	}
	machine := sim.MachineSpec{
		Cores: 48, LLCWays: 32, MemBWUnits: 24,
		MemBWBytesPerUnit: 7.68e9, LineBytes: 64, MinPowerScale: 0.55,
	}
	s, err := sim.New(machine, profiles, sim.Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	platform, err := rdt.NewSimPlatform(s)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := factory(platform, 9)
	if err != nil {
		b.Fatal(err)
	}
	iso, err := platform.MeasureIsolated()
	if err != nil {
		b.Fatal(err)
	}
	current := platform.Current()
	met := harness.DefaultMetrics()
	observe := func(tick int) policy.Observation {
		ips, err := platform.Sample()
		if err != nil {
			b.Fatal(err)
		}
		return policy.Observation{
			Tick: tick, IPS: ips, Isolated: iso,
			Speedups:   metrics.Speedups(ips, iso),
			Throughput: metrics.NormalizedThroughput(met.Throughput, ips, iso),
			Fairness:   metrics.NormalizedFairness(met.Fairness, ips, iso),
		}
	}
	// Warm past engine seeding and classifier convergence.
	tick := 0
	for ; tick < 200; tick++ {
		next := pol.Decide(observe(tick+1), current)
		if err := platform.Apply(next); err == nil {
			current = platform.Current()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		obs := observe(tick + i + 1)
		b.StartTimer()
		next := pol.Decide(obs, current)
		b.StopTimer()
		if err := platform.Apply(next); err == nil {
			current = platform.Current()
		}
		b.StartTimer()
	}
}

func BenchmarkClusterDecidePerJob24(b *testing.B) {
	benchClusterDecide(b, harness.SatoriFactory(core.Options{}))
}

func BenchmarkClusterDecideK8(b *testing.B) {
	benchClusterDecide(b, harness.ClusteredSatoriFactory(8, core.Options{}))
}

// BenchmarkSessionTick measures one public-API session step end to end.
func BenchmarkSessionTick(b *testing.B) {
	jobs, err := satori.Suite(satori.SuitePARSEC)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := satori.NewSession(satori.SessionConfig{Workloads: jobs[:5], Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
