package satori_test

import (
	"strings"
	"testing"

	"satori"
)

func parsecJobs(t *testing.T, n int) []*satori.Workload {
	t.Helper()
	jobs, err := satori.Suite(satori.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	return jobs[:n]
}

func TestSessionValidation(t *testing.T) {
	if _, err := satori.NewSession(satori.SessionConfig{}); err == nil {
		t.Error("session without workloads accepted")
	}
}

func TestSessionLifecycle(t *testing.T) {
	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads: parsecJobs(t, 5),
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := sess.JobNames()
	if len(names) != 5 || names[0] != "blackscholes" {
		t.Errorf("JobNames = %v", names)
	}
	if sess.SpaceInfo().Jobs != 5 {
		t.Error("space shape wrong")
	}
	st, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 1 || !st.BaselineReset {
		t.Errorf("first step: tick=%d reset=%v", st.Tick, st.BaselineReset)
	}
	if st.Throughput <= 0 || st.Throughput > 1 || st.Fairness <= 0 || st.Fairness > 1 {
		t.Errorf("scores out of range: T=%g F=%g", st.Throughput, st.Fairness)
	}
	if len(st.IPS) != 5 || len(st.Speedups) != 5 {
		t.Error("per-job vectors wrong length")
	}
	last, err := sess.Run(99)
	if err != nil {
		t.Fatal(err)
	}
	if last.Tick != 100 {
		t.Errorf("after Run(99): tick=%d", last.Tick)
	}
	sum := sess.Summary()
	if sum.Ticks != 100 || sum.MeanThroughput <= 0 || sum.MeanFairness <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	if !strings.Contains(sum.String(), "throughput=") {
		t.Error("summary rendering wrong")
	}
}

func TestSessionBaselineResetSchedule(t *testing.T) {
	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads:          parsecJobs(t, 3),
		BaselineResetTicks: 10,
		Seed:               4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resets := 0
	for i := 0; i < 50; i++ {
		st, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.BaselineReset {
			resets++
		}
	}
	// Tick 1 (initial) plus ticks 11, 21, 31, 41.
	if resets != 5 {
		t.Errorf("%d baseline resets in 50 ticks with period 10, want 5", resets)
	}
}

func TestSessionWithEveryPolicyConstructor(t *testing.T) {
	jobs := parsecJobs(t, 3)
	factories := map[string]func(satori.Platform) (satori.Policy, error){
		"satori":      satori.NewSatoriPolicy(satori.EngineOptions{Seed: 2}),
		"static-sat":  satori.NewStaticSatoriPolicy(0.5),
		"throughput":  satori.NewStaticSatoriPolicy(1),
		"fairness":    satori.NewStaticSatoriPolicy(0),
		"random":      satori.NewRandomPolicy(2),
		"static":      satori.NewStaticPolicy(),
		"dcat":        satori.NewDCATPolicy(),
		"copart":      satori.NewCoPartPolicy(),
		"parties":     satori.NewPARTIESPolicy(),
		"balanced-or": satori.NewOraclePolicy(satori.BalancedOracle),
	}
	for name, f := range factories {
		sess, err := satori.NewSession(satori.SessionConfig{
			Workloads: jobs, Policy: f, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := sess.Run(30); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		if sess.Summary().MeanThroughput <= 0 {
			t.Errorf("%s produced no throughput", name)
		}
	}
}

func TestSatoriEngineIntrospection(t *testing.T) {
	sess, err := satori.NewSession(satori.SessionConfig{Workloads: parsecJobs(t, 3), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(50); err != nil {
		t.Fatal(err)
	}
	eng, ok := sess.Policy().(*satori.Engine)
	if !ok {
		t.Fatal("default session policy is not the SATORI engine")
	}
	w := eng.LastWeights()
	if w.T+w.F < 0.99 || w.T+w.F > 1.01 {
		t.Errorf("weights = %+v", w)
	}
	if eng.Records().Len() == 0 {
		t.Error("no records")
	}
}

func TestSuitesAndWorkloadLookup(t *testing.T) {
	for name, want := range map[string]int{
		satori.SuitePARSEC:     7,
		satori.SuiteCloudSuite: 5,
		satori.SuiteECP:        5,
	} {
		jobs, err := satori.Suite(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != want {
			t.Errorf("%s has %d workloads, want %d", name, len(jobs), want)
		}
	}
	if _, err := satori.Suite("nope"); err == nil {
		t.Error("unknown suite accepted")
	}
	if w, err := satori.WorkloadByName("canneal"); err != nil || w.Name != "canneal" {
		t.Errorf("WorkloadByName: %v", err)
	}
	if len(satori.WorkloadNames()) != 20 {
		// 17 batch benchmarks plus the 3 latency-critical services.
		t.Errorf("WorkloadNames = %d, want 20", len(satori.WorkloadNames()))
	}
	mixes, err := satori.PaperMixes(satori.SuitePARSEC)
	if err != nil || len(mixes) != 21 {
		t.Errorf("PaperMixes: %d, %v", len(mixes), err)
	}
	jobs, _ := satori.Suite(satori.SuiteECP)
	twoOfFive, err := satori.Mixes(jobs, 2)
	if err != nil || len(twoOfFive) != 10 {
		t.Errorf("Mixes: %d, %v", len(twoOfFive), err)
	}
}

func TestExperimentRegistryAccess(t *testing.T) {
	if len(satori.Experiments()) < 20 {
		t.Error("experiment registry too small")
	}
	rep, err := satori.RunExperiment("space", satori.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "592704") {
		t.Error("space experiment content wrong")
	}
	if _, err := satori.RunExperiment("nope", satori.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCustomMachineAndPowerResource(t *testing.T) {
	m := satori.DefaultMachine()
	m.PowerUnits = 8
	sess, err := satori.NewSession(satori.SessionConfig{
		Machine:   &m,
		Workloads: parsecJobs(t, 2),
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sess.SpaceInfo().Resources); got != 4 {
		t.Errorf("power-enabled space has %d resources", got)
	}
	if _, err := sess.Run(20); err != nil {
		t.Fatal(err)
	}
}

func TestMetricSelection(t *testing.T) {
	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads:        parsecJobs(t, 3),
		ThroughputMetric: satori.GeoMeanSpeedup,
		FairnessMetric:   satori.OneMinusCoV,
		Seed:             8,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput <= 0 || st.Throughput > 1 {
		t.Errorf("geomean throughput = %g", st.Throughput)
	}
}

func TestReplaceWorkloadMidSession(t *testing.T) {
	sess, err := satori.NewSession(satori.SessionConfig{Workloads: parsecJobs(t, 3), Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(40); err != nil {
		t.Fatal(err)
	}
	sw, err := satori.WorkloadByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ReplaceWorkload(1, sw); err != nil {
		t.Fatal(err)
	}
	if err := sess.ReplaceWorkload(9, sw); err == nil {
		t.Error("out-of-range slot accepted")
	}
	st, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !st.BaselineReset {
		t.Error("mix change did not reset baselines")
	}
	if sess.JobNames()[1] != "swaptions" {
		t.Errorf("slot 1 = %s after replacement", sess.JobNames()[1])
	}
	if _, err := sess.Run(40); err != nil {
		t.Fatal(err)
	}
	if sess.Summary().MeanThroughput <= 0 {
		t.Error("session degenerate after mix change")
	}
}
