// Command satorid runs the SATORI control loop as a long-lived daemon:
// the same Algorithm-1 tick cadence as cmd/satori, but with an HTTP API
// for live operation — submit and evict workloads while the loop runs,
// reconfigure the optimization goal, watch health, and stream per-tick
// metrics — plus graceful shutdown on SIGINT/SIGTERM.
//
// Quickstart (simulated backend):
//
//	satorid -suite parsec -mix 0 -policy satori &
//	curl localhost:8080/status
//	curl -X POST localhost:8080/jobs -d '{"workload":"streamcluster"}'
//	curl -X DELETE localhost:8080/jobs/2
//	curl -X POST localhost:8080/goal -d '{"fairness":"one-minus-cov"}'
//	curl localhost:8080/metrics/stream
//	kill %1   # prints the run summary and health on the way out
//
// A -fault script (see rdt.ParseFaultScript) injects deterministic
// platform failures for resilience testing; -max-ticks plus -tick 0
// free-runs a bounded soak and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"satori/internal/control"
	"satori/internal/core"
	"satori/internal/harness"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/server"
	"satori/internal/sim"
	"satori/internal/workloads"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	workloadList := flag.String("workloads", "", "comma-separated benchmark names to start with")
	suite := flag.String("suite", "", "start from a paper mix of this suite instead (parsec|cloudsuite|ecp)")
	mixIdx := flag.Int("mix", 0, "mix index within -suite")
	policyName := flag.String("policy", "satori", "partitioning policy")
	clusterK := flag.Int("cluster-k", 0, "cluster jobs onto at most K control groups (satori-clustered/lfoc; with -policy satori this switches to satori-clustered)")
	seed := flag.Uint64("seed", 1, "random seed")
	tick := flag.Duration("tick", 100*time.Millisecond, "wall-clock interval between loop ticks (0 = free-run)")
	maxTicks := flag.Int("max-ticks", 0, "stop after this many ticks (0 = run until signaled)")
	faultSpec := flag.String("fault", "", "deterministic fault script, e.g. 'sample:nan@50,apply:error@100x3'")
	sampled := flag.Bool("sampled", false, "extrapolate phase-stable intervals (sampled simulation)")
	sloGoalSwitch := flag.Bool("slo-goal-switch", false, "switch the fairness goal to SLO recovery while a violation persists")
	sloUnhealthy := flag.Int("slo-unhealthy-after", 0, "report 503 on /healthz after a sustained SLO violation of this many ticks (0 = off)")
	flag.Parse()
	log.SetFlags(0)

	srv, err := buildServer(*addr, *workloadList, *suite, *mixIdx, *policyName, *clusterK,
		*seed, *tick, *maxTicks, *faultSpec, *sampled, *sloGoalSwitch, *sloUnhealthy)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("satorid: listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	log.Printf("satorid: serving on http://%s (policy=%s, jobs=%v)",
		ln.Addr(), srv.Loop().Policy().Name(), srv.Loop().Platform().JobNames())

	runErr := srv.Run(ctx)

	// Drain the HTTP side: in-flight requests get a grace period, then
	// the summary prints regardless of why the driver stopped.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	httpSrv.Shutdown(shutCtx)
	cancel()
	select {
	case err := <-httpErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("satorid: http server: %v", err)
		}
	default:
	}

	loop := srv.Loop()
	fmt.Println(loop.Summary())
	h := loop.Health()
	fmt.Printf("health: ticks=%d healthy=%v breaker-trips=%d retries=%d\n",
		h.Ticks, h.Healthy(), h.BreakerTrips, h.Retries)
	if fi, ok := rdt.InjectorOf(loop.Platform()); ok {
		c := fi.Counts()
		fmt.Printf("injected-faults: apply=%d sample=%d nan=%d negative=%d measure=%d resync=%d total=%d\n",
			c.ApplyErrors, c.SampleErrors, c.SampleNaNs, c.SampleNegatives,
			c.MeasureErrors, c.ResyncErrors, c.Total())
	}
	if runErr != nil {
		log.Fatalf("satorid: control loop stopped: %v", runErr)
	}
}

// buildServer assembles the simulated-backend daemon stack: profiles →
// simulator → platform (optionally fault-wrapped) → control loop →
// server.
func buildServer(addr, workloadList, suite string, mixIdx int, policyName string, clusterK int,
	seed uint64, tick time.Duration, maxTicks int, faultSpec string, sampled bool,
	sloGoalSwitch bool, sloUnhealthy int) (*server.Server, error) {
	var profiles []*sim.Profile
	switch {
	case workloadList != "":
		for _, name := range strings.Split(workloadList, ",") {
			p, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
	case suite != "":
		mixes, err := workloads.PaperMixes(suite)
		if err != nil {
			return nil, err
		}
		if mixIdx < 0 || mixIdx >= len(mixes) {
			return nil, fmt.Errorf("mix %d out of range (suite %s has %d)", mixIdx, suite, len(mixes))
		}
		profiles = mixes[mixIdx].Profiles
	default:
		return nil, fmt.Errorf("pass -workloads or -suite (see -h); valid workloads: %s",
			strings.Join(workloads.Names(), ", "))
	}

	factory, err := daemonPolicy(policyName, clusterK)
	if err != nil {
		return nil, err
	}

	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	var platform rdt.Platform
	platform, err = rdt.NewSimPlatform(simulator)
	if err != nil {
		return nil, err
	}
	var injector *rdt.FaultInjector
	if faultSpec != "" {
		script, err := rdt.ParseFaultScript(faultSpec)
		if err != nil {
			return nil, err
		}
		script.Seed = seed
		platform, err = rdt.NewFaultInjector(platform, script)
		if err != nil {
			return nil, err
		}
		injector, _ = rdt.InjectorOf(platform)
	}

	loop, err := control.New(control.Options{
		Platform: platform,
		Policy: func(p rdt.Platform) (policy.Policy, error) {
			return policyFor(p, factory, seed)
		},
		Sampling: control.SamplingOptions{Enabled: sampled},
		SLO:      control.SLOOptions{GoalSwitch: sloGoalSwitch},
		Resilience: control.ResilienceOptions{
			Sleep: time.Sleep, // real deployment: backoff waits on the wall clock
		},
	})
	if err != nil {
		return nil, err
	}

	return server.New(server.Options{
		Loop:              loop,
		TickEvery:         tick,
		MaxTicks:          maxTicks,
		Injector:          injector,
		SLOUnhealthyAfter: sloUnhealthy,
		Logf:              log.Printf,
	})
}

// daemonPolicy resolves the policy factory, honoring -cluster-k: a
// positive K turns satori/satori-clustered into clustered SATORI at that
// budget and sizes lfoc likewise; every other name resolves from the
// shared registry (where satori-clustered and lfoc default to K=8).
func daemonPolicy(policyName string, clusterK int) (harness.PolicyFactory, error) {
	if clusterK > 0 {
		switch policyName {
		case "satori", "satori-clustered":
			return harness.ClusteredSatoriFactory(clusterK, core.Options{}), nil
		case "lfoc":
			return harness.LFOCFactory(clusterK), nil
		default:
			return nil, fmt.Errorf("-cluster-k only applies to the satori, satori-clustered, and lfoc policies (got -policy %s)", policyName)
		}
	}
	return harness.PolicyByName(policyName)
}

// policyFor builds the named policy against the platform's live
// simulator, unwrapping a fault injector first — policies score against
// the true analytical model; faults perturb only the control/monitor
// boundary.
func policyFor(p rdt.Platform, factory harness.PolicyFactory, seed uint64) (policy.Policy, error) {
	inner := p
	if fi, ok := rdt.InjectorOf(p); ok {
		inner = fi.Inner()
	}
	sp, ok := inner.(*rdt.SimPlatform)
	if !ok {
		return nil, fmt.Errorf("satorid: policy %T requires the simulated backend", factory)
	}
	return factory(sp, seed)
}
