// Command satori runs one co-location session on the simulated testbed:
// pick workloads, pick a partitioning policy, and watch the throughput
// and fairness scores evolve at 10 Hz.
//
// Usage:
//
//	satori -workloads canneal,swaptions,streamcluster -policy satori -seconds 60
//	satori -suite parsec -mix 0 -policy parties
//	satori -workloads amg,hypre -policy balanced-oracle -csv run.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"satori"
	"satori/internal/trace"
)

func main() {
	workloadList := flag.String("workloads", "", "comma-separated benchmark names to co-locate")
	profilesPath := flag.String("profiles", "", "JSON file of custom workload profiles to co-locate (see satori.SaveWorkloads)")
	suite := flag.String("suite", "", "pick a paper mix from this suite instead (parsec|cloudsuite|ecp)")
	mixIdx := flag.Int("mix", 0, "mix index within -suite")
	policyName := flag.String("policy", "satori", "partitioning policy")
	seconds := flag.Float64("seconds", 60, "run length in simulated seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	power := flag.Int("power", 0, "enable power-cap partitioning with this many units")
	csvPath := flag.String("csv", "", "write the per-tick trace to this CSV file")
	dumpSuite := flag.String("dump-profiles", "", "write a suite's workload profiles as JSON to stdout and exit (parsec|cloudsuite|ecp)")
	flag.Parse()

	if *dumpSuite != "" {
		jobs, err := satori.Suite(*dumpSuite)
		if err != nil {
			log.Fatal(err)
		}
		if err := satori.SaveWorkloads(os.Stdout, jobs); err != nil {
			log.Fatal(err)
		}
		return
	}

	var jobs []*satori.Workload
	switch {
	case *profilesPath != "":
		f, err := os.Open(*profilesPath)
		if err != nil {
			log.Fatal(err)
		}
		jobs, err = satori.LoadWorkloads(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *workloadList != "":
		for _, name := range strings.Split(*workloadList, ",") {
			w, err := satori.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, w)
		}
	case *suite != "":
		mixes, err := satori.PaperMixes(*suite)
		if err != nil {
			log.Fatal(err)
		}
		if *mixIdx < 0 || *mixIdx >= len(mixes) {
			log.Fatalf("mix %d out of range (suite has %d)", *mixIdx, len(mixes))
		}
		jobs = mixes[*mixIdx].Profiles
	default:
		log.Fatal("pass -workloads or -suite (see -h)")
	}

	factory, err := satori.NewPolicyByName(*policyName, *seed)
	if err != nil {
		log.Fatal(err)
	}
	machine := satori.DefaultMachine()
	if *power > 0 {
		machine.PowerUnits = *power
	}
	sess, err := satori.NewSession(satori.SessionConfig{
		Machine:   &machine,
		Workloads: jobs,
		Policy:    factory,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs: %v\npolicy: %s\nspace: %.0f configurations\n",
		sess.JobNames(), *policyName, sess.SpaceInfo().Size())

	series := trace.NewSeries("time", "throughput", "fairness")
	ticks := int(*seconds / satori.TickSeconds)
	report := ticks / 10
	if report < 1 {
		report = 1
	}
	for i := 1; i <= ticks; i++ {
		st, err := sess.Step()
		if err != nil {
			log.Fatal(err)
		}
		series.Add(st.Time, st.Throughput, st.Fairness)
		if i%report == 0 {
			fmt.Printf("t=%6.1fs  throughput=%.3f  fairness=%.3f\n", st.Time, st.Throughput, st.Fairness)
		}
	}
	fmt.Println(sess.Summary())
	if eng, ok := sess.Policy().(*satori.Engine); ok {
		w := eng.LastWeights()
		fmt.Printf("weights: W_T=%.2f W_F=%.2f; configurations explored: %d\n", w.T, w.F, eng.Records().Len())
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := series.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("trace written to", *csvPath)
	}
}
