// Command satori runs one co-location session: pick workloads, pick a
// partitioning policy, pick a backend, and watch the throughput and
// fairness scores evolve at 10 Hz.
//
// Two backends ship. The default simulates the paper's testbed; the
// resctrl backend drives the Linux resctrl filesystem layout — point
// -resctrl-root at /sys/fs/resctrl on a CAT/MBA machine (running
// privileged) to partition it for real, or at any scratch directory to
// exercise the identical control path hermetically. The resctrl backend
// reads per-job IPS from a recorded trace (-trace, see rdt.ReadIPSTrace
// for the format); without one it synthesizes a deterministic trace from
// the simulator so the full loop runs out of the box.
//
// Usage:
//
//	satori -workloads canneal,swaptions,streamcluster -policy satori -seconds 60
//	satori -suite parsec -mix 0 -policy parties
//	satori -workloads amg,hypre -policy balanced-oracle -csv run.csv
//	satori -backend resctrl -resctrl-root $(mktemp -d) -suite parsec -seconds 5
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"satori"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/trace"
)

func main() {
	workloadList := flag.String("workloads", "", "comma-separated benchmark names to co-locate")
	profilesPath := flag.String("profiles", "", "JSON file of custom workload profiles to co-locate (see satori.SaveWorkloads)")
	suite := flag.String("suite", "", "pick a paper mix from this suite instead (parsec|cloudsuite|ecp)")
	mixIdx := flag.Int("mix", 0, "mix index within -suite")
	policyName := flag.String("policy", "satori", "partitioning policy")
	clusterK := flag.Int("cluster-k", 0, "cluster jobs onto at most K control groups (satori-clustered/lfoc; with -policy satori this switches to satori-clustered)")
	seconds := flag.Float64("seconds", 60, "run length in simulated seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	power := flag.Int("power", 0, "enable power-cap partitioning with this many units")
	csvPath := flag.String("csv", "", "write the per-tick trace to this CSV file")
	backend := flag.String("backend", "sim", "platform backend (sim|resctrl)")
	sampled := flag.Bool("sampled", false, "extrapolate phase-stable intervals instead of evaluating them in detail (sim backend; outputs are bit-identical)")
	resctrlRoot := flag.String("resctrl-root", "", "resctrl mount point or scratch directory (resctrl backend)")
	tracePath := flag.String("trace", "", "IPS trace file to replay (resctrl backend; default: synthesized from the simulator)")
	dumpSuite := flag.String("dump-profiles", "", "write a suite's workload profiles as JSON to stdout and exit (parsec|cloudsuite|ecp)")
	flag.Parse()

	if *dumpSuite != "" {
		jobs, err := satori.Suite(*dumpSuite)
		if err != nil {
			log.Fatal(err)
		}
		if err := satori.SaveWorkloads(os.Stdout, jobs); err != nil {
			log.Fatal(err)
		}
		return
	}

	var jobs []*satori.Workload
	switch {
	case *profilesPath != "":
		f, err := os.Open(*profilesPath)
		if err != nil {
			log.Fatal(err)
		}
		jobs, err = satori.LoadWorkloads(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *workloadList != "":
		for _, name := range strings.Split(*workloadList, ",") {
			w, err := satori.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, w)
		}
	case *suite != "":
		mixes, err := satori.PaperMixes(*suite)
		if err != nil {
			log.Fatal(err)
		}
		if *mixIdx < 0 || *mixIdx >= len(mixes) {
			log.Fatalf("mix %d out of range (suite has %d)", *mixIdx, len(mixes))
		}
		jobs = mixes[*mixIdx].Profiles
	default:
		log.Fatal("pass -workloads or -suite (see -h)")
	}

	machine := satori.DefaultMachine()
	if *power > 0 {
		machine.PowerUnits = *power
	}
	ticks := int(*seconds / satori.TickSeconds)

	var sess *satori.Session
	switch *backend {
	case "sim":
		factory, err := simPolicy(*policyName, *seed, *clusterK)
		if err != nil {
			log.Fatal(err)
		}
		sess, err = satori.NewSession(satori.SessionConfig{
			Machine:   &machine,
			Workloads: jobs,
			Policy:    factory,
			Seed:      *seed,
			Sampled:   *sampled,
		})
		if err != nil {
			log.Fatal(err)
		}
	case "resctrl":
		var err error
		sess, err = newResctrlSession(machine, jobs, *policyName, *resctrlRoot, *tracePath, *seed, ticks, *clusterK)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -backend %q (valid: sim, resctrl)", *backend)
	}
	fmt.Printf("backend: %s\njobs: %v\npolicy: %s\nspace: %.0f configurations\n",
		*backend, sess.JobNames(), *policyName, sess.SpaceInfo().Size())

	series := trace.NewSeries("time", "throughput", "fairness")
	report := ticks / 10
	if report < 1 {
		report = 1
	}
	for i := 1; i <= ticks; i++ {
		st, err := sess.Step()
		if err != nil {
			log.Fatal(err)
		}
		series.Add(st.Time, st.Throughput, st.Fairness)
		if i%report == 0 {
			fmt.Printf("t=%6.1fs  throughput=%.3f  fairness=%.3f\n", st.Time, st.Throughput, st.Fairness)
		}
	}
	fmt.Println(sess.Summary())
	if eng, ok := sess.Policy().(*satori.Engine); ok {
		w := eng.LastWeights()
		fmt.Printf("weights: W_T=%.2f W_F=%.2f; configurations explored: %d\n", w.T, w.F, eng.Records().Len())
	}
	if rp, ok := sess.Platform().(*rdt.ResctrlPlatform); ok {
		reportResctrl(rp, len(jobs), *resctrlRoot)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := series.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("trace written to", *csvPath)
	}
}

// newResctrlSession assembles the resctrl deployment stack: a sampler
// (recorded trace, or one synthesized deterministically from the
// simulator), the resctrl writer rooted at -resctrl-root, and the
// platform-generic policy, all driven by the same control loop as the
// simulated backend.
func newResctrlSession(machine satori.MachineSpec, jobs []*satori.Workload,
	policyName, root, tracePath string, seed uint64, ticks, clusterK int) (*satori.Session, error) {
	if root == "" {
		return nil, fmt.Errorf("-backend resctrl needs -resctrl-root (the resctrl mount point, e.g. /sys/fs/resctrl, or a scratch directory)")
	}
	if err := checkResctrlRoot(root); err != nil {
		return nil, err
	}
	var sampler rdt.Sampler
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, fmt.Errorf("-trace %s: %w\n  pass -trace a per-tick IPS trace (see rdt.ReadIPSTrace for the format), or omit -trace to synthesize one from the simulator", tracePath, err)
		}
		sampler, err = rdt.LoadTraceSampler(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("-trace %s: %w", tracePath, err)
		}
	} else {
		var err error
		sampler, err = synthesizeTrace(machine, jobs, seed, ticks)
		if err != nil {
			return nil, err
		}
	}
	names := make([]string, len(jobs))
	for i, j := range jobs {
		names[i] = j.Name
	}
	// With clustering requested, the platform boots under the same
	// deterministic round-robin grouping the classifier starts from, so a
	// job set larger than the tree's CLOS budget passes preflight; the
	// policy then migrates memberships through the Grouper capability.
	var grouping *satori.Grouping
	if k := effectiveClusterK(policyName, clusterK); k > 0 {
		grouping = resource.RoundRobinGrouping(len(names), k)
	}
	platform, err := rdt.NewResctrlPlatformGrouped(machine, names, rdt.ResctrlWriter{Root: root}, sampler, grouping)
	if err != nil {
		return nil, resctrlErr(err)
	}
	pol, err := genericPolicy(policyName, seed, clusterK)
	if err != nil {
		return nil, err
	}
	sess, err := satori.NewSessionOn(platform, satori.SessionConfig{Policy: pol, Seed: seed})
	if err != nil {
		return nil, resctrlErr(err)
	}
	return sess, nil
}

// checkResctrlRoot pre-flights -resctrl-root so a missing or unwritable
// tree fails with the remedy instead of a bare path error from deep in
// the writer.
func checkResctrlRoot(root string) error {
	info, err := os.Stat(root)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return fmt.Errorf("-resctrl-root %s does not exist\n  on hardware: mount resctrl first (mount -t resctrl resctrl /sys/fs/resctrl) and run privileged\n  for a dry run: point -resctrl-root at any writable scratch directory (e.g. $(mktemp -d))", root)
	case err != nil:
		return fmt.Errorf("-resctrl-root %s: %w", root, err)
	case !info.IsDir():
		return fmt.Errorf("-resctrl-root %s is not a directory (expected the resctrl mount point or a scratch directory)", root)
	}
	// Probe writability the way the writer will use it: control groups
	// are directories created directly under the root.
	probe := filepath.Join(root, ".satori-probe")
	if err := os.Mkdir(probe, 0o755); err != nil {
		return fmt.Errorf("-resctrl-root %s is not writable: %v\n  on /sys/fs/resctrl this usually means satori needs to run privileged (root or CAP_SYS_ADMIN)\n  otherwise point -resctrl-root at a writable scratch directory", root, err)
	}
	os.Remove(probe)
	return nil
}

// resctrlErr rewrites backend errors whose remedy is a flag change —
// today just the stub perf sampler — and passes everything else through.
func resctrlErr(err error) error {
	if errors.Is(err, rdt.ErrPerfUnimplemented) {
		return fmt.Errorf("%w\n  record a per-tick IPS trace and replay it with -trace <file>, or omit -trace to synthesize one from the simulator", err)
	}
	return err
}

// simPolicy resolves a policy for the simulated backend: clustered
// requests (-cluster-k, or the satori-clustered/lfoc names) go through
// the backend-generic path so the flag is honored; everything else —
// including the sim-only oracle family — resolves from the shared name
// registry.
func simPolicy(name string, seed uint64, clusterK int) (func(satori.Platform) (satori.Policy, error), error) {
	if effectiveClusterK(name, clusterK) > 0 {
		return genericPolicy(name, seed, clusterK)
	}
	return satori.NewPolicyByName(name, seed)
}

// effectiveClusterK resolves the cluster budget a (policy, -cluster-k)
// pair implies: 0 means no clustering; the clustered policies default to
// 8 groups when the flag is unset.
func effectiveClusterK(name string, clusterK int) int {
	if clusterK > 0 {
		return clusterK
	}
	if name == "satori-clustered" || name == "lfoc" {
		return 8
	}
	return 0
}

// genericPolicy resolves the policy names that work against any Platform
// backend. The oracle family needs noise-free simulator access, so it is
// sim-backend-only by construction.
func genericPolicy(name string, seed uint64, clusterK int) (func(satori.Platform) (satori.Policy, error), error) {
	if k := effectiveClusterK(name, clusterK); k > 0 {
		switch name {
		case "satori", "satori-clustered":
			return satori.NewClusteredSatoriPolicy(k, satori.EngineOptions{Seed: seed}), nil
		case "lfoc":
			return satori.NewLFOCPolicy(k), nil
		default:
			return nil, fmt.Errorf("-cluster-k only applies to the satori, satori-clustered, and lfoc policies (got -policy %s)", name)
		}
	}
	switch name {
	case "satori":
		return satori.NewSatoriPolicy(satori.EngineOptions{Seed: seed}), nil
	case "satori-static":
		return satori.NewStaticSatoriPolicy(0.5), nil
	case "satori-throughput":
		return satori.NewStaticSatoriPolicy(1), nil
	case "satori-fairness":
		return satori.NewStaticSatoriPolicy(0), nil
	case "random":
		return satori.NewRandomPolicy(seed), nil
	case "static":
		return satori.NewStaticPolicy(), nil
	case "dcat":
		return satori.NewDCATPolicy(), nil
	case "copart":
		return satori.NewCoPartPolicy(), nil
	case "parties":
		return satori.NewPARTIESPolicy(), nil
	}
	return nil, fmt.Errorf("policy %q is not available on the resctrl backend (oracles need the simulator); valid: copart, dcat, lfoc, parties, random, satori, satori-clustered, satori-fairness, satori-static, satori-throughput, static", name)
}

// synthesizeTrace records a deterministic IPS trace by running the
// simulated testbed under the initial equal split for the whole run
// length — the out-of-the-box sampler when no -trace capture is given.
func synthesizeTrace(machine satori.MachineSpec, jobs []*satori.Workload, seed uint64, ticks int) (*rdt.TraceSampler, error) {
	simulator, err := sim.New(machine, jobs, sim.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	isolated := simulator.MeasureIsolated()
	if ticks < 1 {
		ticks = 1
	}
	rows := make([][]float64, 0, ticks)
	for i := 0; i < ticks; i++ {
		rows = append(rows, simulator.Step().IPS)
	}
	return rdt.NewTraceSampler(isolated, rows)
}

// reportResctrl prints where the control groups landed and round-trips
// one group through ReadGroup so a live deployment can be spot-checked.
func reportResctrl(p *rdt.ResctrlPlatform, njobs int, root string) {
	groups := njobs
	if g := p.Grouping(); g != nil {
		groups = g.Clusters
		fmt.Printf("resctrl: %d jobs clustered onto %d control groups (%s)\n", njobs, groups, g)
	}
	fmt.Printf("resctrl: %d control groups under %s\n", groups, root)
	w := p.Writer()
	ja, err := w.ReadGroup(0)
	if err != nil {
		fmt.Println("resctrl: read-back failed:", err)
		return
	}
	fmt.Printf("resctrl: job 0 schemata round-trip: L3 mask %#x, MB %d%%, cpus %s (%s)\n",
		ja.CATMask, ja.MBAPercent, rdt.FormatCPUList(ja.CPUSet),
		filepath.Join(root, "satori-job0"))
}
