// Command fleet simulates a multi-node cluster serving a continuous
// stream of jobs: every node runs its own SATORI (or baseline) engine, a
// placer decides which node each arriving job co-locates on, and
// fleet-level throughput and fairness are reported per 100 ms tick.
//
// Usage:
//
//	fleet -nodes 8 -arrival-rate 0.5 -duration-mean 30 -seconds 120
//	fleet -nodes 4 -placer fairness -policy parties -csv fleet.csv
//	fleet -nodes 8 -seed 42 -workers 1   # byte-identical to -workers 8
//	fleet -nodes 1000 -shards 16 -event-driven -seconds 300
//	fleet -nodes 64 -sweep-shards 1,4,16,64   # placement quality vs k
//
// Any -workers value produces byte-identical output; parallelism only
// changes wall-clock time. -shards splits placement into POP-style
// independent subproblems, and -event-driven lets phase-stable nodes
// defer detailed ticks; both trade a documented amount of fidelity for
// fleet-scale throughput.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"satori"
	"satori/internal/fleet"
	"satori/internal/harness"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster size")
	arrivalRate := flag.Float64("arrival-rate", 0.5, "fleet-wide Poisson job arrival rate, jobs/second")
	durationMean := flag.Float64("duration-mean", 30, "mean job service time, seconds (exponential, truncated)")
	policyName := flag.String("policy", "satori", "per-node partitioning policy ("+strings.Join(satori.PolicyNames(), ", ")+")")
	placerName := flag.String("placer", "round-robin", "job placement strategy ("+strings.Join(fleet.PlacerNames(), ", ")+")")
	seed := flag.Uint64("seed", 1, "fleet seed; equal seeds replay identically")
	seconds := flag.Float64("seconds", 60, "run length in simulated seconds")
	envWorkers, envErr := harness.WorkersFromEnv()
	workers := flag.Int("workers", envWorkers,
		"node-stepping pool size (0 = one per CPU, 1 = serial; default from SATORI_PARALLEL)")
	suite := flag.String("suite", "parsec", "workload pool jobs draw from (parsec|cloudsuite|ecp)")
	maxJobs := flag.Int("max-jobs", 5, "max co-located jobs per node")
	csvPath := flag.String("csv", "", "write the per-tick fleet trace to this CSV file")
	shards := flag.Int("shards", 1, "POP-style placement shards (clamped to the node count)")
	eventDriven := flag.Bool("event-driven", false,
		"let phase-stable nodes defer detailed ticks (coarse batched catch-up)")
	sweepShards := flag.String("sweep-shards", "",
		"comma-separated shard counts; runs the placement-quality sweep and prints a table instead of a single run")
	flag.Parse()
	if envErr != nil {
		log.Fatal(envErr)
	}

	profiles, err := satori.Suite(*suite)
	if err != nil {
		log.Fatal(err)
	}
	opt := fleet.Options{
		Nodes:          *nodes,
		Policy:         *policyName,
		Placer:         *placerName,
		Seed:           *seed,
		Workers:        *workers,
		MaxJobsPerNode: *maxJobs,
		Shards:         *shards,
		EventDriven:    *eventDriven,
		Stream: fleet.StreamOptions{
			ArrivalRate:  *arrivalRate,
			DurationMean: *durationMean,
			Profiles:     profiles,
		},
	}
	ticks := int(*seconds / satori.TickSeconds)

	if *sweepShards != "" {
		var counts []int
		for _, f := range strings.Split(*sweepShards, ",") {
			var k int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &k); err != nil || k < 1 {
				log.Fatalf("bad -sweep-shards entry %q", f)
			}
			counts = append(counts, k)
		}
		rows, err := fleet.SweepShards(opt, counts, ticks)
		if err != nil {
			log.Fatal(err)
		}
		if err := fleet.WriteShardSweep(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
		return
	}

	cluster, err := fleet.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	report := ticks / 10
	if report < 1 {
		report = 1
	}
	fmt.Printf("fleet: %d nodes (%d shards%s), policy=%s placer=%s, %.2g jobs/s, mean service %.3gs\n",
		*nodes, cluster.ShardCount(), map[bool]string{true: ", event-driven", false: ""}[*eventDriven],
		*policyName, *placerName, *arrivalRate, *durationMean)
	for i := 1; i <= ticks; i++ {
		st, err := cluster.Step()
		if err != nil {
			log.Fatal(err)
		}
		if i%report == 0 {
			fmt.Printf("t=%7.1fs  jobs=%3d queued=%2d  sumips=%.3g  geomean=%.3f  jain=%.3f\n",
				st.Time, st.Running, st.Queued, st.SumIPS, st.GeoMeanSpeedup, st.Jain)
		}
	}
	fmt.Println(cluster.Summary())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.Series().WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("trace written to", *csvPath)
	}
}
