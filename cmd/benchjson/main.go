// Command benchjson converts `go test -bench` output into a committed
// JSON snapshot and enforces performance gates, so perf claims live in
// version control next to the code that earns them and CI fails loudly
// when the hot path regresses.
//
// Usage:
//
//	go test -run '^$' -bench Overhead -benchmem ./... | benchjson -out BENCH.json -label after
//	... | benchjson -max-allocs EngineOverheadIncremental=8
//	... | benchjson -min-ratio 'SolveLowerVec/SolveLowerMatrix32:ns/cand=2.0'
//
// Schema: {"<label>": {"<benchmark>": {"ns_per_op": N, "allocs_per_op": N,
// "metrics": {"<unit>": N}}}}. With -label and an existing -out file the
// new section is merged in, so a before/after trajectory accumulates in
// one file. Repeated -count runs collapse to the fastest time and the
// largest allocation count (best-of timing, conservative gating).
//
// Gates (repeatable):
//
//	-max-allocs NAME=N          fail when NAME allocates more than N/op
//	-min-ratio A[:unit]/B[:unit]=R
//	                            fail when A's metric over B's metric is
//	                            below R (default unit ns/op)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's collapsed measurements.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics carries ReportMetric units (ns/cand, ns/eval, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	out := flag.String("out", "", "write the JSON snapshot here (default stdout)")
	label := flag.String("label", "run", "section name for this run inside the snapshot")
	var maxAllocs, minRatios listFlag
	flag.Var(&maxAllocs, "max-allocs", "NAME=N gate: fail when NAME allocates more than N per op (repeatable)")
	flag.Var(&minRatios, "min-ratio", "A[:unit]/B[:unit]=R gate: fail when the ratio is below R (repeatable)")
	flag.Parse()

	entries, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}
	failed := false
	for _, g := range maxAllocs {
		if err := gateAllocs(entries, g); err != nil {
			fmt.Fprintln(os.Stderr, "GATE FAILED:", err)
			failed = true
		}
	}
	for _, g := range minRatios {
		if err := gateRatio(entries, g); err != nil {
			fmt.Fprintln(os.Stderr, "GATE FAILED:", err)
			failed = true
		}
	}

	snapshot := map[string]map[string]*Entry{}
	if *out != "" {
		if blob, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(blob, &snapshot); err != nil {
				fatal(fmt.Errorf("benchjson: existing %s is not a snapshot: %w", *out, err))
			}
		}
	}
	snapshot[*label] = entries
	blob, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// parse collects Benchmark lines, collapsing repeated -count runs.
func parse(sc *bufio.Scanner) (map[string]*Entry, error) {
	entries := map[string]*Entry{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-P  N  V unit  [V unit]...
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		e := entries[name]
		if e == nil {
			e = &Entry{}
			entries[name] = e
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				if e.NsPerOp == 0 || v < e.NsPerOp {
					e.NsPerOp = v
				}
			case "allocs/op":
				if v > e.AllocsPerOp {
					e.AllocsPerOp = v
				}
			case "B/op":
				if v > e.BytesPerOp {
					e.BytesPerOp = v
				}
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				if cur, ok := e.Metrics[unit]; !ok || v < cur {
					e.Metrics[unit] = v
				}
			}
		}
	}
	return entries, sc.Err()
}

// gateAllocs enforces NAME=N.
func gateAllocs(entries map[string]*Entry, gate string) error {
	name, limitStr, ok := strings.Cut(gate, "=")
	if !ok {
		return fmt.Errorf("malformed -max-allocs %q (want NAME=N)", gate)
	}
	limit, err := strconv.ParseFloat(limitStr, 64)
	if err != nil {
		return fmt.Errorf("malformed -max-allocs %q: %w", gate, err)
	}
	e, ok := entries[name]
	if !ok {
		return fmt.Errorf("-max-allocs: benchmark %q not in input", name)
	}
	if e.AllocsPerOp > limit {
		return fmt.Errorf("%s allocates %.0f/op, limit %.0f", name, e.AllocsPerOp, limit)
	}
	return nil
}

// metric resolves NAME[:unit] against the parsed entries.
func metric(entries map[string]*Entry, ref string) (float64, error) {
	name, unit, hasUnit := strings.Cut(ref, ":")
	e, ok := entries[name]
	if !ok {
		return 0, fmt.Errorf("benchmark %q not in input", name)
	}
	if !hasUnit || unit == "ns/op" {
		return e.NsPerOp, nil
	}
	v, ok := e.Metrics[unit]
	if !ok {
		return 0, fmt.Errorf("benchmark %q has no %q metric", name, unit)
	}
	return v, nil
}

// gateRatio enforces A[:unit]/B[:unit]=R.
func gateRatio(entries map[string]*Entry, gate string) error {
	spec, minStr, ok := strings.Cut(gate, "=")
	if !ok {
		return fmt.Errorf("malformed -min-ratio %q (want A/B=R)", gate)
	}
	min, err := strconv.ParseFloat(minStr, 64)
	if err != nil {
		return fmt.Errorf("malformed -min-ratio %q: %w", gate, err)
	}
	numRef, denRef, ok := strings.Cut(spec, "/")
	if !ok {
		return fmt.Errorf("malformed -min-ratio %q (want A/B=R)", gate)
	}
	num, err := metric(entries, numRef)
	if err != nil {
		return fmt.Errorf("-min-ratio %s: %w", gate, err)
	}
	den, err := metric(entries, denRef)
	if err != nil {
		return fmt.Errorf("-min-ratio %s: %w", gate, err)
	}
	if den <= 0 {
		return fmt.Errorf("-min-ratio %s: denominator is %v", gate, den)
	}
	if ratio := num / den; ratio < min {
		return fmt.Errorf("%s / %s = %.2f, below required %.2f", numRef, denRef, ratio, min)
	}
	return nil
}
