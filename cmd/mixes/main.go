// Command mixes lists the paper's job-mix enumerations: 21 PARSEC mixes
// of 5 jobs, 10 CloudSuite mixes of 3, 10 ECP mixes of 2, with the
// configuration-space size each mix induces on the default machine.
//
// With -lc-frac it instead generates mixed batch+latency-critical mixes
// (workloads.MixedMixes): each mix holds ceil(jobs·frac) LC services
// with per-instance scaled p99 targets next to distinct batch jobs.
// The listing is reproducible from the flags alone; -json additionally
// dumps every generated profile (SLO sections included) so a mix can be
// fed back through -workloads files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"satori/internal/sim"
	"satori/internal/workloads"
)

func main() {
	suite := flag.String("suite", "", "limit to one suite (parsec|cloudsuite|ecp); batch suite for -lc-frac")
	lcFrac := flag.Float64("lc-frac", 0, "generate mixed batch+LC mixes with this latency-critical slot fraction (0 = paper mixes)")
	jobs := flag.Int("jobs", 5, "co-location size for generated mixed mixes")
	count := flag.Int("count", 10, "how many mixed mixes to generate")
	seed := flag.Uint64("seed", 1, "seed for mixed-mix generation; equal flags reproduce equal mixes")
	scaleMin := flag.Float64("slo-scale-min", 1, "lower bound of the uniform per-job p99 target scaling")
	scaleMax := flag.Float64("slo-scale-max", 1, "upper bound of the uniform per-job p99 target scaling")
	jsonOut := flag.Bool("json", false, "with -lc-frac, dump the generated profiles as a -workloads JSON file")
	flag.Parse()

	if *lcFrac > 0 {
		listMixed(*suite, *lcFrac, *jobs, *count, *seed, *scaleMin, *scaleMax, *jsonOut)
		return
	}

	suites := []string{workloads.SuitePARSEC, workloads.SuiteCloudSuite, workloads.SuiteECP}
	if *suite != "" {
		suites = []string{*suite}
	}
	machine := sim.DefaultMachine()
	for _, name := range suites {
		mixes, err := workloads.PaperMixes(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d mixes of %d jobs ==\n", name, len(mixes), len(mixes[0].Profiles))
		for _, m := range mixes {
			space, err := machine.Space(len(m.Profiles))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  mix %2d: %-70s %12.0f configs\n",
				m.Index, strings.Join(m.Names(), "+"), space.Size())
		}
	}
}

func listMixed(suite string, frac float64, jobs, count int, seed uint64, scaleMin, scaleMax float64, jsonOut bool) {
	mixes, err := workloads.MixedMixes(workloads.MixedMixOptions{
		Suite: suite, Jobs: jobs, LCFraction: frac, Count: count, Seed: seed,
		TargetScaleMin: scaleMin, TargetScaleMax: scaleMax,
	})
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		// One flat profile list per run: mix boundaries are recoverable
		// from -jobs, and duplicate LC instances carry distinct names.
		var ps []*sim.Profile
		for _, m := range mixes {
			ps = append(ps, m.Profiles...)
		}
		if err := workloads.WriteProfiles(os.Stdout, ps); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("== mixed batch+lc: %d mixes of %d jobs (lc-frac %.2f, seed %d) ==\n",
		len(mixes), jobs, frac, seed)
	for _, m := range mixes {
		var parts []string
		for _, p := range m.Profiles {
			if p.SLO != nil {
				parts = append(parts, fmt.Sprintf("%s[p99<=%.0fms]", p.Name, p.SLO.TargetP99*1000))
			} else {
				parts = append(parts, p.Name)
			}
		}
		fmt.Printf("  mix %2d: %s\n", m.Index, strings.Join(parts, "+"))
	}
}
