// Command mixes lists the paper's job-mix enumerations: 21 PARSEC mixes
// of 5 jobs, 10 CloudSuite mixes of 3, 10 ECP mixes of 2, with the
// configuration-space size each mix induces on the default machine.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"satori/internal/sim"
	"satori/internal/workloads"
)

func main() {
	suite := flag.String("suite", "", "limit to one suite (parsec|cloudsuite|ecp)")
	flag.Parse()

	suites := []string{workloads.SuitePARSEC, workloads.SuiteCloudSuite, workloads.SuiteECP}
	if *suite != "" {
		suites = []string{*suite}
	}
	machine := sim.DefaultMachine()
	for _, name := range suites {
		mixes, err := workloads.PaperMixes(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d mixes of %d jobs ==\n", name, len(mixes), len(mixes[0].Profiles))
		for _, m := range mixes {
			space, err := machine.Space(len(m.Profiles))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  mix %2d: %-70s %12.0f configs\n",
				m.Index, strings.Join(m.Names(), "+"), space.Size())
		}
	}
}
