// Command oracle runs the brute-force configuration search of Sec. IV on
// a chosen job mix: the offline, perfect-knowledge reference the paper
// normalizes every result against. It prints the throughput-optimal,
// fairness-optimal and balanced-optimal configurations for the mix's
// initial phase state, with their scores and mutual distances.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"satori/internal/harness"
	"satori/internal/metrics"
	"satori/internal/policies/oracle"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/workloads"
)

func main() {
	workloadList := flag.String("workloads", "", "comma-separated benchmark names")
	suite := flag.String("suite", "parsec", "suite for -mix")
	mixIdx := flag.Int("mix", 0, "paper mix index within -suite")
	warmup := flag.Float64("warmup", 0, "advance this many simulated seconds before searching")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var profiles []*sim.Profile
	if *workloadList != "" {
		for _, name := range strings.Split(*workloadList, ",") {
			p, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			profiles = append(profiles, p)
		}
	} else {
		mixes, err := workloads.PaperMixes(*suite)
		if err != nil {
			log.Fatal(err)
		}
		if *mixIdx < 0 || *mixIdx >= len(mixes) {
			log.Fatalf("mix %d out of range (%d mixes)", *mixIdx, len(mixes))
		}
		profiles = mixes[*mixIdx].Profiles
	}

	s, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: *seed, NoiseSigma: -1})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < int(*warmup/sim.TickSeconds); i++ {
		s.Step()
	}
	space := s.Space()
	fmt.Printf("space: %.0f configurations", space.Size())
	if space.Size() <= 20000 {
		fmt.Println(" (exhaustive search)")
	} else {
		fmt.Println(" (multi-restart hill climbing)")
	}

	met := harness.DefaultMetrics()
	sr := oracle.NewSearcher(s, oracle.Options{
		Seed: *seed, ThroughputMetric: met.Throughput, FairnessMetric: met.Fairness,
	})
	score := func(c resource.Config) (float64, float64) {
		ips, err := s.ExactIPS(c)
		if err != nil {
			log.Fatal(err)
		}
		iso := s.ExactIsolated()
		return metrics.NormalizedThroughput(met.Throughput, ips, iso),
			metrics.NormalizedFairness(met.Fairness, ips, iso)
	}

	eq := space.EqualSplit()
	tEq, fEq := score(eq)
	fmt.Printf("\n%-20s T=%.4f F=%.4f  %s\n", "equal-split", tEq, fEq, space.String(eq))
	var configs []resource.Config
	for _, goal := range []oracle.Goal{oracle.Throughput, oracle.Fairness, oracle.Balanced} {
		wT, wF := goal.Weights()
		best, _ := sr.Search(wT, wF)
		t, f := score(best)
		fmt.Printf("%-20s T=%.4f F=%.4f  %s\n", goal.String(), t, f, space.String(best))
		configs = append(configs, best)
	}
	fmt.Printf("\ndistance(T-opt, F-opt) = %.2f units (max possible %.2f)\n",
		resource.Distance(configs[0], configs[1]), space.MaxDistance())
}
