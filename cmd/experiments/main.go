// Command experiments regenerates the SATORI paper's figures and tables
// on the simulated testbed (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	experiments -list                  # show available experiment IDs
//	experiments -run fig7              # reproduce one figure
//	experiments -run fig7,fig8         # several
//	experiments -all                   # everything (minutes of runtime)
//	experiments -ticks 300 -mixes 5    # reduced scale for quick looks
//	experiments -parallel 4 -run fig7  # bound the worker pool (0 = all CPUs)
//
// The SATORI_PARALLEL environment variable sets the default worker
// count; -parallel overrides it. Any worker count produces the same
// output byte for byte — parallelism only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"satori/internal/harness"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	runIDs := flag.String("run", "", "comma-separated experiment IDs to run")
	all := flag.Bool("all", false, "run every experiment")
	ticks := flag.Int("ticks", 600, "run length per policy run, in 100ms ticks")
	seed := flag.Uint64("seed", 42, "base random seed")
	mixes := flag.Int("mixes", 0, "cap the number of job mixes per suite (0 = paper scale)")
	csvDir := flag.String("csv", "", "also write each experiment's tables as CSV files into this directory")
	cacheDir := flag.String("cache", "", "memoize suite cells in this directory; repeated reproductions skip unchanged (policy, mix, seed) runs")
	envWorkers, envErr := harness.WorkersFromEnv()
	parallel := flag.Int("parallel", envWorkers,
		"worker pool size for independent runs (0 = one per CPU, 1 = serial; default from SATORI_PARALLEL)")
	flag.Parse()
	if envErr != nil {
		log.Fatal(envErr)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	var selected []harness.Experiment
	switch {
	case *all:
		selected = harness.Experiments()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.FindExperiment(id)
			if !ok {
				log.Fatalf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -run <ids>, -all, or -list")
		os.Exit(2)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	opt := harness.ExpOptions{Ticks: *ticks, Seed: *seed, MixLimit: *mixes, Workers: *parallel}
	if *cacheDir != "" {
		cache, err := harness.NewCellCache(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		opt.Cache = cache
		defer func() {
			hits, misses, _ := cache.Stats()
			fmt.Printf("cell cache: %d hits, %d runs stored\n", hits, misses)
		}()
	}
	for _, e := range selected {
		start := time.Now()
		rep, err := e.Run(opt)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			for i, tbl := range rep.Tables {
				path := fmt.Sprintf("%s/%s_%d.csv", *csvDir, rep.ID, i)
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := tbl.WriteCSV(f); err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
}
