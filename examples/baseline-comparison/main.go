// Baseline comparison: run the same CloudSuite job mix under every
// competing technique of Sec. IV — Random, dCAT, CoPart, PARTIES,
// SATORI — plus the Balanced Oracle ceiling, and print each one's
// run-average throughput and fairness (the Fig. 7/12 presentation for a
// single mix).
package main

import (
	"fmt"
	"log"

	"satori"
)

func main() {
	mixes, err := satori.PaperMixes(satori.SuiteCloudSuite)
	if err != nil {
		log.Fatal(err)
	}
	mix := mixes[0] // data-analytics + graph-analytics + in-memory-analytics
	fmt.Println("job mix:", mix.Names())

	policies := []struct {
		name    string
		factory func(satori.Platform) (satori.Policy, error)
	}{
		{"random", satori.NewRandomPolicy(11)},
		{"dcat", satori.NewDCATPolicy()},
		{"copart", satori.NewCoPartPolicy()},
		{"parties", satori.NewPARTIESPolicy()},
		{"satori", satori.NewSatoriPolicy(satori.EngineOptions{Seed: 11})},
		{"balanced-oracle", satori.NewOraclePolicy(satori.BalancedOracle)},
	}

	type row struct {
		name    string
		summary satori.Summary
	}
	var rows []row
	for _, p := range policies {
		sess, err := satori.NewSession(satori.SessionConfig{
			Workloads: mix.Profiles,
			Policy:    p.factory,
			Seed:      11, // identical seed -> identical workload noise
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Run(600); err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{p.name, sess.Summary()})
	}

	oracle := rows[len(rows)-1].summary
	fmt.Printf("%-16s %-11s %-9s %-14s %s\n", "policy", "throughput", "fairness", "%oracle T", "%oracle F")
	for _, r := range rows {
		fmt.Printf("%-16s %-11.3f %-9.3f %-14.1f %.1f\n",
			r.name, r.summary.MeanThroughput, r.summary.MeanFairness,
			r.summary.MeanThroughput/oracle.MeanThroughput*100,
			r.summary.MeanFairness/oracle.MeanFairness*100)
	}
}
