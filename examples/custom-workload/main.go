// Custom workload: define your own benchmark profiles — a latency-bound
// key-value store, a batch compression job, and a streaming ETL pipeline —
// co-locate them with two PARSEC jobs, and let SATORI discover the
// partition that matches each job's resource appetite.
//
// This is the path a downstream user takes to model their own fleet:
// encode each application's phase schedule and sensitivities (Amdahl
// serial fraction, LLC miss-ratio curve, bandwidth demand) and hand the
// profiles to a Session.
package main

import (
	"fmt"
	"log"

	"satori"
)

// kvStore is latency-bound with a hot in-cache index: it loves LLC ways,
// barely scales with cores, and needs little bandwidth.
func kvStore() *satori.Workload {
	return &satori.Workload{
		Name: "kv-store", Suite: "custom",
		Phases: []satori.Phase{
			{
				Name: "serve", Instructions: 2.4e9, IPSPeak: 1.8e10,
				SerialFrac: 0.45, MPIMax: 0.030, MPIMin: 0.003,
				WaysHalf: 4.5, MemStallCost: 240, PowerSensitivity: 0.5,
			},
			{
				Name: "compact", Instructions: 1.2e9, IPSPeak: 1.5e10,
				SerialFrac: 0.30, MPIMax: 0.040, MPIMin: 0.020,
				WaysHalf: 2.0, MemStallCost: 60, PowerSensitivity: 0.5,
			},
		},
	}
}

// compressor is an embarrassingly parallel batch job: all it wants is
// cores.
func compressor() *satori.Workload {
	return &satori.Workload{
		Name: "compressor", Suite: "custom",
		Phases: []satori.Phase{
			{
				Name: "compress", Instructions: 4e9, IPSPeak: 3.6e10,
				SerialFrac: 0.02, MPIMax: 0.002, MPIMin: 0.001,
				WaysHalf: 1.0, MemStallCost: 80, PowerSensitivity: 0.9,
			},
		},
	}
}

// etl streams records through transform stages: flat miss-ratio curve,
// very high bandwidth demand.
func etl() *satori.Workload {
	return &satori.Workload{
		Name: "etl", Suite: "custom",
		Phases: []satori.Phase{
			{
				Name: "extract", Instructions: 2.2e9, IPSPeak: 2.4e10,
				SerialFrac: 0.22, MPIMax: 0.050, MPIMin: 0.044,
				WaysHalf: 1.0, MemStallCost: 22, PowerSensitivity: 0.6,
			},
			{
				Name: "transform", Instructions: 1.8e9, IPSPeak: 2.8e10,
				SerialFrac: 0.10, MPIMax: 0.030, MPIMin: 0.024,
				WaysHalf: 1.2, MemStallCost: 30, PowerSensitivity: 0.7,
			},
		},
	}
}

func main() {
	canneal, err := satori.WorkloadByName("canneal")
	if err != nil {
		log.Fatal(err)
	}
	swaptions, err := satori.WorkloadByName("swaptions")
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*satori.Workload{kvStore(), compressor(), etl(), canneal, swaptions}

	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads: jobs,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(600); err != nil {
		log.Fatal(err)
	}

	st, err := sess.Step()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("jobs:", sess.JobNames())
	fmt.Println("summary:", sess.Summary())
	fmt.Println("final partition (units of cores / llc-ways / mem-bw per job):")
	for j, name := range sess.JobNames() {
		fmt.Printf("  %-12s cores=%d ways=%d bw=%d  speedup=%.2f\n",
			name,
			st.Config.Alloc[0][j], st.Config.Alloc[1][j], st.Config.Alloc[2][j],
			st.Speedups[j])
	}
	fmt.Println("expect: compressor holds cores, kv-store holds LLC ways, etl holds bandwidth")
}
