// Quickstart: co-locate five PARSEC workloads on the default (paper
// testbed shaped) machine, let SATORI partition cores, LLC ways and
// memory bandwidth for 60 simulated seconds, and print the per-goal
// scores as they converge.
package main

import (
	"fmt"
	"log"

	"satori"
)

func main() {
	jobs, err := satori.Suite(satori.SuitePARSEC)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := satori.NewSession(satori.SessionConfig{
		Workloads: jobs[:5],
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("co-located jobs:", sess.JobNames())
	fmt.Printf("configuration space: %.0f partitions\n", sess.SpaceInfo().Size())

	for tick := 1; tick <= 600; tick++ { // 60 s at 10 Hz
		st, err := sess.Step()
		if err != nil {
			log.Fatal(err)
		}
		if tick%100 == 0 {
			fmt.Printf("t=%4.1fs  throughput=%.3f  fairness=%.3f\n",
				st.Time, st.Throughput, st.Fairness)
		}
	}

	// SATORI's internals are inspectable: the dynamic goal weights and
	// the per-configuration records of Sec. III-B.
	if eng, ok := sess.Policy().(*satori.Engine); ok {
		w := eng.LastWeights()
		fmt.Printf("final weights: W_T=%.2f W_F=%.2f (equalization %.2f, prioritization %.2f)\n",
			w.T, w.F, w.TE, w.TP)
		fmt.Printf("distinct configurations evaluated: %d\n", eng.Records().Len())
	}
	fmt.Println("summary:", sess.Summary())
}
