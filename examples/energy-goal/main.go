// Energy goal: the paper notes SATORI's objective is extensible beyond
// throughput and fairness (e.g. energy efficiency) and that the engine
// can also manage a RAPL-style power cap. This example enables the power
// resource on the machine (four partitionable resources) and compares
// SATORI against the equal-split baseline under a constrained socket
// power budget.
package main

import (
	"fmt"
	"log"

	"satori"
)

func run(policy func(satori.Platform) (satori.Policy, error), name string, machine satori.MachineSpec, jobs []*satori.Workload) satori.Summary {
	sess, err := satori.NewSession(satori.SessionConfig{
		Machine:   &machine,
		Workloads: jobs,
		Policy:    policy,
		Seed:      21,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(600); err != nil {
		log.Fatal(err)
	}
	sum := sess.Summary()
	fmt.Printf("%-12s %s\n", name, sum)
	return sum
}

func main() {
	machine := satori.DefaultMachine()
	machine.PowerUnits = 8 // enable RAPL-style power-cap partitioning

	ecp, err := satori.Suite(satori.SuiteECP)
	if err != nil {
		log.Fatal(err)
	}
	jobs := ecp[:3] // minife + xsbench + swfft

	fmt.Println("machine resources: cores=10 llc-ways=11 mem-bw=10 power=8")
	fmt.Println("jobs:", jobs[0].Name, jobs[1].Name, jobs[2].Name)

	static := run(satori.NewStaticPolicy(), "equal-split", machine, jobs)
	sat := run(satori.NewSatoriPolicy(satori.EngineOptions{Seed: 21}), "satori", machine, jobs)

	fmt.Printf("satori vs equal split: throughput %+.1f%%, fairness %+.1f%%\n",
		(sat.MeanThroughput/static.MeanThroughput-1)*100,
		(sat.MeanFairness/static.MeanFairness-1)*100)
	fmt.Println("SATORI shifts power shares toward the frequency-sensitive jobs")
	fmt.Println("(minife's PowerSensitivity is high; xsbench is latency-bound and barely cares)")
}
