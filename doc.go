// Package satori is a from-scratch reproduction of "SATORI: Efficient and
// Fair Resource Partitioning by Sacrificing Short-Term Benefits for
// Long-Term Gains" (Roy, Patel, Tiwari — ISCA 2021).
//
// SATORI partitions shared CMP resources (cores, LLC ways, memory
// bandwidth, optionally a power cap) among co-located jobs, actively
// co-optimizing two conflicting goals — system throughput and fairness —
// with a Bayesian-optimization engine whose objective function dynamically
// re-prioritizes the goals over time (temporarily trading one goal to gain
// more on both in the long run).
//
// Because the paper's Intel RDT hardware control surface (CAT/MBA/RAPL,
// pqos) is not assumed, the repository ships a faithful simulated testbed
// (see DESIGN.md for the substitution analysis): an analytical multicore
// performance model with program phases, synthetic profiles for all 17
// benchmarks the paper evaluates (PARSEC, CloudSuite, ECP), an RDT-shaped
// control plane, every competing policy (Random, dCAT, CoPart, PARTIES)
// and the brute-force Oracles, plus a harness that regenerates every
// figure of the paper's evaluation.
//
// # Quick start
//
//	jobs, _ := satori.Suite(satori.SuitePARSEC)
//	sess, _ := satori.NewSession(satori.SessionConfig{Workloads: jobs[:5]})
//	for i := 0; i < 600; i++ { // 60 seconds at 10 Hz
//		st, _ := sess.Step()
//		_ = st // per-interval throughput, fairness, partitions
//	}
//	fmt.Println(sess.Summary())
//
// The public API in this package is a thin facade; the implementation
// lives in internal/ packages (core = the SATORI engine, sim = the
// testbed, bo/gp/linalg = the optimizer stack, policies/* = baselines,
// harness = the experiment drivers).
package satori
