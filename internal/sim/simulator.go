package sim

import (
	"fmt"
	"math"

	"satori/internal/resource"
	"satori/internal/slo"
	"satori/internal/stats"
)

// TickSeconds is the monitoring and reconfiguration interval: 100 ms,
// matching the paper's 10 Hz pqos sampling and 0.1 s allocation updates.
const TickSeconds = 0.1

// Options tunes simulator construction.
type Options struct {
	// Seed drives all simulator randomness; equal seeds replay
	// identically.
	Seed uint64
	// NoiseSigma is the relative std-dev of multiplicative measurement
	// noise on observed IPS. Defaults to 0.02 (~2%, typical for pqos
	// counters on short windows). Set negative for noise-free runs.
	NoiseSigma float64
}

// Simulator co-locates a set of jobs on one machine and advances time in
// 100 ms ticks under a current resource partitioning configuration.
type Simulator struct {
	spec  MachineSpec
	space *resource.Space
	jobs  []*job
	rng   *stats.RNG
	sigma float64

	current resource.Config
	ticks   int
	applies int // number of Apply calls that changed the configuration

	iCores, iWays, iBW, iPower int // resource row indices

	// Sampled-simulation state (Pac-Sim style): the noise-free model IPS
	// of every job as computed by the last detailed Step, valid only
	// while nothing that feeds ipsModel can have moved — same phases,
	// same configuration, same job set. StepSampled extrapolates from it.
	modelIPS []float64
	ipsValid bool
}

type job struct {
	profile  *Profile
	phaseIdx int
	workDone float64 // instructions completed in the current phase
	// critical caches profile.SLO.CriticalIPS() for latency-critical
	// jobs (0 for batch): the model-IPS threshold below which the job
	// violates its p99 target, consulted by the extrapolation guards.
	critical float64
}

func newJob(p *Profile) *job {
	j := &job{profile: p}
	if p.SLO != nil {
		j.critical = p.SLO.CriticalIPS()
	}
	return j
}

// New builds a simulator running one job per profile, starting from the
// equal-split configuration of Algorithm 1.
func New(spec MachineSpec, profiles []*Profile, opt Options) (*Simulator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sim: need at least one job")
	}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	space, err := spec.Space(len(profiles))
	if err != nil {
		return nil, err
	}
	sigma := opt.NoiseSigma
	if sigma == 0 {
		sigma = 0.02
	}
	if sigma < 0 {
		sigma = 0
	}
	s := &Simulator{
		spec:   spec,
		space:  space,
		rng:    stats.NewRNG(opt.Seed ^ 0x5A70121),
		sigma:  sigma,
		iCores: resourceIndex(space, resource.Cores),
		iWays:  resourceIndex(space, resource.LLCWays),
		iBW:    resourceIndex(space, resource.MemBW),
		iPower: resourceIndex(space, resource.Power),
	}
	for _, p := range profiles {
		s.jobs = append(s.jobs, newJob(p))
	}
	s.current = space.EqualSplit()
	return s, nil
}

// Space returns the configuration space of this co-location.
func (s *Simulator) Space() *resource.Space { return s.space }

// Spec returns the machine description.
func (s *Simulator) Spec() MachineSpec { return s.spec }

// NumJobs returns the number of co-located jobs.
func (s *Simulator) NumJobs() int { return len(s.jobs) }

// JobName returns the profile name of job j.
func (s *Simulator) JobName(j int) string { return s.jobs[j].profile.Name }

// SLOSpecs returns the per-slot SLO specs of the live job set, nil
// entries marking batch jobs. The slice is freshly allocated (callers
// hold it across churn); it is nil-safe to range even when no job is
// latency-critical.
func (s *Simulator) SLOSpecs() []*slo.Spec {
	specs := make([]*slo.Spec, len(s.jobs))
	for j, jb := range s.jobs {
		specs[j] = jb.profile.SLO
	}
	return specs
}

// nearSLOBoundary reports whether a latency-critical job's cached model
// IPS sits within the onset margin of its critical rate — close enough
// that per-tick noise can flip the violation verdict. Extrapolation
// fast paths refuse inside the band so an SLO-violation onset is never
// jumped over; batch jobs (critical == 0) never trigger it.
func (s *Simulator) nearSLOBoundary(jb *job, ips float64) bool {
	if jb.critical == 0 {
		return false
	}
	return math.Abs(ips-jb.critical) <= slo.DefaultOnsetMargin*jb.critical
}

// Now returns the simulated time in seconds.
func (s *Simulator) Now() float64 { return float64(s.ticks) * TickSeconds }

// Ticks returns the number of completed 100 ms steps.
func (s *Simulator) Ticks() int { return s.ticks }

// Applies returns how many configuration changes have been applied — the
// reconfiguration count used in overhead accounting.
func (s *Simulator) Applies() int { return s.applies }

// Current returns (a copy of) the active configuration.
func (s *Simulator) Current() resource.Config { return s.current.Clone() }

// CurrentEquals reports whether c equals the installed configuration,
// without cloning either side — the steady-state fast path for backends
// that elide re-applying an unchanged partition.
func (s *Simulator) CurrentEquals(c resource.Config) bool { return s.current.Equal(c) }

// ConfigShapeError is the backend-shared typed rejection of a
// configuration whose dimensions do not match the live job set — the
// typical symptom of a policy holding a configuration from before an
// AddJob/RemoveJob churn event. The type lives in internal/resource so
// every Platform backend rejects stale shapes identically.
type ConfigShapeError = resource.ConfigShapeError

// CheckShape reports a *ConfigShapeError when c's dimensions do not match
// the live space (e.g. a configuration decided before AddJob/RemoveJob
// changed the job set), and nil when the shape is current. It checks only
// dimensions, not allocation sums — Apply still runs full validation.
func (s *Simulator) CheckShape(c resource.Config) error {
	return resource.CheckShape(s.space, c)
}

// Apply installs a new resource partitioning configuration, taking effect
// from the next Step. Identical configurations are deduplicated (real
// CAT/MBA MSR writes are skipped when nothing changes). A configuration
// shaped for a different job set (stale after AddJob/RemoveJob) is
// rejected with a typed *ConfigShapeError rather than silently
// misallocating.
func (s *Simulator) Apply(c resource.Config) error {
	if err := s.CheckShape(c); err != nil {
		return err
	}
	if err := s.space.Validate(c); err != nil {
		return err
	}
	if !s.current.Equal(c) {
		s.current = c.Clone()
		s.applies++
		// A new partition changes every job's model IPS: force the next
		// tick through the detailed path.
		s.ipsValid = false
	}
	return nil
}

// PhaseName returns the name of job j's current phase.
func (s *Simulator) PhaseName(j int) string {
	jb := s.jobs[j]
	return jb.profile.Phases[jb.phaseIdx].Name
}

// ReplaceJob swaps job j's workload for a new profile, modeling a job
// departure followed by a new arrival in the same slot (the workload-mix
// change of Algorithm 1 line 12). The new job starts at its first phase;
// the resource partition is left untouched — it is the policy's task to
// adapt, which Sec. III-C notes requires no re-initialization in SATORI.
func (s *Simulator) ReplaceJob(j int, p *Profile) error {
	if j < 0 || j >= len(s.jobs) {
		return fmt.Errorf("sim: ReplaceJob index %d out of range (%d jobs)", j, len(s.jobs))
	}
	if err := p.Validate(); err != nil {
		return err
	}
	s.jobs[j] = newJob(p)
	s.ipsValid = false
	return nil
}

// AddJob admits a new job running profile p, growing the co-location by
// one slot (the fleet layer's job-arrival path). The configuration space
// changes dimension, so the partition is re-split to the equal split of
// the new job set and every previously issued *resource.Space pointer and
// configuration becomes stale: callers must re-measure isolated baselines
// and re-initialize any policy bound to the old space (the session layer
// does both). Fails without side effects when the machine cannot give one
// unit of every resource to each job.
func (s *Simulator) AddJob(p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	space, err := s.spec.Space(len(s.jobs) + 1)
	if err != nil {
		return fmt.Errorf("sim: AddJob: %w", err)
	}
	s.jobs = append(s.jobs, newJob(p))
	s.installSpace(space)
	return nil
}

// RemoveJob evicts job j (a departure), shrinking the co-location by one
// slot; jobs above j shift down by one index. Like AddJob this re-splits
// the partition and invalidates all prior Space pointers and
// configurations. The last job cannot be removed — an empty machine has
// no configuration space; tear the simulator down instead.
func (s *Simulator) RemoveJob(j int) error {
	if j < 0 || j >= len(s.jobs) {
		return fmt.Errorf("sim: RemoveJob index %d out of range (%d jobs)", j, len(s.jobs))
	}
	if len(s.jobs) == 1 {
		return fmt.Errorf("sim: RemoveJob would leave zero jobs; a co-location needs at least one")
	}
	space, err := s.spec.Space(len(s.jobs) - 1)
	if err != nil {
		return fmt.Errorf("sim: RemoveJob: %w", err)
	}
	s.jobs = append(s.jobs[:j], s.jobs[j+1:]...)
	s.installSpace(space)
	return nil
}

// installSpace swaps in the re-dimensioned space after membership churn
// and resets the partition to its equal split (counted as a
// reconfiguration: real hardware would rewrite every COS).
func (s *Simulator) installSpace(space *resource.Space) {
	s.space = space
	s.iCores = resourceIndex(space, resource.Cores)
	s.iWays = resourceIndex(space, resource.LLCWays)
	s.iBW = resourceIndex(space, resource.MemBW)
	s.iPower = resourceIndex(space, resource.Power)
	s.current = space.EqualSplit()
	s.applies++
	s.ipsValid = false
}

// phase returns job j's current phase.
func (j *job) phase() Phase { return j.profile.Phases[j.phaseIdx] }

// alloc extracts job j's units of every resource from config c.
type alloc struct {
	cores, ways, bw, power int
}

func (s *Simulator) jobAlloc(c resource.Config, j int) alloc {
	a := alloc{
		cores: c.Alloc[s.iCores][j],
		ways:  c.Alloc[s.iWays][j],
		bw:    c.Alloc[s.iBW][j],
	}
	if s.iPower >= 0 {
		a.power = c.Alloc[s.iPower][j]
	}
	return a
}

// fullAlloc is the whole machine (isolated execution).
func (s *Simulator) fullAlloc() alloc {
	return alloc{cores: s.spec.Cores, ways: s.spec.LLCWays, bw: s.spec.MemBWUnits, power: s.spec.PowerUnits}
}

// amdahl returns the parallel speedup on c cores for serial fraction f.
func amdahl(c int, f float64) float64 {
	return 1 / (f + (1-f)/float64(c))
}

// mpi evaluates the phase's miss-ratio curve at w ways.
func (p Phase) mpi(w int) float64 {
	return p.MPIMin + (p.MPIMax-p.MPIMin)*math.Exp(-float64(w-1)/p.WaysHalf)
}

// ipsModel returns the noise-free instantaneous IPS of phase p under
// allocation a on machine m.
func (s *Simulator) ipsModel(p Phase, a alloc) float64 {
	coreScale := amdahl(a.cores, p.SerialFrac) / amdahl(s.spec.Cores, p.SerialFrac)
	mpi := p.mpi(a.ways)
	ipsCompute := p.IPSPeak * coreScale / (1 + p.MemStallCost*mpi)
	ips := ipsCompute
	if mpi > 0 {
		bwBytes := float64(a.bw) * s.spec.MemBWBytesPerUnit
		if bound := bwBytes / (mpi * s.spec.LineBytes); bound < ips {
			ips = bound
		}
	}
	if s.iPower >= 0 && s.spec.PowerUnits > 0 {
		// First-order DVFS model: a job's power need is proportional
		// to its core share; an under-provisioned power share clips
		// frequency down to the floor, scaled by the phase's
		// sensitivity to frequency.
		need := float64(a.cores) / float64(s.spec.Cores)
		frac := float64(a.power) / float64(s.spec.PowerUnits)
		satisfaction := 1.0
		if need > 0 && frac < need {
			satisfaction = frac / need
		}
		scale := s.spec.MinPowerScale + (1-s.spec.MinPowerScale)*satisfaction
		ips *= 1 - p.PowerSensitivity*(1-scale)
	}
	return ips
}

// ExactIPS returns the noise-free instantaneous per-job IPS the machine
// would deliver under configuration c at the jobs' current phases,
// without advancing time. This is the "oracle knowledge" entry point used
// by the brute-force Oracle policies.
func (s *Simulator) ExactIPS(c resource.Config) ([]float64, error) {
	if err := s.space.Validate(c); err != nil {
		return nil, err
	}
	out := make([]float64, len(s.jobs))
	for j, jb := range s.jobs {
		out[j] = s.ipsModel(jb.phase(), s.jobAlloc(c, j))
	}
	return out, nil
}

// ExactIsolated returns the noise-free isolated (whole-machine) IPS of
// every job at its current phase.
func (s *Simulator) ExactIsolated() []float64 {
	out := make([]float64, len(s.jobs))
	full := s.fullAlloc()
	for j, jb := range s.jobs {
		out[j] = s.ipsModel(jb.phase(), full)
	}
	return out
}

// MeasureIsolated returns a noisy measurement of each job's isolated IPS
// at its current phase — the baseline (re)recording of Algorithm 1
// lines 3 and 13. Like the paper's implementation it does not advance
// co-location time.
func (s *Simulator) MeasureIsolated() []float64 {
	out := s.ExactIsolated()
	for j := range out {
		out[j] = s.noisy(out[j])
	}
	return out
}

func (s *Simulator) noisy(x float64) float64 {
	if s.sigma == 0 {
		return x
	}
	v := x * (1 + s.sigma*s.rng.NormFloat64())
	if min := 0.01 * x; v < min {
		v = min
	}
	return v
}

// Sample is one tick's observation, as a pqos-style monitor would report.
type Sample struct {
	// Tick is the index of the completed step (first step = 1).
	Tick int
	// Time is the simulation time at the end of the step, seconds.
	Time float64
	// IPS is the observed (noisy) per-job instructions/second over the
	// step.
	IPS []float64
	// PhaseChanged flags jobs that crossed a phase boundary during the
	// step.
	PhaseChanged []bool
}

// Step advances the simulation by one 100 ms tick under the current
// configuration and returns the monitoring sample. Work progresses at the
// model rate, crossing phase boundaries mid-tick exactly.
func (s *Simulator) Step() Sample {
	dt := TickSeconds
	sample := Sample{
		Tick:         s.ticks + 1,
		IPS:          make([]float64, len(s.jobs)),
		PhaseChanged: make([]bool, len(s.jobs)),
	}
	if cap(s.modelIPS) < len(s.jobs) {
		s.modelIPS = make([]float64, len(s.jobs))
	}
	s.modelIPS = s.modelIPS[:len(s.jobs)]
	valid := true
	for j, jb := range s.jobs {
		a := s.jobAlloc(s.current, j)
		remaining := dt
		done := 0.0
		advanced := false
		for remaining > 1e-12 {
			p := jb.phase()
			ips := s.ipsModel(p, a)
			if ips <= 0 {
				break
			}
			left := p.Instructions - jb.workDone
			if t := left / ips; t <= remaining {
				// Phase completes mid-tick.
				done += left
				remaining -= t
				jb.workDone = 0
				jb.phaseIdx = (jb.phaseIdx + 1) % len(jb.profile.Phases)
				sample.PhaseChanged[j] = true
			} else {
				adv := ips * remaining
				jb.workDone += adv
				done += adv
				remaining = 0
				s.modelIPS[j] = ips
				advanced = true
			}
		}
		// The extrapolation cache only carries across ticks in which the
		// whole step was one partial advance at a steady model rate: a
		// crossed phase boundary or a stalled job changes the rate.
		if sample.PhaseChanged[j] || !advanced {
			valid = false
		}
		sample.IPS[j] = s.noisy(done / dt)
	}
	s.ipsValid = valid
	s.ticks++
	sample.Time = s.Now()
	return sample
}

// SampledHorizon returns a conservative count of consecutive StepSampled
// calls guaranteed to succeed from the current state — the lookahead an
// event-driven caller uses to defer a run of ticks in one decision. 0
// means the next tick needs a detailed Step (no valid extrapolation
// cache, or a phase boundary within one tick). The bound is conservative
// against floating-point drift: workDone accumulates by repeated adds in
// StepSampled, so the analytic count is shortened by one tick; a caller
// that overruns it is refused by StepSampled as usual, never corrupted.
func (s *Simulator) SampledHorizon() int {
	if !s.ipsValid || len(s.modelIPS) != len(s.jobs) {
		return 0
	}
	dt := TickSeconds
	h := math.MaxInt
	for j, jb := range s.jobs {
		ips := s.modelIPS[j]
		if ips <= 0 {
			return 0
		}
		// An LC job running near its critical rate is treated like an
		// imminent phase edge: the violation verdict could flip any
		// tick, so no extrapolation horizon is promised at all.
		if s.nearSLOBoundary(jb, ips) {
			return 0
		}
		left := jb.phase().Instructions - jb.workDone
		// The m-th sampled tick succeeds iff m < left/(ips·dt) (each
		// prior tick consumed ips·dt instructions); floor minus one
		// absorbs the add-vs-multiply rounding difference.
		k := int(left/(ips*dt)) - 1
		if k < h {
			h = k
		}
	}
	if h < 0 {
		return 0
	}
	return h
}

// StepSampled advances one tick by extrapolation (Pac-Sim style sampled
// simulation): instead of re-evaluating the analytical model it reuses
// each job's noise-free IPS cached by the last detailed Step, drawing the
// same single noise sample per job. ok is false — with NO side effects —
// whenever extrapolation would diverge from a detailed step: no valid
// cache (configuration change, churn, or a stall since the last detailed
// tick) or an imminent phase-boundary crossing; the caller must then run
// the detailed Step. When ok is true the returned sample, the RNG stream,
// and all job state are bit-identical to what Step would have produced,
// which is what lets sampled runs share committed goldens.
// SkipSampled advances n ticks in one coarse jump: every job retires
// n·dt·modelIPS instructions in a single multiply, with no per-tick noise
// draws and no Sample construction. It refuses (returning false, state
// untouched) unless n is within SampledHorizon, so the jump never crosses
// a phase boundary. Unlike StepSampled, the resulting state is NOT
// bit-identical to n detailed ticks — noise-free progress drifts from the
// lockstep trajectory by the accumulated noise term — but it is a pure
// function of the pre-skip state, so replays and parallel interleavings
// agree exactly. The RNG stream is not consumed.
func (s *Simulator) SkipSampled(n int) bool {
	if n <= 0 {
		return true
	}
	if n > s.SampledHorizon() {
		return false
	}
	dt := TickSeconds
	for j, jb := range s.jobs {
		jb.workDone += float64(n) * s.modelIPS[j] * dt
	}
	s.ticks += n
	return true
}

func (s *Simulator) StepSampled() (Sample, bool) {
	if !s.ipsValid || len(s.modelIPS) != len(s.jobs) {
		return Sample{}, false
	}
	dt := TickSeconds
	// Refusal pass before any mutation: a job whose phase would complete
	// this tick needs the detailed mid-tick crossing logic. The guard is
	// the detailed branch condition verbatim, so the sampled path is taken
	// exactly when Step would take the single partial-advance branch.
	for j, jb := range s.jobs {
		ips := s.modelIPS[j]
		left := jb.phase().Instructions - jb.workDone
		if t := left / ips; t <= dt {
			return Sample{}, false
		}
		// Near an SLO-violation boundary the caller must fall back to
		// detailed stepping, mirroring SampledHorizon's refusal.
		if s.nearSLOBoundary(jb, ips) {
			return Sample{}, false
		}
	}
	sample := Sample{
		Tick:         s.ticks + 1,
		IPS:          make([]float64, len(s.jobs)),
		PhaseChanged: make([]bool, len(s.jobs)),
	}
	for j, jb := range s.jobs {
		// adv, workDone, and the noisy(adv/dt) observation replicate the
		// detailed partial-advance arithmetic exactly (done starts at 0,
		// so done += adv is adv bit-for-bit).
		adv := s.modelIPS[j] * dt
		jb.workDone += adv
		sample.IPS[j] = s.noisy(adv / dt)
	}
	s.ticks++
	sample.Time = s.Now()
	return sample, true
}
