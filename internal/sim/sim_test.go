package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"satori/internal/resource"
	"satori/internal/slo"
)

func testProfile(name string) *Profile {
	return &Profile{
		Name: name, Suite: "test",
		Phases: []Phase{
			{
				Name: "a", Instructions: 1e10, IPSPeak: 2e10,
				SerialFrac: 0.05, MPIMax: 0.012, MPIMin: 0.004,
				WaysHalf: 2.5, MemStallCost: 180, PowerSensitivity: 0.6,
			},
			{
				Name: "b", Instructions: 6e9, IPSPeak: 1.5e10,
				SerialFrac: 0.2, MPIMax: 0.02, MPIMin: 0.012,
				WaysHalf: 1.2, MemStallCost: 220, PowerSensitivity: 0.4,
			},
		},
	}
}

func newTestSim(t *testing.T, jobs int, opt Options) *Simulator {
	t.Helper()
	ps := make([]*Profile, jobs)
	names := []string{"j0", "j1", "j2", "j3", "j4"}
	for i := range ps {
		ps[i] = testProfile(names[i])
	}
	s, err := New(DefaultMachine(), ps, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMachineValidate(t *testing.T) {
	if err := DefaultMachine().Validate(); err != nil {
		t.Errorf("default machine invalid: %v", err)
	}
	bad := DefaultMachine()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("0-core machine accepted")
	}
	bad = DefaultMachine()
	bad.LineBytes = 0
	if bad.Validate() == nil {
		t.Error("0 line size accepted")
	}
	bad = DefaultMachine()
	bad.PowerUnits = 4
	bad.MinPowerScale = 0
	if bad.Validate() == nil {
		t.Error("invalid MinPowerScale accepted")
	}
}

func TestMachineSpace(t *testing.T) {
	space, err := DefaultMachine().Space(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(space.Resources) != 3 {
		t.Errorf("default space has %d resources, want 3 (no power)", len(space.Resources))
	}
	withPower := DefaultMachine()
	withPower.PowerUnits = 8
	space, err = withPower.Space(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(space.Resources) != 4 {
		t.Errorf("power-enabled space has %d resources, want 4", len(space.Resources))
	}
}

func TestPhaseValidate(t *testing.T) {
	good := testProfile("x").Phases[0]
	if err := good.Validate(); err != nil {
		t.Errorf("valid phase rejected: %v", err)
	}
	// Each rejection path must fire AND blame the offending field by
	// name — a profile author debugging a hand-written JSON file only
	// sees this string.
	cases := []struct {
		name string
		mut  func(*Phase)
		want string
	}{
		{"zero instructions", func(p *Phase) { p.Instructions = 0 }, "Instructions"},
		{"negative instructions", func(p *Phase) { p.Instructions = -1e9 }, "Instructions"},
		{"zero ips peak", func(p *Phase) { p.IPSPeak = 0 }, "IPSPeak"},
		{"negative serial frac", func(p *Phase) { p.SerialFrac = -0.1 }, "SerialFrac"},
		{"serial frac above one", func(p *Phase) { p.SerialFrac = 1.1 }, "SerialFrac"},
		{"negative mpi min", func(p *Phase) { p.MPIMin = -1 }, "MPIMin"},
		{"mpi max below min", func(p *Phase) { p.MPIMax = p.MPIMin / 2 }, "MPIMin"},
		{"zero ways half", func(p *Phase) { p.WaysHalf = 0 }, "WaysHalf"},
		{"negative stall cost", func(p *Phase) { p.MemStallCost = -1 }, "MemStallCost"},
		{"power sensitivity above one", func(p *Phase) { p.PowerSensitivity = 2 }, "PowerSensitivity"},
		{"negative power sensitivity", func(p *Phase) { p.PowerSensitivity = -0.5 }, "PowerSensitivity"},
	}
	for _, tc := range cases {
		p := good
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), p.Name) {
			t.Errorf("%s: error %q does not name the phase %q", tc.name, err, p.Name)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	if err := testProfile("ok").Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	if (&Profile{Name: "", Phases: testProfile("x").Phases}).Validate() == nil {
		t.Error("empty name accepted")
	}
	if (&Profile{Name: "y"}).Validate() == nil {
		t.Error("phase-less profile accepted")
	}
	// A bad phase is rejected and attributed to the profile.
	bad := testProfile("attrib")
	bad.Phases[1].WaysHalf = 0
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "attrib") {
		t.Errorf("bad-phase error %v does not name the profile", err)
	}
	// An ill-formed SLO section fails profile validation too: LC specs
	// ride Profile.Validate so every load path (JSON, API churn, mixes)
	// rejects them at the same gate.
	lc := testProfile("lc")
	lc.SLO = &slo.Spec{TargetP99: -0.01, ServiceInstructions: 1e6, ArrivalRate: 100}
	if err := lc.Validate(); err == nil || !strings.Contains(err.Error(), "lc") {
		t.Errorf("invalid SLO spec: err = %v, want profile-attributed rejection", err)
	}
	lc.SLO = &slo.Spec{TargetP99: 0.01, ServiceInstructions: 1e6, ArrivalRate: 100}
	if err := lc.Validate(); err != nil {
		t.Errorf("valid LC profile rejected: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultMachine(), nil, Options{}); err == nil {
		t.Error("no jobs accepted")
	}
	bad := DefaultMachine()
	bad.Cores = 0
	if _, err := New(bad, []*Profile{testProfile("a")}, Options{}); err == nil {
		t.Error("invalid machine accepted")
	}
	broken := testProfile("b")
	broken.Phases[0].IPSPeak = -1
	if _, err := New(DefaultMachine(), []*Profile{broken}, Options{}); err == nil {
		t.Error("invalid profile accepted")
	}
	// More jobs than units of a resource.
	ps := make([]*Profile, 12)
	for i := range ps {
		ps[i] = testProfile("j")
	}
	if _, err := New(DefaultMachine(), ps, Options{}); err == nil {
		t.Error("12 jobs on a 10-core machine accepted")
	}
}

func TestAmdahl(t *testing.T) {
	if got := amdahl(1, 0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("amdahl(1) = %g, want 1", got)
	}
	// serial 0: linear scaling.
	if got := amdahl(8, 0); math.Abs(got-8) > 1e-12 {
		t.Errorf("amdahl(8, 0) = %g, want 8", got)
	}
	// serial 1: no scaling.
	if got := amdahl(8, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("amdahl(8, 1) = %g, want 1", got)
	}
	// classic: f=0.5, 2 cores -> 1/(0.5+0.25) = 4/3.
	if got := amdahl(2, 0.5); math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("amdahl(2, 0.5) = %g, want 4/3", got)
	}
}

func TestMissRatioCurve(t *testing.T) {
	p := Phase{MPIMax: 0.02, MPIMin: 0.005, WaysHalf: 2}
	// At 1 way, exactly MPIMax.
	if got := p.mpi(1); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("mpi(1) = %g, want MPIMax", got)
	}
	// Monotone decreasing in ways, bounded below by MPIMin.
	prev := math.Inf(1)
	for w := 1; w <= 20; w++ {
		m := p.mpi(w)
		if m > prev {
			t.Fatalf("mpi not monotone at %d ways", w)
		}
		if m < p.MPIMin {
			t.Fatalf("mpi below floor at %d ways: %g", w, m)
		}
		prev = m
	}
	if got := p.mpi(100); math.Abs(got-p.MPIMin) > 1e-6 {
		t.Errorf("mpi(100) = %g, want ~MPIMin", got)
	}
}

func TestMoreResourcesNeverHurt(t *testing.T) {
	// The noise-free model must be monotone: growing any single
	// resource (for a fixed phase) cannot decrease IPS.
	s := newTestSim(t, 2, Options{Seed: 1, NoiseSigma: -1})
	p := testProfile("x").Phases[0]
	base := alloc{cores: 3, ways: 4, bw: 3}
	ipsBase := s.ipsModel(p, base)
	for _, grown := range []alloc{
		{cores: 4, ways: 4, bw: 3},
		{cores: 3, ways: 5, bw: 3},
		{cores: 3, ways: 4, bw: 4},
	} {
		if got := s.ipsModel(p, grown); got < ipsBase-1e-6 {
			t.Errorf("growing %+v -> %+v decreased IPS: %g -> %g", base, grown, ipsBase, got)
		}
	}
}

func TestCacheBandwidthCoupling(t *testing.T) {
	// The paper's core motivation for joint exploration: when a job is
	// bandwidth-bound, extra cache ways must reduce traffic and help;
	// extra bandwidth must help too; and giving ways helps MORE when
	// bandwidth is also grown than alone (complementarity around the
	// roofline knee).
	s := newTestSim(t, 2, Options{NoiseSigma: -1})
	p := Phase{
		Name: "bw-bound", Instructions: 1e10, IPSPeak: 4e10,
		SerialFrac: 0.02, MPIMax: 0.03, MPIMin: 0.002,
		WaysHalf: 3, MemStallCost: 100,
	}
	tight := alloc{cores: 8, ways: 2, bw: 1}
	ipsTight := s.ipsModel(p, tight)
	moreWays := s.ipsModel(p, alloc{cores: 8, ways: 8, bw: 1})
	moreBW := s.ipsModel(p, alloc{cores: 8, ways: 2, bw: 6})
	both := s.ipsModel(p, alloc{cores: 8, ways: 8, bw: 6})
	if moreWays <= ipsTight {
		t.Errorf("extra ways did not relieve bandwidth bound: %g vs %g", moreWays, ipsTight)
	}
	if moreBW <= ipsTight {
		t.Errorf("extra bandwidth did not help: %g vs %g", moreBW, ipsTight)
	}
	gainBoth := both - ipsTight
	gainSum := (moreWays - ipsTight) + (moreBW - ipsTight)
	if gainBoth <= 0.9*math.Max(moreWays-ipsTight, moreBW-ipsTight) {
		t.Errorf("joint gain %g not complementary (individual gains %g)", gainBoth, gainSum)
	}
}

func TestExactIsolatedIsUpperBound(t *testing.T) {
	s := newTestSim(t, 3, Options{NoiseSigma: -1})
	iso := s.ExactIsolated()
	ips, err := s.ExactIPS(s.Space().EqualSplit())
	if err != nil {
		t.Fatal(err)
	}
	for j := range ips {
		if ips[j] > iso[j]+1e-6 {
			t.Errorf("job %d partitioned IPS %g exceeds isolated %g", j, ips[j], iso[j])
		}
		if ips[j] <= 0 {
			t.Errorf("job %d has non-positive IPS", j)
		}
	}
}

func TestExactIPSRejectsInvalidConfig(t *testing.T) {
	s := newTestSim(t, 2, Options{})
	bad := s.Space().NewConfig() // all zeros
	if _, err := s.ExactIPS(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestApplyAndCurrent(t *testing.T) {
	s := newTestSim(t, 2, Options{})
	eq := s.Space().EqualSplit()
	if !s.Current().Equal(eq) {
		t.Error("initial config is not the equal split")
	}
	if err := s.Apply(eq); err != nil {
		t.Fatal(err)
	}
	if s.Applies() != 0 {
		t.Error("no-op Apply counted as a reconfiguration")
	}
	moved, ok := s.Space().Move(eq, 0, 0, 1)
	if !ok {
		t.Fatal("move failed")
	}
	if err := s.Apply(moved); err != nil {
		t.Fatal(err)
	}
	if s.Applies() != 1 {
		t.Errorf("Applies = %d, want 1", s.Applies())
	}
	if !s.Current().Equal(moved) {
		t.Error("Apply did not install the config")
	}
	// Current returns a copy.
	c := s.Current()
	c.Alloc[0][0] = 99
	if s.Current().Alloc[0][0] == 99 {
		t.Error("Current aliases internal state")
	}
	if err := s.Apply(s.Space().NewConfig()); err == nil {
		t.Error("invalid config accepted by Apply")
	}
}

func TestStepAdvancesTimeAndWork(t *testing.T) {
	s := newTestSim(t, 2, Options{NoiseSigma: -1})
	sample := s.Step()
	if sample.Tick != 1 || math.Abs(sample.Time-TickSeconds) > 1e-12 {
		t.Errorf("first sample: tick=%d time=%g", sample.Tick, sample.Time)
	}
	if s.Ticks() != 1 || math.Abs(s.Now()-TickSeconds) > 1e-12 {
		t.Errorf("sim clock: ticks=%d now=%g", s.Ticks(), s.Now())
	}
	for j, ips := range sample.IPS {
		if ips <= 0 {
			t.Errorf("job %d observed IPS %g", j, ips)
		}
	}
}

func TestNoiseFreeStepMatchesExactModel(t *testing.T) {
	s := newTestSim(t, 2, Options{NoiseSigma: -1})
	want, err := s.ExactIPS(s.Current())
	if err != nil {
		t.Fatal(err)
	}
	got := s.Step()
	for j := range want {
		// No phase boundary in the first 100 ms, so the tick average
		// equals the instantaneous model.
		if math.Abs(got.IPS[j]-want[j])/want[j] > 1e-9 {
			t.Errorf("job %d step IPS %g != model %g", j, got.IPS[j], want[j])
		}
	}
}

func TestPhaseTransitions(t *testing.T) {
	// A tiny phase must complete mid-tick and roll into the next one.
	p := &Profile{
		Name: "tiny", Suite: "test",
		Phases: []Phase{
			{Name: "first", Instructions: 1e8, IPSPeak: 2e10, SerialFrac: 0,
				MPIMax: 0.001, MPIMin: 0.001, WaysHalf: 1, MemStallCost: 0},
			{Name: "second", Instructions: 1e12, IPSPeak: 1e10, SerialFrac: 0,
				MPIMax: 0.001, MPIMin: 0.001, WaysHalf: 1, MemStallCost: 0},
		},
	}
	s, err := New(DefaultMachine(), []*Profile{p, testProfile("other")}, Options{NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.PhaseName(0) != "first" {
		t.Fatalf("initial phase %q", s.PhaseName(0))
	}
	sample := s.Step()
	if !sample.PhaseChanged[0] {
		t.Error("phase change not flagged")
	}
	if s.PhaseName(0) != "second" {
		t.Errorf("phase after step = %q, want second", s.PhaseName(0))
	}
	if sample.PhaseChanged[1] {
		t.Error("other job flagged a phase change")
	}
}

func TestPhaseLoopsAround(t *testing.T) {
	p := &Profile{
		Name: "looper", Suite: "test",
		Phases: []Phase{
			{Name: "only", Instructions: 5e8, IPSPeak: 2e10, SerialFrac: 0,
				MPIMax: 0.001, MPIMin: 0.001, WaysHalf: 1, MemStallCost: 0},
		},
	}
	s, err := New(DefaultMachine(), []*Profile{p}, Options{NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Step()
		if s.PhaseName(0) != "only" {
			t.Fatal("single-phase profile left its phase")
		}
	}
}

func TestFixedWorkSlowdown(t *testing.T) {
	// Under a starved allocation the same phase takes longer: after
	// equal ticks, the starved sim must have completed fewer phases.
	mk := func() *Simulator {
		s, err := New(DefaultMachine(), []*Profile{testProfile("a"), testProfile("b")}, Options{NoiseSigma: -1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	rich := mk()
	poor := mk()
	// Rich: job 0 gets almost everything; poor: job 0 gets minimum.
	space := rich.Space()
	richCfg := space.NewConfig()
	poorCfg := space.NewConfig()
	for r, res := range space.Resources {
		richCfg.Alloc[r][0] = res.Units - 1
		richCfg.Alloc[r][1] = 1
		poorCfg.Alloc[r][0] = 1
		poorCfg.Alloc[r][1] = res.Units - 1
	}
	if err := rich.Apply(richCfg); err != nil {
		t.Fatal(err)
	}
	if err := poor.Apply(poorCfg); err != nil {
		t.Fatal(err)
	}
	richChanges, poorChanges := 0, 0
	for i := 0; i < 600; i++ {
		if rich.Step().PhaseChanged[0] {
			richChanges++
		}
		if poor.Step().PhaseChanged[0] {
			poorChanges++
		}
	}
	if richChanges <= poorChanges {
		t.Errorf("fixed-work violated: rich job crossed %d phases, starved crossed %d",
			richChanges, poorChanges)
	}
}

func TestNoiseStatistics(t *testing.T) {
	s := newTestSim(t, 1, Options{Seed: 3, NoiseSigma: 0.05})
	exact := s.ExactIsolated()[0]
	sum, sumSq, n := 0.0, 0.0, 0
	for i := 0; i < 2000; i++ {
		v := s.MeasureIsolated()[0]
		sum += v
		sumSq += v * v
		n++
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-exact)/exact > 0.01 {
		t.Errorf("noisy mean %g deviates from exact %g", mean, exact)
	}
	rel := std / exact
	if rel < 0.035 || rel > 0.065 {
		t.Errorf("noise sigma = %g, want ~0.05", rel)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		s := newTestSim(t, 3, Options{Seed: 77, NoiseSigma: 0.02})
		var out []float64
		for i := 0; i < 20; i++ {
			out = append(out, s.Step().IPS...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

func TestPowerPartitioning(t *testing.T) {
	spec := DefaultMachine()
	spec.PowerUnits = 8
	p := testProfile("p")
	s, err := New(spec, []*Profile{p, testProfile("q")}, Options{NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	space := s.Space()
	if len(space.Resources) != 4 {
		t.Fatalf("expected 4 resources with power, got %d", len(space.Resources))
	}
	// Starving a job of power while it holds many cores must slow it.
	rich := space.NewConfig()
	for r, res := range space.Resources {
		rich.Alloc[r][0] = res.Units - 1
		rich.Alloc[r][1] = 1
	}
	poorPower := rich.Clone()
	pIdx := resourceIndex(space, resource.Power)
	poorPower.Alloc[pIdx][0] = 1
	poorPower.Alloc[pIdx][1] = spec.PowerUnits - 1
	ipsRich, err := s.ExactIPS(rich)
	if err != nil {
		t.Fatal(err)
	}
	ipsPoor, err := s.ExactIPS(poorPower)
	if err != nil {
		t.Fatal(err)
	}
	if ipsPoor[0] >= ipsRich[0] {
		t.Errorf("power starvation did not slow job: %g vs %g", ipsPoor[0], ipsRich[0])
	}
}

func TestJobNames(t *testing.T) {
	s := newTestSim(t, 2, Options{})
	if s.NumJobs() != 2 || s.JobName(0) != "j0" || s.JobName(1) != "j1" {
		t.Error("job bookkeeping wrong")
	}
	if s.Spec().Cores != 10 {
		t.Error("Spec not preserved")
	}
}

func TestReplaceJob(t *testing.T) {
	s := newTestSim(t, 2, Options{NoiseSigma: -1})
	// Run a while so job 0 is mid-phase.
	for i := 0; i < 50; i++ {
		s.Step()
	}
	repl := &Profile{
		Name: "replacement", Suite: "test",
		Phases: []Phase{
			{Name: "only", Instructions: 1e10, IPSPeak: 1e10, SerialFrac: 0.5,
				MPIMax: 0.001, MPIMin: 0.001, WaysHalf: 1, MemStallCost: 10},
		},
	}
	if err := s.ReplaceJob(0, repl); err != nil {
		t.Fatal(err)
	}
	if s.JobName(0) != "replacement" || s.PhaseName(0) != "only" {
		t.Errorf("job 0 after replace: %s/%s", s.JobName(0), s.PhaseName(0))
	}
	// The other job is untouched and stepping still works.
	if s.JobName(1) != "j1" {
		t.Error("job 1 was disturbed")
	}
	sample := s.Step()
	if sample.IPS[0] <= 0 || sample.IPS[1] <= 0 {
		t.Error("replaced mix does not run")
	}
	// Isolated baselines reflect the new job.
	iso := s.ExactIsolated()
	want := 1e10 / (1 + 10*0.001)
	if math.Abs(iso[0]-want)/want > 1e-9 {
		t.Errorf("new job isolated IPS = %g, want %g", iso[0], want)
	}
}

func TestReplaceJobValidation(t *testing.T) {
	s := newTestSim(t, 2, Options{})
	if err := s.ReplaceJob(5, testProfile("x")); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := s.ReplaceJob(-1, testProfile("x")); err == nil {
		t.Error("negative index accepted")
	}
	bad := testProfile("bad")
	bad.Phases[0].IPSPeak = -1
	if err := s.ReplaceJob(0, bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestModelMonotonicityProperty(t *testing.T) {
	// Property: for random phases and random allocations, growing any
	// one resource never decreases the modeled IPS.
	s := newTestSim(t, 2, Options{NoiseSigma: -1})
	rng := statsRNG(31)
	for trial := 0; trial < 2000; trial++ {
		p := Phase{
			Name:         "q",
			Instructions: 1e9,
			IPSPeak:      1e9 + rng.Float64()*5e10,
			SerialFrac:   rng.Float64() * 0.6,
			MPIMin:       rng.Float64() * 0.02,
			WaysHalf:     0.5 + rng.Float64()*5,
			MemStallCost: rng.Float64() * 300,
		}
		p.MPIMax = p.MPIMin + rng.Float64()*0.05
		a := alloc{
			cores: 1 + rng.Intn(9),
			ways:  1 + rng.Intn(10),
			bw:    1 + rng.Intn(9),
		}
		base := s.ipsModel(p, a)
		grown := []alloc{
			{cores: a.cores + 1, ways: a.ways, bw: a.bw},
			{cores: a.cores, ways: a.ways + 1, bw: a.bw},
			{cores: a.cores, ways: a.ways, bw: a.bw + 1},
		}
		for i, g := range grown {
			if got := s.ipsModel(p, g); got < base-1e-6 {
				t.Fatalf("trial %d: growing resource %d decreased IPS %g -> %g (phase %+v alloc %+v)",
					trial, i, base, got, p, a)
			}
		}
	}
}

// statsRNG avoids importing stats into this white-box test file's
// existing import set indirectly.
func statsRNG(seed uint64) *rngShim { return &rngShim{state: seed} }

type rngShim struct{ state uint64 }

func (r *rngShim) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rngShim) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *rngShim) Intn(n int) int   { return int(r.next() % uint64(n)) }

func TestAddJob(t *testing.T) {
	s := newTestSim(t, 2, Options{NoiseSigma: -1})
	for i := 0; i < 20; i++ {
		s.Step()
	}
	appliesBefore := s.Applies()
	spaceBefore := s.Space()
	if err := s.AddJob(testProfile("j2")); err != nil {
		t.Fatal(err)
	}
	if s.NumJobs() != 3 || s.JobName(2) != "j2" {
		t.Fatalf("job set after AddJob: %d jobs, last %q", s.NumJobs(), s.JobName(s.NumJobs()-1))
	}
	if s.Space() == spaceBefore || s.Space().Jobs != 3 {
		t.Fatal("space was not re-dimensioned")
	}
	// Churn counts as a reconfiguration (hardware rewrites every COS)
	// and resets the partition to the new equal split.
	if s.Applies() != appliesBefore+1 {
		t.Errorf("applies %d, want %d", s.Applies(), appliesBefore+1)
	}
	want := s.Space().EqualSplit()
	if got := s.Current(); !got.Equal(want) {
		t.Errorf("current after AddJob = %v, want equal split %v", got, want)
	}
	sample := s.Step()
	if len(sample.IPS) != 3 || sample.IPS[2] <= 0 {
		t.Fatalf("new job does not run: %v", sample.IPS)
	}
	if got := s.ExactIsolated(); len(got) != 3 {
		t.Fatalf("isolated baselines not re-dimensioned: %d", len(got))
	}
}

func TestRemoveJob(t *testing.T) {
	s := newTestSim(t, 3, Options{NoiseSigma: -1})
	if err := s.RemoveJob(1); err != nil {
		t.Fatal(err)
	}
	// Jobs above the evicted slot shift down.
	if s.NumJobs() != 2 || s.JobName(0) != "j0" || s.JobName(1) != "j2" {
		t.Fatalf("job set after RemoveJob: %d jobs, %q/%q", s.NumJobs(), s.JobName(0), s.JobName(1))
	}
	if s.Space().Jobs != 2 {
		t.Fatal("space was not re-dimensioned")
	}
	sample := s.Step()
	if len(sample.IPS) != 2 {
		t.Fatalf("sample not re-dimensioned: %v", sample.IPS)
	}
}

func TestRemoveJobValidation(t *testing.T) {
	s := newTestSim(t, 2, Options{})
	if err := s.RemoveJob(2); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := s.RemoveJob(-1); err == nil {
		t.Error("negative index accepted")
	}
	if err := s.RemoveJob(0); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveJob(0); err == nil {
		t.Error("removing the last job must be refused")
	}
	if s.NumJobs() != 1 {
		t.Errorf("failed RemoveJob mutated state: %d jobs", s.NumJobs())
	}
}

func TestAddJobValidation(t *testing.T) {
	s := newTestSim(t, 2, Options{})
	bad := testProfile("bad")
	bad.Phases[0].IPSPeak = -1
	if err := s.AddJob(bad); err == nil {
		t.Error("invalid profile accepted")
	}
	if s.NumJobs() != 2 {
		t.Errorf("failed AddJob mutated state: %d jobs", s.NumJobs())
	}
	// Growing past the machine's units must fail without side effects:
	// DefaultMachine has 10 cores, so an 11th job has no valid split.
	for s.NumJobs() < 10 {
		if err := s.AddJob(testProfile("filler")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddJob(testProfile("one-too-many")); err == nil {
		t.Error("over-capacity AddJob accepted")
	}
	if s.NumJobs() != 10 || s.Space().Jobs != 10 {
		t.Errorf("failed AddJob mutated state: %d jobs, space %d", s.NumJobs(), s.Space().Jobs)
	}
}

// TestApplyRejectsStaleShapedConfig is the churn-safety regression: a
// configuration decided for the old job set must be rejected with a
// typed *ConfigShapeError after AddJob/RemoveJob, not silently
// misallocated.
func TestApplyRejectsStaleShapedConfig(t *testing.T) {
	s := newTestSim(t, 2, Options{NoiseSigma: -1})
	stale := s.Space().EqualSplit()
	if err := s.Apply(stale); err != nil {
		t.Fatalf("fresh config rejected: %v", err)
	}
	if err := s.AddJob(testProfile("j2")); err != nil {
		t.Fatal(err)
	}
	err := s.Apply(stale)
	var shapeErr *ConfigShapeError
	if !errors.As(err, &shapeErr) {
		t.Fatalf("stale config after AddJob: got %v, want *ConfigShapeError", err)
	}
	if shapeErr.ConfigJobs != 2 || shapeErr.SpaceJobs != 3 {
		t.Errorf("shape error dims = %+v", shapeErr)
	}
	// The shrink direction too.
	stale3 := s.Space().EqualSplit()
	if err := s.RemoveJob(2); err != nil {
		t.Fatal(err)
	}
	if !errors.As(s.Apply(stale3), &shapeErr) {
		t.Fatalf("stale config after RemoveJob not rejected")
	}
	// A correctly re-shaped config is accepted.
	if err := s.Apply(s.Space().EqualSplit()); err != nil {
		t.Fatalf("fresh config after churn rejected: %v", err)
	}
}

// SampledHorizon promises a run of extrapolated ticks; every tick inside
// the promise must succeed, and invalidation events must zero it.
func TestSampledHorizonBoundsExtrapolation(t *testing.T) {
	s := newTestSim(t, 2, Options{Seed: 11})
	if h := s.SampledHorizon(); h != 0 {
		t.Fatalf("horizon = %d before any detailed step, want 0", h)
	}
	// Run detailed ticks until the extrapolation cache is valid with a
	// positive lookahead.
	h := 0
	for i := 0; i < 300 && h == 0; i++ {
		s.Step()
		h = s.SampledHorizon()
	}
	if h == 0 {
		t.Fatal("no positive horizon within 300 detailed ticks")
	}
	// The promise is hard: all h sampled ticks succeed, no refusal.
	for i := 0; i < h; i++ {
		if _, ok := s.StepSampled(); !ok {
			t.Fatalf("StepSampled refused at tick %d of a %d-tick promise", i+1, h)
		}
	}
	// The horizon is consumed as it is walked: after the promised run at
	// most one tick of rounding slack may remain.
	if left := s.SampledHorizon(); left > 1 {
		t.Errorf("horizon = %d after consuming the full promise, want <= 1", left)
	}
	// Whatever the next tick is, the detailed path must absorb it and
	// re-establish a fresh promise that is again fully honored.
	s.Step()
	for i, h2 := 0, s.SampledHorizon(); i < h2; i++ {
		if _, ok := s.StepSampled(); !ok {
			t.Fatalf("second promise: refused at tick %d of %d", i+1, h2)
		}
	}
	// A reconfiguration invalidates the cache, so the horizon drops to 0.
	s.Step()
	moved, ok := s.Space().Move(s.Current(), 0, 0, 1)
	if !ok {
		t.Fatal("move failed")
	}
	if err := s.Apply(moved); err != nil {
		t.Fatal(err)
	}
	if got := s.SampledHorizon(); got != 0 {
		t.Errorf("horizon = %d after Apply, want 0", got)
	}
	// Membership churn likewise.
	s.Step()
	if err := s.AddJob(testProfile("late")); err != nil {
		t.Fatal(err)
	}
	if got := s.SampledHorizon(); got != 0 {
		t.Errorf("horizon = %d after AddJob, want 0", got)
	}
}

// The SLO-boundary analog of the phase-edge refusal: a latency-critical
// job whose model IPS sits within the onset margin of its critical rate
// gets NO extrapolation promise — per-tick noise could flip the
// violation verdict, and a sampled or skipped tick would jump the
// control loop straight over the onset. This test fails if the fast
// paths ever extrapolate inside the band.
func TestSampledRefusesNearSLOBoundary(t *testing.T) {
	// A single long phase so the only horizon limiter under test is the
	// SLO boundary, not phase edges.
	lcBase := func(name string) *Profile {
		p := testProfile(name)
		p.Phases = p.Phases[:1]
		p.Phases[0].Instructions = 1e13
		return p
	}
	// Measure the equal-split exact IPS of job 0 in a noise-free twin.
	probe, err := New(DefaultMachine(), []*Profile{lcBase("lc0"), testProfile("j1")}, Options{NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := probe.ExactIPS(probe.Current())
	if err != nil {
		t.Fatal(err)
	}
	// A spec whose critical rate equals the observed rate: the job runs
	// dead on the boundary. Spec arithmetic: crit = SI*(λ + ln100/target).
	specAt := func(crit float64) *slo.Spec {
		const lambda, target = 100.0, 0.02
		return &slo.Spec{
			TargetP99:           target,
			ServiceInstructions: crit / (lambda + math.Log(100)/target),
			ArrivalRate:         lambda,
		}
	}
	onBoundary := lcBase("lc0")
	onBoundary.SLO = specAt(exact[0])

	ps := []*Profile{onBoundary, testProfile("j1")}
	s, err := New(DefaultMachine(), ps, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.Step()
		if h := s.SampledHorizon(); h != 0 {
			t.Fatalf("tick %d: SampledHorizon = %d with an LC job on its critical boundary, want 0", i+1, h)
		}
		if _, ok := s.StepSampled(); ok {
			t.Fatalf("tick %d: StepSampled extrapolated across the SLO boundary", i+1)
		}
		if s.SkipSampled(1) {
			t.Fatalf("tick %d: SkipSampled jumped the SLO boundary", i+1)
		}
	}

	// The same job with its critical rate far below the observed rate is
	// comfortably attaining: the fast paths work exactly as for batch.
	comfortable := lcBase("lc0")
	comfortable.SLO = specAt(exact[0] / 2)
	s2, err := New(DefaultMachine(), []*Profile{comfortable, testProfile("j1")}, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	h := 0
	for i := 0; i < 300 && h == 0; i++ {
		s2.Step()
		h = s2.SampledHorizon()
	}
	if h == 0 {
		t.Fatal("no extrapolation promise for a comfortably attaining LC job")
	}
}
