package sim

import (
	"fmt"

	"satori/internal/slo"
)

// Phase describes one program phase of a workload: a quantum of work with
// fixed resource sensitivities. Jobs progress through phases by completing
// instructions (fixed-work methodology, Sec. IV), so a starved job stays
// in its phase longer — exactly like a real program.
type Phase struct {
	// Name identifies the phase in traces.
	Name string
	// Instructions is the amount of work in the phase; when the job has
	// executed this many instructions it advances to the next phase.
	Instructions float64
	// IPSPeak is the instructions/second the phase would achieve with
	// every core, zero cache misses and unlimited bandwidth.
	IPSPeak float64
	// SerialFrac is the Amdahl serial fraction governing core scaling:
	// 0 is embarrassingly parallel, 1 never benefits from a second core.
	SerialFrac float64
	// MPIMax is the misses-per-instruction with a single LLC way.
	MPIMax float64
	// MPIMin is the floor misses-per-instruction with unlimited ways
	// (compulsory + streaming misses).
	MPIMin float64
	// WaysHalf is the exponential decay constant of the miss-ratio
	// curve: small values mean a small working set that fits quickly.
	WaysHalf float64
	// MemStallCost converts misses/instruction into a slowdown factor
	// for the compute-bound rate (≈ average miss penalty in units of
	// per-instruction cost).
	MemStallCost float64
	// PowerSensitivity in [0, 1] scales how strongly a reduced power
	// share slows this phase (1 = fully frequency-bound).
	PowerSensitivity float64
}

// Validate reports whether the phase parameters are physically sensible.
func (p Phase) Validate() error {
	switch {
	case p.Instructions <= 0:
		return fmt.Errorf("sim: phase %q: Instructions must be positive", p.Name)
	case p.IPSPeak <= 0:
		return fmt.Errorf("sim: phase %q: IPSPeak must be positive", p.Name)
	case p.SerialFrac < 0 || p.SerialFrac > 1:
		return fmt.Errorf("sim: phase %q: SerialFrac %g outside [0,1]", p.Name, p.SerialFrac)
	case p.MPIMin < 0 || p.MPIMax < p.MPIMin:
		return fmt.Errorf("sim: phase %q: need 0 <= MPIMin <= MPIMax, got %g, %g", p.Name, p.MPIMin, p.MPIMax)
	case p.WaysHalf <= 0:
		return fmt.Errorf("sim: phase %q: WaysHalf must be positive", p.Name)
	case p.MemStallCost < 0:
		return fmt.Errorf("sim: phase %q: MemStallCost must be non-negative", p.Name)
	case p.PowerSensitivity < 0 || p.PowerSensitivity > 1:
		return fmt.Errorf("sim: phase %q: PowerSensitivity %g outside [0,1]", p.Name, p.PowerSensitivity)
	}
	return nil
}

// Profile is a workload: a named, looping schedule of phases.
type Profile struct {
	// Name is the benchmark name (e.g. "fluidanimate").
	Name string
	// Suite is the benchmark suite ("parsec", "cloudsuite", "ecp").
	Suite string
	// Phases is the phase schedule; the job loops back to Phases[0]
	// after the last phase completes.
	Phases []Phase
	// SLO, when non-nil, marks the workload latency-critical: observed
	// IPS maps to request latency through the queueing model in
	// internal/slo and the control layers track tail latency against
	// SLO.TargetP99. Batch jobs leave it nil, and every layer above is
	// inert — bit-exact with pre-SLO behavior — without it.
	SLO *slo.Spec
}

// Validate checks the profile and all its phases.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("sim: profile with empty name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("sim: profile %q has no phases", p.Name)
	}
	for _, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("sim: profile %q: %w", p.Name, err)
		}
	}
	if p.SLO != nil {
		if err := p.SLO.Validate(); err != nil {
			return fmt.Errorf("sim: profile %q: %w", p.Name, err)
		}
	}
	return nil
}
