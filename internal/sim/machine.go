// Package sim implements the multicore co-location substrate that stands
// in for the paper's Intel Xeon Skylake testbed (see DESIGN.md §1 for the
// substitution rationale).
//
// The simulator models N co-located jobs sharing partitionable resources
// (cores, LLC ways, memory-bandwidth steps, optionally a power cap). Each
// job runs a looping schedule of phases; each phase defines the job's
// sensitivity to every resource. Instantaneous IPS under an allocation
// (c cores, w ways, b bandwidth units) is
//
//	coreScale  = Amdahl(c; serial) / Amdahl(totalCores; serial)
//	mpi(w)     = mpiMin + (mpiMax − mpiMin)·exp(−(w−1)/waysHalf)
//	ipsCompute = ipsPeak · coreScale / (1 + memStallCost·mpi(w))
//	ipsBwBound = b·bwUnitBytes / (mpi(w)·lineBytes)
//	IPS        = min(ipsCompute, ipsBwBound) · powerScale
//
// The min() between the compute-bound and bandwidth-bound rates creates
// the cache↔bandwidth coupling that motivates SATORI's joint
// multi-resource exploration, and phase changes move each job's optimum
// over time exactly as the paper's Fig. 1 characterizes. Observed IPS
// carries multiplicative measurement noise; oracle-style callers can query
// the noise-free model directly.
package sim

import (
	"fmt"

	"satori/internal/resource"
)

// MachineSpec describes the partitionable hardware, defaulting to the
// paper's testbed shape: 10 physical cores, an 11-way shared LLC, and
// memory bandwidth controlled in ten 10%-steps (Intel MBA granularity).
type MachineSpec struct {
	// Cores is the number of physical cores (allocation unit: 1 core).
	Cores int
	// LLCWays is the number of last-level-cache ways (CAT unit: 1 way).
	LLCWays int
	// MemBWUnits is the number of memory-bandwidth allocation steps.
	MemBWUnits int
	// MemBWBytesPerUnit is the bandwidth of one step in bytes/second.
	MemBWBytesPerUnit float64
	// LineBytes is the cache-line size used to convert misses to bytes.
	LineBytes float64
	// PowerUnits is the number of power-cap shares; 0 disables power
	// partitioning (the default — the paper's main evaluation
	// partitions cores, LLC and bandwidth).
	PowerUnits int
	// MinPowerScale is the relative performance at the smallest power
	// share (frequency floor); only meaningful when PowerUnits > 0.
	MinPowerScale float64
}

// DefaultMachine returns the paper-testbed-shaped machine: 10 cores,
// 11 LLC ways, 10 bandwidth steps of 7.68 GB/s (76.8 GB/s total, typical
// for a Skylake-SP socket), 64-byte lines, no power partitioning.
func DefaultMachine() MachineSpec {
	return MachineSpec{
		Cores:             10,
		LLCWays:           11,
		MemBWUnits:        10,
		MemBWBytesPerUnit: 7.68e9,
		LineBytes:         64,
		PowerUnits:        0,
		MinPowerScale:     0.55,
	}
}

// Validate reports whether the spec is usable.
func (m MachineSpec) Validate() error {
	if m.Cores < 1 || m.LLCWays < 1 || m.MemBWUnits < 1 {
		return fmt.Errorf("sim: machine needs at least 1 unit of each resource, got %+v", m)
	}
	if m.MemBWBytesPerUnit <= 0 || m.LineBytes <= 0 {
		return fmt.Errorf("sim: bandwidth unit and line size must be positive")
	}
	if m.PowerUnits > 0 && (m.MinPowerScale <= 0 || m.MinPowerScale > 1) {
		return fmt.Errorf("sim: MinPowerScale must be in (0, 1], got %g", m.MinPowerScale)
	}
	return nil
}

// Space builds the resource.Space for jobs co-located on this machine.
// The space always covers cores, LLC ways and memory bandwidth, plus the
// power cap when PowerUnits > 0 — matching the set of knobs the paper's
// SATORI deployment controls.
func (m MachineSpec) Space(jobs int) (*resource.Space, error) {
	rs := []resource.Resource{
		{Kind: resource.Cores, Units: m.Cores},
		{Kind: resource.LLCWays, Units: m.LLCWays},
		{Kind: resource.MemBW, Units: m.MemBWUnits},
	}
	if m.PowerUnits > 0 {
		rs = append(rs, resource.Resource{Kind: resource.Power, Units: m.PowerUnits})
	}
	return resource.NewSpace(jobs, rs...)
}

// resourceIndex locates kind in the space rows produced by Space.
func resourceIndex(space *resource.Space, kind resource.Kind) int {
	for i, r := range space.Resources {
		if r.Kind == kind {
			return i
		}
	}
	return -1
}
