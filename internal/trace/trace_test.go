package trace

import (
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("tick", "value")
	if got := s.Names(); len(got) != 2 || got[0] != "tick" {
		t.Fatalf("Names = %v", got)
	}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	col := s.Column("value")
	if col[0] != 10 || col[1] != 20 {
		t.Errorf("Column = %v", col)
	}
	if s.At(1, "tick") != 2 {
		t.Errorf("At = %g", s.At(1, "tick"))
	}
}

func TestSeriesColumnIsCopy(t *testing.T) {
	s := NewSeries("x")
	s.Add(1)
	col := s.Column("x")
	col[0] = 99
	if s.At(0, "x") == 99 {
		t.Error("Column aliases internal storage")
	}
}

func TestSeriesAddCopiesRow(t *testing.T) {
	s := NewSeries("a", "b")
	row := []float64{1, 2}
	s.Add(row...)
	row[0] = 99
	if s.At(0, "a") == 99 {
		t.Error("Add aliased the caller's slice")
	}
}

func TestSeriesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"duplicate column": func() { NewSeries("a", "a") },
		"wrong row width":  func() { NewSeries("a").Add(1, 2) },
		"unknown column":   func() { s := NewSeries("a"); s.Add(1); s.Column("b") },
		"unknown At":       func() { s := NewSeries("a"); s.Add(1); s.At(0, "b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("tick", "v")
	s.Add(1, 0.5)
	s.Add(2, 1.5)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "tick,v\n1,0.5\n2,1.5\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("policy", "score")
	tbl.AddRow("satori", "0.92")
	tbl.AddRow("random") // short rows pad
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") || !strings.Contains(lines[0], "score") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "satori") || !strings.Contains(lines[2], "0.92") {
		t.Errorf("row wrong: %q", lines[2])
	}
	// Columns align: every line is at least as wide as the widest cell.
	if len(lines[2]) < len(lines[0]) {
		t.Error("rows narrower than header")
	}
}

func TestTableRejectsWideRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-wide row did not panic")
		}
	}()
	NewTable("a").AddRow("1", "2")
}

func TestFormatters(t *testing.T) {
	if F(0.123456) != "0.123" {
		t.Errorf("F = %s", F(0.123456))
	}
	if Pct(0.925) != "92.5%" {
		t.Errorf("Pct = %s", Pct(0.925))
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := NewTable("policy", "note")
	tbl.AddRow("satori", "plain")
	tbl.AddRow("a,b", `say "hi"`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "policy,note\nsatori,plain\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
