// Package trace provides lightweight named-column time series for
// experiment runs, with CSV export and fixed-width table rendering for
// the figure/table reproduction reports.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Series is an append-only table of float64 rows with named columns.
type Series struct {
	names []string
	index map[string]int
	rows  [][]float64
}

// NewSeries creates a series with the given column names.
func NewSeries(names ...string) *Series {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := idx[n]; dup {
			panic(fmt.Sprintf("trace: duplicate column %q", n))
		}
		idx[n] = i
	}
	return &Series{names: append([]string(nil), names...), index: idx}
}

// Names returns the column names.
func (s *Series) Names() []string { return append([]string(nil), s.names...) }

// Len returns the number of rows.
func (s *Series) Len() int { return len(s.rows) }

// Add appends one row; the number of values must match the column count.
func (s *Series) Add(values ...float64) {
	if len(values) != len(s.names) {
		panic(fmt.Sprintf("trace: row has %d values, series has %d columns", len(values), len(s.names)))
	}
	row := make([]float64, len(values))
	copy(row, values)
	s.rows = append(s.rows, row)
}

// Column returns a copy of the named column. It panics on unknown names.
func (s *Series) Column(name string) []float64 {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("trace: unknown column %q", name))
	}
	out := make([]float64, len(s.rows))
	for r, row := range s.rows {
		out[r] = row[i]
	}
	return out
}

// At returns the value at (row, column name).
func (s *Series) At(row int, name string) float64 {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("trace: unknown column %q", name))
	}
	return s.rows[row][i]
}

// WriteCSV writes the series as CSV with a header row.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(s.names, ",")); err != nil {
		return err
	}
	for _, row := range s.rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table renders rows of labeled values as a fixed-width text table —
// the rendering used by cmd/experiments for every reproduced figure.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: append([]string(nil), header...)}
}

// AddRow appends a row of already-formatted cells; missing cells render
// empty, extra cells are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("trace: row has %d cells, table has %d columns", len(cells), len(t.header)))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV writes the table's header and rows as CSV. Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float for table cells with 3 significant decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
