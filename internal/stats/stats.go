package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values make the result 0 (the conventional degenerate case
// for speedup aggregation). Computed in log space for numerical stability.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs. Non-positive values make
// the result 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (division by n, matching
// the coefficient-of-variation definition used by Jain's index).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (stddev / mean) of xs, or 0
// when the mean is 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies xs and does not
// modify the input. An empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval under the normal approximation (1.96·s/√n, with the
// n−1 sample standard deviation). For the small replication counts used
// by the harness this slightly understates the t-interval; it is used for
// reporting, not hypothesis testing.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	n := len(xs)
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	s := math.Sqrt(sum / float64(n-1))
	return mean, 1.96 * s / math.Sqrt(float64(n))
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Welford accumulates streaming mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples accumulated.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CoV returns the running coefficient of variation, or 0 if the mean is 0.
func (w *Welford) CoV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / w.mean
}
