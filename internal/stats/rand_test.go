package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d has fraction %g, want ~0.1", i, frac)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 20; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 500; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if n <= 10 && len(seen) != n {
			t.Errorf("Intn(%d) produced only %d distinct values in 500 draws", n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev = %g, want ~1", w.StdDev())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for n := 0; n <= 12; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(8)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("Shuffle changed contents: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/64 identical", same)
	}
}
