package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d has fraction %g, want ~0.1", i, frac)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 20; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 500; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if n <= 10 && len(seen) != n {
			t.Errorf("Intn(%d) produced only %d distinct values in 500 draws", n, len(seen))
		}
	}
}

func TestIntnLargeRange(t *testing.T) {
	// The pre-Lemire implementation reduced a 31-bit value modulo n, so
	// for n >= 2^31 it could never return anything >= 2^31 — the top of
	// the range was unreachable and the bottom over-represented 3x for
	// n = 3*2^31. With the true 64-bit reduction the mean must sit near
	// n/2 and values above 2^31 must appear.
	r := NewRNG(13)
	n := 3 * (1 << 31) // ~6.4e9, exceeds the old 31-bit numerator
	const draws = 2000
	var sum float64
	above := 0
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		if v >= 1<<31 {
			above++
		}
		sum += float64(v)
	}
	mean := sum / draws
	if mean < 0.45*float64(n) || mean > 0.55*float64(n) {
		t.Errorf("Intn(%d) mean = %g, want ~%g", n, mean, float64(n)/2)
	}
	// 2/3 of the range lies above 2^31; allow generous slack.
	if frac := float64(above) / draws; frac < 0.55 || frac > 0.78 {
		t.Errorf("fraction above 2^31 = %g, want ~0.67", frac)
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square uniformity check on a small modulus. With 7 buckets
	// and 70,000 draws the expected count is 10,000 per bucket; the
	// chi-square statistic with 6 degrees of freedom exceeds 22.46 with
	// probability 0.1% under uniformity.
	r := NewRNG(17)
	const n, draws = 7, 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 22.46 {
		t.Errorf("chi-square = %g over 7 buckets (counts %v), uniformity rejected at 0.1%%", chi2, counts)
	}
}

func TestUint64nEdgeCases(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 100; i++ {
		if v := r.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
	// Huge n (rejection threshold is large): values stay in range and
	// reach the upper half.
	n := uint64(1)<<63 + 3
	upper := 0
	for i := 0; i < 1000; i++ {
		v := r.Uint64n(n)
		if v >= n {
			t.Fatalf("Uint64n(%d) = %d out of range", n, v)
		}
		if v >= n/2 {
			upper++
		}
	}
	if upper < 400 || upper > 600 {
		t.Errorf("upper-half fraction %d/1000, want ~500", upper)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev = %g, want ~1", w.StdDev())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for n := 0; n <= 12; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(8)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("Shuffle changed contents: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/64 identical", same)
	}
}
