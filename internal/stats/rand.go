// Package stats provides deterministic pseudo-random number generation and
// the descriptive statistics used throughout the SATORI reproduction:
// means (arithmetic, geometric, harmonic), dispersion (variance, standard
// deviation, coefficient of variation), streaming accumulation (Welford),
// and percentile estimation.
//
// All randomness in the repository flows through stats.RNG so that every
// simulation, policy and experiment is reproducible from a single seed.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is intentionally not
// cryptographic; it exists so experiments replay bit-identically across
// runs and platforms.
//
// The zero value is not valid; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state, as
	// recommended by the xoshiro authors to avoid correlated states.
	x := seed
	for i := range r.s {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. It is used to hand each
// simulated job or experiment its own stream without sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD2B74407B1CE6E93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// reduction with the rejection step ("Fast Random Integer Generation in an
// Interval", ACM TOMACS 2019): the 128-bit product of a 64-bit draw and n
// keeps its high word as the result, rejecting the few low-word values
// that would make some residues over-represented. Exactly uniform for any
// n, and rejection-free in the common case. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		// thresh = (2^64 - n) mod n: the size of the truncated
		// remainder region that must be re-drawn.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
