package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %g, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("GeoMean(ones) = %g, want 1", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %g, want 0", got)
	}
	if got := GeoMean([]float64{2, -1}); got != 0 {
		t.Errorf("GeoMean with negative = %g, want 0", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("HarmonicMean(1,1) = %g", got)
	}
	// Harmonic mean of 2 and 6 is 3.
	if got := HarmonicMean([]float64{2, 6}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("HarmonicMean(2,6) = %g, want 3", got)
	}
	if got := HarmonicMean([]float64{0, 1}); got != 0 {
		t.Errorf("HarmonicMean with zero = %g, want 0", got)
	}
}

func TestMeanInequalityProperty(t *testing.T) {
	// For positive values: harmonic <= geometric <= arithmetic.
	rng := NewRNG(7)
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(10)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = 0.01 + rng.Float64()*10
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		if h > g+1e-9 || g > a+1e-9 {
			t.Fatalf("mean inequality violated for %v: h=%g g=%g a=%g", xs, h, g, a)
		}
	}
}

func TestVarianceStdDevCoV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := CoV(xs); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("CoV = %g, want 0.4", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("CoV of zeros = %g, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %g, want 0", got)
	}
}

func TestCoVScaleInvariantProperty(t *testing.T) {
	// CoV is invariant under positive scaling.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(8)
		xs := make([]float64, n)
		ys := make([]float64, n)
		k := 0.5 + rng.Float64()*5
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()
			ys[i] = xs[i] * k
		}
		return almostEqual(CoV(xs), CoV(ys), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty slice should be +/-Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); !almostEqual(got, 15, 1e-12) {
		t.Errorf("interpolated median = %g, want 15", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	// Must not mutate input.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median = %g, want 5", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := NewRNG(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			w.Add(xs[i])
		}
		if w.N() != n {
			t.Fatalf("Welford.N = %d, want %d", w.N(), n)
		}
		if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
			t.Fatalf("Welford mean %g != batch %g", w.Mean(), Mean(xs))
		}
		if !almostEqual(w.Variance(), Variance(xs), 1e-7) {
			t.Fatalf("Welford variance %g != batch %g", w.Variance(), Variance(xs))
		}
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.CoV() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Sum = %g, want 3", got)
	}
}
