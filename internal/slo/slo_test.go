package slo

import (
	"math"
	"testing"
)

func spec() *Spec {
	return &Spec{TargetP99: 0.030, ServiceInstructions: 2e7, ArrivalRate: 300}
}

func TestSpecValidate(t *testing.T) {
	if err := spec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []*Spec{
		{TargetP99: 0, ServiceInstructions: 1e7, ArrivalRate: 100},
		{TargetP99: 0.03, ServiceInstructions: -1, ArrivalRate: 100},
		{TargetP99: 0.03, ServiceInstructions: 1e7, ArrivalRate: 0},
		{TargetP99: math.Inf(1), ServiceInstructions: 1e7, ArrivalRate: 100},
		{TargetP99: math.NaN(), ServiceInstructions: 1e7, ArrivalRate: 100},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestLatencyModel(t *testing.T) {
	s := spec()
	// Saturated queue: mu <= lambda => infinite latency, zero attainment.
	sat := s.ArrivalRate * s.ServiceInstructions
	if !math.IsInf(s.P99(sat), 1) {
		t.Fatalf("P99 at saturation = %v, want +Inf", s.P99(sat))
	}
	if got := s.AttainFrac(sat); got != 0 {
		t.Fatalf("AttainFrac at saturation = %v, want 0", got)
	}
	if got := s.Headroom(sat); got != 0 {
		t.Fatalf("Headroom at saturation = %v, want 0", got)
	}

	// Latency quantiles are ordered and decrease with more IPS.
	ips := 1.2 * s.CriticalIPS()
	if !(s.P50(ips) < s.P95(ips) && s.P95(ips) < s.P99(ips)) {
		t.Fatalf("quantiles not ordered: p50=%v p95=%v p99=%v", s.P50(ips), s.P95(ips), s.P99(ips))
	}
	if !(s.P99(2*ips) < s.P99(ips)) {
		t.Fatalf("P99 not decreasing in IPS")
	}
}

func TestCriticalIPSBoundary(t *testing.T) {
	s := spec()
	crit := s.CriticalIPS()
	// At the critical rate p99 equals the target (to rounding) and
	// attainment is exactly 0.99.
	if p99 := s.P99(crit); math.Abs(p99-s.TargetP99) > 1e-12 {
		t.Fatalf("P99(critical) = %v, want %v", p99, s.TargetP99)
	}
	if af := s.AttainFrac(crit); math.Abs(af-0.99) > 1e-12 {
		t.Fatalf("AttainFrac(critical) = %v, want 0.99", af)
	}
	if s.Violating(crit * 1.0001) {
		t.Fatalf("just above critical should attain")
	}
	if !s.Violating(crit * 0.9999) {
		t.Fatalf("just below critical should violate")
	}
}

func TestHeadroomClamped(t *testing.T) {
	s := spec()
	if got := s.Headroom(100 * s.CriticalIPS()); got != 1 {
		t.Fatalf("Headroom with huge margin = %v, want 1 (clamped)", got)
	}
}

func TestAggregateScores(t *testing.T) {
	s := spec()
	crit := s.CriticalIPS()
	specs := []*Spec{nil, s, nil, s} // batch slots interleaved
	ips := []float64{1e9, 2 * crit, 1e9, 2 * crit}

	if !HasLC(specs) || HasLC([]*Spec{nil, nil}) {
		t.Fatalf("HasLC wrong")
	}
	if AnyViolating(specs, ips) {
		t.Fatalf("no job below critical, but AnyViolating true")
	}
	ips[3] = 0.5 * crit
	if !AnyViolating(specs, ips) {
		t.Fatalf("job below critical not flagged")
	}

	// Aggregates average over LC slots only; batch slots are ignored.
	want := (s.AttainFrac(ips[1]) + s.AttainFrac(ips[3])) / 2
	if got := AttainmentScore(specs, ips); math.Abs(got-want) > 1e-15 {
		t.Fatalf("AttainmentScore = %v, want %v", got, want)
	}
	wantH := (s.Headroom(ips[1]) + s.Headroom(ips[3])) / 2
	if got := HeadroomScore(specs, ips); math.Abs(got-wantH) > 1e-15 {
		t.Fatalf("HeadroomScore = %v, want %v", got, wantH)
	}

	// No LC jobs: both scores are the neutral 1.
	batch := []*Spec{nil, nil}
	if HeadroomScore(batch, ips[:2]) != 1 || AttainmentScore(batch, ips[:2]) != 1 {
		t.Fatalf("scores over batch-only specs should be 1")
	}
}

func TestDetectorHysteresis(t *testing.T) {
	d := NewDetector(3, 4)

	// Fewer than onset violating ticks: no switch.
	for i := 0; i < 2; i++ {
		if d.Observe(true) {
			t.Fatalf("switched after %d violating ticks, onset is 3", i+1)
		}
	}
	// An attaining tick resets the onset streak.
	if d.Observe(false) || d.Violating() {
		t.Fatalf("attaining tick should reset streak without switching")
	}
	for i := 0; i < 2; i++ {
		if d.Observe(true) {
			t.Fatalf("streak did not reset")
		}
	}
	if !d.Observe(true) {
		t.Fatalf("3rd consecutive violating tick should switch on")
	}
	if !d.Violating() || d.Onsets() != 1 {
		t.Fatalf("expected violating state with 1 onset")
	}

	// Violating state holds through short attaining runs.
	for i := 0; i < 3; i++ {
		if d.Observe(false) {
			t.Fatalf("cleared after %d attaining ticks, clear is 4", i+1)
		}
	}
	if d.Observe(true) {
		t.Fatalf("violating tick while violating should not switch")
	}
	if d.MidStreak() { // the violating tick above cleared the ok streak
		t.Fatalf("no streak expected")
	}
	for i := 0; i < 3; i++ {
		if d.Observe(false) {
			t.Fatalf("cleared early at %d", i+1)
		}
		if !d.MidStreak() {
			t.Fatalf("ok streak should be mid-flight")
		}
	}
	if !d.Observe(false) {
		t.Fatalf("4th consecutive attaining tick should clear")
	}
	if d.Violating() || d.Clears() != 1 {
		t.Fatalf("expected attaining state with 1 clear")
	}
	if d.MidStreak() {
		t.Fatalf("streaks should be empty after a flip")
	}
}

func TestDetectorDefaultsAndReset(t *testing.T) {
	d := NewDetector(0, 0)
	for i := 0; i < DefaultOnsetTicks-1; i++ {
		if d.Observe(true) {
			t.Fatalf("default onset fired early")
		}
	}
	if !d.Observe(true) {
		t.Fatalf("default onset did not fire at %d ticks", DefaultOnsetTicks)
	}
	d.Reset()
	if d.Violating() || d.MidStreak() {
		t.Fatalf("Reset should return to clean attaining state")
	}
	if d.Onsets() != 1 {
		t.Fatalf("Reset should preserve counters")
	}
}
