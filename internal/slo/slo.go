// Package slo models latency-critical (LC) jobs: a queueing-style
// IPS→latency model, per-job SLO targets, and the scores and hysteretic
// violation detector the control layers use to react to tail-latency
// trouble.
//
// The model is deliberately a pure function of observed IPS. A job with
// a Spec serves requests whose mean service demand is ServiceInstructions
// instructions; at an observed rate of ips instructions/second the job
// drains requests at rate mu = ips/ServiceInstructions while load
// arrives at rate lambda = ArrivalRate. Treating the job as an M/M/1
// queue, the sojourn time is exponential with rate (mu - lambda), so the
// q-quantile latency is
//
//	L(q) = -ln(1-q) / (mu - lambda)   (infinite when mu <= lambda).
//
// Because latency derives from the same (already noisy) IPS samples the
// rest of the stack consumes, adding LC jobs draws nothing extra from
// the RNG stream: simulation dynamics, goldens, and the bit-exactness of
// the sampled fast path are untouched when no Spec is present, and
// deterministic when one is.
package slo

import (
	"fmt"
	"math"
)

// ln100 converts a p99 target into a rate requirement:
// p99 <= target  <=>  mu - lambda >= ln(100)/target.
var ln100 = math.Log(100)

// Spec is a per-job service-level objective for a latency-critical job.
type Spec struct {
	// TargetP99 is the SLO itself: the 99th-percentile request latency
	// the job must stay under, in seconds.
	TargetP99 float64
	// ServiceInstructions is the mean number of instructions retired
	// per request, linking observed IPS to the service rate.
	ServiceInstructions float64
	// ArrivalRate is the offered load in requests per second.
	ArrivalRate float64
}

// Validate reports the first ill-formed field.
func (s *Spec) Validate() error {
	switch {
	case !(s.TargetP99 > 0) || math.IsInf(s.TargetP99, 0):
		return fmt.Errorf("slo: target p99 must be positive and finite, got %v", s.TargetP99)
	case !(s.ServiceInstructions > 0) || math.IsInf(s.ServiceInstructions, 0):
		return fmt.Errorf("slo: service instructions must be positive and finite, got %v", s.ServiceInstructions)
	case !(s.ArrivalRate > 0) || math.IsInf(s.ArrivalRate, 0):
		return fmt.Errorf("slo: arrival rate must be positive and finite, got %v", s.ArrivalRate)
	}
	return nil
}

// Latency returns the q-quantile request latency (seconds) at the given
// instruction rate, +Inf when the queue is saturated (mu <= lambda).
func (s *Spec) Latency(ips, q float64) float64 {
	mu := ips / s.ServiceInstructions
	if mu <= s.ArrivalRate {
		return math.Inf(1)
	}
	return -math.Log(1-q) / (mu - s.ArrivalRate)
}

// P50 is the median request latency at the given instruction rate.
func (s *Spec) P50(ips float64) float64 { return s.Latency(ips, 0.50) }

// P95 is the 95th-percentile request latency at the given instruction rate.
func (s *Spec) P95(ips float64) float64 { return s.Latency(ips, 0.95) }

// P99 is the 99th-percentile request latency at the given instruction rate.
func (s *Spec) P99(ips float64) float64 { return s.Latency(ips, 0.99) }

// CriticalIPS is the minimum instruction rate at which the job exactly
// meets its p99 target; below it the job is violating.
func (s *Spec) CriticalIPS() float64 {
	return s.ServiceInstructions * (s.ArrivalRate + ln100/s.TargetP99)
}

// Violating reports whether the given instruction rate leaves p99 above
// the target.
func (s *Spec) Violating(ips float64) bool { return ips < s.CriticalIPS() }

// AttainFrac is the fraction of requests served within the p99 target
// at the given instruction rate: 1 - exp(-(mu-lambda)*target), or 0
// when saturated. At exactly CriticalIPS it equals 0.99, so "attaining"
// means AttainFrac >= 0.99.
func (s *Spec) AttainFrac(ips float64) float64 {
	mu := ips / s.ServiceInstructions
	if mu <= s.ArrivalRate {
		return 0
	}
	return 1 - math.Exp(-(mu-s.ArrivalRate)*s.TargetP99)
}

// Headroom scores how comfortably the job meets its target:
// clamp(target/p99, 0, 1). 1 at twice the needed rate margin, shrinking
// toward 0 as the queue saturates.
func (s *Spec) Headroom(ips float64) float64 {
	p99 := s.P99(ips)
	if math.IsInf(p99, 1) {
		return 0
	}
	h := s.TargetP99 / p99
	if h > 1 {
		return 1
	}
	return h
}

// HasLC reports whether any slot carries a Spec (nil entries are batch
// jobs).
func HasLC(specs []*Spec) bool {
	for _, s := range specs {
		if s != nil {
			return true
		}
	}
	return false
}

// HeadroomScore is the mean Headroom over LC jobs, the throughput-side
// score behind metrics.P99Latency. 1 when no job carries a Spec.
func HeadroomScore(specs []*Spec, ips []float64) float64 {
	sum, n := 0.0, 0
	for j, s := range specs {
		if s == nil {
			continue
		}
		sum += s.Headroom(ips[j])
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// AttainmentScore is the mean AttainFrac over LC jobs, the fairness-side
// score behind metrics.SLOAttainment. 1 when no job carries a Spec.
func AttainmentScore(specs []*Spec, ips []float64) float64 {
	sum, n := 0.0, 0
	for j, s := range specs {
		if s == nil {
			continue
		}
		sum += s.AttainFrac(ips[j])
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// RecoveryScore is the minimum AttainFrac over LC jobs — the worst
// service's attainment. Violation-driven goal switching scores this
// rather than the mean: one healthy service cannot mask a starving one,
// so the optimizer keeps a usable gradient until every SLO is met.
// 1 when no job carries a Spec.
func RecoveryScore(specs []*Spec, ips []float64) float64 {
	min, n := 1.0, 0
	for j, s := range specs {
		if s == nil {
			continue
		}
		if a := s.AttainFrac(ips[j]); n == 0 || a < min {
			min = a
		}
		n++
	}
	if n == 0 {
		return 1
	}
	return min
}

// AnyViolating reports whether any LC job's instruction rate is below
// its critical rate — the per-tick verdict fed to the Detector.
func AnyViolating(specs []*Spec, ips []float64) bool {
	for j, s := range specs {
		if s != nil && s.Violating(ips[j]) {
			return true
		}
	}
	return false
}

// DefaultOnsetMargin is the relative band around a job's CriticalIPS
// inside which the simulator's extrapolation fast paths refuse to skip:
// within ±margin·critical the per-tick noise (~2% sigma) can flip the
// violation verdict, so a skip could jump the control loop straight
// over an SLO-violation onset. 0.10 is ≈5 sigma of the default noise.
const DefaultOnsetMargin = 0.10
