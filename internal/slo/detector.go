package slo

// Detector turns noisy per-tick violation verdicts into a hysteretic
// violating/attaining state: an onset fires only after OnsetTicks
// consecutive violating verdicts, and clears only after ClearTicks
// consecutive attaining ones. The asymmetry (clear slower than onset)
// keeps the goal switch from flapping when attainment hovers at the
// target.
type Detector struct {
	onset int // consecutive violating verdicts to enter violation
	clear int // consecutive attaining verdicts to leave it

	violating  bool
	violStreak int // run of violating verdicts while attaining
	okStreak   int // run of attaining verdicts while violating

	onsets int
	clears int
}

// Default hysteresis: half an equalization window to confirm an onset,
// a full one to trust a recovery.
const (
	DefaultOnsetTicks = 5
	DefaultClearTicks = 10
)

// NewDetector builds a detector; non-positive thresholds take the
// defaults.
func NewDetector(onsetTicks, clearTicks int) *Detector {
	if onsetTicks <= 0 {
		onsetTicks = DefaultOnsetTicks
	}
	if clearTicks <= 0 {
		clearTicks = DefaultClearTicks
	}
	return &Detector{onset: onsetTicks, clear: clearTicks}
}

// Observe feeds one tick's verdict and reports whether the hysteretic
// state flipped on this tick.
func (d *Detector) Observe(violating bool) (switched bool) {
	if violating {
		d.okStreak = 0
		if d.violating {
			return false
		}
		d.violStreak++
		if d.violStreak >= d.onset {
			d.violating = true
			d.violStreak = 0
			d.onsets++
			return true
		}
		return false
	}
	d.violStreak = 0
	if !d.violating {
		return false
	}
	d.okStreak++
	if d.okStreak >= d.clear {
		d.violating = false
		d.okStreak = 0
		d.clears++
		return true
	}
	return false
}

// Violating is the current hysteretic state.
func (d *Detector) Violating() bool { return d.violating }

// MidStreak reports whether a run of contrary verdicts is advancing
// toward a state flip. While true, skipping ticks could jump over the
// onset/clear transition, so the event-driven fast path must refuse.
func (d *Detector) MidStreak() bool {
	return d.violStreak > 0 || d.okStreak > 0
}

// Onsets counts violation onsets observed so far.
func (d *Detector) Onsets() int { return d.onsets }

// Clears counts recoveries observed so far.
func (d *Detector) Clears() int { return d.clears }

// Reset returns the detector to the attaining state with no streaks.
func (d *Detector) Reset() {
	d.violating = false
	d.violStreak = 0
	d.okStreak = 0
}
