package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"satori/internal/rdt"
	"satori/internal/workloads"
)

// The daemon soak: a free-running server under a randomized fault script
// while load-generator goroutines churn jobs, flip the goal, poll status
// and consume the metrics stream over real HTTP — sustained operation
// must end with a clean shutdown, no goroutine leaks, bounded heap
// growth, and a loop that absorbed every transient fault.
func TestSoakChurnUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	goroutinesBefore := runtime.NumGoroutine()
	var memBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)

	const soakTicks = 3000
	script := &rdt.FaultScript{
		Seed:            99,
		ApplyErrorRate:  0.02,
		SampleErrorRate: 0.02, SampleCorruptRate: 0.01,
		MeasureErrorRate: 0.05, ResyncErrorRate: 0.05,
	}
	srv := newTestServer(t, script, soakTicks)
	// Pace the driver at 1 ms/tick (vs the production 100 ms) so the
	// HTTP load generators genuinely interleave with live ticking.
	srv.tickEvery = time.Millisecond
	ts := httptest.NewServer(srv.Handler())

	runDone := make(chan error, 1)
	runCtx, cancelRun := context.WithCancel(context.Background())
	go func() { runDone <- srv.Run(runCtx) }()

	// Load generators: churners add/remove random workloads, a goal
	// flipper alternates fairness formulas, pollers hammer status and
	// health, one subscriber drains the stream, one subscribes and
	// abandons (exercising the bounded-buffer drop path).
	loadCtx, stopLoad := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var churns, polls atomic.Int64
	names := workloads.Names()

	post := func(path string, body any) (int, error) {
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(body)
		resp, err := ts.Client().Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; loadCtx.Err() == nil; i++ {
				if i%2 == 0 {
					code, err := post("/jobs", AddJobRequest{Workload: names[(g*7+i)%len(names)]})
					if err != nil {
						return
					}
					// 200 (admitted) or 409 (platform at capacity / shape
					// constraints) are both healthy outcomes under churn.
					if code != http.StatusOK && code != http.StatusConflict {
						t.Errorf("churn add: unexpected status %d", code)
						return
					}
				} else {
					req, _ := http.NewRequest("DELETE", ts.URL+fmt.Sprintf("/jobs/%d", 2+g), nil)
					resp, err := ts.Client().Do(req)
					if err != nil {
						return
					}
					resp.Body.Close()
				}
				churns.Add(1)
				time.Sleep(time.Millisecond)
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		goals := []GoalRequest{{Fairness: "one-minus-cov"}, {Fairness: "jain"}, {Throughput: "geomean-speedup"}, {Throughput: "sum-ips"}}
		for i := 0; loadCtx.Err() == nil; i++ {
			if _, err := post("/goal", goals[i%len(goals)]); err != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for loadCtx.Err() == nil {
				for _, path := range []string{"/status", "/healthz", "/jobs"} {
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						return
					}
					resp.Body.Close()
					polls.Add(1)
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	var streamed atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(loadCtx, "GET", ts.URL+"/metrics/stream", nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			streamed.Add(1)
		}
	}()

	// An abandoned subscriber: connects, reads nothing, disconnects
	// mid-run. Its buffer must fill and drop without stalling the loop.
	abandonCtx, abandon := context.WithTimeout(loadCtx, 50*time.Millisecond)
	defer abandon()
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(abandonCtx, "GET", ts.URL+"/metrics/stream", nil)
		if resp, err := ts.Client().Do(req); err == nil {
			<-abandonCtx.Done()
			resp.Body.Close()
		}
	}()

	// Let the soak run to completion (free-running, so this is fast).
	var runErr error
	select {
	case runErr = <-runDone:
	case <-time.After(2 * time.Minute):
		cancelRun()
		t.Fatal("soak did not finish within 2 minutes")
	}
	stopLoad()
	wg.Wait()
	cancelRun()
	ts.Close()

	if runErr != nil {
		t.Fatalf("soak run failed: %v", runErr)
	}
	loop := srv.Loop()
	sum := loop.Summary()
	if sum.Ticks != soakTicks {
		t.Errorf("completed %d ticks, want %d", sum.Ticks, soakTicks)
	}
	fi, _ := rdt.InjectorOf(loop.Platform())
	counts := fi.Counts()
	if counts.Total() == 0 {
		t.Error("soak injected no faults — script rates never fired")
	}
	if churns.Load() == 0 || polls.Load() == 0 || streamed.Load() == 0 {
		t.Errorf("load generators idle: churns=%d polls=%d streamed=%d",
			churns.Load(), polls.Load(), streamed.Load())
	}
	t.Logf("soak: %d ticks, %d churn ops, %d polls, %d streamed, faults %+v, %s",
		sum.Ticks, churns.Load(), polls.Load(), streamed.Load(), counts, sum)

	// No goroutine leaks: everything spawned by the server, the stream
	// handlers, and the HTTP stack must wind down. (No external leak
	// detector is available, so poll NumGoroutine until it settles.)
	deadline := time.Now().Add(5 * time.Second)
	var goroutinesAfter int
	for {
		runtime.GC()
		goroutinesAfter = runtime.NumGoroutine()
		if goroutinesAfter <= goroutinesBefore+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if goroutinesAfter > goroutinesBefore+2 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", goroutinesBefore, goroutinesAfter, buf[:n])
	}

	// Bounded memory: a 4000-tick soak with churn and streaming must not
	// accumulate state. The bound is deliberately generous — it catches
	// unbounded growth (per-tick retention), not allocator noise.
	runtime.GC()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	if growth := int64(memAfter.HeapAlloc) - int64(memBefore.HeapAlloc); growth > 64<<20 {
		t.Errorf("heap grew by %d MiB over the soak — per-tick state is being retained", growth>>20)
	}
}
