// Package server turns a control.Loop into a long-running service: a
// tick driver advancing the Algorithm-1 loop on a wall-clock (or
// free-running) schedule, plus an HTTP API for live operation — submit
// and remove workloads through the platform's churn capability, swap the
// goal formulas mid-run, inspect health and status, and stream per-tick
// metrics. cmd/satorid is the thin binary around this package; the soak
// tests drive the identical stack hermetically over net/http/httptest.
//
// Concurrency model: one goroutine (Run) owns the tick cadence; every
// HTTP mutation takes the same mutex as the tick, so churn serializes
// between intervals exactly like the batch drivers' between-tick churn.
// Metrics fan out over bounded per-subscriber buffers — a stalled client
// drops its own events, never blocks the loop, and never grows memory.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"satori/internal/control"
	"satori/internal/metrics"
	"satori/internal/rdt"
	"satori/internal/workloads"
)

// Options configures a Server.
type Options struct {
	// Loop is the control loop the server owns (required). The server
	// is its only driver: all stepping and churn go through the server's
	// lock.
	Loop *control.Loop
	// TickEvery is the wall-clock interval between loop ticks (default
	// 100 ms, the paper's cadence). Zero or negative free-runs the loop
	// — the soak/CI mode, where simulated time needs no wall anchoring.
	TickEvery time.Duration
	// MaxTicks stops the driver cleanly after this many intervals
	// (0 = run until the context is canceled).
	MaxTicks int
	// Injector, when the platform is wrapped in a fault injector,
	// surfaces ground-truth fault counts in /status.
	Injector *rdt.FaultInjector
	// SLOUnhealthyAfter, when positive, makes /healthz report 503 once a
	// latency-critical job's SLO violation has persisted for this many
	// consecutive ticks — the orchestrator-facing "this node needs
	// help" signal. Zero (the default) keeps /healthz purely about loop
	// health, SLO state notwithstanding.
	SLOUnhealthyAfter int
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Server owns a control loop and serves the daemon API.
type Server struct {
	mu        sync.Mutex // guards loop, lastStatus, runErr
	loop      *control.Loop
	last      control.Status
	haveLast  bool
	runErr    error
	stopped   bool
	tickEvery time.Duration
	maxTicks  int
	injector  *rdt.FaultInjector
	sloAfter  int
	logf      func(string, ...any)

	subMu   sync.Mutex
	subs    map[int]chan TickMetrics
	nextSub int
}

// New builds a server around opt.Loop.
func New(opt Options) (*Server, error) {
	if opt.Loop == nil {
		return nil, fmt.Errorf("server: Options.Loop is required")
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	tickEvery := opt.TickEvery
	if tickEvery == 0 {
		tickEvery = 100 * time.Millisecond
	}
	return &Server{
		loop:      opt.Loop,
		tickEvery: tickEvery,
		maxTicks:  opt.MaxTicks,
		injector:  opt.Injector,
		sloAfter:  opt.SLOUnhealthyAfter,
		logf:      logf,
		subs:      map[int]chan TickMetrics{},
	}, nil
}

// Loop returns the owned control loop. Callers outside the request path
// must not step it while Run is active.
func (s *Server) Loop() *control.Loop { return s.loop }

// Run drives the loop until ctx is canceled, MaxTicks intervals have
// completed, or the loop fails fatally (a non-transient platform error
// or a policy/platform desync). Transient trouble never surfaces here —
// the loop's resilience policies absorb it and the Health endpoint
// reports it. Run always leaves the server in a state where the HTTP
// handlers keep answering (reporting the terminal error, if any).
func (s *Server) Run(ctx context.Context) error {
	defer s.closeSubscribers()
	var ticker *time.Ticker
	if s.tickEvery > 0 {
		ticker = time.NewTicker(s.tickEvery)
		defer ticker.Stop()
	}
	for n := 0; s.maxTicks <= 0 || n < s.maxTicks; n++ {
		if ticker != nil {
			select {
			case <-ctx.Done():
				return s.finish(nil)
			case <-ticker.C:
			}
		} else if ctx.Err() != nil {
			return s.finish(nil)
		}
		s.mu.Lock()
		st, err := s.loop.Step()
		if err != nil {
			s.runErr = err
			s.stopped = true
			s.mu.Unlock()
			s.logf("satorid: tick loop stopped: %v", err)
			return err
		}
		s.last = st
		s.haveLast = true
		jobs := s.loop.NumJobs()
		s.mu.Unlock()
		s.publish(tickMetrics(st, jobs))
	}
	return s.finish(nil)
}

// finish marks the driver stopped (clean shutdown or MaxTicks reached).
func (s *Server) finish(err error) error {
	s.mu.Lock()
	s.stopped = true
	if s.runErr == nil {
		s.runErr = err
	}
	s.mu.Unlock()
	return err
}

// TickMetrics is one interval's streamed record (the /metrics/stream
// NDJSON schema).
type TickMetrics struct {
	Tick         int     `json:"tick"`
	Time         float64 `json:"time"`
	Jobs         int     `json:"jobs"`
	Throughput   float64 `json:"throughput"`
	Fairness     float64 `json:"fairness"`
	BaselineRst  bool    `json:"baselineReset,omitempty"`
	Sampled      bool    `json:"sampled,omitempty"`
	BadSample    bool    `json:"badSample,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	SafeFallback bool    `json:"safeFallback,omitempty"`
	Rejected     bool    `json:"rejectedApply,omitempty"`
	// SLO is present exactly when the loop tracks latency-critical jobs.
	SLO *TickSLO `json:"slo,omitempty"`
}

// TickSLO is the per-tick latency-critical block: per-slot tail-latency
// quantiles in seconds (-1 marks a saturated service whose queue is
// unbounded — JSON cannot carry +Inf), the mean SLO attainment, and the
// hysteretic violation / goal-switch state.
type TickSLO struct {
	P95          []float64 `json:"p95"`
	P99          []float64 `json:"p99"`
	Attainment   float64   `json:"attainment"`
	Violating    bool      `json:"violating"`
	GoalSwitched bool      `json:"goalSwitched,omitempty"`
}

// finiteLatencies sanitizes a quantile slice for JSON: +Inf → -1.
func finiteLatencies(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		if math.IsInf(v, 1) {
			out[i] = -1
			continue
		}
		out[i] = v
	}
	return out
}

func tickMetrics(st control.Status, jobs int) TickMetrics {
	m := TickMetrics{
		Tick: st.Tick, Time: st.Time, Jobs: jobs,
		Throughput: st.Throughput, Fairness: st.Fairness,
		BaselineRst: st.BaselineReset, Sampled: st.SampledTick,
		BadSample: st.BadSample, Degraded: st.Degraded,
		SafeFallback: st.SafeFallback, Rejected: st.RejectedApply != nil,
	}
	if len(st.P99) > 0 {
		m.SLO = &TickSLO{
			P95:          finiteLatencies(st.P95),
			P99:          finiteLatencies(st.P99),
			Attainment:   st.SLOAttainment,
			Violating:    st.SLOViolating,
			GoalSwitched: st.GoalSwitched,
		}
	}
	return m
}

// publish fans an event out to every subscriber; a subscriber whose
// buffer is full loses this event (bounded memory beats completeness
// for a monitoring stream).
func (s *Server) publish(m TickMetrics) {
	s.subMu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- m:
		default:
		}
	}
	s.subMu.Unlock()
}

// subscribe registers a metrics listener; the returned cancel must be
// called exactly once.
func (s *Server) subscribe() (<-chan TickMetrics, func()) {
	ch := make(chan TickMetrics, 64)
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.subMu.Unlock()
	return ch, func() {
		s.subMu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.subMu.Unlock()
	}
}

// closeSubscribers ends every metrics stream (driver shutdown).
func (s *Server) closeSubscribers() {
	s.subMu.Lock()
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	s.subMu.Unlock()
}

// Handler returns the daemon's HTTP API:
//
//	GET    /healthz          liveness (503 while degraded or stopped)
//	GET    /status           full JSON status (summary, health, faults)
//	GET    /jobs             job names by slot
//	POST   /jobs             {"workload": "<name>"} — submit via churn
//	DELETE /jobs/{slot}      evict the job in a slot
//	POST   /goal             {"throughput": "...", "fairness": "..."}
//	GET    /metrics/stream   NDJSON per-tick metrics until disconnect
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /jobs", s.handleListJobs)
	mux.HandleFunc("POST /jobs", s.handleAddJob)
	mux.HandleFunc("DELETE /jobs/{slot}", s.handleRemoveJob)
	mux.HandleFunc("POST /goal", s.handleGoal)
	mux.HandleFunc("GET /metrics/stream", s.handleStream)
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// HealthResponse is the /healthz schema.
type HealthResponse struct {
	Status string         `json:"status"` // "ok" | "degraded" | "stopped" | "slo-violation"
	Health control.Health `json:"health"`
	// SLOViolationRun is the length of the current sustained SLO
	// violation in ticks (only set when the status is "slo-violation").
	SLOViolationRun int    `json:"sloViolationRun,omitempty"`
	Error           string `json:"error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := s.loop.Health()
	stopped, runErr := s.stopped, s.runErr
	violRun := s.loop.SLOViolationRun()
	s.mu.Unlock()
	resp := HealthResponse{Status: "ok", Health: h}
	code := http.StatusOK
	switch {
	case stopped:
		resp.Status = "stopped"
		if runErr != nil {
			resp.Error = runErr.Error()
		}
		code = http.StatusServiceUnavailable
	case !h.Healthy():
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	case s.sloAfter > 0 && violRun >= s.sloAfter:
		// Flag-gated: a sustained SLO violation marks the node unhealthy
		// so an orchestrator can drain or rebalance it.
		resp.Status = "slo-violation"
		resp.SLOViolationRun = violRun
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// StatusResponse is the /status schema.
type StatusResponse struct {
	Tick       int              `json:"tick"`
	Time       float64          `json:"time"`
	Jobs       []string         `json:"jobs"`
	Policy     string           `json:"policy"`
	Throughput string           `json:"throughputMetric"`
	Fairness   string           `json:"fairnessMetric"`
	Last       *TickMetrics     `json:"last,omitempty"`
	Summary    control.Summary  `json:"summary"`
	Health     control.Health   `json:"health"`
	Faults     *rdt.FaultCounts `json:"injectedFaults,omitempty"`
	// SLO is present exactly when the loop tracks latency-critical jobs.
	SLO *SLOStatus `json:"slo,omitempty"`
}

// SLOStatus is the /status latency-critical block.
type SLOStatus struct {
	// TargetsP99 holds each slot's p99 target in seconds (0 = batch job).
	TargetsP99 []float64 `json:"targetsP99"`
	// Violating is the hysteretic violation state; ViolationRun its
	// current length in ticks.
	Violating    bool `json:"violating"`
	ViolationRun int  `json:"violationRun"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tm, fm := s.loop.Objectives()
	resp := StatusResponse{
		Tick:       s.loop.Ticks(),
		Time:       float64(s.loop.Ticks()) * control.TickSeconds,
		Jobs:       s.loop.Platform().JobNames(),
		Policy:     s.loop.Policy().Name(),
		Throughput: tm.String(),
		Fairness:   fm.String(),
		Summary:    s.loop.Summary(),
		Health:     s.loop.Health(),
	}
	if s.haveLast {
		m := tickMetrics(s.last, s.loop.NumJobs())
		resp.Last = &m
	}
	if specs := s.loop.SLOSpecs(); specs != nil {
		slo := &SLOStatus{
			TargetsP99:   make([]float64, len(specs)),
			Violating:    s.loop.SLOViolating(),
			ViolationRun: s.loop.SLOViolationRun(),
		}
		for i, sp := range specs {
			if sp != nil {
				slo.TargetsP99[i] = sp.TargetP99
			}
		}
		resp.SLO = slo
	}
	// The injector read also needs the lock: its counters mutate inside
	// Step, which runs under s.mu.
	if s.injector != nil {
		c := s.injector.Counts()
		resp.Faults = &c
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := s.loop.Platform().JobNames()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": names})
}

// AddJobRequest is the POST /jobs schema: a workload name from the
// built-in suites (see workloads.Names).
type AddJobRequest struct {
	Workload string `json:"workload"`
}

func (s *Server) handleAddJob(w http.ResponseWriter, r *http.Request) {
	var req AddJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	profile, err := workloads.ByName(req.Workload)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	err = s.loop.AddJob(profile)
	jobs := s.loop.Platform().JobNames()
	s.mu.Unlock()
	if err != nil {
		httpError(w, churnErrCode(err), "submit %s: %v", req.Workload, err)
		return
	}
	s.logf("satorid: admitted %s (now %d jobs)", req.Workload, len(jobs))
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "slot": len(jobs) - 1})
}

func (s *Server) handleRemoveJob(w http.ResponseWriter, r *http.Request) {
	slot, err := strconv.Atoi(r.PathValue("slot"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad slot %q", r.PathValue("slot"))
		return
	}
	s.mu.Lock()
	var name string
	if names := s.loop.Platform().JobNames(); slot >= 0 && slot < len(names) {
		name = names[slot]
	}
	err = s.loop.RemoveJob(slot)
	jobs := s.loop.Platform().JobNames()
	s.mu.Unlock()
	if err != nil {
		httpError(w, churnErrCode(err), "remove slot %d: %v", slot, err)
		return
	}
	s.logf("satorid: evicted %s from slot %d (now %d jobs)", name, slot, len(jobs))
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "removed": name})
}

// churnErrCode maps churn failures onto HTTP semantics: capability
// missing → 501, anything else (bad slot, last job, shape trouble) → 409.
func churnErrCode(err error) int {
	if errors.Is(err, control.ErrChurnUnsupported) {
		return http.StatusNotImplemented
	}
	return http.StatusConflict
}

// GoalRequest is the POST /goal schema; either field may be omitted to
// keep the current formula.
type GoalRequest struct {
	Throughput string `json:"throughput"`
	Fairness   string `json:"fairness"`
}

func (s *Server) handleGoal(w http.ResponseWriter, r *http.Request) {
	var req GoalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	tm, fm := s.loop.Objectives()
	s.mu.Unlock()
	if req.Throughput != "" {
		var err error
		if tm, err = parseThroughput(req.Throughput); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Fairness != "" {
		var err error
		if fm, err = parseFairness(req.Fairness); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.mu.Lock()
	s.loop.SetObjectives(tm, fm)
	tm, fm = s.loop.Objectives()
	s.mu.Unlock()
	s.logf("satorid: goal reconfigured to %s + %s", tm, fm)
	writeJSON(w, http.StatusOK, map[string]string{"throughput": tm.String(), "fairness": fm.String()})
}

// parseThroughput resolves a throughput-metric name (the String() forms
// plus common short aliases).
func parseThroughput(name string) (metrics.ThroughputMetric, error) {
	switch name {
	case "sum-ips", "sumips":
		return metrics.SumIPS, nil
	case "geomean-speedup", "geomean":
		return metrics.GeoMeanSpeedup, nil
	case "harmonic-speedup", "harmonic":
		return metrics.HarmonicMeanSpeedup, nil
	case "p99-latency", "p99":
		return metrics.P99Latency, nil
	}
	return 0, fmt.Errorf("unknown throughput metric %q (valid: sum-ips, geomean-speedup, harmonic-speedup, p99-latency)", name)
}

// parseFairness resolves a fairness-metric name.
func parseFairness(name string) (metrics.FairnessMetric, error) {
	switch name {
	case "jain":
		return metrics.JainIndex, nil
	case "one-minus-cov", "cov":
		return metrics.OneMinusCoV, nil
	case "slo-attainment", "attainment":
		return metrics.SLOAttainment, nil
	}
	return 0, fmt.Errorf("unknown fairness metric %q (valid: jain, one-minus-cov, slo-attainment)", name)
}

// handleStream serves NDJSON per-tick metrics until the client
// disconnects or the driver shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch, cancel := s.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case m, ok := <-ch:
			if !ok {
				return // driver shut down
			}
			if err := enc.Encode(m); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
