package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"satori/internal/control"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/workloads"
)

// newTestServer builds a daemon stack over the simulated backend:
// 3 PARSEC jobs, static policy, optional fault script, free-running
// driver capped at maxTicks.
func newTestServer(t *testing.T, script *rdt.FaultScript, maxTicks int) *Server {
	t.Helper()
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var platform rdt.Platform
	platform, err = rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	var injector *rdt.FaultInjector
	if script != nil {
		script.Sleep = func(time.Duration) {}
		platform, err = rdt.NewFaultInjector(platform, *script)
		if err != nil {
			t.Fatal(err)
		}
		injector, _ = rdt.InjectorOf(platform)
	}
	loop, err := control.New(control.Options{
		Platform: platform,
		Policy:   func(rdt.Platform) (policy.Policy, error) { return policy.Static{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Loop: loop, TickEvery: -1, MaxTicks: maxTicks, Injector: injector})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantCode int, into any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status = %d, want %d", path, resp.StatusCode, wantCode)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any, wantCode int, into any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("%s %s: status = %d, want %d (body: %s)", method, path, resp.StatusCode, wantCode, msg.String())
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
}

// The API's full request lifecycle: health, status, churn, goal
// reconfiguration, and error mapping — exercised without the tick
// driver running (every mutation is valid between ticks).
func TestServerAPI(t *testing.T) {
	srv := newTestServer(t, nil, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var health HealthResponse
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if health.Status != "ok" || !health.Health.Healthy() {
		t.Errorf("fresh daemon health = %+v, want ok", health)
	}

	var status StatusResponse
	getJSON(t, ts, "/status", http.StatusOK, &status)
	if len(status.Jobs) != 3 || status.Policy != "static" {
		t.Errorf("status = %+v, want 3 jobs and static policy", status)
	}
	if status.Throughput != "sum-ips" || status.Fairness != "jain" {
		t.Errorf("default goal = %s + %s, want sum-ips + jain", status.Throughput, status.Fairness)
	}

	// Submit a workload by name; the slot it lands in comes back.
	var added struct {
		Jobs []string `json:"jobs"`
		Slot int      `json:"slot"`
	}
	doJSON(t, ts, "POST", "/jobs", AddJobRequest{Workload: "streamcluster"}, http.StatusOK, &added)
	if added.Slot != 3 || len(added.Jobs) != 4 || added.Jobs[3] != "streamcluster" {
		t.Errorf("add = %+v, want streamcluster in slot 3", added)
	}

	// Unknown workloads and malformed bodies are 400s.
	doJSON(t, ts, "POST", "/jobs", AddJobRequest{Workload: "no-such-benchmark"}, http.StatusBadRequest, nil)
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", resp.StatusCode)
	}

	// Evict the job we just added; evicting an empty slot is a conflict.
	var removed struct {
		Jobs    []string `json:"jobs"`
		Removed string   `json:"removed"`
	}
	doJSON(t, ts, "DELETE", "/jobs/3", nil, http.StatusOK, &removed)
	if removed.Removed != "streamcluster" || len(removed.Jobs) != 3 {
		t.Errorf("remove = %+v, want streamcluster evicted", removed)
	}
	doJSON(t, ts, "DELETE", "/jobs/9", nil, http.StatusConflict, nil)
	doJSON(t, ts, "DELETE", "/jobs/x", nil, http.StatusBadRequest, nil)

	// Goal reconfiguration: partial updates keep the other formula.
	var goal map[string]string
	doJSON(t, ts, "POST", "/goal", GoalRequest{Fairness: "one-minus-cov"}, http.StatusOK, &goal)
	if goal["throughput"] != "sum-ips" || goal["fairness"] != "one-minus-cov" {
		t.Errorf("goal = %v, want sum-ips + one-minus-cov", goal)
	}
	doJSON(t, ts, "POST", "/goal", GoalRequest{Throughput: "bogus"}, http.StatusBadRequest, nil)

	getJSON(t, ts, "/status", http.StatusOK, &status)
	if status.Fairness != "one-minus-cov" {
		t.Errorf("status after goal change: fairness = %s, want one-minus-cov", status.Fairness)
	}
}

// The driver honors MaxTicks, the stream delivers per-tick NDJSON, and
// /status reflects the completed run.
func TestServerRunAndStream(t *testing.T) {
	const ticks = 40
	srv := newTestServer(t, nil, ticks)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Subscribe before the driver starts so no tick is missed.
	streamCtx, cancelStream := context.WithCancel(context.Background())
	defer cancelStream()
	req, err := http.NewRequestWithContext(streamCtx, "GET", ts.URL+"/metrics/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(context.Background()) }()

	var got []TickMetrics
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var m TickMetrics
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			t.Fatalf("stream line %q: %v", scanner.Text(), err)
		}
		got = append(got, m)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != ticks {
		t.Fatalf("streamed %d ticks, want %d", len(got), ticks)
	}
	for i, m := range got {
		if m.Tick != i+1 || m.Jobs != 3 {
			t.Fatalf("stream[%d] = %+v, want tick %d with 3 jobs", i, m, i+1)
		}
	}

	// The finished driver reports stopped (503) but keeps answering.
	var health HealthResponse
	getJSON(t, ts, "/healthz", http.StatusServiceUnavailable, &health)
	if health.Status != "stopped" {
		t.Errorf("post-run health = %+v, want stopped", health)
	}
	var status StatusResponse
	getJSON(t, ts, "/status", http.StatusOK, &status)
	if status.Tick != ticks || status.Last == nil || status.Last.Tick != ticks {
		t.Errorf("post-run status tick = %d (last %+v), want %d", status.Tick, status.Last, ticks)
	}
}

// A fault script surfaces in /status (injected counts) and /healthz
// (degraded while a failure run is active), and the driver survives the
// whole script.
func TestServerReportsInjectedFaults(t *testing.T) {
	script := &rdt.FaultScript{
		Faults: []rdt.Fault{
			{Op: rdt.OpSample, Kind: rdt.FaultNaN, Call: 10},
			{Op: rdt.OpSample, Kind: rdt.FaultError, Call: 20, Repeat: 2},
		},
	}
	srv := newTestServer(t, script, 30)
	if err := srv.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var status StatusResponse
	getJSON(t, ts, "/status", http.StatusOK, &status)
	if status.Faults == nil {
		t.Fatal("status.injectedFaults missing with an injector attached")
	}
	if status.Faults.SampleNaNs != 1 || status.Faults.SampleErrors != 2 {
		t.Errorf("injected faults = %+v, want 1 NaN + 2 sample errors", status.Faults)
	}
	if status.Summary.BadSamples != 1 || status.Summary.SampleErrors != 2 {
		t.Errorf("summary = %+v, want the loop to have absorbed every fault", status.Summary)
	}
	if !status.Health.Healthy() {
		t.Errorf("health = %+v, want recovered by tick 30", status.Health)
	}
}

// Identical server runs with identical fault scripts produce identical
// summaries — the daemon stack adds no nondeterminism over the loop.
func TestServerFaultRunDeterministic(t *testing.T) {
	run := func() string {
		script := &rdt.FaultScript{
			Seed:            5,
			SampleErrorRate: 0.05, SampleCorruptRate: 0.05, ApplyErrorRate: 0.05,
		}
		srv := newTestServer(t, script, 200)
		if err := srv.Run(context.Background()); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fmt.Sprintf("%s | %+v", srv.Loop().Summary(), srv.Loop().Health())
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("fault runs diverged:\n  a: %s\n  b: %s", a, b)
	}
}
