package bo

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"satori/internal/gp"
	"satori/internal/linalg"
	"satori/internal/stats"
)

func TestEIKnownValues(t *testing.T) {
	// With mu = best and sigma = 1, EI = phi(0) = 1/sqrt(2π).
	got := EI{}.Score(1, 1, 1)
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EI(mu=best, sigma=1) = %g, want %g", got, want)
	}
	// Deterministic prediction below best: no improvement possible.
	if got := (EI{}).Score(0.5, 0, 1); got != 0 {
		t.Errorf("EI deterministic below best = %g, want 0", got)
	}
	// Deterministic prediction above best: improvement is certain.
	if got := (EI{}).Score(1.5, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("EI deterministic above best = %g, want 0.5", got)
	}
}

func TestEIMonotonicity(t *testing.T) {
	// EI increases in mu and, when mu <= best, increases in sigma.
	base := EI{}.Score(0.5, 0.2, 1)
	if (EI{}).Score(0.7, 0.2, 1) <= base {
		t.Error("EI not increasing in mu")
	}
	if (EI{}).Score(0.5, 0.5, 1) <= base {
		t.Error("EI not increasing in sigma below incumbent")
	}
	// Always non-negative.
	rng := stats.NewRNG(5)
	for i := 0; i < 1000; i++ {
		mu := rng.NormFloat64()
		sigma := rng.Float64()
		if v := (EI{}).Score(mu, sigma, 0); v < 0 {
			t.Fatalf("EI negative: %g at mu=%g sigma=%g", v, mu, sigma)
		}
	}
}

func TestEIXiReducesScore(t *testing.T) {
	plain := EI{}.Score(1, 0.5, 1)
	greedy := EI{Xi: 0.2}.Score(1, 0.5, 1)
	if greedy >= plain {
		t.Errorf("xi should shrink EI: %g >= %g", greedy, plain)
	}
}

func TestUCB(t *testing.T) {
	if got := (UCB{Beta: 2}).Score(1, 0.5, 0); got != 2 {
		t.Errorf("UCB = %g, want 2", got)
	}
	if got := (UCB{}).Score(1, 0.5, 0); got != 1 {
		t.Errorf("UCB beta=0 = %g, want mu", got)
	}
}

func TestPI(t *testing.T) {
	// mu = best, sigma > 0: probability exactly 1/2.
	if got := (PI{}).Score(1, 0.3, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PI at incumbent = %g, want 0.5", got)
	}
	if got := (PI{}).Score(2, 0, 1); got != 1 {
		t.Errorf("PI certain improvement = %g, want 1", got)
	}
	if got := (PI{}).Score(0.5, 0, 1); got != 0 {
		t.Errorf("PI certain non-improvement = %g, want 0", got)
	}
	if got := (PI{Xi: 0.6}).Score(1.5, 0, 1); got != 0 {
		t.Errorf("PI with margin = %g, want 0", got)
	}
}

func TestAcquisitionNames(t *testing.T) {
	if (EI{}).Name() != "ei" || (UCB{}).Name() != "ucb" || (PI{}).Name() != "pi" {
		t.Error("acquisition names wrong")
	}
}

func TestSuggestPrefersUnexploredOverKnownBad(t *testing.T) {
	// Observations: low values at x=0 and x=1; candidate far away should
	// win EI over a candidate at a known-bad location.
	xs := [][]float64{{0}, {0.05}, {1}, {0.95}}
	ys := []float64{0.1, 0.12, 0.1, 0.11}
	model, err := gp.Fit(xs, ys, gp.Options{Kernel: gp.Matern52{LengthScale: 0.1, Variance: 1}, Noise: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	cands := [][]float64{{0.01}, {0.5}}
	idx, score, err := Suggest(model, EI{}, 0.12, cands)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("Suggest picked known-bad region (idx %d, score %g)", idx, score)
	}
}

func TestSuggestEmptyCandidates(t *testing.T) {
	model, err := gp.Fit([][]float64{{0}}, []float64{1}, gp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Suggest(model, EI{}, 1, nil); err == nil {
		t.Error("empty candidate set accepted")
	}
}

func TestOptimizerFindsMaximumOf1DFunction(t *testing.T) {
	// Maximize f(x) = -(x-0.3)² on [0,1]: optimum at 0.3.
	f := func(x float64) float64 { return -(x - 0.3) * (x - 0.3) }
	opt := NewOptimizer(OptimizerOptions{Noise: 1e-6})
	// Seed with endpoints.
	opt.Observe([]float64{0}, f(0))
	opt.Observe([]float64{1}, f(1))
	var cands [][]float64
	for i := 0; i <= 50; i++ {
		cands = append(cands, []float64{float64(i) / 50})
	}
	for iter := 0; iter < 15; iter++ {
		idx, err := opt.Suggest(cands)
		if err != nil {
			t.Fatal(err)
		}
		x := cands[idx][0]
		opt.Observe([]float64{x}, f(x))
	}
	best, ok := opt.Best()
	if !ok {
		t.Fatal("no best observation")
	}
	if math.Abs(best.X[0]-0.3) > 0.06 {
		t.Errorf("BO converged to %g, want ~0.3 (best y = %g)", best.X[0], best.Y)
	}
}

func TestOptimizerBeatsCoarseRandomSearchOn2D(t *testing.T) {
	// 2D multimodal-ish surface; BO with 20 evaluations should beat the
	// mean of random search with the same budget.
	f := func(x, y float64) float64 {
		return math.Sin(3*x)*math.Cos(2*y) + 0.5*x - 0.3*(x*x+y*y)
	}
	var cands [][]float64
	for i := 0; i <= 15; i++ {
		for j := 0; j <= 15; j++ {
			cands = append(cands, []float64{float64(i) / 15, float64(j) / 15})
		}
	}
	runBO := func(seed uint64) float64 {
		rng := stats.NewRNG(seed)
		opt := NewOptimizer(OptimizerOptions{Noise: 1e-6})
		for i := 0; i < 3; i++ {
			c := cands[rng.Intn(len(cands))]
			opt.Observe(c, f(c[0], c[1]))
		}
		for iter := 0; iter < 17; iter++ {
			idx, err := opt.Suggest(cands)
			if err != nil {
				t.Fatal(err)
			}
			c := cands[idx]
			opt.Observe(c, f(c[0], c[1]))
		}
		best, _ := opt.Best()
		return best.Y
	}
	runRandom := func(seed uint64) float64 {
		rng := stats.NewRNG(seed)
		best := math.Inf(-1)
		for i := 0; i < 20; i++ {
			c := cands[rng.Intn(len(cands))]
			if v := f(c[0], c[1]); v > best {
				best = v
			}
		}
		return best
	}
	boSum, rndSum := 0.0, 0.0
	const trials = 5
	for s := uint64(0); s < trials; s++ {
		boSum += runBO(s)
		rndSum += runRandom(s)
	}
	if boSum/trials < rndSum/trials {
		t.Errorf("BO mean %g worse than random search mean %g", boSum/trials, rndSum/trials)
	}
}

func TestOptimizerWindow(t *testing.T) {
	opt := NewOptimizer(OptimizerOptions{Window: 3})
	for i := 0; i < 10; i++ {
		opt.Observe([]float64{float64(i)}, float64(i))
	}
	if n := len(opt.Observations()); n != 3 {
		t.Errorf("window retained %d observations, want 3", n)
	}
	if opt.Observations()[0].X[0] != 7 {
		t.Errorf("window kept wrong observations: %v", opt.Observations())
	}
}

func TestOptimizerSuggestBeforeObserve(t *testing.T) {
	opt := NewOptimizer(OptimizerOptions{})
	idx, err := opt.Suggest([][]float64{{0}, {1}})
	if err != nil || idx != 0 {
		t.Errorf("pre-observation Suggest = (%d, %v), want (0, nil)", idx, err)
	}
	if _, err := opt.Suggest(nil); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, ok := opt.Best(); ok {
		t.Error("Best reported before any observation")
	}
	if _, err := opt.Fit(); err == nil {
		t.Error("Fit with no data should error")
	}
}

func TestOptimizerObserveCopiesInput(t *testing.T) {
	opt := NewOptimizer(OptimizerOptions{})
	x := []float64{0.5}
	opt.Observe(x, 1)
	x[0] = 99
	if opt.Observations()[0].X[0] != 0.5 {
		t.Error("Observe aliased the caller's slice")
	}
}

func TestStdNormHelpers(t *testing.T) {
	if math.Abs(stdNormCDF(0)-0.5) > 1e-12 {
		t.Error("CDF(0) != 0.5")
	}
	if math.Abs(stdNormPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("PDF(0) wrong")
	}
	if stdNormCDF(8) < 0.999999 || stdNormCDF(-8) > 1e-6 {
		t.Error("CDF tails wrong")
	}
}

func TestThompsonSuggestPrefersGoodRegions(t *testing.T) {
	// Observations make x=0.3 clearly best; Thompson samples should pick
	// candidates near it far more often than the known-bad corner.
	xs := [][]float64{{0}, {0.15}, {0.3}, {0.45}, {0.9}}
	ys := []float64{0.2, 0.6, 1.0, 0.6, 0.1}
	model, err := gp.Fit(xs, ys, gp.Options{Kernel: gp.Matern52{LengthScale: 0.2, Variance: 0.2}, Noise: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	cands := [][]float64{{0.28}, {0.32}, {0.88}, {0.92}}
	rng := stats.NewRNG(6)
	nearBest := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		idx, err := ThompsonSuggest(model, rng, cands)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 || idx == 1 {
			nearBest++
		}
	}
	if nearBest < trials*3/4 {
		t.Errorf("Thompson picked near-optimum only %d/%d times", nearBest, trials)
	}
}

func TestThompsonSuggestErrors(t *testing.T) {
	model, err := gp.Fit([][]float64{{0}}, []float64{1}, gp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ThompsonSuggest(model, stats.NewRNG(1), nil); err == nil {
		t.Error("empty candidates accepted")
	}
	// Duplicate candidates make the posterior singular; the jitter
	// escalation (or mean fallback) must still return a valid index.
	dup := [][]float64{{0.5}, {0.5}, {0.5}}
	idx, err := ThompsonSuggest(model, stats.NewRNG(1), dup)
	if err != nil || idx < 0 || idx >= 3 {
		t.Errorf("duplicate candidates: idx=%d err=%v", idx, err)
	}
}

// scriptedModel is a Model stub whose prediction is a pure function of the
// candidate, for driving degenerate posteriors through Suggest.
type scriptedModel struct {
	predict func(x []float64) (float64, float64)
}

func (m scriptedModel) Predict(x []float64) (float64, float64) { return m.predict(x) }

// TestSuggestAllNaNScoresReturnsTypedError is the regression test for the
// silent-failure bug: Suggest used to return idx=-1 with a NIL error when
// every score was NaN, and the engine then silently held the current
// config. It must now surface ErrNoFiniteScore.
func TestSuggestAllNaNScoresReturnsTypedError(t *testing.T) {
	nan := scriptedModel{predict: func([]float64) (float64, float64) { return math.NaN(), 1 }}
	idx, _, err := Suggest(nan, EI{}, 0, [][]float64{{0}, {1}})
	if !errors.Is(err, ErrNoFiniteScore) {
		t.Fatalf("all-NaN scores: got idx=%d err=%v, want ErrNoFiniteScore", idx, err)
	}
	if idx != -1 {
		t.Fatalf("all-NaN scores: idx=%d, want -1", idx)
	}

	// A degenerate incumbent (best=+Inf) drives EI to NaN through a
	// perfectly healthy GP — the realistic trigger.
	model, ferr := gp.Fit([][]float64{{0}, {0.5}}, []float64{0.1, 0.2}, gp.Options{})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if _, _, err := Suggest(model, EI{}, math.Inf(1), [][]float64{{0.2}, {0.8}}); !errors.Is(err, ErrNoFiniteScore) {
		t.Fatalf("best=+Inf: err=%v, want ErrNoFiniteScore", err)
	}
}

// TestSuggestSkipsNonFiniteScores: candidates with NaN/Inf scores must be
// passed over, not win or poison the argmax.
func TestSuggestSkipsNonFiniteScores(t *testing.T) {
	m := scriptedModel{predict: func(x []float64) (float64, float64) {
		switch {
		case x[0] < 0:
			return math.NaN(), 1
		case x[0] > 10:
			return math.Inf(1), 0
		default:
			return x[0], 0
		}
	}}
	cands := [][]float64{{-1}, {2}, {99}, {5}, {-3}}
	idx, score, err := Suggest(m, UCB{}, 0, cands)
	if err != nil {
		t.Fatalf("Suggest: %v", err)
	}
	if idx != 3 || score != 5 {
		t.Fatalf("got idx=%d score=%g, want the finite maximum idx=3 score=5", idx, score)
	}
}

// TestSuggestAcceptsIncrementalModel pins the Model seam: the incremental
// posterior must be scoreable by the same acquisition machinery and agree
// with the from-scratch fit.
func TestSuggestAcceptsIncrementalModel(t *testing.T) {
	xs := [][]float64{{0}, {0.05}, {1}, {0.95}}
	ys := []float64{0.1, 0.12, 0.1, 0.11}
	opt := gp.Options{Kernel: gp.Matern52{LengthScale: 0.1, Variance: 1}, Noise: 1e-4}
	full, err := gp.Fit(xs, ys, opt)
	if err != nil {
		t.Fatal(err)
	}
	inc := gp.NewIncremental(opt)
	if err := inc.Reset(xs, ys); err != nil {
		t.Fatal(err)
	}
	cands := [][]float64{{0.01}, {0.5}}
	fi, fs, err := Suggest(full, EI{}, 0.12, cands)
	if err != nil {
		t.Fatal(err)
	}
	ii, is, err := Suggest(inc, EI{}, 0.12, cands)
	if err != nil {
		t.Fatal(err)
	}
	if fi != ii || math.Abs(fs-is) > 1e-9 {
		t.Fatalf("incremental suggest (%d, %g) != full (%d, %g)", ii, is, fi, fs)
	}
}

// nanPosterior is a PosteriorModel stub with an all-NaN joint posterior.
type nanPosterior struct{}

func (nanPosterior) Posterior(points [][]float64) ([]float64, *linalg.Matrix) {
	mu := make([]float64, len(points))
	for i := range mu {
		mu[i] = math.NaN()
	}
	cov := linalg.NewMatrix(len(points), len(points))
	for i := range mu {
		cov.Set(i, i, math.NaN())
	}
	return mu, cov
}

// TestThompsonSuggestAllNaNReturnsTypedError: same silent-failure class as
// Suggest — a fully degenerate posterior must surface ErrNoFiniteScore,
// not an arbitrary index.
func TestThompsonSuggestAllNaNReturnsTypedError(t *testing.T) {
	idx, err := ThompsonSuggest(nanPosterior{}, stats.NewRNG(1), [][]float64{{0}, {1}})
	if !errors.Is(err, ErrNoFiniteScore) {
		t.Fatalf("got idx=%d err=%v, want ErrNoFiniteScore", idx, err)
	}
}

// TestSuggestBatchMatchesSuggest: the batched pool scorer must return the
// identical index and bit-identical score as the per-candidate Suggest
// across random models, pools, and acquisitions — that equivalence is what
// lets the engine's default path switch over without moving goldens.
func TestSuggestBatchMatchesSuggest(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	acqs := []Acquisition{EI{}, EI{Xi: 0.05}, UCB{Beta: 2}, PI{Xi: 0.01}}
	kernels := []gp.Kernel{nil, gp.Matern52{LengthScale: 0.4, Variance: 1.2}, gp.RBF{LengthScale: 0.8, Variance: 0.5}}
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(40)
		dim := 1 + rng.Intn(8)
		q := 1 + rng.Intn(64)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = make([]float64, dim)
			for d := range xs[i] {
				xs[i][d] = rng.Float64()
			}
			ys[i] = rng.NormFloat64()
		}
		m := gp.NewIncremental(gp.Options{Kernel: kernels[trial%len(kernels)], Noise: 1e-4})
		if err := m.Reset(xs, ys); err != nil {
			t.Fatal(err)
		}
		pool := make([][]float64, q)
		for i := range pool {
			pool[i] = make([]float64, dim)
			for d := range pool[i] {
				pool[i][d] = rng.Float64()
			}
		}
		best := ys[0]
		for _, y := range ys {
			if y > best {
				best = y
			}
		}
		acq := acqs[trial%len(acqs)]
		wantIdx, wantScore, wantErr := Suggest(m, acq, best, pool)
		mu := make([]float64, q)
		sigma := make([]float64, q)
		var scratch gp.PredictScratch
		gotIdx, gotScore, gotErr := SuggestBatch(m, &scratch, acq, best, pool, mu, sigma)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: err mismatch: batch %v, per-candidate %v", trial, gotErr, wantErr)
		}
		if gotIdx != wantIdx || gotScore != wantScore {
			t.Fatalf("trial %d: batch (%d, %v) != per-candidate (%d, %v)", trial, gotIdx, gotScore, wantIdx, wantScore)
		}
	}
}

// TestSuggestBatchEmptyAndNilScratch pins the edge-case contract: empty
// pools error like Suggest, and a nil scratch is tolerated.
func TestSuggestBatchEmptyAndNilScratch(t *testing.T) {
	m := gp.NewIncremental(gp.Options{})
	if err := m.Reset([][]float64{{0}, {1}}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SuggestBatch(m, nil, EI{}, 0, nil, nil, nil); err == nil {
		t.Fatal("empty candidates: want error, got nil")
	}
	pool := [][]float64{{0.25}, {0.75}}
	mu := make([]float64, 2)
	sigma := make([]float64, 2)
	idx, _, err := SuggestBatch(m, nil, EI{}, 1, pool, mu, sigma)
	if err != nil || idx < 0 || idx >= len(pool) {
		t.Fatalf("nil scratch: idx=%d err=%v", idx, err)
	}
}
