// Package bo implements the Bayesian-optimization machinery SATORI uses to
// navigate the resource-partitioning configuration space (Sec. III-A):
// acquisition functions over a Gaussian-process posterior and a small
// generic optimizer loop.
//
// The paper's configuration is Expected Improvement over a Matérn 5/2 GP;
// UCB and Probability of Improvement are included for ablations. Candidate
// generation over the discrete configuration space is the caller's job
// (see internal/core), keeping this package purely numerical.
package bo

import (
	"errors"
	"fmt"
	"math"

	"satori/internal/gp"
	"satori/internal/linalg"
	"satori/internal/stats"
)

// Acquisition scores a candidate from its posterior mean/stddev and the
// incumbent best observation. Maximization convention: higher is better.
type Acquisition interface {
	Score(mu, sigma, best float64) float64
	Name() string
}

// EI is the Expected Improvement acquisition, SATORI's choice: it balances
// exploration and exploitation at low evaluation cost.
type EI struct {
	// Xi >= 0 is the exploration margin; 0 is the textbook EI.
	Xi float64
}

// Score implements Acquisition.
func (a EI) Score(mu, sigma, best float64) float64 {
	improve := mu - best - a.Xi
	if sigma <= 0 {
		// Deterministic prediction: improvement is certain or impossible.
		return math.Max(improve, 0)
	}
	z := improve / sigma
	return improve*stdNormCDF(z) + sigma*stdNormPDF(z)
}

// Name implements Acquisition.
func (a EI) Name() string { return "ei" }

// UCB is the Upper Confidence Bound acquisition μ + β·σ.
type UCB struct {
	// Beta >= 0 weighs the uncertainty bonus; 0 degenerates to pure
	// exploitation of the posterior mean.
	Beta float64
}

// Score implements Acquisition.
func (a UCB) Score(mu, sigma, _ float64) float64 { return mu + a.Beta*sigma }

// Name implements Acquisition.
func (a UCB) Name() string { return "ucb" }

// PI is the Probability of Improvement acquisition.
type PI struct {
	// Xi >= 0 is the improvement margin.
	Xi float64
}

// Score implements Acquisition.
func (a PI) Score(mu, sigma, best float64) float64 {
	if sigma <= 0 {
		if mu > best+a.Xi {
			return 1
		}
		return 0
	}
	return stdNormCDF((mu - best - a.Xi) / sigma)
}

// Name implements Acquisition.
func (a PI) Name() string { return "pi" }

// stdNormPDF is the standard normal density.
func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// stdNormCDF is the standard normal distribution function.
func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Model is the posterior interface the acquisition machinery scores
// against. Both *gp.GP and *gp.Incremental satisfy it; the incremental
// model's Predict reuses internal scratch, so batch-scoring a candidate
// set through Suggest allocates nothing.
type Model interface {
	Predict(x []float64) (mu, sigma float64)
}

// PosteriorModel is the joint-posterior interface Thompson sampling needs.
type PosteriorModel interface {
	Posterior(points [][]float64) (mu []float64, cov *linalg.Matrix)
}

// BatchModel is the pool-scoring interface: one call fills the posterior
// mean and stddev for every candidate through a single matrix-level
// triangular solve against the shared Cholesky factor. Both *gp.GP and
// *gp.Incremental satisfy it, and both guarantee results bit-identical to
// per-candidate Predict — which is what lets SuggestBatch replace Suggest
// on the engine's default path without moving a single golden byte.
type BatchModel interface {
	PredictBatchInto(s *gp.PredictScratch, mu, sigma []float64, points [][]float64)
}

// ErrNoFiniteScore is returned when every candidate's acquisition score is
// NaN or infinite — a degenerate posterior (e.g. collapsed length-scale or
// an incumbent of ±Inf), not a legitimate "hold the current config"
// signal. Callers that previously treated idx < 0 with a nil error as a
// hold must surface this instead.
var ErrNoFiniteScore = errors.New("bo: no candidate produced a finite acquisition score")

// Suggest returns the index of the candidate maximizing the acquisition
// under the posterior m, along with the winning score. Candidates whose
// score is NaN or ±Inf are skipped; if none survives, Suggest reports
// ErrNoFiniteScore rather than silently returning index -1.
func Suggest(m Model, acq Acquisition, best float64, candidates [][]float64) (int, float64, error) {
	if len(candidates) == 0 {
		return -1, 0, errors.New("bo: no candidates to score")
	}
	bestIdx, bestScore := -1, math.Inf(-1)
	for i, x := range candidates {
		mu, sigma := m.Predict(x)
		s := acq.Score(mu, sigma, best)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx < 0 {
		return -1, 0, ErrNoFiniteScore
	}
	return bestIdx, bestScore, nil
}

// SuggestBatch is Suggest over a BatchModel: the whole candidate pool is
// scored with one PredictBatchInto call, then the selection replays
// Suggest's exact skip-and-argmax logic (non-finite scores skipped, first
// strict maximum wins, ErrNoFiniteScore when nothing survives). Because
// the batched posterior is bit-identical to per-candidate Predict, the
// chosen index and score always match Suggest's. mu and sigma are
// caller-owned scratch of length len(candidates); scratch may be nil, in
// which case a temporary is allocated.
func SuggestBatch(m BatchModel, scratch *gp.PredictScratch, acq Acquisition, best float64, candidates [][]float64, mu, sigma []float64) (int, float64, error) {
	if len(candidates) == 0 {
		return -1, 0, errors.New("bo: no candidates to score")
	}
	if scratch == nil {
		scratch = &gp.PredictScratch{}
	}
	m.PredictBatchInto(scratch, mu, sigma, candidates)
	bestIdx, bestScore := -1, math.Inf(-1)
	for i := range candidates {
		s := acq.Score(mu[i], sigma[i], best)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx < 0 {
		return -1, 0, ErrNoFiniteScore
	}
	return bestIdx, bestScore, nil
}

// ThompsonSuggest implements Thompson sampling over a discrete candidate
// set: it draws ONE sample from the joint GP posterior at the candidates
// and returns the index of the sample's maximum. Exploration emerges from
// the posterior randomness instead of an explicit bonus, which makes it a
// natural comparison point for the paper's Expected Improvement choice
// (see the acquisition ablation).
func ThompsonSuggest(g PosteriorModel, rng *stats.RNG, candidates [][]float64) (int, error) {
	if len(candidates) == 0 {
		return -1, errors.New("bo: no candidates to score")
	}
	mu, cov := g.Posterior(candidates)
	m := len(candidates)
	// Jitter-escalated factorization: posterior covariances are
	// frequently near-singular when candidates cluster.
	var chol *linalg.Cholesky
	var err error
	for jitter := 1e-10; jitter < 1; jitter *= 100 {
		cj := cov.Clone()
		for i := 0; i < m; i++ {
			cj.Set(i, i, cj.At(i, i)+jitter)
		}
		chol, err = linalg.NewCholesky(cj)
		if err == nil {
			break
		}
	}
	if err != nil {
		// Degenerate posterior: fall back to the mean's argmax over the
		// finite entries.
		best := -1
		for i, v := range mu {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if best < 0 || v > mu[best] {
				best = i
			}
		}
		if best < 0 {
			return -1, ErrNoFiniteScore
		}
		return best, nil
	}
	z := make([]float64, m)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	best, bestVal := -1, math.Inf(-1)
	for i := 0; i < m; i++ {
		s := mu[i]
		for k := 0; k <= i; k++ {
			s += chol.LAt(i, k) * z[k]
		}
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		if s > bestVal {
			best, bestVal = i, s
		}
	}
	if best < 0 {
		return -1, ErrNoFiniteScore
	}
	return best, nil
}

// Observation is one evaluated point.
type Observation struct {
	X []float64
	Y float64
}

// Optimizer is a generic maximize-f(x) BO loop over user-supplied
// candidate sets: observe points, then ask for the next one to evaluate.
// SATORI's engine (internal/core) embeds the same pieces but reconstructs
// objectives each tick; Optimizer is the traditional static-objective
// variant, used directly by examples, ablations, and tests.
type Optimizer struct {
	acq    Acquisition
	noise  float64
	kernel gp.Kernel // nil means heuristic Matérn 5/2 per refit
	window int       // 0 means unbounded observation history

	obs []Observation
}

// OptimizerOptions configures NewOptimizer.
type OptimizerOptions struct {
	// Acquisition defaults to EI{}.
	Acquisition Acquisition
	// Noise is the GP observation-noise variance (default 1e-4).
	Noise float64
	// Kernel overrides the heuristic Matérn 5/2 (optional).
	Kernel gp.Kernel
	// Window caps the number of most-recent observations the model is
	// fitted on; 0 keeps everything.
	Window int
}

// NewOptimizer returns an empty optimizer.
func NewOptimizer(opt OptimizerOptions) *Optimizer {
	if opt.Acquisition == nil {
		opt.Acquisition = EI{}
	}
	if opt.Noise <= 0 {
		opt.Noise = 1e-4
	}
	if opt.Window < 0 {
		opt.Window = 0
	}
	return &Optimizer{
		acq:    opt.Acquisition,
		noise:  opt.Noise,
		kernel: opt.Kernel,
		window: opt.Window,
	}
}

// Observe records an evaluated point.
func (o *Optimizer) Observe(x []float64, y float64) {
	xc := make([]float64, len(x))
	copy(xc, x)
	o.obs = append(o.obs, Observation{X: xc, Y: y})
	if o.window > 0 && len(o.obs) > o.window {
		o.obs = o.obs[len(o.obs)-o.window:]
	}
}

// Observations returns the retained observation history (not a copy; do
// not mutate).
func (o *Optimizer) Observations() []Observation { return o.obs }

// Best returns the incumbent observation. ok is false before any Observe.
func (o *Optimizer) Best() (Observation, bool) {
	if len(o.obs) == 0 {
		return Observation{}, false
	}
	best := o.obs[0]
	for _, ob := range o.obs[1:] {
		if ob.Y > best.Y {
			best = ob
		}
	}
	return best, true
}

// Suggest fits the posterior on the retained history and returns the
// candidate index maximizing the acquisition. With no observations yet it
// returns 0 (callers seed with an initial design first, per Algorithm 1).
func (o *Optimizer) Suggest(candidates [][]float64) (int, error) {
	if len(candidates) == 0 {
		return -1, errors.New("bo: no candidates to score")
	}
	if len(o.obs) == 0 {
		return 0, nil
	}
	model, err := o.Fit()
	if err != nil {
		return -1, err
	}
	best, _ := o.Best()
	idx, _, err := Suggest(model, o.acq, best.Y, candidates)
	return idx, err
}

// Fit returns the GP posterior over the retained history.
func (o *Optimizer) Fit() (*gp.GP, error) {
	if len(o.obs) == 0 {
		return nil, gp.ErrNoData
	}
	xs := make([][]float64, len(o.obs))
	ys := make([]float64, len(o.obs))
	for i, ob := range o.obs {
		xs[i] = ob.X
		ys[i] = ob.Y
	}
	model, err := gp.Fit(xs, ys, gp.Options{Kernel: o.kernel, Noise: o.noise})
	if err != nil {
		return nil, fmt.Errorf("bo: refit failed: %w", err)
	}
	return model, nil
}
