// Package policy defines the interface every resource-partitioning
// strategy implements (SATORI and all competing techniques of Sec. IV),
// plus the Random baseline.
//
// A Policy sees one Observation per 100 ms monitoring interval — the
// noisy per-job IPS, the current isolated baselines, and the normalized
// throughput/fairness scores computed from them — and returns the
// configuration to run during the next interval. The experiment harness
// (internal/harness) owns the clock, the baseline refresh schedule and the
// metric computation, so policies stay pure decision logic.
package policy

import (
	"satori/internal/resource"
	"satori/internal/stats"
)

// Observation is what a policy sees at the end of a monitoring interval.
type Observation struct {
	// Tick counts completed 100 ms intervals (first observation: 1).
	Tick int
	// Time is the elapsed co-location time in seconds.
	Time float64
	// IPS is the observed per-job instructions/second over the
	// interval (noisy, as a pqos-style monitor reports).
	IPS []float64
	// Isolated is the per-job isolated-execution baseline currently in
	// force (re-measured by the harness on the equalization schedule).
	Isolated []float64
	// Speedups is IPS normalized by Isolated, per job.
	Speedups []float64
	// Throughput is the normalized system-throughput score in [0, 1]
	// under the experiment's throughput metric.
	Throughput float64
	// Fairness is the normalized fairness score in [0, 1] under the
	// experiment's fairness metric.
	Fairness float64
	// BaselineReset is true when Isolated was re-measured just before
	// this observation (start of run, equalization boundary, or job
	// arrival/departure).
	BaselineReset bool
	// SLOViolating is the hysteretic SLO-violation state of the
	// co-location's latency-critical jobs (always false when there are
	// none). SLO-aware weight schedulers pin their goal arbitration to
	// recovery while it holds (core.WeightsSLOAware).
	SLOViolating bool
	// SLOAttainment is the mean fraction of latency-critical requests
	// served within their p99 targets this interval (0 when there are
	// no LC jobs).
	SLOAttainment float64
}

// Policy decides resource partitions from interval observations.
type Policy interface {
	// Name identifies the policy in results tables.
	Name() string
	// Decide returns the configuration for the next interval, given
	// the observation for the interval that just ended and the
	// configuration that produced it. Implementations must return a
	// valid configuration for their space; returning current unchanged
	// is always allowed.
	Decide(obs Observation, current resource.Config) resource.Config
}

// Static is the no-op policy: it keeps whatever configuration is current
// (the paper's unmanaged/equal-partition baseline when started from the
// equal split).
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Decide implements Policy.
func (Static) Decide(_ Observation, current resource.Config) resource.Config { return current }

// Random is the Random Search baseline of Sec. IV: every interval it
// installs a configuration sampled uniformly at random from all possible
// configurations, without repetition until the space is exhausted.
type Random struct {
	space *resource.Space
	rng   *stats.RNG
	seen  map[string]bool
}

// NewRandom builds the Random policy over space with a deterministic
// seed.
func NewRandom(space *resource.Space, seed uint64) *Random {
	return &Random{
		space: space,
		rng:   stats.NewRNG(seed),
		seen:  make(map[string]bool),
	}
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Decide implements Policy.
func (r *Random) Decide(_ Observation, current resource.Config) resource.Config {
	// Without-repetition sampling: retry a bounded number of times,
	// then accept a repeat (and reset the seen set when the space is
	// effectively exhausted) — mirroring how a real implementation
	// keeps running for arbitrarily long experiments.
	for attempt := 0; attempt < 64; attempt++ {
		c := r.space.Random(r.rng)
		key := c.Key()
		if !r.seen[key] {
			r.seen[key] = true
			return c
		}
	}
	r.seen = make(map[string]bool)
	c := r.space.Random(r.rng)
	r.seen[c.Key()] = true
	return c
}
