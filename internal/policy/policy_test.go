package policy

import (
	"testing"

	"satori/internal/resource"
)

func testSpace() *resource.Space {
	return resource.MustNewSpace(3,
		resource.Resource{Kind: resource.Cores, Units: 6},
		resource.Resource{Kind: resource.LLCWays, Units: 5},
	)
}

func TestStaticPolicyHolds(t *testing.T) {
	space := testSpace()
	p := Static{}
	if p.Name() != "static" {
		t.Error("name wrong")
	}
	cur := space.EqualSplit()
	next := p.Decide(Observation{Tick: 1}, cur)
	if !next.Equal(cur) {
		t.Error("static policy changed the configuration")
	}
}

func TestRandomPolicyValidAndFresh(t *testing.T) {
	space := testSpace()
	p := NewRandom(space, 9)
	if p.Name() != "random" {
		t.Error("name wrong")
	}
	cur := space.EqualSplit()
	seen := map[string]bool{}
	repeats := 0
	const n = 200
	for i := 0; i < n; i++ {
		next := p.Decide(Observation{Tick: i}, cur)
		if err := space.Validate(next); err != nil {
			t.Fatalf("invalid config at %d: %v", i, err)
		}
		if seen[next.Key()] {
			repeats++
		}
		seen[next.Key()] = true
		cur = next
	}
	// The space has C(5,2)*C(4,2) = 60 configurations; after they are
	// exhausted repeats are expected, but the without-repetition rule
	// must hold early on: the first 40 draws should be all distinct.
	if repeats > n-40 {
		t.Errorf("too many repeats: %d", repeats)
	}
	if len(seen) < 50 {
		t.Errorf("only %d distinct configs visited; without-repetition sampling broken", len(seen))
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	space := testSpace()
	a := NewRandom(space, 5)
	b := NewRandom(space, 5)
	cur := space.EqualSplit()
	for i := 0; i < 20; i++ {
		ca := a.Decide(Observation{}, cur)
		cb := b.Decide(Observation{}, cur)
		if !ca.Equal(cb) {
			t.Fatal("same seed diverged")
		}
	}
}
