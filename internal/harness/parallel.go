package harness

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Worker-count conventions, shared by every fan-out in the harness:
// 0 (the zero value) means "one worker per available CPU"
// (runtime.GOMAXPROCS(0)), 1 forces the serial path, and any larger
// value is used as given. Parallel and serial execution produce
// byte-identical results: every run unit derives all of its randomness
// from its own RunSpec.Seed, workers only compute, and aggregation
// always iterates mixes, policies, and seeds in declared order — never
// in completion or map order.

// resolveWorkers maps the Workers convention to a concrete pool size.
func resolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// WorkersFromEnv reads the SATORI_PARALLEL environment knob. Unset or
// empty means the default (0 = all CPUs); a malformed or negative value
// is an error, so a typo like SATORI_PARALLEL=al no longer silently runs
// with every CPU — callers decide whether to abort or fall back loudly.
func WorkersFromEnv() (int, error) {
	v := os.Getenv("SATORI_PARALLEL")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("harness: SATORI_PARALLEL=%q is not an integer: %w", v, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("harness: SATORI_PARALLEL=%q must be >= 0 (0 = all CPUs)", v)
	}
	return n, nil
}

// splitWorkers divides a worker budget between an outer fan-out of n
// units and the parallel work each unit performs internally, so nested
// fan-outs (seeds × suite cells) stay bounded near the requested total
// instead of multiplying.
func splitWorkers(workers, n int) (outer, inner int) {
	w := resolveWorkers(workers)
	outer = w
	if n > 0 && n < outer {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = w / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// ForEach is the exported bounded worker pool, for other subsystems that
// fan out over independent, index-addressed units under the same
// determinism contract (internal/fleet steps its nodes with it).
func ForEach(workers, n int, fn func(i int) error) error {
	return forEach(workers, n, fn)
}

// forEach runs fn(i) for every i in [0, n) on a bounded pool of workers
// and returns the lowest-index error (matching the serial path, which
// stops at the first failing index). Each fn must write its output into
// caller-owned, index-addressed storage; forEach imposes no result
// ordering of its own, so aggregation order never depends on goroutine
// scheduling. workers follows the package convention (0 = all CPUs,
// 1 = serial).
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
