package harness

import (
	"fmt"

	"satori/internal/stats"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// ReplicatedMean is one policy's across-seed aggregate: the mean of its
// across-mix means, with 95% confidence half-widths.
type ReplicatedMean struct {
	PctThroughput, ThroughputCI float64
	PctFairness, FairnessCI     float64
	Seeds                       int
}

// ReplicateSuite runs the same suite under several seeds and aggregates
// each policy's oracle-normalized means with confidence intervals. All of
// the reproduction's single-seed gaps that EXPERIMENTS.md labels "within
// noise" can be checked against these intervals.
//
// Seeds fan out over spec.Workers (0 = all CPUs, 1 = serial); the worker
// budget is split between the seed level and each seed's suite so nested
// fan-outs stay bounded. Every seed's suite is independent, and the
// per-policy series are assembled in seed order, so the result is
// byte-identical to the serial path.
func ReplicateSuite(spec SuiteSpec, seeds []uint64) (map[string]ReplicatedMean, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("harness: ReplicateSuite needs at least one seed")
	}
	outer, inner := splitWorkers(spec.Workers, len(seeds))
	suites := make([]*SuiteResult, len(seeds))
	err := forEach(outer, len(seeds), func(i int) error {
		s := spec
		s.Base.Seed = seeds[i]
		s.Workers = inner
		res, err := RunSuite(s)
		if err != nil {
			return fmt.Errorf("harness: seed %d: %w", seeds[i], err)
		}
		suites[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	perPolicyT := map[string][]float64{}
	perPolicyF := map[string][]float64{}
	for _, res := range suites {
		for name, m := range res.Means() {
			perPolicyT[name] = append(perPolicyT[name], m.PctThroughput)
			perPolicyF[name] = append(perPolicyF[name], m.PctFairness)
		}
	}
	out := make(map[string]ReplicatedMean, len(perPolicyT))
	for name := range perPolicyT {
		mt, ct := stats.MeanCI95(perPolicyT[name])
		mf, cf := stats.MeanCI95(perPolicyF[name])
		out[name] = ReplicatedMean{
			PctThroughput: mt, ThroughputCI: ct,
			PctFairness: mf, FairnessCI: cf,
			Seeds: len(seeds),
		}
	}
	return out, nil
}

// RunReplication re-runs the Fig. 7 comparison across several seeds and
// reports each policy's scores as mean ± 95% CI — the statistical
// backing for the single-seed tables (our addition; the paper reports
// single measurements).
func RunReplication(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(8)]
	seeds := []uint64{opt.Seed, opt.Seed ^ 0xA5A5, opt.Seed ^ 0x0F0F7733, opt.Seed * 31, opt.Seed*7 + 13}
	policies := CompetingPolicies()
	rep, err := ReplicateSuite(SuiteSpec{
		Mixes:    mixes,
		Policies: policies,
		Base:     DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers:  opt.Workers,
	}, seeds)
	if err != nil {
		return nil, err
	}
	tbl := trace.NewTable("policy", "throughput %oracle (±95% CI)", "fairness %oracle (±95% CI)")
	for _, nf := range policies {
		m := rep[nf.Name]
		tbl.AddRow(nf.Name,
			fmt.Sprintf("%.1f%% ± %.1f", m.PctThroughput*100, m.ThroughputCI*100),
			fmt.Sprintf("%.1f%% ± %.1f", m.PctFairness*100, m.FairnessCI*100))
	}
	out := &Report{ID: "replication", Title: fmt.Sprintf("Fig. 7 comparison replicated over %d seeds (mean ± 95%% CI)", len(seeds))}
	out.Tables = append(out.Tables, tbl)
	sat, par := rep["satori"], rep["parties"]
	sep := sat.PctThroughput - sat.ThroughputCI - (par.PctThroughput + par.ThroughputCI)
	out.Notes = append(out.Notes,
		fmt.Sprintf("SATORI−PARTIES throughput gap is %sseparated at 95%% confidence (interval gap %+.1f pts)",
			map[bool]string{true: "", false: "NOT "}[sep > 0], sep*100))
	return out, nil
}
