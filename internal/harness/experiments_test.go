package harness

import (
	"strings"
	"testing"
)

// smokeOpt shrinks experiments to seconds-scale runs.
var smokeOpt = ExpOptions{Ticks: 80, Seed: 5, MixLimit: 2}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	// Every figure in the paper's evaluation plus the textual results
	// and our ablations: 16 figures + 15 extras (incl. the SLO study and
	// the jobs ≫ classes clustering ablation).
	if len(exps) != 31 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig1", "fig7", "fig14", "fig19", "scalability", "overhead", "space"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := FindExperiment("fig7"); !ok {
		t.Error("FindExperiment failed")
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Error("FindExperiment found a ghost")
	}
}

// TestEveryExperimentRunsAtSmokeScale is the integration test for the
// whole reproduction surface: every driver must complete and render.
func TestEveryExperimentRunsAtSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke sweep skipped in -short mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(smokeOpt)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report ID %q, want %q", rep.ID, e.ID)
			}
			out := rep.String()
			if !strings.Contains(out, e.ID) {
				t.Error("rendering missing ID")
			}
			if len(rep.Tables) == 0 && len(rep.Notes) == 0 {
				t.Error("empty report")
			}
		})
	}
}

func TestExpOptionsFill(t *testing.T) {
	o := ExpOptions{}.fill()
	if o.Ticks != 600 || o.Seed != 42 {
		t.Errorf("defaults = %+v", o)
	}
	if got := (ExpOptions{MixLimit: 3}).limitMixes(10); got != 3 {
		t.Errorf("limitMixes = %d", got)
	}
	if got := (ExpOptions{}).limitMixes(10); got != 10 {
		t.Errorf("unlimited limitMixes = %d", got)
	}
	if got := (ExpOptions{MixLimit: 30}).limitMixes(10); got != 10 {
		t.Errorf("over-limit limitMixes = %d", got)
	}
}

func TestSpaceSizeMatchesPaper(t *testing.T) {
	rep, err := RunSpaceSize(ExpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"1296", "7056", "592704"} {
		if !strings.Contains(out, want) {
			t.Errorf("space-size table missing %s:\n%s", want, out)
		}
	}
}

func TestShortNames(t *testing.T) {
	got := shortNames([]string{"blackscholes", "vips"})
	if got[0] != "black" || got[1] != "vips" {
		t.Errorf("shortNames = %v", got)
	}
}
