package harness

import (
	"fmt"

	"satori/internal/control"
	"satori/internal/core"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// RunMixChange exercises Algorithm 1 line 12 end to end: halfway through
// a run one co-located job departs and a new benchmark arrives in its
// slot. SATORI only re-records the isolated baselines — no other
// re-initialization — and must recover its pre-change objective level,
// which the driver quantifies as recovery time. The Random policy is run
// on the identical scenario as a floor.
func RunMixChange(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	// Mix 0 holds blackscholes..streamcluster; swaptions is held out
	// and arrives mid-run, replacing canneal (slot 1): a cache-lover
	// departs and a core-scaler arrives — the partition must be
	// rebuilt around a very different demand vector.
	arrival, err := workloads.ByName("swaptions")
	if err != nil {
		return nil, err
	}

	type outcome struct {
		before, after float64
		recovery      int // ticks until the post-change objective window reaches 95% of pre-change
	}
	runOne := func(factory PolicyFactory) (outcome, error) {
		simulator, err := sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{Seed: opt.Seed})
		if err != nil {
			return outcome{}, err
		}
		platform, err := rdt.NewSimPlatform(simulator)
		if err != nil {
			return outcome{}, err
		}
		loop, err := control.New(control.Options{
			Platform: platform,
			Policy:   func(rdt.Platform) (policy.Policy, error) { return factory(platform, opt.Seed) },
		})
		if err != nil {
			return outcome{}, err
		}
		half := opt.Ticks / 2
		var pre, post stats.Welford
		objs := make([]float64, 0, opt.Ticks)
		for tick := 1; tick <= opt.Ticks; tick++ {
			st, err := loop.Step()
			if err != nil {
				return outcome{}, err
			}
			// Transient refresh failures are survivable (stale baselines
			// hold; the loop's Summary counts them) — only fatal ones abort.
			if st.ResetErr != nil && !rdt.IsTransient(st.ResetErr) {
				return outcome{}, st.ResetErr
			}
			obj := 0.5*st.Throughput + 0.5*st.Fairness
			objs = append(objs, obj)
			if tick <= half {
				pre.Add(obj)
			} else {
				post.Add(obj)
			}
			if tick == half {
				// The mix change: canneal departs, swaptions arrives;
				// baselines are re-recorded (which also preempts a
				// periodic refresh due at the same boundary — the
				// change itself is the equalization event).
				if err := loop.ReplaceJob(1, arrival); err != nil {
					return outcome{}, err
				}
			}
		}
		// Recovery: first post-change tick where the trailing 10-tick
		// mean reaches 95% of the pre-change mean.
		target := 0.95 * pre.Mean()
		recovery := -1
		win := 10
		for tick := half + win; tick <= opt.Ticks; tick++ {
			sum := 0.0
			for i := tick - win; i < tick; i++ {
				sum += objs[i]
			}
			if sum/float64(win) >= target {
				recovery = tick - half
				break
			}
		}
		return outcome{before: pre.Mean(), after: post.Mean(), recovery: recovery}, nil
	}

	sat, err := runOne(SatoriFactory(core.Options{}))
	if err != nil {
		return nil, err
	}
	rnd, err := runOne(RandomFactory())
	if err != nil {
		return nil, err
	}

	tbl := trace.NewTable("policy", "objective before", "objective after", "recovery")
	fmtRec := func(r int) string {
		if r < 0 {
			return "never"
		}
		return fmt.Sprintf("%.1fs", float64(r)*sim.TickSeconds)
	}
	tbl.AddRow("satori", trace.F(sat.before), trace.F(sat.after), fmtRec(sat.recovery))
	tbl.AddRow("random", trace.F(rnd.before), trace.F(rnd.after), fmtRec(rnd.recovery))
	rep := &Report{ID: "mix-change", Title: "Workload-mix change mid-run (canneal departs, swaptions arrives)"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"SATORI absorbs the mix change with only a baseline re-record (Algorithm 1 line 12); previously sampled configurations stay eligible for re-evaluation",
		"paper (Sec. III-C): be it a phase change or a change in workload mixes, SATORI requires no further initialization")
	return rep, nil
}
