package harness

import (
	"fmt"

	"satori/internal/policies/oracle"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// fullLineup is the Fig. 7 policy list: all competing techniques, the
// single-goal SATORI variants, and the single-goal oracles (everything
// normalized to the Balanced Oracle).
func fullLineup() []NamedFactory {
	lineup := CompetingPolicies()
	lineup = append(lineup,
		NamedFactory{Name: "satori-throughput", Factory: SatoriStaticFactory(1)},
		NamedFactory{Name: "satori-fairness", Factory: SatoriStaticFactory(0)},
		NamedFactory{Name: "throughput-oracle", Factory: OracleFactory(oracle.Throughput, oracle.Options{})},
		NamedFactory{Name: "fairness-oracle", Factory: OracleFactory(oracle.Fairness, oracle.Options{})},
	)
	return lineup
}

// runSuiteExperiment runs a full policy lineup over a suite's paper
// mixes.
func runSuiteExperiment(opt ExpOptions, suite string, policies []NamedFactory) (*SuiteResult, []workloads.Mix, error) {
	mixes, err := workloads.PaperMixes(suite)
	if err != nil {
		return nil, nil, err
	}
	mixes = mixes[:opt.limitMixes(len(mixes))]
	res, err := RunSuite(SuiteSpec{
		Mixes:    mixes,
		Policies: policies,
		Base:     DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers:  opt.Workers,
		Cache:    opt.Cache,
	})
	return res, mixes, err
}

// suiteOracleNote summarizes the oracle reference levels.
func suiteOracleNote(res *SuiteResult) string {
	var t, f float64
	for _, r := range res.OracleRaw {
		t += r.MeanThroughput
		f += r.MeanFairness
	}
	n := float64(len(res.OracleRaw))
	return fmt.Sprintf("Balanced Oracle reference (absolute, run-mean): throughput %.3f, fairness %.3f", t/n, f/n)
}

// RunFig7 reproduces Fig. 7: average throughput and fairness of every
// technique as % of the Balanced Oracle over the PARSEC mixes.
func RunFig7(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	res, _, err := runSuiteExperiment(opt, workloads.SuitePARSEC, fullLineup())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig7", Title: "Average throughput and fairness vs Balanced Oracle (PARSEC)"}
	rep.Tables = append(rep.Tables, meansTable(res))
	rep.Notes = append(rep.Notes,
		suiteOracleNote(res),
		"paper shape: SATORI > PARTIES > CoPart ≈ dCAT > Random on both goals; SATORI ~92% of the Balanced Oracle; single-goal SATORI variants approach the single-goal oracles")
	return rep, nil
}

// RunFig8 reproduces Fig. 8: per-mix throughput and fairness for all 21
// PARSEC mixes, sorted by SATORI's throughput score.
func RunFig8(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	res, _, err := runSuiteExperiment(opt, workloads.SuitePARSEC, CompetingPolicies())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig8", Title: "Per-mix throughput and fairness, % of Balanced Oracle (PARSEC)"}
	rep.Tables = append(rep.Tables,
		perMixTable(res, "satori", func(s MixScore) float64 { return s.PctThroughput }),
		perMixTable(res, "satori", func(s MixScore) float64 { return s.PctFairness }))
	rep.Notes = append(rep.Notes, "first table: throughput; second table: fairness; mixes sorted ascending by SATORI throughput")
	return rep, nil
}

// RunFig9 reproduces Fig. 9: the worst-performing job in each mix under
// every technique, and the across-mix average.
func RunFig9(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	res, _, err := runSuiteExperiment(opt, workloads.SuitePARSEC, CompetingPolicies())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig9", Title: "Worst-performing job per mix, % of Balanced Oracle's worst job (PARSEC)"}
	rep.Tables = append(rep.Tables,
		perMixTable(res, "satori", func(s MixScore) float64 { return s.PctWorst }))
	means := res.Means()
	avg := trace.NewTable("policy", "mean worst-job %oracle")
	for _, name := range res.Policies {
		avg.AddRow(name, trace.Pct(means[name].PctWorst))
	}
	rep.Tables = append(rep.Tables, avg)
	rep.Notes = append(rep.Notes, "paper: SATORI's worst job averages 87% of the Balanced Oracle and leads the baselines")
	return rep, nil
}

// RunFig10 reproduces Fig. 10: per-mix results for CloudSuite (10 mixes
// of 3 jobs).
func RunFig10(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	res, _, err := runSuiteExperiment(opt, workloads.SuiteCloudSuite, CompetingPolicies())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig10", Title: "Per-mix throughput and fairness, % of Balanced Oracle (CloudSuite)"}
	rep.Tables = append(rep.Tables,
		perMixTable(res, "satori", func(s MixScore) float64 { return s.PctThroughput }),
		perMixTable(res, "satori", func(s MixScore) float64 { return s.PctFairness }))
	return rep, nil
}

// RunFig11 reproduces Fig. 11: per-mix results for ECP (10 mixes of 2
// jobs).
func RunFig11(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	res, _, err := runSuiteExperiment(opt, workloads.SuiteECP, CompetingPolicies())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig11", Title: "Per-mix throughput and fairness, % of Balanced Oracle (ECP)"}
	rep.Tables = append(rep.Tables,
		perMixTable(res, "satori", func(s MixScore) float64 { return s.PctThroughput }),
		perMixTable(res, "satori", func(s MixScore) float64 { return s.PctFairness }))
	rep.Notes = append(rep.Notes, "paper: lowest gain on the minife+swfft mix (both LLC-hungry), best on amg+hypre (similar demands)")
	return rep, nil
}

// RunFig12 reproduces Fig. 12: CloudSuite suite averages.
func RunFig12(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	res, _, err := runSuiteExperiment(opt, workloads.SuiteCloudSuite, fullLineup())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig12", Title: "Average throughput and fairness vs Balanced Oracle (CloudSuite)"}
	rep.Tables = append(rep.Tables, meansTable(res))
	rep.Notes = append(rep.Notes, suiteOracleNote(res),
		"paper: SATORI beats PARTIES by 9% (throughput) and 5% (fairness) on CloudSuite")
	return rep, nil
}

// RunFig13 reproduces Fig. 13: ECP suite averages.
func RunFig13(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	res, _, err := runSuiteExperiment(opt, workloads.SuiteECP, fullLineup())
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig13", Title: "Average throughput and fairness vs Balanced Oracle (ECP)"}
	rep.Tables = append(rep.Tables, meansTable(res))
	rep.Notes = append(rep.Notes, suiteOracleNote(res),
		"paper: SATORI beats PARTIES by 15% on both goals for ECP")
	return rep, nil
}
