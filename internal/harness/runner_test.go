package harness

import (
	"testing"

	"satori/internal/core"
	"satori/internal/workloads"
)

func smokeSpec(t *testing.T, factory PolicyFactory) RunSpec {
	t.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultSuiteBase(7, 120)
	spec.Profiles = mixes[0].Profiles
	spec.Policy = factory
	return spec
}

func TestRunValidatesSpec(t *testing.T) {
	if _, err := Run(RunSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	spec := smokeSpec(t, SatoriFactory(core.Options{}))
	spec.Profiles = nil
	if _, err := Run(spec); err == nil {
		t.Error("spec without profiles accepted")
	}
}

func TestRunProducesSaneAggregates(t *testing.T) {
	res, err := Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "satori" {
		t.Errorf("policy name %q", res.PolicyName)
	}
	if res.Ticks != 120 {
		t.Errorf("Ticks = %d", res.Ticks)
	}
	for name, v := range map[string]float64{
		"throughput": res.MeanThroughput,
		"fairness":   res.MeanFairness,
		"objective":  res.MeanObjective,
		"worst":      res.MeanWorstSpeedup,
	} {
		if v <= 0 || v > 1 {
			t.Errorf("%s = %g out of (0, 1]", name, v)
		}
	}
	if res.Trace != nil {
		t.Error("trace retained without KeepTrace")
	}
	if res.Applies <= 0 {
		t.Error("no configurations were ever applied")
	}
}

func TestRunTraceColumns(t *testing.T) {
	spec := smokeSpec(t, SatoriFactory(core.Options{}))
	spec.KeepTrace = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() != 120 {
		t.Fatal("trace missing or wrong length")
	}
	// SATORI runs include the weight instrumentation columns.
	for _, col := range []string{"tick", "throughput", "fairness", "wT", "wF", "satobj", "proxychange"} {
		vals := res.Trace.Column(col)
		if len(vals) != 120 {
			t.Errorf("column %s has %d values", col, len(vals))
		}
	}
	// Weights must pair to 1 at every tick.
	wT := res.Trace.Column("wT")
	wF := res.Trace.Column("wF")
	for i := range wT {
		if d := wT[i] + wF[i] - 1; d > 1e-9 || d < -1e-9 {
			t.Fatalf("tick %d: wT+wF = %g", i, wT[i]+wF[i])
		}
	}
}

func TestRunWithoutWeightReporterOmitsColumns(t *testing.T) {
	spec := smokeSpec(t, RandomFactory())
	spec.KeepTrace = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("random-policy trace should not have weight columns")
		}
	}()
	res.Trace.Column("wT")
}

func TestRunOracleDistanceTracking(t *testing.T) {
	spec := smokeSpec(t, PARTIESFactory())
	spec.TrackOracleDistance = true
	spec.KeepTrace = true
	spec.Ticks = 60
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOracleDistance <= 0 {
		t.Errorf("MeanOracleDistance = %g, want > 0", res.MeanOracleDistance)
	}
	dist := res.Trace.Column("oracledist")
	if len(dist) != 60 {
		t.Fatalf("oracledist column has %d values", len(dist))
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanThroughput != b.MeanThroughput || a.MeanFairness != b.MeanFairness {
		t.Error("identical specs produced different results")
	}
}

func TestAllFactoriesRun(t *testing.T) {
	for _, nf := range CompetingPolicies() {
		res, err := Run(smokeSpec(t, nf.Factory))
		if err != nil {
			t.Fatalf("%s: %v", nf.Name, err)
		}
		if res.MeanThroughput <= 0 {
			t.Errorf("%s produced zero throughput", nf.Name)
		}
	}
	for _, f := range []PolicyFactory{
		SatoriStaticFactory(1), SatoriStaticFactory(0), StaticFactory(),
	} {
		if _, err := Run(smokeSpec(t, f)); err != nil {
			t.Fatal(err)
		}
	}
}
