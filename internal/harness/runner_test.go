package harness

import (
	"testing"

	"satori/internal/core"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/workloads"
)

func smokeSpec(t *testing.T, factory PolicyFactory) RunSpec {
	t.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultSuiteBase(7, 120)
	spec.Profiles = mixes[0].Profiles
	spec.Policy = factory
	return spec
}

func TestRunValidatesSpec(t *testing.T) {
	if _, err := Run(RunSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	spec := smokeSpec(t, SatoriFactory(core.Options{}))
	spec.Profiles = nil
	if _, err := Run(spec); err == nil {
		t.Error("spec without profiles accepted")
	}
}

func TestRunProducesSaneAggregates(t *testing.T) {
	res, err := Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "satori" {
		t.Errorf("policy name %q", res.PolicyName)
	}
	if res.Ticks != 120 {
		t.Errorf("Ticks = %d", res.Ticks)
	}
	for name, v := range map[string]float64{
		"throughput": res.MeanThroughput,
		"fairness":   res.MeanFairness,
		"objective":  res.MeanObjective,
		"worst":      res.MeanWorstSpeedup,
	} {
		if v <= 0 || v > 1 {
			t.Errorf("%s = %g out of (0, 1]", name, v)
		}
	}
	if res.Trace != nil {
		t.Error("trace retained without KeepTrace")
	}
	if res.Applies <= 0 {
		t.Error("no configurations were ever applied")
	}
}

func TestRunTraceColumns(t *testing.T) {
	spec := smokeSpec(t, SatoriFactory(core.Options{}))
	spec.KeepTrace = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() != 120 {
		t.Fatal("trace missing or wrong length")
	}
	// SATORI runs include the weight instrumentation columns.
	for _, col := range []string{"tick", "throughput", "fairness", "wT", "wF", "satobj", "proxychange"} {
		vals := res.Trace.Column(col)
		if len(vals) != 120 {
			t.Errorf("column %s has %d values", col, len(vals))
		}
	}
	// Weights must pair to 1 at every tick.
	wT := res.Trace.Column("wT")
	wF := res.Trace.Column("wF")
	for i := range wT {
		if d := wT[i] + wF[i] - 1; d > 1e-9 || d < -1e-9 {
			t.Fatalf("tick %d: wT+wF = %g", i, wT[i]+wF[i])
		}
	}
}

func TestRunWithoutWeightReporterOmitsColumns(t *testing.T) {
	spec := smokeSpec(t, RandomFactory())
	spec.KeepTrace = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("random-policy trace should not have weight columns")
		}
	}()
	res.Trace.Column("wT")
}

func TestRunOracleDistanceTracking(t *testing.T) {
	spec := smokeSpec(t, PARTIESFactory())
	spec.TrackOracleDistance = true
	spec.KeepTrace = true
	spec.Ticks = 60
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOracleDistance <= 0 {
		t.Errorf("MeanOracleDistance = %g, want > 0", res.MeanOracleDistance)
	}
	dist := res.Trace.Column("oracledist")
	if len(dist) != 60 {
		t.Fatalf("oracledist column has %d values", len(dist))
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanThroughput != b.MeanThroughput || a.MeanFairness != b.MeanFairness {
		t.Error("identical specs produced different results")
	}
}

func TestAllFactoriesRun(t *testing.T) {
	for _, nf := range CompetingPolicies() {
		res, err := Run(smokeSpec(t, nf.Factory))
		if err != nil {
			t.Fatalf("%s: %v", nf.Name, err)
		}
		if res.MeanThroughput <= 0 {
			t.Errorf("%s produced zero throughput", nf.Name)
		}
	}
	for _, f := range []PolicyFactory{
		SatoriStaticFactory(1), SatoriStaticFactory(0), StaticFactory(),
	} {
		if _, err := Run(smokeSpec(t, f)); err != nil {
			t.Fatal(err)
		}
	}
}

// brokenPolicy alternates between an invalid configuration (nil Alloc —
// the platform must reject it) and holding the current one.
type brokenPolicy struct{ tick int }

func (b *brokenPolicy) Name() string { return "broken" }

func (b *brokenPolicy) Decide(_ policy.Observation, current resource.Config) resource.Config {
	b.tick++
	if b.tick%2 == 0 {
		return resource.Config{} // invalid: no allocation matrix
	}
	return current
}

// TestRejectedAppliesSurfaced is the regression test for the swallowed
// platform.Apply error: a policy emitting invalid configurations used to
// be indistinguishable from one that deliberately holds. The rejection
// count must now be visible in Result.
func TestRejectedAppliesSurfaced(t *testing.T) {
	spec := smokeSpec(t, func(*rdt.SimPlatform, uint64) (policy.Policy, error) {
		return &brokenPolicy{}, nil
	})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectedApplies != 60 {
		t.Errorf("RejectedApplies = %d, want 60 (every second tick of 120)", res.RejectedApplies)
	}
	// A well-behaved policy must report zero rejections.
	res, err = Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectedApplies != 0 {
		t.Errorf("healthy policy has RejectedApplies = %d", res.RejectedApplies)
	}
}

// A transient baseline-refresh failure must not abort the experiment:
// the run completes, and Result counts the survived refresh failures.
func TestRunSurvivesTransientResetFailure(t *testing.T) {
	spec := smokeSpec(t, SatoriFactory(core.Options{}))
	spec.Ticks = 120
	// MeasureIsolated call 1 is the initial baseline; call 2 is the
	// tick-100 refresh. Repeat 3 outlasts the loop's default 2 retries,
	// so the refresh fails for the tick and the stale baselines hold.
	spec.Faults = &rdt.FaultScript{Faults: []rdt.Fault{
		{Op: rdt.OpMeasureIsolated, Kind: rdt.FaultError, Call: 2, Repeat: 3},
	}}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("transient reset failure aborted the run: %v", err)
	}
	if res.Ticks != 120 {
		t.Errorf("Ticks = %d, want 120", res.Ticks)
	}
	if res.TransientResets != 1 {
		t.Errorf("TransientResets = %d, want 1", res.TransientResets)
	}
	// Fault-free runs report zero.
	clean, err := Run(smokeSpec(t, SatoriFactory(core.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if clean.TransientResets != 0 {
		t.Errorf("clean run has TransientResets = %d", clean.TransientResets)
	}
}

// TestRunIncrementalMatchesFullRefit is the suite-level golden check for
// the incremental proxy path: identical specs run with the default
// (incremental) engine and with FullRefit must produce bit-identical
// aggregate results, because the two paths share the candidate stream and
// differ only in floating-point summation order (~1e-15 on posteriors,
// never enough to flip a candidate argmax).
func TestRunIncrementalMatchesFullRefit(t *testing.T) {
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	for mi, mix := range mixes[:2] {
		run := func(fullRefit bool) *Result {
			spec := DefaultSuiteBase(23, 200)
			spec.Profiles = mix.Profiles
			spec.Policy = SatoriFactory(core.Options{Window: 16, FullRefit: fullRefit})
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		inc, full := run(false), run(true)
		for name, pair := range map[string][2]float64{
			"MeanThroughput":   {inc.MeanThroughput, full.MeanThroughput},
			"MeanFairness":     {inc.MeanFairness, full.MeanFairness},
			"MeanObjective":    {inc.MeanObjective, full.MeanObjective},
			"MeanWorstSpeedup": {inc.MeanWorstSpeedup, full.MeanWorstSpeedup},
		} {
			if pair[0] != pair[1] {
				t.Errorf("mix %d: %s diverged: incremental %.17g vs full refit %.17g",
					mi, name, pair[0], pair[1])
			}
		}
		if inc.Applies != full.Applies {
			t.Errorf("mix %d: Applies diverged: %d vs %d", mi, inc.Applies, full.Applies)
		}
	}
}
