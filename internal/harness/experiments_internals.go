package harness

import (
	"fmt"

	"satori/internal/core"
	"satori/internal/stats"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// fig17Mix returns the job mix the paper uses for its internal-behavior
// figures: blackscholes, canneal, fluidanimate, freqmine, streamcluster —
// which is PARSEC mix 0 in lexicographic order.
func fig17Mix() (workloads.Mix, error) {
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return workloads.Mix{}, err
	}
	return mixes[0], nil
}

// tracedRun executes one traced run of a policy on a mix.
func tracedRun(opt ExpOptions, mix workloads.Mix, factory PolicyFactory) (*Result, error) {
	spec := DefaultSuiteBase(opt.Seed, opt.Ticks)
	spec.Profiles = mix.Profiles
	spec.Policy = factory
	spec.KeepTrace = true
	return Run(spec)
}

// RunFig14 reproduces Fig. 14: (a) the equalization and prioritization
// weight components over time; (b) the benefit of dynamic weight
// re-balancing over static 0.5/0.5 weights across mixes.
func RunFig14(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mix, err := fig17Mix()
	if err != nil {
		return nil, err
	}
	res, err := tracedRun(opt, mix, SatoriFactory(core.Options{}))
	if err != nil {
		return nil, err
	}
	// (a) weight decomposition timeline.
	timeline := trace.NewTable("time", "W_T", "W_F", "W_TE", "W_TP", "eq-frac")
	step := res.Trace.Len() / 15
	if step < 1 {
		step = 1
	}
	var devs []float64
	for i := 0; i < res.Trace.Len(); i++ {
		wT := res.Trace.At(i, "wT")
		devs = append(devs, wT-0.5)
		if i%step == 0 {
			timeline.AddRow(
				fmt.Sprintf("%.1fs", res.Trace.At(i, "time")),
				trace.F(wT), trace.F(res.Trace.At(i, "wF")),
				trace.F(res.Trace.At(i, "wTE")), trace.F(res.Trace.At(i, "wTP")),
				trace.F(res.Trace.At(i, "eqfrac")))
		}
	}

	// (b) dynamic vs static weights across mixes.
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(len(mixes))]
	suite, err := RunSuite(SuiteSpec{
		Mixes: mixes,
		Policies: []NamedFactory{
			{Name: "satori", Factory: SatoriFactory(core.Options{})},
			{Name: "satori-static", Factory: SatoriStaticFactory(0.5)},
		},
		Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig14", Title: "Dynamic weight re-balancing (a: components over time, b: benefit vs static weights)"}
	rep.Tables = append(rep.Tables, timeline, meansTable(suite))
	m := suite.Means()
	better := 0
	for _, sc := range suite.Scores["satori"] {
		st, _ := suite.ScoreFor("satori-static", sc.MixIndex)
		if sc.PctThroughput+sc.PctFairness > st.PctThroughput+st.PctFairness {
			better++
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("weights deviate from 0.5 by up to %.0f%% (paper: up to 50%%) and average %.3f over the run",
			stats.Max(absAll(devs))/0.5*100, 0.5+stats.Mean(devs)),
		fmt.Sprintf("dynamic beats static on combined score in %d of %d mixes (paper: all mixes, up to +10%%): dynamic T=%.1f%% F=%.1f%% vs static T=%.1f%% F=%.1f%%",
			better, len(mixes),
			m["satori"].PctThroughput*100, m["satori"].PctFairness*100,
			m["satori-static"].PctThroughput*100, m["satori-static"].PctFairness*100))
	return rep, nil
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			x = -x
		}
		out[i] = x
	}
	return out
}

// RunFig15 reproduces Fig. 15: (a) the mean Euclidean distance between
// each policy's applied configuration and the Balanced Oracle's, and
// (b) the distance over time for SATORI vs PARTIES across phase changes.
func RunFig15(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	nMixes := opt.limitMixes(5)
	policies := CompetingPolicies()
	tbl := trace.NewTable("policy", "mean distance", "median distance", "median x of SATORI")
	dists := map[string]float64{}
	medians := map[string]float64{}
	traces := map[string]*trace.Series{}
	// Every (policy, mix) run is independent; fan the grid out and fold
	// the Welford accumulators in mix order afterwards.
	results := make([]*Result, len(policies)*nMixes)
	err = forEach(opt.Workers, len(results), func(u int) error {
		nf := policies[u/nMixes]
		m := u % nMixes
		spec := DefaultSuiteBase(opt.Seed^uint64(m)*0x51D, opt.Ticks)
		spec.Profiles = mixes[m].Profiles
		spec.Policy = nf.Factory
		spec.TrackOracleDistance = true
		spec.KeepTrace = m == 0 // the timeline panel uses mix 0
		res, err := Run(spec)
		if err != nil {
			return fmt.Errorf("harness: %s on mix %d: %w", nf.Name, m, err)
		}
		results[u] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for p, nf := range policies {
		var acc, accMed stats.Welford
		for m := 0; m < nMixes; m++ {
			res := results[p*nMixes+m]
			acc.Add(res.MeanOracleDistance)
			accMed.Add(res.MedianOracleDistance)
			if res.Trace != nil {
				traces[nf.Name] = res.Trace
			}
		}
		dists[nf.Name] = acc.Mean()
		medians[nf.Name] = accMed.Mean()
	}
	for _, nf := range policies {
		ratio := 0.0
		if medians["satori"] > 0 {
			ratio = medians[nf.Name] / medians["satori"]
		}
		tbl.AddRow(nf.Name, trace.F(dists[nf.Name]), trace.F(medians[nf.Name]), fmt.Sprintf("%.2fx", ratio))
	}

	// (b) distance over time, SATORI vs PARTIES.
	timeline := trace.NewTable("time", "satori", "parties")
	sat, par := traces["satori"], traces["parties"]
	n := sat.Len()
	if par.Len() < n {
		n = par.Len()
	}
	step := n / 15
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		timeline.AddRow(fmt.Sprintf("%.1fs", sat.At(i, "time")),
			trace.F(sat.At(i, "oracledist")), trace.F(par.At(i, "oracledist")))
	}
	rep := &Report{ID: "fig15", Title: "Configuration proximity to the Balanced Oracle (PARSEC mix 0)"}
	rep.Tables = append(rep.Tables, tbl, timeline)
	rep.Notes = append(rep.Notes,
		"paper: SATORI's configurations are the closest to the Balanced Oracle; competing techniques sit at >=1.3x SATORI's distance",
		"the timeline shows SATORI re-approaching the (moving) oracle configuration faster than PARTIES after phase changes")
	return rep, nil
}

// RunFig16 reproduces Fig. 16: sensitivity of SATORI's performance to the
// prioritization period T_P and the equalization period T_E.
func RunFig16(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	limit := opt.limitMixes(3) // 3 mixes suffice for the trend
	mixes = mixes[:limit]

	runWith := func(tp, te, workers int) (Mean, error) {
		suite, err := RunSuite(SuiteSpec{
			Mixes: mixes,
			Policies: []NamedFactory{{
				Name: "satori",
				Factory: SatoriFactory(core.Options{Scheduler: core.SchedulerOptions{
					PrioritizationTicks: tp, EqualizationTicks: te,
				}}),
			}},
			Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
			Workers: workers,
		})
		if err != nil {
			return Mean{}, err
		}
		return suite.Means()["satori"], nil
	}

	// Both sweeps fan out over their period values; each point's suite
	// gets the remaining worker budget.
	tps := []int{5, 10, 20, 50, 100}
	tes := []int{50, 100, 200, 300, 600}
	tpMeans := make([]Mean, len(tps))
	teMeans := make([]Mean, len(tes))
	outer, inner := splitWorkers(opt.Workers, len(tps)+len(tes))
	err = forEach(outer, len(tps)+len(tes), func(i int) error {
		var err error
		if i < len(tps) {
			tpMeans[i], err = runWith(tps[i], 100, inner)
		} else {
			teMeans[i-len(tps)], err = runWith(10, tes[i-len(tps)], inner)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	tpTable := trace.NewTable("prioritization period", "throughput %oracle", "fairness %oracle")
	for i, tp := range tps {
		tpTable.AddRow(fmt.Sprintf("%.1fs", float64(tp)*0.1), trace.Pct(tpMeans[i].PctThroughput), trace.Pct(tpMeans[i].PctFairness))
	}
	teTable := trace.NewTable("equalization period", "throughput %oracle", "fairness %oracle")
	for i, te := range tes {
		teTable.AddRow(fmt.Sprintf("%.0fs", float64(te)*0.1), trace.Pct(teMeans[i].PctThroughput), trace.Pct(teMeans[i].PctFairness))
	}
	rep := &Report{ID: "fig16", Title: "Sensitivity to T_P (top, T_E=10s) and T_E (bottom, T_P=1s)"}
	rep.Tables = append(rep.Tables, tpTable, teTable)
	rep.Notes = append(rep.Notes,
		"paper: low sensitivity in a wide range; degradation only for very long periods (T_P > 5s, T_E > 30s)")
	return rep, nil
}

// RunFig17 reproduces Fig. 17: (a) the objective value over time for
// SATORI vs SATORI-without-prioritization, and (b) the % change of the
// proxy model between iterations for both.
func RunFig17(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mix, err := fig17Mix()
	if err != nil {
		return nil, err
	}
	dyn, err := tracedRun(opt, mix, SatoriFactory(core.Options{}))
	if err != nil {
		return nil, err
	}
	static, err := tracedRun(opt, mix, SatoriStaticFactory(0.5))
	if err != nil {
		return nil, err
	}
	tbl := trace.NewTable("time", "objective (satori)", "objective (static)", "proxy Δ% (satori)", "proxy Δ% (static)")
	n := dyn.Trace.Len()
	if static.Trace.Len() < n {
		n = static.Trace.Len()
	}
	step := n / 15
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		tbl.AddRow(fmt.Sprintf("%.1fs", dyn.Trace.At(i, "time")),
			trace.F(dyn.Trace.At(i, "satobj")), trace.F(static.Trace.At(i, "satobj")),
			trace.F(dyn.Trace.At(i, "proxychange")), trace.F(static.Trace.At(i, "proxychange")))
	}
	dynObj := stats.Mean(dyn.Trace.Column("satobj"))
	staObj := stats.Mean(static.Trace.Column("satobj"))
	dynProxy := stats.Mean(dyn.Trace.Column("proxychange"))
	staProxy := stats.Mean(static.Trace.Column("proxychange"))
	rep := &Report{ID: "fig17", Title: "Objective value and proxy-model change over time (blackscholes/canneal/fluidanimate/freqmine/streamcluster)"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("mean objective: satori %.3f vs static %.3f (paper: dynamic achieves higher objective values)", dynObj, staObj),
		fmt.Sprintf("mean proxy-model change per iteration: satori %.2f%% vs static %.2f%% (paper: similar ranges — the moving goal post does not destabilize the BO engine)", dynProxy, staProxy))
	return rep, nil
}

// RunFig18 reproduces Fig. 18: the variation of the observed throughput
// and fairness is similar with and without dynamic prioritization, while
// the mean level is higher with it.
func RunFig18(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mix, err := fig17Mix()
	if err != nil {
		return nil, err
	}
	dyn, err := tracedRun(opt, mix, SatoriFactory(core.Options{}))
	if err != nil {
		return nil, err
	}
	static, err := tracedRun(opt, mix, SatoriStaticFactory(0.5))
	if err != nil {
		return nil, err
	}
	tbl := trace.NewTable("variant", "mean T", "std T", "mean F", "std F")
	tbl.AddRow("satori", trace.F(dyn.MeanThroughput), trace.F(dyn.StdThroughput),
		trace.F(dyn.MeanFairness), trace.F(dyn.StdFairness))
	tbl.AddRow("satori w/o prioritization", trace.F(static.MeanThroughput), trace.F(static.StdThroughput),
		trace.F(static.MeanFairness), trace.F(static.StdFairness))
	rep := &Report{ID: "fig18", Title: "Observed-performance variation with and without dynamic prioritization"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"paper: SATORI's curve sits above the no-prioritization curve with similar tick-to-tick variation")
	return rep, nil
}

// RunFig19 reproduces Fig. 19: prioritizing the weaker-performing goal
// (SATORI's Eq. 4) reaches higher levels of both goals than prioritizing
// the stronger one.
func RunFig19(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(5)]
	suite, err := RunSuite(SuiteSpec{
		Mixes: mixes,
		Policies: []NamedFactory{
			{Name: "satori (prioritize weaker)", Factory: SatoriFactory(core.Options{})},
			{Name: "prioritize stronger", Factory: SatoriFactory(core.Options{
				Scheduler: core.SchedulerOptions{Mode: core.WeightsFavorStronger}})},
		},
		Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig19", Title: "Prioritizing the weaker goal vs the stronger goal"}
	rep.Tables = append(rep.Tables, meansTable(suite))
	m := suite.Means()
	dw := m["satori (prioritize weaker)"]
	ds := m["prioritize stronger"]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("combined-score advantage of prioritizing the weaker goal: %+.1f%% points (paper: ~5%%)",
			((dw.PctThroughput+dw.PctFairness)-(ds.PctThroughput+ds.PctFairness))/2*100))
	return rep, nil
}
