package harness

import (
	"fmt"

	"satori/internal/control"
	"satori/internal/core"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// clusterMachine is the jobs ≫ CLOS ablation's machine shape: large
// enough to co-locate 24 jobs (every resource has at least one unit per
// job) but with per-job spaces far past what 16 hardware classes of
// service could hold one control group each for.
func clusterMachine() sim.MachineSpec {
	return sim.MachineSpec{
		Cores:             48,
		LLCWays:           32,
		MemBWUnits:        24,
		MemBWBytesPerUnit: 7.68e9,
		LineBytes:         64,
		MinPowerScale:     0.55,
	}
}

// clusterJobs builds the 24-job co-location by cycling the PARSEC
// profiles — heterogeneous enough that the classifier has real classes
// to find, deterministic in order.
func clusterJobs(n int) []*sim.Profile {
	base := workloads.PARSEC()
	out := make([]*sim.Profile, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// RunCluster is the jobs ≫ classes ablation: 24 co-located jobs on one
// big machine, per-job SATORI vs clustered SATORI at K ∈ {4, 8, 16} vs
// the LFOC baseline (classification without search) vs static equal
// split. Clustered SATORI searches a space of K coordinates per resource
// instead of 24 and fits a 24-job co-location into K CLOS control
// groups; the table shows what that costs (or doesn't) in objective
// terms, while the committed regroup counts show the classifier
// converging rather than thrashing.
func RunCluster(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	const jobs = 24
	profiles := clusterJobs(jobs)

	type row struct {
		name     string
		factory  PolicyFactory
		summary  control.Summary
		regroups int
	}
	rows := []*row{
		{name: "static", factory: StaticFactory()},
		{name: "lfoc", factory: LFOCFactory(8)},
		{name: "satori-clustered-k4", factory: ClusteredSatoriFactory(4, core.Options{})},
		{name: "satori-clustered-k8", factory: ClusteredSatoriFactory(8, core.Options{})},
		{name: "satori-clustered-k16", factory: ClusteredSatoriFactory(16, core.Options{})},
		{name: "satori", factory: SatoriFactory(core.Options{})},
	}
	err := forEach(opt.Workers, len(rows), func(i int) error {
		r := rows[i]
		simulator, err := sim.New(clusterMachine(), profiles, sim.Options{Seed: opt.Seed})
		if err != nil {
			return err
		}
		platform, err := rdt.NewSimPlatform(simulator)
		if err != nil {
			return err
		}
		loop, err := control.New(control.Options{
			Platform: platform,
			Policy:   func(rdt.Platform) (policy.Policy, error) { return r.factory(platform, opt.Seed) },
		})
		if err != nil {
			return err
		}
		if _, err := loop.Run(opt.Ticks); err != nil {
			return err
		}
		r.summary = loop.Summary()
		r.regroups = r.summary.Regroups
		return nil
	})
	if err != nil {
		return nil, err
	}

	tbl := trace.NewTable("policy", "throughput", "fairness", "objective", "regroups")
	for _, r := range rows {
		tbl.AddRow(r.name,
			trace.F(r.summary.MeanThroughput),
			trace.F(r.summary.MeanFairness),
			trace.F(r.summary.MeanObjective),
			fmt.Sprintf("%d", r.regroups))
	}
	rep := &Report{ID: "cluster", Title: fmt.Sprintf("Jobs ≫ classes: %d jobs, clustered search at K ∈ {4, 8, 16} (PARSEC, cycled)", jobs)}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("per-job SATORI searches %d coordinates per resource; K=8 searches 8 — and 24 jobs fit in 8 CLOS control groups, under the 16-class budget of commodity CAT hardware", jobs),
		"LFOC classifies identically but allocates by rule instead of searching the cluster space; the objective gap to satori-clustered-k8 is what cluster-level BO search adds",
		"regroups counts committed membership migrations (hysteresis 2 rounds); low counts mean the classifier converged instead of thrashing")
	return rep, nil
}
