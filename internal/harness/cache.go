package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"satori/internal/metrics"
	"satori/internal/sim"
)

// cacheSchemaVersion is baked into every cell key. Bump it whenever the
// Result schema, the simulator's model arithmetic, or the control loop's
// RNG consumption changes — any of those silently invalidates every
// previously cached cell.
const cacheSchemaVersion = 1

// CellCache memoizes suite cell results (one policy × mix × seed run) on
// disk, keyed by a content hash of everything that determines the run's
// outcome: machine spec, full workload profiles, policy identity, seed,
// ticks, noise, metric choices, and the cache schema version. Because
// runs are deterministic functions of that tuple, replaying a suite with
// a warm cache returns byte-identical results without re-simulating.
//
// Contract notes:
//   - Policies are identified by NAME. Two factories registered under the
//     same name but building differently configured policies would alias;
//     every lineup in this package uses distinct names for distinct
//     configurations, and custom callers must do the same.
//   - Cells with KeepTrace bypass the cache (the per-tick trace is not
//     serialized), as do cells with TrackOracleDistance unless the oracle
//     options are part of the supplied policy identity.
//   - Results round-trip exactly: encoding/json emits float64 in
//     shortest-round-trip form, so a cache hit is bit-identical to the
//     run it replaced.
type CellCache struct {
	dir                 string
	hits, misses, skips atomic.Int64
}

// NewCellCache opens (creating if needed) a cache directory.
func NewCellCache(dir string) (*CellCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("harness: cell cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: cell cache: %w", err)
	}
	return &CellCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *CellCache) Dir() string { return c.dir }

// Stats reports cache traffic: hits served from disk, misses that ran
// and were stored, and skips that bypassed the cache (KeepTrace or
// tracked-oracle cells).
func (c *CellCache) Stats() (hits, misses, skips int64) {
	return c.hits.Load(), c.misses.Load(), c.skips.Load()
}

// cellKey is the canonical hashed identity of one suite cell. Every
// field feeds the hash through deterministic JSON encoding.
type cellKey struct {
	Schema             int
	Machine            sim.MachineSpec
	Profiles           []*sim.Profile
	PolicyID           string
	Seed               uint64
	Ticks              int
	NoiseSigma         float64
	Throughput         metrics.ThroughputMetric
	Fairness           metrics.FairnessMetric
	BaselineResetTicks int
}

// key derives the content hash for spec under policyID.
func (c *CellCache) key(spec RunSpec, policyID string) (string, error) {
	machine := sim.DefaultMachine()
	if spec.Machine != nil {
		machine = *spec.Machine
	}
	ticks := spec.Ticks
	if ticks <= 0 {
		ticks = 600
	}
	blob, err := json.Marshal(cellKey{
		Schema:             cacheSchemaVersion,
		Machine:            machine,
		Profiles:           spec.Profiles,
		PolicyID:           policyID,
		Seed:               spec.Seed,
		Ticks:              ticks,
		NoiseSigma:         spec.NoiseSigma,
		Throughput:         spec.Metrics.Throughput,
		Fairness:           spec.Metrics.Fairness,
		BaselineResetTicks: spec.BaselineResetTicks,
	})
	if err != nil {
		return "", fmt.Errorf("harness: cell cache key: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Run executes spec through the cache: a hit returns the stored result
// without simulating; a miss runs the cell and stores it. Cells the
// cache cannot faithfully serialize (KeepTrace) or identify
// (TrackOracleDistance with an anonymous searcher configuration) run
// uncached.
func (c *CellCache) Run(spec RunSpec, policyID string) (*Result, error) {
	if spec.KeepTrace || spec.TrackOracleDistance {
		c.skips.Add(1)
		return Run(spec)
	}
	key, err := c.key(spec, policyID)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(c.dir, key+".json")
	if blob, err := os.ReadFile(path); err == nil {
		var res Result
		if err := json.Unmarshal(blob, &res); err == nil {
			c.hits.Add(1)
			return &res, nil
		}
		// A torn or stale-schema file: fall through and overwrite.
	}
	res, err := Run(spec)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	blob, err := json.Marshal(res)
	if err != nil {
		// Unserializable result (e.g. NaN aggregate): still usable, just
		// not cacheable.
		return res, nil
	}
	// Write-then-rename so concurrent workers and interrupted runs never
	// leave a torn file behind a valid key.
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return res, nil
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return res, nil
	}
	tmp.Close()
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
	return res, nil
}
