package harness

import (
	"testing"

	"satori/internal/core"
	"satori/internal/workloads"
)

func smokeSuite(t *testing.T) *SuiteResult {
	t.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSuite(SuiteSpec{
		Mixes: mixes[:2],
		Policies: []NamedFactory{
			{Name: "satori", Factory: SatoriFactory(core.Options{})},
			{Name: "random", Factory: RandomFactory()},
		},
		Base: DefaultSuiteBase(3, 120),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSuiteValidation(t *testing.T) {
	if _, err := RunSuite(SuiteSpec{}); err == nil {
		t.Error("empty suite accepted")
	}
	mixes, _ := workloads.PaperMixes(workloads.SuitePARSEC)
	if _, err := RunSuite(SuiteSpec{Mixes: mixes[:1]}); err == nil {
		t.Error("suite without policies accepted")
	}
}

func TestSuiteScoresShape(t *testing.T) {
	res := smokeSuite(t)
	if len(res.Policies) != 2 {
		t.Fatalf("policies = %v", res.Policies)
	}
	if len(res.OracleRaw) != 2 {
		t.Fatalf("oracle refs = %d", len(res.OracleRaw))
	}
	for _, name := range res.Policies {
		scores := res.Scores[name]
		if len(scores) != 2 {
			t.Fatalf("%s has %d mix scores", name, len(scores))
		}
		for _, sc := range scores {
			if sc.PctThroughput <= 0 || sc.PctFairness <= 0 {
				t.Errorf("%s mix %d has non-positive scores", name, sc.MixIndex)
			}
			if len(sc.MixNames) != 5 {
				t.Errorf("mix names = %v", sc.MixNames)
			}
		}
	}
}

func TestSuiteMeansAndOrdering(t *testing.T) {
	res := smokeSuite(t)
	means := res.Means()
	if len(means) != 2 {
		t.Fatalf("means for %d policies", len(means))
	}
	// SATORI must beat Random even in a short smoke run.
	if means["satori"].PctThroughput <= means["random"].PctThroughput {
		t.Errorf("satori %.3f <= random %.3f on throughput",
			means["satori"].PctThroughput, means["random"].PctThroughput)
	}
	// Sorted views are sorted.
	sorted := res.SortedByPolicy("satori", "throughput")
	for i := 1; i < len(sorted); i++ {
		if sorted[i].PctThroughput < sorted[i-1].PctThroughput {
			t.Error("SortedByPolicy not ascending")
		}
	}
	sortedF := res.SortedByPolicy("satori", "fairness")
	for i := 1; i < len(sortedF); i++ {
		if sortedF[i].PctFairness < sortedF[i-1].PctFairness {
			t.Error("fairness sort not ascending")
		}
	}
	// MixOrder returns each mix exactly once.
	order := res.MixOrder("satori")
	seen := map[int]bool{}
	for _, idx := range order {
		if seen[idx] {
			t.Error("MixOrder repeated a mix")
		}
		seen[idx] = true
	}
	if len(order) != 2 {
		t.Errorf("MixOrder length %d", len(order))
	}
	if _, ok := res.ScoreFor("satori", order[0]); !ok {
		t.Error("ScoreFor missed an existing mix")
	}
	if _, ok := res.ScoreFor("satori", 999); ok {
		t.Error("ScoreFor found a non-existent mix")
	}
}

func TestDefaultMetricsArePaperDefaults(t *testing.T) {
	m := DefaultMetrics()
	if m.Throughput.String() != "sum-ips" || m.Fairness.String() != "jain" {
		t.Errorf("defaults = %s/%s", m.Throughput, m.Fairness)
	}
}
