package harness

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"satori/internal/core"
	"satori/internal/workloads"
)

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("resolveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := resolveWorkers(3); got != 3 {
		t.Errorf("resolveWorkers(3) = %d", got)
	}
}

func TestWorkersFromEnv(t *testing.T) {
	for env, want := range map[string]int{"": 0, "0": 0, "3": 3} {
		t.Setenv("SATORI_PARALLEL", env)
		got, err := WorkersFromEnv()
		if err != nil || got != want {
			t.Errorf("SATORI_PARALLEL=%q -> %d, %v, want %d", env, got, err, want)
		}
	}
	// Malformed and negative values must surface an error instead of
	// silently falling back to all CPUs.
	for _, env := range []string{"nope", "-2", "3.5", "8 "} {
		t.Setenv("SATORI_PARALLEL", env)
		if got, err := WorkersFromEnv(); err == nil {
			t.Errorf("SATORI_PARALLEL=%q -> %d, want error", env, got)
		}
	}
}

func TestSplitWorkers(t *testing.T) {
	if outer, inner := splitWorkers(8, 2); outer != 2 || inner != 4 {
		t.Errorf("splitWorkers(8, 2) = %d, %d", outer, inner)
	}
	if outer, inner := splitWorkers(1, 5); outer != 1 || inner != 1 {
		t.Errorf("splitWorkers(1, 5) = %d, %d", outer, inner)
	}
	if outer, inner := splitWorkers(4, 16); outer != 4 || inner != 1 {
		t.Errorf("splitWorkers(4, 16) = %d, %d", outer, inner)
	}
	// The budget never multiplies beyond the request.
	outer, inner := splitWorkers(6, 4)
	if outer*inner > 6 || outer < 1 || inner < 1 {
		t.Errorf("splitWorkers(6, 4) = %d, %d oversubscribes", outer, inner)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 50
		var visits [n]atomic.Int32
		if err := forEach(workers, n, func(i int) error {
			visits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := forEach(8, 20, func(i int) error {
		switch i {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("got %v, want the lowest-index error", err)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	calls := 0
	err := forEach(1, 10, func(i int) error {
		calls++
		if i == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || calls != 3 {
		t.Errorf("serial path made %d calls (err %v), want 3", calls, err)
	}
	if err := forEach(4, 0, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Errorf("n=0 returned %v", err)
	}
}

func parallelSpec(t *testing.T, workers int) SuiteSpec {
	t.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	return SuiteSpec{
		Mixes: mixes[:3],
		Policies: []NamedFactory{
			{Name: "satori", Factory: SatoriFactory(core.Options{})},
			{Name: "random", Factory: RandomFactory()},
		},
		Base:    DefaultSuiteBase(11, 60),
		Workers: workers,
	}
}

// The tentpole guarantee: any worker count yields byte-identical results.
// This test also races the pool under `go test -race`.
func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	serial, err := RunSuite(parallelSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuite(parallelSpec(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel SuiteResult differs from serial")
	}
	// Rendered output is what the experiment reports print; assert the
	// byte-level guarantee the users of -parallel rely on.
	if s, p := meansTable(serial).String(), meansTable(parallel).String(); s != p {
		t.Fatalf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

func TestReplicateSuiteParallelMatchesSerial(t *testing.T) {
	seeds := []uint64{5, 6, 7}
	serial, err := ReplicateSuite(parallelSpec(t, 1), seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ReplicateSuite(parallelSpec(t, 4), seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("replicated means differ:\nserial %+v\nparallel %+v", serial, parallel)
	}
}
