package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The committed goldens under testdata/golden were captured BEFORE the
// per-tick loop moved into internal/control (with cmd/experiments -csv at
// the flag values below). These tests pin the refactor's core promise:
// with the sim backend, suite results are byte-identical — same RNG draw
// order, same metric math, same equalization schedule, down to the
// formatted digit. A diff here means the control loop changed observable
// behavior, not just structure.

func goldenCompare(t *testing.T, rep *Report, tableIdx int, goldenFile string) {
	t.Helper()
	if tableIdx >= len(rep.Tables) {
		t.Fatalf("report has %d tables, want index %d", len(rep.Tables), tableIdx)
	}
	var got strings.Builder
	if err := rep.Tables[tableIdx].WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", goldenFile))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("%s diverged from the pre-refactor capture:\ngot:\n%s\nwant:\n%s",
			goldenFile, got.String(), want)
	}
}

// Fig. 7 smoke scale: -run fig7 -ticks 60 -mixes 2 -seed 42.
func TestGoldenFig7Smoke(t *testing.T) {
	e, ok := FindExperiment("fig7")
	if !ok {
		t.Fatal("fig7 not registered")
	}
	rep, err := e.Run(ExpOptions{Ticks: 60, Seed: 42, MixLimit: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, rep, 0, "fig7_smoke.csv")
}

// SLO recovery at 200 ticks: -run slo -ticks 200 -seed 42. This golden
// pins the whole SLO subsystem end to end — the latency model's derived
// quantiles, the hysteretic detector's onset/clear schedule, and the
// violation-driven goal switch — any of which would shift the violated-
// tick counts or recovery times captured here.
func TestGoldenSLOSmoke(t *testing.T) {
	e, ok := FindExperiment("slo")
	if !ok {
		t.Fatal("slo not registered")
	}
	rep, err := e.Run(ExpOptions{Ticks: 200, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, rep, 0, "slo_200.csv")
}

// Jobs ≫ classes ablation at 120 ticks: -run cluster -ticks 120 -seed 42.
// This golden pins the whole cluster indirection end to end — the
// round-robin bootstrap grouping, the classifier's fingerprints and
// hysteretic migrations, the reduced-space search, and the expansion back
// to per-job partitions — plus (via the per-job satori row) that plain
// SATORI's draws are untouched by the clustering machinery existing.
func TestGoldenCluster(t *testing.T) {
	e, ok := FindExperiment("cluster")
	if !ok {
		t.Fatal("cluster not registered")
	}
	rep, err := e.Run(ExpOptions{Ticks: 120, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, rep, 0, "cluster_120.csv")
}

// Mix change at 200 ticks: -run mix-change -ticks 200 -seed 42. Ticks=200
// puts the mid-run churn exactly on a 100-tick equalization boundary, so
// this golden also pins the "churn preempts the periodic refresh"
// scheduling the loop must reproduce.
func TestGoldenMixChange(t *testing.T) {
	e, ok := FindExperiment("mix-change")
	if !ok {
		t.Fatal("mix-change not registered")
	}
	rep, err := e.Run(ExpOptions{Ticks: 200, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, rep, 0, "mixchange_200.csv")
}
