package harness

import (
	"fmt"
	"math"

	"satori/internal/metrics"
	"satori/internal/policies/oracle"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// motivationSim builds the five-job PARSEC mix 0 simulator used by the
// Sec. II characterization figures, noise-free (the paper's Figs. 1-3 use
// exhaustive offline search with oracle knowledge).
func motivationSim(opt ExpOptions) (*sim.Simulator, error) {
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	return sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{Seed: opt.Seed, NoiseSigma: -1})
}

// scoreConfig evaluates a configuration on the noise-free model.
func scoreConfig(s *sim.Simulator, c resource.Config, m MetricSet) (t, f float64) {
	ips, err := s.ExactIPS(c)
	if err != nil {
		return 0, 0
	}
	iso := s.ExactIsolated()
	return metrics.NormalizedThroughput(m.Throughput, ips, iso),
		metrics.NormalizedFairness(m.Fairness, ips, iso)
}

// RunFig1 reproduces Fig. 1: the throughput-optimal configuration is
// tracked over time while the jobs run under it; the table reports each
// job's share of every resource at sampled instants, plus how often and
// how far the optimum moved.
func RunFig1(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	s, err := motivationSim(opt)
	if err != nil {
		return nil, err
	}
	met := DefaultMetrics()
	searcher := oracle.NewSearcher(s, oracle.Options{
		Seed: opt.Seed, ThroughputMetric: met.Throughput, FairnessMetric: met.Fairness,
	})
	space := s.Space()

	tbl := trace.NewTable("time", "cores share %", "llc share %", "membw share %", "changed")
	var prev resource.Config
	changes := 0
	var changeMag []float64
	sampleEvery := opt.Ticks / 12
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	for tick := 0; tick < opt.Ticks; tick++ {
		best, _ := searcher.Search(1, 0) // Throughput Oracle
		changed := prev.Alloc != nil && !best.Equal(prev)
		if changed {
			changes++
			changeMag = append(changeMag, resource.Distance(best, prev))
		}
		if tick%sampleEvery == 0 {
			row := []string{fmt.Sprintf("%.1fs", float64(tick)*sim.TickSeconds)}
			for r := range space.Resources {
				// Report job 0's share, as a representative
				// trajectory (the paper plots one line per
				// resource).
				share := float64(best.Alloc[r][0]) / float64(space.Resources[r].Units) * 100
				row = append(row, fmt.Sprintf("%.0f%%", share))
			}
			mark := ""
			if changed {
				mark = "*"
			}
			tbl.AddRow(append(row, mark)...)
		}
		prev = best
		if err := s.Apply(best); err != nil {
			return nil, err
		}
		s.Step()
	}
	rep := &Report{ID: "fig1", Title: "Optimal-throughput configuration over time (PARSEC mix 0, job 0's shares)", Tables: []*trace.Table{tbl}}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("optimal configuration changed %d times in %.0f s", changes, float64(opt.Ticks)*sim.TickSeconds),
		fmt.Sprintf("mean move distance %.2f units (max possible %.2f)", stats.Mean(changeMag), space.MaxDistance()),
		"paper observation: the optimum changes by more than 20% during a run; reproduced if the share columns move over time")
	return rep, nil
}

// RunFig2 reproduces Fig. 2 and the surrounding Sec. II analysis: the
// throughput-optimal and fairness-optimal configurations differ, each is
// poor at the other goal, and neither the averaged configuration nor
// alternating halves recovers the Balanced Oracle.
func RunFig2(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	s, err := motivationSim(opt)
	if err != nil {
		return nil, err
	}
	// Warm up so the jobs sit mid-phase rather than at aligned starts.
	for i := 0; i < opt.Ticks/4; i++ {
		s.Step()
	}
	met := DefaultMetrics()
	searcher := oracle.NewSearcher(s, oracle.Options{
		Seed: opt.Seed, ThroughputMetric: met.Throughput, FairnessMetric: met.Fairness,
	})
	tOpt, _ := searcher.Search(1, 0)
	fOpt, _ := searcher.Search(0, 1)
	bOpt, _ := searcher.Search(0.5, 0.5)
	tT, tF := scoreConfig(s, tOpt, met)
	fT, fF := scoreConfig(s, fOpt, met)
	bT, bF := scoreConfig(s, bOpt, met)

	// "Average" of the two optimal configurations (rounded, repaired to
	// keep row sums and the 1-unit floor).
	avg := averageConfigs(s.Space(), tOpt, fOpt)
	aT, aF := scoreConfig(s, avg, met)
	// Alternating halves: half the time in each optimum.
	altT, altF := (tT+fT)/2, (tF+fF)/2

	tbl := trace.NewTable("strategy", "throughput", "fairness", "T %of T-oracle", "F %of F-oracle")
	add := func(name string, t, f float64) {
		tbl.AddRow(name, trace.F(t), trace.F(f), trace.Pct(t/tT), trace.Pct(f/fF))
	}
	add("throughput-optimal config", tT, tF)
	add("fairness-optimal config", fT, fF)
	add("balanced-oracle config", bT, bF)
	add("averaged config", aT, aF)
	add("alternating halves", altT, altF)

	rep := &Report{ID: "fig2", Title: "Throughput-optimal vs fairness-optimal configurations (one instant, PARSEC mix 0)", Tables: []*trace.Table{tbl}}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("config distance between the two optima: %.2f units (max %.2f)", resource.Distance(tOpt, fOpt), s.Space().MaxDistance()),
		fmt.Sprintf("paper: T-optimal achieves 67%% of optimal fairness (here %.0f%%); F-optimal achieves 59%% of optimal throughput (here %.0f%%)", tF/fF*100, fT/tT*100),
		fmt.Sprintf("paper: averaged config achieves 59%%/72%% of oracle throughput/fairness (here %.0f%%/%.0f%%)", aT/tT*100, aF/fF*100),
		fmt.Sprintf("paper: alternating halves achieve 72%%/81%% (here %.0f%%/%.0f%%)", altT/tT*100, altF/fF*100))
	return rep, nil
}

// averageConfigs rounds the element-wise mean of two configurations and
// repairs it to a valid partition (row sums restored, 1-unit floor kept).
func averageConfigs(space *resource.Space, a, b resource.Config) resource.Config {
	out := space.NewConfig()
	for r := range out.Alloc {
		total := space.Resources[r].Units
		sum := 0
		for j := range out.Alloc[r] {
			v := int(math.Round(float64(a.Alloc[r][j]+b.Alloc[r][j]) / 2))
			if v < 1 {
				v = 1
			}
			out.Alloc[r][j] = v
			sum += v
		}
		// Repair the row sum by adjusting the largest/smallest cells.
		for sum > total {
			k := argMaxInt(out.Alloc[r])
			if out.Alloc[r][k] <= 1 {
				break
			}
			out.Alloc[r][k]--
			sum--
		}
		for sum < total {
			k := argMinInt(out.Alloc[r])
			out.Alloc[r][k]++
			sum++
		}
	}
	return out
}

func argMaxInt(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argMinInt(xs []int) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// RunFig3 reproduces Fig. 3: at two different instants there exist
// configuration pairs with the same throughput difference but opposite
// fairness differences — the opportunity SATORI's dynamic prioritization
// exploits. The driver searches sampled configuration pairs at two phase
// states for the clearest such example.
func RunFig3(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	s, err := motivationSim(opt)
	if err != nil {
		return nil, err
	}
	met := DefaultMetrics()
	rng := stats.NewRNG(opt.Seed)
	pool := s.Space().RandomDistinct(rng, 120)
	pool = append(pool, s.Space().EqualSplit())

	type pair struct {
		dT, dF float64
		a, b   int
	}
	snapshot := func() []pair {
		ts := make([]float64, len(pool))
		fs := make([]float64, len(pool))
		// Scoring is a pure read of the simulator's current phase state,
		// so the pool fans out; forEach writes index-addressed slots and
		// scoreConfig never fails, making the result order-independent.
		_ = forEach(opt.Workers, len(pool), func(i int) error {
			ts[i], fs[i] = scoreConfig(s, pool[i], met)
			return nil
		})
		var out []pair
		for i := 0; i < len(pool); i++ {
			for j := i + 1; j < len(pool); j++ {
				dT := (ts[j] - ts[i]) / math.Max(ts[i], 1e-9) * 100
				dF := (fs[j] - fs[i]) / math.Max(fs[i], 1e-9) * 100
				out = append(out, pair{dT: dT, dF: dF, a: i, b: j})
			}
		}
		return out
	}

	pairs1 := snapshot()
	for i := 0; i < opt.Ticks/2; i++ {
		s.Step()
	}
	pairs2 := snapshot()

	// Find the pair-of-pairs with closest throughput deltas (both
	// meaningful, >2%) and the most opposite fairness deltas.
	bestScore := math.Inf(-1)
	var p1, p2 pair
	for _, x := range pairs1 {
		if x.dT < 2 || x.dF >= 0 {
			continue // want: throughput up, fairness down at Δt1
		}
		for _, y := range pairs2 {
			if y.dT < 2 || y.dF <= 0 {
				continue // want: throughput up, fairness ALSO up at Δt2
			}
			score := -math.Abs(x.dT-y.dT) + math.Min(-x.dF, y.dF)
			if score > bestScore {
				bestScore = score
				p1, p2 = x, y
			}
		}
	}
	rep := &Report{ID: "fig3", Title: "Re-balancing opportunity: same ΔT, opposite ΔF at two instants (PARSEC mix 0)"}
	if math.IsInf(bestScore, -1) {
		rep.Notes = append(rep.Notes, "no qualifying configuration pairs found at this scale; increase Ticks")
		return rep, nil
	}
	tbl := trace.NewTable("instant", "config pair", "Δthroughput", "Δfairness")
	tbl.AddRow("Δt1", fmt.Sprintf("C%d→C%d", p1.a, p1.b), fmt.Sprintf("%+.1f%%", p1.dT), fmt.Sprintf("%+.1f%%", p1.dF))
	tbl.AddRow("Δt2", fmt.Sprintf("C%d→C%d", p2.a, p2.b), fmt.Sprintf("%+.1f%%", p2.dT), fmt.Sprintf("%+.1f%%", p2.dF))
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"at Δt1 the throughput gain costs fairness; at Δt2 a similar throughput gain also improves fairness",
		"prioritizing throughput at Δt2 and fairness at Δt1 yields a net gain — Observation 3 of the paper")
	return rep, nil
}
