// Package harness runs resource-partitioning policies on the simulated
// testbed and reproduces every figure of the SATORI paper's evaluation
// (the per-figure drivers live in the experiments*.go files; DESIGN.md §5
// is the index).
//
// A Run co-locates one job mix on one machine under one policy for a
// fixed duration, sampling at 10 Hz, refreshing isolated baselines on the
// equalization schedule of Algorithm 1, and recording per-tick normalized
// throughput, fairness and (optionally) the distance to the Balanced
// Oracle configuration. Results are reported as % of the Balanced Oracle
// exactly as the paper presents them.
package harness

import (
	"fmt"
	"math"

	"satori/internal/control"
	"satori/internal/core"
	"satori/internal/metrics"
	"satori/internal/policies/oracle"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/trace"
)

// MetricSet selects the objective formulas for an experiment. The zero
// value holds the Default* sentinels, which resolve to the paper's
// evaluation pairing (sum-of-IPS + Jain's index, Sec. IV) — the same
// defaults DefaultMetrics returns explicitly. An explicit
// GeoMeanSpeedup/JainIndex request is distinct from the zero value and
// is honored as-is.
type MetricSet struct {
	Throughput metrics.ThroughputMetric
	Fairness   metrics.FairnessMetric
}

// PolicyFactory builds a policy for a prepared platform. Oracle policies
// use the platform's simulator for noise-free model access. Factories
// must be safe to call from concurrent runs: every call builds a fresh
// policy bound to that run's platform and seed, and any captured options
// are copied, never mutated (the harness fans runs out over a worker
// pool; see parallel.go).
type PolicyFactory func(p *rdt.SimPlatform, seed uint64) (policy.Policy, error)

// RunSpec fully describes one run.
type RunSpec struct {
	// Machine defaults to sim.DefaultMachine().
	Machine *sim.MachineSpec
	// Profiles are the co-located jobs.
	Profiles []*sim.Profile
	// Policy builds the strategy under test.
	Policy PolicyFactory
	// Ticks is the run length in 100 ms intervals (default 600 = 60 s).
	Ticks int
	// Seed makes the run reproducible.
	Seed uint64
	// NoiseSigma forwards to sim.Options (0 = default 2%).
	NoiseSigma float64
	// Metrics selects objective formulas.
	Metrics MetricSet
	// BaselineResetTicks is the isolated-baseline refresh period
	// (default 100 ticks = 10 s, the equalization period).
	BaselineResetTicks int
	// TrackOracleDistance additionally computes, each tick, the
	// Balanced-Oracle configuration for the current phase state and
	// records the Euclidean distance of the applied configuration to
	// it (Fig. 15). Costs an oracle search per phase change.
	TrackOracleDistance bool
	// OracleOptions tunes the reference searcher when
	// TrackOracleDistance is set.
	OracleOptions oracle.Options
	// KeepTrace retains the full per-tick series in the result.
	KeepTrace bool
	// Faults, when non-nil, wraps the platform in a deterministic fault
	// injector running this script (resilience experiments). Nil leaves
	// the platform bare and the run byte-identical to builds without
	// this field.
	Faults *rdt.FaultScript
}

// Result aggregates one run.
type Result struct {
	// PolicyName is the policy's self-reported name.
	PolicyName string
	// Ticks is the number of completed intervals.
	Ticks int
	// MeanThroughput and MeanFairness are the run averages of the
	// normalized scores — the quantities the paper averages "over the
	// runtime of a job mix".
	MeanThroughput float64
	// MeanFairness is the run-average normalized fairness.
	MeanFairness float64
	// MeanObjective is the run average of 0.5·T + 0.5·F.
	MeanObjective float64
	// MeanWorstSpeedup is the run average of the slowest job's speedup
	// (Fig. 9).
	MeanWorstSpeedup float64
	// StdThroughput and StdFairness are the tick-to-tick standard
	// deviations of the normalized scores (Fig. 18's variation).
	StdThroughput float64
	StdFairness   float64
	// MeanOracleDistance is the run-average configuration distance to
	// the Balanced Oracle (only when TrackOracleDistance).
	MeanOracleDistance float64
	// MedianOracleDistance is the run-median of the same distance —
	// robust to a BO policy's sparse exploration probes.
	MedianOracleDistance float64
	// Applies is how many configuration changes the platform accepted.
	Applies int
	// RejectedApplies is how many of the policy's decisions the platform
	// refused (invalid or non-compilable configurations). Before this
	// counter, a policy emitting garbage was indistinguishable from one
	// that deliberately held the current configuration.
	RejectedApplies int
	// TransientResets counts periodic baseline refreshes that failed
	// transiently (rdt.IsTransient) and were survived: the stale
	// baselines stayed in force until the next boundary. A fatal reset
	// failure still aborts the run.
	TransientResets int
	// Trace holds per-tick columns when KeepTrace was set:
	// tick, time, throughput, fairness, objective, worst, and — when
	// the policy exposes them — wT, wF, wTE, wFE, wTP, wFP, satobj,
	// proxychange, and oracledist when tracked.
	Trace *trace.Series
}

// weightReporter is implemented by the SATORI engine for Fig. 14/17/19
// instrumentation.
type weightReporter interface {
	LastWeights() core.Weights
	LastObjective() float64
	ProxyChange() float64
}

// Run executes one policy run: it builds the simulated platform, then
// drives internal/control's backend-agnostic tick loop (the same loop
// behind satori.Session and the fleet's nodes), layering the
// harness-only instrumentation — worst-job speedup, Balanced-Oracle
// distance, and the per-tick trace — on top of each Status.
func Run(spec RunSpec) (*Result, error) {
	machine := sim.DefaultMachine()
	if spec.Machine != nil {
		machine = *spec.Machine
	}
	if spec.Ticks <= 0 {
		spec.Ticks = 600
	}
	if spec.Policy == nil {
		return nil, fmt.Errorf("harness: RunSpec.Policy is required")
	}
	simulator, err := sim.New(machine, spec.Profiles, sim.Options{Seed: spec.Seed, NoiseSigma: spec.NoiseSigma})
	if err != nil {
		return nil, err
	}
	platform, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		return nil, err
	}
	var loopPlatform rdt.Platform = platform
	if spec.Faults != nil {
		loopPlatform, err = rdt.NewFaultInjector(platform, *spec.Faults)
		if err != nil {
			return nil, err
		}
	}
	loop, err := control.New(control.Options{
		Platform:           loopPlatform,
		Policy:             func(rdt.Platform) (policy.Policy, error) { return spec.Policy(platform, spec.Seed) },
		Throughput:         spec.Metrics.Throughput,
		Fairness:           spec.Metrics.Fairness,
		BaselineResetTicks: spec.BaselineResetTicks,
	})
	if err != nil {
		return nil, err
	}
	pol := loop.Policy()

	var refSearcher *oracle.Searcher
	refCache := map[string]resource.Config{}
	if spec.TrackOracleDistance {
		oopt := spec.OracleOptions
		oopt.Seed = spec.Seed ^ 0xFACE
		oopt.ThroughputMetric = spec.Metrics.Throughput
		oopt.FairnessMetric = spec.Metrics.Fairness
		refSearcher = oracle.NewSearcher(simulator, oopt)
	}

	columns := []string{"tick", "time", "throughput", "fairness", "objective", "worst"}
	wr, hasWeights := pol.(weightReporter)
	if hasWeights {
		columns = append(columns, "wT", "wF", "wTE", "wFE", "wTP", "wFP", "eqfrac", "satobj", "proxychange")
	}
	if spec.TrackOracleDistance {
		columns = append(columns, "oracledist")
	}
	var series *trace.Series
	if spec.KeepTrace {
		series = trace.NewSeries(columns...)
	}

	res := &Result{PolicyName: pol.Name()}
	var accWorst, accDist stats.Welford
	var distSamples []float64

	for tick := 1; tick <= spec.Ticks; tick++ {
		st, err := loop.Step()
		if err != nil {
			return nil, err
		}
		// A transient baseline-refresh failure is survivable: the stale
		// baselines stay in force and the refresh retries next boundary.
		// Only a fatal (non-retry-safe) failure aborts the experiment.
		if st.ResetErr != nil && !rdt.IsTransient(st.ResetErr) {
			return nil, st.ResetErr
		}
		obj := 0.5*st.Throughput + 0.5*st.Fairness
		worst := metrics.WorstSpeedup(st.IPS, st.Isolated)
		accWorst.Add(worst)

		var dist float64
		if spec.TrackOracleDistance {
			key := phaseKey(simulator)
			ref, ok := refCache[key]
			if !ok {
				// Cache only successful searches: a failed search
				// returns the zero-value Config (objective -Inf), and
				// caching it would silently zero MeanOracleDistance
				// for this phase for the rest of the run. Leaving the
				// key absent retries on the next tick instead.
				if c, v := refSearcher.Search(0.5, 0.5); c.Alloc != nil && !math.IsInf(v, -1) {
					ref = c
					refCache[key] = ref
				}
			}
			if ref.Alloc != nil {
				dist = resource.Distance(st.Config, ref)
				accDist.Add(dist)
				distSamples = append(distSamples, dist)
			}
		}

		if series != nil {
			row := []float64{float64(tick), st.Time, st.Throughput, st.Fairness, obj, worst}
			if hasWeights {
				w := wr.LastWeights()
				row = append(row, w.T, w.F, w.TE, w.FE, w.TP, w.FP, w.EqFrac,
					wr.LastObjective(), wr.ProxyChange())
			}
			if spec.TrackOracleDistance {
				row = append(row, dist)
			}
			series.Add(row...)
		}
	}

	sum := loop.Summary()
	res.Ticks = spec.Ticks
	res.MeanThroughput = sum.MeanThroughput
	res.MeanFairness = sum.MeanFairness
	res.MeanObjective = sum.MeanObjective
	res.MeanWorstSpeedup = accWorst.Mean()
	res.StdThroughput = sum.StdThroughput
	res.StdFairness = sum.StdFairness
	res.MeanOracleDistance = accDist.Mean()
	res.MedianOracleDistance = stats.Median(distSamples)
	res.Applies = simulator.Applies()
	res.RejectedApplies = sum.RejectedApplies
	res.TransientResets = sum.ResetErrs
	res.Trace = series
	return res, nil
}

// phaseKey mirrors the oracle's joint-phase cache key.
func phaseKey(s *sim.Simulator) string {
	key := ""
	for j := 0; j < s.NumJobs(); j++ {
		key += s.PhaseName(j) + "|"
	}
	return key
}
