package harness

import (
	"reflect"
	"testing"

	"satori/internal/core"
	"satori/internal/workloads"
)

func cachedSuiteSpec(t *testing.T, cache *CellCache) SuiteSpec {
	t.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	return SuiteSpec{
		Mixes: mixes[:2],
		Policies: []NamedFactory{
			{Name: "satori", Factory: SatoriFactory(core.Options{})},
			{Name: "random", Factory: RandomFactory()},
		},
		Base:  DefaultSuiteBase(3, 80),
		Cache: cache,
	}
}

// TestCellCacheHitsAreByteIdentical is the cache contract: a warm-cache
// suite returns exactly the results of the uncached run — every float
// round-trips through JSON bit-identically — and the second pass serves
// every cell from disk.
func TestCellCacheHitsAreByteIdentical(t *testing.T) {
	cache, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := RunSuite(cachedSuiteSpec(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunSuite(cachedSuiteSpec(t, cache))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := cache.Stats()
	if hits != 0 || misses != 6 { // 2 mixes × (oracle + 2 policies)
		t.Fatalf("cold pass: %d hits, %d misses, want 0/6", hits, misses)
	}
	warm, err := RunSuite(cachedSuiteSpec(t, cache))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ = cache.Stats()
	if hits != 6 || misses != 6 {
		t.Fatalf("warm pass: %d hits, %d misses, want 6/6", hits, misses)
	}
	for _, name := range []string{"satori", "random"} {
		for i := range uncached.Scores[name] {
			u, c, w := uncached.Scores[name][i], cold.Scores[name][i], warm.Scores[name][i]
			if !reflect.DeepEqual(u.Raw, c.Raw) || !reflect.DeepEqual(u.Raw, w.Raw) {
				t.Fatalf("%s mix %d: cached result diverged:\nuncached %+v\ncold     %+v\nwarm     %+v",
					name, i, u.Raw, c.Raw, w.Raw)
			}
			if u.PctThroughput != w.PctThroughput || u.PctFairness != w.PctFairness {
				t.Fatalf("%s mix %d: normalized scores diverged", name, i)
			}
		}
	}
}

// TestCellCacheKeyDiscriminates: any field that changes a run's outcome
// must change its key.
func TestCellCacheKeyDiscriminates(t *testing.T) {
	cache, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultSuiteBase(3, 80)
	base.Profiles = mixes[0].Profiles
	k0, err := cache.key(base, "policy:satori")
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(RunSpec) RunSpec{
		"seed":    func(r RunSpec) RunSpec { r.Seed++; return r },
		"ticks":   func(r RunSpec) RunSpec { r.Ticks++; return r },
		"noise":   func(r RunSpec) RunSpec { r.NoiseSigma = 0.05; return r },
		"mix":     func(r RunSpec) RunSpec { r.Profiles = mixes[1].Profiles; return r },
		"machine": func(r RunSpec) RunSpec { m := *r.Machine; m.Cores++; r.Machine = &m; return r },
	}
	for what, mutate := range variants {
		k, err := cache.key(mutate(base), "policy:satori")
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Errorf("changing %s left the cell key unchanged", what)
		}
	}
	if k, _ := cache.key(base, "policy:random"); k == k0 {
		t.Error("changing the policy identity left the cell key unchanged")
	}
	if k, _ := cache.key(base, "policy:satori"); k != k0 {
		t.Error("identical specs hashed to different keys")
	}
}

// TestCellCacheSkipsTraceCells: KeepTrace cells bypass the cache — the
// per-tick trace is not serialized, so serving them from disk would
// silently drop it.
func TestCellCacheSkipsTraceCells(t *testing.T) {
	cache, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultSuiteBase(3, 40)
	spec.Profiles = mixes[0].Profiles
	spec.Policy = RandomFactory()
	spec.KeepTrace = true
	for i := 0; i < 2; i++ {
		res, err := cache.Run(spec, "policy:random")
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatal("KeepTrace run lost its trace")
		}
	}
	hits, misses, skips := cache.Stats()
	if hits != 0 || misses != 0 || skips != 2 {
		t.Fatalf("stats %d/%d/%d, want 0 hits, 0 misses, 2 skips", hits, misses, skips)
	}
}
