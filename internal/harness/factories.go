package harness

import (
	"satori/internal/cluster"
	"satori/internal/core"
	"satori/internal/policies/copart"
	"satori/internal/policies/dcat"
	"satori/internal/policies/oracle"
	"satori/internal/policies/parties"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
)

// SatoriFactory builds full SATORI (or a variant, via opt).
func SatoriFactory(opt core.Options) PolicyFactory {
	return func(p *rdt.SimPlatform, seed uint64) (policy.Policy, error) {
		o := opt
		if o.Seed == 0 {
			o.Seed = seed
		}
		return core.New(p.Space(), o)
	}
}

// SatoriStaticFactory builds the no-dynamic-prioritization variant with a
// fixed throughput weight (0.5 for the Fig. 14(b)/17/18 comparison, 1 or
// 0 for the single-goal Throughput/Fairness SATORI variants).
func SatoriStaticFactory(wT float64) PolicyFactory {
	return SatoriFactory(core.Options{
		Scheduler:   core.SchedulerOptions{Mode: core.WeightsStatic},
		StaticWT:    wT,
		StaticWTSet: true,
	})
}

// RandomFactory builds the Random Search baseline.
func RandomFactory() PolicyFactory {
	return func(p *rdt.SimPlatform, seed uint64) (policy.Policy, error) {
		return policy.NewRandom(p.Space(), seed^0xAD03), nil
	}
}

// StaticFactory builds the hold-equal-partition baseline.
func StaticFactory() PolicyFactory {
	return func(*rdt.SimPlatform, uint64) (policy.Policy, error) {
		return policy.Static{}, nil
	}
}

// DCATFactory builds the dCAT baseline.
func DCATFactory() PolicyFactory {
	return func(p *rdt.SimPlatform, _ uint64) (policy.Policy, error) {
		return dcat.New(p.Space(), dcat.Options{})
	}
}

// CoPartFactory builds the CoPart baseline.
func CoPartFactory() PolicyFactory {
	return func(p *rdt.SimPlatform, _ uint64) (policy.Policy, error) {
		return copart.New(p.Space(), copart.Options{})
	}
}

// PARTIESFactory builds the adapted-PARTIES baseline.
func PARTIESFactory() PolicyFactory {
	return func(p *rdt.SimPlatform, _ uint64) (policy.Policy, error) {
		return parties.New(p.Space(), parties.Options{}), nil
	}
}

// OracleFactory builds a brute-force oracle of the given goal.
func OracleFactory(goal oracle.Goal, opt oracle.Options) PolicyFactory {
	return func(p *rdt.SimPlatform, seed uint64) (policy.Policy, error) {
		o := opt
		if o.Seed == 0 {
			o.Seed = seed ^ 0x0C1E
		}
		return oracle.New(goal, p.Simulator(), o), nil
	}
}

// CLITEFactory builds a CLITE-style policy (Patel & Tiwari, HPCA'20 [68]
// in the paper's numbering): the authors' earlier BO-based partitioner
// for latency-critical co-location, which in SATORI's problem setting
// amounts to the same BO engine with a static objective — no dynamic goal
// prioritization. Sec. VI reports it performs like PARTIES here and
// underperforms SATORI by a similar margin.
func CLITEFactory() PolicyFactory {
	return SatoriFactory(core.Options{
		Scheduler:   core.SchedulerOptions{Mode: core.WeightsStatic},
		StaticWT:    0.5,
		StaticWTSet: true,
		Name:        "clite",
	})
}

// ClusteredSatoriFactory builds SATORI behind the cluster indirection:
// jobs are classified online into at most k clusters
// (cluster.Classifier) and the BO engine searches the reduced cluster
// space instead of the per-job space. With k ≥ jobs the partitioner is
// draw-identical to plain SATORI; with jobs ≫ k it fits hardware CLOS
// budgets and shrinks the search dimension. The platform's Grouper
// capability is wired so the simulator (or a resctrl tree) holds one
// control group per cluster.
func ClusteredSatoriFactory(k int, opt core.Options) PolicyFactory {
	return func(p *rdt.SimPlatform, seed uint64) (policy.Policy, error) {
		o := opt
		if o.Seed == 0 {
			o.Seed = seed
		}
		return cluster.New(p.Space(), cluster.Options{
			K:       k,
			Inner:   func(space *resource.Space) (policy.Policy, error) { return core.New(space, o) },
			Grouper: p,
		})
	}
}

// LFOCFactory builds the standalone LFOC baseline: the same online
// classifier, but allocation computed directly from the classes with no
// search (cluster.LFOC) — the comparison point that isolates what
// cluster-level BO search adds over clustering alone.
func LFOCFactory(k int) PolicyFactory {
	return func(p *rdt.SimPlatform, _ uint64) (policy.Policy, error) {
		return cluster.NewLFOC(p.Space(), cluster.LFOCOptions{K: k, Grouper: p})
	}
}

// NamedFactory pairs a display name with a factory, in the order results
// tables list policies.
type NamedFactory struct {
	Name    string
	Factory PolicyFactory
}

// CompetingPolicies returns the paper's Fig. 7 line-up: Random, dCAT,
// CoPart, PARTIES, SATORI (the Balanced Oracle reference is run
// separately as the normalization ceiling). The factories come from the
// shared name registry so every front-end builds identical policies.
func CompetingPolicies() []NamedFactory {
	out := make([]NamedFactory, 0, 5)
	for _, name := range []string{"random", "dcat", "copart", "parties", "satori"} {
		f, err := PolicyByName(name)
		if err != nil {
			panic(err) // unreachable: the names above are registered statically
		}
		out = append(out, NamedFactory{Name: name, Factory: f})
	}
	return out
}

// SatoriOnly restricts SATORI to a subset of resources (the Sec. V
// source-of-benefit ablation).
func SatoriOnly(kinds ...resource.Kind) PolicyFactory {
	return SatoriFactory(core.Options{Managed: kinds})
}
