package harness

import (
	"fmt"
	"sort"

	"satori/internal/metrics"
	"satori/internal/policies/oracle"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/workloads"
)

// MixScore is one policy's result on one job mix, normalized by the
// Balanced Oracle run on the same mix — the "% of Balanced Oracle"
// presentation used throughout Sec. V.
type MixScore struct {
	// MixIndex identifies the job mix.
	MixIndex int
	// MixNames are the co-located benchmarks.
	MixNames []string
	// PctThroughput and PctFairness are the policy's run-average
	// normalized throughput/fairness as a fraction of the Balanced
	// Oracle's (1.0 = oracle-equal).
	PctThroughput float64
	PctFairness   float64
	// PctWorst is the worst job's speedup as a fraction of the
	// oracle's worst-job speedup (Fig. 9).
	PctWorst float64
	// Raw is the underlying result.
	Raw *Result
}

// SuiteResult holds every policy's scores across a mix set.
type SuiteResult struct {
	// Policies preserves the requested policy order.
	Policies []string
	// Scores maps policy name to per-mix scores (mix order).
	Scores map[string][]MixScore
	// OracleRaw holds the Balanced Oracle reference results per mix.
	OracleRaw []*Result
}

// SuiteSpec describes a mix-set experiment.
type SuiteSpec struct {
	// Mixes are the job mixes to run (e.g. workloads.PaperMixes).
	Mixes []workloads.Mix
	// Policies are the strategies under test.
	Policies []NamedFactory
	// Base carries shared run parameters (Ticks, Seed, Metrics,
	// NoiseSigma, Machine...). Policy and Profiles are overwritten.
	Base RunSpec
	// OracleOptions tunes the Balanced Oracle reference runs.
	OracleOptions oracle.Options
	// Workers bounds the fan-out over the suite's independent run
	// units (every mix × policy cell plus the per-mix oracle
	// reference): 0 = one worker per CPU, 1 = serial. Results are
	// byte-identical to the serial path for any worker count.
	Workers int
	// Cache, when non-nil, memoizes each cell's Result on disk keyed by
	// a content hash of the cell's full specification (see CellCache).
	// Cache hits are bit-identical to the runs they replace, so cached
	// and uncached suites produce the same bytes. Opt-in: golden
	// regeneration and tests run uncached by default.
	Cache *CellCache
}

// RunSuite runs every policy on every mix plus the Balanced Oracle
// reference, and returns oracle-normalized scores.
func RunSuite(spec SuiteSpec) (*SuiteResult, error) {
	if len(spec.Mixes) == 0 {
		return nil, fmt.Errorf("harness: no mixes to run")
	}
	if len(spec.Policies) == 0 {
		return nil, fmt.Errorf("harness: no policies to run")
	}
	out := &SuiteResult{Scores: make(map[string][]MixScore)}
	for _, nf := range spec.Policies {
		out.Policies = append(out.Policies, nf.Name)
	}
	// The oracle must optimize the same objective formulas the
	// experiment scores with.
	oracleOpts := spec.OracleOptions
	oracleOpts.ThroughputMetric = spec.Base.Metrics.Throughput
	oracleOpts.FairnessMetric = spec.Base.Metrics.Fairness

	// Every run unit — the Balanced Oracle reference plus each policy,
	// per mix — is independent and reproducible from its own seed, so
	// the units fan out over a bounded worker pool. cellSpec derives
	// the exact RunSpec the serial loop used, and results land in
	// index-addressed slots so the aggregation below walks mixes and
	// policies in declared order regardless of completion order.
	cellSpec := func(mix workloads.Mix, factory PolicyFactory) RunSpec {
		rs := spec.Base
		rs.Profiles = mix.Profiles
		rs.Seed = spec.Base.Seed ^ uint64(mix.Index)*0x9E37
		rs.Policy = factory
		return rs
	}
	runCell := func(rs RunSpec, policyID string) (*Result, error) {
		if spec.Cache != nil {
			return spec.Cache.Run(rs, policyID)
		}
		return Run(rs)
	}
	// The oracle reference's identity must capture its search options —
	// two suites with different oracle tunings are different cells.
	oracleID := fmt.Sprintf("oracle:balanced|%+v", oracleOpts)
	nPol := len(spec.Policies)
	perMix := nPol + 1 // unit 0 of each mix is the oracle reference
	results := make([]*Result, len(spec.Mixes)*perMix)
	err := forEach(spec.Workers, len(results), func(u int) error {
		mix := spec.Mixes[u/perMix]
		var err error
		if p := u%perMix - 1; p < 0 {
			results[u], err = runCell(cellSpec(mix, OracleFactory(oracle.Balanced, oracleOpts)), oracleID)
			if err != nil {
				return fmt.Errorf("harness: oracle on mix %d: %w", mix.Index, err)
			}
		} else {
			results[u], err = runCell(cellSpec(mix, spec.Policies[p].Factory), "policy:"+spec.Policies[p].Name)
			if err != nil {
				return fmt.Errorf("harness: %s on mix %d: %w", spec.Policies[p].Name, mix.Index, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for m, mix := range spec.Mixes {
		oracleRes := results[m*perMix]
		out.OracleRaw = append(out.OracleRaw, oracleRes)
		for p, nf := range spec.Policies {
			res := results[m*perMix+1+p]
			out.Scores[nf.Name] = append(out.Scores[nf.Name], MixScore{
				MixIndex:      mix.Index,
				MixNames:      mix.Names(),
				PctThroughput: ratio(res.MeanThroughput, oracleRes.MeanThroughput),
				PctFairness:   ratio(res.MeanFairness, oracleRes.MeanFairness),
				PctWorst:      ratio(res.MeanWorstSpeedup, oracleRes.MeanWorstSpeedup),
				Raw:           res,
			})
		}
	}
	return out, nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// Mean aggregates one policy's scores across mixes.
type Mean struct {
	PctThroughput, PctFairness, PctWorst float64
}

// Means returns the across-mix averages per policy (Fig. 7/12/13).
func (s *SuiteResult) Means() map[string]Mean {
	out := make(map[string]Mean, len(s.Policies))
	for name, scores := range s.Scores {
		var t, f, w []float64
		for _, sc := range scores {
			t = append(t, sc.PctThroughput)
			f = append(f, sc.PctFairness)
			w = append(w, sc.PctWorst)
		}
		out[name] = Mean{
			PctThroughput: stats.Mean(t),
			PctFairness:   stats.Mean(f),
			PctWorst:      stats.Mean(w),
		}
	}
	return out
}

// SortedByPolicy returns one policy's mix scores sorted ascending by the
// chosen key ("throughput" or "fairness") — the presentation of
// Figs. 8/10/11, which sort mixes by SATORI's performance.
func (s *SuiteResult) SortedByPolicy(name, key string) []MixScore {
	scores := append([]MixScore(nil), s.Scores[name]...)
	sort.Slice(scores, func(i, j int) bool {
		if key == "fairness" {
			return scores[i].PctFairness < scores[j].PctFairness
		}
		return scores[i].PctThroughput < scores[j].PctThroughput
	})
	return scores
}

// MixOrder returns mix indices sorted by the named policy's throughput
// score, so other policies' rows can be presented in the same order.
func (s *SuiteResult) MixOrder(name string) []int {
	scores := s.SortedByPolicy(name, "throughput")
	out := make([]int, len(scores))
	for i, sc := range scores {
		out[i] = sc.MixIndex
	}
	return out
}

// ScoreFor returns the named policy's score on a mix index.
func (s *SuiteResult) ScoreFor(name string, mixIndex int) (MixScore, bool) {
	for _, sc := range s.Scores[name] {
		if sc.MixIndex == mixIndex {
			return sc, true
		}
	}
	return MixScore{}, false
}

// DefaultSuiteBase returns the standard run parameters used by the
// figure reproductions: 60 s runs at 10 Hz on the default machine with
// the paper's default metrics (sum-of-IPS normalized throughput +
// Jain's index, Sec. IV; the speedup geomean and 1−CoV alternatives are
// available via Metrics).
func DefaultSuiteBase(seed uint64, ticks int) RunSpec {
	if ticks <= 0 {
		ticks = 600
	}
	m := sim.DefaultMachine()
	return RunSpec{
		Machine: &m,
		Ticks:   ticks,
		Seed:    seed,
		Metrics: DefaultMetrics(),
	}
}

// DefaultMetrics returns the paper's default objective pairing (Sec. IV):
// sum of instructions per second (normalized by the isolated sum) for
// throughput and Jain's index for fairness.
func DefaultMetrics() MetricSet {
	return MetricSet{Throughput: metrics.SumIPS, Fairness: metrics.JainIndex}
}
