package harness

import (
	"fmt"
	"time"

	"satori/internal/core"
	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// RunScalability reproduces the Sec. V scalability result: the %-point
// gap between SATORI and PARTIES grows monotonically as the co-location
// degree rises from 3 to 7 (paper: 8/11/13/13/15 %-points).
func RunScalability(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	profiles := workloads.PARSEC()
	tbl := trace.NewTable("co-located jobs", "satori T", "parties T", "ΔT pts", "satori F", "parties F", "ΔF pts")
	var gaps []float64
	maxDegree := 7
	if opt.MixLimit > 0 && opt.MixLimit < 3 {
		maxDegree = 5 // smoke-test scale
	}
	var degrees []int
	for degree := 3; degree <= maxDegree; degree++ {
		degrees = append(degrees, degree)
	}
	chosenPerDegree := make([][]workloads.Mix, len(degrees))
	for i, degree := range degrees {
		mixes, err := workloads.Mixes(profiles, degree)
		if err != nil {
			return nil, err
		}
		// A handful of mixes per degree keeps the sweep tractable
		// while averaging out mix idiosyncrasies.
		limit := 3
		if len(mixes) < limit {
			limit = len(mixes)
		}
		stride := len(mixes) / limit
		var chosen []workloads.Mix
		for k := 0; k < limit; k++ {
			chosen = append(chosen, mixes[k*stride])
		}
		chosenPerDegree[i] = chosen
	}
	// Each degree's suite is independent; fan the sweep out and render
	// the rows in degree order afterwards.
	means := make([]map[string]Mean, len(degrees))
	outer, inner := splitWorkers(opt.Workers, len(degrees))
	err := forEach(outer, len(degrees), func(i int) error {
		suite, err := RunSuite(SuiteSpec{
			Mixes: chosenPerDegree[i],
			Policies: []NamedFactory{
				{Name: "satori", Factory: SatoriFactory(core.Options{})},
				{Name: "parties", Factory: PARTIESFactory()},
			},
			Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
			Workers: inner,
		})
		if err != nil {
			return err
		}
		means[i] = suite.Means()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, degree := range degrees {
		m := means[i]
		dT := (m["satori"].PctThroughput - m["parties"].PctThroughput) * 100
		dF := (m["satori"].PctFairness - m["parties"].PctFairness) * 100
		gaps = append(gaps, (dT+dF)/2)
		tbl.AddRow(fmt.Sprintf("%d", degree),
			trace.Pct(m["satori"].PctThroughput), trace.Pct(m["parties"].PctThroughput), fmt.Sprintf("%+.1f", dT),
			trace.Pct(m["satori"].PctFairness), trace.Pct(m["parties"].PctFairness), fmt.Sprintf("%+.1f", dF))
	}
	rep := &Report{ID: "scalability", Title: "SATORI vs PARTIES as co-location degree grows (PARSEC)"}
	rep.Tables = append(rep.Tables, tbl)
	grew := len(gaps) > 1 && gaps[len(gaps)-1] > gaps[0]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("combined gap trend (first %.1f -> last %.1f %%-points); paper: 8/11/13/13/15 for degrees 3-7, monotonically increasing: %v",
			firstOf(gaps), lastOf(gaps), grew),
		"larger spaces have more local maxima; gradient descent (PARTIES) gets stuck more often than SATORI's joint BO search")
	return rep, nil
}

func firstOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

func lastOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

// RunAblationResources reproduces the Sec. V source-of-benefit study:
// SATORI restricted to dCAT's single resource (LLC ways) still beats
// dCAT, and restricted to CoPart's two resources (LLC + memory
// bandwidth) still beats CoPart.
func RunAblationResources(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(5)]
	suite, err := RunSuite(SuiteSpec{
		Mixes: mixes,
		Policies: []NamedFactory{
			{Name: "dcat", Factory: DCATFactory()},
			{Name: "satori-llc", Factory: SatoriFactory(core.Options{
				Managed: []resource.Kind{resource.LLCWays}, Name: "satori-llc"})},
			{Name: "copart", Factory: CoPartFactory()},
			{Name: "satori-llc+bw", Factory: SatoriFactory(core.Options{
				Managed: []resource.Kind{resource.LLCWays, resource.MemBW}, Name: "satori-llc+bw"})},
			{Name: "satori", Factory: SatoriFactory(core.Options{})},
		},
		Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-resources", Title: "SATORI on restricted resource sets vs the baselines that manage them"}
	rep.Tables = append(rep.Tables, meansTable(suite))
	m := suite.Means()
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("satori-llc vs dcat: %+.1f T pts, %+.1f F pts (paper: +4/+5)",
			(m["satori-llc"].PctThroughput-m["dcat"].PctThroughput)*100,
			(m["satori-llc"].PctFairness-m["dcat"].PctFairness)*100),
		fmt.Sprintf("satori-llc+bw vs copart: %+.1f T pts, %+.1f F pts (paper: +7/+4)",
			(m["satori-llc+bw"].PctThroughput-m["copart"].PctThroughput)*100,
			(m["satori-llc+bw"].PctFairness-m["copart"].PctFairness)*100),
		"SATORI's benefits are not merely from operating on more resources")
	return rep, nil
}

// RunCLITE reproduces the Sec. VI related-work comparison: CLITE — the
// authors' earlier BO partitioner, which lacks dynamic goal
// prioritization — lands in PARTIES territory and below SATORI when
// co-optimizing throughput and fairness for throughput-oriented jobs.
func RunCLITE(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(8)]
	suite, err := RunSuite(SuiteSpec{
		Mixes: mixes,
		Policies: []NamedFactory{
			{Name: "parties", Factory: PARTIESFactory()},
			{Name: "clite", Factory: CLITEFactory()},
			{Name: "satori", Factory: SatoriFactory(core.Options{})},
		},
		Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "clite", Title: "CLITE (BO without dynamic prioritization) vs PARTIES and SATORI"}
	rep.Tables = append(rep.Tables, meansTable(suite))
	rep.Notes = append(rep.Notes,
		"paper (Sec. VI): applied to SATORI's problem, CLITE performs similar to PARTIES and underperforms SATORI by a similar margin — neither actively controls the two competing objectives")
	return rep, nil
}

// RunAblationInit reproduces the Sec. V initial-design note: seeding with
// "good" (equal-split, low-imbalance) configurations vs random starts
// changes final quality by a small margin (paper: 1-3%).
func RunAblationInit(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(5)]
	suite, err := RunSuite(SuiteSpec{
		Mixes: mixes,
		Policies: []NamedFactory{
			{Name: "good-init", Factory: SatoriFactory(core.Options{Name: "good-init"})},
			{Name: "random-init", Factory: SatoriFactory(core.Options{RandomInit: true, Name: "random-init"})},
		},
		Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-init", Title: "Good (S_init) vs random initial configuration sets"}
	rep.Tables = append(rep.Tables, meansTable(suite))
	m := suite.Means()
	rep.Notes = append(rep.Notes, fmt.Sprintf("good-init advantage: %+.1f T pts, %+.1f F pts (paper: 1-3%% outcome variation)",
		(m["good-init"].PctThroughput-m["random-init"].PctThroughput)*100,
		(m["good-init"].PctFairness-m["random-init"].PctFairness)*100))
	return rep, nil
}

// RunAblationWindow studies the GP observation-window size — a design
// choice DESIGN.md calls out: small windows adapt faster to phase changes
// but model less of the space; large windows model stale phases.
func RunAblationWindow(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(3)]
	var policies []NamedFactory
	for _, w := range []int{16, 64, 256} {
		w := w
		policies = append(policies, NamedFactory{
			Name:    fmt.Sprintf("window-%d", w),
			Factory: SatoriFactory(core.Options{Window: w, Name: fmt.Sprintf("window-%d", w)}),
		})
	}
	suite, err := RunSuite(SuiteSpec{Mixes: mixes, Policies: policies, Base: DefaultSuiteBase(opt.Seed, opt.Ticks), Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-window", Title: "Proxy-model sliding-window size"}
	rep.Tables = append(rep.Tables, meansTable(suite))
	return rep, nil
}

// RunAblationBounds studies the Sec. III-C weight bounds: removing the
// [0.25, 0.75] clamp lets prioritization swing to extremes, which the
// paper argues destabilizes the moving-goal-post BO process. The
// unbounded arm uses the true [0, 1] range — possible since
// SchedulerOptions grew the WeightFloorSet sentinel; before that,
// NewScheduler silently rewrote an explicit 0 floor back to 0.25 and the
// ablation could only approximate it with [0.01, 0.99].
func RunAblationBounds(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(5)]
	suite, err := RunSuite(SuiteSpec{
		Mixes: mixes,
		Policies: []NamedFactory{
			{Name: "bounded [0.25,0.75]", Factory: SatoriFactory(core.Options{Name: "bounded"})},
			{Name: "unbounded [0,1]", Factory: SatoriFactory(core.Options{
				Name: "unbounded",
				Scheduler: core.SchedulerOptions{
					WeightFloor: 0, WeightFloorSet: true,
					WeightCeil: 1,
				}})},
		},
		Base:    DefaultSuiteBase(opt.Seed, opt.Ticks),
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-bounds", Title: "Dynamic-weight bounds vs near-unbounded prioritization"}
	rep.Tables = append(rep.Tables, meansTable(suite))
	return rep, nil
}

// RunAblationNoise sweeps the IPS measurement-noise level. The paper's
// premise (Sec. I, III-A) is that BO's "just-accurate-enough" proxy model
// tolerates observation inaccuracy; the sweep quantifies how much counter
// noise SATORI absorbs before its scores degrade.
func RunAblationNoise(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(3)]
	tbl := trace.NewTable("noise sigma", "throughput %oracle", "fairness %oracle")
	sigmas := []float64{-1, 0.01, 0.02, 0.05, 0.10}
	rows := make([]Mean, len(sigmas))
	outer, inner := splitWorkers(opt.Workers, len(sigmas))
	err = forEach(outer, len(sigmas), func(i int) error {
		base := DefaultSuiteBase(opt.Seed, opt.Ticks)
		base.NoiseSigma = sigmas[i]
		suite, err := RunSuite(SuiteSpec{
			Mixes:    mixes,
			Policies: []NamedFactory{{Name: "satori", Factory: SatoriFactory(core.Options{})}},
			Base:     base,
			Workers:  inner,
		})
		if err != nil {
			return err
		}
		rows[i] = suite.Means()["satori"]
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sigma := range sigmas {
		label := fmt.Sprintf("%.0f%%", sigma*100)
		if sigma < 0 {
			label = "noise-free"
		}
		tbl.AddRow(label, trace.Pct(rows[i].PctThroughput), trace.Pct(rows[i].PctFairness))
	}
	rep := &Report{ID: "ablation-noise", Title: "SATORI vs IPS measurement-noise level"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"paper premise: tolerating slight model inaccuracy still reaches near-optimal configurations online; the GP noise term absorbs counter noise up to several percent")
	return rep, nil
}

// RunAblationAcquisition compares acquisition functions: the paper picks
// Expected Improvement for its exploration/exploitation balance at low
// evaluation cost (Sec. III-A); UCB, Probability of Improvement and
// Thompson sampling are run on identical workloads. EI also enables the
// skip-probe exploitation optimization (its score is an expected gain);
// the alternatives probe every interval.
func RunAblationAcquisition(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(3)]
	var policies []NamedFactory
	for _, acq := range []string{"ei", "ucb", "pi", "ts"} {
		acq := acq
		policies = append(policies, NamedFactory{
			Name:    acq,
			Factory: SatoriFactory(core.Options{Acquisition: acq, Name: acq}),
		})
	}
	suite, err := RunSuite(SuiteSpec{Mixes: mixes, Policies: policies, Base: DefaultSuiteBase(opt.Seed, opt.Ticks), Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-acquisition", Title: "Acquisition functions: EI (paper's choice) vs UCB, PI, Thompson sampling"}
	rep.Tables = append(rep.Tables, meansTable(suite))
	rep.Notes = append(rep.Notes,
		"paper (Sec. III-A): EI provides a reasonable exploration/exploitation balance at low evaluation cost; it is also the only acquisition whose score directly supports the skip-probe optimization")
	return rep, nil
}

// RunAblationMachine checks portability across machine shapes: SATORI is
// deployed with zero retuning on a smaller desktop-class part, the
// paper's Skylake testbed, and a larger socket, and must stay ahead of
// PARTIES on throughput everywhere ("deployable readily on platforms
// where hardware partitioning support is available", Sec. III).
func RunAblationMachine(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		return nil, err
	}
	mixes = mixes[:opt.limitMixes(3)]
	shapes := []struct {
		name    string
		machine sim.MachineSpec
	}{
		{"8c/8w/8bw (desktop)", sim.MachineSpec{Cores: 8, LLCWays: 8, MemBWUnits: 8, MemBWBytesPerUnit: 6e9, LineBytes: 64}},
		{"10c/11w/10bw (paper)", sim.DefaultMachine()},
		{"16c/20w/16bw (large)", sim.MachineSpec{Cores: 16, LLCWays: 20, MemBWUnits: 16, MemBWBytesPerUnit: 8e9, LineBytes: 64}},
	}
	tbl := trace.NewTable("machine", "satori T", "parties T", "satori F", "parties F")
	means := make([]map[string]Mean, len(shapes))
	outer, inner := splitWorkers(opt.Workers, len(shapes))
	err = forEach(outer, len(shapes), func(i int) error {
		machine := shapes[i].machine
		base := DefaultSuiteBase(opt.Seed, opt.Ticks)
		base.Machine = &machine
		suite, err := RunSuite(SuiteSpec{
			Mixes: mixes,
			Policies: []NamedFactory{
				{Name: "satori", Factory: SatoriFactory(core.Options{})},
				{Name: "parties", Factory: PARTIESFactory()},
			},
			Base:    base,
			Workers: inner,
		})
		if err != nil {
			return err
		}
		means[i] = suite.Means()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, shape := range shapes {
		m := means[i]
		tbl.AddRow(shape.name,
			trace.Pct(m["satori"].PctThroughput), trace.Pct(m["parties"].PctThroughput),
			trace.Pct(m["satori"].PctFairness), trace.Pct(m["parties"].PctFairness))
	}
	rep := &Report{ID: "ablation-machine", Title: "Portability across machine shapes (no retuning)"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"the engine's no-tuning heuristics (median-distance length scale, data-scaled kernel variance) adapt to each machine's configuration-space size automatically")
	return rep, nil
}

// RunOverhead reproduces the Sec. V overhead measurement: wall-clock cost
// of one full SATORI BO iteration (objective reconstruction + GP refit +
// acquisition maximization) within the 100 ms decision interval. The
// paper measures 1.2 ms on average.
func RunOverhead(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	mix, err := fig17Mix()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.DefaultMachine(), mix.Profiles, sim.Options{Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	platform, err := rdt.NewSimPlatform(s)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(platform.Space(), core.Options{Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	iso, err := platform.MeasureIsolated()
	if err != nil {
		return nil, err
	}
	met := DefaultMetrics()
	current := platform.Current()
	var total time.Duration
	var maxDur time.Duration
	for tick := 1; tick <= opt.Ticks; tick++ {
		ips, err := platform.Sample()
		if err != nil {
			return nil, err
		}
		obs := policy.Observation{
			Tick: tick, Time: s.Now(), IPS: ips, Isolated: iso,
			Speedups:   metrics.Speedups(ips, iso),
			Throughput: metrics.NormalizedThroughput(met.Throughput, ips, iso),
			Fairness:   metrics.NormalizedFairness(met.Fairness, ips, iso),
		}
		start := time.Now()
		next := eng.Decide(obs, current)
		dur := time.Since(start)
		total += dur
		if dur > maxDur {
			maxDur = dur
		}
		if err := platform.Apply(next); err == nil {
			current = platform.Current()
		}
		if tick%100 == 0 {
			iso, _ = platform.MeasureIsolated()
		}
	}
	mean := total / time.Duration(opt.Ticks)
	tbl := trace.NewTable("quantity", "value")
	tbl.AddRow("mean BO iteration time", mean.String())
	tbl.AddRow("max BO iteration time", maxDur.String())
	tbl.AddRow("decision interval", "100ms")
	tbl.AddRow("mean fraction of interval", fmt.Sprintf("%.2f%%", float64(mean)/float64(100*time.Millisecond)*100))
	tbl.AddRow("exploit (skip-probe) ticks", fmt.Sprintf("%d of %d", eng.Exploits(), opt.Ticks))
	st := eng.GPStats()
	tbl.AddRow("GP full refits", fmt.Sprintf("%d", st.Refits))
	tbl.AddRow("GP rank-1 extends", fmt.Sprintf("%d", st.Extends))
	tbl.AddRow("GP α-only target re-solves", fmt.Sprintf("%d", st.TargetSolves))
	rep := &Report{ID: "overhead", Title: "SATORI engine cost per 100 ms interval"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"paper: all BO-related tasks take 1.2 ms on average within the 100 ms interval; decisions are off the critical path (jobs keep running under the previous configuration)",
		"the GP rows split the proxy-update work by path: most ticks re-weight an unchanged window, which needs only the O(n²) α re-solve, not the O(n³) refit (see DESIGN.md §4)")
	return rep, nil
}

// RunSpaceSize reproduces the Sec. II configuration-space arithmetic.
func RunSpaceSize(opt ExpOptions) (*Report, error) {
	tbl := trace.NewTable("jobs", "resources", "units each", "configurations")
	cases := []struct{ jobs, res, units int }{
		{3, 2, 10}, {4, 2, 10}, {4, 3, 10}, {5, 3, 10},
	}
	for _, c := range cases {
		rs := make([]resource.Resource, c.res)
		for i := range rs {
			rs[i] = resource.Resource{Kind: resource.Kind(i), Units: c.units}
		}
		space, err := resource.NewSpace(c.jobs, rs...)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%d", c.jobs), fmt.Sprintf("%d", c.res),
			fmt.Sprintf("%d", c.units), fmt.Sprintf("%.0f", space.Size()))
	}
	// The paper-testbed space for a 5-job PARSEC mix.
	m := sim.DefaultMachine()
	space, err := m.Space(5)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("5", "3", "10/11/10", fmt.Sprintf("%.0f", space.Size()))
	rep := &Report{ID: "space", Title: "Configuration-space sizes (Sec. II: 1,296 / 7,056 / 592,704)"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes, "exhaustive online search is infeasible; SATORI's BO samples a few dozen configurations instead")
	return rep, nil
}
