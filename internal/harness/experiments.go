package harness

import (
	"fmt"
	"strings"

	"satori/internal/trace"
)

// ExpOptions sizes an experiment reproduction. The zero value requests
// the full paper-scale configuration; benches and smoke tests shrink
// Ticks and MixLimit.
type ExpOptions struct {
	// Ticks is the per-run length in 100 ms intervals (default 600).
	Ticks int
	// Seed drives all randomness (default 42).
	Seed uint64
	// MixLimit caps how many job mixes a suite experiment runs
	// (0 = all mixes the paper uses).
	MixLimit int
	// Workers bounds each experiment's fan-out over its independent
	// run units (0 = one worker per CPU, 1 = serial). Any worker count
	// produces byte-identical reports; cmd/experiments exposes this as
	// -parallel and the SATORI_PARALLEL environment knob.
	Workers int
	// Cache, when non-nil, memoizes suite cells on disk so repeated
	// reproductions skip re-simulating unchanged (policy, mix, seed)
	// cells; cmd/experiments exposes this as -cache DIR. Reports are
	// byte-identical with or without it.
	Cache *CellCache
}

func (o ExpOptions) fill() ExpOptions {
	if o.Ticks <= 0 {
		o.Ticks = 600
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o ExpOptions) limitMixes(n int) int {
	if o.MixLimit > 0 && o.MixLimit < n {
		return o.MixLimit
	}
	return n
}

// Report is the textual reproduction of one paper figure or table.
type Report struct {
	// ID is the experiment identifier ("fig7", "scalability", ...).
	ID string
	// Title describes what the paper figure shows.
	Title string
	// Tables hold the reproduced rows/series.
	Tables []*trace.Table
	// Notes record observations, including divergences from the paper.
	Notes []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a runnable figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(ExpOptions) (*Report, error)
}

// Experiments returns the full registry, ordered as in the paper.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Optimal-throughput configuration drifts over time", RunFig1},
		{"fig2", "Throughput-optimal vs fairness-optimal configurations differ", RunFig2},
		{"fig3", "Opportunity to re-balance conflicting goals over time", RunFig3},
		{"fig7", "Average throughput and fairness vs Balanced Oracle (PARSEC)", RunFig7},
		{"fig8", "Per-mix throughput and fairness (21 PARSEC mixes)", RunFig8},
		{"fig9", "Worst-performing job per mix (PARSEC)", RunFig9},
		{"fig10", "Per-mix results (CloudSuite)", RunFig10},
		{"fig11", "Per-mix results (ECP)", RunFig11},
		{"fig12", "Suite averages (CloudSuite)", RunFig12},
		{"fig13", "Suite averages (ECP)", RunFig13},
		{"fig14", "Dynamic weight re-balancing and its benefit", RunFig14},
		{"fig15", "Configuration distance to the Balanced Oracle", RunFig15},
		{"fig16", "Sensitivity to prioritization and equalization periods", RunFig16},
		{"fig17", "Objective value and proxy-model stability over time", RunFig17},
		{"fig18", "Observed-performance variation with and without prioritization", RunFig18},
		{"fig19", "Prioritizing the weaker goal outperforms the stronger", RunFig19},
		{"mix-change", "Workload-mix change absorbed without re-initialization", RunMixChange},
		{"slo", "Violation-driven goal switching on a mixed batch+LC co-location", RunSLO},
		{"scalability", "SATORI-PARTIES gap grows with co-location degree", RunScalability},
		{"cluster", "Jobs ≫ classes: clustered partition search vs per-job and LFOC", RunCluster},
		{"clite", "CLITE (BO, static objective) vs PARTIES and SATORI", RunCLITE},
		{"ablation-resources", "SATORI restricted to dCAT's and CoPart's resources", RunAblationResources},
		{"ablation-init", "Good vs random initial configuration set", RunAblationInit},
		{"ablation-window", "Proxy-model window size", RunAblationWindow},
		{"ablation-bounds", "Weight bounds 0.25/0.75 vs unbounded", RunAblationBounds},
		{"ablation-noise", "SATORI vs IPS measurement-noise level", RunAblationNoise},
		{"ablation-machine", "Portability across machine shapes", RunAblationMachine},
		{"ablation-acquisition", "EI vs UCB, PI, Thompson sampling", RunAblationAcquisition},
		{"replication", "Fig. 7 comparison across seeds with 95% CIs", RunReplication},
		{"overhead", "BO engine cost per 100 ms interval", RunOverhead},
		{"space", "Configuration-space sizes (Sec. II)", RunSpaceSize},
	}
}

// FindExperiment looks an experiment up by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// meansTable renders a SuiteResult's across-mix means in policy order.
func meansTable(res *SuiteResult) *trace.Table {
	tbl := trace.NewTable("policy", "throughput %oracle", "fairness %oracle", "worst-job %oracle")
	for _, name := range res.Policies {
		m := res.Means()[name]
		tbl.AddRow(name, trace.Pct(m.PctThroughput), trace.Pct(m.PctFairness), trace.Pct(m.PctWorst))
	}
	return tbl
}

// perMixTable renders per-mix scores for every policy, mixes sorted by
// the anchor policy's throughput (the paper sorts by SATORI's score).
func perMixTable(res *SuiteResult, anchor string, value func(MixScore) float64) *trace.Table {
	header := []string{"mix", "workloads"}
	header = append(header, res.Policies...)
	tbl := trace.NewTable(header...)
	order := res.MixOrder(anchor)
	for _, mixIdx := range order {
		row := []string{fmt.Sprintf("%d", mixIdx), ""}
		for _, name := range res.Policies {
			sc, ok := res.ScoreFor(name, mixIdx)
			if !ok {
				row = append(row, "-")
				continue
			}
			if row[1] == "" {
				row[1] = strings.Join(shortNames(sc.MixNames), "+")
			}
			row = append(row, trace.Pct(value(sc)))
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// shortNames abbreviates benchmark names for mix labels.
func shortNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if len(n) > 5 {
			n = n[:5]
		}
		out[i] = n
	}
	return out
}
