package harness

import (
	"fmt"

	"satori/internal/control"
	"satori/internal/core"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/trace"
	"satori/internal/workloads"
)

// RunSLO measures violation-driven goal switching on a mixed
// batch+latency-critical co-location. Two LC services (memcached-lc,
// search-lc) start at the equal split deep in SLO violation next to
// three PARSEC batch jobs; every policy must discover a partition that
// restores tail-latency attainment. SATORI-SLO (WeightsSLOAware +
// GoalSwitch) scores the fairness channel as SLO attainment while the
// violation persists and pins the throughput weight to its floor —
// sacrificing short-term batch throughput and fairness for long-term
// SLO health — then reverts hysteretically once the detector clears.
// Plain SATORI, static-weight SATORI, PARTIES, and CoPart run the
// identical scenario as baselines.
func RunSLO(opt ExpOptions) (*Report, error) {
	opt = opt.fill()
	names := []string{"memcached-lc", "nginx-lc", "canneal", "fluidanimate", "streamcluster"}
	mix := make([]*sim.Profile, len(names))
	for i, n := range names {
		p, err := workloads.ByName(n)
		if err != nil {
			return nil, err
		}
		mix[i] = p
	}

	type outcome struct {
		attainment float64 // mean SLO attainment over the run
		violated   int     // ticks spent in the hysteretic violating state
		recovery   int     // ticks until the trailing window attains (-1 = never)
		objective  float64 // mean 0.5*T + 0.5*F (the batch side of the trade)
	}
	const recoverWin = 10
	const recoverLevel = 0.95
	runOne := func(factory PolicyFactory, sloOpt control.SLOOptions) (outcome, error) {
		simulator, err := sim.New(sim.DefaultMachine(), mix, sim.Options{Seed: opt.Seed})
		if err != nil {
			return outcome{}, err
		}
		platform, err := rdt.NewSimPlatform(simulator)
		if err != nil {
			return outcome{}, err
		}
		loop, err := control.New(control.Options{
			Platform: platform,
			Policy:   func(rdt.Platform) (policy.Policy, error) { return factory(platform, opt.Seed) },
			SLO:      sloOpt,
		})
		if err != nil {
			return outcome{}, err
		}
		var att, obj stats.Welford
		attains := make([]float64, 0, opt.Ticks)
		out := outcome{recovery: -1}
		for tick := 1; tick <= opt.Ticks; tick++ {
			st, err := loop.Step()
			if err != nil {
				return outcome{}, err
			}
			if st.ResetErr != nil && !rdt.IsTransient(st.ResetErr) {
				return outcome{}, st.ResetErr
			}
			att.Add(st.SLOAttainment)
			obj.Add(0.5*st.Throughput + 0.5*st.Fairness)
			attains = append(attains, st.SLOAttainment)
			if st.SLOViolating {
				out.violated++
			}
			// Recovery: first tick whose trailing window holds mean
			// attainment at the recovered level (0.95; the critical-IPS
			// boundary itself attains 0.99).
			if out.recovery < 0 && tick >= recoverWin {
				sum := 0.0
				for i := tick - recoverWin; i < tick; i++ {
					sum += attains[i]
				}
				if sum/recoverWin >= recoverLevel {
					out.recovery = tick
				}
			}
		}
		out.attainment = att.Mean()
		out.objective = obj.Mean()
		return out, nil
	}

	rows := []struct {
		name    string
		factory PolicyFactory
		slo     control.SLOOptions
	}{
		{"satori-slo", SatoriFactory(core.Options{Scheduler: core.SchedulerOptions{Mode: core.WeightsSLOAware}}), control.SLOOptions{GoalSwitch: true}},
		{"satori", SatoriFactory(core.Options{}), control.SLOOptions{}},
		{"satori-static", SatoriStaticFactory(0.5), control.SLOOptions{}},
		{"parties", PARTIESFactory(), control.SLOOptions{}},
		{"copart", CoPartFactory(), control.SLOOptions{}},
	}
	fmtRec := func(r int) string {
		if r < 0 {
			return "never"
		}
		return fmt.Sprintf("%.1fs", float64(r)*sim.TickSeconds)
	}
	tbl := trace.NewTable("policy", "slo attainment", "violated ticks", "recovery", "objective")
	for _, r := range rows {
		oc, err := runOne(r.factory, r.slo)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		tbl.AddRow(r.name, trace.F(oc.attainment), fmt.Sprintf("%d", oc.violated), fmtRec(oc.recovery), trace.F(oc.objective))
	}
	rep := &Report{ID: "slo", Title: "SLO recovery on a mixed batch+LC co-location (2 LC + 3 PARSEC)"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"all policies start at the equal split with both LC services violating their p99 targets",
		"satori-slo switches the fairness goal to SLO attainment and floors the throughput weight while the violation persists, reverting hysteretically after recovery",
		"recovery = first tick whose trailing 10-tick mean attainment reaches 0.95")
	return rep, nil
}
