package harness

import (
	"fmt"
	"sort"
	"strings"

	"satori/internal/core"
	"satori/internal/policies/oracle"
)

// policyRegistry is the single name→factory table shared by every
// front-end (cmd/satori, cmd/fleet, cmd/experiments via the harness, and
// the library's satori.NewPolicyByName). Each entry is a constructor so
// option structs are built fresh per lookup and never shared between
// concurrent runs.
var policyRegistry = map[string]func() PolicyFactory{
	"satori": func() PolicyFactory { return SatoriFactory(core.Options{}) },
	"satori-slo": func() PolicyFactory {
		return SatoriFactory(core.Options{Scheduler: core.SchedulerOptions{Mode: core.WeightsSLOAware}})
	},
	"satori-static":     func() PolicyFactory { return SatoriStaticFactory(0.5) },
	"satori-throughput": func() PolicyFactory { return SatoriStaticFactory(1) },
	"satori-fairness":   func() PolicyFactory { return SatoriStaticFactory(0) },
	"clite":             CLITEFactory,
	"satori-clustered":  func() PolicyFactory { return ClusteredSatoriFactory(8, core.Options{}) },
	"lfoc":              func() PolicyFactory { return LFOCFactory(8) },
	"random":            RandomFactory,
	"static":            StaticFactory,
	"dcat":              DCATFactory,
	"copart":            CoPartFactory,
	"parties":           PARTIESFactory,
	"balanced-oracle":   func() PolicyFactory { return OracleFactory(oracle.Balanced, oracle.Options{}) },
	"throughput-oracle": func() PolicyFactory { return OracleFactory(oracle.Throughput, oracle.Options{}) },
	"fairness-oracle":   func() PolicyFactory { return OracleFactory(oracle.Fairness, oracle.Options{}) },
}

// PolicyNames lists every registered policy name, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyRegistry))
	for name := range policyRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PolicyByName resolves a policy name to a fresh factory. Unknown names
// error with the sorted list of valid names.
func PolicyByName(name string) (PolicyFactory, error) {
	ctor, ok := policyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown policy %q (valid: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return ctor(), nil
}
