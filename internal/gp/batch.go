// Batched posterior prediction: score a whole candidate pool against the
// shared Cholesky factor with one matrix-level triangular solve.
//
// The per-candidate path (PredictInto) pays an O(n²) forward solve per
// query whose subtract-accumulate chain is latency-bound; amortizing one
// traversal of the factor over all m pool columns turns the same flops
// into contiguous throughput-bound sweeps (linalg.SolveLowerMatrixInto).
// Crucially the arithmetic is the *identical sequence* per candidate —
// same kernel evaluations, same k-ascending subtractions, same divisions,
// same accumulation order for the mean and variance dots — so batched
// results are bit-identical to the per-candidate reference and the engine
// can adopt them without perturbing committed goldens. The property tests
// in batch_test.go pin that equivalence with == comparisons.

package gp

import (
	"fmt"
	"math"

	"satori/internal/linalg"
)

// PredictBatch returns the posterior mean and standard deviation at every
// query point. Allocating convenience wrapper over PredictBatchInto.
func (g *GP) PredictBatch(points [][]float64) (mu, sigma []float64) {
	mu = make([]float64, len(points))
	sigma = make([]float64, len(points))
	var s PredictScratch
	g.PredictBatchInto(&s, mu, sigma, points)
	return mu, sigma
}

// PredictBatchInto scores all query points into mu and sigma (each of
// length len(points)) using one matrix-level triangular solve. After the
// scratch has grown to the model×pool size it performs no allocations.
// Results are bit-identical to calling PredictInto per point.
func (g *GP) PredictBatchInto(s *PredictScratch, mu, sigma []float64, points [][]float64) {
	predictBatch(s, mu, sigma, points, g.xs, g.alpha, g.chol, g.kernel, g.mean)
}

// PredictBatchInto is the Incremental counterpart of GP.PredictBatchInto.
func (m *Incremental) PredictBatchInto(s *PredictScratch, mu, sigma []float64, points [][]float64) {
	predictBatch(s, mu, sigma, points, m.xbuf[:m.n], m.alpha, m.chol, m.kernel, m.mean)
}

// PredictBatch scores all query points into mu and sigma using the model's
// internal scratch (zero allocations at steady state; not
// concurrency-safe — use PredictBatchInto with caller-owned scratch to
// score one shared model from several goroutines).
func (m *Incremental) PredictBatch(mu, sigma []float64, points [][]float64) {
	m.PredictBatchInto(&m.scratch, mu, sigma, points)
}

// predictBatch is the shared batch-scoring kernel. For bit-identity with
// the per-candidate path every stage accumulates in the same order
// PredictInto does: kstar entries are independent; the matrix solve's
// column c replays SolveLowerInto exactly; the mean and squared-norm
// accumulators run over model rows in ascending order, matching
// linalg.Dot.
func predictBatch(s *PredictScratch, mu, sigma []float64, points [][]float64, xs [][]float64, alpha []float64, chol *linalg.Cholesky, kernel Kernel, mean float64) {
	q := len(points)
	if len(mu) != q || len(sigma) != q {
		panic(fmt.Sprintf("gp: PredictBatch got %d mu and %d sigma for %d points", len(mu), len(sigma), q))
	}
	if q == 0 {
		return
	}
	n := len(xs)
	s.resizeBatch(n, q)
	kmat, vmat := &s.kmat, &s.vmat
	// Cross-covariance fill + posterior-mean accumulation
	// mu_c = Σ_i k*_ic·α_i, rows ascending (matching linalg.Dot's order).
	// The Matérn 5/2 default takes a staged concrete-type fill; anything
	// else goes through the interface.
	for c := range mu {
		mu[c] = 0
	}
	m52, isM52 := kernel.(Matern52)
	if isM52 {
		fillRowsMatern52(s, kmat, mu, alpha, xs, points, m52)
	} else {
		for i, xi := range xs {
			row := kmat.Data[i*q : i*q+q : i*q+q]
			for c, x := range points {
				row[c] = kernel.Eval(x, xi)
			}
			ai := alpha[i]
			for c, v := range row {
				mu[c] += v * ai
			}
		}
	}
	// One triangular sweep for the whole pool: V = L⁻¹·K*.
	chol.SolveLowerMatrixInto(vmat, kmat)
	// Squared norms ‖v_c‖², rows ascending; sigma doubles as accumulator.
	for c := range sigma {
		sigma[c] = 0
	}
	for i := 0; i < n; i++ {
		row := vmat.Data[i*q : i*q+q : i*q+q]
		for c, v := range row {
			sigma[c] += v * v
		}
	}
	for c, x := range points {
		mu[c] = mean + mu[c]
		// k(x, x): every shipped kernel evaluates to exactly Variance at
		// zero distance (r = 0, exp(-0) = 1), so the concrete fast path
		// skips the call; the value is bit-identical to Eval(x, x).
		var kxx float64
		if isM52 {
			kxx = m52.Variance
		} else {
			kxx = kernel.Eval(x, x)
		}
		variance := kxx - sigma[c]
		if variance < 0 {
			variance = 0
		}
		sigma[c] = math.Sqrt(variance)
	}
}

// sqrt5 matches the math.Sqrt(5) constant inside Matern52.Eval.
var sqrt5 = math.Sqrt(5)

// fillRowsMatern52 is the staged cross-covariance fill for the default
// kernel: a dim-outer squared-distance sweep over a dim-major transposed
// pool, one sqrt/exp transform sweep, and one mean-accumulation sweep per
// model row. Each element's value is computed by the verbatim
// Matern52.Eval expression sequence — the squared distance still sums
// dimension-ascending per element, the transform is Eval's exact formula
// — so splitting the loops only removes interface dispatch and short-loop
// overhead and lets independent elements pipeline through the
// sqrt/div/exp units; results stay bit-identical to the per-candidate
// path.
func fillRowsMatern52(s *PredictScratch, kmat *linalg.Matrix, mu, alpha []float64, xs, points [][]float64, k Matern52) {
	q := kmat.Cols
	ls, vr := k.LengthScale, k.Variance
	dim := 0
	if len(xs) > 0 {
		dim = len(xs[0])
	}
	// Transpose the pool once: pt[d*q+c] = points[c][d], so the distance
	// sweep below streams contiguously for every dimension.
	if cap(s.pt) < dim*q {
		s.pt = make([]float64, dim*q)
	}
	pt := s.pt[:dim*q]
	for c, x := range points {
		for d, v := range x[:dim] {
			pt[d*q+c] = v
		}
	}
	for i, xi := range xs {
		row := kmat.Data[i*q : i*q+q : i*q+q]
		for c := range row {
			row[c] = 0
		}
		for d, w := range xi {
			col := pt[d*q : d*q+q : d*q+q]
			for c, v := range col {
				dd := v - w
				row[c] += dd * dd
			}
		}
		for c, d2 := range row {
			r := math.Sqrt(d2) / ls
			s5r := sqrt5 * r
			row[c] = vr * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
		}
		ai := alpha[i]
		for c, v := range row {
			mu[c] += v * ai
		}
	}
}

// posteriorBatch is the joint-posterior kernel behind GP.Posterior and
// Incremental.Posterior: the m query solves collapse into one matrix
// triangular sweep, and the covariance Gram accumulates row-by-row over
// contiguous solve rows instead of strided column dots. Accumulation
// order per (i, j) entry matches the former per-point linalg.Dot loops,
// so Thompson sampling sees bit-identical posteriors.
func posteriorBatch(points [][]float64, xs [][]float64, alpha []float64, chol *linalg.Cholesky, kernel Kernel, mean float64) ([]float64, *linalg.Matrix) {
	q := len(points)
	n := len(xs)
	mu := make([]float64, q)
	kmat := linalg.NewMatrix(n, q)
	for i, xi := range xs {
		row := kmat.Data[i*q : i*q+q]
		for c, x := range points {
			row[c] = kernel.Eval(x, xi)
		}
	}
	for i := 0; i < n; i++ {
		ai := alpha[i]
		row := kmat.Data[i*q : i*q+q : i*q+q]
		for c, v := range row {
			mu[c] += v * ai
		}
	}
	for c := range mu {
		mu[c] = mean + mu[c]
	}
	vmat := chol.SolveLowerMatrixInto(linalg.NewMatrix(n, q), kmat)
	cov := linalg.NewMatrix(q, q)
	for r := 0; r < n; r++ {
		row := vmat.Data[r*q : r*q+q : r*q+q]
		for i, vi := range row {
			ci := cov.Data[i*q : i*q+i+1 : i*q+i+1]
			for j := range ci {
				ci[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < q; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(points[i], points[j]) - cov.Data[i*q+j]
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return mu, cov
}
