package gp

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"satori/internal/linalg"
)

// TestPredictBatchBitIdenticalToPerCandidate is the property test behind
// the engine rewiring: across random pools, dimensions and kernels, the
// batched scorer must reproduce the per-candidate PredictInto results
// bit for bit (==, which subsumes the 1e-12 tolerance the acceptance
// criteria ask for). If this ever has to be weakened to a tolerance, the
// engine's default path no longer preserves golden outputs.
func TestPredictBatchBitIdenticalToPerCandidate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	kernels := []Kernel{
		nil, // heuristic Matérn 5/2
		Matern52{LengthScale: 0.6, Variance: 1.3},
		Matern32{LengthScale: 1.1, Variance: 0.8},
		RBF{LengthScale: 0.9, Variance: 2.0},
	}
	for trial := 0; trial < 40; trial++ {
		kernel := kernels[trial%len(kernels)]
		n := 1 + rng.Intn(70)
		dim := 1 + rng.Intn(16)
		m := 1 + rng.Intn(130)
		xs := randomInputs(rng, n, dim)
		ys := randomTargets(rng, xs)
		g, err := Fit(xs, ys, Options{Kernel: kernel})
		if err != nil {
			t.Fatalf("trial %d: Fit: %v", trial, err)
		}
		pool := randomInputs(rng, m, dim)
		mu := make([]float64, m)
		sigma := make([]float64, m)
		var s PredictScratch
		g.PredictBatchInto(&s, mu, sigma, pool)
		var ref PredictScratch
		for c, x := range pool {
			wantMu, wantSigma := g.PredictInto(&ref, x)
			if mu[c] != wantMu || sigma[c] != wantSigma {
				t.Fatalf("trial %d: candidate %d: batch (%v, %v) != per-candidate (%v, %v)",
					trial, c, mu[c], sigma[c], wantMu, wantSigma)
			}
		}
		// Allocating wrapper agrees too.
		wmu, wsigma := g.PredictBatch(pool)
		for c := range pool {
			if wmu[c] != mu[c] || wsigma[c] != sigma[c] {
				t.Fatalf("trial %d: PredictBatch wrapper diverged at %d", trial, c)
			}
		}
	}
}

// TestIncrementalPredictBatchBitIdentical covers the incremental model's
// batch entry points, including after Append/UpdateTargets churn so the
// batch path sees extend-built factors, not just fresh ones.
func TestIncrementalPredictBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		dim := 1 + rng.Intn(12)
		n := 3 + rng.Intn(40)
		xs := randomInputs(rng, n, dim)
		ys := randomTargets(rng, xs)
		m := NewIncremental(Options{})
		if err := m.Reset(xs[:n-2], ys[:n-2]); err != nil {
			t.Fatalf("trial %d: Reset: %v", trial, err)
		}
		for i := n - 2; i < n; i++ {
			if err := m.Append(xs[i], ys[:i+1]); err != nil {
				t.Fatalf("trial %d: Append: %v", trial, err)
			}
		}
		pool := randomInputs(rng, 1+rng.Intn(90), dim)
		mu := make([]float64, len(pool))
		sigma := make([]float64, len(pool))
		m.PredictBatch(mu, sigma, pool)
		var ref PredictScratch
		for c, x := range pool {
			wantMu, wantSigma := m.PredictInto(&ref, x)
			if mu[c] != wantMu || sigma[c] != wantSigma {
				t.Fatalf("trial %d: candidate %d: batch (%v, %v) != per-candidate (%v, %v)",
					trial, c, mu[c], sigma[c], wantMu, wantSigma)
			}
		}
	}
}

// TestPredictBatchConcurrentScratch runs batch scoring of one shared
// fitted model from many goroutines with per-goroutine scratch — the
// pattern the harness uses when parallel suite cells score against shared
// oracles. Run under -race this pins that PredictBatchInto performs no
// hidden writes to model state.
func TestPredictBatchConcurrentScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	xs := randomInputs(rng, 48, 8)
	ys := randomTargets(rng, xs)
	g, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := randomInputs(rng, 64, 8)
	wantMu, wantSigma := g.PredictBatch(pool)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s PredictScratch
			mu := make([]float64, len(pool))
			sigma := make([]float64, len(pool))
			for iter := 0; iter < 20; iter++ {
				g.PredictBatchInto(&s, mu, sigma, pool)
				for c := range pool {
					if mu[c] != wantMu[c] || sigma[c] != wantSigma[c] {
						select {
						case errs <- errors.New("concurrent batch result diverged"):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestPredictBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	xs := randomInputs(rng, 4, 2)
	g, err := Fit(xs, randomTargets(rng, xs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var s PredictScratch
	// Empty pool is a no-op.
	g.PredictBatchInto(&s, nil, nil, nil)
	defer func() {
		if recover() == nil {
			t.Error("mismatched mu/sigma lengths did not panic")
		}
	}()
	g.PredictBatchInto(&s, make([]float64, 1), make([]float64, 2), randomInputs(rng, 2, 2))
}

// TestIncrementalNearDuplicateAppendIndefinite is the regression test for
// the Extend round-off bugfix: a *near*-duplicate training point (not an
// exact copy) drives the Schur-complement pivot ≤ 0 purely by floating-
// point cancellation. Extend must surface the typed linalg.ErrIndefinite
// — not a silent NaN factor — and Append must recover via the rebuild
// fallback with a posterior that still matches a from-scratch Fit.
func TestIncrementalNearDuplicateAppendIndefinite(t *testing.T) {
	opt := Options{Kernel: Matern52{LengthScale: 0.7, Variance: 1.0}, Noise: 1e-16}
	rng := rand.New(rand.NewSource(53))
	xs := randomInputs(rng, 8, 3)
	ys := randomTargets(rng, xs)
	near := append([]float64(nil), xs[5]...)
	near[0] += 1e-13 // perturb below kernel resolution: pivot cancels to ≤ 0

	// First establish at the linalg level that this append is rejected
	// with the typed error (if it were accepted the gp-level fallback
	// would be untested).
	kernel := opt.Kernel
	km := linalg.NewMatrix(len(xs), len(xs))
	for i := range xs {
		for j := range xs {
			v := kernel.Eval(xs[i], xs[j])
			if i == j {
				v += opt.Noise
			}
			km.Set(i, j, v)
		}
	}
	chol, err := linalg.NewCholesky(km)
	if err != nil {
		t.Fatalf("base factorization: %v", err)
	}
	row := make([]float64, len(xs))
	for i := range xs {
		row[i] = kernel.Eval(near, xs[i])
	}
	extErr := chol.Extend(row, kernel.Eval(near, near)+opt.Noise)
	if !errors.Is(extErr, linalg.ErrIndefinite) {
		t.Fatalf("near-duplicate Extend: got %v, want ErrIndefinite", extErr)
	}

	// The incremental model must take the rebuild fallback and stay sane.
	m := NewIncremental(opt)
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	refitsBefore := m.Stats().Refits
	xs = append(xs, near)
	ys = append(ys, ys[5])
	if err := m.Append(near, ys); err != nil {
		t.Fatalf("Append near-duplicate: %v", err)
	}
	if m.Stats().Refits != refitsBefore+1 {
		t.Fatalf("Append did not fall back to rebuild: refits %d -> %d",
			refitsBefore, m.Stats().Refits)
	}
	g := fitReference(t, opt, xs, ys)
	for trial := 0; trial < 5; trial++ {
		x := randomInputs(rng, 1, 3)[0]
		gotMu, gotSigma := m.Predict(x)
		wantMu, wantSigma := g.Predict(x)
		if math.Abs(gotMu-wantMu) > 1e-6 || math.Abs(gotSigma-wantSigma) > 1e-6 {
			t.Fatalf("post-fallback posterior diverged: (%v,%v) vs (%v,%v)",
				gotMu, gotSigma, wantMu, wantSigma)
		}
	}
	for _, v := range m.alpha {
		if math.IsNaN(v) {
			t.Fatal("NaN leaked into alpha after fallback")
		}
	}
}
