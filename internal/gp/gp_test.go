package gp

import (
	"math"
	"testing"

	"satori/internal/stats"
)

func TestKernelBasicProperties(t *testing.T) {
	kernels := []Kernel{
		Matern52{LengthScale: 0.5, Variance: 2},
		Matern32{LengthScale: 0.5, Variance: 2},
		RBF{LengthScale: 0.5, Variance: 2},
	}
	a := []float64{0.1, 0.2}
	b := []float64{0.7, 0.9}
	for _, k := range kernels {
		// k(x, x) = variance.
		if got := k.Eval(a, a); math.Abs(got-2) > 1e-12 {
			t.Errorf("%s: k(x,x) = %g, want 2", k.Name(), got)
		}
		// Symmetry.
		if k.Eval(a, b) != k.Eval(b, a) {
			t.Errorf("%s: kernel not symmetric", k.Name())
		}
		// Positivity and decay.
		v := k.Eval(a, b)
		if v <= 0 || v >= 2 {
			t.Errorf("%s: k(a,b) = %g, want in (0, 2)", k.Name(), v)
		}
		// Monotone decay with distance.
		far := []float64{5, 5}
		if k.Eval(a, far) >= v {
			t.Errorf("%s: kernel does not decay with distance", k.Name())
		}
	}
}

func TestKernelSmoothnessOrdering(t *testing.T) {
	// At moderate distance, RBF decays fastest at long range; at a fixed
	// r=1 with unit scales the known values are:
	//  RBF: exp(-0.5) ~ 0.6065
	//  Matern52: (1+sqrt5+5/3)exp(-sqrt5) ~ 0.5240
	//  Matern32: (1+sqrt3)exp(-sqrt3) ~ 0.4850
	a := []float64{0}
	b := []float64{1}
	rbf := RBF{LengthScale: 1, Variance: 1}.Eval(a, b)
	m52 := Matern52{LengthScale: 1, Variance: 1}.Eval(a, b)
	m32 := Matern32{LengthScale: 1, Variance: 1}.Eval(a, b)
	if math.Abs(rbf-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("RBF(1) = %g", rbf)
	}
	want52 := (1 + math.Sqrt(5) + 5.0/3.0) * math.Exp(-math.Sqrt(5))
	if math.Abs(m52-want52) > 1e-12 {
		t.Errorf("Matern52(1) = %g, want %g", m52, want52)
	}
	want32 := (1 + math.Sqrt(3)) * math.Exp(-math.Sqrt(3))
	if math.Abs(m32-want32) > 1e-12 {
		t.Errorf("Matern32(1) = %g, want %g", m32, want32)
	}
	if !(m32 < m52 && m52 < rbf) {
		t.Errorf("smoothness ordering violated: %g %g %g", m32, m52, rbf)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err != ErrNoData {
		t.Errorf("empty fit err = %v, want ErrNoData", err)
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("inconsistent dims accepted")
	}
}

func TestInterpolationAtTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 3, 2}
	g, err := Fit(xs, ys, Options{Noise: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, sigma := g.Predict(x)
		if math.Abs(mu-ys[i]) > 1e-3 {
			t.Errorf("mean at training point %v = %g, want %g", x, mu, ys[i])
		}
		if sigma > 0.01 {
			t.Errorf("sigma at training point %v = %g, want ~0", x, sigma)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	xs := [][]float64{{0}, {0.1}, {0.2}}
	ys := []float64{0, 0.1, 0.2}
	g, err := Fit(xs, ys, Options{Kernel: Matern52{LengthScale: 0.2, Variance: 1}, Noise: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	_, near := g.Predict([]float64{0.15})
	_, far := g.Predict([]float64{2})
	if near >= far {
		t.Errorf("sigma near data (%g) >= far from data (%g)", near, far)
	}
	// Far from data the mean reverts to the prior (sample mean of y).
	mu, _ := g.Predict([]float64{100})
	if math.Abs(mu-0.1) > 1e-6 {
		t.Errorf("far-field mean = %g, want prior mean 0.1", mu)
	}
}

func TestPredictMeanMatchesPredict(t *testing.T) {
	rng := stats.NewRNG(4)
	xs := make([][]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = math.Sin(3*xs[i][0]) + xs[i][1]
	}
	g, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		mu, _ := g.Predict(x)
		if math.Abs(mu-g.PredictMean(x)) > 1e-12 {
			t.Fatal("PredictMean diverges from Predict")
		}
	}
}

func TestGPLearnsSmoothFunction(t *testing.T) {
	// Fit y = sin(2πx) on a grid and check generalization between knots.
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 20; i++ {
		x := float64(i) / 20
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*math.Pi*x))
	}
	g, err := Fit(xs, ys, Options{Kernel: Matern52{LengthScale: 0.3, Variance: 1}, Noise: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := (float64(i) + 0.5) / 40
		mu, _ := g.Predict([]float64{x})
		want := math.Sin(2 * math.Pi * x)
		if math.Abs(mu-want) > 0.05 {
			t.Errorf("prediction at %g = %g, want %g", x, mu, want)
		}
	}
}

func TestDuplicateInputsHandledViaJitter(t *testing.T) {
	// Identical inputs with different noisy observations must not break
	// the factorization.
	xs := [][]float64{{0.5}, {0.5}, {0.5}, {0.6}}
	ys := []float64{1.0, 1.1, 0.9, 2.0}
	g, err := Fit(xs, ys, Options{Noise: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.Predict([]float64{0.5})
	if mu < 0.8 || mu > 1.2 {
		t.Errorf("duplicate-point mean = %g, want near 1.0", mu)
	}
	if g.Jitter() <= 0 {
		t.Error("jitter should be positive")
	}
}

func TestSinglePoint(t *testing.T) {
	g, err := Fit([][]float64{{0.3, 0.7}}, []float64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := g.Predict([]float64{0.3, 0.7})
	if math.Abs(mu-5) > 1e-6 || sigma > 0.05 {
		t.Errorf("single-point posterior at datum: mu=%g sigma=%g", mu, sigma)
	}
	if g.NumObservations() != 1 {
		t.Errorf("NumObservations = %d", g.NumObservations())
	}
}

func TestLogMarginalLikelihoodPrefersTrueScale(t *testing.T) {
	// Data drawn smooth; a wildly wrong (tiny) length scale should have
	// lower marginal likelihood than a reasonable one.
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 15; i++ {
		x := float64(i) / 15
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(2*x))
	}
	good, err := Fit(xs, ys, Options{Kernel: Matern52{LengthScale: 0.5, Variance: 1}, Noise: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Fit(xs, ys, Options{Kernel: Matern52{LengthScale: 0.005, Variance: 1}, Noise: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if good.LogMarginalLikelihood(ys) <= bad.LogMarginalLikelihood(ys) {
		t.Error("marginal likelihood does not prefer the smooth model")
	}
}

func TestLogMarginalLikelihoodPanicsOnMismatch(t *testing.T) {
	g, err := Fit([][]float64{{0}}, []float64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched ys did not panic")
		}
	}()
	g.LogMarginalLikelihood([]float64{1, 2})
}

func TestMedianLengthScale(t *testing.T) {
	// Unit square corners: distances {1,1,1,1,sqrt2,sqrt2}; median = 1.
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if got := MedianLengthScale(xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("MedianLengthScale = %g, want 1", got)
	}
	// Degenerate cases fall back to 1.
	if got := MedianLengthScale(nil); got != 1 {
		t.Errorf("empty input: %g", got)
	}
	if got := MedianLengthScale([][]float64{{1}, {1}}); got != 1 {
		t.Errorf("identical points: %g", got)
	}
}

func TestDefaultKernelIsMatern52(t *testing.T) {
	g, err := Fit([][]float64{{0}, {1}}, []float64{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kernel().Name() != "matern52" {
		t.Errorf("default kernel = %s, want matern52", g.Kernel().Name())
	}
}

func TestFitDoesNotAliasCallerSlices(t *testing.T) {
	xs := [][]float64{{0.5}}
	ys := []float64{1}
	g, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xs[0][0] = 99 // mutate the caller's slice
	mu, _ := g.Predict([]float64{0.5})
	if math.Abs(mu-1) > 1e-6 {
		t.Error("GP aliased caller-owned input slice")
	}
}

func TestFitTunedSelectsByEvidence(t *testing.T) {
	// Smooth data: the tuned fit's marginal likelihood must be at least
	// as good as the plain heuristic fit's.
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 25; i++ {
		x := float64(i) / 25
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(4*x)+0.5*x)
	}
	plain, err := Fit(xs, ys, Options{Noise: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := FitTuned(xs, ys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.LogMarginalLikelihood(ys) < plain.LogMarginalLikelihood(ys)-1e-9 {
		t.Errorf("tuned evidence %g below heuristic %g",
			tuned.LogMarginalLikelihood(ys), plain.LogMarginalLikelihood(ys))
	}
	// And it should still interpolate.
	mu, _ := tuned.Predict([]float64{0.5})
	want := math.Sin(2.0) + 0.25
	if math.Abs(mu-want) > 0.1 {
		t.Errorf("tuned prediction at 0.5 = %g, want ~%g", mu, want)
	}
}

func TestFitTunedErrors(t *testing.T) {
	if _, err := FitTuned(nil, nil, 1e-4); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestPosteriorConsistentWithPredict(t *testing.T) {
	rng := stats.NewRNG(18)
	xs := make([][]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = math.Cos(2*xs[i][0]) * xs[i][1]
	}
	g, err := Fit(xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	points := [][]float64{{0.2, 0.3}, {0.8, 0.1}, {0.5, 0.9}}
	mu, cov := g.Posterior(points)
	for i, x := range points {
		wantMu, wantSigma := g.Predict(x)
		if math.Abs(mu[i]-wantMu) > 1e-9 {
			t.Errorf("point %d: posterior mean %g != Predict %g", i, mu[i], wantMu)
		}
		if math.Abs(math.Sqrt(math.Max(cov.At(i, i), 0))-wantSigma) > 1e-9 {
			t.Errorf("point %d: posterior sqrt-var %g != Predict sigma %g",
				i, math.Sqrt(cov.At(i, i)), wantSigma)
		}
	}
	// Symmetry.
	for i := range points {
		for j := range points {
			if math.Abs(cov.At(i, j)-cov.At(j, i)) > 1e-12 {
				t.Fatal("posterior covariance not symmetric")
			}
		}
	}
}
