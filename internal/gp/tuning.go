package gp

import "math"

// FitTuned fits a GP whose Matérn-5/2 length scale is selected by
// maximizing the log marginal likelihood over a multiplicative grid
// around the median-distance heuristic. This is the no-gradient
// counterpart of Skopt's hyperparameter optimization; it costs one
// Cholesky factorization per grid point, so it is intended for offline
// analysis and ablations rather than the 100 ms control loop (which uses
// the heuristic directly).
func FitTuned(xs [][]float64, ys []float64, noise float64) (*GP, error) {
	base := MedianLengthScale(xs)
	variance := sampleVariance(ys)
	if variance < 0.01 {
		variance = 0.01
	}
	grid := []float64{0.25, 0.5, 1, 2, 4}
	var best *GP
	bestEvidence := math.Inf(-1)
	var lastErr error
	for _, mult := range grid {
		g, err := Fit(xs, ys, Options{
			Kernel: Matern52{LengthScale: base * mult, Variance: variance},
			Noise:  noise,
		})
		if err != nil {
			lastErr = err
			continue
		}
		if ev := g.LogMarginalLikelihood(ys); ev > bestEvidence {
			bestEvidence = ev
			best = g
		}
	}
	if best == nil {
		return nil, lastErr
	}
	return best, nil
}

func sampleVariance(ys []float64) float64 {
	n := len(ys)
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	v := 0.0
	for _, y := range ys {
		d := y - mean
		v += d * d
	}
	return v / float64(n)
}
