// Incremental Gaussian-process regression for the engine's 100 ms tick.
//
// SATORI's proxy model changes in three distinct ways, with very different
// costs:
//
//  1. Re-weighting: the goal weights move, every recorded objective
//     y_i = W_T·T_i + W_F·F_i is reconstructed in software (Sec. III-B),
//     but the window's *inputs* are untouched. The kernel matrix — and
//     therefore its Cholesky factor — depends only on the inputs, so only
//     the solve α = K⁻¹(y−m) needs to be repeated: O(n²), not O(n³).
//  2. Append: a newly probed configuration joins the window. The factor
//     gains one row/column via linalg.Cholesky.Extend — again O(n²).
//  3. Eviction: the sliding window drops old configurations. The factor
//     is rebuilt from scratch (refactorization, not downdating — eviction
//     is rare relative to ticks, and refactorization is unconditionally
//     stable).
//
// Incremental implements exactly this split, with the same no-tuning
// hyperparameter heuristics as Fit: heuristics are re-evaluated only when
// the window's membership changes (or when the re-weighted targets move
// the data-scaled signal variance), and the full rebuild runs only when
// they actually changed. All paths reuse internal buffers, so a model
// that has reached its steady-state size performs no heap allocations.

package gp

import (
	"fmt"
	"math"

	"satori/internal/linalg"
)

// IncrementalStats counts how the model has been updated — the
// diagnostics behind the engine-overhead experiment's refit/extend/solve
// breakdown.
type IncrementalStats struct {
	// Refits is the number of full O(n³) refactorizations (membership or
	// hyperparameter changes, and Extend fallbacks).
	Refits int
	// Extends is the number of O(n²) rank-1 appends.
	Extends int
	// TargetSolves is the number of O(n²) α-only re-solves (pure target
	// re-weighting, the common case while the engine exploits).
	TargetSolves int
}

// Incremental is a GP posterior that can be updated in place. The zero
// value is not usable; construct with NewIncremental. Methods are not safe
// for concurrent use (Predict reuses an internal scratch).
type Incremental struct {
	fixed  Kernel // caller-pinned kernel; nil means heuristic refresh
	noise  float64
	kernel Kernel
	ls     float64 // heuristic length scale backing kernel
	vr     float64 // heuristic signal variance backing kernel

	n      int
	dim    int
	xbuf   [][]float64 // owned input copies; len >= n
	mean   float64
	alpha  []float64
	chol   *linalg.Cholesky
	jitter float64

	stats IncrementalStats

	kbuf    *linalg.Matrix
	distBuf []float64
	rowBuf  []float64
	ctrBuf  []float64
	scratch PredictScratch
}

// NewIncremental returns an empty incremental model. opt is interpreted
// exactly as by Fit: a nil Kernel selects the Matérn 5/2 heuristics,
// Noise defaults to 1e-4.
func NewIncremental(opt Options) *Incremental {
	noise := opt.Noise
	if noise <= 0 {
		noise = 1e-4
	}
	return &Incremental{fixed: opt.Kernel, kernel: opt.Kernel, noise: noise}
}

// Len returns how many points the posterior conditions on.
func (m *Incremental) Len() int { return m.n }

// Stats returns the update-path counters.
func (m *Incremental) Stats() IncrementalStats { return m.stats }

// Kernel returns the model's current kernel (nil before the first Reset
// in heuristic mode).
func (m *Incremental) Kernel() Kernel { return m.kernel }

// Jitter returns the diagonal jitter of the current factorization.
func (m *Incremental) Jitter() float64 { return m.jitter }

// Reset fits the model from scratch on the given window, adopting its
// order. On any error the model is left empty (Len 0) and must be Reset
// again before use; its buffers are retained.
func (m *Incremental) Reset(xs [][]float64, ys []float64) error {
	n := len(xs)
	if n == 0 {
		m.n = 0
		return ErrNoData
	}
	if len(ys) != n {
		m.n = 0
		return fmt.Errorf("gp: %d inputs but %d observations", n, len(ys))
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			m.n = 0
			return fmt.Errorf("gp: input %d has dim %d, want %d", i, len(x), dim)
		}
	}
	m.dim = dim
	for i, x := range xs {
		m.setX(i, x)
	}
	m.n = n
	if m.fixed == nil {
		m.refreshHeuristics(ys)
	}
	return m.rebuild(ys)
}

// Append extends the model with one new point. ys carries the (possibly
// re-weighted) targets for every point, the new one last, so a single α
// solve folds in both the append and this tick's re-weighting. When the
// no-tuning hyperparameter heuristics are unchanged by the new point the
// factor grows by a rank-1 Extend in O(n²); otherwise the kernel changed
// and the model refits — identically to a from-scratch Fit — in place.
func (m *Incremental) Append(x []float64, ys []float64) error {
	if m.n == 0 {
		return m.Reset([][]float64{x}, ys)
	}
	if len(ys) != m.n+1 {
		err := fmt.Errorf("gp: Append got %d targets for %d points", len(ys), m.n+1)
		m.n = 0
		return err
	}
	if len(x) != m.dim {
		err := fmt.Errorf("gp: Append input has dim %d, want %d", len(x), m.dim)
		m.n = 0
		return err
	}
	m.setX(m.n, x)
	m.n++
	if m.fixed == nil && m.refreshHeuristics(ys) {
		// Membership change moved the heuristics: hyperparameter
		// refresh, which invalidates every kernel entry.
		return m.rebuild(ys)
	}
	// Kernel unchanged: rank-1 append of the new row/column.
	row := m.growRow(m.n - 1)
	xnew := m.xbuf[m.n-1]
	for i := 0; i < m.n-1; i++ {
		row[i] = m.kernel.Eval(xnew, m.xbuf[i])
	}
	if err := m.chol.Extend(row, m.kernel.Eval(xnew, xnew)+m.jitter); err != nil {
		// Near-singular append (e.g. a duplicate input): fall back to
		// refactorization with jitter escalation.
		return m.rebuild(ys)
	}
	m.stats.Extends++
	m.solveAlpha(ys)
	return nil
}

// UpdateTargets re-solves the posterior for re-weighted targets over the
// unchanged window — the engine's fast path while it exploits: the paper
// skips the proxy-model update after the optimal configuration has been
// detected, and with an unchanged window membership the kernel factor
// carries over, leaving one O(n²) solve. When the data-scaled variance
// heuristic moves (it is floored, so it rarely does), the kernel itself
// changed and the model refits in place.
func (m *Incremental) UpdateTargets(ys []float64) error {
	if m.n == 0 {
		return ErrNoData
	}
	if len(ys) != m.n {
		err := fmt.Errorf("gp: UpdateTargets got %d targets for %d points", len(ys), m.n)
		m.n = 0
		return err
	}
	if m.fixed == nil && m.refreshHeuristics(ys) {
		return m.rebuild(ys)
	}
	m.stats.TargetSolves++
	m.solveAlpha(ys)
	return nil
}

// refreshHeuristics re-evaluates the no-tuning hyperparameters over the
// current window and reports whether they changed, updating the kernel
// when they did. Note the 256-point cap in the median scan: beyond it the
// scan is order-sensitive, so windows larger than 256 may refresh on
// revisit-induced reorderings that a from-scratch Fit would not notice.
func (m *Incremental) refreshHeuristics(ys []float64) bool {
	var ls float64
	ls, m.distBuf = medianLengthScaleInto(m.distBuf, m.xbuf[:m.n])
	vr := flooredVariance(ys, sampleMean(ys))
	if ls == m.ls && vr == m.vr && m.kernel != nil {
		return false
	}
	m.ls, m.vr = ls, vr
	m.kernel = Matern52{LengthScale: ls, Variance: vr}
	return true
}

// rebuild refactorizes the kernel matrix — the same computation as Fit,
// including the jitter escalation schedule, but into reused buffers. On
// failure the model is left empty.
func (m *Incremental) rebuild(ys []float64) error {
	n := m.n
	if m.kbuf == nil {
		m.kbuf = linalg.NewMatrix(n, n)
	} else if cap(m.kbuf.Data) < n*n {
		*m.kbuf = *linalg.NewMatrix(n, n)
	} else {
		m.kbuf.Rows, m.kbuf.Cols = n, n
		m.kbuf.Data = m.kbuf.Data[:n*n]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := m.kernel.Eval(m.xbuf[i], m.xbuf[j])
			m.kbuf.Set(i, j, v)
			m.kbuf.Set(j, i, v)
		}
	}
	if m.chol == nil {
		m.chol = &linalg.Cholesky{}
	}
	var err error
	for attempt, j := 0, m.noise; attempt < 8; attempt, j = attempt+1, j*10 {
		for i := 0; i < n; i++ {
			m.kbuf.Set(i, i, m.kernel.Eval(m.xbuf[i], m.xbuf[i])+j)
		}
		if err = m.chol.Factorize(m.kbuf); err == nil {
			m.jitter = j
			break
		}
	}
	if err != nil {
		m.n = 0
		return fmt.Errorf("gp: kernel matrix not factorizable even with jitter: %w", err)
	}
	m.stats.Refits++
	m.solveAlpha(ys)
	return nil
}

// solveAlpha recomputes the prior mean and α = K⁻¹(y − m) into reused
// buffers.
func (m *Incremental) solveAlpha(ys []float64) {
	m.mean = sampleMean(ys)
	if cap(m.ctrBuf) < m.n {
		m.ctrBuf = make([]float64, m.n)
		m.alpha = make([]float64, m.n)
	}
	m.ctrBuf = m.ctrBuf[:m.n]
	m.alpha = m.alpha[:m.n]
	for i, y := range ys {
		m.ctrBuf[i] = y - m.mean
	}
	m.chol.SolveVecInto(m.alpha, m.ctrBuf)
}

// setX copies x into the owned input buffer at index i.
func (m *Incremental) setX(i int, x []float64) {
	for i >= len(m.xbuf) {
		m.xbuf = append(m.xbuf, make([]float64, len(x)))
	}
	if len(m.xbuf[i]) != len(x) {
		m.xbuf[i] = make([]float64, len(x))
	}
	copy(m.xbuf[i], x)
}

// growRow readies the kernel-row scratch for n entries.
func (m *Incremental) growRow(n int) []float64 {
	if cap(m.rowBuf) < n {
		m.rowBuf = make([]float64, n)
	}
	m.rowBuf = m.rowBuf[:n]
	return m.rowBuf
}

// Predict returns the posterior mean and standard deviation at x, reusing
// the model's internal scratch (zero allocations at steady state; not
// concurrency-safe).
func (m *Incremental) Predict(x []float64) (mu, sigma float64) {
	return m.PredictInto(&m.scratch, x)
}

// PredictInto is Predict with caller-owned scratch.
func (m *Incremental) PredictInto(s *PredictScratch, x []float64) (mu, sigma float64) {
	n := m.n
	s.resize(n)
	for i := 0; i < n; i++ {
		s.kstar[i] = m.kernel.Eval(x, m.xbuf[i])
	}
	mu = m.mean + linalg.Dot(s.kstar, m.alpha)
	m.chol.SolveLowerInto(s.v, s.kstar)
	variance := m.kernel.Eval(x, x) - linalg.Dot(s.v, s.v)
	if variance < 0 {
		variance = 0
	}
	return mu, math.Sqrt(variance)
}

// PredictMean returns only the posterior mean at x (no triangular solve,
// no allocations).
func (m *Incremental) PredictMean(x []float64) float64 {
	s := &m.scratch
	s.resize(m.n)
	for i := 0; i < m.n; i++ {
		s.kstar[i] = m.kernel.Eval(x, m.xbuf[i])
	}
	return m.mean + linalg.Dot(s.kstar, m.alpha)
}

// Posterior returns the joint posterior mean vector and covariance matrix
// over a set of query points — same contract as GP.Posterior, for
// Thompson sampling.
func (m *Incremental) Posterior(points [][]float64) (mu []float64, cov *linalg.Matrix) {
	return posteriorBatch(points, m.xbuf[:m.n], m.alpha, m.chol, m.kernel, m.mean)
}
