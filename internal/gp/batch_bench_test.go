package gp

import (
	"math/rand"
	"testing"

	"satori/internal/linalg"
)

func benchModel(b *testing.B, n, dim int) (*Incremental, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	xs := randomInputs(rng, n, dim)
	ys := randomTargets(rng, xs)
	m := NewIncremental(Options{})
	if err := m.Reset(xs, ys); err != nil {
		b.Fatal(err)
	}
	return m, randomInputs(rng, 128, dim)
}

// BenchmarkKernelFillRow times one model-row worth of kernel evaluations
// (the n×m cross-covariance fill is the irreducible part of pool scoring).
func BenchmarkKernelFillRow(b *testing.B) {
	m, pool := benchModel(b, 64, 15)
	row := make([]float64, len(pool))
	xi := m.xbuf[0]
	kernel := m.kernel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c, x := range pool {
			row[c] = kernel.Eval(x, xi)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(pool)), "ns/eval")
}

// BenchmarkSolveLowerVec times the latency-bound per-candidate triangular
// solve at the engine's steady-state model size.
func BenchmarkSolveLowerVec(b *testing.B) {
	m, _ := benchModel(b, 64, 15)
	bvec := make([]float64, 64)
	for i := range bvec {
		bvec[i] = float64(i%7) * 0.1
	}
	dst := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.chol.SolveLowerInto(dst, bvec)
	}
}

// benchSolveLowerMatrix times the batched solve for a q-candidate pool
// (compare the ns/cand metric against BenchmarkSolveLowerVec's ns/op).
func benchSolveLowerMatrix(b *testing.B, q int) {
	m, _ := benchModel(b, 64, 15)
	bm := linalg.NewMatrix(64, q)
	for i := range bm.Data {
		bm.Data[i] = float64(i%11) * 0.05
	}
	dst := linalg.NewMatrix(64, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.chol.SolveLowerMatrixInto(dst, bm)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(q), "ns/cand")
}

func BenchmarkSolveLowerMatrix32(b *testing.B)  { benchSolveLowerMatrix(b, 32) }
func BenchmarkSolveLowerMatrix128(b *testing.B) { benchSolveLowerMatrix(b, 128) }

// BenchmarkFillRowsMatern52 times the staged concrete-kernel batch fill
// (compare ns/eval against BenchmarkKernelFillRow's interface path).
func BenchmarkFillRowsMatern52(b *testing.B) {
	m, pool := benchModel(b, 64, 15)
	k := m.kernel.(Matern52)
	var s PredictScratch
	s.resizeBatch(64, len(pool))
	mu := make([]float64, len(pool))
	alpha := m.alpha
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillRowsMatern52(&s, &s.kmat, mu, alpha, m.xbuf[:64], pool, k)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(64*len(pool)), "ns/eval")
}
