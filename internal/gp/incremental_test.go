package gp

import (
	"math"
	"math/rand"
	"testing"
)

// fitReference fits a from-scratch GP on the same data and options, the
// golden model the incremental path must agree with.
func fitReference(t *testing.T, opt Options, xs [][]float64, ys []float64) *GP {
	t.Helper()
	g, err := Fit(xs, ys, opt)
	if err != nil {
		t.Fatalf("reference Fit: %v", err)
	}
	return g
}

func randomInputs(rng *rand.Rand, n, dim int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
	}
	return xs
}

func randomTargets(rng *rand.Rand, xs [][]float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		s := 0.0
		for _, v := range x {
			s += math.Sin(3 * v)
		}
		ys[i] = s + 0.05*rng.NormFloat64()
	}
	return ys
}

// comparePosteriors checks incremental vs reference posterior mean/σ at
// random query points to within tol.
func comparePosteriors(t *testing.T, m *Incremental, g *GP, rng *rand.Rand, dim int, tol float64, ctx string) {
	t.Helper()
	for q := 0; q < 8; q++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64() * 1.2
		}
		mi, si := m.Predict(x)
		mg, sg := g.Predict(x)
		if math.Abs(mi-mg) > tol || math.Abs(si-sg) > tol {
			t.Fatalf("%s: posterior mismatch at query %d: incremental (%.12g, %.12g) vs fit (%.12g, %.12g)",
				ctx, q, mi, si, mg, sg)
		}
	}
}

// TestIncrementalMatchesFitFixedKernel is the golden equivalence test for
// the ISSUE acceptance criterion: across appends, target re-weightings,
// and window evictions, the incremental posterior matches a from-scratch
// Fit within 1e-9. With a pinned kernel the append path always uses the
// O(n²) Cholesky Extend.
func TestIncrementalMatchesFitFixedKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opt := Options{Kernel: Matern52{LengthScale: 0.6, Variance: 1.0}, Noise: 1e-3}
	const dim = 6

	m := NewIncremental(opt)
	xs := randomInputs(rng, 4, dim)
	ys := randomTargets(rng, xs)
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}

	for step := 0; step < 60; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(xs) < 3: // append
			x := make([]float64, dim)
			for d := range x {
				x[d] = rng.Float64()
			}
			xs = append(xs, append([]float64(nil), x...))
			ys = append(ys, math.Sin(3*x[0])+0.05*rng.NormFloat64())
			if err := m.Append(x, ys); err != nil {
				t.Fatalf("step %d: Append: %v", step, err)
			}
		case op == 1: // target re-weighting over the unchanged window
			for i := range ys {
				ys[i] = 0.7*ys[i] + 0.3*rng.NormFloat64()
			}
			if err := m.UpdateTargets(ys); err != nil {
				t.Fatalf("step %d: UpdateTargets: %v", step, err)
			}
		default: // window eviction: drop the oldest point
			xs = xs[1:]
			ys = ys[1:]
			if err := m.Reset(xs, ys); err != nil {
				t.Fatalf("step %d: Reset after eviction: %v", step, err)
			}
		}
		g := fitReference(t, opt, xs, ys)
		comparePosteriors(t, m, g, rng, dim, 1e-9, "fixed kernel")
	}
	st := m.Stats()
	if st.Extends == 0 {
		t.Fatalf("fixed-kernel run never exercised the Extend path: %+v", st)
	}
	if st.TargetSolves == 0 {
		t.Fatalf("run never exercised the α-only solve path: %+v", st)
	}
}

// TestIncrementalMatchesFitHeuristicKernel exercises the default no-tuning
// heuristics: the incremental model must re-evaluate the median
// length-scale and floored variance on membership changes and refit only
// when they move, yet always agree with a from-scratch Fit.
func TestIncrementalMatchesFitHeuristicKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opt := Options{Noise: 1e-3}
	const dim = 4

	m := NewIncremental(opt)
	xs := randomInputs(rng, 5, dim)
	ys := randomTargets(rng, xs)
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}

	for step := 0; step < 40; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(xs) < 3:
			x := make([]float64, dim)
			for d := range x {
				x[d] = rng.Float64()
			}
			xs = append(xs, append([]float64(nil), x...))
			ys = append(ys, math.Sin(3*x[0])+0.05*rng.NormFloat64())
			if err := m.Append(x, ys); err != nil {
				t.Fatalf("step %d: Append: %v", step, err)
			}
		case op == 1:
			for i := range ys {
				ys[i] = 0.8*ys[i] + 0.2*rng.NormFloat64()
			}
			if err := m.UpdateTargets(ys); err != nil {
				t.Fatalf("step %d: UpdateTargets: %v", step, err)
			}
		default:
			xs = xs[1:]
			ys = ys[1:]
			if err := m.Reset(xs, ys); err != nil {
				t.Fatalf("step %d: Reset after eviction: %v", step, err)
			}
		}
		g := fitReference(t, opt, xs, ys)
		comparePosteriors(t, m, g, rng, dim, 1e-9, "heuristic kernel")

		// The heuristics the incremental model settled on must be the
		// ones Fit derives from the same data.
		mk, gk := m.Kernel().(Matern52), g.Kernel().(Matern52)
		if mk != gk {
			t.Fatalf("step %d: kernel drift: incremental %+v vs fit %+v", step, mk, gk)
		}
	}
}

// TestIncrementalTargetSolveSkipsRefit pins the engine's exploit-tick fast
// path: with membership unchanged and the variance floor binding (small
// targets), UpdateTargets must not refactorize.
func TestIncrementalTargetSolveSkipsRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewIncremental(Options{Noise: 1e-3})
	xs := randomInputs(rng, 12, 5)
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = 0.01 * rng.Float64() // variance well under the 0.01 floor
	}
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	refits := m.Stats().Refits
	for k := 0; k < 10; k++ {
		for i := range ys {
			ys[i] = 0.01 * rng.Float64()
		}
		if err := m.UpdateTargets(ys); err != nil {
			t.Fatalf("UpdateTargets: %v", err)
		}
	}
	st := m.Stats()
	if st.Refits != refits {
		t.Fatalf("UpdateTargets refactorized %d times with unchanged membership", st.Refits-refits)
	}
	if st.TargetSolves != 10 {
		t.Fatalf("TargetSolves = %d, want 10", st.TargetSolves)
	}
}

// TestIncrementalDuplicateAppendFallsBack appends an exact duplicate
// input, which makes the extended kernel matrix numerically singular at
// base jitter; the model must fall back to refactorization with jitter
// escalation — the same escape hatch Fit has — and still match it.
func TestIncrementalDuplicateAppendFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opt := Options{Kernel: Matern52{LengthScale: 0.7, Variance: 1.0}, Noise: 1e-9}
	m := NewIncremental(opt)
	xs := randomInputs(rng, 6, 3)
	ys := randomTargets(rng, xs)
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	dup := append([]float64(nil), xs[2]...)
	xs = append(xs, dup)
	ys = append(ys, ys[2])
	if err := m.Append(dup, ys); err != nil {
		t.Fatalf("Append duplicate: %v", err)
	}
	g := fitReference(t, opt, xs, ys)
	comparePosteriors(t, m, g, rng, 3, 1e-6, "duplicate append")
	if m.Jitter() != g.Jitter() {
		t.Fatalf("jitter drift: incremental %g vs fit %g", m.Jitter(), g.Jitter())
	}
}

// TestIncrementalErrorsLeaveModelEmpty: malformed updates must not leave a
// half-updated posterior behind.
func TestIncrementalErrorsLeaveModelEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewIncremental(Options{})
	xs := randomInputs(rng, 4, 3)
	ys := randomTargets(rng, xs)
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := m.Append([]float64{1, 2}, append(ys, 0)); err == nil {
		t.Fatal("Append with wrong dim should fail")
	}
	if m.Len() != 0 {
		t.Fatalf("model not empty after failed Append: Len = %d", m.Len())
	}
	// And it must be recoverable via Reset.
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset after failure: %v", err)
	}
	if m.Len() != len(xs) {
		t.Fatalf("Len = %d after recovery, want %d", m.Len(), len(xs))
	}
}

// TestIncrementalPosteriorMatchesGP checks the joint Posterior used by
// Thompson sampling agrees with the from-scratch model.
func TestIncrementalPosteriorMatchesGP(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	opt := Options{Kernel: Matern52{LengthScale: 0.5, Variance: 1.0}, Noise: 1e-3}
	m := NewIncremental(opt)
	xs := randomInputs(rng, 10, 4)
	ys := randomTargets(rng, xs)
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	g := fitReference(t, opt, xs, ys)
	pts := randomInputs(rng, 5, 4)
	mi, ci := m.Posterior(pts)
	mg, cg := g.Posterior(pts)
	for i := range mi {
		if math.Abs(mi[i]-mg[i]) > 1e-9 {
			t.Fatalf("posterior mean %d: %g vs %g", i, mi[i], mg[i])
		}
		for j := range mi {
			if math.Abs(ci.At(i, j)-cg.At(i, j)) > 1e-9 {
				t.Fatalf("posterior cov (%d,%d): %g vs %g", i, j, ci.At(i, j), cg.At(i, j))
			}
		}
	}
}

// TestIncrementalSteadyStateAllocs pins the zero-allocation contract on
// the hot paths: prediction with caller scratch, α-only target updates,
// and fixed-kernel appends at constant window size are all alloc-free
// once buffers have warmed up.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	opt := Options{Kernel: Matern52{LengthScale: 0.6, Variance: 1.0}, Noise: 1e-3}
	m := NewIncremental(opt)
	xs := randomInputs(rng, 16, 5)
	ys := randomTargets(rng, xs)
	if err := m.Reset(xs, ys); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	q := []float64{0.3, 0.1, 0.9, 0.5, 0.2}
	var scratch PredictScratch
	m.PredictInto(&scratch, q) // warm the scratch
	if n := testing.AllocsPerRun(50, func() { m.PredictInto(&scratch, q) }); n != 0 {
		t.Fatalf("PredictInto allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(50, func() { m.Predict(q) }); n != 0 {
		t.Fatalf("Predict allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(50, func() { m.PredictMean(q) }); n != 0 {
		t.Fatalf("PredictMean allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := m.UpdateTargets(ys); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("UpdateTargets allocates %v times per call", n)
	}
	// Reset to the same size reuses every buffer.
	if n := testing.AllocsPerRun(50, func() {
		if err := m.Reset(xs, ys); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("same-size Reset allocates %v times per call", n)
	}
}
