// Package gp implements Gaussian-process regression — the stochastic proxy
// model M(x) at the heart of SATORI's Bayesian-optimization engine
// (Sec. III-A). For every candidate configuration the posterior provides a
// predicted mean and an uncertainty (standard deviation); the acquisition
// function in package bo combines the two.
//
// The default kernel is Matérn 5/2, the paper's choice; RBF and Matérn 3/2
// are also provided. Fitting is exact GP regression via Cholesky
// factorization with automatic jitter escalation for numerical safety, and
// an optional median-distance length-scale heuristic so no offline
// hyperparameter tuning is required (consistent with SATORI's
// no-offline-profiling design goal).
package gp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"satori/internal/linalg"
)

// Kernel is a positive-definite covariance function over input vectors.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel for logs.
	Name() string
}

// Matern52 is the Matérn covariance kernel with smoothness ν = 5/2, the
// proxy-model kernel used by SATORI.
type Matern52 struct {
	// LengthScale l > 0 controls how quickly correlation decays with
	// input distance.
	LengthScale float64
	// Variance σ² > 0 scales the kernel.
	Variance float64
}

// Eval implements Kernel.
func (k Matern52) Eval(a, b []float64) float64 {
	r := math.Sqrt(linalg.SquaredDistance(a, b)) / k.LengthScale
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

// Name implements Kernel.
func (k Matern52) Name() string { return "matern52" }

// Matern32 is the Matérn kernel with ν = 3/2 (rougher sample paths).
type Matern32 struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k Matern32) Eval(a, b []float64) float64 {
	r := math.Sqrt(linalg.SquaredDistance(a, b)) / k.LengthScale
	s3r := math.Sqrt(3) * r
	return k.Variance * (1 + s3r) * math.Exp(-s3r)
}

// Name implements Kernel.
func (k Matern32) Name() string { return "matern32" }

// RBF is the squared-exponential kernel (infinitely smooth sample paths).
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	return k.Variance * math.Exp(-linalg.SquaredDistance(a, b)/(2*k.LengthScale*k.LengthScale))
}

// Name implements Kernel.
func (k RBF) Name() string { return "rbf" }

// ErrNoData is returned when fitting with no observations.
var ErrNoData = errors.New("gp: no observations to fit")

// GP is a fitted Gaussian-process posterior.
type GP struct {
	kernel Kernel
	noise  float64 // observation noise variance added to the diagonal

	xs     [][]float64
	alpha  []float64 // K⁻¹(y − mean)
	chol   *linalg.Cholesky
	mean   float64 // constant prior mean (set to the sample mean of y)
	jitter float64 // jitter that was needed for factorization
}

// Options configures Fit.
type Options struct {
	// Kernel defaults to Matern52 with heuristic length scale when nil.
	Kernel Kernel
	// Noise is the observation noise variance; defaults to 1e-4, which
	// matches ~1% measurement noise on objectives scaled to [0, 1].
	Noise float64
}

// Fit performs exact GP regression on observations (xs[i], ys[i]). All
// inputs must share one dimensionality. A constant prior mean equal to the
// sample mean of ys is used so predictions far from data revert to the
// average observed objective rather than to zero.
func Fit(xs [][]float64, ys []float64, opt Options) (*GP, error) {
	n := len(xs)
	if n == 0 {
		return nil, ErrNoData
	}
	if len(ys) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d observations", n, len(ys))
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("gp: input %d has dim %d, want %d", i, len(x), dim)
		}
	}
	noise := opt.Noise
	if noise <= 0 {
		noise = 1e-4
	}
	mean := sampleMean(ys)

	kernel := opt.Kernel
	if kernel == nil {
		// No-tuning heuristics: length scale from the median pairwise
		// input distance, signal variance from the sample variance of
		// the observations (floored so a flat initial design still
		// yields a usable prior). This keeps posterior uncertainty on
		// the same scale as the data, which Expected Improvement
		// depends on.
		ls, _ := medianLengthScaleInto(nil, xs)
		kernel = Matern52{LengthScale: ls, Variance: flooredVariance(ys, mean)}
	}

	// Build the kernel matrix K + noise·I; escalate jitter on failure.
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(xs[i], xs[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	var chol *linalg.Cholesky
	var err error
	jitter := 0.0
	for attempt, j := 0, noise; attempt < 8; attempt, j = attempt+1, j*10 {
		kj := k.Clone()
		for i := 0; i < n; i++ {
			kj.Set(i, i, kj.At(i, i)+j)
		}
		chol, err = linalg.NewCholesky(kj)
		if err == nil {
			jitter = j
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("gp: kernel matrix not factorizable even with jitter: %w", err)
	}

	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - mean
	}
	g := &GP{
		kernel: kernel,
		noise:  noise,
		xs:     cloneInputs(xs),
		alpha:  chol.SolveVec(centered),
		chol:   chol,
		mean:   mean,
		jitter: jitter,
	}
	return g, nil
}

func cloneInputs(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = make([]float64, len(x))
		copy(out[i], x)
	}
	return out
}

// PredictScratch is caller-owned workspace for zero-allocation posterior
// prediction. The zero value is ready to use; buffers grow on first use
// and are reused afterwards. A scratch must not be shared between
// concurrent predictions.
type PredictScratch struct {
	kstar []float64
	v     []float64
	// Batch workspace (PredictBatchInto): the n×m cross-covariance block
	// and its triangular solve, stored as value matrices so steady-state
	// batches touch the allocator only when the pool outgrows them, plus
	// the dim-major transposed pool the staged fill streams over.
	kmat linalg.Matrix
	vmat linalg.Matrix
	pt   []float64
}

// resize readies the scratch for an n-observation model.
func (s *PredictScratch) resize(n int) {
	if cap(s.kstar) < n {
		s.kstar = make([]float64, n)
		s.v = make([]float64, n)
	}
	s.kstar = s.kstar[:n]
	s.v = s.v[:n]
}

// resizeBatch readies the batch workspace for m query points against an
// n-observation model.
func (s *PredictScratch) resizeBatch(n, m int) {
	if cap(s.kmat.Data) < n*m {
		s.kmat.Data = make([]float64, n*m)
		s.vmat.Data = make([]float64, n*m)
	}
	s.kmat.Rows, s.kmat.Cols, s.kmat.Data = n, m, s.kmat.Data[:n*m]
	s.vmat.Rows, s.vmat.Cols, s.vmat.Data = n, m, s.vmat.Data[:n*m]
}

// Predict returns the posterior mean and standard deviation at x.
func (g *GP) Predict(x []float64) (mu, sigma float64) {
	var s PredictScratch
	return g.PredictInto(&s, x)
}

// PredictInto is Predict with caller-owned scratch: after the scratch's
// buffers have grown to the model size it performs no allocations, which
// is what keeps batch candidate scoring off the allocator on the engine's
// 100 ms tick.
func (g *GP) PredictInto(s *PredictScratch, x []float64) (mu, sigma float64) {
	n := len(g.xs)
	s.resize(n)
	for i, xi := range g.xs {
		s.kstar[i] = g.kernel.Eval(x, xi)
	}
	mu = g.mean + linalg.Dot(s.kstar, g.alpha)
	// σ² = k(x,x) − k*ᵀ K⁻¹ k*, computed via the triangular solve
	// v = L⁻¹ k* so that k*ᵀK⁻¹k* = vᵀv.
	g.chol.SolveLowerInto(s.v, s.kstar)
	variance := g.kernel.Eval(x, x) - linalg.Dot(s.v, s.v)
	if variance < 0 {
		variance = 0
	}
	return mu, math.Sqrt(variance)
}

// PredictMean returns only the posterior mean at x (cheaper than Predict).
func (g *GP) PredictMean(x []float64) float64 {
	kstar := make([]float64, len(g.xs))
	for i, xi := range g.xs {
		kstar[i] = g.kernel.Eval(x, xi)
	}
	return g.mean + linalg.Dot(kstar, g.alpha)
}

// Posterior returns the joint posterior mean vector and covariance matrix
// over a set of query points — the ingredients for Thompson sampling and
// other batch acquisitions. cov[i][j] = k(xi,xj) − v_iᵀv_j with
// v_i = L⁻¹k*(xi), the m solves fused into one matrix triangular sweep.
func (g *GP) Posterior(points [][]float64) (mu []float64, cov *linalg.Matrix) {
	return posteriorBatch(points, g.xs, g.alpha, g.chol, g.kernel, g.mean)
}

// LogMarginalLikelihood returns log p(y | X) of the fitted model — useful
// for diagnosing kernel choices in tests and ablations.
func (g *GP) LogMarginalLikelihood(ys []float64) float64 {
	n := len(g.xs)
	if len(ys) != n {
		panic(fmt.Sprintf("gp: LogMarginalLikelihood got %d observations for %d inputs", len(ys), n))
	}
	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - g.mean
	}
	fit := linalg.Dot(centered, g.chol.SolveVec(centered))
	return -0.5*fit - 0.5*g.chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}

// NumObservations returns how many points the posterior conditions on.
func (g *GP) NumObservations() int { return len(g.xs) }

// Jitter returns the diagonal jitter that was required to factorize the
// kernel matrix (equal to the noise term when no escalation was needed).
func (g *GP) Jitter() float64 { return g.jitter }

// Kernel returns the kernel the model was fitted with.
func (g *GP) Kernel() Kernel { return g.kernel }

// MedianLengthScale returns the median pairwise Euclidean distance between
// inputs — a standard no-tuning heuristic for the kernel length scale. It
// falls back to 1 when there are fewer than two distinct points.
func MedianLengthScale(xs [][]float64) float64 {
	ls, _ := medianLengthScaleInto(nil, xs)
	return ls
}

// medianLengthScaleInto is MedianLengthScale with a reusable distance
// buffer (returned grown so callers can keep it across refreshes).
func medianLengthScaleInto(dists []float64, xs [][]float64) (float64, []float64) {
	dists = dists[:0]
	// Cap the O(n²) pair scan; beyond a few hundred points the median
	// is already stable.
	limit := len(xs)
	if limit > 256 {
		limit = 256
	}
	for i := 0; i < limit; i++ {
		for j := i + 1; j < limit; j++ {
			d := math.Sqrt(linalg.SquaredDistance(xs[i], xs[j]))
			if d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 1, dists
	}
	sort.Float64s(dists)
	return dists[len(dists)/2], dists
}

// sampleMean returns the average of ys (the GP's constant prior mean).
func sampleMean(ys []float64) float64 {
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	return mean / float64(len(ys))
}

// flooredVariance is the no-tuning signal-variance heuristic: the sample
// variance of the observations, floored at (0.1)². Objectives in this
// repository live on a [0, 1] scale, and a clustered initial design
// (e.g. SATORI's low-imbalance S_init) would otherwise collapse the prior
// uncertainty and choke off exploration.
func flooredVariance(ys []float64, mean float64) float64 {
	v := 0.0
	for _, y := range ys {
		d := y - mean
		v += d * d
	}
	v /= float64(len(ys))
	if v < 0.01 {
		v = 0.01
	}
	return v
}
