package core

import (
	"math"
	"testing"

	"satori/internal/policy"
	"satori/internal/resource"
	"satori/internal/stats"
)

// syntheticEnv provides a deterministic (throughput, fairness) landscape
// over a small space so engine behavior can be tested without the full
// simulator.
type syntheticEnv struct {
	space *resource.Space
	rng   *stats.RNG
	noise float64
}

func newSyntheticEnv(noise float64) *syntheticEnv {
	return &syntheticEnv{
		space: resource.MustNewSpace(2,
			resource.Resource{Kind: resource.Cores, Units: 8},
			resource.Resource{Kind: resource.LLCWays, Units: 6},
		),
		rng:   stats.NewRNG(21),
		noise: noise,
	}
}

// eval returns (throughput, fairness): throughput peaks when job 0 is
// favored on cores and job 1 on ways; fairness peaks at the equal split.
func (e *syntheticEnv) eval(c resource.Config) (float64, float64) {
	c0 := float64(c.Alloc[0][0]) / 8
	w1 := float64(c.Alloc[1][1]) / 6
	tp := 0.4 + 0.3*math.Exp(-8*(c0-0.75)*(c0-0.75)) + 0.3*math.Exp(-8*(w1-0.67)*(w1-0.67))
	imb := e.space.Imbalance(c)
	fair := 1 / (1 + imb)
	if e.noise > 0 {
		tp *= 1 + e.noise*e.rng.NormFloat64()
		fair *= 1 + e.noise*e.rng.NormFloat64()
	}
	return clamp01(tp), clamp01(fair)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// drive runs the engine on the synthetic environment for n ticks and
// returns the mean balanced objective over the second half of the run.
func drive(t *testing.T, eng *Engine, env *syntheticEnv, n int) float64 {
	t.Helper()
	current := env.space.EqualSplit()
	var acc stats.Welford
	for tick := 1; tick <= n; tick++ {
		tp, fair := env.eval(current)
		if tick > n/2 {
			acc.Add(0.5*tp + 0.5*fair)
		}
		obs := policy.Observation{
			Tick: tick, Time: float64(tick) * 0.1,
			Throughput: tp, Fairness: fair,
		}
		next := eng.Decide(obs, current)
		if err := env.space.Validate(next); err != nil {
			t.Fatalf("engine produced invalid config at tick %d: %v", tick, err)
		}
		current = next
	}
	return acc.Mean()
}

func TestEngineProducesValidConfigs(t *testing.T) {
	env := newSyntheticEnv(0.01)
	eng, err := New(env.space, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, env, 120)
	if eng.FitFailures() != 0 {
		t.Errorf("%d proxy fit failures", eng.FitFailures())
	}
}

func TestEngineBeatsRandomSearch(t *testing.T) {
	env := newSyntheticEnv(0.01)
	eng, err := New(env.space, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	engScore := drive(t, eng, env, 200)

	// Random baseline on an identical fresh environment.
	env2 := newSyntheticEnv(0.01)
	rng := stats.NewRNG(3)
	current := env2.space.EqualSplit()
	var acc stats.Welford
	for tick := 1; tick <= 200; tick++ {
		tp, fair := env2.eval(current)
		if tick > 100 {
			acc.Add(0.5*tp + 0.5*fair)
		}
		current = env2.space.Random(rng)
	}
	if engScore <= acc.Mean() {
		t.Errorf("engine %.4f did not beat random search %.4f", engScore, acc.Mean())
	}
}

func TestEngineSeedsWithInitialSet(t *testing.T) {
	env := newSyntheticEnv(0)
	eng, err := New(env.space, Options{Seed: 4, InitialSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	current := env.space.EqualSplit()
	// The first decisions must walk the low-imbalance initial set; the
	// very first returned config is the equal split itself (head of
	// S_init).
	obs := policy.Observation{Tick: 1, Throughput: 0.5, Fairness: 0.5}
	first := eng.Decide(obs, current)
	if !first.Equal(env.space.EqualSplit()) {
		t.Errorf("first decision is not the equal split: %s", first.Key())
	}
	for tick := 2; tick <= 5; tick++ {
		obs.Tick = tick
		next := eng.Decide(obs, current)
		if env.space.Imbalance(next) > 0.6 {
			t.Errorf("initial sample %d too imbalanced: %s", tick, next.Key())
		}
		current = next
	}
}

func TestEngineNames(t *testing.T) {
	space := newSyntheticEnv(0).space
	cases := []struct {
		opt  Options
		want string
	}{
		{Options{}, "satori"},
		{Options{Scheduler: SchedulerOptions{Mode: WeightsStatic}, StaticWT: 0.5, StaticWTSet: true}, "satori-static"},
		{Options{Scheduler: SchedulerOptions{Mode: WeightsStatic}, StaticWT: 1, StaticWTSet: true}, "satori-throughput"},
		{Options{Scheduler: SchedulerOptions{Mode: WeightsStatic}, StaticWT: 0, StaticWTSet: true}, "satori-fairness"},
		{Options{Scheduler: SchedulerOptions{Mode: WeightsFavorStronger}}, "satori-favor-stronger"},
		{Options{Name: "custom"}, "custom"},
	}
	for _, c := range cases {
		eng, err := New(space, c.opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestEngineManagedMask(t *testing.T) {
	env := newSyntheticEnv(0.01)
	eng, err := New(env.space, Options{Seed: 5, Managed: []resource.Kind{resource.LLCWays}})
	if err != nil {
		t.Fatal(err)
	}
	equal := env.space.EqualSplit()
	current := equal
	for tick := 1; tick <= 80; tick++ {
		tp, fair := env.eval(current)
		next := eng.Decide(policy.Observation{Tick: tick, Throughput: tp, Fairness: fair}, current)
		// Cores (row 0) must stay pinned at the equal split.
		for j := range next.Alloc[0] {
			if next.Alloc[0][j] != equal.Alloc[0][j] {
				t.Fatalf("tick %d: unmanaged cores row changed: %v", tick, next.Alloc[0])
			}
		}
		current = next
	}
}

func TestEngineRejectsEmptyManagedMask(t *testing.T) {
	space := newSyntheticEnv(0).space
	if _, err := New(space, Options{Managed: []resource.Kind{resource.Power}}); err == nil {
		t.Error("mask matching no resources accepted")
	}
}

func TestEngineInstrumentation(t *testing.T) {
	env := newSyntheticEnv(0.01)
	eng, err := New(env.space, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, env, 60)
	w := eng.LastWeights()
	if w.T+w.F == 0 {
		t.Error("LastWeights empty after run")
	}
	if eng.LastObjective() <= 0 {
		t.Error("LastObjective not recorded")
	}
	if eng.Records().Len() == 0 {
		t.Error("no records accumulated")
	}
	if eng.Scheduler() == nil {
		t.Error("Scheduler accessor nil")
	}
	// Proxy change becomes available once at least two refits happened
	// on overlapping windows.
	if eng.ProxyChange() < 0 {
		t.Error("negative proxy change")
	}
}

func TestEngineReexploresAfterLandscapeShift(t *testing.T) {
	// Phase-change behavior: after the landscape moves, the engine must
	// track the new optimum (sliding window + re-evaluation).
	env := newSyntheticEnv(0.005)
	eng, err := New(env.space, Options{Seed: 7, Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	current := env.space.EqualSplit()
	evalShifted := func(c resource.Config) (float64, float64) {
		// Shifted landscape: throughput now peaks when job 1 gets
		// the cores.
		c1 := float64(c.Alloc[0][1]) / 8
		tp := 0.4 + 0.6*math.Exp(-8*(c1-0.75)*(c1-0.75))
		imb := env.space.Imbalance(c)
		return clamp01(tp), 1 / (1 + imb)
	}
	var before, after stats.Welford
	for tick := 1; tick <= 400; tick++ {
		var tp, fair float64
		if tick <= 200 {
			tp, fair = env.eval(current)
		} else {
			tp, fair = evalShifted(current)
		}
		if tick > 120 && tick <= 200 {
			before.Add(0.5*tp + 0.5*fair)
		}
		if tick > 320 {
			after.Add(0.5*tp + 0.5*fair)
		}
		current = eng.Decide(policy.Observation{Tick: tick, Throughput: tp, Fairness: fair}, current)
	}
	// After the shift the engine should recover to a comparable
	// objective level (within 15% of its pre-shift performance).
	if after.Mean() < 0.85*before.Mean() {
		t.Errorf("engine failed to re-adapt: before %.4f, after %.4f", before.Mean(), after.Mean())
	}
}

func TestRecords(t *testing.T) {
	space := newSyntheticEnv(0).space
	recs := NewRecords()
	eq := space.EqualSplit()
	recs.Update(space, eq, 0.5, 0.6, 1)
	if recs.Len() != 1 || !recs.Has(eq) {
		t.Fatal("record not stored")
	}
	// Update overwrites with the latest observation.
	recs.Update(space, eq, 0.7, 0.8, 2)
	if recs.Len() != 1 {
		t.Fatal("duplicate record created")
	}
	w := recs.Window(10)
	if len(w) != 1 || w[0].Throughput != 0.7 || w[0].Visits != 2 {
		t.Fatalf("window = %+v", w[0])
	}
	// Objective reconstruction under fresh weights — the Sec. III-B
	// software reconstruction.
	if got := w[0].Objective(Weights{T: 0.75, F: 0.25}); math.Abs(got-(0.75*0.7+0.25*0.8)) > 1e-12 {
		t.Errorf("Objective = %g", got)
	}
	// Window ordering: most recent first, capped at n.
	other, _ := space.Move(eq, 0, 0, 1)
	recs.Update(space, other, 0.1, 0.1, 5)
	w = recs.Window(1)
	if len(w) != 1 || !w[0].Config.Equal(other) {
		t.Error("window not ordered by recency")
	}
	if got := recs.Window(0); len(got) != 2 {
		t.Errorf("Window(0) should return all records, got %d", len(got))
	}
}

func TestRecordsDoNotAliasConfig(t *testing.T) {
	space := newSyntheticEnv(0).space
	recs := NewRecords()
	c := space.EqualSplit()
	recs.Update(space, c, 0.5, 0.5, 1)
	c.Alloc[0][0] = 99
	if recs.Window(1)[0].Config.Alloc[0][0] == 99 {
		t.Error("record aliases caller's config")
	}
}

func TestEngineAcquisitionVariants(t *testing.T) {
	env := newSyntheticEnv(0.01)
	for _, acq := range []string{"ei", "ucb", "pi", "ts"} {
		eng, err := New(env.space, Options{Seed: 11, Acquisition: acq})
		if err != nil {
			t.Fatalf("%s: %v", acq, err)
		}
		score := drive(t, eng, env, 120)
		if score <= 0 {
			t.Errorf("%s produced degenerate score %g", acq, score)
		}
	}
	if _, err := New(env.space, Options{Acquisition: "bogus"}); err == nil {
		t.Error("unknown acquisition accepted")
	}
}

func TestRecordsEviction(t *testing.T) {
	space := newSyntheticEnv(0).space
	recs := NewRecords()
	recs.SetCap(5)
	rng := stats.NewRNG(40)
	// Insert many distinct configurations; the store must stay bounded
	// and keep the most recent ones.
	var last resource.Config
	for tick := 1; tick <= 200; tick++ {
		c := space.Random(rng)
		recs.Update(space, c, 0.5, 0.5, tick)
		last = c
	}
	if recs.Len() > 6 {
		t.Errorf("records grew to %d with cap 5", recs.Len())
	}
	if !recs.Has(last) {
		t.Error("most recent record was evicted")
	}
	// The window still returns newest-first.
	w := recs.Window(3)
	for i := 1; i < len(w); i++ {
		if w[i].LastTick > w[i-1].LastTick {
			t.Error("window ordering broken after eviction")
		}
	}
	if (&Records{bySig: map[string]*Record{}, cap: 1}).Len() != 0 {
		t.Error("empty store wrong")
	}
	recs.SetCap(0) // clamps to 1
	recs.Update(space, space.EqualSplit(), 0.5, 0.5, 999)
	if recs.Len() > 2 {
		t.Errorf("cap clamp failed: %d", recs.Len())
	}
}
