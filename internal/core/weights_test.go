package core

import (
	"math"
	"testing"
	"testing/quick"

	"satori/internal/stats"
)

func TestStaticWeights(t *testing.T) {
	s := NewStaticScheduler(0.5)
	for i := 0; i < 50; i++ {
		w := s.Step(0.5, 0.5)
		if w.T != 0.5 || w.F != 0.5 {
			t.Fatalf("static weights drifted: %+v", w)
		}
	}
	// Single-goal variants honor explicit 0 and 1.
	s = NewStaticScheduler(1)
	if w := s.Step(0.5, 0.5); w.T != 1 || w.F != 0 {
		t.Errorf("throughput-only weights: %+v", w)
	}
	s = NewStaticScheduler(0)
	if w := s.Step(0.5, 0.5); w.T != 0 || w.F != 1 {
		t.Errorf("fairness-only weights: %+v", w)
	}
	// Unset StaticWT under WeightsStatic defaults to balanced.
	s = NewScheduler(SchedulerOptions{Mode: WeightsStatic})
	if w := s.Step(0.2, 0.9); w.T != 0.5 {
		t.Errorf("default static weight: %+v", w)
	}
}

func TestWeightsSumToOne(t *testing.T) {
	rng := stats.NewRNG(9)
	s := NewScheduler(SchedulerOptions{})
	for i := 0; i < 1000; i++ {
		w := s.Step(rng.Float64(), rng.Float64())
		if math.Abs(w.T+w.F-1) > 1e-12 {
			t.Fatalf("tick %d: W_T+W_F = %g", i, w.T+w.F)
		}
		if math.Abs(w.TE+w.FE-1) > 1e-12 || math.Abs(w.TP+w.FP-1) > 1e-12 {
			t.Fatalf("tick %d: components don't pair: %+v", i, w)
		}
	}
}

func TestWeightBounds(t *testing.T) {
	// Sec. III-C: weights bounded in [0.25, 0.75] to keep the BO
	// process controlled, under any observation sequence.
	rng := stats.NewRNG(10)
	s := NewScheduler(SchedulerOptions{PrioritizationTicks: 5, EqualizationTicks: 50})
	for i := 0; i < 5000; i++ {
		// Adversarial observations: alternating extremes.
		tp := rng.Float64()
		f := 1 - tp
		if i%7 == 0 {
			tp, f = 0.001, 0.999
		}
		w := s.Step(tp, f)
		if w.T < 0.25-1e-12 || w.T > 0.75+1e-12 {
			t.Fatalf("tick %d: W_T = %g out of [0.25, 0.75]", i, w.T)
		}
	}
}

func TestEqualizationAveragesToHalf(t *testing.T) {
	// The defining property of Sec. III-C: over every equalization
	// period, the average W_T must be ~0.5 (long-term equal priority).
	rng := stats.NewRNG(11)
	s := NewScheduler(SchedulerOptions{PrioritizationTicks: 10, EqualizationTicks: 100})
	sum := 0.0
	n := 0
	periods := 0
	for i := 0; i < 1000; i++ {
		// Observations with drifting trends so prioritization keeps
		// firing.
		tp := 0.5 + 0.3*math.Sin(float64(i)/13) + 0.05*rng.NormFloat64()
		f := 0.5 + 0.3*math.Cos(float64(i)/7) + 0.05*rng.NormFloat64()
		w := s.Step(tp, f)
		sum += w.T
		n++
		if s.EqualizationBoundary() {
			avg := sum / float64(n)
			if math.Abs(avg-0.5) > 0.08 {
				t.Errorf("period %d: mean W_T = %g, want ~0.5", periods, avg)
			}
			sum, n = 0, 0
			periods++
		}
	}
	if periods < 9 {
		t.Fatalf("only %d equalization periods closed", periods)
	}
}

func TestPrioritizationRespondsToImprovement(t *testing.T) {
	// If fairness improved a lot during a prioritization period while
	// throughput stalled, the NEXT period must prioritize throughput
	// (Eq. 4: W_TP = 1/4 + (1/2)·ΔF/(ΔT+ΔF)).
	s := NewScheduler(SchedulerOptions{PrioritizationTicks: 10, EqualizationTicks: 1000})
	// Period 1: fairness ramps 0.5 -> 0.9, throughput flat.
	var w Weights
	for i := 0; i <= 10; i++ {
		f := 0.5 + 0.4*float64(i)/10
		w = s.Step(0.5, f)
	}
	if w.TP <= 0.5 {
		t.Errorf("after fairness-dominant period, W_TP = %g, want > 0.5", w.TP)
	}
	if math.Abs(w.TP-0.75) > 1e-9 {
		// ΔT = 0 -> W_TP should hit the 0.75 ceiling exactly.
		t.Errorf("W_TP = %g, want 0.75 when only fairness improved", w.TP)
	}
}

func TestFavorStrongerInverts(t *testing.T) {
	dyn := NewScheduler(SchedulerOptions{PrioritizationTicks: 10, EqualizationTicks: 1000})
	str := NewScheduler(SchedulerOptions{Mode: WeightsFavorStronger, PrioritizationTicks: 10, EqualizationTicks: 1000})
	var wd, ws Weights
	for i := 0; i <= 10; i++ {
		f := 0.5 + 0.4*float64(i)/10
		wd = dyn.Step(0.5, f)
		ws = str.Step(0.5, f)
	}
	// Dynamic gives throughput the next opportunity; favor-stronger
	// keeps riding fairness.
	if !(wd.TP > 0.5 && ws.TP < 0.5) {
		t.Errorf("mode split wrong: dynamic TP=%g, favor-stronger TP=%g", wd.TP, ws.TP)
	}
}

func TestNoImprovementMeansBalancedPriorities(t *testing.T) {
	s := NewScheduler(SchedulerOptions{PrioritizationTicks: 5, EqualizationTicks: 1000})
	var w Weights
	for i := 0; i < 12; i++ {
		w = s.Step(0.5, 0.5) // flat: ΔT = ΔF = 0
	}
	if w.TP != 0.5 || w.FP != 0.5 {
		t.Errorf("flat observations should keep priorities balanced: %+v", w)
	}
}

func TestEqualizationDominatesLate(t *testing.T) {
	// Engineer a period where throughput was over-weighted early; near
	// the period end, the equalization component must pull W_T below
	// 0.5 and the blend factor must approach 1.
	s := NewScheduler(SchedulerOptions{PrioritizationTicks: 10, EqualizationTicks: 100})
	var w Weights
	for i := 0; i < 99; i++ {
		// Fairness improves steadily across every prioritization
		// period while throughput stalls, so throughput keeps getting
		// prioritized (over-weighted) — Eq. 4.
		f := 0.3 + 0.5*float64(i)/99
		w = s.Step(0.4, f)
	}
	if w.EqFrac < 0.9 {
		t.Errorf("EqFrac near period end = %g", w.EqFrac)
	}
	if w.TE >= 0.5 {
		t.Errorf("equalization component should compensate over-weighted throughput: TE = %g", w.TE)
	}
	if w.T >= w.TP {
		t.Errorf("late in the period the blend (%g) must sit below the prioritization weight (%g)", w.T, w.TP)
	}
}

func TestEqualizationBoundarySignal(t *testing.T) {
	s := NewScheduler(SchedulerOptions{PrioritizationTicks: 5, EqualizationTicks: 20})
	boundaries := 0
	for i := 1; i <= 100; i++ {
		s.Step(0.5, 0.5)
		if s.EqualizationBoundary() {
			boundaries++
			if i%20 != 0 {
				t.Errorf("boundary at tick %d, want multiples of 20", i)
			}
		}
	}
	if boundaries != 5 {
		t.Errorf("%d boundaries in 100 ticks, want 5", boundaries)
	}
}

func TestPctImprove(t *testing.T) {
	if got := pctImprove(0.5, 0.6); math.Abs(got-20) > 1e-9 {
		t.Errorf("pctImprove(0.5, 0.6) = %g, want 20", got)
	}
	if got := pctImprove(0.5, 0.4); got != 0 {
		t.Errorf("regressions clamp to 0, got %g", got)
	}
	if got := pctImprove(0, 1); got != 0 {
		t.Errorf("zero base clamps to 0, got %g", got)
	}
}

func TestModeStrings(t *testing.T) {
	if WeightsDynamic.String() != "dynamic" ||
		WeightsStatic.String() != "static" ||
		WeightsFavorStronger.String() != "favor-stronger" ||
		WeightMode(99).String() != "unknown" {
		t.Error("mode names wrong")
	}
}

func TestLastWeights(t *testing.T) {
	s := NewScheduler(SchedulerOptions{})
	w := s.Step(0.4, 0.6)
	if s.Last() != w {
		t.Error("Last does not return the latest weights")
	}
}

func TestWeightBoundsPropertyQuick(t *testing.T) {
	// For ANY bounds configuration and ANY observation stream, final
	// weights stay inside the configured bounds and pair to 1.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		floor := 0.05 + 0.3*rng.Float64()
		ceil := 0.55 + 0.4*rng.Float64()
		s := NewScheduler(SchedulerOptions{
			PrioritizationTicks: 1 + rng.Intn(20),
			EqualizationTicks:   10 + rng.Intn(100),
			WeightFloor:         floor,
			WeightCeil:          ceil,
		})
		for i := 0; i < 300; i++ {
			w := s.Step(rng.Float64(), rng.Float64())
			if w.T < floor-1e-9 || w.T > ceil+1e-9 {
				return false
			}
			if d := w.T + w.F - 1; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExplicitZeroFloorHonored is the regression test for the
// silently-rewritten bounds ablation: NewScheduler used to turn
// WeightFloor: 0 back into the 0.25 default because the unset sentinel was
// `<= 0`, making the "bounded vs unbounded" ablation (DESIGN.md §6)
// compare 0.25/0.75 against 0.25/0.75. With WeightFloorSet the explicit
// zero must survive, and weights must actually be able to leave the
// default band.
func TestExplicitZeroFloorHonored(t *testing.T) {
	s := NewScheduler(SchedulerOptions{
		PrioritizationTicks: 2,
		EqualizationTicks:   1000, // keep equalization's pull negligible
		WeightFloor:         0, WeightFloorSet: true,
		WeightCeil: 1,
	})
	if s.floor != 0 || s.ceil != 1 {
		t.Fatalf("bounds = [%g, %g], want the explicit [0, 1]", s.floor, s.ceil)
	}
	// Throughput improves hugely, fairness not at all: with span = 1 the
	// prioritization weight for throughput goes to the floor (the weaker
	// goal gets the opportunity), far below the default 0.25 bound.
	escaped := false
	for i := 0; i < 40; i++ {
		w := s.Step(1+float64(i), 1)
		if w.T < DefaultWeightFloor-0.05 {
			escaped = true
		}
		if w.T < 0 || w.T > 1 {
			t.Fatalf("tick %d: weight %g outside [0, 1]", i, w.T)
		}
	}
	if !escaped {
		t.Error("weights never left the default [0.25, 0.75] band despite unbounded configuration")
	}
}

// TestUnsetBoundsKeepDefaults pins the pre-existing behavior for callers
// that leave the options zeroed.
func TestUnsetBoundsKeepDefaults(t *testing.T) {
	s := NewScheduler(SchedulerOptions{})
	if s.floor != DefaultWeightFloor || s.ceil != DefaultWeightCeil {
		t.Fatalf("bounds = [%g, %g], want defaults [%g, %g]",
			s.floor, s.ceil, DefaultWeightFloor, DefaultWeightCeil)
	}
	// Nonsensical explicit bounds (ceil below floor) also fall back.
	s = NewScheduler(SchedulerOptions{WeightFloor: 0.9, WeightCeil: 0.1, WeightCeilSet: true})
	if s.floor != DefaultWeightFloor || s.ceil != DefaultWeightCeil {
		t.Fatalf("inverted bounds = [%g, %g], want defaults", s.floor, s.ceil)
	}
}
