package core

import (
	"testing"

	"satori/internal/resource"
)

// walkSpace is a three-resource space so a Managed restriction leaves a
// majority of rows unmanaged — the regime where the old walk wasted most
// of its steps.
func walkSpace(t *testing.T) *resource.Space {
	t.Helper()
	return resource.MustNewSpace(5,
		resource.Resource{Kind: resource.Cores, Units: 10},
		resource.Resource{Kind: resource.LLCWays, Units: 11},
		resource.Resource{Kind: resource.MemBW, Units: 10},
	)
}

// TestRandomWalkSamplesManagedRowsOnly is the regression test for the
// Sec. V source-of-benefit ablation bug: steps that landed on an
// unmanaged resource row were consumed by a continue, so restricted
// engines took systematically shorter walks than full SATORI. The walk
// must now sample rows from the managed set only.
func TestRandomWalkSamplesManagedRowsOnly(t *testing.T) {
	space := walkSpace(t)
	start := space.EqualSplit()

	moved := 0
	const trials = 300
	for seed := uint64(1); seed <= trials; seed++ {
		eng, err := New(space, Options{
			Seed:    seed,
			Managed: []resource.Kind{resource.LLCWays},
		})
		if err != nil {
			t.Fatal(err)
		}
		got := eng.randomWalk(start, 1)
		// Unmanaged rows must never move.
		for _, r := range []int{0, 2} {
			for j := range got.Alloc[r] {
				if got.Alloc[r][j] != start.Alloc[r][j] {
					t.Fatalf("seed %d: unmanaged row %d changed: %v -> %v",
						seed, r, start.Alloc[r], got.Alloc[r])
				}
			}
		}
		if !got.Equal(start) {
			moved++
		}
	}
	// Each single-step walk draws (from, to) jobs in the managed row;
	// the move succeeds whenever from != to (probability 0.8 with 5
	// jobs, every equal-split cell holding >= 2 units). The old
	// implementation first drew one of the 3 rows and gave up on the 2
	// unmanaged ones, capping the success rate near 0.27. Requiring
	// > 0.55 separates the two implementations decisively.
	if frac := float64(moved) / trials; frac < 0.55 {
		t.Errorf("single-step walk moved in %.0f%% of trials, want > 55%% (unmanaged rows are eating steps)", frac*100)
	}
}

// TestRandomWalkFullyManagedStillWalks pins the default (all rows
// managed) behavior: walks move and stay within the space.
func TestRandomWalkFullyManagedStillWalks(t *testing.T) {
	space := walkSpace(t)
	start := space.EqualSplit()
	eng, err := New(space, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.randomWalk(start, 16)
	if err := space.Validate(got); err != nil {
		t.Fatalf("walk left the space: %v", err)
	}
	if got.Equal(start) {
		t.Error("16-step walk over the full space did not move")
	}
}
