package core

import (
	"math"
	"sync"
	"testing"

	"satori/internal/policy"
	"satori/internal/resource"
)

// driveKeys runs the engine like drive but returns the full decision
// sequence (config keys), for replay comparisons.
func driveKeys(t *testing.T, eng *Engine, env *syntheticEnv, n int) []string {
	t.Helper()
	current := env.space.EqualSplit()
	keys := make([]string, 0, n)
	for tick := 1; tick <= n; tick++ {
		tp, fair := env.eval(current)
		obs := policy.Observation{
			Tick: tick, Time: float64(tick) * 0.1,
			Throughput: tp, Fairness: fair,
		}
		next := eng.Decide(obs, current)
		if err := env.space.Validate(next); err != nil {
			t.Fatalf("invalid config at tick %d: %v", tick, err)
		}
		keys = append(keys, next.Key())
		current = next
	}
	return keys
}

// TestEngineLifecycleIncremental drives one engine through every phase of
// the incremental path — seeding, exploration (rank-1 appends), exploit
// ticks (α-only target re-solves), and window eviction (full refits) —
// and checks each path actually ran. With -race this doubles as the
// ISSUE's race-detector lifecycle test.
func TestEngineLifecycleIncremental(t *testing.T) {
	env := newSyntheticEnv(0.01)
	eng, err := New(env.space, Options{Seed: 5, Window: 4, InitialSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, eng, env, 300)
	if eng.FitFailures() != 0 {
		t.Errorf("%d proxy fit failures", eng.FitFailures())
	}
	if eng.AcquisitionFailures() != 0 {
		t.Errorf("%d acquisition failures", eng.AcquisitionFailures())
	}
	if eng.Records().Len() <= 4 {
		t.Errorf("only %d distinct configs recorded; window eviction never exercised", eng.Records().Len())
	}
	st := eng.GPStats()
	if st.Refits == 0 {
		t.Error("no full refits: the first-fit/eviction path never ran")
	}
	if st.TargetSolves == 0 {
		t.Error("no α-only solves: the unchanged-membership fast path never ran")
	}
	// Note the fast-path split is data-dependent: the α-only solve
	// requires the data-scaled variance heuristic to be unchanged,
	// which holds whenever its 0.01 floor binds. On real normalized
	// simulator data the floor binds on ~90% of ticks (540/600 α-only
	// solves vs 48 refits on the overhead workload); this synthetic
	// landscape's wider objective spread unfloors it, so here we only
	// require every path to have run. Rank-1 Extends are rare on the
	// heuristic-kernel path — membership changes usually move the
	// median length-scale, forcing a refit — and are pinned directly by
	// the gp and linalg package tests.
	if eng.Exploits() == 0 {
		t.Error("engine never exploited on the synthetic landscape")
	}
}

// TestEngineIncrementalMatchesFullRefit replays the same seed through the
// incremental engine and the FullRefit golden path; the decision sequences
// must match tick for tick. (The two paths differ only in floating-point
// summation order, ~1e-15 on posterior values — never enough to flip a
// candidate argmax on this landscape.)
func TestEngineIncrementalMatchesFullRefit(t *testing.T) {
	run := func(fullRefit bool) []string {
		env := newSyntheticEnv(0.01)
		eng, err := New(env.space, Options{Seed: 9, Window: 8, FullRefit: fullRefit})
		if err != nil {
			t.Fatal(err)
		}
		return driveKeys(t, eng, env, 250)
	}
	inc, full := run(false), run(true)
	for i := range inc {
		if inc[i] != full[i] {
			t.Fatalf("decision diverged at tick %d: incremental %q vs full refit %q", i+1, inc[i], full[i])
		}
	}
}

// TestEngineConcurrentEnginesDeterministic runs identically-seeded engines
// in parallel goroutines: their decision sequences must be identical, and
// under -race this verifies the incremental path shares no hidden mutable
// state between engine instances.
func TestEngineConcurrentEnginesDeterministic(t *testing.T) {
	const workers = 4
	seqs := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			env := newSyntheticEnv(0.01)
			eng, err := New(env.space, Options{Seed: 11, Window: 8})
			if err != nil {
				t.Error(err)
				return
			}
			seqs[w] = driveKeys(t, eng, env, 200)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range seqs[0] {
			if seqs[w][i] != seqs[0][i] {
				t.Fatalf("engine %d diverged from engine 0 at tick %d: %q vs %q",
					w, i+1, seqs[w][i], seqs[0][i])
			}
		}
	}
}

// TestEngineAcquisitionFailureSurfaced is the engine half of the NaN
// acquisition bugfix: a NaN exploration margin legitimately drives every
// EI score to NaN through the public API; the engine must hold the
// current configuration AND count the failure, where it previously held
// silently.
func TestEngineAcquisitionFailureSurfaced(t *testing.T) {
	env := newSyntheticEnv(0)
	eng, err := New(env.space, Options{Seed: 13, InitialSamples: 3, Xi: math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	current := env.space.EqualSplit()
	held := 0
	for tick := 1; tick <= 20; tick++ {
		tp, fair := env.eval(current)
		next := eng.Decide(policy.Observation{
			Tick: tick, Time: float64(tick) * 0.1,
			Throughput: tp, Fairness: fair,
		}, current)
		if tick > 3 && next.Equal(current) {
			held++
		}
		current = next
	}
	if eng.AcquisitionFailures() == 0 {
		t.Fatal("NaN Xi never registered as an acquisition failure")
	}
	if held != eng.AcquisitionFailures() {
		t.Errorf("held %d ticks but counted %d acquisition failures", held, eng.AcquisitionFailures())
	}
}

// TestEngineReturnedConfigIsNotAliased: Decide's explore decisions come
// from a pooled candidate buffer that is overwritten every tick; the
// returned config must be a private copy.
func TestEngineReturnedConfigIsNotAliased(t *testing.T) {
	env := newSyntheticEnv(0.05)
	eng, err := New(env.space, Options{Seed: 17, ExploitThreshold: -1}) // always explore
	if err != nil {
		t.Fatal(err)
	}
	current := env.space.EqualSplit()
	var prev resource.Config
	var prevKey string
	for tick := 1; tick <= 60; tick++ {
		tp, fair := env.eval(current)
		next := eng.Decide(policy.Observation{
			Tick: tick, Time: float64(tick) * 0.1,
			Throughput: tp, Fairness: fair,
		}, current)
		if prev.Alloc != nil && prev.Key() != prevKey {
			t.Fatalf("tick %d: previously returned config mutated from %q to %q", tick, prevKey, prev.Key())
		}
		prev, prevKey = next, next.Key()
		current = next
	}
}
