package core

import (
	"sort"

	"satori/internal/resource"
)

// Record is the per-configuration entry of SATORI's separate goal-wise
// performance store (Sec. III-B): the latest observed throughput and
// fairness of a configuration, kept independently so the scalar objective
// can be reconstructed in software whenever the goal weights change,
// without re-sampling any configuration.
type Record struct {
	// Config is the configuration this record describes.
	Config resource.Config
	// Key is Config.Key(), memoized so per-tick consumers (window
	// sorting, proxy-change tracking) never rebuild the string.
	Key string
	// Vector is the GP input encoding of Config.
	Vector []float64
	// Throughput and Fairness are the most recent normalized
	// observations of each goal under Config.
	Throughput, Fairness float64
	// LastTick is when the configuration was last evaluated.
	LastTick int
	// Visits counts how many times the configuration has been run.
	Visits int
}

// Records stores one Record per distinct configuration. To bound memory
// over arbitrarily long runs, the store evicts the least recently
// evaluated configurations once it exceeds its capacity; the proxy-model
// window only ever reads the most recent entries, so eviction does not
// change engine behavior.
type Records struct {
	bySig map[string]*Record
	cap   int
}

// DefaultRecordCap bounds the store; it is comfortably larger than any
// sensible proxy-model window.
const DefaultRecordCap = 1024

// NewRecords returns an empty store with the default capacity.
func NewRecords() *Records {
	return &Records{bySig: make(map[string]*Record), cap: DefaultRecordCap}
}

// SetCap overrides the eviction capacity (minimum 1).
func (r *Records) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	r.cap = n
}

// Update folds a fresh (throughput, fairness) observation for cfg. The
// latest observation replaces the previous one: under phase changes the
// newest measurement is the relevant belief, and the paper explicitly
// keeps previously sampled configurations eligible for re-evaluation.
func (r *Records) Update(space *resource.Space, cfg resource.Config, throughput, fairness float64, tick int) *Record {
	key := cfg.Key()
	rec, ok := r.bySig[key]
	if !ok {
		rec = &Record{Config: cfg.Clone(), Key: key, Vector: space.Vector(cfg)}
		r.bySig[key] = rec
	}
	rec.Throughput = throughput
	rec.Fairness = fairness
	rec.LastTick = tick
	rec.Visits++
	for len(r.bySig) > r.cap {
		r.evictOldest()
	}
	return rec
}

// evictOldest removes the least recently evaluated record.
func (r *Records) evictOldest() {
	oldestKey := ""
	oldestTick := int(^uint(0) >> 1)
	for key, rec := range r.bySig {
		if rec.LastTick < oldestTick || (rec.LastTick == oldestTick && key < oldestKey) {
			oldestKey = key
			oldestTick = rec.LastTick
		}
	}
	if oldestKey != "" {
		delete(r.bySig, oldestKey)
	}
}

// Len returns the number of distinct configurations recorded.
func (r *Records) Len() int { return len(r.bySig) }

// Has reports whether cfg has been evaluated before.
func (r *Records) Has(cfg resource.Config) bool {
	_, ok := r.bySig[cfg.Key()]
	return ok
}

// Window returns up to n records, most recently evaluated first. The
// returned slice is freshly allocated but shares Record pointers.
func (r *Records) Window(n int) []*Record {
	return r.WindowInto(nil, n)
}

// WindowInto is Window writing into dst[:0], for per-tick callers that
// reuse the slice.
func (r *Records) WindowInto(dst []*Record, n int) []*Record {
	all := dst[:0]
	for _, rec := range r.bySig {
		all = append(all, rec)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].LastTick != all[j].LastTick {
			return all[i].LastTick > all[j].LastTick
		}
		// Deterministic tie-break for replayability.
		return all[i].Key < all[j].Key
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Objective reconstructs the scalar objective of Eq. 2 for a record under
// the given weights — the software proxy-model reconstruction that
// replaces re-sampling when the objective function changes.
func (rec *Record) Objective(w Weights) float64 {
	return w.T*rec.Throughput + w.F*rec.Fairness
}
