package core

import (
	"fmt"
	"math"

	"satori/internal/bo"
	"satori/internal/gp"
	"satori/internal/linalg"
	"satori/internal/policy"
	"satori/internal/resource"
	"satori/internal/stats"
)

// Options configures an Engine.
type Options struct {
	// Seed drives candidate sampling; equal seeds replay identically.
	Seed uint64
	// Scheduler configures the goal-weight dynamics (Sec. III-C).
	Scheduler SchedulerOptions
	// StaticWT, when StaticWTSet is true, pins static weights at an
	// explicit throughput weight (honoring 0 for Fairness SATORI).
	StaticWT    float64
	StaticWTSet bool
	// Window caps how many most-recent distinct configurations the
	// proxy model is fitted on (default 64). A bounded window keeps
	// the 100 ms iteration cheap and lets the model track phase
	// changes.
	Window int
	// Candidates is the number of random configurations scored by the
	// acquisition function each tick (default 32), in addition to the
	// incumbent's one-unit neighborhood.
	Candidates int
	// InitialSamples is the size of the S_init seeding set: the equal
	// split plus low-imbalance perturbations (default 8, Sec. V notes
	// seeding with "good" configurations instead of random ones).
	InitialSamples int
	// Noise is the GP observation-noise variance on the [0,1]-scaled
	// objective (default 1e-3, absorbing ~2-3% IPS counter noise).
	Noise float64
	// Xi is the Expected Improvement exploration margin (default 0).
	Xi float64
	// Acquisition selects the acquisition function: "ei" (default, the
	// paper's choice), "ucb", "pi", or "ts" (Thompson sampling). The
	// ExploitThreshold optimization only applies to "ei", whose score
	// is an expected improvement; the alternatives probe every tick —
	// the acquisition ablation quantifies what that costs.
	Acquisition string
	// ExploitThreshold stops exploration when the best candidate's
	// Expected Improvement falls below it: the engine then re-installs
	// the incumbent best configuration instead of probing further —
	// the paper's "avoid frequent updates after the optimal
	// configuration detection" optimization (Sec. V overhead
	// discussion). Default 0.012 on the [0,1] objective scale.
	ExploitThreshold float64
	// RandomInit seeds the engine with uniformly random configurations
	// instead of the low-imbalance S_init — the initial-design
	// sensitivity ablation of Sec. V (the paper reports 1-3% final
	// quality variation from bad starts).
	RandomInit bool
	// Managed restricts which resource kinds SATORI actually
	// partitions; unmanaged resources stay at the equal split. nil
	// manages everything. Used for the Sec. V source-of-benefit
	// ablation (SATORI on LLC only vs dCAT; LLC+MBW vs CoPart).
	Managed []resource.Kind
	// FullRefit rebuilds the proxy model from scratch with gp.Fit every
	// tick instead of updating it incrementally — the pre-incremental
	// behavior, kept as the golden reference for equivalence tests and
	// as the overhead benchmarks' baseline.
	FullRefit bool
	// Name overrides the policy name in reports.
	Name string
}

func (o *Options) fill() {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.Candidates <= 0 {
		o.Candidates = 32
	}
	if o.InitialSamples <= 0 {
		o.InitialSamples = 8
	}
	if o.Noise <= 0 {
		o.Noise = 1e-3
	}
	if o.ExploitThreshold == 0 {
		o.ExploitThreshold = 0.012
	}
	if o.ExploitThreshold < 0 {
		o.ExploitThreshold = 0 // explicit "never exploit" request
	}
}

// Engine is the SATORI BO engine of Algorithm 1, usable as a
// policy.Policy.
type Engine struct {
	space *resource.Space
	opt   Options
	rng   *stats.RNG
	sched *Scheduler
	recs  *Records

	initQueue   []resource.Config
	managedRow  []bool
	managedRows []int // indices of managed rows, for uniform sampling
	equalSplit  resource.Config

	prevPreds   map[string]float64
	currPreds   map[string]float64 // ping-pong partner of prevPreds
	proxyChange float64
	lastObj     float64
	lastWeights Weights
	fitFailures int
	acqFailures int
	decideTicks int
	exploits    int

	// Incremental proxy-model state: model row i conditions on
	// modelRecs[i] (modelSet is its index), so per-tick target
	// reconstruction can feed UpdateTargets/Append in model order.
	model     *gp.Incremental
	modelRecs []*Record
	modelSet  map[*Record]int

	// Per-tick scratch, reused across Decide calls.
	windowBuf    []*Record
	xsBuf        [][]float64
	ysBuf        []float64
	candidateBuf [][]float64
	candidateCfg []resource.Config
	candCount    int
	muBuf        []float64
	sigmaBuf     []float64
	batchScratch gp.PredictScratch
}

// proxyModel is the posterior surface Decide scores against — satisfied
// by both the incremental model and the from-scratch *gp.GP.
type proxyModel interface {
	Predict(x []float64) (mu, sigma float64)
	PredictMean(x []float64) float64
	Posterior(points [][]float64) (mu []float64, cov *linalg.Matrix)
}

// New builds a SATORI engine over space.
func New(space *resource.Space, opt Options) (*Engine, error) {
	opt.fill()
	var sched *Scheduler
	if opt.Scheduler.Mode == WeightsStatic && opt.StaticWTSet {
		sched = NewStaticScheduler(opt.StaticWT)
		sched.tpTicks = orDefault(opt.Scheduler.PrioritizationTicks, 10)
		sched.teTicks = orDefault(opt.Scheduler.EqualizationTicks, 100)
	} else {
		sched = NewScheduler(opt.Scheduler)
	}
	e := &Engine{
		space:      space,
		opt:        opt,
		rng:        stats.NewRNG(opt.Seed ^ 0x5A7031),
		sched:      sched,
		recs:       NewRecords(),
		equalSplit: space.EqualSplit(),
		prevPreds:  make(map[string]float64),
		model:      gp.NewIncremental(gp.Options{Noise: opt.Noise}),
		modelSet:   make(map[*Record]int),
	}
	switch opt.Acquisition {
	case "", "ei", "ucb", "pi", "ts":
	default:
		return nil, fmt.Errorf("core: unknown acquisition %q (want ei, ucb, pi, or ts)", opt.Acquisition)
	}
	e.managedRow = make([]bool, len(space.Resources))
	if len(opt.Managed) == 0 {
		for i := range e.managedRow {
			e.managedRow[i] = true
		}
	} else {
		for i, r := range space.Resources {
			for _, k := range opt.Managed {
				if r.Kind == k {
					e.managedRow[i] = true
				}
			}
		}
		any := false
		for _, m := range e.managedRow {
			any = any || m
		}
		if !any {
			return nil, fmt.Errorf("core: none of the managed kinds %v exist in the space", opt.Managed)
		}
	}
	for r, managed := range e.managedRow {
		if managed {
			e.managedRows = append(e.managedRows, r)
		}
	}
	if opt.RandomInit {
		// Ablation mode: random initial design.
		for i := 0; i < opt.InitialSamples; i++ {
			e.initQueue = append(e.initQueue, e.restrictToManaged(space.Random(e.rng)))
		}
		return e, nil
	}
	// S_init: equal split + low-imbalance perturbations, restricted to
	// managed rows.
	for _, c := range space.InitialSet(opt.InitialSamples * 3) {
		if len(e.initQueue) >= opt.InitialSamples {
			break
		}
		mc := e.restrictToManaged(c)
		if len(e.initQueue) == 0 || !containsConfig(e.initQueue, mc) {
			e.initQueue = append(e.initQueue, mc)
		}
	}
	return e, nil
}

func orDefault(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func containsConfig(cs []resource.Config, c resource.Config) bool {
	for _, x := range cs {
		if x.Equal(c) {
			return true
		}
	}
	return false
}

// Name implements policy.Policy.
func (e *Engine) Name() string {
	if e.opt.Name != "" {
		return e.opt.Name
	}
	switch e.sched.Mode() {
	case WeightsStatic:
		switch e.sched.staticT {
		case 1:
			return "satori-throughput"
		case 0:
			return "satori-fairness"
		default:
			return "satori-static"
		}
	case WeightsFavorStronger:
		return "satori-favor-stronger"
	case WeightsSLOAware:
		return "satori-slo"
	default:
		return "satori"
	}
}

// restrictToManaged pins unmanaged resource rows to the equal split.
func (e *Engine) restrictToManaged(c resource.Config) resource.Config {
	out := c.Clone()
	for r, managed := range e.managedRow {
		if !managed {
			copy(out.Alloc[r], e.equalSplit.Alloc[r])
		}
	}
	return out
}

// randomWalk applies up to steps random one-unit moves in managed rows.
// Rows are sampled from the managed set only: drawing over all rows and
// skipping unmanaged ones would consume steps without moving, so walks
// under the Sec. V source-of-benefit ablations (Managed restricted to a
// subset) would be systematically shorter than full SATORI's.
func (e *Engine) randomWalk(c resource.Config, steps int) resource.Config {
	dst := e.space.NewConfig()
	e.randomWalkInto(dst, c, steps)
	return dst
}

// Decide implements policy.Policy — one iteration of Algorithm 1.
func (e *Engine) Decide(obs policy.Observation, current resource.Config) resource.Config {
	e.decideTicks++
	// (1) Weights for this tick's objective function (Sec. III-C).
	// SLO-aware scheduling also needs the loop's violation state: fed
	// here, before Step fixes this tick's weights.
	if e.sched.Mode() == WeightsSLOAware {
		e.sched.SetSLOViolating(obs.SLOViolating)
	}
	w := e.sched.Step(obs.Throughput, obs.Fairness)
	e.lastWeights = w
	e.lastObj = w.T*obs.Throughput + w.F*obs.Fairness

	// (2) Fold the observation into the per-goal records (Sec. III-B).
	e.recs.Update(e.space, current, obs.Throughput, obs.Fairness, obs.Tick)

	// (3) Seeding phase: walk the initial design first.
	if len(e.initQueue) > 0 {
		next := e.initQueue[0]
		e.initQueue = e.initQueue[1:]
		return next
	}

	// (4) Software reconstruction of the objective for every recorded
	// configuration under the fresh weights, then proxy-model update.
	e.windowBuf = e.recs.WindowInto(e.windowBuf, e.opt.Window)
	window := e.windowBuf
	best := math.Inf(-1)
	var bestCfg resource.Config
	// Top few configurations (descending objective) for neighborhood
	// seeding, kept in fixed arrays to stay off the heap.
	topN := 0
	var topY [3]float64
	var topCfg [3]resource.Config
	for _, rec := range window {
		y := rec.Objective(w)
		if y > best {
			best = y
			bestCfg = rec.Config
		}
		p := topN
		for i := 0; i < topN; i++ {
			if y > topY[i] {
				p = i
				break
			}
		}
		if p < 3 && (p < topN || topN < 3) {
			if topN < 3 {
				topN++
			}
			for i := topN - 1; i > p; i-- {
				topY[i], topCfg[i] = topY[i-1], topCfg[i-1]
			}
			topY[p], topCfg[p] = y, rec.Config
		}
	}
	var model proxyModel
	if e.opt.FullRefit {
		// Golden reference path: rebuild the kernel matrix and
		// refactorize from scratch, exactly as before the incremental
		// model existed.
		e.xsBuf, e.ysBuf = e.xsBuf[:0], e.ysBuf[:0]
		for _, rec := range window {
			e.xsBuf = append(e.xsBuf, rec.Vector)
			e.ysBuf = append(e.ysBuf, rec.Objective(w))
		}
		m, err := gp.Fit(e.xsBuf, e.ysBuf, gp.Options{Noise: e.opt.Noise})
		if err != nil {
			// Degenerate window (should not happen after seeding):
			// fall back to exploration.
			e.fitFailures++
			return e.restrictToManaged(e.space.Random(e.rng))
		}
		model = m
	} else {
		if err := e.syncModel(window, w); err != nil {
			e.fitFailures++
			return e.restrictToManaged(e.space.Random(e.rng))
		}
		model = e.model
	}
	e.trackProxyChange(model, window)

	// (5) Candidate pool: uniform random managed configurations for
	// global coverage, short random walks from the incumbent for local
	// refinement (uniform compositions are often pathologically
	// imbalanced, and probing them in a live system punishes the
	// starved jobs — cf. the worst-job metric of Fig. 9), plus the
	// exact neighborhoods of the best few recorded configurations.
	// Configurations and vectors live in per-engine pools; the
	// generation order (and therefore the RNG draw sequence) is
	// identical to the allocating code it replaced.
	e.candCount = 0
	for i := 0; i < e.opt.Candidates/2; i++ {
		c := e.nextCandidate()
		e.space.RandomInto(e.rng, c)
		e.clampUnmanaged(c)
	}
	for i := e.opt.Candidates / 2; i < e.opt.Candidates; i++ {
		e.randomWalkInto(e.nextCandidate(), bestCfg, 3)
	}
	for t := 0; t < topN; t++ {
		e.appendManagedNeighbors(topCfg[t])
	}
	cands := e.candidateCfg[:e.candCount]
	for len(e.candidateBuf) < e.candCount {
		e.candidateBuf = append(e.candidateBuf, nil)
	}
	for i, c := range cands {
		e.candidateBuf[i] = e.space.VectorInto(e.candidateBuf[i], c)
	}
	vecs := e.candidateBuf[:e.candCount]

	// (6) Acquisition maximization (Expected Improvement by default,
	// Sec. III-A; UCB/PI/Thompson for the acquisition ablation). A
	// degenerate posterior (bo.ErrNoFiniteScore) or any other
	// acquisition error holds the current configuration, but is counted
	// in diagnostics instead of silently masquerading as a hold.
	// The steady-state path batch-scores the whole pool with one
	// matrix-level triangular solve (bit-identical to per-candidate
	// scoring, so goldens are unaffected); the FullRefit ablation keeps
	// the per-candidate bo.Suggest as the golden reference path.
	suggest := func(acq bo.Acquisition) (int, float64, error) {
		if e.opt.FullRefit {
			return bo.Suggest(model, acq, best, vecs)
		}
		if cap(e.muBuf) < len(vecs) {
			e.muBuf = make([]float64, len(vecs))
			e.sigmaBuf = make([]float64, len(vecs))
		}
		mu, sigma := e.muBuf[:len(vecs)], e.sigmaBuf[:len(vecs)]
		return bo.SuggestBatch(e.model, &e.batchScratch, acq, best, vecs, mu, sigma)
	}
	var idx int
	var score float64
	var err error
	switch e.opt.Acquisition {
	case "", "ei":
		idx, score, err = suggest(bo.EI{Xi: e.opt.Xi})
		if err != nil || idx < 0 {
			e.acqFailures++
			return current
		}
		// (7) Exploit when no candidate promises a meaningful
		// improvement: hold (or return to) the incumbent best
		// configuration instead of paying for another probe in the
		// running system.
		if score < e.opt.ExploitThreshold {
			e.exploits++
			return bestCfg
		}
	case "ucb":
		idx, _, err = suggest(bo.UCB{Beta: 2})
		if err != nil || idx < 0 {
			e.acqFailures++
			return current
		}
	case "pi":
		idx, _, err = suggest(bo.PI{Xi: e.opt.Xi})
		if err != nil || idx < 0 {
			e.acqFailures++
			return current
		}
	case "ts":
		idx, err = bo.ThompsonSuggest(model, e.rng, vecs)
		if err != nil || idx < 0 {
			e.acqFailures++
			return current
		}
	}
	// The pool slot is reused next tick; hand out a copy.
	return cands[idx].Clone()
}

// syncModel folds this tick's window into the incremental proxy model,
// choosing the cheapest sufficient update (Sec. V overhead optimization):
//
//   - unchanged membership (every exploit/revisit tick): only the
//     re-weighted targets moved, so one O(n²) α re-solve via
//     UpdateTargets — the kernel factor carries over untouched;
//   - exactly one new configuration: O(n²) rank-1 Cholesky append;
//   - anything else (first fit after seeding, window eviction, model
//     recovery): full refit, adopting the window's order.
//
// On error the model is empty and the engine's membership tracking is
// cleared, so the next tick re-enters through the Reset path.
func (e *Engine) syncModel(window []*Record, w Weights) error {
	n := len(window)
	var fresh *Record
	miss := -1
	if n > 0 && e.model.Len() == len(e.modelRecs) &&
		(n == len(e.modelRecs) || n == len(e.modelRecs)+1) {
		miss = 0
		for _, rec := range window {
			if _, ok := e.modelSet[rec]; !ok {
				miss++
				fresh = rec
				if miss > 1 {
					break
				}
			}
		}
	}
	switch {
	case miss == 0 && n == len(e.modelRecs):
		e.ysBuf = e.ysBuf[:0]
		for _, rec := range e.modelRecs {
			e.ysBuf = append(e.ysBuf, rec.Objective(w))
		}
		if err := e.model.UpdateTargets(e.ysBuf); err != nil {
			return e.dropModel(err)
		}
	case miss == 1 && n == len(e.modelRecs)+1:
		e.ysBuf = e.ysBuf[:0]
		for _, rec := range e.modelRecs {
			e.ysBuf = append(e.ysBuf, rec.Objective(w))
		}
		e.ysBuf = append(e.ysBuf, fresh.Objective(w))
		if err := e.model.Append(fresh.Vector, e.ysBuf); err != nil {
			return e.dropModel(err)
		}
		e.modelSet[fresh] = len(e.modelRecs)
		e.modelRecs = append(e.modelRecs, fresh)
	default:
		e.xsBuf, e.ysBuf = e.xsBuf[:0], e.ysBuf[:0]
		e.modelRecs = e.modelRecs[:0]
		for k := range e.modelSet {
			delete(e.modelSet, k)
		}
		for i, rec := range window {
			e.xsBuf = append(e.xsBuf, rec.Vector)
			e.ysBuf = append(e.ysBuf, rec.Objective(w))
			e.modelRecs = append(e.modelRecs, rec)
			e.modelSet[rec] = i
		}
		if err := e.model.Reset(e.xsBuf, e.ysBuf); err != nil {
			return e.dropModel(err)
		}
	}
	return nil
}

// dropModel clears the membership tracking after a model failure so the
// next tick rebuilds from the window.
func (e *Engine) dropModel(err error) error {
	e.modelRecs = e.modelRecs[:0]
	for k := range e.modelSet {
		delete(e.modelSet, k)
	}
	return err
}

// nextCandidate hands out the next pooled candidate configuration,
// growing the pool on first use.
func (e *Engine) nextCandidate() resource.Config {
	if e.candCount == len(e.candidateCfg) {
		e.candidateCfg = append(e.candidateCfg, e.space.NewConfig())
	}
	c := e.candidateCfg[e.candCount]
	e.candCount++
	return c
}

// clampUnmanaged pins unmanaged rows of c to the equal split, in place.
func (e *Engine) clampUnmanaged(c resource.Config) {
	for r, managed := range e.managedRow {
		if !managed {
			copy(c.Alloc[r], e.equalSplit.Alloc[r])
		}
	}
}

// randomWalkInto copies c into dst and applies up to steps random one-unit
// moves in managed rows — randomWalk without the per-move clones,
// consuming the identical RNG draw sequence (illegal moves still burn
// their draws).
func (e *Engine) randomWalkInto(dst, c resource.Config, steps int) {
	dst.CopyFrom(c)
	if len(e.managedRows) == 0 {
		return
	}
	for s := 0; s < steps; s++ {
		r := e.managedRows[e.rng.Intn(len(e.managedRows))]
		from := e.rng.Intn(e.space.Jobs)
		to := e.rng.Intn(e.space.Jobs)
		e.space.MoveInPlace(dst, r, from, to)
	}
}

// appendManagedNeighbors pushes every one-unit move of c within managed
// rows onto the candidate pool, in the same enumeration order as
// managedNeighbors.
func (e *Engine) appendManagedNeighbors(c resource.Config) {
	for r, managed := range e.managedRow {
		if !managed {
			continue
		}
		for from := 0; from < e.space.Jobs; from++ {
			if c.Alloc[r][from] <= 1 {
				continue
			}
			for to := 0; to < e.space.Jobs; to++ {
				if to == from {
					continue
				}
				n := e.nextCandidate()
				n.CopyFrom(c)
				n.Alloc[r][from]--
				n.Alloc[r][to]++
			}
		}
	}
}

// trackProxyChange records the mean absolute relative change of the proxy
// model's predictions across consecutive iterations over the recorded
// configurations — the quantity of Fig. 17(b).
func (e *Engine) trackProxyChange(model proxyModel, window []*Record) {
	// Ping-pong between two maps so steady state allocates nothing.
	preds := e.currPreds
	if preds == nil {
		preds = make(map[string]float64, len(window))
	}
	for k := range preds {
		delete(preds, k)
	}
	sum, n := 0.0, 0
	for _, rec := range window {
		p := model.PredictMean(rec.Vector)
		preds[rec.Key] = p
		if prev, ok := e.prevPreds[rec.Key]; ok {
			denom := math.Abs(prev)
			if denom < 1e-9 {
				denom = 1e-9
			}
			sum += math.Abs(p-prev) / denom * 100
			n++
		}
	}
	if n > 0 {
		e.proxyChange = sum / float64(n)
	}
	e.currPreds = e.prevPreds
	e.prevPreds = preds
}

// LastWeights returns the weight decomposition of the last Decide call
// (Fig. 14(a)).
func (e *Engine) LastWeights() Weights { return e.lastWeights }

// LastObjective returns the objective value W_T·T + W_F·F observed at the
// last Decide call (Fig. 17(a)).
func (e *Engine) LastObjective() float64 { return e.lastObj }

// ProxyChange returns the latest mean % change of the proxy model's
// predictions between consecutive iterations (Fig. 17(b)).
func (e *Engine) ProxyChange() float64 { return e.proxyChange }

// Scheduler exposes the weight scheduler (the harness uses its
// equalization boundary to re-record baselines, Algorithm 1 line 12).
func (e *Engine) Scheduler() *Scheduler { return e.sched }

// Records returns the per-goal configuration records.
func (e *Engine) Records() *Records { return e.recs }

// FitFailures counts degenerate proxy refits (diagnostics).
func (e *Engine) FitFailures() int { return e.fitFailures }

// AcquisitionFailures counts ticks on which the acquisition could not
// produce a candidate (degenerate posteriors scoring every candidate
// NaN/Inf — bo.ErrNoFiniteScore — or other suggest errors) and the engine
// held the current configuration. Previously these were silent holds.
func (e *Engine) AcquisitionFailures() int { return e.acqFailures }

// GPStats returns the incremental proxy model's update-path counters
// (full refits vs rank-1 extends vs α-only target re-solves) — always
// zero when Options.FullRefit is set.
func (e *Engine) GPStats() gp.IncrementalStats { return e.model.Stats() }

// Exploits counts ticks on which the engine held the incumbent best
// configuration instead of probing (diagnostics; also the trigger for the
// paper's skip-GP-update overhead optimization).
func (e *Engine) Exploits() int { return e.exploits }
