// Package core implements SATORI itself: the Bayesian-optimization engine
// of Algorithm 1 with the dynamically re-prioritized multi-goal objective
// function of Secs. III-B and III-C.
//
// The engine runs as a policy over a resource.Space: every 100 ms it
// records the observed throughput and fairness of the configuration that
// just ran in separate per-goal records, recomputes the goal weights
// (equalization + prioritization components), reconstructs the scalar
// objective y = W_T·T + W_F·F for every recorded configuration in
// software (no re-sampling), refits the Gaussian-process proxy model, and
// picks the next configuration by maximizing Expected Improvement over a
// candidate pool.
package core

import (
	"satori/internal/stats"
)

// WeightMode selects how goal weights evolve over time.
type WeightMode int

const (
	// WeightsDynamic is full SATORI: short-term prioritization of one
	// goal bounded by long-term equalization (Sec. III-C).
	WeightsDynamic WeightMode = iota
	// WeightsStatic pins the weights at a constant split — the
	// "SATORI without dynamic prioritization" variant of Figs. 14(b),
	// 17 and 18 (and, with W_T∈{0,1}, the single-goal
	// Throughput/Fairness SATORI variants of Sec. IV).
	WeightsStatic
	// WeightsFavorStronger is the design ablation the paper reports
	// underperforms by ~5%: the prioritization weight favors the goal
	// that improved MORE in the previous period, instead of giving the
	// opportunity to the other goal.
	WeightsFavorStronger
	// WeightsSLOAware is WeightsDynamic with a violation override:
	// while the control loop reports a persistent SLO violation
	// (Observation.SLOViolating, fed in via SetSLOViolating), the final
	// weights pin to (floor, ceil) so the whole prioritization budget
	// backs the goal channel scoring SLO recovery. The period clocks
	// keep running on the pinned weights, so equalization repays the
	// throughput debt after the violation clears — short-term sacrifice,
	// long-term gains, applied to tail latency.
	WeightsSLOAware
)

// String names the mode.
func (m WeightMode) String() string {
	switch m {
	case WeightsDynamic:
		return "dynamic"
	case WeightsStatic:
		return "static"
	case WeightsFavorStronger:
		return "favor-stronger"
	case WeightsSLOAware:
		return "slo-aware"
	default:
		return "unknown"
	}
}

// Weights is the full decomposition of one tick's goal weights, as
// plotted in Fig. 14(a).
type Weights struct {
	// T and F are the final throughput and fairness weights of Eq. 5/6
	// (they always sum to 1).
	T, F float64
	// TE and FE are the equalization components (Eq. 3, normalized —
	// see DESIGN.md §1 for the faithfulness note).
	TE, FE float64
	// TP and FP are the prioritization components (Eq. 4).
	TP, FP float64
	// EqFrac is t_e/T_E, the blend factor: 0 right after an
	// equalization boundary, approaching 1 at the period's end.
	EqFrac float64
}

// Default weight bounds of Sec. III-C: prioritization can never push a
// goal's weight outside [0.25, 0.75], keeping the moving-goal-post BO
// process controlled.
const (
	DefaultWeightFloor = 0.25
	DefaultWeightCeil  = 0.75
)

// Scheduler computes the per-tick goal weights. The zero value is not
// usable; construct with NewScheduler.
type Scheduler struct {
	mode    WeightMode
	staticT float64
	tpTicks int
	teTicks int
	floor   float64
	ceil    float64

	te    int     // completed ticks in the current equalization period
	sumWT float64 // Σ W_T over those ticks
	tp    int     // completed ticks in the current prioritization period
	// Improvement windows: Δ_T/Δ_F compare the mean observation over
	// the first and last thirds of the prioritization period, which
	// keeps Eq. 4 responsive to real trends rather than to single-tick
	// measurement noise.
	winLen           int
	earlyT, earlyF   float64 // sums over the first winLen ticks
	earlyN           int
	lateT, lateF     []float64 // ring of the most recent winLen ticks
	lateIdx, lateCnt int
	wTP              float64 // current prioritization weight for throughput
	wFP              float64

	last        Weights
	boundaryHit bool

	// sloViolating is the loop-fed violation state consulted under
	// WeightsSLOAware; other modes ignore it.
	sloViolating bool
}

// SchedulerOptions configures NewScheduler.
type SchedulerOptions struct {
	// Mode defaults to WeightsDynamic.
	Mode WeightMode
	// StaticWT is the throughput weight under WeightsStatic (fairness
	// gets 1−StaticWT). Defaults to 0.5.
	StaticWT float64
	// PrioritizationTicks is T_P in 100 ms ticks (default 10 = 1 s).
	PrioritizationTicks int
	// EqualizationTicks is T_E in 100 ms ticks (default 100 = 10 s).
	EqualizationTicks int
	// WeightFloor and WeightCeil override the [0.25, 0.75] bounds of
	// Sec. III-C (used by the bounds ablation). The zero value keeps the
	// defaults; an explicit 0 bound (the truly unbounded ablation) is
	// expressed by also setting the matching *Set flag — the same
	// sentinel pattern as Options.StaticWTSet.
	WeightFloor float64
	WeightCeil  float64
	// WeightFloorSet marks WeightFloor as explicit, so WeightFloor: 0 is
	// honored as "no floor" instead of being rewritten to 0.25.
	WeightFloorSet bool
	// WeightCeilSet marks WeightCeil as explicit (a ceiling of exactly 1
	// needs no flag; it is accepted directly).
	WeightCeilSet bool
}

// NewScheduler builds a weight scheduler.
func NewScheduler(opt SchedulerOptions) *Scheduler {
	if opt.PrioritizationTicks <= 0 {
		opt.PrioritizationTicks = 10
	}
	if opt.EqualizationTicks <= 0 {
		opt.EqualizationTicks = 100
	}
	if opt.WeightFloor < 0 || (opt.WeightFloor == 0 && !opt.WeightFloorSet) {
		opt.WeightFloor = DefaultWeightFloor
	}
	if opt.WeightCeil < 0 || opt.WeightCeil > 1 || (opt.WeightCeil == 0 && !opt.WeightCeilSet) {
		opt.WeightCeil = DefaultWeightCeil
	}
	if opt.WeightCeil < opt.WeightFloor {
		opt.WeightFloor, opt.WeightCeil = DefaultWeightFloor, DefaultWeightCeil
	}
	winLen := opt.PrioritizationTicks / 3
	if winLen < 1 {
		winLen = 1
	}
	s := &Scheduler{
		mode:    opt.Mode,
		staticT: opt.StaticWT,
		tpTicks: opt.PrioritizationTicks,
		teTicks: opt.EqualizationTicks,
		floor:   opt.WeightFloor,
		ceil:    opt.WeightCeil,
		winLen:  winLen,
		lateT:   make([]float64, winLen),
		lateF:   make([]float64, winLen),
		wTP:     0.5,
		wFP:     0.5,
	}
	if opt.Mode == WeightsStatic && opt.StaticWT == 0 {
		// Distinguish "unset" from an explicit fairness-only request:
		// callers wanting W_T=0 set StaticWT to a tiny epsilon-free
		// explicit 0 via StaticWTSet; the plain zero value means the
		// balanced default.
		s.staticT = 0.5
	}
	return s
}

// NewStaticScheduler builds a static-weight scheduler with an explicit
// throughput weight (0 is honored, enabling the Fairness SATORI variant).
func NewStaticScheduler(wT float64) *Scheduler {
	s := NewScheduler(SchedulerOptions{Mode: WeightsStatic})
	s.staticT = stats.Clamp(wT, 0, 1)
	return s
}

// Step consumes the tick's normalized throughput and fairness observation
// and returns the weights to use when constructing this tick's objective
// function.
func (s *Scheduler) Step(throughput, fairness float64) Weights {
	s.boundaryHit = false
	if s.mode == WeightsStatic {
		w := Weights{
			T: s.staticT, F: 1 - s.staticT,
			TE: s.staticT, FE: 1 - s.staticT,
			TP: s.staticT, FP: 1 - s.staticT,
		}
		s.advanceClock(w)
		s.last = w
		return w
	}

	// Track the improvement windows for this period.
	if s.tp < s.winLen {
		s.earlyT += throughput
		s.earlyF += fairness
		s.earlyN++
	}
	s.lateT[s.lateIdx] = throughput
	s.lateF[s.lateIdx] = fairness
	s.lateIdx = (s.lateIdx + 1) % s.winLen
	if s.lateCnt < s.winLen {
		s.lateCnt++
	}

	// Prioritization component (Eq. 4): recomputed at each T_P
	// boundary from the % improvements over the period just ended.
	// The Eq. 4 constants are expressed through the configured bounds
	// (floor + span·Δ/(Δ_T+Δ_F)); with the paper's 0.25/0.75 defaults
	// this is exactly 1/4 + 1/2·Δ/(Δ_T+Δ_F).
	if s.tp >= s.tpTicks {
		dT := pctImprove(s.earlyT/float64(max1(s.earlyN)), meanOf(s.lateT, s.lateCnt))
		dF := pctImprove(s.earlyF/float64(max1(s.earlyN)), meanOf(s.lateF, s.lateCnt))
		span := s.ceil - s.floor
		if dT+dF <= 0 {
			s.wTP, s.wFP = 0.5, 0.5
		} else if s.mode == WeightsFavorStronger {
			// Ablation: reward the goal that improved more.
			s.wTP = s.floor + span*dT/(dT+dF)
			s.wFP = s.floor + span*dF/(dT+dF)
		} else {
			// Eq. 4: the goal that improved LESS gets the next
			// opportunity (prioritize the weaker goal).
			s.wTP = s.floor + span*dF/(dT+dF)
			s.wFP = s.floor + span*dT/(dT+dF)
		}
		s.tp = 0
		s.earlyT, s.earlyF, s.earlyN = 0, 0, 0
		s.lateCnt, s.lateIdx = 0, 0
	}

	// Equalization component (Eq. 3, normalized): 0.5 plus the average
	// weight deficit so far in the equalization period.
	wTE := 0.5
	if s.te > 0 {
		deficit := (0.5*float64(s.te) - s.sumWT) / float64(s.te)
		wTE = stats.Clamp(0.5+deficit, s.floor, s.ceil)
	}
	wFE := 1 - wTE

	// Blend (Eqs. 5/6): equalization dominates toward the period end.
	frac := float64(s.te) / float64(s.teTicks)
	wT := stats.Clamp(frac*wTE+(1-frac)*s.wTP, s.floor, s.ceil)
	if s.mode == WeightsSLOAware && s.sloViolating {
		// Violation override: pin throughput to the floor and hand the
		// ceiling to the recovery-scoring goal channel. The pinned
		// weight still feeds advanceClock's Σ W_T, so equalization owes
		// throughput the difference once the violation clears.
		wT = s.floor
	}
	w := Weights{
		T: wT, F: 1 - wT,
		TE: wTE, FE: wFE,
		TP: s.wTP, FP: s.wFP,
		EqFrac: frac,
	}
	s.advanceClock(w)
	s.last = w
	return w
}

// SetSLOViolating feeds the control loop's hysteretic SLO-violation
// state; consulted only by WeightsSLOAware.
func (s *Scheduler) SetSLOViolating(v bool) { s.sloViolating = v }

// advanceClock accumulates the period counters after a tick's weights are
// fixed.
func (s *Scheduler) advanceClock(w Weights) {
	s.sumWT += w.T
	s.te++
	s.tp++
	if s.te >= s.teTicks {
		s.te = 0
		s.sumWT = 0
		s.boundaryHit = true
	}
}

// EqualizationBoundary reports whether the last Step closed an
// equalization period — the moment Algorithm 1 re-records the isolated
// baselines.
func (s *Scheduler) EqualizationBoundary() bool { return s.boundaryHit }

// Last returns the most recently computed weights.
func (s *Scheduler) Last() Weights { return s.last }

// Mode returns the scheduler's weight mode.
func (s *Scheduler) Mode() WeightMode { return s.mode }

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func meanOf(ring []float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	if n > len(ring) {
		n = len(ring)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += ring[i]
	}
	return sum / float64(n)
}

// pctImprove returns the non-negative % improvement from a to b.
func pctImprove(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	d := (b - a) / a * 100
	if d < 0 {
		return 0
	}
	return d
}
