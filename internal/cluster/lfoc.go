package cluster

import (
	"fmt"
	"sort"

	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
)

// LFOCOptions configures the standalone LFOC baseline.
type LFOCOptions struct {
	// K is the maximum cluster count (required ≥ 1).
	K int
	// Classifier tunes the online classifier (K is taken from above).
	Classifier ClassifierOptions
	// Grouper, when non-nil, is notified of every grouping.
	Grouper rdt.Grouper
}

// LFOC is the lightweight fairness-oriented clustering baseline: no
// search at all. Jobs are classified online exactly as for clustered
// SATORI, but the allocation is computed directly from the classes —
// streaming jobs are penned into a minimal-ways cluster (their misses
// would otherwise thrash every cache partition), insensitive jobs get
// the floor, and cache-sensitive clusters receive the remaining ways;
// bandwidth favors the streamers, cores split proportionally. The
// allocation is recomputed only when membership migrates and held
// otherwise, which is what makes LFOC "lightweight" — and what it gives
// up against SATORI's continual BO search (the jobs≫classes ablation
// quantifies the gap).
type LFOC struct {
	jobSpace *resource.Space
	cls      *Classifier
	opt      LFOCOptions

	grouping *resource.Grouping
	target   resource.Config
	have     bool

	migrations int
}

// NewLFOC builds the baseline over the job space.
func NewLFOC(jobSpace *resource.Space, opt LFOCOptions) (*LFOC, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("cluster: LFOCOptions.K must be ≥ 1, got %d", opt.K)
	}
	copt := opt.Classifier
	copt.K = opt.K
	l := &LFOC{
		jobSpace: jobSpace,
		cls:      NewClassifier(jobSpace, copt),
		opt:      opt,
		target:   jobSpace.NewConfig(),
	}
	l.grouping = l.cls.Grouping()
	if opt.Grouper != nil {
		if err := opt.Grouper.SetGrouping(l.grouping); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Name implements policy.Policy.
func (l *LFOC) Name() string { return "lfoc" }

// Grouping returns the active job→cluster map.
func (l *LFOC) Grouping() *resource.Grouping { return l.grouping }

// Regroups reports committed membership migrations.
func (l *LFOC) Regroups() int { return l.migrations }

// Decide implements policy.Policy.
func (l *LFOC) Decide(obs policy.Observation, current resource.Config) resource.Config {
	migrated := l.cls.Observe(obs.Speedups, current)
	if migrated {
		l.grouping = l.cls.Grouping()
		if l.opt.Grouper != nil {
			if err := l.opt.Grouper.SetGrouping(l.grouping); err != nil {
				// Hold the last good allocation; the platform kept the
				// previous grouping.
				return current
			}
		}
		l.migrations++
	}
	if migrated || !l.have {
		l.allocate()
		l.have = true
	}
	return l.target
}

// classBoost is the per-resource weight multiplier LFOC's allocation rule
// assigns each class: ways concentrate on cache-sensitive clusters (and
// are explicitly withheld from streamers), bandwidth favors streamers,
// cores and power split proportionally to membership.
func classBoost(kind resource.Kind, cl Class) float64 {
	switch kind {
	case resource.LLCWays:
		switch cl {
		case CacheSensitive:
			return 4
		default: // Streaming and Insensitive stay near the floor.
			return 0.5
		}
	case resource.MemBW:
		switch cl {
		case Streaming:
			return 3
		case Insensitive:
			return 0.5
		default:
			return 1
		}
	default: // Cores, Power: proportional.
		return 1
	}
}

// allocate recomputes the per-job target from the grouping and classes:
// every cluster starts at its floor (one unit per member), and each
// resource's leftover units are apportioned to clusters by
// members × classBoost with largest-remainder rounding (ties to the
// lower cluster index), then split within clusters exactly as
// Grouping.Expand does.
func (l *LFOC) allocate() {
	g := l.grouping
	classes := l.cls.Classes()
	k := g.Clusters
	// A cluster's class is its first member's (propose() builds clusters
	// class-pure, so any member is representative).
	clusterClass := make([]Class, k)
	seen := make([]bool, k)
	for j, c := range g.JobToCluster {
		if !seen[c] {
			clusterClass[c] = classes[j]
			seen[c] = true
		}
	}
	cs, err := g.ClusterSpace(l.jobSpace)
	if err != nil {
		// Unreachable: the grouping always spans the job space.
		l.target = l.jobSpace.EqualSplit()
		return
	}
	cc := cs.NewConfig()
	for r, res := range l.jobSpace.Resources {
		totals := make([]int, k)
		left := res.Units
		for c := 0; c < k; c++ {
			totals[c] = g.Size(c) // the floor: one unit per member
			left -= totals[c]
		}
		if left > 0 {
			weights := make([]float64, k)
			sum := 0.0
			for c := 0; c < k; c++ {
				weights[c] = float64(g.Size(c)) * classBoost(res.Kind, clusterClass[c])
				sum += weights[c]
			}
			apportion(totals, weights, sum, left)
		}
		for c := 0; c < k; c++ {
			cc.Alloc[r][c] = totals[c] - g.Size(c) + 1 // reduced coordinates
		}
	}
	g.ExpandInto(cc, l.target)
}

// apportion distributes extra units over clusters proportionally to
// weights with largest-remainder rounding; remainder ties break to the
// lower cluster index, keeping the rule fully deterministic.
func apportion(totals []int, weights []float64, sum float64, extra int) {
	if sum <= 0 {
		// Degenerate weights: hand everything to cluster 0.
		totals[0] += extra
		return
	}
	type frac struct {
		c int
		f float64
	}
	rem := extra
	fracs := make([]frac, len(totals))
	for c := range totals {
		quota := float64(extra) * weights[c] / sum
		whole := int(quota)
		totals[c] += whole
		rem -= whole
		fracs[c] = frac{c, quota - float64(whole)}
	}
	sort.SliceStable(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].c < fracs[b].c
	})
	for i := 0; i < rem; i++ {
		totals[fracs[i%len(fracs)].c]++
	}
}
