// Package cluster breaks the one-job-one-CLOS wall with LFOC-style
// online job clustering ("LFOC: A Lightweight Fairness-Oriented Cache
// Clustering Policy for Commodity Multicores", PAPERS.md): a streaming
// classifier fingerprints each job from the samples the control loop
// already collects — the IPS response to the allocation deltas a
// search-based policy explores — and assigns jobs to at most K clusters
// (streaming / cache-sensitive by intensity / insensitive). Jobs map
// many-to-one onto CLOS control groups, so a co-location of M jobs fits
// hardware with ~16 classes of service, and partition search runs over
// the much smaller cluster space (resource.Grouping.ClusterSpace).
//
// Everything here is a pure, deterministic function of the observation
// stream: no randomness, no clocks, no map iteration — two runs over the
// same samples classify, migrate, and allocate identically, preserving
// the repo's byte-identical reproduction regime.
package cluster

import (
	"sort"

	"satori/internal/resource"
)

// Class is a job's LFOC-style behavior class.
type Class int

const (
	// Insensitive jobs respond to neither extra cache nor extra
	// bandwidth (compute-bound, or core-bound).
	Insensitive Class = iota
	// Streaming jobs respond to bandwidth but not to cache — their
	// working set never fits, so giving them ways is pure waste that
	// LFOC avoids by penning them into a minimal-ways cluster.
	Streaming
	// CacheSensitive jobs convert LLC ways into IPS; they are spread
	// over the remaining cluster budget by sensitivity quantile so jobs
	// with similar miss-curves share a partition.
	CacheSensitive
)

// String renders the class for traces.
func (c Class) String() string {
	switch c {
	case Streaming:
		return "streaming"
	case CacheSensitive:
		return "cache-sensitive"
	default:
		return "insensitive"
	}
}

// ClassifierOptions tunes the streaming classifier. The zero value takes
// the defaults noted per field; K is the only required knob.
type ClassifierOptions struct {
	// K is the maximum cluster count (the CLOS budget). With K ≥ jobs
	// the classifier pins the singleton grouping and never migrates —
	// clustered search is then draw-identical to per-job search.
	K int
	// ReclassifyEvery is the tick period between classification rounds
	// (default 30 = 3 s).
	ReclassifyEvery int
	// MinSamples is how many observations must accumulate before the
	// first round (default 20); until then the deterministic round-robin
	// bootstrap grouping holds.
	MinSamples int
	// Hysteresis is how many consecutive rounds must propose the same
	// new grouping before a migration commits (default 2), damping
	// oscillation at class boundaries exactly like the SLO detector's
	// onset streaks.
	Hysteresis int
	// WaysSlopeMin and BWSlopeMin are the d(speedup)/d(share) thresholds
	// above which a job counts as cache-sensitive / streaming
	// (default 0.2 each).
	WaysSlopeMin float64
	BWSlopeMin   float64
}

func (o ClassifierOptions) fill() ClassifierOptions {
	if o.ReclassifyEvery <= 0 {
		o.ReclassifyEvery = 30
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 20
	}
	if o.Hysteresis <= 0 {
		o.Hysteresis = 2
	}
	if o.WaysSlopeMin <= 0 {
		o.WaysSlopeMin = 0.2
	}
	if o.BWSlopeMin <= 0 {
		o.BWSlopeMin = 0.2
	}
	return o
}

// regress is an incremental simple-linear-regression accumulator: the
// slope of y (speedup) against x (resource share) over every observed
// sample, the classifier's sensitivity estimate. Allocation deltas the
// policy explores provide the x variance; without variance the slope
// reads 0 (no evidence of sensitivity).
type regress struct {
	n, sx, sy, sxx, sxy float64
}

func (r *regress) add(x, y float64) {
	r.n++
	r.sx += x
	r.sy += y
	r.sxx += x * x
	r.sxy += x * y
}

func (r *regress) slope() float64 {
	den := r.n*r.sxx - r.sx*r.sx
	if den < 1e-9 {
		return 0
	}
	return (r.n*r.sxy - r.sx*r.sy) / den
}

// Classifier fingerprints jobs online and maintains the committed
// grouping with hysteretic migrations.
type Classifier struct {
	opt   ClassifierOptions
	space *resource.Space
	// iWays and iBW are the resource-row indices of the two fingerprint
	// features (-1 when the machine does not partition that resource).
	iWays, iBW int

	ways, bw []regress
	classes  []Class
	ticks    int

	grouping  *resource.Grouping
	candidate *resource.Grouping
	streak    int
	migrated  int

	// singleton short-circuits everything when K ≥ jobs: the identity
	// grouping is pinned, Observe is a no-op, and clustered search is
	// draw-identical to per-job search.
	singleton bool
}

// NewClassifier builds a classifier over the job space. The initial
// grouping is the identity when K ≥ jobs, otherwise the deterministic
// round-robin bootstrap (job j → cluster j mod K).
func NewClassifier(space *resource.Space, opt ClassifierOptions) *Classifier {
	opt = opt.fill()
	idx := func(kind resource.Kind) int {
		for i, r := range space.Resources {
			if r.Kind == kind {
				return i
			}
		}
		return -1
	}
	c := &Classifier{
		opt:       opt,
		space:     space,
		iWays:     idx(resource.LLCWays),
		iBW:       idx(resource.MemBW),
		ways:      make([]regress, space.Jobs),
		bw:        make([]regress, space.Jobs),
		classes:   make([]Class, space.Jobs),
		singleton: opt.K >= space.Jobs,
	}
	if c.singleton {
		c.grouping = resource.SingletonGrouping(space.Jobs)
	} else {
		c.grouping = resource.RoundRobinGrouping(space.Jobs, opt.K)
	}
	return c
}

// Grouping returns the committed job→cluster map.
func (c *Classifier) Grouping() *resource.Grouping { return c.grouping }

// Migrations counts committed membership migrations so far.
func (c *Classifier) Migrations() int { return c.migrated }

// Classes returns the per-job classes from the last classification round
// (all Insensitive before the first round).
func (c *Classifier) Classes() []Class { return c.classes }

// WaysSlope returns job j's current cache-sensitivity estimate.
func (c *Classifier) WaysSlope(j int) float64 { return c.ways[j].slope() }

// Observe feeds one interval: the per-job speedups and the configuration
// that produced them. It reports whether a membership migration was
// committed this tick (the caller must then rebuild anything dimensioned
// on the cluster space — the migration-as-churn contract).
func (c *Classifier) Observe(speedups []float64, cfg resource.Config) bool {
	if c.singleton {
		return false
	}
	for j := 0; j < c.space.Jobs && j < len(speedups); j++ {
		if c.iWays >= 0 {
			share := float64(cfg.Alloc[c.iWays][j]) / float64(c.space.Resources[c.iWays].Units)
			c.ways[j].add(share, speedups[j])
		}
		if c.iBW >= 0 {
			share := float64(cfg.Alloc[c.iBW][j]) / float64(c.space.Resources[c.iBW].Units)
			c.bw[j].add(share, speedups[j])
		}
	}
	c.ticks++
	if c.ticks < c.opt.MinSamples || c.ticks%c.opt.ReclassifyEvery != 0 {
		return false
	}
	return c.round()
}

// round runs one classification round: recompute classes, propose a
// grouping, and commit it after Hysteresis consecutive identical
// proposals that differ from the committed one.
func (c *Classifier) round() bool {
	for j := range c.classes {
		ws, bs := c.ways[j].slope(), c.bw[j].slope()
		switch {
		case ws >= c.opt.WaysSlopeMin:
			c.classes[j] = CacheSensitive
		case bs >= c.opt.BWSlopeMin:
			c.classes[j] = Streaming
		default:
			c.classes[j] = Insensitive
		}
	}
	cand := c.propose()
	if cand.Equal(c.grouping) {
		c.candidate, c.streak = nil, 0
		return false
	}
	if c.candidate != nil && cand.Equal(c.candidate) {
		c.streak++
	} else {
		c.candidate, c.streak = cand, 1
	}
	if c.streak < c.opt.Hysteresis {
		return false
	}
	c.grouping = c.candidate
	c.candidate, c.streak = nil, 0
	c.migrated++
	return true
}

// propose builds the grouping the current classes imply, within the K
// budget: one cluster pens the streaming jobs, one holds the
// insensitive, and the cache-sensitive jobs spread over the remaining
// K−2 clusters by sensitivity quantile (jobs with similar miss curves
// share a partition). Bucket ids are renumbered to contiguous cluster
// indices in order of first member, so the proposal is a pure function
// of the classes and slopes.
func (c *Classifier) propose() *resource.Grouping {
	jobs := c.space.Jobs
	k := c.opt.K
	bucket := make([]int, jobs) // provisional, possibly sparse ids
	switch {
	case k <= 1:
		// One cluster: everything shares.
	case k == 2:
		// Cache-sensitive vs the rest.
		for j, cl := range c.classes {
			if cl == CacheSensitive {
				bucket[j] = 1
			}
		}
	default:
		// Sensitive jobs sorted by descending slope (ties by job index)
		// and cut into up to K−2 even quantile buckets.
		var sens []int
		for j, cl := range c.classes {
			switch cl {
			case Streaming:
				bucket[j] = 1
			case CacheSensitive:
				sens = append(sens, j)
			default:
				bucket[j] = 0
			}
		}
		buckets := k - 2
		if len(sens) < buckets {
			buckets = len(sens)
		}
		if buckets > 0 {
			sort.SliceStable(sens, func(a, b int) bool {
				sa, sb := c.ways[sens[a]].slope(), c.ways[sens[b]].slope()
				if sa != sb {
					return sa > sb
				}
				return sens[a] < sens[b]
			})
			base := len(sens) / buckets
			rem := len(sens) % buckets
			pos := 0
			for b := 0; b < buckets; b++ {
				n := base
				if b < rem {
					n++
				}
				for i := 0; i < n; i++ {
					bucket[sens[pos]] = 2 + b
					pos++
				}
			}
		}
	}
	// Renumber sparse bucket ids to contiguous cluster indices in order
	// of first member.
	next := 0
	remap := make(map[int]int, k)
	m := make([]int, jobs)
	for j, b := range bucket {
		id, ok := remap[b]
		if !ok {
			id = next
			remap[b] = id
			next++
		}
		m[j] = id
	}
	g, err := resource.NewGrouping(m)
	if err != nil {
		// Unreachable: the renumbering guarantees contiguous, non-empty
		// clusters. Fall back to the committed grouping.
		return c.grouping
	}
	return g
}
