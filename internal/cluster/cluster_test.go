package cluster

import (
	"testing"

	"satori/internal/core"
	"satori/internal/policy"
	"satori/internal/resource"
	"satori/internal/stats"
)

func testSpace(t *testing.T, jobs int) *resource.Space {
	t.Helper()
	s, err := resource.NewSpace(jobs,
		resource.Resource{Kind: resource.Cores, Units: 4 * jobs},
		resource.Resource{Kind: resource.LLCWays, Units: 3 * jobs},
		resource.Resource{Kind: resource.MemBW, Units: 2 * jobs},
	)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return s
}

// jobKind scripts a synthetic fingerprint for driveClassifier.
type jobKind int

const (
	flat jobKind = iota
	cacheBound
	bwBound
)

// syntheticSpeedups builds a per-job speedup vector whose correlation
// structure matches each job's scripted kind: cache-bound jobs speed up
// with their ways share, bw-bound with their bandwidth share, flat jobs
// ignore both.
func syntheticSpeedups(space *resource.Space, kinds []jobKind, cfg resource.Config) []float64 {
	iWays, iBW := -1, -1
	for i, r := range space.Resources {
		switch r.Kind {
		case resource.LLCWays:
			iWays = i
		case resource.MemBW:
			iBW = i
		}
	}
	out := make([]float64, space.Jobs)
	for j := range out {
		switch kinds[j] {
		case cacheBound:
			out[j] = 0.3 + 0.6*float64(cfg.Alloc[iWays][j])/float64(space.Resources[iWays].Units)
		case bwBound:
			out[j] = 0.3 + 0.6*float64(cfg.Alloc[iBW][j])/float64(space.Resources[iBW].Units)
		default:
			out[j] = 0.5
		}
	}
	return out
}

// driveClassifier feeds ticks of random configurations (for allocation
// variance) with kind-scripted speedups until the classifier migrates or
// the budget runs out; returns the number of committed migrations.
func driveClassifier(t *testing.T, c *Classifier, space *resource.Space, kinds []jobKind, ticks int) int {
	t.Helper()
	rng := stats.NewRNG(7)
	migrations := 0
	for i := 0; i < ticks; i++ {
		cfg := space.Random(rng)
		if c.Observe(syntheticSpeedups(space, kinds, cfg), cfg) {
			migrations++
		}
	}
	return migrations
}

func TestClassifierFingerprints(t *testing.T) {
	space := testSpace(t, 6)
	kinds := []jobKind{cacheBound, cacheBound, bwBound, bwBound, flat, flat}
	c := NewClassifier(space, ClassifierOptions{K: 3})
	driveClassifier(t, c, space, kinds, 300)
	want := []Class{CacheSensitive, CacheSensitive, Streaming, Streaming, Insensitive, Insensitive}
	for j, cl := range c.Classes() {
		if cl != want[j] {
			t.Errorf("job %d classified %v, want %v (ways slope %.3f)", j, cl, want[j], c.WaysSlope(j))
		}
	}
	g := c.Grouping()
	if g.Clusters > 3 {
		t.Fatalf("grouping uses %d clusters, budget is 3", g.Clusters)
	}
	// Same-class jobs must share a cluster, cross-class jobs must not.
	for a := 0; a < space.Jobs; a++ {
		for b := a + 1; b < space.Jobs; b++ {
			same := g.JobToCluster[a] == g.JobToCluster[b]
			if (kinds[a] == kinds[b]) != same {
				t.Errorf("jobs %d(%v) and %d(%v): same cluster = %v", a, kinds[a], b, kinds[b], same)
			}
		}
	}
}

func TestClassifierDeterministic(t *testing.T) {
	space := testSpace(t, 6)
	kinds := []jobKind{cacheBound, cacheBound, bwBound, bwBound, flat, flat}
	run := func() (string, int) {
		c := NewClassifier(space, ClassifierOptions{K: 3})
		m := driveClassifier(t, c, space, kinds, 300)
		return c.Grouping().String(), m
	}
	g1, m1 := run()
	g2, m2 := run()
	if g1 != g2 || m1 != m2 {
		t.Fatalf("classifier not deterministic: (%s, %d) vs (%s, %d)", g1, m1, g2, m2)
	}
}

func TestClassifierSingletonNeverMigrates(t *testing.T) {
	space := testSpace(t, 4)
	kinds := []jobKind{cacheBound, bwBound, flat, cacheBound}
	c := NewClassifier(space, ClassifierOptions{K: 8})
	if !c.Grouping().IsSingleton() {
		t.Fatal("K ≥ jobs must pin the singleton grouping")
	}
	if m := driveClassifier(t, c, space, kinds, 200); m != 0 {
		t.Fatalf("singleton classifier migrated %d times", m)
	}
}

func TestClassifierHysteresis(t *testing.T) {
	space := testSpace(t, 6)
	kinds := []jobKind{cacheBound, cacheBound, bwBound, bwBound, flat, flat}
	// Hysteresis 3, reclassify every 10, min samples 10: the first
	// possible commit is the 3rd round (tick 30) — strictly later than
	// with hysteresis 1 under the same stream.
	opt := ClassifierOptions{K: 3, ReclassifyEvery: 10, MinSamples: 10, Hysteresis: 3}
	c := NewClassifier(space, opt)
	rng := stats.NewRNG(7)
	firstAt := func(c *Classifier, rng *stats.RNG) int {
		for i := 1; i <= 300; i++ {
			cfg := space.Random(rng)
			if c.Observe(syntheticSpeedups(space, kinds, cfg), cfg) {
				return i
			}
		}
		return -1
	}
	slow := firstAt(c, rng)
	opt.Hysteresis = 1
	fast := firstAt(NewClassifier(space, opt), stats.NewRNG(7))
	if fast < 0 || slow < 0 {
		t.Fatalf("no migration observed: fast=%d slow=%d", fast, slow)
	}
	if slow <= fast {
		t.Fatalf("hysteresis 3 migrated at tick %d, not later than hysteresis 1 at %d", slow, fast)
	}
	if slow-fast < 20 {
		t.Fatalf("hysteresis 3 should lag by ≥ 2 rounds (20 ticks), got %d", slow-fast)
	}
}

func engineFactory(seed uint64) func(space *resource.Space) (policy.Policy, error) {
	return func(space *resource.Space) (policy.Policy, error) {
		return core.New(space, core.Options{Seed: seed})
	}
}

// TestPartitionerSingletonDrawIdentical pins the inertness contract:
// with K ≥ jobs the partitioner's decisions are bit-identical to running
// the inner engine directly, tick for tick.
func TestPartitionerSingletonDrawIdentical(t *testing.T) {
	space := testSpace(t, 4)
	plain, err := core.New(space, core.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	part, err := New(space, Options{K: 8, Inner: engineFactory(42)})
	if err != nil {
		t.Fatal(err)
	}
	kinds := []jobKind{cacheBound, bwBound, flat, cacheBound}
	cfgA, cfgB := space.EqualSplit(), space.EqualSplit()
	for tick := 1; tick <= 120; tick++ {
		mk := func(cfg resource.Config) policy.Observation {
			spd := syntheticSpeedups(space, kinds, cfg)
			iso := make([]float64, space.Jobs)
			ips := make([]float64, space.Jobs)
			for j := range iso {
				iso[j] = 1e9
				ips[j] = spd[j] * iso[j]
			}
			return policy.Observation{Tick: tick, Time: float64(tick) * 0.1, IPS: ips, Isolated: iso, Speedups: spd}
		}
		cfgA = plain.Decide(mk(cfgA), cfgA)
		cfgB = part.Decide(mk(cfgB), cfgB)
		if !cfgA.Equal(cfgB) {
			t.Fatalf("tick %d: partitioner diverged from plain engine:\n%v\nvs\n%v", tick, cfgB, cfgA)
		}
	}
	if part.Regroups() != 0 {
		t.Fatalf("singleton partitioner regrouped %d times", part.Regroups())
	}
}

// TestPartitionerClustered runs jobs ≫ K and checks that every decision
// is a valid job-space configuration, that a migration eventually
// commits, and that post-migration decisions stay valid (the rebuild
// worked).
func TestPartitionerClustered(t *testing.T) {
	space := testSpace(t, 9)
	part, err := New(space, Options{K: 3, Inner: engineFactory(42)})
	if err != nil {
		t.Fatal(err)
	}
	if part.Grouping().Clusters != 3 {
		t.Fatalf("bootstrap grouping has %d clusters, want 3", part.Grouping().Clusters)
	}
	kinds := []jobKind{cacheBound, cacheBound, cacheBound, bwBound, bwBound, bwBound, flat, flat, flat}
	cfg := space.EqualSplit()
	for tick := 1; tick <= 300; tick++ {
		spd := syntheticSpeedups(space, kinds, cfg)
		iso := make([]float64, space.Jobs)
		ips := make([]float64, space.Jobs)
		for j := range iso {
			iso[j] = 1e9
			ips[j] = spd[j] * iso[j]
		}
		obs := policy.Observation{Tick: tick, Time: float64(tick) * 0.1, IPS: ips, Isolated: iso, Speedups: spd}
		cfg = part.Decide(obs, cfg)
		if err := space.Validate(cfg); err != nil {
			t.Fatalf("tick %d: invalid job config after Decide: %v", tick, err)
		}
	}
	if part.Regroups() == 0 {
		t.Fatal("expected at least one membership migration over 300 ticks")
	}
	// Post-migration the grouping reflects the scripted classes: the
	// three cache-bound jobs share, the three bw-bound share, etc.
	g := part.Grouping()
	for a := 0; a < space.Jobs; a++ {
		for b := a + 1; b < space.Jobs; b++ {
			same := g.JobToCluster[a] == g.JobToCluster[b]
			if (kinds[a] == kinds[b]) != same {
				t.Errorf("jobs %d and %d: same cluster = %v, kinds %v vs %v", a, b, same, kinds[a], kinds[b])
			}
		}
	}
}

func TestLFOCAllocates(t *testing.T) {
	space := testSpace(t, 9)
	l, err := NewLFOC(space, LFOCOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	kinds := []jobKind{cacheBound, cacheBound, cacheBound, bwBound, bwBound, bwBound, flat, flat, flat}
	cfg := space.EqualSplit()
	rng := stats.NewRNG(11)
	var lastMigration resource.Config
	for tick := 1; tick <= 300; tick++ {
		// LFOC holds its target between migrations, so variance for the
		// classifier comes from the scripted exploration here.
		probe := space.Random(rng)
		spd := syntheticSpeedups(space, kinds, probe)
		obs := policy.Observation{Tick: tick, Speedups: spd}
		cfg = l.Decide(obs, probe)
		if err := space.Validate(cfg); err != nil {
			t.Fatalf("tick %d: invalid LFOC config: %v", tick, err)
		}
		if l.Regroups() > 0 && lastMigration.Alloc == nil {
			lastMigration = cfg.Clone()
		}
	}
	if l.Regroups() == 0 {
		t.Fatal("LFOC never migrated off the bootstrap grouping")
	}
	// After classification, cache-sensitive jobs hold more ways than
	// streaming jobs, and streaming jobs more bandwidth than insensitive.
	iWays, iBW := 1, 2
	if cfg.Alloc[iWays][0] <= cfg.Alloc[iWays][3] {
		t.Errorf("cache-bound job ways %d not above bw-bound %d", cfg.Alloc[iWays][0], cfg.Alloc[iWays][3])
	}
	if cfg.Alloc[iBW][3] <= cfg.Alloc[iBW][6] {
		t.Errorf("bw-bound job bandwidth %d not above flat %d", cfg.Alloc[iBW][3], cfg.Alloc[iBW][6])
	}
	// Determinism: an identical run lands on the identical allocation.
	l2, _ := NewLFOC(space, LFOCOptions{K: 3})
	rng2 := stats.NewRNG(11)
	var cfg2 resource.Config
	for tick := 1; tick <= 300; tick++ {
		probe := space.Random(rng2)
		cfg2 = l2.Decide(policy.Observation{Tick: tick, Speedups: syntheticSpeedups(space, kinds, probe)}, probe)
	}
	if !cfg.Equal(cfg2) {
		t.Fatal("LFOC allocation not deterministic across identical runs")
	}
}

func TestApportion(t *testing.T) {
	totals := []int{0, 0, 0}
	apportion(totals, []float64{1, 1, 1}, 3, 7)
	if totals[0]+totals[1]+totals[2] != 7 {
		t.Fatalf("apportion lost units: %v", totals)
	}
	// Equal weights, 7 units: largest-remainder gives 3/2/2 (ties to the
	// lower index).
	if totals[0] != 3 || totals[1] != 2 || totals[2] != 2 {
		t.Fatalf("apportion = %v, want [3 2 2]", totals)
	}
	totals = []int{0, 0}
	apportion(totals, []float64{0, 0}, 0, 5)
	if totals[0] != 5 || totals[1] != 0 {
		t.Fatalf("degenerate apportion = %v, want [5 0]", totals)
	}
}
