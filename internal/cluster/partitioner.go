package cluster

import (
	"fmt"

	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
)

// Options configures a Partitioner.
type Options struct {
	// K is the maximum cluster count (required ≥ 1). With K ≥ jobs the
	// partitioner runs the inner policy over the unmodified job space —
	// bit-identical draws, configurations, and plans.
	K int
	// Classifier tunes the online classifier (K is taken from above).
	Classifier ClassifierOptions
	// Inner builds the search policy over a given space (required). It
	// is invoked on the reduced cluster space at construction and again
	// after every membership migration — the migration-as-churn
	// contract: a re-dimensioned space means a rebuilt policy, exactly
	// as control.Loop rebuilds after job churn.
	Inner func(space *resource.Space) (policy.Policy, error)
	// Grouper, when non-nil, is notified of every grouping (the platform
	// capability that maps clusters onto CLOS control groups). Platforms
	// without the capability simply pass nil and the clustering stays a
	// pure search-space reduction.
	Grouper rdt.Grouper
	// Name overrides the policy name (default "satori-clustered").
	Name string
}

// Partitioner is the cluster indirection as a policy.Policy over the JOB
// space: it classifies jobs online, lets an inner search policy (the
// SATORI BO engine, or any other) decide over the reduced cluster space,
// and expands cluster decisions back to per-job configurations. The
// control loop above it needs no changes — it keeps speaking job-level
// configurations — while the search below it sees K coordinates per
// resource instead of M, the LFOC search-speed win.
type Partitioner struct {
	name     string
	jobSpace *resource.Space
	cls      *Classifier
	inner    policy.Policy
	opt      Options

	grouping     *resource.Grouping
	clusterSpace *resource.Space

	// Pooled per-tick buffers (cluster-level observation and configs).
	cIPS, cIso, cSpd []float64
	curCluster       resource.Config
	nextJob          resource.Config

	migrations    int
	rebuildFailed int
}

// New builds the partitioner over the job space. The initial grouping is
// the classifier's deterministic bootstrap (identity when K ≥ jobs,
// round-robin otherwise); the platform's Grouper capability, when wired,
// is told about it immediately so the control-group layout matches from
// the first apply.
func New(jobSpace *resource.Space, opt Options) (*Partitioner, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("cluster: Options.K must be ≥ 1, got %d", opt.K)
	}
	if opt.Inner == nil {
		return nil, fmt.Errorf("cluster: Options.Inner is required")
	}
	name := opt.Name
	if name == "" {
		name = "satori-clustered"
	}
	copt := opt.Classifier
	copt.K = opt.K
	p := &Partitioner{
		name:     name,
		jobSpace: jobSpace,
		cls:      NewClassifier(jobSpace, copt),
		opt:      opt,
	}
	if err := p.install(p.cls.Grouping()); err != nil {
		return nil, err
	}
	return p, nil
}

// install (re)dimensions the partitioner on a grouping: build the reduced
// cluster space, rebuild the inner policy over it, resize the pooled
// buffers, and notify the platform's Grouper capability.
func (p *Partitioner) install(g *resource.Grouping) error {
	cs, err := g.ClusterSpace(p.jobSpace)
	if err != nil {
		return err
	}
	inner, err := p.opt.Inner(cs)
	if err != nil {
		return err
	}
	if p.opt.Grouper != nil {
		if err := p.opt.Grouper.SetGrouping(g); err != nil {
			return err
		}
	}
	p.grouping = g
	p.clusterSpace = cs
	p.inner = inner
	k := g.Clusters
	p.cIPS = make([]float64, k)
	p.cIso = make([]float64, k)
	p.cSpd = make([]float64, k)
	p.curCluster = cs.NewConfig()
	p.nextJob = p.jobSpace.NewConfig()
	return nil
}

// Name implements policy.Policy.
func (p *Partitioner) Name() string { return p.name }

// Grouping returns the active job→cluster map.
func (p *Partitioner) Grouping() *resource.Grouping { return p.grouping }

// Regroups reports committed membership migrations — the optional
// policy capability control.Loop surfaces in its Summary (and treats as
// a stability boundary, like churn).
func (p *Partitioner) Regroups() int { return p.migrations }

// Inner returns the active inner policy (e.g. to read SATORI's weights).
func (p *Partitioner) Inner() policy.Policy { return p.inner }

// Decide implements policy.Policy: feed the classifier, absorb any
// membership migration (rebuild the inner policy on the re-dimensioned
// cluster space — churn semantics), aggregate the job-level observation
// into cluster coordinates, let the inner policy search the cluster
// space, and expand its decision back to a per-job configuration.
func (p *Partitioner) Decide(obs policy.Observation, current resource.Config) resource.Config {
	if p.cls.Observe(obs.Speedups, current) {
		g := p.cls.Grouping()
		if err := p.install(g); err != nil {
			// A failed rebuild keeps the previous grouping running — the
			// same hold-last-good posture the control loop takes on a
			// failed churn rebuild. The failure is counted, not hidden.
			p.rebuildFailed++
		} else {
			p.migrations++
		}
	}
	if p.grouping.IsSingleton() {
		// K ≥ jobs: the reduced space IS the job space; hand the
		// observation through untouched so the inner policy's draw
		// sequence is bit-identical to running it directly.
		return p.inner.Decide(obs, current)
	}
	// Aggregate per-job signals per cluster: IPS and isolated baselines
	// sum (cluster throughput over cluster capacity), speedup is the
	// cluster-level ratio.
	for c := 0; c < p.grouping.Clusters; c++ {
		p.cIPS[c], p.cIso[c], p.cSpd[c] = 0, 0, 0
	}
	for j, c := range p.grouping.JobToCluster {
		if j < len(obs.IPS) {
			p.cIPS[c] += obs.IPS[j]
		}
		if j < len(obs.Isolated) {
			p.cIso[c] += obs.Isolated[j]
		}
	}
	for c := range p.cSpd {
		if p.cIso[c] > 0 {
			p.cSpd[c] = p.cIPS[c] / p.cIso[c]
		}
	}
	cObs := obs
	cObs.IPS = p.cIPS
	cObs.Isolated = p.cIso
	cObs.Speedups = p.cSpd
	p.grouping.AggregateInto(current, p.curCluster)
	next := p.inner.Decide(cObs, p.curCluster)
	if err := p.clusterSpace.Validate(next); err != nil {
		// A malformed inner decision cannot be expanded; hold the
		// current job-level partition (always a legal return).
		return current
	}
	p.grouping.ExpandInto(next, p.nextJob)
	return p.nextJob
}
