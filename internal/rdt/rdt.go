// Package rdt models the hardware control plane the paper drives on its
// Xeon testbed: Intel Cache Allocation Technology (CAT) way masks, Memory
// Bandwidth Allocation (MBA) throttle levels, taskset-style core affinity
// and a RAPL-style power cap. A resource.Config is compiled into a Plan —
// per-job class-of-service settings with the same constraints real
// hardware imposes (contiguous, non-overlapping CAT bitmasks; MBA percent
// steps; disjoint CPU sets) — so the simulator backend and the real
// resctrl backend are interchangeable behind one interface.
//
// The Platform interface is the control+monitor surface SATORI needs:
// apply a partition, sample per-job IPS at 10 Hz, re-measure isolated
// baselines, and resync compiled state after membership churn. Two
// backends implement it: SimPlatform on internal/sim, and
// ResctrlPlatform on the Linux resctrl filesystem layout (composing
// ResctrlWriter with a pluggable IPS Sampler). internal/control drives
// either through the identical Algorithm-1 tick loop.
package rdt

import (
	"fmt"
	"strings"

	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/slo"
)

// JobAllocation is the hardware view of one job's share under a Plan.
type JobAllocation struct {
	// Job is the job index (class of service).
	Job int
	// CPUSet lists the core IDs the job's threads are pinned to.
	CPUSet []int
	// CATMask is the contiguous LLC way bitmask (bit i = way i).
	CATMask uint64
	// MBAPercent is the memory-bandwidth throttle in percent, a
	// multiple of the MBA step.
	MBAPercent int
	// PowerShare is the fraction of the socket power budget (0 when
	// power is not partitioned).
	PowerShare float64
}

// Plan is a compiled resource partitioning: one JobAllocation per job.
type Plan struct {
	Jobs []JobAllocation
}

// Compile translates a validated configuration into hardware settings.
// Cores and LLC ways are handed out contiguously in job order, matching
// how CAT requires contiguous way masks and how affinity is set in
// practice to preserve locality.
func Compile(space *resource.Space, c resource.Config) (Plan, error) {
	if err := space.Validate(c); err != nil {
		return Plan{}, fmt.Errorf("rdt: cannot compile invalid config: %w", err)
	}
	idx := func(kind resource.Kind) int {
		for i, r := range space.Resources {
			if r.Kind == kind {
				return i
			}
		}
		return -1
	}
	iCores, iWays, iBW, iPower := idx(resource.Cores), idx(resource.LLCWays), idx(resource.MemBW), idx(resource.Power)
	plan := Plan{Jobs: make([]JobAllocation, space.Jobs)}
	coreCursor, wayCursor := 0, 0
	for j := 0; j < space.Jobs; j++ {
		ja := JobAllocation{Job: j}
		if iCores >= 0 {
			n := c.Alloc[iCores][j]
			for i := 0; i < n; i++ {
				ja.CPUSet = append(ja.CPUSet, coreCursor)
				coreCursor++
			}
		}
		if iWays >= 0 {
			n := c.Alloc[iWays][j]
			if wayCursor+n > 64 {
				return Plan{}, fmt.Errorf("rdt: way mask exceeds 64 bits")
			}
			ja.CATMask = ((uint64(1) << n) - 1) << wayCursor
			wayCursor += n
		}
		if iBW >= 0 {
			units := space.Resources[iBW].Units
			// MBA exposes percent throttles in steps of
			// 100/units (10% on the paper's platform).
			ja.MBAPercent = c.Alloc[iBW][j] * 100 / units
		}
		if iPower >= 0 {
			ja.PowerShare = float64(c.Alloc[iPower][j]) / float64(space.Resources[iPower].Units)
		}
		plan.Jobs[j] = ja
	}
	return plan, nil
}

// String renders the plan like a resctrl schemata dump, for logs.
func (p Plan) String() string {
	var b strings.Builder
	for _, j := range p.Jobs {
		fmt.Fprintf(&b, "COS%d: cpus=%v L3=0x%x MB=%d%%", j.Job, j.CPUSet, j.CATMask, j.MBAPercent)
		if j.PowerShare > 0 {
			fmt.Fprintf(&b, " PL=%.0f%%", j.PowerShare*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks the hardware invariants: disjoint CPU sets, disjoint
// contiguous CAT masks, and MBA percents that are positive multiples of
// the platform step.
func (p Plan) Validate() error {
	seenCPU := map[int]bool{}
	var maskUnion uint64
	for _, j := range p.Jobs {
		for _, cpu := range j.CPUSet {
			if seenCPU[cpu] {
				return fmt.Errorf("rdt: cpu %d assigned to multiple jobs", cpu)
			}
			seenCPU[cpu] = true
		}
		if j.CATMask == 0 {
			return fmt.Errorf("rdt: job %d has empty CAT mask", j.Job)
		}
		if j.CATMask&maskUnion != 0 {
			return fmt.Errorf("rdt: job %d CAT mask overlaps another job", j.Job)
		}
		maskUnion |= j.CATMask
		if !contiguous(j.CATMask) {
			return fmt.Errorf("rdt: job %d CAT mask %#x not contiguous", j.Job, j.CATMask)
		}
		if j.MBAPercent <= 0 || j.MBAPercent > 100 {
			return fmt.Errorf("rdt: job %d MBA percent %d out of range", j.Job, j.MBAPercent)
		}
	}
	return nil
}

// contiguous reports whether the set bits of m form one run.
func contiguous(m uint64) bool {
	if m == 0 {
		return false
	}
	// Strip trailing zeros, then adding 1 to a run of ones yields a
	// power of two.
	for m&1 == 0 {
		m >>= 1
	}
	return m&(m+1) == 0
}

// ConfigShapeError is the typed rejection every Platform backend uses for
// a configuration shaped for a job set that no longer exists (stale after
// membership churn). Shared with internal/sim via internal/resource.
type ConfigShapeError = resource.ConfigShapeError

// Platform is the complete control and monitoring surface SATORI and all
// baseline policies run against — apply partitions, sample per-job IPS
// each 100 ms interval, and (re)measure isolated baselines. It is the
// only contract internal/control's tick loop depends on, so backends are
// interchangeable at every layer: SimPlatform drives the analytical
// simulator, ResctrlPlatform drives the Linux resctrl filesystem layout.
//
// Contract notes:
//   - Apply must reject a configuration whose dimensions do not match the
//     live job set with a *ConfigShapeError (wrapped or direct) rather
//     than silently misallocating.
//   - Sample and MeasureIsolated return one value per job, in job order.
type Platform interface {
	// Space describes the partitionable resources and job count.
	Space() *resource.Space
	// Apply installs a resource partitioning configuration.
	Apply(resource.Config) error
	// Current returns the active configuration.
	Current() resource.Config
	// Sample advances one 100 ms monitoring interval and returns the
	// observed per-job IPS.
	Sample() ([]float64, error)
	// MeasureIsolated returns fresh isolated-execution IPS baselines
	// for every job (Algorithm 1 lines 3 and 13).
	MeasureIsolated() ([]float64, error)
	// JobNames labels the co-located jobs.
	JobNames() []string
	// Resync recompiles backend state (the hardware plan, control-group
	// files) from the platform's live space and current configuration.
	// It must be called after anything re-dimensions the space behind
	// the platform's back; it is idempotent and draws no randomness.
	Resync() error
}

// Churner is the optional membership-churn capability of a Platform:
// admit a job, evict a job, or swap the workload in a slot. Backends
// that cannot change their job set at runtime (e.g. a trace-driven
// resctrl deployment) simply do not implement it; internal/control
// surfaces that as a typed "churn unsupported" error. Implementations
// must leave the platform fully resynced (plan recompiled, partition
// re-split where the space changed dimension) before returning.
type Churner interface {
	// AddJob admits a new job running profile p, growing the space by
	// one slot and resetting the partition to the new equal split.
	AddJob(p *sim.Profile) error
	// RemoveJob evicts the job in slot j; jobs above shift down one
	// slot. The last job cannot be removed.
	RemoveJob(j int) error
	// ReplaceJob swaps the workload in slot j without re-dimensioning
	// the space or touching the partition.
	ReplaceJob(j int, p *sim.Profile) error
	// NumJobs returns the live job count.
	NumJobs() int
}

// FastSampler is the optional sampled-simulation capability of a
// Platform: SampleFast advances one monitoring interval by extrapolating
// from cached phase-steady rates instead of a detailed evaluation. ok is
// false — with no side effects — when no valid extrapolation state exists
// (configuration change, membership churn, or an imminent phase boundary
// since the last detailed sample); the caller must then fall back to
// Sample. Backends without a cheap extrapolation path (e.g. resctrl,
// where sampling IS the hardware measurement) simply do not implement it.
type FastSampler interface {
	SampleFast() ([]float64, bool)
	// FastHorizon returns a conservative count of consecutive future
	// SampleFast calls guaranteed to succeed from the current state — the
	// lookahead event-driven callers use to defer whole runs of ticks. 0
	// means the next interval needs a detailed Sample. Overrunning the
	// horizon is safe: SampleFast refuses rather than diverging.
	FastHorizon() int
}

// SLOProvider is the optional latency-critical capability of a Platform:
// SLOSpecs exposes the per-slot SLO specs of the live job set, nil
// entries marking batch jobs. The control loop consults it once per
// (re)build — a platform whose specs are all nil (or that does not
// implement the interface at all) gets no SLO tracking and behaves
// bit-identically to a pre-SLO loop. After membership churn the slice
// must describe the post-churn job set.
type SLOProvider interface {
	SLOSpecs() []*slo.Spec
}

// BatchSampler is the optional batched extension of FastSampler: SkipFast
// advances n intervals in one coarse O(jobs) jump instead of n
// extrapolated per-interval samples. The jump is deterministic (a pure
// function of the pre-skip state) but trades per-interval noise fidelity
// for speed, so callers that need the lockstep-identical trajectory must
// replay interval-by-interval via SampleFast instead. SkipFast returns
// false — with no side effects — when n exceeds the backend's FastHorizon.
type BatchSampler interface {
	FastSampler
	SkipFast(n int) bool
}

// SimPlatform adapts a *sim.Simulator to the Platform interface and keeps
// the compiled hardware Plan in sync, exercising the same compile path a
// real backend would use.
type SimPlatform struct {
	sim  *sim.Simulator
	plan Plan

	// grouping, when non-nil, maps jobs many-to-one onto clusters and the
	// compiled plan holds one entry per CLUSTER (rdt.Grouper capability).
	grouping *resource.Grouping
	// maxCLOS is the simulated hardware class-of-service budget
	// (0 = unlimited, the default — existing behavior is untouched).
	maxCLOS int
}

// NewSimPlatform wraps s. The initial equal-split plan is compiled
// immediately.
func NewSimPlatform(s *sim.Simulator) (*SimPlatform, error) {
	p := &SimPlatform{sim: s}
	plan, err := Compile(s.Space(), s.Current())
	if err != nil {
		return nil, err
	}
	p.plan = plan
	return p, nil
}

// Space implements Platform.
func (p *SimPlatform) Space() *resource.Space { return p.sim.Space() }

// Apply implements Platform: it compiles and validates the hardware plan,
// then installs the configuration in the simulator. A configuration shaped
// for a different job set (stale after AddJob/RemoveJob churn) surfaces as
// the simulator's typed *sim.ConfigShapeError before compilation.
func (p *SimPlatform) Apply(c resource.Config) error {
	if err := p.sim.CheckShape(c); err != nil {
		return err
	}
	if p.sim.CurrentEquals(c) {
		// Re-applying the installed partition: nothing to compile or
		// install (the resctrl backend elides the same way, as identical
		// MSR writes would be on hardware).
		return nil
	}
	plan, err := p.compile(c)
	if err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	if err := p.sim.Apply(c); err != nil {
		return err
	}
	p.plan = plan
	return nil
}

// Current implements Platform.
func (p *SimPlatform) Current() resource.Config { return p.sim.Current() }

// Plan returns the most recently compiled hardware plan (one entry per
// job, or per cluster when a grouping is installed).
func (p *SimPlatform) Plan() Plan { return p.plan }

// compile builds the hardware plan for a configuration, honoring the
// installed grouping and the simulated CLOS budget.
func (p *SimPlatform) compile(c resource.Config) (Plan, error) {
	if err := checkCLOS(planGroups(p.sim.Space().Jobs, p.grouping), p.maxCLOS); err != nil {
		return Plan{}, err
	}
	return CompileGrouped(p.sim.Space(), c, p.grouping)
}

// SetGrouping implements Grouper: install (or with nil remove) the
// job→cluster map and recompile the plan as one control group per
// cluster. The grouping must span the live job set.
func (p *SimPlatform) SetGrouping(g *resource.Grouping) error {
	if g != nil && g.Jobs() != p.sim.Space().Jobs {
		return fmt.Errorf("rdt: grouping spans %d jobs, platform has %d", g.Jobs(), p.sim.Space().Jobs)
	}
	prev := p.grouping
	p.grouping = g
	if err := p.Resync(); err != nil {
		p.grouping = prev
		return err
	}
	return nil
}

// Grouping implements Grouper.
func (p *SimPlatform) Grouping() *resource.Grouping { return p.grouping }

// SetMaxCLOS sets the simulated class-of-service budget (the number of
// usable control groups; 0 = unlimited). A plan needing more groups is
// rejected with a *CLOSLimitError — letting tests and experiments model
// the ~16-CLOS wall of real resctrl hardware.
func (p *SimPlatform) SetMaxCLOS(n int) error {
	prev := p.maxCLOS
	p.maxCLOS = n
	if err := p.Resync(); err != nil {
		p.maxCLOS = prev
		return err
	}
	return nil
}

// MaxCLOS implements CLOSLimiter.
func (p *SimPlatform) MaxCLOS() int { return p.maxCLOS }

// Sample implements Platform.
func (p *SimPlatform) Sample() ([]float64, error) {
	return p.sim.Step().IPS, nil
}

// SampleFast implements FastSampler via the simulator's extrapolated
// step. The returned IPS is bit-identical to what a detailed Sample
// would have observed (see sim.StepSampled).
func (p *SimPlatform) SampleFast() ([]float64, bool) {
	sm, ok := p.sim.StepSampled()
	if !ok {
		return nil, false
	}
	return sm.IPS, true
}

// FastHorizon implements FastSampler via the simulator's phase-boundary
// lookahead (see sim.SampledHorizon).
func (p *SimPlatform) FastHorizon() int { return p.sim.SampledHorizon() }

// SkipFast implements BatchSampler via the simulator's coarse batched
// advance.
func (p *SimPlatform) SkipFast(n int) bool { return p.sim.SkipSampled(n) }

// SLOSpecs implements SLOProvider via the simulator's live job set.
func (p *SimPlatform) SLOSpecs() []*slo.Spec { return p.sim.SLOSpecs() }

// MeasureIsolated implements Platform.
func (p *SimPlatform) MeasureIsolated() ([]float64, error) {
	return p.sim.MeasureIsolated(), nil
}

// JobNames implements Platform.
func (p *SimPlatform) JobNames() []string {
	out := make([]string, p.sim.NumJobs())
	for j := range out {
		out[j] = p.sim.JobName(j)
	}
	return out
}

// Simulator exposes the wrapped simulator for oracle-style callers that
// need noise-free model access.
func (p *SimPlatform) Simulator() *sim.Simulator { return p.sim }

// Resync implements Platform: it recompiles the hardware plan from the
// simulator's live space and current configuration. It must be called
// after anything re-dimensions the space behind the platform's back —
// the cached plan would describe a partition of a job set that no longer
// exists. The Churner methods below resync automatically.
func (p *SimPlatform) Resync() error {
	plan, err := p.compile(p.sim.Current())
	if err != nil {
		return err
	}
	p.plan = plan
	return nil
}

// rechurnGrouping replaces a stale grouping after membership churn: the
// installed map spans the pre-churn job set, so it is swapped for the
// deterministic round-robin bootstrap at the same cluster count (clamped
// to the new job count) — staying within any CLOS budget until the
// rebuilt policy installs its own fresh grouping (the Grouper contract).
// Without a grouping nothing changes.
func (p *SimPlatform) rechurnGrouping() {
	if p.grouping == nil {
		return
	}
	p.grouping = resource.RoundRobinGrouping(p.sim.NumJobs(), p.grouping.Clusters)
}

// AddJob implements Churner: it admits a job into the simulator (which
// re-splits the partition on the grown space) and resyncs the plan.
func (p *SimPlatform) AddJob(profile *sim.Profile) error {
	if err := p.sim.AddJob(profile); err != nil {
		return err
	}
	p.rechurnGrouping()
	return p.Resync()
}

// RemoveJob implements Churner: it evicts the job in slot j (the
// simulator re-splits the shrunken space) and resyncs the plan.
func (p *SimPlatform) RemoveJob(j int) error {
	if err := p.sim.RemoveJob(j); err != nil {
		return err
	}
	p.rechurnGrouping()
	return p.Resync()
}

// ReplaceJob implements Churner: the space and partition are untouched,
// so no resync is needed.
func (p *SimPlatform) ReplaceJob(j int, profile *sim.Profile) error {
	return p.sim.ReplaceJob(j, profile)
}

// NumJobs implements Churner.
func (p *SimPlatform) NumJobs() int { return p.sim.NumJobs() }
