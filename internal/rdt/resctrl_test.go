package rdt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"satori/internal/sim"
	"satori/internal/stats"
)

func TestFormatCPUList(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{0}, "0"},
		{[]int{0, 1, 2}, "0-2"},
		{[]int{0, 2, 3, 5}, "0,2-3,5"},
		{[]int{5, 3, 2, 0}, "0,2-3,5"}, // unsorted input
		{[]int{1, 1, 2}, "1-2"},        // duplicates collapse
		{[]int{7, 8, 9, 11}, "7-9,11"},
	}
	for _, c := range cases {
		if got := FormatCPUList(c.in); got != c.want {
			t.Errorf("FormatCPUList(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseCPUList(t *testing.T) {
	good := map[string][]int{
		"":        nil,
		"0":       {0},
		"0-2":     {0, 1, 2},
		"0,2-3,5": {0, 2, 3, 5},
		" 1 , 4 ": {1, 4},
	}
	for in, want := range good {
		got, err := ParseCPUList(in)
		if err != nil {
			t.Errorf("ParseCPUList(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("ParseCPUList(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
	for _, bad := range []string{"x", "3-1", "1-", "-2", "1,,2x"} {
		if _, err := ParseCPUList(bad); err == nil {
			t.Errorf("ParseCPUList(%q) accepted", bad)
		}
	}
}

func TestCPUListRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(12)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		seen := map[int]bool{}
		var cpus []int
		for len(cpus) < n {
			c := rng.Intn(32)
			if !seen[c] {
				seen[c] = true
				cpus = append(cpus, c)
			}
		}
		back, err := ParseCPUList(FormatCPUList(cpus))
		if err != nil {
			t.Fatalf("round trip failed for %v: %v", cpus, err)
		}
		if len(back) != len(cpus) {
			t.Fatalf("round trip of %v lost cpus: %v", cpus, back)
		}
		for _, c := range back {
			if !seen[c] {
				t.Fatalf("round trip invented cpu %d from %v", c, cpus)
			}
		}
	}
}

func TestSchemataRoundTrip(t *testing.T) {
	ja := JobAllocation{Job: 2, CATMask: 0b0111000, MBAPercent: 30}
	s := FormatSchemata(ja, 0)
	if !strings.Contains(s, "L3:0=38") || !strings.Contains(s, "MB:0=30") {
		t.Errorf("schemata rendering: %q", s)
	}
	back, err := ParseSchemata(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.CATMask != ja.CATMask || back.MBAPercent != ja.MBAPercent {
		t.Errorf("round trip = %+v, want %+v", back, ja)
	}
}

func TestParseSchemataErrors(t *testing.T) {
	for name, body := range map[string]string{
		"empty":         "",
		"no assignment": "L3:0",
		"no colon":      "L3=7",
		"bad mask":      "L3:0=zz\nMB:0=20",
		"bad percent":   "L3:0=7\nMB:0=x",
		"unknown kind":  "L2:0=7\nMB:0=20",
		"missing MB":    "L3:0=7",
	} {
		if _, err := ParseSchemata(body); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestResctrlWriterApplyAndReadBack(t *testing.T) {
	space, err := sim.DefaultMachine().Space(3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(space, space.EqualSplit())
	if err != nil {
		t.Fatal(err)
	}
	w := ResctrlWriter{Root: t.TempDir()}
	if err := w.Apply(plan); err != nil {
		t.Fatal(err)
	}
	// Directory layout: one group per job with the two control files.
	for j := 0; j < 3; j++ {
		dir := filepath.Join(w.Root, "satori-job0")
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("missing group dir: %v", err)
		}
		got, err := w.ReadGroup(j)
		if err != nil {
			t.Fatal(err)
		}
		want := plan.Jobs[j]
		if got.CATMask != want.CATMask || got.MBAPercent != want.MBAPercent {
			t.Errorf("job %d read back %+v, want %+v", j, got, want)
		}
		if len(got.CPUSet) != len(want.CPUSet) {
			t.Errorf("job %d cpus %v, want %v", j, got.CPUSet, want.CPUSet)
		}
	}
	// Re-apply with a different partition: groups are rewritten.
	moved, ok := space.Move(space.EqualSplit(), 1, 0, 1)
	if !ok {
		t.Fatal("move failed")
	}
	plan2, err := Compile(space, moved)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(plan2); err != nil {
		t.Fatal(err)
	}
	got, err := w.ReadGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.CATMask != plan2.Jobs[1].CATMask {
		t.Error("re-apply did not rewrite schemata")
	}
}

func TestResctrlWriterValidation(t *testing.T) {
	if err := (ResctrlWriter{}).Apply(Plan{}); err == nil {
		t.Error("empty root accepted")
	}
	bad := Plan{Jobs: []JobAllocation{{Job: 0, CATMask: 0, MBAPercent: 50}}}
	if err := (ResctrlWriter{Root: t.TempDir()}).Apply(bad); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestResctrlWriterCustomPrefix(t *testing.T) {
	space, err := sim.DefaultMachine().Space(2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(space, space.EqualSplit())
	if err != nil {
		t.Fatal(err)
	}
	w := ResctrlWriter{Root: t.TempDir(), GroupPrefix: "cos-"}
	if err := w.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(w.Root, "cos-1", "schemata")); err != nil {
		t.Errorf("custom prefix not honored: %v", err)
	}
}
