package rdt

import (
	"fmt"

	"satori/internal/resource"
	"satori/internal/sim"
)

// ResctrlPlatform is the Platform backend for a real Linux resctrl
// deployment: every accepted configuration is compiled to a Plan and
// materialized in the resctrl filesystem layout by a ResctrlWriter,
// while per-job IPS comes from a pluggable Sampler (a perf-counter
// reader on live hardware, a TraceSampler for replays and hermetic
// tests). Pointing the writer's Root at /sys/fs/resctrl partitions a
// CAT/MBA machine for real; pointing it at a scratch directory runs the
// identical code path without privileges — which is how the end-to-end
// tests and the CI smoke drive the full Algorithm-1 loop.
//
// ResctrlPlatform intentionally does not implement Churner: its job set
// is fixed at construction (a trace has a fixed width, and live jobs are
// pinned to control groups out of band). internal/control surfaces
// churn attempts as a typed "churn unsupported" error.
type ResctrlPlatform struct {
	space   *resource.Space
	names   []string
	writer  ResctrlWriter
	sampler Sampler
	current resource.Config
	plan    Plan

	// grouping, when non-nil, maps jobs many-to-one onto clusters and
	// the tree holds one control group per CLUSTER (rdt.Grouper).
	grouping *resource.Grouping
	// maxCLOS is the class-of-service budget detected from
	// info/L3/num_closids at construction (0 = unlimited).
	maxCLOS int
}

// NewResctrlPlatform builds the platform for len(jobNames) jobs on the
// given machine shape, writes the initial equal-split partition to the
// resctrl tree, and wires the sampler. The writer's Root must be set.
// Construction fails with a typed *CLOSLimitError when the job count
// exceeds the tree's class-of-service budget (info/L3/num_closids) —
// use NewResctrlPlatformGrouped to fit more jobs through clustering.
func NewResctrlPlatform(spec sim.MachineSpec, jobNames []string, w ResctrlWriter, s Sampler) (*ResctrlPlatform, error) {
	return NewResctrlPlatformGrouped(spec, jobNames, w, s, nil)
}

// NewResctrlPlatformGrouped is NewResctrlPlatform with an initial
// job→cluster grouping installed before the first write, so a job set
// larger than the CLOS budget passes preflight as long as the grouping's
// cluster count fits. Policies that migrate memberships online
// (satori-clustered, lfoc) update the grouping through the Grouper
// capability; the deterministic bootstrap to pass here is
// resource.RoundRobinGrouping(len(jobNames), k). A nil grouping is
// plain per-job operation.
func NewResctrlPlatformGrouped(spec sim.MachineSpec, jobNames []string, w ResctrlWriter, s Sampler, g *resource.Grouping) (*ResctrlPlatform, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(jobNames) == 0 {
		return nil, fmt.Errorf("rdt: ResctrlPlatform needs at least one job")
	}
	if w.Root == "" {
		return nil, fmt.Errorf("rdt: ResctrlPlatform needs ResctrlWriter.Root (the resctrl mount point or a scratch directory)")
	}
	if s == nil {
		return nil, fmt.Errorf("rdt: ResctrlPlatform needs a Sampler")
	}
	if g != nil && g.Jobs() != len(jobNames) {
		return nil, fmt.Errorf("rdt: grouping spans %d jobs, platform has %d", g.Jobs(), len(jobNames))
	}
	space, err := spec.Space(len(jobNames))
	if err != nil {
		return nil, err
	}
	limit, err := w.MaxCLOS()
	if err != nil {
		return nil, err
	}
	p := &ResctrlPlatform{
		space:    space,
		names:    append([]string(nil), jobNames...),
		writer:   w,
		sampler:  s,
		current:  space.EqualSplit(),
		grouping: g,
		maxCLOS:  limit,
	}
	if err := p.Resync(); err != nil {
		return nil, err
	}
	return p, nil
}

// Space implements Platform.
func (p *ResctrlPlatform) Space() *resource.Space { return p.space }

// Apply implements Platform: shape-check, compile, validate, then write
// one control group per job into the resctrl tree. A configuration
// shaped for a different job set is rejected with the typed
// *ConfigShapeError; rewrites are skipped when the configuration is
// unchanged, matching how identical MSR writes are elided on hardware.
func (p *ResctrlPlatform) Apply(c resource.Config) error {
	if err := resource.CheckShape(p.space, c); err != nil {
		return err
	}
	if p.current.Equal(c) {
		return nil
	}
	plan, err := CompileGrouped(p.space, c, p.grouping)
	if err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	if err := p.writer.Apply(plan); err != nil {
		return err
	}
	p.current = c.Clone()
	p.plan = plan
	return nil
}

// Current implements Platform.
func (p *ResctrlPlatform) Current() resource.Config { return p.current.Clone() }

// Plan returns the most recently compiled hardware plan.
func (p *ResctrlPlatform) Plan() Plan { return p.plan }

// Writer returns the underlying resctrl writer (e.g. for ReadGroup
// round-trip verification of a running deployment).
func (p *ResctrlPlatform) Writer() ResctrlWriter { return p.writer }

// Sample implements Platform: one 100 ms interval of per-job IPS from
// the sampler, validated against the job count.
func (p *ResctrlPlatform) Sample() ([]float64, error) {
	ips, err := p.sampler.Sample(p.plan)
	if err != nil {
		return nil, fmt.Errorf("rdt: sampling IPS: %w", err)
	}
	if len(ips) != p.space.Jobs {
		return nil, fmt.Errorf("rdt: sampler returned %d jobs, platform has %d", len(ips), p.space.Jobs)
	}
	return ips, nil
}

// MeasureIsolated implements Platform.
func (p *ResctrlPlatform) MeasureIsolated() ([]float64, error) {
	iso, err := p.sampler.SampleIsolated()
	if err != nil {
		return nil, fmt.Errorf("rdt: measuring isolated baselines: %w", err)
	}
	if len(iso) != p.space.Jobs {
		return nil, fmt.Errorf("rdt: sampler returned %d isolated baselines, platform has %d", len(iso), p.space.Jobs)
	}
	return iso, nil
}

// JobNames implements Platform.
func (p *ResctrlPlatform) JobNames() []string { return append([]string(nil), p.names...) }

// SetGrouping implements Grouper: install (or with nil remove) the
// job→cluster map and rewrite the tree as one control group per cluster
// (stale higher-numbered groups are pruned by the writer).
func (p *ResctrlPlatform) SetGrouping(g *resource.Grouping) error {
	if g != nil && g.Jobs() != p.space.Jobs {
		return fmt.Errorf("rdt: grouping spans %d jobs, platform has %d", g.Jobs(), p.space.Jobs)
	}
	prev := p.grouping
	p.grouping = g
	if err := p.Resync(); err != nil {
		p.grouping = prev
		return err
	}
	return nil
}

// Grouping implements Grouper.
func (p *ResctrlPlatform) Grouping() *resource.Grouping { return p.grouping }

// MaxCLOS implements CLOSLimiter: the class-of-service budget detected
// from info/L3/num_closids at construction (0 = unlimited).
func (p *ResctrlPlatform) MaxCLOS() int { return p.maxCLOS }

// Resync implements Platform: recompile the plan from the live space and
// current configuration and rewrite every control group.
func (p *ResctrlPlatform) Resync() error {
	plan, err := CompileGrouped(p.space, p.current, p.grouping)
	if err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	if err := p.writer.Apply(plan); err != nil {
		return err
	}
	p.plan = plan
	return nil
}
