package rdt

import (
	"fmt"

	"satori/internal/resource"
	"satori/internal/sim"
)

// ResctrlPlatform is the Platform backend for a real Linux resctrl
// deployment: every accepted configuration is compiled to a Plan and
// materialized in the resctrl filesystem layout by a ResctrlWriter,
// while per-job IPS comes from a pluggable Sampler (a perf-counter
// reader on live hardware, a TraceSampler for replays and hermetic
// tests). Pointing the writer's Root at /sys/fs/resctrl partitions a
// CAT/MBA machine for real; pointing it at a scratch directory runs the
// identical code path without privileges — which is how the end-to-end
// tests and the CI smoke drive the full Algorithm-1 loop.
//
// ResctrlPlatform intentionally does not implement Churner: its job set
// is fixed at construction (a trace has a fixed width, and live jobs are
// pinned to control groups out of band). internal/control surfaces
// churn attempts as a typed "churn unsupported" error.
type ResctrlPlatform struct {
	space   *resource.Space
	names   []string
	writer  ResctrlWriter
	sampler Sampler
	current resource.Config
	plan    Plan
}

// NewResctrlPlatform builds the platform for len(jobNames) jobs on the
// given machine shape, writes the initial equal-split partition to the
// resctrl tree, and wires the sampler. The writer's Root must be set.
func NewResctrlPlatform(spec sim.MachineSpec, jobNames []string, w ResctrlWriter, s Sampler) (*ResctrlPlatform, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(jobNames) == 0 {
		return nil, fmt.Errorf("rdt: ResctrlPlatform needs at least one job")
	}
	if w.Root == "" {
		return nil, fmt.Errorf("rdt: ResctrlPlatform needs ResctrlWriter.Root (the resctrl mount point or a scratch directory)")
	}
	if s == nil {
		return nil, fmt.Errorf("rdt: ResctrlPlatform needs a Sampler")
	}
	space, err := spec.Space(len(jobNames))
	if err != nil {
		return nil, err
	}
	p := &ResctrlPlatform{
		space:   space,
		names:   append([]string(nil), jobNames...),
		writer:  w,
		sampler: s,
		current: space.EqualSplit(),
	}
	if err := p.Resync(); err != nil {
		return nil, err
	}
	return p, nil
}

// Space implements Platform.
func (p *ResctrlPlatform) Space() *resource.Space { return p.space }

// Apply implements Platform: shape-check, compile, validate, then write
// one control group per job into the resctrl tree. A configuration
// shaped for a different job set is rejected with the typed
// *ConfigShapeError; rewrites are skipped when the configuration is
// unchanged, matching how identical MSR writes are elided on hardware.
func (p *ResctrlPlatform) Apply(c resource.Config) error {
	if err := resource.CheckShape(p.space, c); err != nil {
		return err
	}
	if p.current.Equal(c) {
		return nil
	}
	plan, err := Compile(p.space, c)
	if err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	if err := p.writer.Apply(plan); err != nil {
		return err
	}
	p.current = c.Clone()
	p.plan = plan
	return nil
}

// Current implements Platform.
func (p *ResctrlPlatform) Current() resource.Config { return p.current.Clone() }

// Plan returns the most recently compiled hardware plan.
func (p *ResctrlPlatform) Plan() Plan { return p.plan }

// Writer returns the underlying resctrl writer (e.g. for ReadGroup
// round-trip verification of a running deployment).
func (p *ResctrlPlatform) Writer() ResctrlWriter { return p.writer }

// Sample implements Platform: one 100 ms interval of per-job IPS from
// the sampler, validated against the job count.
func (p *ResctrlPlatform) Sample() ([]float64, error) {
	ips, err := p.sampler.Sample(p.plan)
	if err != nil {
		return nil, fmt.Errorf("rdt: sampling IPS: %w", err)
	}
	if len(ips) != p.space.Jobs {
		return nil, fmt.Errorf("rdt: sampler returned %d jobs, platform has %d", len(ips), p.space.Jobs)
	}
	return ips, nil
}

// MeasureIsolated implements Platform.
func (p *ResctrlPlatform) MeasureIsolated() ([]float64, error) {
	iso, err := p.sampler.SampleIsolated()
	if err != nil {
		return nil, fmt.Errorf("rdt: measuring isolated baselines: %w", err)
	}
	if len(iso) != p.space.Jobs {
		return nil, fmt.Errorf("rdt: sampler returned %d isolated baselines, platform has %d", len(iso), p.space.Jobs)
	}
	return iso, nil
}

// JobNames implements Platform.
func (p *ResctrlPlatform) JobNames() []string { return append([]string(nil), p.names...) }

// Resync implements Platform: recompile the plan from the live space and
// current configuration and rewrite every control group.
func (p *ResctrlPlatform) Resync() error {
	plan, err := Compile(p.space, p.current)
	if err != nil {
		return err
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	if err := p.writer.Apply(plan); err != nil {
		return err
	}
	p.plan = plan
	return nil
}
