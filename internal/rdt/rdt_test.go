package rdt

import (
	"math/bits"
	"strings"
	"testing"

	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/workloads"
)

func paperSpace(t *testing.T) *resource.Space {
	t.Helper()
	space, err := sim.DefaultMachine().Space(5)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func TestCompileEqualSplit(t *testing.T) {
	space := paperSpace(t)
	plan, err := Compile(space, space.EqualSplit())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != 5 {
		t.Fatalf("plan has %d jobs", len(plan.Jobs))
	}
	// All 10 cores covered exactly once.
	total := 0
	for _, j := range plan.Jobs {
		total += len(j.CPUSet)
	}
	if total != 10 {
		t.Errorf("CPU sets cover %d cores, want 10", total)
	}
	// All 11 ways covered exactly once.
	var union uint64
	ways := 0
	for _, j := range plan.Jobs {
		union |= j.CATMask
		ways += bits.OnesCount64(j.CATMask)
	}
	if ways != 11 || union != (1<<11)-1 {
		t.Errorf("CAT masks cover %d ways, union %#x", ways, union)
	}
}

func TestCompileRejectsInvalidConfig(t *testing.T) {
	space := paperSpace(t)
	if _, err := Compile(space, space.NewConfig()); err == nil {
		t.Error("invalid config compiled")
	}
}

func TestCATMasksContiguousProperty(t *testing.T) {
	space := paperSpace(t)
	rng := stats.NewRNG(4)
	for i := 0; i < 500; i++ {
		c := space.Random(rng)
		plan, err := Compile(space, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("random config %s compiled to invalid plan: %v", c.Key(), err)
		}
		for j, ja := range plan.Jobs {
			if got := bits.OnesCount64(ja.CATMask); got != c.Alloc[1][j] {
				t.Fatalf("job %d mask has %d ways, config says %d", j, got, c.Alloc[1][j])
			}
			if len(ja.CPUSet) != c.Alloc[0][j] {
				t.Fatalf("job %d cpuset size %d, config says %d", j, len(ja.CPUSet), c.Alloc[0][j])
			}
		}
	}
}

func TestMBAPercentSteps(t *testing.T) {
	space := paperSpace(t)
	c := space.EqualSplit() // bw: 2,2,2,2,2 of 10 units -> 20% each
	plan, err := Compile(space, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range plan.Jobs {
		if j.MBAPercent != 20 {
			t.Errorf("job %d MBA = %d%%, want 20%%", j.Job, j.MBAPercent)
		}
	}
}

func TestPowerShares(t *testing.T) {
	spec := sim.DefaultMachine()
	spec.PowerUnits = 8
	space, err := spec.Space(2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(space, space.EqualSplit())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range plan.Jobs {
		if j.PowerShare != 0.5 {
			t.Errorf("job %d power share %g, want 0.5", j.Job, j.PowerShare)
		}
	}
	if !strings.Contains(plan.String(), "PL=50%") {
		t.Error("String omits power share")
	}
}

func TestContiguous(t *testing.T) {
	cases := []struct {
		m    uint64
		want bool
	}{
		{0, false}, {1, true}, {0b110, true}, {0b1010, false},
		{0b111000, true}, {1 << 63, true}, {0xFF, true}, {0x101, false},
	}
	for _, c := range cases {
		if got := contiguous(c.m); got != c.want {
			t.Errorf("contiguous(%#b) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestPlanValidateCatchesViolations(t *testing.T) {
	good := Plan{Jobs: []JobAllocation{
		{Job: 0, CPUSet: []int{0, 1}, CATMask: 0b0011, MBAPercent: 50},
		{Job: 1, CPUSet: []int{2, 3}, CATMask: 0b1100, MBAPercent: 50},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	overlapCPU := Plan{Jobs: []JobAllocation{
		{Job: 0, CPUSet: []int{0}, CATMask: 0b01, MBAPercent: 50},
		{Job: 1, CPUSet: []int{0}, CATMask: 0b10, MBAPercent: 50},
	}}
	if overlapCPU.Validate() == nil {
		t.Error("overlapping CPU sets accepted")
	}
	overlapMask := Plan{Jobs: []JobAllocation{
		{Job: 0, CPUSet: []int{0}, CATMask: 0b11, MBAPercent: 50},
		{Job: 1, CPUSet: []int{1}, CATMask: 0b10, MBAPercent: 50},
	}}
	if overlapMask.Validate() == nil {
		t.Error("overlapping CAT masks accepted")
	}
	gapMask := Plan{Jobs: []JobAllocation{
		{Job: 0, CPUSet: []int{0}, CATMask: 0b101, MBAPercent: 50},
	}}
	if gapMask.Validate() == nil {
		t.Error("non-contiguous CAT mask accepted")
	}
	emptyMask := Plan{Jobs: []JobAllocation{
		{Job: 0, CPUSet: []int{0}, CATMask: 0, MBAPercent: 50},
	}}
	if emptyMask.Validate() == nil {
		t.Error("empty CAT mask accepted")
	}
	badMBA := Plan{Jobs: []JobAllocation{
		{Job: 0, CPUSet: []int{0}, CATMask: 1, MBAPercent: 0},
	}}
	if badMBA.Validate() == nil {
		t.Error("zero MBA percent accepted")
	}
}

func newPlatform(t *testing.T) *SimPlatform {
	t.Helper()
	mixes, err := workloads.PaperMixes(workloads.SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSimPlatform(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimPlatformRoundTrip(t *testing.T) {
	p := newPlatform(t)
	space := p.Space()
	if space.Jobs != 5 {
		t.Fatalf("space jobs = %d", space.Jobs)
	}
	names := p.JobNames()
	if len(names) != 5 || names[0] != "blackscholes" {
		t.Errorf("JobNames = %v", names)
	}
	// Apply a new config; plan and simulator state must both update.
	cfg, ok := space.Move(space.EqualSplit(), 0, 0, 1)
	if !ok {
		t.Fatal("move failed")
	}
	if err := p.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if !p.Current().Equal(cfg) {
		t.Error("Current does not reflect Apply")
	}
	if got := len(p.Plan().Jobs[1].CPUSet); got != cfg.Alloc[0][1] {
		t.Errorf("plan cpuset size %d, config %d", got, cfg.Alloc[0][1])
	}
	// Invalid config must be rejected without touching state.
	if err := p.Apply(space.NewConfig()); err == nil {
		t.Error("invalid config applied")
	}
	if !p.Current().Equal(cfg) {
		t.Error("failed Apply mutated state")
	}
}

func TestSimPlatformSampling(t *testing.T) {
	p := newPlatform(t)
	ips, err := p.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 5 {
		t.Fatalf("sample has %d jobs", len(ips))
	}
	for j, v := range ips {
		if v <= 0 {
			t.Errorf("job %d IPS = %g", j, v)
		}
	}
	iso, err := p.MeasureIsolated()
	if err != nil {
		t.Fatal(err)
	}
	for j := range iso {
		if iso[j] < ips[j] {
			t.Errorf("job %d isolated %g below co-located %g (beyond noise?)", j, iso[j], ips[j])
		}
	}
	if p.Simulator().Ticks() != 1 {
		t.Errorf("Sample should advance exactly one tick, got %d", p.Simulator().Ticks())
	}
}

func TestCompileArbitrarySpacesProperty(t *testing.T) {
	// Compile must yield a hardware-valid plan for ANY space shape and
	// ANY valid configuration, not just the paper testbed.
	rng := stats.NewRNG(77)
	for trial := 0; trial < 300; trial++ {
		jobs := 2 + rng.Intn(5)
		space, err := resource.NewSpace(jobs,
			resource.Resource{Kind: resource.Cores, Units: jobs + rng.Intn(12)},
			resource.Resource{Kind: resource.LLCWays, Units: jobs + rng.Intn(20)},
			resource.Resource{Kind: resource.MemBW, Units: jobs + rng.Intn(12)},
		)
		if err != nil {
			t.Fatal(err)
		}
		c := space.Random(rng)
		plan, err := Compile(space, c)
		if err != nil {
			t.Fatalf("compile failed for %s: %v", c.Key(), err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("invalid plan for %s: %v", c.Key(), err)
		}
	}
}
