package rdt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"satori/internal/sim"
)

func TestTraceSamplerReplayLoops(t *testing.T) {
	s, err := NewTraceSampler(
		[]float64{10, 20},
		[][]float64{{1, 2}, {3, 4}, {5, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs() != 2 || s.Ticks() != 3 {
		t.Fatalf("Jobs/Ticks = %d/%d, want 2/3", s.Jobs(), s.Ticks())
	}
	want := [][]float64{{1, 2}, {3, 4}, {5, 6}, {1, 2}} // wraps around
	for i, w := range want {
		row, err := s.Sample(Plan{})
		if err != nil {
			t.Fatal(err)
		}
		if row[0] != w[0] || row[1] != w[1] {
			t.Errorf("sample %d = %v, want %v", i, row, w)
		}
	}
	iso, err := s.SampleIsolated()
	if err != nil {
		t.Fatal(err)
	}
	if iso[0] != 10 || iso[1] != 20 {
		t.Errorf("isolated = %v, want [10 20]", iso)
	}
	// Returned slices must be copies: corrupting one must not corrupt
	// the trace.
	iso[0] = -1
	iso2, _ := s.SampleIsolated()
	if iso2[0] != 10 {
		t.Error("SampleIsolated returned an aliased slice")
	}
}

func TestTraceSamplerValidation(t *testing.T) {
	if _, err := NewTraceSampler(nil, [][]float64{{1}}); err == nil {
		t.Error("empty baselines accepted")
	}
	if _, err := NewTraceSampler([]float64{1}, nil); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := NewTraceSampler([]float64{1, 2}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestIPSTraceRoundTrip(t *testing.T) {
	iso := []float64{2.5e9, 3e9, 1.25e9}
	rows := [][]float64{{1e9, 2e9, 3e8}, {1.5e9, 2.25e9, 4e8}}
	var buf strings.Builder
	if err := WriteIPSTrace(&buf, iso, rows); err != nil {
		t.Fatal(err)
	}
	s, err := LoadTraceSampler(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.SampleIsolated()
	for j := range iso {
		if got[j] != iso[j] {
			t.Errorf("isolated[%d] = %g, want %g", j, got[j], iso[j])
		}
	}
	for i := range rows {
		row, _ := s.Sample(Plan{})
		for j := range rows[i] {
			if row[j] != rows[i][j] {
				t.Errorf("row %d[%d] = %g, want %g", i, j, row[j], rows[i][j])
			}
		}
	}
}

func TestReadIPSTraceErrors(t *testing.T) {
	if _, _, err := ReadIPSTrace(strings.NewReader("# only comments\n")); err == nil {
		t.Error("comment-only trace accepted")
	}
	if _, _, err := ReadIPSTrace(strings.NewReader("1,2\nnot-a-number,3\n")); err == nil {
		t.Error("bad value accepted")
	}
}

func TestPerfSamplerIsDocumentedStub(t *testing.T) {
	var s Sampler = PerfSampler{Jobs: 2}
	if _, err := s.Sample(Plan{}); !errors.Is(err, ErrPerfUnimplemented) {
		t.Errorf("Sample error = %v, want ErrPerfUnimplemented", err)
	}
	if _, err := s.SampleIsolated(); !errors.Is(err, ErrPerfUnimplemented) {
		t.Errorf("SampleIsolated error = %v, want ErrPerfUnimplemented", err)
	}
}

func newTracePlatform(t *testing.T) *ResctrlPlatform {
	t.Helper()
	sampler, err := NewTraceSampler(
		[]float64{2e9, 3e9, 2.5e9},
		[][]float64{{1e9, 1.5e9, 1.2e9}, {1.1e9, 1.4e9, 1.3e9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewResctrlPlatform(sim.DefaultMachine(), []string{"a", "b", "c"},
		ResctrlWriter{Root: t.TempDir()}, sampler)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Construction must already materialize the equal-split partition in the
// resctrl tree — a freshly built platform is a fully configured machine.
func TestResctrlPlatformInitialSplit(t *testing.T) {
	p := newTracePlatform(t)
	plan, err := Compile(p.Space(), p.Current())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		got, err := p.Writer().ReadGroup(j)
		if err != nil {
			t.Fatalf("job %d group missing after construction: %v", j, err)
		}
		want := plan.Jobs[j]
		if got.CATMask != want.CATMask || got.MBAPercent != want.MBAPercent {
			t.Errorf("job %d group = %+v, want %+v", j, got, want)
		}
	}
}

func TestResctrlPlatformApplyRejectsStaleShape(t *testing.T) {
	p := newTracePlatform(t)
	stale := p.Current()
	for r := range stale.Alloc {
		stale.Alloc[r] = stale.Alloc[r][:2] // same rows, a 2-job dimension
	}
	err := p.Apply(stale)
	var shape *ConfigShapeError
	if !errors.As(err, &shape) {
		t.Fatalf("Apply error = %v, want *ConfigShapeError", err)
	}
	if shape.ConfigJobs != 2 || shape.SpaceJobs != 3 {
		t.Errorf("shape = %+v, want 2 vs 3 jobs", shape)
	}
}

func TestResctrlPlatformSampleValidatesWidth(t *testing.T) {
	sampler, err := NewTraceSampler([]float64{1, 2}, [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// 3 job names over a 2-job trace: the width mismatch must surface
	// the moment the sampler is read, not as silent misattribution.
	p, err := NewResctrlPlatform(sim.DefaultMachine(), []string{"a", "b", "c"},
		ResctrlWriter{Root: t.TempDir()}, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sample(); err == nil {
		t.Error("Sample accepted a 2-job trace on a 3-job platform")
	}
	if _, err := p.MeasureIsolated(); err == nil {
		t.Error("MeasureIsolated accepted 2 baselines on a 3-job platform")
	}
}

// External drift: between ticks, another agent (a human operator, a
// second controller, a node-cleanup script) rewrites a control group's
// schemata and cpus_list out from under the platform. Resync must
// restore every file from the in-memory configuration, and the next
// Apply of a genuinely new decision must land normally afterwards.
func TestResctrlPlatformResyncRestoresExternalDrift(t *testing.T) {
	p := newTracePlatform(t)
	w := p.Writer()
	dir := filepath.Join(w.Root, "satori-job1")

	wantSchemata, err := os.ReadFile(filepath.Join(dir, "schemata"))
	if err != nil {
		t.Fatal(err)
	}
	wantCPUs, err := os.ReadFile(filepath.Join(dir, "cpus_list"))
	if err != nil {
		t.Fatal(err)
	}

	// The drift: well-formed but wrong values, exactly what a competing
	// writer would leave behind.
	if err := os.WriteFile(filepath.Join(dir, "schemata"), []byte("L3:0=fffff\nMB:0=100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cpus_list"), []byte("0-63\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	drifted, err := w.ReadGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	if drifted.CATMask != 0xfffff || drifted.MBAPercent != 100 {
		t.Fatalf("drift setup failed: read back %+v", drifted)
	}

	if err := p.Resync(); err != nil {
		t.Fatalf("Resync after external drift: %v", err)
	}
	gotSchemata, err := os.ReadFile(filepath.Join(dir, "schemata"))
	if err != nil {
		t.Fatal(err)
	}
	gotCPUs, err := os.ReadFile(filepath.Join(dir, "cpus_list"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotSchemata) != string(wantSchemata) {
		t.Errorf("schemata after Resync = %q, want restored %q", gotSchemata, wantSchemata)
	}
	if string(gotCPUs) != string(wantCPUs) {
		t.Errorf("cpus_list after Resync = %q, want restored %q", gotCPUs, wantCPUs)
	}

	// The loop keeps deciding after the repair: a fresh configuration
	// (one unit moved between jobs on resource 0) must compile and land.
	next := p.Current()
	next.Alloc[0][0]++
	next.Alloc[0][1]--
	if err := p.Apply(next); err != nil {
		t.Fatalf("Apply after Resync: %v", err)
	}
	plan, err := Compile(p.Space(), next)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.ReadGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.CATMask != plan.Jobs[0].CATMask || got.MBAPercent != plan.Jobs[0].MBAPercent {
		t.Errorf("job 0 after post-Resync Apply = %+v, want %+v", got, plan.Jobs[0])
	}
}
