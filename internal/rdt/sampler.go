package rdt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sampler provides the monitoring half of a resctrl deployment: per-job
// IPS for one 100 ms co-location interval and isolated-execution
// baselines. Partition control (the resctrl side) and monitoring (the
// perf side) are deliberately split — resctrl files carry no performance
// counters, so a real deployment pairs ResctrlWriter with a counter
// reader while tests and replays pair it with a deterministic trace.
type Sampler interface {
	// Sample returns the per-job IPS observed over one 100 ms interval
	// under the given compiled plan, in job order.
	Sample(plan Plan) ([]float64, error)
	// SampleIsolated returns fresh isolated-execution IPS baselines for
	// every job (Algorithm 1 lines 3 and 13).
	SampleIsolated() ([]float64, error)
}

// TraceSampler replays a recorded per-job IPS trace in a loop — the
// deterministic Sampler used for hermetic resctrl tests and offline
// replays of captured runs. The plan passed to Sample is ignored: a
// trace is a fixed recording, not a responsive model.
type TraceSampler struct {
	isolated []float64
	rows     [][]float64
	cursor   int
}

// NewTraceSampler builds a sampler over one isolated-baseline vector and
// at least one per-tick IPS row; every row must have the same width as
// the baselines. Rows replay in order and wrap around.
func NewTraceSampler(isolated []float64, rows [][]float64) (*TraceSampler, error) {
	if len(isolated) == 0 {
		return nil, fmt.Errorf("rdt: trace sampler needs isolated baselines")
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("rdt: trace sampler needs at least one IPS row")
	}
	for i, row := range rows {
		if len(row) != len(isolated) {
			return nil, fmt.Errorf("rdt: trace row %d has %d jobs, baselines have %d", i, len(row), len(isolated))
		}
	}
	return &TraceSampler{isolated: isolated, rows: rows}, nil
}

// Jobs returns the trace's job count.
func (t *TraceSampler) Jobs() int { return len(t.isolated) }

// Ticks returns the number of recorded rows (the replay period).
func (t *TraceSampler) Ticks() int { return len(t.rows) }

// Sample implements Sampler: it returns a copy of the next recorded row,
// wrapping around at the end of the trace.
func (t *TraceSampler) Sample(Plan) ([]float64, error) {
	row := t.rows[t.cursor]
	t.cursor = (t.cursor + 1) % len(t.rows)
	return append([]float64(nil), row...), nil
}

// SampleIsolated implements Sampler: the recorded baselines, copied.
func (t *TraceSampler) SampleIsolated() ([]float64, error) {
	return append([]float64(nil), t.isolated...), nil
}

// The IPS trace file format is line-oriented text: '#' lines are
// comments, the first data line holds the isolated baselines, and every
// following line is one 100 ms tick's per-job IPS, comma-separated.

// ReadIPSTrace parses the trace file format into baselines + rows.
func ReadIPSTrace(r io.Reader) (isolated []float64, rows [][]float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var vals []float64
		for _, field := range strings.Split(line, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("rdt: trace line %d: bad value %q: %w", lineNo, field, err)
			}
			vals = append(vals, v)
		}
		if isolated == nil {
			isolated = vals
			continue
		}
		rows = append(rows, vals)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("rdt: reading trace: %w", err)
	}
	if isolated == nil {
		return nil, nil, fmt.Errorf("rdt: trace has no data lines")
	}
	return isolated, rows, nil
}

// LoadTraceSampler reads the trace file format and builds the sampler.
func LoadTraceSampler(r io.Reader) (*TraceSampler, error) {
	isolated, rows, err := ReadIPSTrace(r)
	if err != nil {
		return nil, err
	}
	return NewTraceSampler(isolated, rows)
}

// WriteIPSTrace renders baselines + rows in the trace file format.
func WriteIPSTrace(w io.Writer, isolated []float64, rows [][]float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# satori IPS trace: first data line = isolated baselines, then one line per 100 ms tick")
	writeRow := func(vals []float64) {
		for i, v := range vals {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%g", v)
		}
		bw.WriteByte('\n')
	}
	writeRow(isolated)
	for _, row := range rows {
		writeRow(row)
	}
	return bw.Flush()
}

// ErrPerfUnimplemented reports that the perf-counter sampler is a stub.
var ErrPerfUnimplemented = errors.New("rdt: perf-counter sampling not implemented on this build; use a TraceSampler or supply your own Sampler")

// PerfSampler is the documented stub for live hardware monitoring. A
// real implementation opens one perf_event_open(2) fd per job for
// PERF_COUNT_HW_INSTRUCTIONS (cgroup- or CPU-scoped to the plan's
// CPUSet, the pqos equivalent of the paper's 10 Hz IPS monitor), reads
// and resets the counters every Sample, and measures SampleIsolated by
// briefly running each job with the whole machine. That needs root
// privileges and Linux-only syscalls, so it is intentionally left
// unimplemented here: both methods return ErrPerfUnimplemented, and the
// control plane above it is exercised hermetically via TraceSampler.
type PerfSampler struct {
	// Jobs is the number of co-located jobs the sampler would monitor.
	Jobs int
}

// Sample implements Sampler (stub).
func (PerfSampler) Sample(Plan) ([]float64, error) { return nil, ErrPerfUnimplemented }

// SampleIsolated implements Sampler (stub).
func (PerfSampler) SampleIsolated() ([]float64, error) { return nil, ErrPerfUnimplemented }
