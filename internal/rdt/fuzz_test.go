package rdt

import (
	"strings"
	"testing"
)

// FuzzParseCPUList ensures the kernel CPU-list parser never panics and
// that accepted inputs round-trip through FormatCPUList semantically.
func FuzzParseCPUList(f *testing.F) {
	for _, seed := range []string{"", "0", "0-2", "0,2-3,5", "7-9,11", "1,1,2", "x", "3-1", "-"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cpus, err := ParseCPUList(s)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, c := range cpus {
			if c < 0 {
				t.Fatalf("ParseCPUList(%q) produced negative cpu %d", s, c)
			}
		}
		// Accepted inputs must survive a format/parse round trip as a
		// set.
		back, err := ParseCPUList(FormatCPUList(cpus))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		set := map[int]bool{}
		for _, c := range cpus {
			set[c] = true
		}
		for _, c := range back {
			if !set[c] {
				t.Fatalf("round trip of %q invented cpu %d", s, c)
			}
			delete(set, c)
		}
		if len(set) != 0 {
			t.Fatalf("round trip of %q lost cpus %v", s, set)
		}
	})
}

// FuzzParseSchemata ensures the schemata parser never panics and that
// accepted inputs contain both an L3 and an MB line.
func FuzzParseSchemata(f *testing.F) {
	for _, seed := range []string{
		"L3:0=7\nMB:0=20\n", "L3:0=ff\nMB:0=100", "", "L3:0", "L2:0=1\nMB:0=10",
		"L3:0=zz\nMB:0=20", "MB:0=20\nL3:0=38",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ja, err := ParseSchemata(s)
		if err != nil {
			return
		}
		if !strings.Contains(s, "L3") || !strings.Contains(s, "MB") {
			t.Fatalf("ParseSchemata(%q) accepted input without both lines", s)
		}
		if ja.MBAPercent < 0 {
			// Negative percents parse via Atoi; they are rejected at
			// Plan.Validate time, which is the contract — but the
			// parser must at least return what the text said.
			_ = ja
		}
	})
}
