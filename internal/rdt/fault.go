package rdt

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/slo"
	"satori/internal/stats"
)

// TransientError marks a platform failure as retry-safe: the operation
// failed for a reason expected to clear on its own (a busy resctrl file,
// a dropped counter read, a momentary EAGAIN), as opposed to a fatal
// condition (a desynced plan, an exhausted trace, a misconfigured root).
// internal/control's resilience policies only ever retry or absorb
// transient failures; anything else still aborts the run, so a genuine
// deployment bug cannot hide behind the retry machinery.
type TransientError struct {
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return "rdt: transient: " + e.Err.Error() }

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient reports retry-safety (the IsTransient marker method).
func (e *TransientError) Transient() bool { return true }

// Transient wraps err as retry-safe. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether any error in err's chain declares itself
// retry-safe via a `Transient() bool` method (the same duck-typed
// convention net.Error uses for Timeout).
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// FaultOp identifies which Platform operation a fault targets.
type FaultOp int

const (
	// OpApply targets Platform.Apply.
	OpApply FaultOp = iota
	// OpSample targets Platform.Sample.
	OpSample
	// OpMeasureIsolated targets Platform.MeasureIsolated.
	OpMeasureIsolated
	// OpResync targets Platform.Resync.
	OpResync
	numFaultOps
)

// String returns the op's script-DSL name.
func (op FaultOp) String() string {
	switch op {
	case OpApply:
		return "apply"
	case OpSample:
		return "sample"
	case OpMeasureIsolated:
		return "measure"
	case OpResync:
		return "resync"
	}
	return fmt.Sprintf("FaultOp(%d)", int(op))
}

// FaultKind selects what an injected fault does to the targeted call.
type FaultKind int

const (
	// FaultError fails the call with a transient error (an Apply
	// rejection, a Sample dropout, a busy MeasureIsolated/Resync). For
	// OpSample the underlying interval still elapses — the measurement
	// is lost, not the time — so replay determinism is preserved.
	FaultError FaultKind = iota
	// FaultNaN corrupts one job's IPS to NaN (OpSample only): the torn
	//-read/wedged-counter case Status.BadSample exists for.
	FaultNaN
	// FaultNegative corrupts one job's IPS to a negative value
	// (OpSample only).
	FaultNegative
	// FaultLatency delays the call through the script's Sleep hook and
	// then lets it succeed — a slow resctrl write or perf read.
	FaultLatency
	// FaultFatal fails the call with a NON-transient error — a dead
	// counter, an exhausted trace, a misconfigured resctrl root. The
	// control loop's retry/degradation machinery must NOT absorb it:
	// fatal faults abort the run, which is exactly what resilience and
	// fleet error-path tests need to provoke.
	FaultFatal
)

// String returns the kind's script-DSL name.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultNaN:
		return "nan"
	case FaultNegative:
		return "negative"
	case FaultLatency:
		return "latency"
	case FaultFatal:
		return "fatal"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scripted fault: Kind fires on the Repeat consecutive
// calls of Op starting at the Call-th call (1-based, counted per op).
type Fault struct {
	Op   FaultOp
	Kind FaultKind
	// Call is the 1-based call index of Op at which the fault starts.
	Call int
	// Repeat is how many consecutive calls fire (default 1).
	Repeat int
}

// FaultScript configures a FaultInjector: a deterministic list of
// scripted faults, optionally layered with seeded random fault rates.
// Scripted faults make counter assertions exact; rates model sustained
// background flakiness in soak runs. Both are fully reproducible — all
// randomness derives from Seed.
type FaultScript struct {
	// Faults fire at exact per-op call indices.
	Faults []Fault
	// Seed drives the random-rate stream (default 1).
	Seed uint64
	// Per-op random fault probabilities in [0, 1). Random sample faults
	// alternate dropout / NaN corruption from the seeded stream.
	ApplyErrorRate, SampleErrorRate, SampleCorruptRate float64
	MeasureErrorRate, ResyncErrorRate                  float64
	// Latency is the delay a FaultLatency fault injects (default 1 ms).
	Latency time.Duration
	// Sleep performs latency injection (default time.Sleep). Tests
	// install a recorder so scripted latency stays wall-clock free.
	Sleep func(time.Duration)
}

// FaultCounts tallies every fault a FaultInjector actually injected,
// keyed the way the control loop's Summary/Health counters observe them
// — the ground truth a soak test reconciles against.
type FaultCounts struct {
	// ApplyErrors counts transient Apply rejections.
	ApplyErrors int
	// SampleErrors counts Sample dropouts (interval elapsed, reading lost).
	SampleErrors int
	// SampleNaNs and SampleNegatives count corrupted Sample readings.
	SampleNaNs, SampleNegatives int
	// MeasureErrors counts failed MeasureIsolated calls.
	MeasureErrors int
	// ResyncErrors counts failed Resync calls.
	ResyncErrors int
	// Latencies counts injected delays (which then succeed).
	Latencies int
	// FatalErrors counts injected NON-transient failures (FaultFatal) —
	// the faults the resilience layers are forbidden to absorb.
	FatalErrors int
}

// Total is the number of injected faults of any kind.
func (c FaultCounts) Total() int {
	return c.ApplyErrors + c.SampleErrors + c.SampleNaNs + c.SampleNegatives +
		c.MeasureErrors + c.ResyncErrors + c.Latencies + c.FatalErrors
}

// FaultInjector is a chaos wrapper around any Platform: it forwards every
// operation to the inner backend, deterministically injecting the faults
// its script calls for — transient Apply rejections, Sample dropouts and
// NaN/negative IPS corruption, MeasureIsolated and Resync failures, and
// latency spikes. Every injected error is marked Transient — except the
// explicit FaultFatal kind — so the control loop's retry/degradation
// policies engage exactly as they would for real platform flakiness, and
// every injection is counted so tests can reconcile loop counters
// against ground truth.
//
// Construct via NewFaultInjector, which preserves the inner platform's
// optional capabilities (Churner, FastSampler) in the returned value.
// With a zero-value script the wrapper is a transparent pass-through.
type FaultInjector struct {
	inner  Platform
	script FaultScript
	rng    *stats.RNG
	calls  [numFaultOps]int
	counts FaultCounts
	// scripted[op] maps a call index to the fault kind firing there.
	scripted [numFaultOps]map[int]FaultKind
}

// NewFaultInjector wraps inner with the script. The returned Platform
// additionally implements Churner and/or FastSampler exactly when inner
// does, so capability probes behave as if the injector were not there.
// Churn and fast-sample calls pass through un-faulted: the script targets
// the four core Platform operations, where every control-loop failure
// path lives.
func NewFaultInjector(inner Platform, script FaultScript) (Platform, error) {
	if script.Seed == 0 {
		script.Seed = 1
	}
	if script.Latency <= 0 {
		script.Latency = time.Millisecond
	}
	if script.Sleep == nil {
		script.Sleep = time.Sleep
	}
	fi := &FaultInjector{inner: inner, script: script, rng: stats.NewRNG(script.Seed)}
	for op := FaultOp(0); op < numFaultOps; op++ {
		fi.scripted[op] = map[int]FaultKind{}
	}
	for _, f := range script.Faults {
		if f.Op < 0 || f.Op >= numFaultOps {
			return nil, fmt.Errorf("rdt: fault script: unknown op %d", int(f.Op))
		}
		if f.Call < 1 {
			return nil, fmt.Errorf("rdt: fault script: %s fault needs a 1-based call index, got %d", f.Op, f.Call)
		}
		if (f.Kind == FaultNaN || f.Kind == FaultNegative) && f.Op != OpSample {
			return nil, fmt.Errorf("rdt: fault script: %s corruption only applies to sample, not %s", f.Kind, f.Op)
		}
		repeat := f.Repeat
		if repeat < 1 {
			repeat = 1
		}
		for i := 0; i < repeat; i++ {
			fi.scripted[f.Op][f.Call+i] = f.Kind
		}
	}
	churner, hasChurn := inner.(Churner)
	fast, hasFast := inner.(FastSampler)
	switch {
	case hasChurn && hasFast:
		return &churnFastFaultPlatform{churnFaultPlatform{fi, churner}, fast}, nil
	case hasChurn:
		return &churnFaultPlatform{fi, churner}, nil
	case hasFast:
		return &fastFaultPlatform{fi, fast}, nil
	default:
		return fi, nil
	}
}

// InjectorOf unwraps the *FaultInjector behind a Platform returned by
// NewFaultInjector (regardless of which capability wrapper it is), so
// callers can read Counts. ok is false for un-wrapped platforms.
func InjectorOf(p Platform) (*FaultInjector, bool) {
	if c, ok := p.(interface{ injector() *FaultInjector }); ok {
		return c.injector(), true
	}
	return nil, false
}

func (f *FaultInjector) injector() *FaultInjector { return f }

// Counts returns the faults injected so far.
func (f *FaultInjector) Counts() FaultCounts { return f.counts }

// Calls returns how many times op has been invoked through the injector.
func (f *FaultInjector) Calls(op FaultOp) int { return f.calls[op] }

// Inner returns the wrapped platform.
func (f *FaultInjector) Inner() Platform { return f.inner }

// SLOSpecs forwards the SLOProvider capability (promoted into every
// capability wrapper, so LC tracking survives fault injection). A nil
// result — the inner platform lacks the capability or carries no specs
// — leaves the control loop's SLO tracker disabled, as usual.
func (f *FaultInjector) SLOSpecs() []*slo.Spec {
	if p, ok := f.inner.(SLOProvider); ok {
		return p.SLOSpecs()
	}
	return nil
}

// next advances op's call counter and resolves the fault (if any) firing
// on this call: scripted faults first, then the seeded random stream.
// The random stream draws exactly one uniform per call with a nonzero
// rate, so enabling an op's rate does not perturb other ops' draws.
func (f *FaultInjector) next(op FaultOp, rate, corruptRate float64) (FaultKind, bool) {
	f.calls[op]++
	if k, ok := f.scripted[op][f.calls[op]]; ok {
		return k, true
	}
	if rate <= 0 && corruptRate <= 0 {
		return 0, false
	}
	u := f.rng.Float64()
	if u < rate {
		return FaultError, true
	}
	if u < rate+corruptRate {
		// Alternate the two corruption kinds deterministically.
		if f.counts.SampleNaNs <= f.counts.SampleNegatives {
			return FaultNaN, true
		}
		return FaultNegative, true
	}
	return 0, false
}

// Space implements Platform.
func (f *FaultInjector) Space() *resource.Space { return f.inner.Space() }

// Current implements Platform.
func (f *FaultInjector) Current() resource.Config { return f.inner.Current() }

// JobNames implements Platform.
func (f *FaultInjector) JobNames() []string { return f.inner.JobNames() }

// Apply implements Platform, injecting transient rejections and latency
// spikes per the script.
func (f *FaultInjector) Apply(c resource.Config) error {
	switch kind, fire := f.next(OpApply, f.script.ApplyErrorRate, 0); {
	case !fire:
	case kind == FaultLatency:
		f.counts.Latencies++
		f.script.Sleep(f.script.Latency)
	case kind == FaultFatal:
		f.counts.FatalErrors++
		return fmt.Errorf("injected fatal apply failure (call %d)", f.calls[OpApply])
	default:
		f.counts.ApplyErrors++
		return Transient(fmt.Errorf("injected apply rejection (call %d)", f.calls[OpApply]))
	}
	return f.inner.Apply(c)
}

// Sample implements Platform. A FaultError dropout still advances the
// inner platform's interval — the 100 ms elapsed on the machine, only
// the reading was lost — so a faulted run stays tick-aligned with a
// clean one. Corruption faults flip job 0's reading to NaN or a negative
// value after the genuine sample.
func (f *FaultInjector) Sample() ([]float64, error) {
	kind, fire := f.next(OpSample, f.script.SampleErrorRate, f.script.SampleCorruptRate)
	if fire && kind == FaultLatency {
		f.counts.Latencies++
		f.script.Sleep(f.script.Latency)
	}
	ips, err := f.inner.Sample()
	if err != nil || !fire || kind == FaultLatency {
		return ips, err
	}
	switch kind {
	case FaultError:
		f.counts.SampleErrors++
		return nil, Transient(fmt.Errorf("injected sample dropout (call %d)", f.calls[OpSample]))
	case FaultFatal:
		f.counts.FatalErrors++
		return nil, fmt.Errorf("injected fatal sample failure (call %d)", f.calls[OpSample])
	case FaultNaN:
		f.counts.SampleNaNs++
		out := append([]float64(nil), ips...)
		out[0] = math.NaN()
		return out, nil
	case FaultNegative:
		f.counts.SampleNegatives++
		out := append([]float64(nil), ips...)
		out[0] = -out[0] - 1
		return out, nil
	}
	return ips, nil
}

// MeasureIsolated implements Platform, injecting transient failures.
func (f *FaultInjector) MeasureIsolated() ([]float64, error) {
	switch kind, fire := f.next(OpMeasureIsolated, f.script.MeasureErrorRate, 0); {
	case !fire:
	case kind == FaultLatency:
		f.counts.Latencies++
		f.script.Sleep(f.script.Latency)
	case kind == FaultFatal:
		f.counts.FatalErrors++
		return nil, fmt.Errorf("injected fatal isolated-measurement failure (call %d)", f.calls[OpMeasureIsolated])
	default:
		f.counts.MeasureErrors++
		return nil, Transient(fmt.Errorf("injected isolated-measurement failure (call %d)", f.calls[OpMeasureIsolated]))
	}
	return f.inner.MeasureIsolated()
}

// Resync implements Platform, injecting transient failures.
func (f *FaultInjector) Resync() error {
	switch kind, fire := f.next(OpResync, f.script.ResyncErrorRate, 0); {
	case !fire:
	case kind == FaultLatency:
		f.counts.Latencies++
		f.script.Sleep(f.script.Latency)
	case kind == FaultFatal:
		f.counts.FatalErrors++
		return fmt.Errorf("injected fatal resync failure (call %d)", f.calls[OpResync])
	default:
		f.counts.ResyncErrors++
		return Transient(fmt.Errorf("injected resync failure (call %d)", f.calls[OpResync]))
	}
	return f.inner.Resync()
}

// churnFaultPlatform adds pass-through Churner forwarding (churn already
// resyncs internally; the script's resync faults target explicit Resync
// calls, keeping counter reconciliation exact).
type churnFaultPlatform struct {
	*FaultInjector
	churner Churner
}

// AddJob implements Churner.
func (p *churnFaultPlatform) AddJob(profile *sim.Profile) error { return p.churner.AddJob(profile) }

// RemoveJob implements Churner.
func (p *churnFaultPlatform) RemoveJob(j int) error { return p.churner.RemoveJob(j) }

// ReplaceJob implements Churner.
func (p *churnFaultPlatform) ReplaceJob(j int, profile *sim.Profile) error {
	return p.churner.ReplaceJob(j, profile)
}

// NumJobs implements Churner.
func (p *churnFaultPlatform) NumJobs() int { return p.churner.NumJobs() }

// fastFaultPlatform adds pass-through FastSampler forwarding.
type fastFaultPlatform struct {
	*FaultInjector
	fast FastSampler
}

// SampleFast implements FastSampler.
func (p *fastFaultPlatform) SampleFast() ([]float64, bool) { return p.fast.SampleFast() }

// FastHorizon implements FastSampler.
func (p *fastFaultPlatform) FastHorizon() int { return p.fast.FastHorizon() }

// SkipFast forwards BatchSampler when the inner platform has it; refusing
// otherwise keeps callers on the per-interval path.
func (p *fastFaultPlatform) SkipFast(n int) bool {
	if b, ok := p.fast.(BatchSampler); ok {
		return b.SkipFast(n)
	}
	return false
}

// churnFastFaultPlatform carries both optional capabilities.
type churnFastFaultPlatform struct {
	churnFaultPlatform
	fast FastSampler
}

// SampleFast implements FastSampler.
func (p *churnFastFaultPlatform) SampleFast() ([]float64, bool) { return p.fast.SampleFast() }

// FastHorizon implements FastSampler.
func (p *churnFastFaultPlatform) FastHorizon() int { return p.fast.FastHorizon() }

// SkipFast forwards BatchSampler when the inner platform has it.
func (p *churnFastFaultPlatform) SkipFast(n int) bool {
	if b, ok := p.fast.(BatchSampler); ok {
		return b.SkipFast(n)
	}
	return false
}

// ParseFaultScript parses the compact fault-script DSL used by command
// lines (cmd/satorid -fault, the CI soak smoke):
//
//	spec     := entry ("," entry)*
//	entry    := op ":" kind "@" call ["x" repeat]
//	op       := "apply" | "sample" | "measure" | "resync"
//	kind     := "error" | "nan" | "negative" | "latency" | "fatal"
//
// e.g. "sample:nan@50,apply:error@100x3,resync:error@200" injects a NaN
// reading on the 50th sample, rejects the 100th–102nd applies, and fails
// the 200th resync. Call indices are 1-based and per-op.
func ParseFaultScript(spec string) (FaultScript, error) {
	var script FaultScript
	if strings.TrimSpace(spec) == "" {
		return script, nil
	}
	ops := map[string]FaultOp{"apply": OpApply, "sample": OpSample, "measure": OpMeasureIsolated, "resync": OpResync}
	kinds := map[string]FaultKind{"error": FaultError, "nan": FaultNaN, "negative": FaultNegative, "latency": FaultLatency, "fatal": FaultFatal}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		opKind, at, ok := strings.Cut(entry, "@")
		if !ok {
			return script, fmt.Errorf("rdt: fault spec %q: missing @call", entry)
		}
		opName, kindName, ok := strings.Cut(opKind, ":")
		if !ok {
			return script, fmt.Errorf("rdt: fault spec %q: want op:kind@call", entry)
		}
		op, ok := ops[opName]
		if !ok {
			return script, fmt.Errorf("rdt: fault spec %q: unknown op %q (valid: %s)", entry, opName, keyList(ops))
		}
		kind, ok := kinds[kindName]
		if !ok {
			return script, fmt.Errorf("rdt: fault spec %q: unknown kind %q (valid: %s)", entry, kindName, keyList(kinds))
		}
		if (kind == FaultNaN || kind == FaultNegative) && op != OpSample {
			return script, fmt.Errorf("rdt: fault spec %q: %s corruption only applies to sample", entry, kind)
		}
		callStr, repeatStr, hasRepeat := strings.Cut(at, "x")
		call, err := strconv.Atoi(callStr)
		if err != nil || call < 1 {
			return script, fmt.Errorf("rdt: fault spec %q: bad call index %q", entry, callStr)
		}
		repeat := 1
		if hasRepeat {
			repeat, err = strconv.Atoi(repeatStr)
			if err != nil || repeat < 1 {
				return script, fmt.Errorf("rdt: fault spec %q: bad repeat %q", entry, repeatStr)
			}
		}
		script.Faults = append(script.Faults, Fault{Op: op, Kind: kind, Call: call, Repeat: repeat})
	}
	return script, nil
}

// keyList renders a map's keys sorted, for error messages.
func keyList[V any](m map[string]V) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
