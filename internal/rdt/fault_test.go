package rdt

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"satori/internal/sim"
	"satori/internal/workloads"
)

func newFaultTestPlatform(t *testing.T, script FaultScript) (Platform, *FaultInjector) {
	t.Helper()
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewFaultInjector(inner, script)
	if err != nil {
		t.Fatal(err)
	}
	fi, ok := InjectorOf(p)
	if !ok {
		t.Fatal("InjectorOf failed on a freshly wrapped platform")
	}
	return p, fi
}

// Transient marking must survive wrapping and be absent from ordinary
// errors, since the control loop's retry policies key off it.
func TestTransientErrorChain(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Error("bare error reported transient")
	}
	tr := Transient(base)
	if !IsTransient(tr) {
		t.Error("Transient(err) not reported transient")
	}
	wrapped := fmt.Errorf("context: %w", tr)
	if !IsTransient(wrapped) {
		t.Error("wrapped transient not detected through the chain")
	}
	if !errors.Is(wrapped, base) {
		t.Error("cause lost through Transient wrapper")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

// The injector must preserve the inner platform's optional capabilities:
// a SimPlatform (Churner + FastSampler) stays both; a ResctrlPlatform
// (neither) stays neither.
func TestFaultInjectorPreservesCapabilities(t *testing.T) {
	p, _ := newFaultTestPlatform(t, FaultScript{})
	if _, ok := p.(Churner); !ok {
		t.Error("churn capability lost through the injector")
	}
	if _, ok := p.(FastSampler); !ok {
		t.Error("fast-sampler capability lost through the injector")
	}

	sampler, err := NewTraceSampler([]float64{2e9}, [][]float64{{1e9}})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewResctrlPlatform(sim.DefaultMachine(), []string{"a"},
		ResctrlWriter{Root: t.TempDir()}, sampler)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := NewFaultInjector(rp, FaultScript{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wrapped.(Churner); ok {
		t.Error("injector invented a churn capability the inner platform lacks")
	}
	if _, ok := wrapped.(FastSampler); ok {
		t.Error("injector invented a fast-sampler capability the inner platform lacks")
	}
	if _, ok := InjectorOf(wrapped); !ok {
		t.Error("InjectorOf failed on the capability-free wrapper")
	}
}

// With a zero-value script the injector is a transparent pass-through:
// the sampled stream matches an unwrapped platform's bit for bit.
func TestFaultInjectorTransparentWhenIdle(t *testing.T) {
	profiles := workloads.PARSEC()[:3]
	mk := func() *SimPlatform {
		simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSimPlatform(simulator)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	bare := mk()
	wrapped, err := NewFaultInjector(mk(), FaultScript{})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 50; tick++ {
		want, err1 := bare.Sample()
		got, err2 := wrapped.Sample()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("tick %d job %d: %v != %v", tick, j, got[j], want[j])
			}
		}
	}
	fi, _ := InjectorOf(wrapped)
	if c := fi.Counts(); c.Total() != 0 {
		t.Errorf("idle script injected faults: %+v", c)
	}
}

// Scripted faults fire at exactly the scripted per-op call indices, with
// the scripted kinds, and are all counted.
func TestFaultInjectorScriptExact(t *testing.T) {
	slept := 0
	script := FaultScript{
		Faults: []Fault{
			{Op: OpSample, Kind: FaultNaN, Call: 3},
			{Op: OpSample, Kind: FaultNegative, Call: 5},
			{Op: OpSample, Kind: FaultError, Call: 7, Repeat: 2},
			{Op: OpApply, Kind: FaultError, Call: 2, Repeat: 3},
			{Op: OpMeasureIsolated, Kind: FaultError, Call: 1},
			{Op: OpResync, Kind: FaultError, Call: 1},
			{Op: OpSample, Kind: FaultLatency, Call: 10},
		},
		Sleep: func(time.Duration) { slept++ },
	}
	p, fi := newFaultTestPlatform(t, script)

	if _, err := p.MeasureIsolated(); !IsTransient(err) {
		t.Errorf("measure call 1: err = %v, want transient", err)
	}
	if _, err := p.MeasureIsolated(); err != nil {
		t.Errorf("measure call 2: unexpected %v", err)
	}
	if err := p.Resync(); !IsTransient(err) {
		t.Errorf("resync call 1: err = %v, want transient", err)
	}

	for call := 1; call <= 10; call++ {
		ips, err := p.Sample()
		switch call {
		case 3:
			if err != nil || !math.IsNaN(ips[0]) {
				t.Errorf("sample call %d: want NaN corruption, got %v %v", call, ips, err)
			}
		case 5:
			if err != nil || ips[0] >= 0 {
				t.Errorf("sample call %d: want negative corruption, got %v %v", call, ips, err)
			}
		case 7, 8:
			if !IsTransient(err) {
				t.Errorf("sample call %d: err = %v, want transient dropout", call, err)
			}
		default:
			if err != nil {
				t.Errorf("sample call %d: unexpected %v", call, err)
			}
			for j, v := range ips {
				if math.IsNaN(v) || v < 0 {
					t.Errorf("sample call %d job %d: corrupt value %v outside script", call, j, v)
				}
			}
		}
	}

	cfg := p.Space().EqualSplit()
	for call := 1; call <= 5; call++ {
		err := p.Apply(cfg)
		if want := call >= 2 && call <= 4; want != IsTransient(err) {
			t.Errorf("apply call %d: err = %v, want transient=%v", call, err, want)
		}
	}

	want := FaultCounts{
		ApplyErrors: 3, SampleErrors: 2, SampleNaNs: 1, SampleNegatives: 1,
		MeasureErrors: 1, ResyncErrors: 1, Latencies: 1,
	}
	if got := fi.Counts(); got != want {
		t.Errorf("counts = %+v, want %+v", got, want)
	}
	if slept != 1 {
		t.Errorf("Sleep hook called %d times, want 1", slept)
	}
	if fi.Calls(OpSample) != 10 || fi.Calls(OpApply) != 5 {
		t.Errorf("call counters = sample %d apply %d, want 10, 5", fi.Calls(OpSample), fi.Calls(OpApply))
	}
}

// Random-rate injection is reproducible: equal seeds produce identical
// fault sequences, different seeds (virtually always) different ones.
func TestFaultInjectorRandomDeterminism(t *testing.T) {
	run := func(seed uint64) []bool {
		script := FaultScript{Seed: seed, SampleErrorRate: 0.3}
		p, _ := newFaultTestPlatform(t, script)
		out := make([]bool, 100)
		for i := range out {
			_, err := p.Sample()
			out[i] = err != nil
		}
		return out
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed diverged", i)
		}
	}
	c := run(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 100-call fault sequences")
	}
}

// A sample dropout must still advance the inner platform's interval: the
// reading is lost, not the time, so the post-fault stream re-aligns with
// an unfaulted replay.
func TestFaultInjectorDropoutAdvancesTime(t *testing.T) {
	mk := func(script FaultScript) Platform {
		p, _ := newFaultTestPlatform(t, script)
		return p
	}
	clean := mk(FaultScript{})
	faulty := mk(FaultScript{Faults: []Fault{{Op: OpSample, Kind: FaultError, Call: 2}}})
	for call := 1; call <= 5; call++ {
		want, err := clean.Sample()
		if err != nil {
			t.Fatal(err)
		}
		got, err := faulty.Sample()
		if call == 2 {
			if err == nil {
				t.Fatal("call 2: dropout did not fire")
			}
			continue
		}
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("call %d: faulted run desynced from clean run (job %d: %v != %v)", call, j, got[j], want[j])
			}
		}
	}
}

// The DSL round-trips into the scripted fault set.
func TestParseFaultScript(t *testing.T) {
	script, err := ParseFaultScript("sample:nan@50, apply:error@100x3 ,resync:error@2,measure:latency@7")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Op: OpSample, Kind: FaultNaN, Call: 50, Repeat: 1},
		{Op: OpApply, Kind: FaultError, Call: 100, Repeat: 3},
		{Op: OpResync, Kind: FaultError, Call: 2, Repeat: 1},
		{Op: OpMeasureIsolated, Kind: FaultLatency, Call: 7, Repeat: 1},
	}
	if len(script.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(script.Faults), len(want))
	}
	for i, f := range script.Faults {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
	if s, err := ParseFaultScript("  "); err != nil || len(s.Faults) != 0 {
		t.Errorf("blank spec: %v %v", s, err)
	}
	for _, bad := range []string{"sample@3", "sample:nan", "bogus:error@1", "sample:weird@1", "apply:error@0", "apply:error@1x0", "apply:nan@1"} {
		if _, err := ParseFaultScript(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

// FaultFatal injects NON-transient errors on every op, so the control
// loop's retry/degradation/breaker machinery must not absorb them — they
// model a dead backend, not a glitch.
func TestFaultInjectorFatalKind(t *testing.T) {
	script := FaultScript{
		Faults: []Fault{
			{Op: OpSample, Kind: FaultFatal, Call: 2},
			{Op: OpApply, Kind: FaultFatal, Call: 1},
			{Op: OpMeasureIsolated, Kind: FaultFatal, Call: 1},
			{Op: OpResync, Kind: FaultFatal, Call: 1},
		},
	}
	p, fi := newFaultTestPlatform(t, script)
	if _, err := p.Sample(); err != nil {
		t.Fatalf("sample call 1: %v", err)
	}
	if _, err := p.Sample(); err == nil || IsTransient(err) {
		t.Errorf("sample call 2: err = %v, want non-transient failure", err)
	}
	if err := p.Apply(p.Space().EqualSplit()); err == nil || IsTransient(err) {
		t.Errorf("apply call 1: err = %v, want non-transient failure", err)
	}
	if _, err := p.MeasureIsolated(); err == nil || IsTransient(err) {
		t.Errorf("measure call 1: err = %v, want non-transient failure", err)
	}
	if err := p.Resync(); err == nil || IsTransient(err) {
		t.Errorf("resync call 1: err = %v, want non-transient failure", err)
	}
	if got := fi.Counts().FatalErrors; got != 4 {
		t.Errorf("FatalErrors = %d, want 4", got)
	}
	// The DSL knows the kind on every op.
	s, err := ParseFaultScript("sample:fatal@3, apply:fatal@1, measure:fatal@2, resync:fatal@4x2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Op: OpSample, Kind: FaultFatal, Call: 3, Repeat: 1},
		{Op: OpApply, Kind: FaultFatal, Call: 1, Repeat: 1},
		{Op: OpMeasureIsolated, Kind: FaultFatal, Call: 2, Repeat: 1},
		{Op: OpResync, Kind: FaultFatal, Call: 4, Repeat: 2},
	}
	if len(s.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(s.Faults), len(want))
	}
	for i, f := range s.Faults {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
}
