package rdt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ResctrlWriter materializes a compiled Plan in the Linux resctrl
// filesystem layout — the concrete deployment path on a real Intel RDT
// machine. For every job it maintains a control group directory
// containing the standard files:
//
//	<root>/satori-job<N>/schemata   "L3:<cacheID>=<hex mask>\nMB:<cacheID>=<percent>\n"
//	<root>/satori-job<N>/cpus_list  "0-2,5"
//
// Pointing Root at /sys/fs/resctrl on a machine with CAT/MBA enabled (and
// the process running with the needed privileges) applies partitions for
// real; pointing it at any scratch directory exercises the identical
// code path hermetically, which is how the tests run.
//
// Monitoring (the pqos side) is intentionally out of scope here: reading
// IPS needs perf counters, not resctrl files, and stays behind the
// Platform interface.
type ResctrlWriter struct {
	// Root is the resctrl mount point (or a scratch directory).
	Root string
	// CacheID is the L3 cache domain ID for the schemata lines
	// (socket 0 by default).
	CacheID int
	// GroupPrefix names the control groups (default "satori-job").
	GroupPrefix string
}

func (w ResctrlWriter) prefix() string {
	if w.GroupPrefix == "" {
		return "satori-job"
	}
	return w.GroupPrefix
}

// MaxCLOS detects the platform's class-of-service budget by reading
// info/L3/num_closids under the resctrl root, the standard resctrl
// capability file. The returned count excludes the root group (which
// permanently occupies CLOS0 on real hardware), so it is the number of
// control groups Apply may create. A tree without the info file — a
// scratch directory, or an MB-only mount — reports 0, meaning unlimited.
func (w ResctrlWriter) MaxCLOS() (int, error) {
	blob, err := os.ReadFile(filepath.Join(w.Root, "info", "L3", "num_closids"))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("rdt: reading num_closids: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(blob)))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("rdt: malformed num_closids %q", strings.TrimSpace(string(blob)))
	}
	return n - 1, nil
}

// Apply writes one control group per plan entry (per job, or per cluster
// when the plan was compiled under a grouping). Existing group
// directories are reused (schemata rewritten in place), matching how
// resctrl groups are managed on a live system; group directories beyond
// the plan — left over after membership churn shrank the job set, or
// after clustering reduced the group count — are removed, since a stale
// group would pin a CLOS (and its cache ways) forever on real hardware.
//
// Apply fails with a typed *CLOSLimitError when the plan needs more
// groups than the hardware offers (info/L3/num_closids, minus the root
// group) — the loud preflight for running jobs ≫ CLOS without
// clustering.
func (w ResctrlWriter) Apply(plan Plan) error {
	if w.Root == "" {
		return fmt.Errorf("rdt: ResctrlWriter needs a Root directory")
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	limit, err := w.MaxCLOS()
	if err != nil {
		return err
	}
	if err := checkCLOS(len(plan.Jobs), limit); err != nil {
		return err
	}
	for _, ja := range plan.Jobs {
		dir := filepath.Join(w.Root, fmt.Sprintf("%s%d", w.prefix(), ja.Job))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("rdt: creating control group: %w", err)
		}
		schemata := FormatSchemata(ja, w.CacheID)
		if err := os.WriteFile(filepath.Join(dir, "schemata"), []byte(schemata), 0o644); err != nil {
			return fmt.Errorf("rdt: writing schemata: %w", err)
		}
		cpus := FormatCPUList(ja.CPUSet)
		if err := os.WriteFile(filepath.Join(dir, "cpus_list"), []byte(cpus+"\n"), 0o644); err != nil {
			return fmt.Errorf("rdt: writing cpus_list: %w", err)
		}
	}
	return w.prune(len(plan.Jobs))
}

// prune removes control-group directories whose index is beyond the live
// plan — the groups a removed job (or a coarser clustering) left behind.
// Only directories named exactly <prefix><N> are candidates; everything
// else under the root (info, mon_groups, foreign groups) is untouched.
// On a real resctrl mount a group is deleted with a bare rmdir (its
// virtual files vanish with it), so plain Remove is tried first and
// RemoveAll only as the scratch-directory fallback.
func (w ResctrlWriter) prune(live int) error {
	entries, err := os.ReadDir(w.Root)
	if err != nil {
		return fmt.Errorf("rdt: scanning control groups: %w", err)
	}
	prefix := w.prefix()
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		idx, err := strconv.Atoi(e.Name()[len(prefix):])
		if err != nil || idx < live {
			continue
		}
		dir := filepath.Join(w.Root, e.Name())
		if err := os.Remove(dir); err != nil {
			if err := os.RemoveAll(dir); err != nil {
				return fmt.Errorf("rdt: removing stale control group %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// ReadGroup reads back one job's schemata and cpu list — used to verify a
// running deployment (and by the round-trip tests).
func (w ResctrlWriter) ReadGroup(job int) (JobAllocation, error) {
	dir := filepath.Join(w.Root, fmt.Sprintf("%s%d", w.prefix(), job))
	schemata, err := os.ReadFile(filepath.Join(dir, "schemata"))
	if err != nil {
		return JobAllocation{}, err
	}
	ja, err := ParseSchemata(string(schemata))
	if err != nil {
		return JobAllocation{}, err
	}
	ja.Job = job
	cpus, err := os.ReadFile(filepath.Join(dir, "cpus_list"))
	if err != nil {
		return JobAllocation{}, err
	}
	ja.CPUSet, err = ParseCPUList(strings.TrimSpace(string(cpus)))
	if err != nil {
		return JobAllocation{}, err
	}
	return ja, nil
}

// FormatSchemata renders the resctrl schemata lines for one job.
func FormatSchemata(ja JobAllocation, cacheID int) string {
	return fmt.Sprintf("L3:%d=%x\nMB:%d=%d\n", cacheID, ja.CATMask, cacheID, ja.MBAPercent)
}

// ParseSchemata parses L3/MB schemata lines (single cache domain).
func ParseSchemata(s string) (JobAllocation, error) {
	var ja JobAllocation
	sawL3, sawMB := false, false
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		kind, rest, ok := strings.Cut(line, ":")
		if !ok {
			return ja, fmt.Errorf("rdt: malformed schemata line %q", line)
		}
		_, value, ok := strings.Cut(rest, "=")
		if !ok {
			return ja, fmt.Errorf("rdt: malformed schemata assignment %q", line)
		}
		switch strings.TrimSpace(kind) {
		case "L3":
			mask, err := strconv.ParseUint(strings.TrimSpace(value), 16, 64)
			if err != nil {
				return ja, fmt.Errorf("rdt: bad L3 mask in %q: %w", line, err)
			}
			ja.CATMask = mask
			sawL3 = true
		case "MB":
			pct, err := strconv.Atoi(strings.TrimSpace(value))
			if err != nil {
				return ja, fmt.Errorf("rdt: bad MB percent in %q: %w", line, err)
			}
			ja.MBAPercent = pct
			sawMB = true
		default:
			return ja, fmt.Errorf("rdt: unsupported schemata resource %q", kind)
		}
	}
	if !sawL3 || !sawMB {
		return ja, fmt.Errorf("rdt: schemata missing L3 or MB line")
	}
	return ja, nil
}

// FormatCPUList renders a CPU set in the kernel's list format with
// collapsed ranges ("0-2,5,7-8").
func FormatCPUList(cpus []int) string {
	if len(cpus) == 0 {
		return ""
	}
	sorted := append([]int(nil), cpus...)
	sort.Ints(sorted)
	var parts []string
	start, prev := sorted[0], sorted[0]
	flush := func() {
		if start == prev {
			parts = append(parts, strconv.Itoa(start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, c := range sorted[1:] {
		if c == prev {
			continue // duplicates collapse
		}
		if c == prev+1 {
			prev = c
			continue
		}
		flush()
		start, prev = c, c
	}
	flush()
	return strings.Join(parts, ",")
}

// ParseCPUList parses the kernel CPU list format.
func ParseCPUList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("rdt: bad cpu range %q", part)
			}
			b, err := strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("rdt: bad cpu range %q", part)
			}
			for c := a; c <= b; c++ {
				out = append(out, c)
			}
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("rdt: bad cpu id %q", part)
		}
		out = append(out, c)
	}
	return out, nil
}
