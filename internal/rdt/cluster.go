package rdt

import (
	"fmt"

	"satori/internal/resource"
)

// CLOSLimitError is the typed, actionable rejection for a plan that needs
// more hardware classes of service than the platform offers. Real resctrl
// exposes ~16 CLOS (one consumed by the root/default group), so a per-job
// plan cannot serve more than ~15 jobs; the remedy is clustering — map
// jobs many-to-one onto ≤ MaxCLOS control groups (resource.Grouping, the
// satori-clustered and lfoc policies).
type CLOSLimitError struct {
	// Need is the number of control groups the plan requires.
	Need int
	// Have is the number of usable classes of service (num_closids minus
	// the root group).
	Have int
}

// Error implements error.
func (e *CLOSLimitError) Error() string {
	return fmt.Sprintf("rdt: plan needs %d control groups but the platform offers %d classes of service; enable job clustering (-cluster-k ≤ %d, or the satori-clustered/lfoc policies) to map jobs many-to-one onto CLOS groups",
		e.Need, e.Have, e.Have)
}

// Grouper is the optional cluster-indirection capability of a Platform:
// SetGrouping installs (or, with nil, removes) a job→cluster map, after
// which the backend materializes one control group per CLUSTER instead of
// one per job — per-job configurations are still what Apply accepts, but
// the compiled Plan has Grouping.Clusters entries. The grouping must span
// exactly the live job set; after membership churn re-dimensions the
// space, backends drop the stale grouping and the (rebuilt) policy must
// install a fresh one.
type Grouper interface {
	SetGrouping(g *resource.Grouping) error
	// Grouping returns the installed job→cluster map (nil = per-job).
	Grouping() *resource.Grouping
}

// CLOSLimiter is the optional hardware-class-budget capability of a
// Platform: MaxCLOS returns the number of usable control groups (0 =
// unlimited, e.g. the simulator by default or a scratch resctrl tree
// without an info directory). Plans needing more groups are rejected with
// a *CLOSLimitError.
type CLOSLimiter interface {
	MaxCLOS() int
}

// CompileGrouped compiles a per-job configuration into a per-CLUSTER plan
// under a grouping: each cluster's physical totals (the sum of its
// members' units per resource) become one JobAllocation whose Job field
// is the cluster index, with cores and ways handed out contiguously in
// cluster order exactly as Compile does per job. Member jobs share their
// cluster's control group — the LFOC deployment model that fits M jobs
// into K ≤ MaxCLOS classes of service.
func CompileGrouped(space *resource.Space, c resource.Config, g *resource.Grouping) (Plan, error) {
	if g == nil {
		return Compile(space, c)
	}
	if space.Jobs != g.Jobs() {
		return Plan{}, fmt.Errorf("rdt: grouping spans %d jobs, space has %d", g.Jobs(), space.Jobs)
	}
	if err := space.Validate(c); err != nil {
		return Plan{}, fmt.Errorf("rdt: cannot compile invalid config: %w", err)
	}
	// Cluster physical totals form a valid configuration of the K-job
	// space over the same unit counts (every cluster holds ≥ 1 unit of
	// each resource because each member does).
	clusterSpace, err := resource.NewSpace(g.Clusters, space.Resources...)
	if err != nil {
		return Plan{}, err
	}
	cc := clusterSpace.NewConfig()
	for r := range c.Alloc {
		row := cc.Alloc[r]
		for j, u := range c.Alloc[r] {
			row[g.JobToCluster[j]] += u
		}
	}
	return Compile(clusterSpace, cc)
}

// planGroups returns the number of control groups a platform needs for
// its live job set under an optional grouping.
func planGroups(jobs int, g *resource.Grouping) int {
	if g != nil {
		return g.Clusters
	}
	return jobs
}

// checkCLOS rejects a group demand that exceeds a CLOS budget (0 = no
// budget).
func checkCLOS(need, have int) error {
	if have > 0 && need > have {
		return &CLOSLimitError{Need: need, Have: have}
	}
	return nil
}
