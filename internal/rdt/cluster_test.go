package rdt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/workloads"
)

// testProfiles cycles the PARSEC profiles up to n jobs.
func testProfiles(t *testing.T, n int) []*sim.Profile {
	t.Helper()
	base := workloads.PARSEC()
	out := make([]*sim.Profile, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// writeNumCLOSIDs plants the resctrl capability file that advertises the
// class-of-service budget (total CLOS including the root group).
func writeNumCLOSIDs(t *testing.T, root string, n string) {
	t.Helper()
	dir := filepath.Join(root, "info", "L3")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "num_closids"), []byte(n), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWriterMaxCLOS(t *testing.T) {
	w := ResctrlWriter{Root: t.TempDir()}
	if n, err := w.MaxCLOS(); err != nil || n != 0 {
		t.Fatalf("scratch tree MaxCLOS = (%d, %v), want unlimited (0, nil)", n, err)
	}
	writeNumCLOSIDs(t, w.Root, "16\n")
	if n, err := w.MaxCLOS(); err != nil || n != 15 {
		t.Fatalf("MaxCLOS = (%d, %v), want 15 (16 minus the root group)", n, err)
	}
	writeNumCLOSIDs(t, w.Root, "garbage")
	if _, err := w.MaxCLOS(); err == nil {
		t.Fatal("malformed num_closids accepted")
	}
}

func TestWriterCLOSLimitPreflight(t *testing.T) {
	space, err := sim.DefaultMachine().Space(5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(space, space.EqualSplit())
	if err != nil {
		t.Fatal(err)
	}
	w := ResctrlWriter{Root: t.TempDir()}
	writeNumCLOSIDs(t, w.Root, "4\n") // 3 usable groups < 5 jobs
	err = w.Apply(plan)
	var lim *CLOSLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("Apply = %v, want *CLOSLimitError", err)
	}
	if lim.Need != 5 || lim.Have != 3 {
		t.Fatalf("CLOSLimitError = %+v, want Need=5 Have=3", lim)
	}
	// Nothing may have been written: a partial tree would pin CLOS.
	entries, err := os.ReadDir(w.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "info" {
			t.Fatalf("preflight-failed Apply left %s behind", e.Name())
		}
	}
	// Clustered to 3 groups the same 5 jobs fit.
	g := resource.RoundRobinGrouping(5, 3)
	cfg := space.EqualSplit()
	grouped, err := CompileGrouped(space, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Apply(grouped); err != nil {
		t.Fatalf("clustered plan rejected: %v", err)
	}
}

// TestWriterPrunesStaleGroups pins the churn-hygiene satellite: shrinking
// the plan (fewer jobs, or a coarser clustering) must remove the
// higher-numbered control-group directories — a stale group would pin a
// CLOS and its cache ways forever on real hardware — while foreign
// directories under the root are left alone.
func TestWriterPrunesStaleGroups(t *testing.T) {
	w := ResctrlWriter{Root: t.TempDir()}
	// Foreign entries a live resctrl mount also has.
	if err := os.MkdirAll(filepath.Join(w.Root, "mon_groups"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(w.Root, "other-tenant"), 0o755); err != nil {
		t.Fatal(err)
	}
	apply := func(jobs int) {
		t.Helper()
		space, err := sim.DefaultMachine().Space(jobs)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Compile(space, space.EqualSplit())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Apply(plan); err != nil {
			t.Fatal(err)
		}
	}
	dirSet := func() map[string]bool {
		t.Helper()
		entries, err := os.ReadDir(w.Root)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, e := range entries {
			out[e.Name()] = true
		}
		return out
	}
	apply(3)
	want := map[string]bool{"mon_groups": true, "other-tenant": true,
		"satori-job0": true, "satori-job1": true, "satori-job2": true}
	if got := dirSet(); len(got) != len(want) {
		t.Fatalf("after 3-job apply: %v, want %v", got, want)
	}
	apply(2)
	got := dirSet()
	if got["satori-job2"] {
		t.Fatal("stale satori-job2 survived the 2-job apply")
	}
	for name := range map[string]bool{"mon_groups": true, "other-tenant": true, "satori-job0": true, "satori-job1": true} {
		if !got[name] {
			t.Fatalf("prune removed %s", name)
		}
	}
	if len(got) != 4 {
		t.Fatalf("after 2-job apply: %v", got)
	}
}

func TestCompileGrouped(t *testing.T) {
	space, err := sim.DefaultMachine().Space(6)
	if err != nil {
		t.Fatal(err)
	}
	g := resource.RoundRobinGrouping(6, 2)
	cfg := space.EqualSplit()
	plan, err := CompileGrouped(space, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != 2 {
		t.Fatalf("grouped plan has %d entries, want one per cluster (2)", len(plan.Jobs))
	}
	// The two cluster groups jointly cover the whole machine exactly.
	cores := 0
	var union uint64
	for _, ja := range plan.Jobs {
		cores += len(ja.CPUSet)
		union |= ja.CATMask
	}
	m := sim.DefaultMachine()
	if cores != m.Cores {
		t.Errorf("cluster CPU sets cover %d cores, want %d", cores, m.Cores)
	}
	if union != (1<<m.LLCWays)-1 {
		t.Errorf("cluster CAT masks union %#x, want full %d ways", union, m.LLCWays)
	}
	// nil grouping degrades to the per-job compile.
	plain, err := CompileGrouped(space, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Jobs) != 6 {
		t.Fatalf("nil grouping compiled %d entries, want 6", len(plain.Jobs))
	}
	// A grouping for the wrong job count is rejected.
	if _, err := CompileGrouped(space, cfg, resource.RoundRobinGrouping(4, 2)); err == nil {
		t.Fatal("mismatched grouping accepted")
	}
}

func TestSimPlatformGroupingAndCLOS(t *testing.T) {
	profiles := testProfiles(t, 5)
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxCLOS() != 0 {
		t.Fatalf("fresh SimPlatform MaxCLOS = %d, want 0 (unlimited)", p.MaxCLOS())
	}
	// 5 jobs into a 3-CLOS budget: rejected per-job, accepted clustered.
	if err := p.SetMaxCLOS(3); err == nil {
		t.Fatal("SetMaxCLOS(3) accepted with 5 per-job control groups live")
	}
	if err := p.SetGrouping(resource.RoundRobinGrouping(5, 3)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMaxCLOS(3); err != nil {
		t.Fatalf("SetMaxCLOS(3) rejected despite 3-cluster grouping: %v", err)
	}
	if got := len(p.Plan().Jobs); got != 3 {
		t.Fatalf("grouped plan has %d entries, want 3", got)
	}
	// Ungrouping under the budget must fail and roll back.
	if err := p.SetGrouping(nil); err == nil {
		t.Fatal("SetGrouping(nil) accepted with 5 jobs over a 3-CLOS budget")
	}
	if g := p.Grouping(); g == nil || g.Clusters != 3 {
		t.Fatalf("failed SetGrouping did not roll back: %v", p.Grouping())
	}
	// Applies keep compiling per cluster.
	cfg := p.Space().EqualSplit()
	moved, ok := p.Space().Move(cfg, 0, 0, 1)
	if !ok {
		t.Fatal("move failed")
	}
	if err := p.Apply(moved); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Plan().Jobs); got != 3 {
		t.Fatalf("post-apply plan has %d entries, want 3", got)
	}
}

func TestSimPlatformChurnKeepsGroupingWithinBudget(t *testing.T) {
	profiles := testProfiles(t, 5)
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetGrouping(resource.RoundRobinGrouping(5, 3)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetMaxCLOS(3); err != nil {
		t.Fatal(err)
	}
	// Churn in a 6th job: the platform must re-churn the grouping (same
	// cluster count, new job spanned) rather than fall back to per-job
	// groups that would blow the CLOS budget mid-churn.
	if err := p.AddJob(profiles[0]); err != nil {
		t.Fatal(err)
	}
	g := p.Grouping()
	if g == nil || g.Jobs() != 6 || g.Clusters != 3 {
		t.Fatalf("post-churn grouping = %v, want 6 jobs over 3 clusters", g)
	}
	if err := p.RemoveJob(0); err != nil {
		t.Fatal(err)
	}
	g = p.Grouping()
	if g == nil || g.Jobs() != 5 || g.Clusters != 3 {
		t.Fatalf("post-removal grouping = %v, want 5 jobs over 3 clusters", g)
	}
}
