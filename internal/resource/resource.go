// Package resource models partitionable CMP resources and the resource
// partitioning configuration space of Sec. II of the SATORI paper.
//
// A Space describes how many units of each shared architectural resource
// exist (cores, LLC ways, memory-bandwidth steps, power-cap units) and how
// many jobs are co-located. A Config is one "resource partitioning
// configuration": an integer allocation matrix assigning every job at
// least one unit of every resource. The package supports exact counting
// and enumeration of the space (S_conf = Π C(U_r−1, M−1)), uniform random
// sampling, Euclidean distance between configurations (Fig. 15), and the
// single-unit-move neighborhood used by local-search policies.
package resource

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"satori/internal/stats"
)

// Kind identifies one partitionable architectural resource.
type Kind int

const (
	// Cores is the number of physical cores assigned via affinity
	// (taskset in the paper).
	Cores Kind = iota
	// LLCWays is the number of last-level-cache ways assigned via
	// Intel CAT-style way masks.
	LLCWays
	// MemBW is memory bandwidth in Intel MBA-style throttle steps.
	MemBW
	// Power is a RAPL-style power-cap share.
	Power
)

var kindNames = map[Kind]string{
	Cores:   "cores",
	LLCWays: "llc-ways",
	MemBW:   "mem-bw",
	Power:   "power",
}

// String returns the resource's short name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Resource is one partitionable resource with its total unit count.
type Resource struct {
	Kind  Kind
	Units int
}

// Space is a configuration search space: which resources are partitioned,
// with how many units each, among how many co-located jobs.
type Space struct {
	Resources []Resource
	Jobs      int
}

// NewSpace builds a Space after validating that every resource has at
// least one unit per job (otherwise no valid configuration exists).
func NewSpace(jobs int, resources ...Resource) (*Space, error) {
	if jobs < 1 {
		return nil, fmt.Errorf("resource: space needs at least 1 job, got %d", jobs)
	}
	if len(resources) == 0 {
		return nil, fmt.Errorf("resource: space needs at least 1 resource")
	}
	for _, r := range resources {
		if r.Units < jobs {
			return nil, fmt.Errorf("resource: %s has %d units for %d jobs; every job needs at least 1 unit",
				r.Kind, r.Units, jobs)
		}
	}
	rs := make([]Resource, len(resources))
	copy(rs, resources)
	return &Space{Resources: rs, Jobs: jobs}, nil
}

// MustNewSpace is NewSpace that panics on error, for tests and examples
// with static arguments.
func MustNewSpace(jobs int, resources ...Resource) *Space {
	s, err := NewSpace(jobs, resources...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the dimensionality of a configuration viewed as a vector:
// one coordinate per (resource, job) pair.
func (s *Space) Dim() int { return len(s.Resources) * s.Jobs }

// Size returns the exact number of valid configurations,
// Π_r C(U_r−1, M−1), as a float64 (spaces overflow int64 quickly; the
// paper's own examples are small, and the value is only used for
// reporting and for deciding between exact and approximate search).
func (s *Space) Size() float64 {
	total := 1.0
	for _, r := range s.Resources {
		total *= Binomial(r.Units-1, s.Jobs-1)
	}
	return total
}

// Binomial returns C(n, k) as a float64, 0 when k < 0 or k > n.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return math.Round(res)
}

// Config is one resource partitioning configuration: Alloc[r][j] is the
// number of units of resource r assigned to job j. Every entry is >= 1
// and each row sums to the resource's total units.
type Config struct {
	Alloc [][]int
}

// NewConfig allocates an all-zero configuration shaped for the space.
// Callers must fill it and should Validate before use.
func (s *Space) NewConfig() Config {
	a := make([][]int, len(s.Resources))
	for r := range a {
		a[r] = make([]int, s.Jobs)
	}
	return Config{Alloc: a}
}

// Validate reports whether c is a well-formed configuration for s.
func (s *Space) Validate(c Config) error {
	if len(c.Alloc) != len(s.Resources) {
		return fmt.Errorf("resource: config has %d resources, space has %d", len(c.Alloc), len(s.Resources))
	}
	for r, row := range c.Alloc {
		if len(row) != s.Jobs {
			return fmt.Errorf("resource: config resource %s has %d jobs, space has %d",
				s.Resources[r].Kind, len(row), s.Jobs)
		}
		sum := 0
		for j, u := range row {
			if u < 1 {
				return fmt.Errorf("resource: job %d gets %d units of %s; minimum is 1",
					j, u, s.Resources[r].Kind)
			}
			sum += u
		}
		if sum != s.Resources[r].Units {
			return fmt.Errorf("resource: %s allocations sum to %d, want %d",
				s.Resources[r].Kind, sum, s.Resources[r].Units)
		}
	}
	return nil
}

// CopyFrom copies o's allocations into c's existing storage. The two
// configurations must be shaped for the same space.
func (c Config) CopyFrom(o Config) {
	if len(c.Alloc) != len(o.Alloc) {
		panic(fmt.Sprintf("resource: CopyFrom shape mismatch: %d vs %d resources", len(c.Alloc), len(o.Alloc)))
	}
	for r := range o.Alloc {
		copy(c.Alloc[r], o.Alloc[r])
	}
}

// Clone returns a deep copy of c.
func (c Config) Clone() Config {
	a := make([][]int, len(c.Alloc))
	for r := range c.Alloc {
		a[r] = make([]int, len(c.Alloc[r]))
		copy(a[r], c.Alloc[r])
	}
	return Config{Alloc: a}
}

// Equal reports whether two configurations allocate identically.
func (c Config) Equal(o Config) bool {
	if len(c.Alloc) != len(o.Alloc) {
		return false
	}
	for r := range c.Alloc {
		if len(c.Alloc[r]) != len(o.Alloc[r]) {
			return false
		}
		for j := range c.Alloc[r] {
			if c.Alloc[r][j] != o.Alloc[r][j] {
				return false
			}
		}
	}
	return true
}

// Key returns a canonical string encoding of c, usable as a map key for
// the per-goal performance records of Sec. III-B.
func (c Config) Key() string {
	var b strings.Builder
	for r, row := range c.Alloc {
		if r > 0 {
			b.WriteByte('|')
		}
		for j, u := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(u))
		}
	}
	return b.String()
}

// String renders c for logs: "cores[3 3 4] llc-ways[4 4 3]".
func (s *Space) String(c Config) string {
	var b strings.Builder
	for r, row := range c.Alloc {
		if r > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s%v", s.Resources[r].Kind, row)
	}
	return b.String()
}

// EqualSplit returns the configuration that divides every resource as
// evenly as possible among jobs (the S_init of Algorithm 1). Remainder
// units go to the lowest-indexed jobs.
func (s *Space) EqualSplit() Config {
	c := s.NewConfig()
	for r, res := range s.Resources {
		base := res.Units / s.Jobs
		rem := res.Units % s.Jobs
		for j := 0; j < s.Jobs; j++ {
			c.Alloc[r][j] = base
			if j < rem {
				c.Alloc[r][j]++
			}
		}
	}
	return c
}

// Random samples a configuration uniformly at random: each resource row is
// a uniform composition of U units into M positive parts, drawn via the
// stars-and-bars bijection (choose M−1 distinct cut points among U−1).
func (s *Space) Random(rng *stats.RNG) Config {
	c := s.NewConfig()
	s.RandomInto(rng, c)
	return c
}

// RandomInto fills the already-shaped configuration c with a uniform
// random sample, consuming exactly the same RNG draws as Random. It is the
// allocation-free variant for hot loops that pool their configurations.
func (s *Space) RandomInto(rng *stats.RNG, c Config) {
	for r, res := range s.Resources {
		randomComposition(rng, res.Units, s.Jobs, c.Alloc[r])
	}
}

// randomComposition fills out with a uniform composition of units into
// len(out) positive parts.
func randomComposition(rng *stats.RNG, units, parts int, out []int) {
	if parts == 1 {
		out[0] = units
		return
	}
	// Sample parts-1 distinct cut points from {1, ..., units-1} with a
	// partial Fisher-Yates over the candidate positions. The position
	// scratch lives on the stack for every realistic unit count.
	n := units - 1
	k := parts - 1
	var posArr [64]int
	var pos []int
	if n <= len(posArr) {
		pos = posArr[:n]
	} else {
		pos = make([]int, n)
	}
	for i := range pos {
		pos[i] = i + 1
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		pos[i], pos[j] = pos[j], pos[i]
	}
	cuts := pos[:k]
	sortInts(cuts)
	prev := 0
	for i, cut := range cuts {
		out[i] = cut - prev
		prev = cut
	}
	out[parts-1] = units - prev
}

func sortInts(xs []int) {
	// Insertion sort: cut-point slices are tiny (jobs−1 elements).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Enumerate calls fn for every valid configuration in the space, in a
// deterministic order. If fn returns false, enumeration stops early.
// The Config passed to fn is reused between calls; clone it to retain it.
func (s *Space) Enumerate(fn func(Config) bool) {
	c := s.NewConfig()
	s.enumerateResource(0, c, fn)
}

func (s *Space) enumerateResource(r int, c Config, fn func(Config) bool) bool {
	if r == len(s.Resources) {
		return fn(c)
	}
	return enumerateCompositions(s.Resources[r].Units, s.Jobs, c.Alloc[r], 0, func() bool {
		return s.enumerateResource(r+1, c, fn)
	})
}

// enumerateCompositions iterates all ways to write units as a sum of
// parts positive integers into out[idx:], invoking next for each.
func enumerateCompositions(units, parts int, out []int, idx int, next func() bool) bool {
	if idx == parts-1 {
		out[idx] = units
		return next()
	}
	remainingParts := parts - idx - 1
	for u := 1; u <= units-remainingParts; u++ {
		out[idx] = u
		if !enumerateCompositions(units-u, parts, out, idx+1, next) {
			return false
		}
	}
	return true
}

// Distance returns the Euclidean distance between two configurations
// viewed as vectors of per-(resource, job) unit counts — the proximity
// measure of Fig. 15.
func Distance(a, b Config) float64 {
	sum := 0.0
	for r := range a.Alloc {
		for j := range a.Alloc[r] {
			d := float64(a.Alloc[r][j] - b.Alloc[r][j])
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// MaxDistance returns the largest possible Distance between two
// configurations in s (both rows fully concentrated on different jobs).
func (s *Space) MaxDistance() float64 {
	if s.Jobs < 2 {
		return 0
	}
	sum := 0.0
	for _, r := range s.Resources {
		// Extremes: job a holds U−(M−1) units vs 1 unit, job b the
		// reverse; remaining jobs hold 1 in both.
		spread := float64(r.Units - s.Jobs)
		sum += 2 * spread * spread
	}
	return math.Sqrt(sum)
}

// Vector encodes c as normalized resource shares in [0, 1]^Dim, the input
// representation used by the Gaussian-process proxy model.
func (s *Space) Vector(c Config) []float64 {
	return s.VectorInto(make([]float64, 0, s.Dim()), c)
}

// VectorInto appends c's encoding into dst[:0] and returns the resulting
// slice — the reuse-friendly variant of Vector for per-tick candidate
// scoring.
func (s *Space) VectorInto(dst []float64, c Config) []float64 {
	dst = dst[:0]
	for r, row := range c.Alloc {
		units := float64(s.Resources[r].Units)
		for _, u := range row {
			dst = append(dst, float64(u)/units)
		}
	}
	return dst
}

// Neighbors returns every configuration reachable from c by moving one
// unit of one resource from one job to another. This is the move set used
// by gradient-descent-style policies (PARTIES) and by hill-climbing oracle
// approximation.
func (s *Space) Neighbors(c Config) []Config {
	var out []Config
	for r := range c.Alloc {
		for from := 0; from < s.Jobs; from++ {
			if c.Alloc[r][from] <= 1 {
				continue // would drop below the 1-unit floor
			}
			for to := 0; to < s.Jobs; to++ {
				if to == from {
					continue
				}
				n := c.Clone()
				n.Alloc[r][from]--
				n.Alloc[r][to]++
				out = append(out, n)
			}
		}
	}
	return out
}

// Move returns a copy of c with one unit of resource r moved from job
// `from` to job `to`, and reports whether the move was legal.
func (s *Space) Move(c Config, r, from, to int) (Config, bool) {
	if r < 0 || r >= len(c.Alloc) || from == to ||
		from < 0 || from >= s.Jobs || to < 0 || to >= s.Jobs {
		return Config{}, false
	}
	if c.Alloc[r][from] <= 1 {
		return Config{}, false
	}
	n := c.Clone()
	n.Alloc[r][from]--
	n.Alloc[r][to]++
	return n, true
}

// MoveInPlace applies the one-unit move directly to c, reporting whether
// it was legal (same legality rules as Move). c is unchanged on an illegal
// move.
func (s *Space) MoveInPlace(c Config, r, from, to int) bool {
	if r < 0 || r >= len(c.Alloc) || from == to ||
		from < 0 || from >= s.Jobs || to < 0 || to >= s.Jobs {
		return false
	}
	if c.Alloc[r][from] <= 1 {
		return false
	}
	c.Alloc[r][from]--
	c.Alloc[r][to]++
	return true
}

// Imbalance returns the mean absolute deviation of c's unit shares from
// the equal split, averaged over resources and jobs. Used to construct the
// "good" low-imbalance initial sample set (Sec. V).
func (s *Space) Imbalance(c Config) float64 {
	sum := 0.0
	n := 0
	for r, row := range c.Alloc {
		equal := float64(s.Resources[r].Units) / float64(s.Jobs)
		for _, u := range row {
			sum += math.Abs(float64(u) - equal)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// InitialSet returns the SATORI initial configuration set S_init: the
// equal split plus low-imbalance perturbations of it (one unit shifted in
// a single resource), up to max configurations. The paper notes that
// seeding BO with such "good" configurations instead of random ones
// improves final quality by 1-3%.
func (s *Space) InitialSet(max int) []Config {
	if max < 1 {
		max = 1
	}
	set := []Config{s.EqualSplit()}
	seen := map[string]bool{set[0].Key(): true}
	for _, n := range s.Neighbors(set[0]) {
		if len(set) >= max {
			break
		}
		if k := n.Key(); !seen[k] {
			seen[k] = true
			set = append(set, n)
		}
	}
	return set
}

// RandomDistinct samples up to n distinct configurations uniformly at
// random (without repetition, per the Random policy definition in
// Sec. IV). If the space is smaller than n, all configurations are
// returned.
func (s *Space) RandomDistinct(rng *stats.RNG, n int) []Config {
	if size := s.Size(); size <= float64(n)*2 && size < 1<<20 {
		// Small space: enumerate then shuffle for exact sampling
		// without repetition.
		var all []Config
		s.Enumerate(func(c Config) bool {
			all = append(all, c.Clone())
			return true
		})
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		if len(all) > n {
			all = all[:n]
		}
		return all
	}
	out := make([]Config, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		c := s.Random(rng)
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}
