package resource

import "fmt"

// Grouping maps M co-located jobs many-to-one onto K ≤ M clusters — the
// LFOC-style indirection that breaks the one-job-one-CLOS wall. Real
// resctrl hardware exposes ~16 classes of service, so per-job partitions
// cannot serve more than ~15 jobs; grouping jobs into clusters lets one
// control group (one CLOS) serve a whole cluster, and lets search-based
// policies explore the much smaller cluster-allocation space.
//
// The cluster-allocation space is itself an ordinary Space through a
// change of coordinates: a cluster-level allocation u_c must satisfy
// u_c ≥ n_c (every member job needs one unit) and Σ u_c = U_r, which
// bijects onto v_c = u_c − n_c + 1 with v_c ≥ 1 and Σ v_c = U_r − M + K —
// exactly the constraint shape Space already models. ClusterSpace returns
// that reduced space, so every existing Space operation (EqualSplit,
// Random, Neighbors, Enumerate, the GP vector encoding) works over
// clusters unchanged; Expand translates a reduced cluster configuration
// back into a per-job configuration, and Aggregate inverts a per-job
// configuration into reduced cluster coordinates.
type Grouping struct {
	// JobToCluster[j] is the cluster index of job j; cluster indices are
	// contiguous in [0, Clusters) and every cluster is non-empty.
	JobToCluster []int
	// Clusters is the number of clusters K.
	Clusters int

	// sizes[c] is the member count n_c, precomputed at construction.
	sizes []int
}

// NewGrouping validates and builds a grouping from a job→cluster map.
// Cluster indices must be contiguous starting at 0 and every cluster must
// have at least one member.
func NewGrouping(jobToCluster []int) (*Grouping, error) {
	if len(jobToCluster) == 0 {
		return nil, fmt.Errorf("resource: grouping needs at least 1 job")
	}
	k := 0
	for j, c := range jobToCluster {
		if c < 0 {
			return nil, fmt.Errorf("resource: job %d has negative cluster %d", j, c)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	sizes := make([]int, k)
	for _, c := range jobToCluster {
		sizes[c]++
	}
	for c, n := range sizes {
		if n == 0 {
			return nil, fmt.Errorf("resource: cluster %d is empty (cluster indices must be contiguous)", c)
		}
	}
	return &Grouping{
		JobToCluster: append([]int(nil), jobToCluster...),
		Clusters:     k,
		sizes:        sizes,
	}, nil
}

// SingletonGrouping maps every job to its own cluster — the identity
// grouping under which clustered search is draw-identical to per-job
// search.
func SingletonGrouping(jobs int) *Grouping {
	m := make([]int, jobs)
	for j := range m {
		m[j] = j
	}
	g, err := NewGrouping(m)
	if err != nil {
		panic(err) // unreachable: the identity map is always valid
	}
	return g
}

// RoundRobinGrouping maps job j to cluster j mod k — the deterministic
// bootstrap grouping used before an online classifier has observed enough
// samples to fingerprint the jobs. k is clamped to [1, jobs].
func RoundRobinGrouping(jobs, k int) *Grouping {
	if k < 1 {
		k = 1
	}
	if k > jobs {
		k = jobs
	}
	m := make([]int, jobs)
	for j := range m {
		m[j] = j % k
	}
	g, err := NewGrouping(m)
	if err != nil {
		panic(err) // unreachable: round-robin over k ≤ jobs fills every cluster
	}
	return g
}

// Jobs returns the number of jobs M.
func (g *Grouping) Jobs() int { return len(g.JobToCluster) }

// Size returns the member count n_c of cluster c.
func (g *Grouping) Size(c int) int { return g.sizes[c] }

// IsSingleton reports whether every job has its own cluster (K = M), in
// which case ClusterSpace equals the job space and Expand/Aggregate are
// the identity.
func (g *Grouping) IsSingleton() bool { return g.Clusters == len(g.JobToCluster) }

// Equal reports whether two groupings assign identically.
func (g *Grouping) Equal(o *Grouping) bool {
	if g == nil || o == nil {
		return g == o
	}
	if g.Clusters != o.Clusters || len(g.JobToCluster) != len(o.JobToCluster) {
		return false
	}
	for j, c := range g.JobToCluster {
		if o.JobToCluster[j] != c {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (g *Grouping) Clone() *Grouping {
	return &Grouping{
		JobToCluster: append([]int(nil), g.JobToCluster...),
		Clusters:     g.Clusters,
		sizes:        append([]int(nil), g.sizes...),
	}
}

// String renders the grouping for logs: "[0 1 0 2] (3 clusters)".
func (g *Grouping) String() string {
	return fmt.Sprintf("%v (%d clusters)", g.JobToCluster, g.Clusters)
}

// ClusterSpace returns the reduced cluster-allocation space for a job
// space: Jobs = K and Units′_r = U_r − M + K (the v_c = u_c − n_c + 1
// substitution). Every valid configuration of the reduced space expands
// to a valid per-job configuration of jobSpace and vice versa.
func (g *Grouping) ClusterSpace(jobSpace *Space) (*Space, error) {
	if jobSpace.Jobs != len(g.JobToCluster) {
		return nil, fmt.Errorf("resource: grouping has %d jobs, space has %d", len(g.JobToCluster), jobSpace.Jobs)
	}
	rs := make([]Resource, len(jobSpace.Resources))
	for i, r := range jobSpace.Resources {
		rs[i] = Resource{Kind: r.Kind, Units: r.Units - jobSpace.Jobs + g.Clusters}
	}
	return NewSpace(g.Clusters, rs...)
}

// Expand translates a reduced cluster configuration into a per-job
// configuration of jobSpace: cluster c's physical total u_c = v_c + n_c − 1
// is split as evenly as possible among its members, remainder units going
// to the lowest-indexed member jobs (mirroring EqualSplit's tie-breaking).
func (g *Grouping) Expand(clusterCfg Config, jobSpace *Space) Config {
	out := jobSpace.NewConfig()
	g.ExpandInto(clusterCfg, out)
	return out
}

// ExpandInto is the allocation-free Expand variant: dst must be shaped for
// the job space.
func (g *Grouping) ExpandInto(clusterCfg Config, dst Config) {
	for r := range clusterCfg.Alloc {
		row := dst.Alloc[r]
		for j := range row {
			row[j] = 0
		}
		// First pass: every member gets the even share of its cluster's
		// physical total; remainders are handed to members in job order.
		for c, v := range clusterCfg.Alloc[r] {
			n := g.sizes[c]
			total := v + n - 1
			base := total / n
			rem := total % n
			handed := 0
			for j, jc := range g.JobToCluster {
				if jc != c {
					continue
				}
				row[j] = base
				if handed < rem {
					row[j]++
				}
				handed++
			}
		}
	}
}

// Aggregate inverts Expand: it maps a per-job configuration into reduced
// cluster coordinates, v_c = (Σ_{j∈c} u_j) − n_c + 1. Any valid per-job
// configuration aggregates to a valid reduced configuration (each member
// contributes at least one unit, so v_c ≥ 1).
func (g *Grouping) Aggregate(jobCfg Config, clusterSpace *Space) Config {
	out := clusterSpace.NewConfig()
	g.AggregateInto(jobCfg, out)
	return out
}

// AggregateInto is the allocation-free Aggregate variant: dst must be
// shaped for the cluster space.
func (g *Grouping) AggregateInto(jobCfg Config, dst Config) {
	for r := range jobCfg.Alloc {
		row := dst.Alloc[r]
		for c := range row {
			row[c] = 1 - g.sizes[c]
		}
		for j, u := range jobCfg.Alloc[r] {
			row[g.JobToCluster[j]] += u
		}
	}
}
