package resource

import "fmt"

// ConfigShapeError reports an Apply (or shape check) of a configuration
// whose dimensions do not match the live space — the typical symptom of
// a policy holding a configuration from before a job-membership change.
// It is typed so callers can distinguish "stale decision, rebuild the
// policy" from a genuinely malformed allocation. Every Platform backend
// (the simulator, the resctrl filesystem writer) rejects stale shapes
// with this same type; internal/sim and internal/rdt alias it.
type ConfigShapeError struct {
	// ConfigResources and SpaceResources are the resource-row counts of
	// the rejected configuration and the live space.
	ConfigResources, SpaceResources int
	// ConfigJobs and SpaceJobs are the job dimensions (ConfigJobs is the
	// first mismatching row's length).
	ConfigJobs, SpaceJobs int
}

// Error implements error.
func (e *ConfigShapeError) Error() string {
	return fmt.Sprintf("resource: config shape %dx%d does not match live space %dx%d (stale after job churn?)",
		e.ConfigResources, e.ConfigJobs, e.SpaceResources, e.SpaceJobs)
}

// CheckShape reports a *ConfigShapeError when c's dimensions do not match
// space (e.g. a configuration decided before churn changed the job set),
// and nil when the shape is current. It checks only dimensions, not
// allocation sums — Validate still performs full validation.
func CheckShape(space *Space, c Config) error {
	shapeErr := &ConfigShapeError{
		ConfigResources: len(c.Alloc),
		SpaceResources:  len(space.Resources),
		ConfigJobs:      space.Jobs,
		SpaceJobs:       space.Jobs,
	}
	if len(c.Alloc) != len(space.Resources) {
		if len(c.Alloc) > 0 {
			shapeErr.ConfigJobs = len(c.Alloc[0])
		}
		return shapeErr
	}
	for _, row := range c.Alloc {
		if len(row) != space.Jobs {
			shapeErr.ConfigJobs = len(row)
			return shapeErr
		}
	}
	return nil
}
