package resource

import (
	"math"
	"testing"
	"testing/quick"

	"satori/internal/stats"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	return MustNewSpace(3,
		Resource{Kind: Cores, Units: 6},
		Resource{Kind: LLCWays, Units: 4},
	)
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(0, Resource{Kind: Cores, Units: 4}); err == nil {
		t.Error("0 jobs accepted")
	}
	if _, err := NewSpace(2); err == nil {
		t.Error("no resources accepted")
	}
	if _, err := NewSpace(5, Resource{Kind: Cores, Units: 4}); err == nil {
		t.Error("more jobs than units accepted")
	}
	if _, err := NewSpace(2, Resource{Kind: Cores, Units: 2}); err != nil {
		t.Errorf("minimal space rejected: %v", err)
	}
}

func TestMustNewSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewSpace did not panic on invalid input")
		}
	}()
	MustNewSpace(0)
}

func TestSizeMatchesPaperExamples(t *testing.T) {
	// Sec. II: 3 jobs, 2 resources x 10 units -> 1,296 configurations.
	s := MustNewSpace(3,
		Resource{Kind: Cores, Units: 10},
		Resource{Kind: MemBW, Units: 10},
	)
	if got := s.Size(); got != 1296 {
		t.Errorf("3 jobs 2x10 units: Size = %g, want 1296", got)
	}
	// 4 jobs -> 7,056.
	s = MustNewSpace(4,
		Resource{Kind: Cores, Units: 10},
		Resource{Kind: MemBW, Units: 10},
	)
	if got := s.Size(); got != 7056 {
		t.Errorf("4 jobs 2x10 units: Size = %g, want 7056", got)
	}
	// Adding a third 10-unit resource -> 592,704 (the paper prints
	// "5,92,704" in Indian digit grouping).
	s = MustNewSpace(4,
		Resource{Kind: Cores, Units: 10},
		Resource{Kind: MemBW, Units: 10},
		Resource{Kind: LLCWays, Units: 10},
	)
	if got := s.Size(); got != 592704 {
		t.Errorf("4 jobs 3x10 units: Size = %g, want 592704", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {9, 4, 126}, {9, 2, 36}, {0, 0, 1},
		{3, 5, 0}, {3, -1, 0}, {10, 0, 1}, {10, 10, 1},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestEnumerateCountMatchesSize(t *testing.T) {
	s := testSpace(t)
	count := 0
	seen := map[string]bool{}
	s.Enumerate(func(c Config) bool {
		if err := s.Validate(c); err != nil {
			t.Fatalf("enumerated invalid config: %v", err)
		}
		k := c.Key()
		if seen[k] {
			t.Fatalf("duplicate config %s", k)
		}
		seen[k] = true
		count++
		return true
	})
	if want := int(s.Size()); count != want {
		t.Errorf("enumerated %d configs, Size says %d", count, want)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := testSpace(t)
	count := 0
	s.Enumerate(func(c Config) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop at %d, want 5", count)
	}
}

func TestEqualSplit(t *testing.T) {
	s := MustNewSpace(3,
		Resource{Kind: Cores, Units: 10},
		Resource{Kind: LLCWays, Units: 9},
	)
	c := s.EqualSplit()
	if err := s.Validate(c); err != nil {
		t.Fatalf("equal split invalid: %v", err)
	}
	// 10 = 4+3+3, 9 = 3+3+3.
	if c.Alloc[0][0] != 4 || c.Alloc[0][1] != 3 || c.Alloc[0][2] != 3 {
		t.Errorf("cores split = %v", c.Alloc[0])
	}
	for j := 0; j < 3; j++ {
		if c.Alloc[1][j] != 3 {
			t.Errorf("ways split = %v", c.Alloc[1])
		}
	}
}

func TestRandomConfigsValidProperty(t *testing.T) {
	s := MustNewSpace(5,
		Resource{Kind: Cores, Units: 10},
		Resource{Kind: LLCWays, Units: 11},
		Resource{Kind: MemBW, Units: 10},
	)
	rng := stats.NewRNG(1)
	for i := 0; i < 2000; i++ {
		c := s.Random(rng)
		if err := s.Validate(c); err != nil {
			t.Fatalf("random config invalid: %v", err)
		}
	}
}

func TestRandomCompositionUniformity(t *testing.T) {
	// Compositions of 4 into 2 positive parts: (1,3),(2,2),(3,1) — each
	// should appear ~1/3 of the time.
	s := MustNewSpace(2, Resource{Kind: Cores, Units: 4})
	rng := stats.NewRNG(2)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Random(rng).Key()]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected 3 compositions, saw %d: %v", len(counts), counts)
	}
	for k, c := range counts {
		frac := float64(c) / n
		if frac < 0.30 || frac > 0.37 {
			t.Errorf("composition %s frequency %g, want ~1/3", k, frac)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := testSpace(t)
	a := s.EqualSplit()
	b := a.Clone()
	b.Alloc[0][0] = 99
	if a.Alloc[0][0] == 99 {
		t.Error("Clone shares backing storage")
	}
}

func TestEqualAndKey(t *testing.T) {
	s := testSpace(t)
	a := s.EqualSplit()
	b := s.EqualSplit()
	if !a.Equal(b) {
		t.Error("identical configs not Equal")
	}
	if a.Key() != b.Key() {
		t.Error("identical configs have different keys")
	}
	c, ok := s.Move(a, 0, 0, 1)
	if !ok {
		t.Fatal("legal move rejected")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("different configs compare equal")
	}
}

func TestDistance(t *testing.T) {
	s := testSpace(t)
	a := s.EqualSplit()
	if got := Distance(a, a); got != 0 {
		t.Errorf("self distance = %g", got)
	}
	b, _ := s.Move(a, 0, 0, 1)
	// One unit moved: two coordinates change by 1 -> distance sqrt(2).
	if got := Distance(a, b); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("one-move distance = %g, want sqrt(2)", got)
	}
	// Symmetry.
	if Distance(a, b) != Distance(b, a) {
		t.Error("distance not symmetric")
	}
}

func TestMaxDistanceBoundsProperty(t *testing.T) {
	s := MustNewSpace(3,
		Resource{Kind: Cores, Units: 8},
		Resource{Kind: LLCWays, Units: 6},
	)
	maxD := s.MaxDistance()
	rng := stats.NewRNG(3)
	for i := 0; i < 1000; i++ {
		a, b := s.Random(rng), s.Random(rng)
		if d := Distance(a, b); d > maxD+1e-9 {
			t.Fatalf("distance %g exceeds MaxDistance %g for %s vs %s", d, maxD, a.Key(), b.Key())
		}
	}
	// The bound is attainable: concentrate everything on different jobs.
	a := s.NewConfig()
	b := s.NewConfig()
	for r, res := range s.Resources {
		for j := 0; j < s.Jobs; j++ {
			a.Alloc[r][j] = 1
			b.Alloc[r][j] = 1
		}
		a.Alloc[r][0] += res.Units - s.Jobs
		b.Alloc[r][1] += res.Units - s.Jobs
	}
	if d := Distance(a, b); math.Abs(d-maxD) > 1e-9 {
		t.Errorf("extreme configs distance %g != MaxDistance %g", d, maxD)
	}
}

func TestVector(t *testing.T) {
	s := testSpace(t)
	c := s.EqualSplit()
	v := s.Vector(c)
	if len(v) != s.Dim() {
		t.Fatalf("vector dim %d, want %d", len(v), s.Dim())
	}
	// Each resource's shares sum to 1.
	for r := 0; r < len(s.Resources); r++ {
		sum := 0.0
		for j := 0; j < s.Jobs; j++ {
			sum += v[r*s.Jobs+j]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("resource %d shares sum to %g", r, sum)
		}
	}
}

func TestNeighbors(t *testing.T) {
	s := MustNewSpace(2, Resource{Kind: Cores, Units: 3})
	// Config (2,1): moves possible only from job 0 -> job 1.
	c := s.NewConfig()
	c.Alloc[0][0], c.Alloc[0][1] = 2, 1
	ns := s.Neighbors(c)
	if len(ns) != 1 {
		t.Fatalf("neighbors = %d, want 1", len(ns))
	}
	if ns[0].Alloc[0][0] != 1 || ns[0].Alloc[0][1] != 2 {
		t.Errorf("neighbor = %v", ns[0].Alloc)
	}
	for _, n := range ns {
		if err := s.Validate(n); err != nil {
			t.Errorf("invalid neighbor: %v", err)
		}
	}
}

func TestNeighborsAllValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := MustNewSpace(3,
			Resource{Kind: Cores, Units: 6},
			Resource{Kind: MemBW, Units: 5},
		)
		c := s.Random(rng)
		for _, n := range s.Neighbors(c) {
			if s.Validate(n) != nil {
				return false
			}
			if math.Abs(Distance(c, n)-math.Sqrt2) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMoveIllegal(t *testing.T) {
	s := MustNewSpace(2, Resource{Kind: Cores, Units: 2})
	c := s.EqualSplit() // (1,1): no legal moves.
	if _, ok := s.Move(c, 0, 0, 1); ok {
		t.Error("move below 1-unit floor accepted")
	}
	if _, ok := s.Move(c, 0, 0, 0); ok {
		t.Error("self-move accepted")
	}
	if _, ok := s.Move(c, 5, 0, 1); ok {
		t.Error("out-of-range resource accepted")
	}
	if _, ok := s.Move(c, 0, -1, 1); ok {
		t.Error("out-of-range job accepted")
	}
}

func TestImbalance(t *testing.T) {
	s := MustNewSpace(2, Resource{Kind: Cores, Units: 4})
	if got := s.Imbalance(s.EqualSplit()); got != 0 {
		t.Errorf("equal split imbalance = %g, want 0", got)
	}
	skew := s.NewConfig()
	skew.Alloc[0][0], skew.Alloc[0][1] = 3, 1
	if got := s.Imbalance(skew); got != 1 {
		t.Errorf("skewed imbalance = %g, want 1", got)
	}
}

func TestInitialSet(t *testing.T) {
	s := MustNewSpace(3,
		Resource{Kind: Cores, Units: 9},
		Resource{Kind: LLCWays, Units: 6},
	)
	set := s.InitialSet(5)
	if len(set) != 5 {
		t.Fatalf("initial set size %d, want 5", len(set))
	}
	if !set[0].Equal(s.EqualSplit()) {
		t.Error("first initial config is not the equal split")
	}
	seen := map[string]bool{}
	for _, c := range set {
		if err := s.Validate(c); err != nil {
			t.Errorf("invalid initial config: %v", err)
		}
		if seen[c.Key()] {
			t.Errorf("duplicate initial config %s", c.Key())
		}
		seen[c.Key()] = true
	}
	if got := s.InitialSet(0); len(got) != 1 {
		t.Errorf("InitialSet(0) size = %d, want 1", len(got))
	}
}

func TestRandomDistinct(t *testing.T) {
	s := MustNewSpace(2, Resource{Kind: Cores, Units: 5}) // 4 configs total
	rng := stats.NewRNG(9)
	all := s.RandomDistinct(rng, 10)
	if len(all) != 4 {
		t.Fatalf("RandomDistinct over-small space returned %d, want all 4", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if seen[c.Key()] {
			t.Fatal("RandomDistinct repeated a config")
		}
		seen[c.Key()] = true
	}
	// Large space path.
	big := MustNewSpace(4,
		Resource{Kind: Cores, Units: 10},
		Resource{Kind: LLCWays, Units: 11},
		Resource{Kind: MemBW, Units: 10},
	)
	got := big.RandomDistinct(rng, 50)
	if len(got) != 50 {
		t.Fatalf("RandomDistinct large space returned %d, want 50", len(got))
	}
	seen = map[string]bool{}
	for _, c := range got {
		if err := big.Validate(c); err != nil {
			t.Errorf("invalid sampled config: %v", err)
		}
		if seen[c.Key()] {
			t.Error("repeat in large-space sampling")
		}
		seen[c.Key()] = true
	}
}

func TestStringRendering(t *testing.T) {
	s := testSpace(t)
	c := s.EqualSplit()
	str := s.String(c)
	if str == "" {
		t.Error("empty String rendering")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should still stringify")
	}
	for _, k := range []Kind{Cores, LLCWays, MemBW, Power} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestDimAndNewConfig(t *testing.T) {
	s := MustNewSpace(4,
		Resource{Kind: Cores, Units: 8},
		Resource{Kind: LLCWays, Units: 8},
		Resource{Kind: MemBW, Units: 8},
	)
	if s.Dim() != 12 {
		t.Errorf("Dim = %d, want 12", s.Dim())
	}
	c := s.NewConfig()
	if len(c.Alloc) != 3 || len(c.Alloc[0]) != 4 {
		t.Error("NewConfig has wrong shape")
	}
	if err := s.Validate(c); err == nil {
		t.Error("all-zero config passed validation")
	}
}

// TestRandomIntoMatchesRandom pins the RNG-draw contract: the in-place
// variant must produce the identical sample (and consume the identical
// draw sequence) as the allocating one, so hot paths can switch to it
// without perturbing seeded replays.
func TestRandomIntoMatchesRandom(t *testing.T) {
	s := testSpace(t)
	rngA := stats.NewRNG(42)
	rngB := stats.NewRNG(42)
	dst := s.NewConfig()
	for i := 0; i < 200; i++ {
		want := s.Random(rngA)
		s.RandomInto(rngB, dst)
		if !dst.Equal(want) {
			t.Fatalf("draw %d: RandomInto %v != Random %v", i, dst.Alloc, want.Alloc)
		}
	}
	// Both streams must be in the same state afterwards.
	if a, b := rngA.Intn(1<<30), rngB.Intn(1<<30); a != b {
		t.Fatalf("RNG streams diverged: %d vs %d", a, b)
	}
}

// TestMoveInPlaceMatchesMove: legality decisions and results must agree
// with Move, and illegal moves must leave the config untouched.
func TestMoveInPlaceMatchesMove(t *testing.T) {
	s := testSpace(t)
	rng := stats.NewRNG(7)
	for trial := 0; trial < 300; trial++ {
		c := s.Random(rng)
		r := rng.Intn(len(s.Resources)+1) - 1 // include an out-of-range row
		from := rng.Intn(s.Jobs + 1)
		to := rng.Intn(s.Jobs)
		moved, okWant := s.Move(c, r, from, to)
		got := c.Clone()
		ok := s.MoveInPlace(got, r, from, to)
		if ok != okWant {
			t.Fatalf("trial %d: legality mismatch: in-place %v vs Move %v", trial, ok, okWant)
		}
		if ok && !got.Equal(moved) {
			t.Fatalf("trial %d: results differ: %v vs %v", trial, got.Alloc, moved.Alloc)
		}
		if !ok && !got.Equal(c) {
			t.Fatalf("trial %d: illegal move mutated the config", trial)
		}
	}
}

// TestVectorIntoMatchesVector: the reuse variant must produce the same
// encoding and not allocate once the buffer is warm.
func TestVectorIntoMatchesVector(t *testing.T) {
	s := testSpace(t)
	rng := stats.NewRNG(9)
	buf := make([]float64, 0, s.Dim())
	for i := 0; i < 50; i++ {
		c := s.Random(rng)
		want := s.Vector(c)
		buf = s.VectorInto(buf, c)
		if len(buf) != len(want) {
			t.Fatalf("length %d != %d", len(buf), len(want))
		}
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("component %d: %g != %g", j, buf[j], want[j])
			}
		}
	}
	c := s.EqualSplit()
	if n := testing.AllocsPerRun(50, func() { buf = s.VectorInto(buf, c) }); n != 0 {
		t.Errorf("warm VectorInto allocates %v times per call", n)
	}
}

// TestCopyFrom copies values, not aliases, and panics on shape mismatch.
func TestCopyFrom(t *testing.T) {
	s := testSpace(t)
	rng := stats.NewRNG(11)
	src := s.Random(rng)
	dst := s.NewConfig()
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom did not copy values")
	}
	dst.Alloc[0][0]++
	if dst.Equal(src) {
		t.Fatal("CopyFrom aliased the source storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	bad := Config{Alloc: [][]int{{1}}}
	bad.CopyFrom(src)
}
