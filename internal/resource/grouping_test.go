package resource

import (
	"testing"

	"satori/internal/stats"
)

func TestNewGroupingValidation(t *testing.T) {
	cases := []struct {
		name string
		m    []int
		ok   bool
	}{
		{"empty", nil, false},
		{"negative", []int{0, -1}, false},
		{"gap", []int{0, 2}, false}, // cluster 1 empty
		{"identity", []int{0, 1, 2}, true},
		{"many-to-one", []int{0, 1, 0, 1}, true},
	}
	for _, c := range cases {
		g, err := NewGrouping(c.m)
		if c.ok != (err == nil) {
			t.Errorf("%s: NewGrouping(%v) err = %v, want ok=%v", c.name, c.m, err, c.ok)
		}
		if err == nil && g.Jobs() != len(c.m) {
			t.Errorf("%s: Jobs() = %d, want %d", c.name, g.Jobs(), len(c.m))
		}
	}
}

func TestGroupingHelpers(t *testing.T) {
	g, err := NewGrouping([]int{0, 1, 0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Clusters != 3 || g.Size(0) != 2 || g.Size(1) != 2 || g.Size(2) != 1 {
		t.Fatalf("sizes wrong: %+v", g)
	}
	if g.IsSingleton() {
		t.Error("5 jobs in 3 clusters reported singleton")
	}
	if !SingletonGrouping(4).IsSingleton() {
		t.Error("SingletonGrouping not singleton")
	}
	rr := RoundRobinGrouping(5, 2)
	if rr.Clusters != 2 || rr.JobToCluster[4] != 0 {
		t.Fatalf("round-robin wrong: %+v", rr)
	}
	if rr.Equal(g) {
		t.Error("distinct groupings reported equal")
	}
	if !g.Equal(g.Clone()) {
		t.Error("clone not equal to original")
	}
	// Clamping.
	if k := RoundRobinGrouping(3, 8).Clusters; k != 3 {
		t.Errorf("RoundRobinGrouping(3, 8).Clusters = %d, want 3", k)
	}
	if k := RoundRobinGrouping(3, 0).Clusters; k != 1 {
		t.Errorf("RoundRobinGrouping(3, 0).Clusters = %d, want 1", k)
	}
}

// TestClusterSpaceDimensions checks the v = u − n + 1 substitution:
// Units′ = U − M + K per resource, Jobs′ = K.
func TestClusterSpaceDimensions(t *testing.T) {
	job := MustNewSpace(6,
		Resource{Cores, 12}, Resource{LLCWays, 11}, Resource{MemBW, 10})
	g := RoundRobinGrouping(6, 3)
	cs, err := g.ClusterSpace(job)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Jobs != 3 {
		t.Fatalf("cluster space jobs = %d, want 3", cs.Jobs)
	}
	for i, want := range []int{12 - 6 + 3, 11 - 6 + 3, 10 - 6 + 3} {
		if cs.Resources[i].Units != want {
			t.Errorf("resource %d units = %d, want %d", i, cs.Resources[i].Units, want)
		}
	}
	if _, err := RoundRobinGrouping(4, 2).ClusterSpace(job); err == nil {
		t.Error("mismatched job count accepted")
	}
	// Singleton grouping: the reduced space IS the job space.
	ss, err := SingletonGrouping(6).ClusterSpace(job)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Jobs != job.Jobs || ss.Resources[0].Units != job.Resources[0].Units {
		t.Errorf("singleton cluster space differs from job space: %+v", ss)
	}
}

// TestExpandAggregateRoundTrip enumerates the full reduced space and
// checks that every reduced configuration expands to a valid per-job
// configuration and aggregates back bit-exactly.
func TestExpandAggregateRoundTrip(t *testing.T) {
	job := MustNewSpace(5, Resource{Cores, 8}, Resource{LLCWays, 7})
	g, err := NewGrouping([]int{0, 1, 0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := g.ClusterSpace(job)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	cs.Enumerate(func(cc Config) bool {
		jc := g.Expand(cc, job)
		if err := job.Validate(jc); err != nil {
			t.Fatalf("expanded config invalid: %v (cluster %v)", err, cc.Alloc)
		}
		back := g.Aggregate(jc, cs)
		if !back.Equal(cc) {
			t.Fatalf("round trip: %v -> %v -> %v", cc.Alloc, jc.Alloc, back.Alloc)
		}
		checked++
		return true
	})
	if checked == 0 {
		t.Fatal("enumerated nothing")
	}
}

// TestExpandRemainderOrder pins the deterministic within-cluster split:
// remainders go to the lowest-indexed member jobs.
func TestExpandRemainderOrder(t *testing.T) {
	job := MustNewSpace(4, Resource{Cores, 9})
	g, err := NewGrouping([]int{0, 1, 0, 0}) // cluster 0 = jobs {0,2,3}
	if err != nil {
		t.Fatal(err)
	}
	cs, err := g.ClusterSpace(job)
	if err != nil {
		t.Fatal(err)
	}
	cc := cs.NewConfig()
	cc.Alloc[0][0] = 5 // physical total 5+3-1 = 7 over 3 members -> 3,2,2
	cc.Alloc[0][1] = 2 // physical total 2+1-1 = 2
	if err := cs.Validate(cc); err != nil {
		t.Fatal(err)
	}
	jc := g.Expand(cc, job)
	want := []int{3, 2, 2, 2}
	for j, u := range want {
		if jc.Alloc[0][j] != u {
			t.Fatalf("expanded row = %v, want %v", jc.Alloc[0], want)
		}
	}
}

// TestSingletonExpandIdentity: under the identity grouping Expand and
// Aggregate are the identity map — the contract behind clustered SATORI
// being draw-identical to per-job SATORI when K ≥ jobs.
func TestSingletonExpandIdentity(t *testing.T) {
	job := MustNewSpace(4, Resource{Cores, 10}, Resource{LLCWays, 11}, Resource{MemBW, 10})
	g := SingletonGrouping(4)
	cs, err := g.ClusterSpace(job)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	for i := 0; i < 50; i++ {
		c := job.Random(rng)
		if got := g.Expand(c, job); !got.Equal(c) {
			t.Fatalf("Expand not identity: %v -> %v", c.Alloc, got.Alloc)
		}
		if got := g.Aggregate(c, cs); !got.Equal(c) {
			t.Fatalf("Aggregate not identity: %v -> %v", c.Alloc, got.Alloc)
		}
	}
}
