package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// NodeView is the read-only snapshot of one node a Placer decides from.
// Snapshots are taken between ticks (never during the parallel step
// phase), so placers see a consistent, deterministic fleet state.
type NodeView struct {
	// ID is the node index.
	ID int
	// Jobs is the number of jobs currently running on the node.
	Jobs int
	// Capacity is the node's admission limit.
	Capacity int
	// Cores is the node's physical core count.
	Cores int
	// Speedups holds the node's last-tick per-job speedups, or nil when
	// the node has not completed a tick with its current job set (fresh
	// node, or membership changed since the last tick). Treat as
	// read-only.
	Speedups []float64
}

// free reports whether the node can admit one more job.
func (v NodeView) free() bool { return v.Jobs < v.Capacity }

// Placer chooses the node an incoming job is admitted to. Place returns
// the node index, or -1 when no node has capacity (the job stays queued).
// Implementations must be deterministic functions of (job, nodes).
type Placer interface {
	Name() string
	Place(job *Job, nodes []NodeView) int
}

// RoundRobin cycles through nodes in index order, skipping full ones —
// the classic baseline placement.
type RoundRobin struct{ cursor int }

// Name implements Placer.
func (*RoundRobin) Name() string { return "round-robin" }

// Place implements Placer.
func (p *RoundRobin) Place(_ *Job, nodes []NodeView) int {
	for i := 0; i < len(nodes); i++ {
		idx := (p.cursor + i) % len(nodes)
		if nodes[idx].free() {
			p.cursor = idx + 1
			return idx
		}
	}
	return -1
}

// LeastLoadedCores admits the job to the node with the fewest jobs per
// physical core, ties broken by lowest node index — a load balancer that
// sees machine size but not performance.
type LeastLoadedCores struct{}

// Name implements Placer.
func (LeastLoadedCores) Name() string { return "least-loaded" }

// Place implements Placer.
func (LeastLoadedCores) Place(_ *Job, nodes []NodeView) int {
	best := -1
	bestLoad := 0.0
	for _, v := range nodes {
		if !v.free() {
			continue
		}
		load := float64(v.Jobs) / float64(v.Cores)
		if best < 0 || load < bestLoad {
			best, bestLoad = v.ID, load
		}
	}
	return best
}

// FairnessAware admits the job to the node where it least depresses the
// predicted fleet-wide Jain's index. The prediction is model-light: a
// node running k jobs that admits one more re-splits its partition, so
// each resident job's speedup is scaled by k/(k+1) and the newcomer is
// predicted at 1/(k+1) (its equal share of the machine); nodes that have
// not reported speedups yet are assumed at their equal split. The placer
// then scores the Jain's index over every running job fleet-wide plus the
// newcomer, and picks the argmax (ties: lowest node index).
type FairnessAware struct{}

// Name implements Placer.
func (FairnessAware) Name() string { return "fairness" }

// Place implements Placer. Candidates within a 1e-12 band of the best
// predicted Jain tie-break by load (jobs per core, then lowest index):
// degenerate predictions — e.g. every reported speedup zero because the
// fleet's jobs are fully stalled — score all candidates identically, and
// without the tie-break the placer silently collapsed to lowest-index
// packing, the exact opposite of fairness-aware spreading.
func (FairnessAware) Place(_ *Job, nodes []NodeView) int {
	best := -1
	bestJain := 0.0
	bestLoad := 0.0
	for _, cand := range nodes {
		if !cand.free() {
			continue
		}
		jain := predictedJain(nodes, cand.ID)
		load := float64(cand.Jobs) / float64(cand.Cores)
		better := best < 0 || jain > bestJain+1e-12 ||
			(jain > bestJain-1e-12 && load < bestLoad)
		if better {
			best, bestJain, bestLoad = cand.ID, jain, load
		}
	}
	return best
}

// predictedJain scores the fleet's Jain index if the incoming job joined
// node cand.
func predictedJain(nodes []NodeView, cand int) float64 {
	var sum, sumSq float64
	n := 0
	add := func(s float64) {
		sum += s
		sumSq += s * s
		n++
	}
	for _, v := range nodes {
		scale := 1.0
		if v.ID == cand {
			scale = float64(v.Jobs) / float64(v.Jobs+1)
		}
		if len(v.Speedups) == v.Jobs {
			for _, s := range v.Speedups {
				add(s * scale)
			}
		} else {
			// No fresh measurement: assume the equal split's 1/k share.
			for j := 0; j < v.Jobs; j++ {
				add(scale / float64(v.Jobs))
			}
		}
		if v.ID == cand {
			add(1 / float64(v.Jobs+1)) // the newcomer's predicted share
		}
	}
	if n == 0 || sum == 0 {
		// Degenerate: nothing to score (free candidates always contribute
		// the newcomer's positive share, so sum == 0 needs an empty node
		// list). Every candidate scoring here ties at 1 and Place's load
		// tie-break decides.
		return 1
	}
	// Jain = (Σs)² / (n·Σs²), the 1/(1+CoV²) identity.
	return sum * sum / (float64(n) * sumSq)
}

// placerRegistry mirrors the policy registry's shape: one shared
// name→constructor table for every front-end.
var placerRegistry = map[string]func() Placer{
	"round-robin":  func() Placer { return &RoundRobin{} },
	"least-loaded": func() Placer { return LeastLoadedCores{} },
	"fairness":     func() Placer { return FairnessAware{} },
}

// PlacerNames lists every registered placer, sorted.
func PlacerNames() []string {
	names := make([]string, 0, len(placerRegistry))
	for name := range placerRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PlacerByName resolves a placer name, erroring with the sorted list of
// valid names on unknown input.
func PlacerByName(name string) (Placer, error) {
	ctor, ok := placerRegistry[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown placer %q (valid: %s)",
			name, strings.Join(PlacerNames(), ", "))
	}
	return ctor(), nil
}
