// Package fleet scales the single-machine SATORI reproduction to a
// deterministic multi-node cluster under job churn — the datacenter
// setting the paper motivates (Sec. I) but does not evaluate.
//
// A Cluster runs N Nodes in lockstep 100 ms ticks. Each node is one
// complete SATORI stack — a sim.Simulator behind an rdt.SimPlatform,
// driven by its own policy engine through internal/control's
// backend-agnostic loop (the same loop behind satori.Session) —
// exactly the per-node decomposition POP (Narayanan et al.) shows is
// near-optimal for large resource-allocation problems. A JobStream feeds
// Poisson arrivals with bounded service times into a Placer, which picks
// the node each job co-locates on; departures and arrivals trigger the
// session layer's membership-change path (baseline re-measurement +
// engine re-initialization on the re-dimensioned space).
//
// Determinism contract: every node derives all of its randomness from its
// own seed (mixed from the fleet seed, node index and session
// generation), the stream draws arrival/service/profile randomness from
// its own RNG at arrival time, placement runs between ticks on snapshots
// — in POP-style shards owning disjoint node sets (see shard.go) — and
// aggregation iterates nodes and shards in index order. Shard placement
// and node stepping fan out on the harness's bounded worker pool, so any
// -workers value and any shard-completion interleaving produce
// byte-identical output; workers only change wall-clock time. With
// Options.EventDriven, idle nodes defer ticks on promises from their
// control loop and replay them lazily in batches, so per-tick cost
// tracks fleet activity instead of fleet size.
package fleet

import (
	"errors"
	"fmt"
	"math"

	"satori/internal/control"
	"satori/internal/harness"
	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/trace"
)

// Options configures a Cluster.
type Options struct {
	// Nodes is the cluster size (required, ≥ 1).
	Nodes int
	// Machine is the per-node hardware shape (default sim.DefaultMachine).
	Machine *sim.MachineSpec
	// Policy is the per-node partitioning policy, by registry name
	// (default "satori"; see harness.PolicyNames).
	Policy string
	// Placer selects the admission strategy, by name (default
	// "round-robin"; see PlacerNames).
	Placer string
	// Seed drives the whole fleet; equal seeds replay identically.
	Seed uint64
	// NoiseSigma forwards to each node's simulator (0 = default 2%,
	// negative = noise-free).
	NoiseSigma float64
	// Stream tunes job churn. Stream.Seed defaults to Seed so one knob
	// reproduces the whole run.
	Stream StreamOptions
	// MaxJobsPerNode caps co-location degree per node (default 5, the
	// paper's PARSEC mix size; always clamped to what the machine can
	// partition — one unit of every resource per job).
	MaxJobsPerNode int
	// Workers bounds the per-tick node-stepping pool, following the
	// harness convention: 0 = one worker per CPU, 1 = serial.
	Workers int
	// Shards partitions placement into k independent POP-style
	// subproblems (see shard.go); clamped to [1, Nodes], default 1 —
	// a single shard over every node, the pre-sharding behavior.
	Shards int
	// EventDriven makes nodes with nothing going on — no churn, no phase
	// change, no pending baseline refresh — skip their detailed tick on
	// an idle promise from the control loop (control.Loop.IdleHorizon)
	// and catch up lazily in one batched AdvanceIdle before their next
	// detailed step or churn event. Per-tick fleet cost then tracks
	// *activity*, not fleet size. Trace rows hold a skipped node's last
	// reported metrics, so event-driven traces are an approximation of
	// (not byte-identical to) lockstep traces; determinism across worker
	// counts and shard parallelism is unchanged.
	EventDriven bool
	// WrapPlatform, when non-nil, wraps each node's freshly built
	// platform before the control loop boots on it — the seam fault
	// injection (rdt.FaultInjector) and instrumentation hook into.
	WrapPlatform func(node int, p rdt.Platform) rdt.Platform
}

// node is one machine of the fleet: a control loop (nil while idle) plus
// the jobs occupying its slots, in loop slot order.
type node struct {
	id      int
	machine sim.MachineSpec
	jobs    []*Job
	loop    *control.Loop
	gen     int // session generations, for churn-independent seeding
	last    control.Status
	hasLast bool // last is valid for the current job set

	// Event-driven stepping state: skip is the remaining idle promise
	// (ticks this node may defer), owed counts deferred ticks not yet
	// settled, skipped accumulates over the run for Summary.
	skip    int
	owed    int
	skipped int

	// agg caches this node's contribution to the event-driven fleet
	// aggregates, so skipped nodes cost O(1) at aggregation time instead
	// of O(jobs). Valid only while last is unchanged.
	agg      nodeAgg
	aggValid bool
}

// nodeAgg is a node's pre-reduced share of the fleet metrics: the sums
// the Jain index and geometric mean decompose into. nonPos records a
// non-positive speedup, which zeroes the geomean exactly as
// stats.GeoMean does.
type nodeAgg struct {
	jobs   int
	sumIPS float64
	sumS   float64
	sumS2  float64
	sumLog float64
	nonPos bool
}

func buildAgg(st control.Status) nodeAgg {
	a := nodeAgg{jobs: len(st.Speedups), sumIPS: stats.Sum(st.IPS)}
	for _, s := range st.Speedups {
		a.sumS += s
		a.sumS2 += s * s
		if s <= 0 {
			a.nonPos = true
		} else {
			a.sumLog += math.Log(s)
		}
	}
	return a
}

// Cluster is a fleet of nodes advanced in lockstep ticks.
type Cluster struct {
	opt     Options
	machine sim.MachineSpec
	maxJobs int
	nodes   []*node
	stream  *JobStream
	shards  []*shard // placement subproblems; len 1 = unsharded

	ticks  int
	series *trace.Series
	err    error // first fatal Step error; the cluster is halted after it

	accSum, accGeo, accJain stats.Welford
	busyTicks               int
	accAttain               stats.Welford // fleet attainment over LC ticks
	violNodeTicks           int           // Σ violating-node counts over the run
	arrived, placed, done   int
	maxQueue                int
}

// ErrHalted wraps the error a Step after a fatal failure returns: the
// first failure is terminal by contract. The failed tick itself was
// accounted (tick counter advanced, trace row recorded with the healthy
// nodes' results), so a caller that blindly retries cannot double-step
// the fleet — it gets this error instead.
var ErrHalted = errors.New("fleet: cluster halted by a previous fatal error")

// fleetColumns is the per-tick CSV schema.
var fleetColumns = []string{
	"tick", "time", "jobs", "queued", "arrivals", "departures",
	"sumips", "geomean", "jain", "lcnodes", "sloviol", "attainment",
}

// New builds a cluster. Policy and placer names are resolved eagerly so
// typos fail before any simulation state exists.
func New(opt Options) (*Cluster, error) {
	if opt.Nodes < 1 {
		return nil, fmt.Errorf("fleet: Options.Nodes must be >= 1, got %d", opt.Nodes)
	}
	if opt.Policy == "" {
		opt.Policy = "satori"
	}
	if opt.Placer == "" {
		opt.Placer = "round-robin"
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Stream.Seed == 0 {
		opt.Stream.Seed = opt.Seed
	}
	// Resolve the policy once for validation; nodes rebuild per session
	// with their own seeds.
	if _, err := harness.PolicyByName(opt.Policy); err != nil {
		return nil, err
	}
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	if opt.Shards > opt.Nodes {
		opt.Shards = opt.Nodes
	}
	machine := sim.DefaultMachine()
	if opt.Machine != nil {
		machine = *opt.Machine
	}
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	stream, err := NewJobStream(opt.Stream)
	if err != nil {
		return nil, err
	}
	maxJobs := opt.MaxJobsPerNode
	if maxJobs <= 0 {
		maxJobs = 5
	}
	// A node can partition at most min(units) jobs — every job needs one
	// unit of every resource.
	hardCap := machine.Cores
	if machine.LLCWays < hardCap {
		hardCap = machine.LLCWays
	}
	if machine.MemBWUnits < hardCap {
		hardCap = machine.MemBWUnits
	}
	if machine.PowerUnits > 0 && machine.PowerUnits < hardCap {
		hardCap = machine.PowerUnits
	}
	if maxJobs > hardCap {
		maxJobs = hardCap
	}
	shards, err := buildShards(opt.Seed, opt.Nodes, opt.Shards, opt.Placer)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		opt:     opt,
		machine: machine,
		maxJobs: maxJobs,
		stream:  stream,
		shards:  shards,
		series:  trace.NewSeries(fleetColumns...),
	}
	for i := 0; i < opt.Nodes; i++ {
		c.nodes = append(c.nodes, &node{id: i, machine: machine})
	}
	return c, nil
}

// nodeSeed mixes the fleet seed with a node's identity and session
// generation (splitmix64 finalizer), so node sessions draw independent
// streams that do not depend on placement history elsewhere in the fleet.
func nodeSeed(base uint64, id, gen int) uint64 {
	x := base + 0x9E3779B97F4A7C15*uint64(id+1) + 0xD1B54A32D192ED03*uint64(gen+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // the session layer maps seed 0 to 1; keep streams distinct
	}
	return x
}

// TickStats is one tick's fleet-level outcome.
type TickStats struct {
	// Tick counts completed lockstep intervals; Time is Tick in seconds.
	Tick int
	Time float64
	// Running and Queued are the job counts after this tick's churn.
	Running, Queued int
	// Arrivals and Departures count this tick's churn events.
	Arrivals, Departures int
	// SumIPS is the fleet-wide sum of per-job IPS this tick.
	SumIPS float64
	// GeoMeanSpeedup is the geometric mean speedup over all running jobs.
	GeoMeanSpeedup float64
	// Jain is Jain's fairness index over all running jobs' speedups
	// (1 when the fleet is empty).
	Jain float64
	// LCNodes counts nodes currently tracking latency-critical jobs;
	// SLOViolatingNodes counts those whose hysteretic detector reports a
	// persistent violation. Both stay 0 for batch-only fleets.
	LCNodes, SLOViolatingNodes int
	// SLOAttainment is the mean per-node SLO attainment over LC nodes
	// (1 when the fleet tracks none).
	SLOAttainment float64
}

// Step advances the whole fleet one 100 ms tick: process departures,
// route arrivals to their shards, run each shard's placement loop (in
// parallel on the worker pool), step every node (likewise), then
// aggregate fleet metrics in node order.
//
// Errors are terminal by contract: the first failing Step halts the
// cluster and every later Step reports ErrHalted. A failure during the
// node-stepping phase still accounts its tick — the counter advances and
// the trace row is recorded with the healthy nodes' results — so the
// tick counter, Series() and node state can never desync, and a caller
// that retries cannot double-step the fleet.
func (c *Cluster) Step() (TickStats, error) {
	if c.err != nil {
		return TickStats{}, fmt.Errorf("%w: %v", ErrHalted, c.err)
	}
	now := float64(c.ticks) * sim.TickSeconds
	st := TickStats{Tick: c.ticks + 1, Time: now + sim.TickSeconds}

	// (1) Departures: evict every job whose service time has elapsed.
	// Slots are removed in descending order so indices stay valid; the
	// session's membership path re-measures baselines and rebuilds the
	// engine on the shrunken space.
	for _, n := range c.nodes {
		for slot := len(n.jobs) - 1; slot >= 0; slot-- {
			if n.jobs[slot].Departs > now+1e-9 {
				continue
			}
			if err := n.evict(slot); err != nil {
				c.err = fmt.Errorf("fleet: node %d evict: %w", n.id, err)
				return st, c.err
			}
			st.Departures++
			c.done++
		}
	}

	// (2) Arrivals are routed to their shard's FIFO queue by a seeded
	// hash of the job ID — a pure function of the stream, never of
	// placement history.
	arrivals := c.stream.ArrivalsUntil(now)
	st.Arrivals = len(arrivals)
	c.arrived += len(arrivals)
	for _, job := range arrivals {
		s := c.shardOf(job)
		s.queue = append(s.queue, job)
	}

	// (3) Placement, one independent subproblem per shard. Shards own
	// disjoint node sets and queues, so they place concurrently; the
	// recombination is the union, with bookkeeping folded in shard order.
	placedBy := make([]int, len(c.shards))
	if err := harness.ForEach(c.opt.Workers, len(c.shards), func(s int) error {
		n, err := c.placeShard(c.shards[s], now)
		placedBy[s] = n
		return err
	}); err != nil {
		c.err = fmt.Errorf("fleet: admit: %w", err)
		return st, c.err
	}
	for _, n := range placedBy {
		c.placed += n
	}
	if q := c.queued(); q > c.maxQueue {
		c.maxQueue = q
	}

	// (4) Lockstep node tick on the bounded worker pool. Each node only
	// touches its own state; ForEach guarantees the lowest-index error.
	// The tick is accounted and its row recorded even when a node fails —
	// the healthy nodes advanced, and pretending otherwise is the
	// retry-double-step bug this path once had.
	stepErr := harness.ForEach(c.opt.Workers, len(c.nodes), func(i int) error {
		return c.nodes[i].step(c.opt.EventDriven)
	})
	c.ticks++

	// (5) Fleet aggregation, strictly in node order. Event-driven runs
	// reduce per-node cached partials — O(active nodes) instead of
	// O(total jobs), which is what lets the tick cost track activity at
	// 10k nodes — the Jain index and geomean decompose exactly into the
	// cached sums (up to float association; lockstep keeps the
	// concatenated-slice arithmetic unchanged). Both reductions run in
	// fixed node order, so output stays independent of worker count.
	st.Queued = c.queued()
	st.Jain = 1.0
	if c.opt.EventDriven {
		var agg nodeAgg
		for _, n := range c.nodes {
			st.Running += len(n.jobs)
			if !n.hasLast {
				continue
			}
			if !n.aggValid {
				n.agg = buildAgg(n.last)
				n.aggValid = true
			}
			agg.jobs += n.agg.jobs
			agg.sumIPS += n.agg.sumIPS
			agg.sumS += n.agg.sumS
			agg.sumS2 += n.agg.sumS2
			agg.sumLog += n.agg.sumLog
			agg.nonPos = agg.nonPos || n.agg.nonPos
		}
		st.SumIPS = agg.sumIPS
		if agg.jobs > 0 {
			if !agg.nonPos {
				st.GeoMeanSpeedup = math.Exp(agg.sumLog / float64(agg.jobs))
			}
			// (Σs)²/(n·Σs²) is Jain's index; a zero sum means every
			// speedup is zero, which the CoV form treats as perfectly
			// fair (mean-zero guard).
			if agg.sumS > 0 {
				st.Jain = agg.sumS * agg.sumS / (float64(agg.jobs) * agg.sumS2)
			}
			c.accSum.Add(st.SumIPS)
			c.accGeo.Add(st.GeoMeanSpeedup)
			c.accJain.Add(st.Jain)
			c.busyTicks++
		}
	} else {
		var ips, speedups []float64
		for _, n := range c.nodes {
			st.Running += len(n.jobs)
			if !n.hasLast {
				continue
			}
			ips = append(ips, n.last.IPS...)
			speedups = append(speedups, n.last.Speedups...)
		}
		st.SumIPS = stats.Sum(ips)
		st.GeoMeanSpeedup = stats.GeoMean(speedups)
		if len(speedups) > 0 {
			st.Jain = metrics.Jain(speedups)
			c.accSum.Add(st.SumIPS)
			c.accGeo.Add(st.GeoMeanSpeedup)
			c.accJain.Add(st.Jain)
			c.busyTicks++
		}
	}
	// SLO reduction: O(1) per node off the cached last status, in fixed
	// node order like the metric reductions above. A skipped node's held
	// status carries its held attainment, matching the loop's own
	// SkipIdle accounting.
	st.SLOAttainment = 1
	attainSum := 0.0
	for _, n := range c.nodes {
		if !n.hasLast || len(n.last.P99) == 0 {
			continue
		}
		st.LCNodes++
		attainSum += n.last.SLOAttainment
		if n.last.SLOViolating {
			st.SLOViolatingNodes++
		}
	}
	if st.LCNodes > 0 {
		st.SLOAttainment = attainSum / float64(st.LCNodes)
		c.accAttain.Add(st.SLOAttainment)
		c.violNodeTicks += st.SLOViolatingNodes
	}
	c.series.Add(float64(st.Tick), st.Time, float64(st.Running), float64(st.Queued),
		float64(st.Arrivals), float64(st.Departures), st.SumIPS, st.GeoMeanSpeedup, st.Jain,
		float64(st.LCNodes), float64(st.SLOViolatingNodes), st.SLOAttainment)
	if stepErr != nil {
		c.err = stepErr
		return st, stepErr
	}
	return st, nil
}

// Run advances n ticks, returning the last tick's stats.
func (c *Cluster) Run(n int) (TickStats, error) {
	var last TickStats
	var err error
	for i := 0; i < n; i++ {
		last, err = c.Step()
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// Series returns the per-tick fleet trace (CSV via trace.Series).
func (c *Cluster) Series() *trace.Series { return c.series }

// Ticks returns the number of completed fleet ticks.
func (c *Cluster) Ticks() int { return c.ticks }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// ShardCount returns the number of placement shards (after clamping).
func (c *Cluster) ShardCount() int { return len(c.shards) }

// Summary aggregates a fleet run.
type Summary struct {
	// Ticks is the number of completed intervals; BusyTicks counts those
	// with at least one running job (the means below average over them).
	Ticks, BusyTicks int
	// Arrived, Placed and Departed count stream jobs over the run.
	Arrived, Placed, Departed int
	// Running and Queued are the current job counts.
	Running, Queued int
	// MaxQueue is the high-water mark of the admission queue.
	MaxQueue int
	// MeanSumIPS, MeanGeoMean and MeanJain are busy-tick averages of the
	// fleet metrics.
	MeanSumIPS, MeanGeoMean, MeanJain float64
	// SkippedNodeTicks counts node-ticks deferred on idle promises over
	// the run (0 unless Options.EventDriven).
	SkippedNodeTicks int
	// LCTicks counts ticks with at least one node tracking
	// latency-critical jobs; MeanSLOAttainment averages the fleet
	// attainment over them and SLOViolatingNodeTicks sums the
	// violating-node counts. All zero for batch-only fleets.
	LCTicks               int
	MeanSLOAttainment     float64
	SLOViolatingNodeTicks int
}

// Summary returns the running aggregate.
func (c *Cluster) Summary() Summary {
	s := Summary{
		Ticks: c.ticks, BusyTicks: c.busyTicks,
		Arrived: c.arrived, Placed: c.placed, Departed: c.done,
		Queued: c.queued(), MaxQueue: c.maxQueue,
		MeanSumIPS: c.accSum.Mean(), MeanGeoMean: c.accGeo.Mean(), MeanJain: c.accJain.Mean(),
		LCTicks: c.accAttain.N(), MeanSLOAttainment: c.accAttain.Mean(),
		SLOViolatingNodeTicks: c.violNodeTicks,
	}
	for _, n := range c.nodes {
		s.Running += len(n.jobs)
		s.SkippedNodeTicks += n.skipped
	}
	return s
}

// String renders the summary. The skipped and SLO counters appear only
// when those subsystems were active, so lockstep batch-only runs render
// as before.
func (s Summary) String() string {
	out := fmt.Sprintf("ticks=%d jobs arrived=%d placed=%d departed=%d running=%d queued=%d (peak %d) | sumips=%.3g geomean=%.3f jain=%.3f",
		s.Ticks, s.Arrived, s.Placed, s.Departed, s.Running, s.Queued, s.MaxQueue,
		s.MeanSumIPS, s.MeanGeoMean, s.MeanJain)
	if s.SkippedNodeTicks > 0 {
		out += fmt.Sprintf(" skipped=%d", s.SkippedNodeTicks)
	}
	if s.LCTicks > 0 {
		out += fmt.Sprintf(" slo-attainment=%.3f slo-violating-node-ticks=%d",
			s.MeanSLOAttainment, s.SLOViolatingNodeTicks)
	}
	return out
}

// admit places job on the node at time now: the first job of an idle node
// boots a fresh control loop on a fresh simulator; later jobs go through
// the loop's AddJob churn path (re-split, baseline re-measurement, engine
// re-initialization on the re-dimensioned space).
func (n *node) admit(job *Job, now float64, opt Options) error {
	if len(n.jobs) == 0 {
		seed := nodeSeed(opt.Seed, n.id, n.gen)
		n.gen++
		factory, err := harness.PolicyByName(opt.Policy)
		if err != nil {
			return err
		}
		simulator, err := sim.New(n.machine, []*sim.Profile{job.Profile},
			sim.Options{Seed: seed, NoiseSigma: opt.NoiseSigma})
		if err != nil {
			return err
		}
		platform, err := rdt.NewSimPlatform(simulator)
		if err != nil {
			return err
		}
		// The policy factory builds on the bare simulator platform; the
		// loop drives the (possibly wrapped) one — the same split the
		// harness uses for fault-injection runs.
		var loopPlatform rdt.Platform = platform
		if opt.WrapPlatform != nil {
			loopPlatform = opt.WrapPlatform(n.id, loopPlatform)
		}
		loop, err := control.New(control.Options{
			Platform: loopPlatform,
			Policy:   func(rdt.Platform) (policy.Policy, error) { return factory(platform, seed) },
			// Sampled simulation is default-on for fleet runs: node ticks
			// are bit-identical either way on the sim backend, and
			// phase-stable nodes skip the detailed model evaluation. The
			// revalidation cadence is stretched to the equalization
			// period — the boundary forces a detailed tick anyway, and
			// the default MaxRun of 20 would cut every idle promise to a
			// twentieth of the period.
			Sampling: control.SamplingOptions{Enabled: true, MaxRun: 100},
		})
		if err != nil {
			return err
		}
		n.loop = loop
	} else {
		// An idle promise never spans churn: replay any deferred ticks so
		// the loop's clock is current before the membership change.
		if err := n.flush(); err != nil {
			return err
		}
		if err := n.loop.AddJob(job.Profile); err != nil {
			return err
		}
	}
	job.Node = n.id
	job.PlacedAt = now
	job.Departs = now + job.Duration
	n.jobs = append(n.jobs, job)
	n.hasLast = false // membership changed; last tick's arrays are stale
	return nil
}

// evict removes the job in the given slot; the last job tears the whole
// loop down (a machine with zero jobs has no configuration space).
func (n *node) evict(slot int) error {
	if len(n.jobs) == 1 {
		n.loop = nil
		n.skip, n.owed = 0, 0
	} else {
		// As in admit: deferred ticks are replayed before churn.
		if err := n.flush(); err != nil {
			return err
		}
		if err := n.loop.RemoveJob(slot); err != nil {
			return err
		}
	}
	n.jobs = append(n.jobs[:slot], n.jobs[slot+1:]...)
	n.hasLast = false
	return nil
}

// flush settles the node's deferred ticks in one coarse batched SkipIdle
// and clears the idle promise — called before any detailed step or churn
// event so the loop's clock is always current when it matters. The
// node's reported metrics stay held at the pre-promise observation (the
// same values its trace rows carried while skipped); the detailed step or
// churn that forced the flush refreshes them immediately after.
func (n *node) flush() error {
	owed := n.owed
	n.owed, n.skip = 0, 0
	if owed == 0 || n.loop == nil {
		return nil
	}
	return n.loop.SkipIdle(owed)
}

// step advances the node one 100 ms tick; idle nodes are a no-op. A
// *control.StaleDecisionError means the node's policy and platform
// desynced after churn — a fleet-layer invariant violation, flagged as
// such rather than surfaced as a bare apply failure. In event-driven
// mode a node holding an idle promise defers the tick in O(1) — the
// deferred ticks are replayed lazily by flush — and each detailed step
// asks the loop for a fresh promise (control.Loop.IdleHorizon).
func (n *node) step(event bool) error {
	if n.loop == nil {
		return nil
	}
	if event {
		if n.skip > 0 {
			n.skip--
			n.owed++
			n.skipped++
			return nil
		}
		if err := n.flush(); err != nil {
			return err
		}
	}
	st, err := n.loop.Step()
	if err != nil {
		var stale *control.StaleDecisionError
		if errors.As(err, &stale) {
			return fmt.Errorf("fleet: node %d: policy/platform desync after churn: %w", n.id, stale)
		}
		return err
	}
	// A transient baseline-refresh failure does not kill the node: the
	// stale baselines hold and the loop retries at the next boundary
	// (the node's Summary counts it). Fatal reset failures still abort.
	if st.ResetErr != nil && !rdt.IsTransient(st.ResetErr) {
		return st.ResetErr
	}
	n.last = st
	n.hasLast = true
	n.aggValid = false
	if event {
		n.skip = n.loop.IdleHorizon()
	}
	return nil
}
