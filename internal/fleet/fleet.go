// Package fleet scales the single-machine SATORI reproduction to a
// deterministic multi-node cluster under job churn — the datacenter
// setting the paper motivates (Sec. I) but does not evaluate.
//
// A Cluster runs N Nodes in lockstep 100 ms ticks. Each node is one
// complete SATORI stack — a sim.Simulator behind an rdt.SimPlatform,
// driven by its own policy engine through internal/control's
// backend-agnostic loop (the same loop behind satori.Session) —
// exactly the per-node decomposition POP (Narayanan et al.) shows is
// near-optimal for large resource-allocation problems. A JobStream feeds
// Poisson arrivals with bounded service times into a Placer, which picks
// the node each job co-locates on; departures and arrivals trigger the
// session layer's membership-change path (baseline re-measurement +
// engine re-initialization on the re-dimensioned space).
//
// Determinism contract: every node derives all of its randomness from its
// own seed (mixed from the fleet seed, node index and session
// generation), the stream draws arrival/service/profile randomness from
// its own RNG at arrival time, placement runs serially between ticks on
// snapshots, and aggregation iterates nodes in index order. Node stepping
// fans out on the harness's bounded worker pool, so any -workers value
// produces byte-identical output; workers only change wall-clock time.
package fleet

import (
	"errors"
	"fmt"

	"satori/internal/control"
	"satori/internal/harness"
	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/trace"
)

// Options configures a Cluster.
type Options struct {
	// Nodes is the cluster size (required, ≥ 1).
	Nodes int
	// Machine is the per-node hardware shape (default sim.DefaultMachine).
	Machine *sim.MachineSpec
	// Policy is the per-node partitioning policy, by registry name
	// (default "satori"; see harness.PolicyNames).
	Policy string
	// Placer selects the admission strategy, by name (default
	// "round-robin"; see PlacerNames).
	Placer string
	// Seed drives the whole fleet; equal seeds replay identically.
	Seed uint64
	// NoiseSigma forwards to each node's simulator (0 = default 2%,
	// negative = noise-free).
	NoiseSigma float64
	// Stream tunes job churn. Stream.Seed defaults to Seed so one knob
	// reproduces the whole run.
	Stream StreamOptions
	// MaxJobsPerNode caps co-location degree per node (default 5, the
	// paper's PARSEC mix size; always clamped to what the machine can
	// partition — one unit of every resource per job).
	MaxJobsPerNode int
	// Workers bounds the per-tick node-stepping pool, following the
	// harness convention: 0 = one worker per CPU, 1 = serial.
	Workers int
}

// node is one machine of the fleet: a control loop (nil while idle) plus
// the jobs occupying its slots, in loop slot order.
type node struct {
	id      int
	machine sim.MachineSpec
	jobs    []*Job
	loop    *control.Loop
	gen     int // session generations, for churn-independent seeding
	last    control.Status
	hasLast bool // last is valid for the current job set
}

// Cluster is a fleet of nodes advanced in lockstep ticks.
type Cluster struct {
	opt     Options
	machine sim.MachineSpec
	maxJobs int
	nodes   []*node
	stream  *JobStream
	placer  Placer
	queue   []*Job // FIFO admission queue

	ticks  int
	series *trace.Series

	accSum, accGeo, accJain stats.Welford
	busyTicks               int
	arrived, placed, done   int
	maxQueue                int
}

// fleetColumns is the per-tick CSV schema.
var fleetColumns = []string{
	"tick", "time", "jobs", "queued", "arrivals", "departures",
	"sumips", "geomean", "jain",
}

// New builds a cluster. Policy and placer names are resolved eagerly so
// typos fail before any simulation state exists.
func New(opt Options) (*Cluster, error) {
	if opt.Nodes < 1 {
		return nil, fmt.Errorf("fleet: Options.Nodes must be >= 1, got %d", opt.Nodes)
	}
	if opt.Policy == "" {
		opt.Policy = "satori"
	}
	if opt.Placer == "" {
		opt.Placer = "round-robin"
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Stream.Seed == 0 {
		opt.Stream.Seed = opt.Seed
	}
	// Resolve the policy once for validation; nodes rebuild per session
	// with their own seeds.
	if _, err := harness.PolicyByName(opt.Policy); err != nil {
		return nil, err
	}
	placer, err := PlacerByName(opt.Placer)
	if err != nil {
		return nil, err
	}
	machine := sim.DefaultMachine()
	if opt.Machine != nil {
		machine = *opt.Machine
	}
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	stream, err := NewJobStream(opt.Stream)
	if err != nil {
		return nil, err
	}
	maxJobs := opt.MaxJobsPerNode
	if maxJobs <= 0 {
		maxJobs = 5
	}
	// A node can partition at most min(units) jobs — every job needs one
	// unit of every resource.
	hardCap := machine.Cores
	if machine.LLCWays < hardCap {
		hardCap = machine.LLCWays
	}
	if machine.MemBWUnits < hardCap {
		hardCap = machine.MemBWUnits
	}
	if machine.PowerUnits > 0 && machine.PowerUnits < hardCap {
		hardCap = machine.PowerUnits
	}
	if maxJobs > hardCap {
		maxJobs = hardCap
	}
	c := &Cluster{
		opt:     opt,
		machine: machine,
		maxJobs: maxJobs,
		stream:  stream,
		placer:  placer,
		series:  trace.NewSeries(fleetColumns...),
	}
	for i := 0; i < opt.Nodes; i++ {
		c.nodes = append(c.nodes, &node{id: i, machine: machine})
	}
	return c, nil
}

// nodeSeed mixes the fleet seed with a node's identity and session
// generation (splitmix64 finalizer), so node sessions draw independent
// streams that do not depend on placement history elsewhere in the fleet.
func nodeSeed(base uint64, id, gen int) uint64 {
	x := base + 0x9E3779B97F4A7C15*uint64(id+1) + 0xD1B54A32D192ED03*uint64(gen+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // the session layer maps seed 0 to 1; keep streams distinct
	}
	return x
}

// TickStats is one tick's fleet-level outcome.
type TickStats struct {
	// Tick counts completed lockstep intervals; Time is Tick in seconds.
	Tick int
	Time float64
	// Running and Queued are the job counts after this tick's churn.
	Running, Queued int
	// Arrivals and Departures count this tick's churn events.
	Arrivals, Departures int
	// SumIPS is the fleet-wide sum of per-job IPS this tick.
	SumIPS float64
	// GeoMeanSpeedup is the geometric mean speedup over all running jobs.
	GeoMeanSpeedup float64
	// Jain is Jain's fairness index over all running jobs' speedups
	// (1 when the fleet is empty).
	Jain float64
}

// Step advances the whole fleet one 100 ms tick: process departures, pop
// and place arrivals, step every node (in parallel on the worker pool),
// then aggregate fleet metrics in node order.
func (c *Cluster) Step() (TickStats, error) {
	now := float64(c.ticks) * sim.TickSeconds
	st := TickStats{Tick: c.ticks + 1, Time: now + sim.TickSeconds}

	// (1) Departures: evict every job whose service time has elapsed.
	// Slots are removed in descending order so indices stay valid; the
	// session's membership path re-measures baselines and rebuilds the
	// engine on the shrunken space.
	for _, n := range c.nodes {
		for slot := len(n.jobs) - 1; slot >= 0; slot-- {
			if n.jobs[slot].Departs > now+1e-9 {
				continue
			}
			if err := n.evict(slot); err != nil {
				return st, fmt.Errorf("fleet: node %d evict: %w", n.id, err)
			}
			st.Departures++
			c.done++
		}
	}

	// (2) Arrivals enter the FIFO queue.
	arrivals := c.stream.ArrivalsUntil(now)
	st.Arrivals = len(arrivals)
	c.arrived += len(arrivals)
	c.queue = append(c.queue, arrivals...)

	// (3) Placement: strict FIFO — every job needs exactly one slot, so
	// if the head cannot be placed, no queued job can.
	for len(c.queue) > 0 {
		idx := c.placer.Place(c.queue[0], c.views())
		if idx < 0 {
			break
		}
		if err := c.nodes[idx].admit(c.queue[0], now, c.opt); err != nil {
			return st, fmt.Errorf("fleet: node %d admit: %w", idx, err)
		}
		c.queue = c.queue[1:]
		c.placed++
	}
	if len(c.queue) > c.maxQueue {
		c.maxQueue = len(c.queue)
	}

	// (4) Lockstep node tick on the bounded worker pool. Each node only
	// touches its own state; ForEach guarantees the lowest-index error.
	if err := harness.ForEach(c.opt.Workers, len(c.nodes), func(i int) error {
		return c.nodes[i].step()
	}); err != nil {
		return st, err
	}
	c.ticks++

	// (5) Fleet aggregation, strictly in node order.
	var ips, speedups []float64
	for _, n := range c.nodes {
		st.Running += len(n.jobs)
		if !n.hasLast {
			continue
		}
		ips = append(ips, n.last.IPS...)
		speedups = append(speedups, n.last.Speedups...)
	}
	st.Queued = len(c.queue)
	st.SumIPS = stats.Sum(ips)
	st.GeoMeanSpeedup = stats.GeoMean(speedups)
	st.Jain = 1.0
	if len(speedups) > 0 {
		st.Jain = metrics.Jain(speedups)
		c.accSum.Add(st.SumIPS)
		c.accGeo.Add(st.GeoMeanSpeedup)
		c.accJain.Add(st.Jain)
		c.busyTicks++
	}
	c.series.Add(float64(st.Tick), st.Time, float64(st.Running), float64(st.Queued),
		float64(st.Arrivals), float64(st.Departures), st.SumIPS, st.GeoMeanSpeedup, st.Jain)
	return st, nil
}

// Run advances n ticks, returning the last tick's stats.
func (c *Cluster) Run(n int) (TickStats, error) {
	var last TickStats
	var err error
	for i := 0; i < n; i++ {
		last, err = c.Step()
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// views snapshots every node for the placer.
func (c *Cluster) views() []NodeView {
	out := make([]NodeView, len(c.nodes))
	for i, n := range c.nodes {
		v := NodeView{ID: i, Jobs: len(n.jobs), Capacity: c.maxJobs, Cores: c.machine.Cores}
		if n.hasLast {
			v.Speedups = n.last.Speedups
		}
		out[i] = v
	}
	return out
}

// Series returns the per-tick fleet trace (CSV via trace.Series).
func (c *Cluster) Series() *trace.Series { return c.series }

// Ticks returns the number of completed fleet ticks.
func (c *Cluster) Ticks() int { return c.ticks }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Summary aggregates a fleet run.
type Summary struct {
	// Ticks is the number of completed intervals; BusyTicks counts those
	// with at least one running job (the means below average over them).
	Ticks, BusyTicks int
	// Arrived, Placed and Departed count stream jobs over the run.
	Arrived, Placed, Departed int
	// Running and Queued are the current job counts.
	Running, Queued int
	// MaxQueue is the high-water mark of the admission queue.
	MaxQueue int
	// MeanSumIPS, MeanGeoMean and MeanJain are busy-tick averages of the
	// fleet metrics.
	MeanSumIPS, MeanGeoMean, MeanJain float64
}

// Summary returns the running aggregate.
func (c *Cluster) Summary() Summary {
	s := Summary{
		Ticks: c.ticks, BusyTicks: c.busyTicks,
		Arrived: c.arrived, Placed: c.placed, Departed: c.done,
		Queued: len(c.queue), MaxQueue: c.maxQueue,
		MeanSumIPS: c.accSum.Mean(), MeanGeoMean: c.accGeo.Mean(), MeanJain: c.accJain.Mean(),
	}
	for _, n := range c.nodes {
		s.Running += len(n.jobs)
	}
	return s
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("ticks=%d jobs arrived=%d placed=%d departed=%d running=%d queued=%d (peak %d) | sumips=%.3g geomean=%.3f jain=%.3f",
		s.Ticks, s.Arrived, s.Placed, s.Departed, s.Running, s.Queued, s.MaxQueue,
		s.MeanSumIPS, s.MeanGeoMean, s.MeanJain)
}

// admit places job on the node at time now: the first job of an idle node
// boots a fresh control loop on a fresh simulator; later jobs go through
// the loop's AddJob churn path (re-split, baseline re-measurement, engine
// re-initialization on the re-dimensioned space).
func (n *node) admit(job *Job, now float64, opt Options) error {
	if len(n.jobs) == 0 {
		seed := nodeSeed(opt.Seed, n.id, n.gen)
		n.gen++
		factory, err := harness.PolicyByName(opt.Policy)
		if err != nil {
			return err
		}
		simulator, err := sim.New(n.machine, []*sim.Profile{job.Profile},
			sim.Options{Seed: seed, NoiseSigma: opt.NoiseSigma})
		if err != nil {
			return err
		}
		platform, err := rdt.NewSimPlatform(simulator)
		if err != nil {
			return err
		}
		loop, err := control.New(control.Options{
			Platform: platform,
			Policy:   func(rdt.Platform) (policy.Policy, error) { return factory(platform, seed) },
			// Sampled simulation is default-on for fleet runs: node ticks
			// are bit-identical either way on the sim backend, and
			// phase-stable nodes skip the detailed model evaluation.
			Sampling: control.SamplingOptions{Enabled: true},
		})
		if err != nil {
			return err
		}
		n.loop = loop
	} else {
		if err := n.loop.AddJob(job.Profile); err != nil {
			return err
		}
	}
	job.Node = n.id
	job.PlacedAt = now
	job.Departs = now + job.Duration
	n.jobs = append(n.jobs, job)
	n.hasLast = false // membership changed; last tick's arrays are stale
	return nil
}

// evict removes the job in the given slot; the last job tears the whole
// loop down (a machine with zero jobs has no configuration space).
func (n *node) evict(slot int) error {
	if len(n.jobs) == 1 {
		n.loop = nil
	} else if err := n.loop.RemoveJob(slot); err != nil {
		return err
	}
	n.jobs = append(n.jobs[:slot], n.jobs[slot+1:]...)
	n.hasLast = false
	return nil
}

// step advances the node one 100 ms tick; idle nodes are a no-op. A
// *control.StaleDecisionError means the node's policy and platform
// desynced after churn — a fleet-layer invariant violation, flagged as
// such rather than surfaced as a bare apply failure.
func (n *node) step() error {
	if n.loop == nil {
		return nil
	}
	st, err := n.loop.Step()
	if err != nil {
		var stale *control.StaleDecisionError
		if errors.As(err, &stale) {
			return fmt.Errorf("fleet: node %d: policy/platform desync after churn: %w", n.id, stale)
		}
		return err
	}
	// A transient baseline-refresh failure does not kill the node: the
	// stale baselines hold and the loop retries at the next boundary
	// (the node's Summary counts it). Fatal reset failures still abort.
	if st.ResetErr != nil && !rdt.IsTransient(st.ResetErr) {
		return st.ResetErr
	}
	n.last = st
	n.hasLast = true
	return nil
}
