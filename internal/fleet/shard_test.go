package fleet

import (
	"errors"
	"strings"
	"testing"

	"satori/internal/rdt"
)

// TestShardPartitionProperties pins the partition contract: every node
// lands in exactly one shard, shards are balanced within one node, hands
// are sorted ascending, the partition is a pure function of (seed, n, k),
// and k=1 is the identity layout.
func TestShardPartitionProperties(t *testing.T) {
	const n = 23
	for _, k := range []int{1, 4, 7, 23} {
		a, err := buildShards(99, n, k, "round-robin")
		if err != nil {
			t.Fatal(err)
		}
		b, err := buildShards(99, n, k, "round-robin")
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		for si, s := range a {
			if len(s.nodes) < n/k || len(s.nodes) > n/k+1 {
				t.Errorf("k=%d shard %d holds %d nodes, want %d or %d", k, si, len(s.nodes), n/k, n/k+1)
			}
			for i, id := range s.nodes {
				seen[id]++
				if i > 0 && s.nodes[i-1] >= id {
					t.Errorf("k=%d shard %d not sorted ascending: %v", k, si, s.nodes)
				}
			}
			if bs := b[si]; len(bs.nodes) != len(s.nodes) {
				t.Errorf("k=%d shard %d: same seed gave different partitions", k, si)
			} else {
				for i := range s.nodes {
					if s.nodes[i] != bs.nodes[i] {
						t.Errorf("k=%d shard %d: same seed gave different partitions", k, si)
					}
				}
			}
		}
		if len(seen) != n {
			t.Errorf("k=%d: %d distinct nodes across shards, want %d", k, len(seen), n)
		}
		for id, count := range seen {
			if count != 1 {
				t.Errorf("k=%d: node %d appears in %d shards", k, id, count)
			}
		}
		if k == 1 {
			for i, id := range a[0].nodes {
				if id != i {
					t.Fatalf("k=1 shard is not the identity layout: %v", a[0].nodes)
				}
			}
		}
	}
}

// TestShardDeterminismAcrossWorkers is the tentpole's acceptance bar:
// sharded placement at any worker count is byte-identical to serial, for
// every registered placer, under churn.
func TestShardDeterminismAcrossWorkers(t *testing.T) {
	for _, placer := range PlacerNames() {
		for _, shards := range []int{1, 4} {
			opt := testOptions(1)
			opt.Nodes = 8
			opt.Placer = placer
			opt.Shards = shards
			serial := runCSV(t, opt, 200)
			for _, workers := range []int{2, 8} {
				o := opt
				o.Workers = workers
				if got := runCSV(t, o, 200); got != serial {
					t.Fatalf("placer=%s shards=%d workers=%d output differs from serial", placer, shards, workers)
				}
			}
		}
	}
}

// TestShardCountChangesPlacementOnly: different k produce different (but
// valid) placements; conservation holds at every k, and k is clamped to
// the node count.
func TestShardCountChangesPlacement(t *testing.T) {
	baseline := ""
	for _, shards := range []int{1, 2, 4, 99} {
		opt := testOptions(0)
		opt.Nodes = 4
		opt.Shards = shards
		c, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		if shards == 99 && c.ShardCount() != 4 {
			t.Fatalf("Shards=99 on 4 nodes not clamped: %d", c.ShardCount())
		}
		if _, err := c.Run(300); err != nil {
			t.Fatal(err)
		}
		s := c.Summary()
		if s.Arrived != s.Departed+s.Running+s.Queued {
			t.Fatalf("shards=%d: job conservation violated: %+v", shards, s)
		}
		if shards == 1 {
			baseline = s.String()
		}
	}
	if baseline == "" {
		t.Fatal("no baseline run")
	}
}

// TestEventDrivenDeterminism: event-driven stepping keeps the worker- and
// run-level determinism contract, and a calm fleet actually skips ticks.
func TestEventDrivenDeterminism(t *testing.T) {
	opt := testOptions(1)
	opt.EventDriven = true
	serial := runCSV(t, opt, 200)
	for _, workers := range []int{2, 4} {
		o := opt
		o.Workers = workers
		if got := runCSV(t, o, 200); got != serial {
			t.Fatalf("event-driven workers=%d output differs from serial", workers)
		}
	}
	o := opt
	o.Workers = 0
	if got := runCSV(t, o, 200); got != serial {
		t.Fatal("event-driven same-seed replay diverged")
	}
}

// TestEventDrivenSkipsAndConserves: with a phase-stable policy the fleet
// defers node ticks on idle promises, while churn bookkeeping stays
// exact (promises are flushed before any membership change).
func TestEventDrivenSkipsAndConserves(t *testing.T) {
	opt := testOptions(1)
	opt.Policy = "static" // holds the partition: nodes go phase-stable
	opt.EventDriven = true
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(400); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.SkippedNodeTicks == 0 {
		t.Fatal("event-driven calm fleet never skipped a node tick")
	}
	if s.Arrived == 0 || s.Departed == 0 {
		t.Fatalf("expected churn, got %+v", s)
	}
	if s.Arrived != s.Departed+s.Running+s.Queued {
		t.Fatalf("job conservation violated under event-driven stepping: %+v", s)
	}
	if s.Placed != s.Departed+s.Running {
		t.Fatalf("placement conservation violated: %+v", s)
	}
	lockstep := testOptions(1)
	lockstep.Policy = "static"
	lc, err := New(lockstep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Run(400); err != nil {
		t.Fatal(err)
	}
	if ls := lc.Summary(); ls.SkippedNodeTicks != 0 {
		t.Fatalf("lockstep fleet reported skipped ticks: %+v", ls)
	}
	t.Logf("event-driven: %d node-ticks skipped over %d ticks", s.SkippedNodeTicks, s.Ticks)
}

// TestStepErrorTerminalAndAccounted is the partial-tick bugfix
// regression: when a node's step fails, the healthy nodes have already
// advanced, so the tick must still be accounted (counter + trace row)
// and the cluster must refuse to step again — the pre-fix code returned
// without incrementing c.ticks or recording the row, so a retrying
// caller double-stepped every healthy node.
func TestStepErrorTerminalAndAccounted(t *testing.T) {
	script, err := rdt.ParseFaultScript("sample:fatal@10")
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(1)
	opt.Nodes = 2
	opt.Stream.ArrivalRate = 2
	opt.Stream.DurationMean = 1e6 // immortal: the faulted loop boots once
	opt.Stream.DurationMin = 1e6
	opt.Stream.DurationMax = 1e6
	opt.WrapPlatform = func(nodeID int, p rdt.Platform) rdt.Platform {
		if nodeID != 0 {
			return p
		}
		fp, err := rdt.NewFaultInjector(p, script)
		if err != nil {
			t.Errorf("NewFaultInjector: %v", err)
			return p
		}
		return fp
	}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	var stepErr error
	for i := 0; i < 500; i++ {
		if _, err := c.Step(); err != nil {
			stepErr = err
			break
		}
		steps++
	}
	if stepErr == nil {
		t.Fatal("injected fatal sample fault never surfaced")
	}
	if errors.Is(stepErr, ErrHalted) {
		t.Fatalf("first failure already reported ErrHalted: %v", stepErr)
	}
	// The failed tick is accounted: counter advanced and row recorded.
	if got := c.Ticks(); got != steps+1 {
		t.Errorf("failed tick not accounted: Ticks()=%d after %d clean steps + 1 failed", got, steps)
	}
	if rows := c.Series().Len(); rows != c.Ticks() {
		t.Errorf("trace desynced from tick counter: %d rows, %d ticks", rows, c.Ticks())
	}
	// Terminal by contract: a retry cannot double-step healthy nodes.
	if _, err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("second Step after failure = %v, want ErrHalted", err)
	}
	if got := c.Ticks(); got != steps+1 {
		t.Errorf("halted Step advanced the tick counter to %d", got)
	}
	if rows := c.Series().Len(); rows != steps+1 {
		t.Errorf("halted Step recorded a row: %d", rows)
	}
	if !strings.Contains(stepErr.Error(), "fatal") {
		t.Errorf("error lost the injected cause: %v", stepErr)
	}
}
