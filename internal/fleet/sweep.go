package fleet

import (
	"fmt"
	"io"
)

// ShardSweepRow is one cell of the placement-quality-vs-shard-count
// experiment: the same fleet, stream and placer run at a different k.
type ShardSweepRow struct {
	// Shards is the effective shard count (after clamping to the fleet
	// size).
	Shards int
	// MeanJain and MeanSumIPS are the run's busy-tick fleet averages —
	// the quality axes POP trades against placement cost.
	MeanJain, MeanSumIPS float64
	// MeanGeoMean is the busy-tick average geomean speedup.
	MeanGeoMean float64
	// Placed counts admitted jobs; MaxQueue is the admission-queue
	// high-water mark (sharding can strand queued jobs behind a full
	// shard while another has capacity, which shows up here first).
	Placed, MaxQueue int
}

// SweepShards runs the same fleet configuration once per shard count and
// reports placement quality at each k — the POP recombination
// experiment. Every run starts from a fresh cluster with the same seed,
// so rows differ only by the partitioning of the placement problem.
func SweepShards(opt Options, shardCounts []int, ticks int) ([]ShardSweepRow, error) {
	rows := make([]ShardSweepRow, 0, len(shardCounts))
	for _, k := range shardCounts {
		o := opt
		o.Shards = k
		c, err := New(o)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep shards=%d: %w", k, err)
		}
		if _, err := c.Run(ticks); err != nil {
			return nil, fmt.Errorf("fleet: sweep shards=%d: %w", k, err)
		}
		s := c.Summary()
		rows = append(rows, ShardSweepRow{
			Shards:      c.ShardCount(),
			MeanJain:    s.MeanJain,
			MeanSumIPS:  s.MeanSumIPS,
			MeanGeoMean: s.MeanGeoMean,
			Placed:      s.Placed,
			MaxQueue:    s.MaxQueue,
		})
	}
	return rows, nil
}

// WriteShardSweep renders sweep rows as a Markdown table (the
// EXPERIMENTS.md format).
func WriteShardSweep(w io.Writer, rows []ShardSweepRow) error {
	if _, err := fmt.Fprintf(w, "| shards | mean Jain | mean SumIPS | mean geomean | placed | peak queue |\n|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %d | %.4f | %.4g | %.4f | %d | %d |\n",
			r.Shards, r.MeanJain, r.MeanSumIPS, r.MeanGeoMean, r.Placed, r.MaxQueue); err != nil {
			return err
		}
	}
	return nil
}
