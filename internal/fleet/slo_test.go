package fleet

import (
	"strings"
	"testing"

	"satori/internal/workloads"
)

// lcTestOptions is testOptions with a mixed batch+LC workload pool, so
// churn places latency-critical services next to batch jobs and nodes
// build SLO trackers.
func lcTestOptions(workers int) Options {
	opt := testOptions(workers)
	opt.Stream.Profiles = append(workloads.PARSEC()[:4], workloads.LC()...)
	return opt
}

// TestLCDeterminismAcrossWorkers extends the fleet's core invariant to
// mixed batch+LC pools: the latency model and violation detector are
// pure functions of the observed IPS stream, so any worker count stays
// byte-identical — including the three SLO columns.
func TestLCDeterminismAcrossWorkers(t *testing.T) {
	serial := runCSV(t, lcTestOptions(1), 200)
	for _, workers := range []int{2, 4, 8} {
		if got := runCSV(t, lcTestOptions(workers), 200); got != serial {
			t.Fatalf("workers=%d output differs from serial with LC jobs", workers)
		}
	}
	if !strings.Contains(serial, "attainment") {
		t.Fatalf("CSV missing SLO columns: %q", serial[:120])
	}
	// The pool must actually have produced LC placements, or the test
	// pins nothing.
	c, err := New(lcTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(200); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.LCTicks == 0 {
		t.Fatal("no tick tracked an LC node — enlarge the LC share of the pool")
	}
	if !strings.Contains(s.String(), "slo-attainment=") {
		t.Fatalf("summary hides SLO state: %s", s)
	}
}

// TestLCDeterminismAcrossShards: sharded placement with LC jobs in the
// pool keeps the worker-count invariant at every shard count.
func TestLCDeterminismAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 4} {
		opt := lcTestOptions(1)
		opt.Nodes = 8
		opt.Shards = shards
		serial := runCSV(t, opt, 200)
		for _, workers := range []int{2, 8} {
			o := opt
			o.Workers = workers
			if got := runCSV(t, o, 200); got != serial {
				t.Fatalf("shards=%d workers=%d output differs from serial with LC jobs", shards, workers)
			}
		}
	}
}

// TestLCDeterminismEventDriven: event-driven stepping with LC jobs in
// the pool — idle promises are refused across violation onsets, and the
// replay/worker determinism contract holds unchanged.
func TestLCDeterminismEventDriven(t *testing.T) {
	opt := lcTestOptions(1)
	opt.EventDriven = true
	serial := runCSV(t, opt, 200)
	for _, workers := range []int{2, 4} {
		o := opt
		o.Workers = workers
		if got := runCSV(t, o, 200); got != serial {
			t.Fatalf("event-driven workers=%d output differs from serial with LC jobs", workers)
		}
	}
	o := opt
	o.Workers = 0
	if got := runCSV(t, o, 200); got != serial {
		t.Fatal("event-driven same-seed replay diverged with LC jobs")
	}
}

// TestBatchFleetInert: with no LC jobs in the pool the SLO columns are
// constant (0 nodes, attainment 1) and the summary renders without any
// SLO fields — the subsystem is invisible to batch-only fleets.
func TestBatchFleetInert(t *testing.T) {
	c, err := New(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if st.LCNodes != 0 || st.SLOViolatingNodes != 0 || st.SLOAttainment != 1 {
		t.Fatalf("batch-only tick carries SLO state: %+v", st)
	}
	s := c.Summary()
	if s.LCTicks != 0 || s.SLOViolatingNodeTicks != 0 {
		t.Fatalf("batch-only summary carries SLO state: %+v", s)
	}
	if strings.Contains(s.String(), "slo") {
		t.Fatalf("batch-only summary renders SLO fields: %s", s)
	}
}
