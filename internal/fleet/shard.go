package fleet

// POP-style sharded placement (Narayanan et al., PAPERS.md): the fleet's
// nodes are partitioned into k deterministic shards, each arriving job is
// routed to one shard, and every shard runs its placement loop over its
// own nodes and its own FIFO queue, independently and in parallel. The
// recombination rule is the trivial union — shards own disjoint node
// sets and disjoint queues, so the per-shard placements compose without
// conflict. Quality degrades gracefully with k (a shard cannot see
// capacity or imbalance outside itself — see the EXPERIMENTS.md sweep),
// while placement cost drops from O(nodes) per admission to
// O(nodes/k) per admission with k-way parallelism.
//
// Determinism: the node partition is a seeded permutation dealt
// round-robin (a pure function of the fleet seed and k), job→shard
// routing is a seeded hash of the job ID, every shard sorts its nodes
// ascending and keeps its own placer instance, and all cross-shard
// bookkeeping is aggregated in shard order after the parallel section —
// so any worker count and any shard-completion interleaving produce
// byte-identical output. With k=1 the single shard contains every node
// in index order and the placement loop reduces exactly to the
// pre-sharding fleet behavior.

import (
	"satori/internal/stats"
)

// shard is one independent placement subproblem: a subset of the fleet's
// nodes, a private FIFO admission queue, and a private placer instance
// (placers may carry state, e.g. RoundRobin's cursor).
type shard struct {
	id     int
	nodes  []int // global node indices, ascending
	placer Placer
	queue  []*Job
}

// shardMix finalizes a seeded hash (splitmix64 finalizer), used for both
// the partition shuffle seed and job→shard routing.
func shardMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// buildShards partitions n nodes into k shards: a seeded permutation of
// the node indices is dealt round-robin into the shards, then each
// shard's hand is sorted ascending. The partition is a pure function of
// (seed, n, k); each shard gets a fresh placer instance.
func buildShards(seed uint64, n, k int, placerName string) ([]*shard, error) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng := stats.NewRNG(shardMix(seed + 0xA55A*uint64(k) + 1))
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	shards := make([]*shard, k)
	for s := range shards {
		placer, err := PlacerByName(placerName)
		if err != nil {
			return nil, err
		}
		shards[s] = &shard{id: s, placer: placer}
	}
	for i, nodeID := range perm {
		s := shards[i%k]
		s.nodes = append(s.nodes, nodeID)
	}
	for _, s := range shards {
		insertionSortInts(s.nodes)
	}
	return shards, nil
}

// insertionSortInts sorts a small int slice ascending without pulling in
// package sort's interface machinery on the per-tick path.
func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// shardOf routes a job to a shard: a seeded hash of the job's arrival ID,
// independent of placement history, so the routing stream is identical
// at any worker count.
func (c *Cluster) shardOf(job *Job) *shard {
	k := uint64(len(c.shards))
	if k == 1 {
		return c.shards[0]
	}
	return c.shards[shardMix(c.opt.Seed^(0x9E3779B97F4A7C15*uint64(job.ID)))%k]
}

// shardViews snapshots the shard's nodes for its placer. View IDs are
// shard-local slice indices (the Placer contract); the caller maps a
// placement back through s.nodes. With k=1 local and global indices
// coincide.
func (c *Cluster) shardViews(s *shard) []NodeView {
	out := make([]NodeView, len(s.nodes))
	for i, id := range s.nodes {
		n := c.nodes[id]
		v := NodeView{ID: i, Jobs: len(n.jobs), Capacity: c.maxJobs, Cores: c.machine.Cores}
		if n.hasLast {
			v.Speedups = n.last.Speedups
		}
		out[i] = v
	}
	return out
}

// placeShard drains the shard's FIFO queue onto its nodes until the
// placer declines: strict FIFO — every job needs exactly one slot, so if
// the head cannot be placed, no queued job can. Views are maintained
// incrementally (an admission bumps the job count and invalidates the
// speedup snapshot), which matches rebuilding them from the live nodes.
// Only this shard's nodes and queue are touched, so shards place
// concurrently without synchronization.
func (c *Cluster) placeShard(s *shard, now float64) (int, error) {
	if len(s.queue) == 0 {
		return 0, nil
	}
	placed := 0
	views := c.shardViews(s)
	for len(s.queue) > 0 {
		idx := s.placer.Place(s.queue[0], views)
		if idx < 0 {
			break
		}
		if err := c.nodes[s.nodes[idx]].admit(s.queue[0], now, c.opt); err != nil {
			return placed, err
		}
		views[idx].Jobs++
		views[idx].Speedups = nil
		s.queue = s.queue[1:]
		placed++
	}
	return placed, nil
}

// queued sums the shard queues, in shard order.
func (c *Cluster) queued() int {
	total := 0
	for _, s := range c.shards {
		total += len(s.queue)
	}
	return total
}
