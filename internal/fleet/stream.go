package fleet

import (
	"fmt"
	"math"

	"satori/internal/sim"
	"satori/internal/stats"
	"satori/internal/workloads"
)

// Job is one unit of the fleet's workload: a benchmark profile that
// arrives, runs co-located on some node for its service time, and
// departs. Arrival times, service times and profiles are all drawn
// deterministically from the stream's RNG, so a fleet run replays
// identically from its seed regardless of placement or worker count.
type Job struct {
	// ID numbers jobs in arrival order, from 1.
	ID int
	// Profile is the workload the job runs.
	Profile *sim.Profile
	// Arrival is the simulated time the job entered the system.
	Arrival float64
	// Duration is the service time once placed, in simulated seconds.
	Duration float64

	// Node is the node the job runs on (-1 while queued).
	Node int
	// PlacedAt is when the job was admitted to its node.
	PlacedAt float64
	// Departs is PlacedAt + Duration: the job leaves at the start of the
	// first tick at or past this time.
	Departs float64
}

// StreamOptions tunes the job stream.
type StreamOptions struct {
	// Seed drives arrivals, service times and profile choice.
	Seed uint64
	// ArrivalRate is the fleet-wide Poisson arrival rate in jobs per
	// simulated second (default 0.5).
	ArrivalRate float64
	// DurationMean is the mean service time in seconds (default 30);
	// draws are exponential, truncated to [DurationMin, DurationMax]
	// (defaults 5 and 120) so no job is instantaneous or immortal.
	DurationMean float64
	DurationMin  float64
	DurationMax  float64
	// Profiles is the workload pool jobs draw from uniformly (default:
	// the PARSEC suite of workloads.go).
	Profiles []*sim.Profile
	// MaxJobs caps the total number of arrivals the stream generates
	// (0 = unbounded) — benchmarks use it to fill a fleet with one burst
	// and then measure steady state with the stream dry.
	MaxJobs int
}

func (o *StreamOptions) fill() {
	if o.ArrivalRate <= 0 {
		o.ArrivalRate = 0.5
	}
	if o.DurationMean <= 0 {
		o.DurationMean = 30
	}
	if o.DurationMin <= 0 {
		o.DurationMin = 5
	}
	if o.DurationMax <= 0 {
		o.DurationMax = 120
	}
	if len(o.Profiles) == 0 {
		o.Profiles = workloads.PARSEC()
	}
}

// JobStream generates the fleet's deterministic job churn: Poisson
// arrivals (exponential inter-arrival gaps) with bounded exponential
// service times and uniformly drawn workload profiles.
type JobStream struct {
	opt    StreamOptions
	rng    *stats.RNG
	nextAt float64 // arrival time of the next job, already drawn
	nextID int
}

// NewJobStream builds a stream; options are validated and defaulted.
func NewJobStream(opt StreamOptions) (*JobStream, error) {
	opt.fill()
	if opt.DurationMin > opt.DurationMax {
		return nil, fmt.Errorf("fleet: DurationMin %g > DurationMax %g", opt.DurationMin, opt.DurationMax)
	}
	for _, p := range opt.Profiles {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	s := &JobStream{
		opt:    opt,
		rng:    stats.NewRNG(opt.Seed ^ 0xF1EE7),
		nextID: 1,
	}
	s.nextAt = s.gap()
	return s, nil
}

// gap draws one exponential inter-arrival interval.
func (s *JobStream) gap() float64 {
	// -ln(1-U)/λ; U < 1 always, so the log argument is positive.
	return -math.Log(1-s.rng.Float64()) / s.opt.ArrivalRate
}

// duration draws one truncated-exponential service time.
func (s *JobStream) duration() float64 {
	d := -s.opt.DurationMean * math.Log(1-s.rng.Float64())
	if d < s.opt.DurationMin {
		d = s.opt.DurationMin
	}
	if d > s.opt.DurationMax {
		d = s.opt.DurationMax
	}
	return d
}

// ArrivalsUntil pops every job whose arrival time is at or before now.
// Each job's service time and profile are drawn at arrival, so downstream
// placement decisions can never perturb the stream's draw sequence.
func (s *JobStream) ArrivalsUntil(now float64) []*Job {
	var out []*Job
	for s.nextAt <= now {
		if s.opt.MaxJobs > 0 && s.nextID > s.opt.MaxJobs {
			return out
		}
		out = append(out, &Job{
			ID:       s.nextID,
			Profile:  s.opt.Profiles[s.rng.Intn(len(s.opt.Profiles))],
			Arrival:  s.nextAt,
			Duration: s.duration(),
			Node:     -1,
		})
		s.nextID++
		s.nextAt += s.gap()
	}
	return out
}
