package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkFleetTick measures one lockstep fleet tick across cluster
// sizes and worker counts. The workers=N rows should beat workers=1 at
// the same node count once nodes > 1 (the acceptance bar is >2x at
// 8 nodes / 8 workers). Run with:
//
//	go test -bench FleetTick -benchtime 2s ./internal/fleet
func BenchmarkFleetTick(b *testing.B) {
	for _, cfg := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 1}, {8, 8}} {
		nodes, workers := cfg[0], cfg[1]
		name := fmt.Sprintf("nodes=%d/workers=%d", nodes, workers)
		b.Run(name, func(b *testing.B) {
			opt := Options{
				Nodes:   nodes,
				Seed:    42,
				Workers: workers,
				Stream: StreamOptions{
					// Heavy arrivals so every node carries jobs and the
					// tick cost is dominated by engine work, not churn.
					ArrivalRate:  float64(nodes) * 2,
					DurationMean: 1e6,
					DurationMin:  1e6,
					DurationMax:  1e6,
				},
			}
			c, err := New(opt)
			if err != nil {
				b.Fatal(err)
			}
			// Warm up until every node is saturated, so the steady
			// state being measured has maximal per-tick engine work.
			if _, err := c.Run(60); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
