package fleet

import (
	"fmt"
	"testing"

	"satori/internal/sim"
)

// BenchmarkFleetTick measures one lockstep fleet tick across cluster
// sizes and worker counts. The workers=N rows should beat workers=1 at
// the same node count once nodes > 1 (the acceptance bar is >2x at
// 8 nodes / 8 workers). Run with:
//
//	go test -bench FleetTick -benchtime 2s ./internal/fleet
func BenchmarkFleetTick(b *testing.B) {
	for _, cfg := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 4}, {8, 1}, {8, 8}} {
		nodes, workers := cfg[0], cfg[1]
		name := fmt.Sprintf("nodes=%d/workers=%d", nodes, workers)
		b.Run(name, func(b *testing.B) {
			opt := Options{
				Nodes:   nodes,
				Seed:    42,
				Workers: workers,
				Stream: StreamOptions{
					// Heavy arrivals so every node carries jobs and the
					// tick cost is dominated by engine work, not churn.
					ArrivalRate:  float64(nodes) * 2,
					DurationMean: 1e6,
					DurationMin:  1e6,
					DurationMax:  1e6,
				},
			}
			c, err := New(opt)
			if err != nil {
				b.Fatal(err)
			}
			// Warm up until every node is saturated, so the steady
			// state being measured has maximal per-tick engine work.
			if _, err := c.Run(60); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchProfile builds a single-phase synthetic workload whose phase
// length (in ticks) controls how extrapolation-friendly the fleet is:
// short phases cross a boundary almost every tick (no node ever earns an
// idle promise), long phases make nodes phase-stable for thousands of
// ticks (the event-driven best case).
func benchProfile(name string, instructions float64) *sim.Profile {
	return &sim.Profile{
		Name: name, Suite: "bench",
		Phases: []sim.Phase{{
			Name: "steady", Instructions: instructions, IPSPeak: 2e10,
			SerialFrac: 0.05, MPIMax: 0.012, MPIMin: 0.004,
			WaysHalf: 2.5, MemStallCost: 180, PowerSensitivity: 0.6,
		}},
	}
}

// benchFleetScale builds a large fleet, bursts one job per two capacity
// slots into it, waits until placement settles (and, for event-driven
// runs, until idle promises arm), then measures steady-state Step cost.
// The active/idle pair at equal size is the tentpole's acceptance
// metric: per-tick cost must track activity, not fleet size.
func benchFleetScale(b *testing.B, nodes int, eventDriven bool, instructions float64) {
	b.Helper()
	profile := benchProfile("bench", instructions)
	opt := Options{
		Nodes:          nodes,
		Seed:           42,
		Workers:        0,
		Policy:         "parties", // cheap real baseline: tick cost is sim+control, not GP
		MaxJobsPerNode: 2,
		Shards:         64,
		EventDriven:    eventDriven,
		Stream: StreamOptions{
			ArrivalRate:  float64(nodes) * 100, // one burst fills the fleet
			MaxJobs:      nodes,
			DurationMean: 1e7, // immortal: zero churn in steady state
			DurationMin:  1e7,
			DurationMax:  1e7,
			Profiles:     []*sim.Profile{profile},
		},
	}
	c, err := New(opt)
	if err != nil {
		b.Fatal(err)
	}
	// A few percent of the burst can stay queued behind a full shard
	// (hash-routing imbalance — the POP quality trade); the stranded set
	// is a pure function of the seed, so active and idle runs at equal
	// size measure the identical busy-node layout.
	for i := 0; i < 80; i++ {
		if _, err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
	if s := c.Summary(); s.Placed < nodes*8/10 {
		b.Fatalf("warmup placed only %d of %d burst jobs: %+v", s.Placed, nodes, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if eventDriven {
		s := c.Summary()
		if s.SkippedNodeTicks == 0 {
			b.Fatal("event-driven benchmark never skipped a node tick — measuring nothing")
		}
		b.ReportMetric(float64(s.SkippedNodeTicks)/float64(s.Ticks), "skipped-nodes/tick")
	}
}

// Short phases: ~1.2 ticks per phase, every node crosses boundaries
// continuously, so every tick is a detailed tick even in event-driven
// mode. This is the all-active upper bound.
const benchActiveInstr = 2.5e9

// Long phases: ~50k ticks per phase; nodes are phase-stable and spend
// MaxRun-bounded runs on idle promises. This is the idle-heavy case.
const benchIdleInstr = 1e14

func BenchmarkFleetTick100Active(b *testing.B) { benchFleetScale(b, 100, true, benchActiveInstr) }
func BenchmarkFleetTick100Idle(b *testing.B)   { benchFleetScale(b, 100, true, benchIdleInstr) }
func BenchmarkFleetTick10kActive(b *testing.B) {
	benchFleetScale(b, 10000, true, benchActiveInstr)
}
func BenchmarkFleetTick10kIdle(b *testing.B) {
	benchFleetScale(b, 10000, true, benchIdleInstr)
}
