package fleet

import (
	"bytes"
	"strings"
	"testing"
)

// testOptions is a churn-heavy small fleet: jobs arrive every ~2s and
// stay ~8s, so a 200-tick run exercises arrivals, departures, node
// boot/teardown and queuing.
func testOptions(workers int) Options {
	return Options{
		Nodes:   4,
		Seed:    42,
		Workers: workers,
		Stream: StreamOptions{
			ArrivalRate:  0.5,
			DurationMean: 8,
			DurationMin:  2,
			DurationMax:  20,
		},
	}
}

func runCSV(t *testing.T, opt Options, ticks int) string {
	t.Helper()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ticks); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Series().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDeterminismAcrossWorkers is the fleet's core invariant (and the
// PR's acceptance criterion): any worker count produces byte-identical
// per-tick output — parallelism only changes wall-clock time.
func TestDeterminismAcrossWorkers(t *testing.T) {
	serial := runCSV(t, testOptions(1), 200)
	for _, workers := range []int{2, 4, 8} {
		if got := runCSV(t, testOptions(workers), 200); got != serial {
			t.Fatalf("workers=%d output differs from serial", workers)
		}
	}
	if !strings.Contains(serial, "sumips") {
		t.Fatalf("CSV missing header: %q", serial[:80])
	}
}

// TestDeterminismAcrossRuns replays the same seed twice.
func TestDeterminismAcrossRuns(t *testing.T) {
	a := runCSV(t, testOptions(0), 150)
	b := runCSV(t, testOptions(0), 150)
	if a != b {
		t.Fatal("same seed, different output")
	}
}

// TestSeedChangesRun guards against the seed being ignored.
func TestSeedChangesRun(t *testing.T) {
	a := runCSV(t, testOptions(1), 150)
	opt := testOptions(1)
	opt.Seed = 43
	if b := runCSV(t, opt, 150); a == b {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestChurnBookkeeping runs long enough for full job lifecycles and
// checks the conservation law arrived = departed + running + queued.
func TestChurnBookkeeping(t *testing.T) {
	c, err := New(testOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(400); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Arrived == 0 || s.Departed == 0 {
		t.Fatalf("expected churn, got %+v", s)
	}
	if s.Arrived != s.Departed+s.Running+s.Queued {
		t.Fatalf("job conservation violated: %+v", s)
	}
	if s.Placed != s.Departed+s.Running {
		t.Fatalf("placement conservation violated: %+v", s)
	}
	if s.MeanJain <= 0 || s.MeanJain > 1 {
		t.Fatalf("Jain out of range: %+v", s)
	}
}

// TestQueueingWhenSaturated floods a single tiny node and checks jobs
// wait in FIFO order instead of being dropped or over-admitted.
func TestQueueingWhenSaturated(t *testing.T) {
	opt := Options{
		Nodes:          1,
		Seed:           7,
		Workers:        1,
		MaxJobsPerNode: 2,
		Stream: StreamOptions{
			ArrivalRate:  2,
			DurationMean: 1000, // effectively immortal jobs
			DurationMin:  1000,
			DurationMax:  1000,
		},
	}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Running != 2 {
		t.Fatalf("node over/under-admitted: running=%d want 2", s.Running)
	}
	if s.Queued == 0 {
		t.Fatal("expected a backlog on a saturated node")
	}
	if s.Arrived != s.Running+s.Queued {
		t.Fatalf("lost jobs: %+v", s)
	}
}

// TestPlacersProduceValidRuns exercises every registered placer on the
// same churn and verifies the admission invariants hold.
func TestPlacersProduceValidRuns(t *testing.T) {
	for _, name := range PlacerNames() {
		opt := testOptions(0)
		opt.Placer = name
		c, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(250); err != nil {
			t.Fatalf("placer %s: %v", name, err)
		}
		s := c.Summary()
		if s.Arrived != s.Departed+s.Running+s.Queued {
			t.Fatalf("placer %s: job conservation violated: %+v", name, s)
		}
	}
}

// TestPoliciesOnFleet runs a cheap baseline policy per node to confirm
// the registry plumbs through the fleet.
func TestPoliciesOnFleet(t *testing.T) {
	for _, policy := range []string{"random", "static", "parties"} {
		opt := testOptions(0)
		opt.Policy = policy
		c, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(100); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
}

func TestUnknownNamesError(t *testing.T) {
	opt := testOptions(1)
	opt.Placer = "nope"
	if _, err := New(opt); err == nil || !strings.Contains(err.Error(), "fairness") {
		t.Fatalf("want placer error listing valid names, got %v", err)
	}
	opt = testOptions(1)
	opt.Policy = "nope"
	if _, err := New(opt); err == nil || !strings.Contains(err.Error(), "satori") {
		t.Fatalf("want policy error listing valid names, got %v", err)
	}
}

// TestStreamDeterminism draws two streams from one seed and compares
// every field of every arrival.
func TestStreamDeterminism(t *testing.T) {
	mk := func() *JobStream {
		s, err := NewJobStream(StreamOptions{Seed: 9, ArrivalRate: 1, DurationMean: 10})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	ja, jb := a.ArrivalsUntil(100), b.ArrivalsUntil(100)
	if len(ja) == 0 || len(ja) != len(jb) {
		t.Fatalf("arrival counts differ: %d vs %d", len(ja), len(jb))
	}
	for i := range ja {
		if ja[i].Arrival != jb[i].Arrival || ja[i].Duration != jb[i].Duration ||
			ja[i].Profile.Name != jb[i].Profile.Name || ja[i].ID != jb[i].ID {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, ja[i], jb[i])
		}
		if ja[i].Duration < 5 || ja[i].Duration > 120 {
			t.Fatalf("duration %g outside default bounds", ja[i].Duration)
		}
	}
}

// TestFairnessAwareProtectsDepressedNode: node 0 is lighter but its jobs
// already run at 0.3x; crushing them further (and adding a 0.33x
// newcomer next to 0.9x jobs) widens the speedup spread, while placing
// on node 1 drags the high-flyers toward the strugglers and equalizes.
// The fairness placer must pick node 1 where least-loaded picks node 0.
func TestFairnessAwareProtectsDepressedNode(t *testing.T) {
	views := []NodeView{
		{ID: 0, Jobs: 2, Capacity: 5, Cores: 10, Speedups: []float64{0.3, 0.3}},
		{ID: 1, Jobs: 3, Capacity: 5, Cores: 10, Speedups: []float64{0.9, 0.9, 0.9}},
	}
	if got := (LeastLoadedCores{}).Place(&Job{}, views); got != 0 {
		t.Fatalf("least-loaded chose node %d, want lighter node 0", got)
	}
	if got := (FairnessAware{}).Place(&Job{}, views); got != 1 {
		t.Fatalf("fairness placer chose node %d, want Jain-maximizing node 1", got)
	}
	// Spot-check the prediction math on candidate 1: residents scale by
	// k/(k+1), the newcomer gets 1/(k+1), Jain = (Σs)²/(n·Σs²).
	got := predictedJain(views, 1)
	want := 529.0 / 618.0 // [0.3 0.3 0.675 0.675 0.675 0.25] exactly
	if diff := got - want; diff < -1e-5 || diff > 1e-5 {
		t.Fatalf("predictedJain = %v, want %v", got, want)
	}
}

func TestLeastLoadedCores(t *testing.T) {
	views := []NodeView{
		{ID: 0, Jobs: 4, Capacity: 5, Cores: 10},
		{ID: 1, Jobs: 2, Capacity: 5, Cores: 10},
		{ID: 2, Jobs: 5, Capacity: 5, Cores: 10}, // full
	}
	if got := (LeastLoadedCores{}).Place(&Job{}, views); got != 1 {
		t.Fatalf("least-loaded chose %d, want 1", got)
	}
}

func TestRoundRobinSkipsFullNodes(t *testing.T) {
	rr := &RoundRobin{}
	views := []NodeView{
		{ID: 0, Jobs: 0, Capacity: 1, Cores: 10},
		{ID: 1, Jobs: 1, Capacity: 1, Cores: 10}, // full
		{ID: 2, Jobs: 0, Capacity: 1, Cores: 10},
	}
	if got := rr.Place(&Job{}, views); got != 0 {
		t.Fatalf("first placement on %d, want 0", got)
	}
	views[0].Jobs = 1
	if got := rr.Place(&Job{}, views); got != 2 {
		t.Fatalf("second placement on %d, want 2 (skip full node 1)", got)
	}
	views[2].Jobs = 1
	if got := rr.Place(&Job{}, views); got != -1 {
		t.Fatalf("placement on full fleet returned %d, want -1", got)
	}
}

// TestFairnessAwareDegenerateTieBreaksByLoad is the degenerate-scoring
// bugfix regression: when every reported speedup is zero (fully stalled
// fleet), the predicted Jain is identical for every candidate — the
// newcomer's share dominates a sum of zeros — and the pre-fix argmax
// silently collapsed to lowest-index packing. The placer must spread by
// load instead.
func TestFairnessAwareDegenerateTieBreaksByLoad(t *testing.T) {
	views := []NodeView{
		{ID: 0, Jobs: 3, Capacity: 5, Cores: 10, Speedups: []float64{0, 0, 0}},
		{ID: 1, Jobs: 1, Capacity: 5, Cores: 10, Speedups: []float64{0}},
	}
	// The predictions really do tie (both 0.2 here), so only the
	// tie-break can separate the candidates.
	j0, j1 := predictedJain(views, 0), predictedJain(views, 1)
	if d := j0 - j1; d < -1e-12 || d > 1e-12 {
		t.Fatalf("degenerate predictions did not tie: %v vs %v", j0, j1)
	}
	if got := (FairnessAware{}).Place(&Job{}, views); got != 1 {
		t.Fatalf("fairness placer chose node %d under degenerate scoring, want less-loaded node 1", got)
	}
	// An all-empty fleet ties every candidate at 1; the load tie-break
	// (equal loads) keeps the lowest index.
	if got := (FairnessAware{}).Place(&Job{}, []NodeView{
		{ID: 0, Jobs: 0, Capacity: 5, Cores: 10},
		{ID: 1, Jobs: 0, Capacity: 5, Cores: 10},
	}); got != 0 {
		t.Fatalf("empty-fleet tie broke to node %d, want 0", got)
	}
	// The non-degenerate path is untouched: strictly better Jain still
	// wins regardless of load.
	if got := (FairnessAware{}).Place(&Job{}, []NodeView{
		{ID: 0, Jobs: 2, Capacity: 5, Cores: 10, Speedups: []float64{0.3, 0.3}},
		{ID: 1, Jobs: 3, Capacity: 5, Cores: 10, Speedups: []float64{0.9, 0.9, 0.9}},
	}); got != 1 {
		t.Fatalf("fairness placer chose node %d, want Jain-maximizing node 1", got)
	}
}
