package workloads

import (
	"testing"

	"satori/internal/resource"
	"satori/internal/sim"
)

func TestSuiteSizes(t *testing.T) {
	if got := len(PARSEC()); got != 7 {
		t.Errorf("PARSEC has %d profiles, want 7 (Table I + vips)", got)
	}
	if got := len(CloudSuite()); got != 5 {
		t.Errorf("CloudSuite has %d profiles, want 5", got)
	}
	if got := len(ECP()); got != 5 {
		t.Errorf("ECP has %d profiles, want 5", got)
	}
}

func TestAllProfilesValid(t *testing.T) {
	for suite, ps := range Suites() {
		for _, p := range ps {
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%s: %v", suite, p.Name, err)
			}
			if p.Suite != suite {
				t.Errorf("%s claims suite %q, registered under %q", p.Name, p.Suite, suite)
			}
		}
	}
}

func TestNoDuplicateNames(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Names() {
		if seen[name] {
			t.Errorf("duplicate benchmark name %q", name)
		}
		seen[name] = true
	}
	// 17 batch benchmarks (Tables I-III) + 3 latency-critical services.
	if len(seen) != 20 {
		t.Errorf("total benchmarks = %d, want 20", len(seen))
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("fluidanimate")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "fluidanimate" || p.Suite != SuitePARSEC {
		t.Errorf("ByName returned %s/%s", p.Suite, p.Name)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPaperMixCounts(t *testing.T) {
	cases := []struct {
		suite string
		want  int
		jobs  int
	}{
		{SuitePARSEC, 21, 5},     // C(7,5)
		{SuiteCloudSuite, 10, 3}, // C(5,3)
		{SuiteECP, 10, 2},        // C(5,2)
	}
	for _, c := range cases {
		mixes, err := PaperMixes(c.suite)
		if err != nil {
			t.Fatal(err)
		}
		if len(mixes) != c.want {
			t.Errorf("%s: %d mixes, want %d", c.suite, len(mixes), c.want)
		}
		for _, m := range mixes {
			if len(m.Profiles) != c.jobs {
				t.Errorf("%s mix %d has %d jobs, want %d", c.suite, m.Index, len(m.Profiles), c.jobs)
			}
		}
	}
	if _, err := PaperMixes("nope"); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestMixesAreDistinctAndOrdered(t *testing.T) {
	mixes, err := Mixes(PARSEC(), 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, m := range mixes {
		if m.Index != i {
			t.Errorf("mix %d has Index %d", i, m.Index)
		}
		key := ""
		for _, n := range m.Names() {
			key += n + "|"
		}
		if seen[key] {
			t.Errorf("duplicate mix %v", m.Names())
		}
		seen[key] = true
	}
	// First mix is the lexicographically first combination.
	first := mixes[0].Names()
	want := []string{"blackscholes", "canneal", "fluidanimate", "freqmine", "streamcluster"}
	for i := range want {
		if first[i] != want[i] {
			t.Errorf("first mix = %v, want %v", first, want)
			break
		}
	}
}

func TestMixesValidation(t *testing.T) {
	if _, err := Mixes(PARSEC(), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Mixes(PARSEC(), 8); err == nil {
		t.Error("k>n accepted")
	}
	single, err := Mixes(PARSEC(), 7)
	if err != nil || len(single) != 1 {
		t.Errorf("k=n should give exactly 1 mix, got %d (%v)", len(single), err)
	}
}

func TestProfilesRunOnDefaultMachine(t *testing.T) {
	// Every paper mix must simulate cleanly with sensible speedups.
	for _, suite := range []string{SuitePARSEC, SuiteCloudSuite, SuiteECP} {
		mixes, err := PaperMixes(suite)
		if err != nil {
			t.Fatal(err)
		}
		m := mixes[0]
		s, err := sim.New(sim.DefaultMachine(), m.Profiles, sim.Options{Seed: 1, NoiseSigma: -1})
		if err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		iso := s.ExactIsolated()
		ips, err := s.ExactIPS(s.Space().EqualSplit())
		if err != nil {
			t.Fatal(err)
		}
		for j := range ips {
			sp := ips[j] / iso[j]
			if sp <= 0.05 || sp > 1 {
				t.Errorf("%s mix0 job %s: equal-split speedup %g out of plausible range",
					suite, s.JobName(j), sp)
			}
		}
	}
}

func TestProfilesAreDifferentiated(t *testing.T) {
	// The fleet must not be homogeneous: under a cache-starved vs
	// cache-rich allocation, relative gains should differ meaningfully
	// across PARSEC benchmarks (this is what creates donor/receiver
	// structure for the policies to exploit).
	machine := sim.DefaultMachine()
	gains := map[string]float64{}
	for _, p := range PARSEC() {
		s, err := sim.New(machine, []*sim.Profile{p, p}, sim.Options{NoiseSigma: -1})
		if err != nil {
			t.Fatal(err)
		}
		space := s.Space()
		starved := space.NewConfig()
		rich := space.NewConfig()
		for r, res := range space.Resources {
			starved.Alloc[r][0] = 1
			starved.Alloc[r][1] = res.Units - 1
			rich.Alloc[r][0] = res.Units - 1
			rich.Alloc[r][1] = 1
		}
		ipsS, err := s.ExactIPS(starved)
		if err != nil {
			t.Fatal(err)
		}
		ipsR, err := s.ExactIPS(rich)
		if err != nil {
			t.Fatal(err)
		}
		gains[p.Name] = ipsR[0] / ipsS[0]
	}
	min, max := 1e18, 0.0
	for _, g := range gains {
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if max/min < 1.3 {
		t.Errorf("benchmarks too homogeneous: gain spread %v", gains)
	}
}

func TestFluidanimateIsCoreSensitive(t *testing.T) {
	// Sec. V attributes mix 0's low gain to fluidanimate's core
	// sensitivity; verify it gains more from cores than canneal does.
	coreGain := func(name string) float64 {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(sim.DefaultMachine(), []*sim.Profile{p, p}, sim.Options{NoiseSigma: -1})
		if err != nil {
			t.Fatal(err)
		}
		space := s.Space()
		few := space.EqualSplit()
		many := few.Clone()
		ci := 0 // cores are the first resource
		few.Alloc[ci][0], few.Alloc[ci][1] = 2, 8
		many.Alloc[ci][0], many.Alloc[ci][1] = 8, 2
		ipsFew, err := s.ExactIPS(few)
		if err != nil {
			t.Fatal(err)
		}
		ipsMany, err := s.ExactIPS(many)
		if err != nil {
			t.Fatal(err)
		}
		return ipsMany[0] / ipsFew[0]
	}
	if coreGain("fluidanimate") <= coreGain("canneal") {
		t.Error("fluidanimate should be more core-sensitive than canneal")
	}
}

func TestAMGAndHypreAreSimilar(t *testing.T) {
	// Paper: AMG and Hypre "have similar resource requirements for all
	// resources". Their isolated IPS should be within 25% and their
	// sensitivities should order the same way.
	a, _ := ByName("amg")
	h, _ := ByName("hypre")
	s, err := sim.New(sim.DefaultMachine(), []*sim.Profile{a, h}, sim.Options{NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	iso := s.ExactIsolated()
	ratio := iso[0] / iso[1]
	if ratio < 0.75 || ratio > 1.33 {
		t.Errorf("amg/hypre isolated ratio %g, want within 25%%", ratio)
	}
}

func TestReturnedProfilesAreFreshCopies(t *testing.T) {
	a := PARSEC()
	b := PARSEC()
	a[0].Phases[0].IPSPeak = 1
	if b[0].Phases[0].IPSPeak == 1 {
		t.Error("PARSEC() returns shared profile storage")
	}
}

func TestMixProfilesIndependentAcrossMixes(t *testing.T) {
	mixes, err := PaperMixes(SuitePARSEC)
	if err != nil {
		t.Fatal(err)
	}
	// Mixes share the same 7 underlying profiles within one call — but
	// a job mix handed to a simulator must still be valid.
	for _, m := range mixes[:3] {
		if _, err := sim.New(sim.DefaultMachine(), m.Profiles, sim.Options{}); err != nil {
			t.Errorf("mix %d rejected: %v", m.Index, err)
		}
	}
}

func TestSpaceShapeForPaperMixes(t *testing.T) {
	mixes, _ := PaperMixes(SuitePARSEC)
	s, err := sim.New(sim.DefaultMachine(), mixes[0].Profiles, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	space := s.Space()
	if space.Jobs != 5 || len(space.Resources) != 3 {
		t.Errorf("space shape %d jobs x %d resources, want 5x3", space.Jobs, len(space.Resources))
	}
	// The 15-dimensional configuration of Fig. 15.
	if space.Dim() != 15 {
		t.Errorf("Dim = %d, want 15", space.Dim())
	}
	var _ resource.Config = space.EqualSplit()
}
