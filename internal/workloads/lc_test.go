package workloads

import (
	"bytes"
	"strings"
	"testing"

	"satori/internal/sim"
)

// TestLCSpecCalibration pins the property the SLO experiment depends
// on: every LC profile's critical IPS is reachable on the default
// machine (a generous allocation attains), and the suite contains jobs
// that genuinely violate under the equal split (the recoverable-
// violation regime) as well as at least one that attains comfortably.
func TestLCSpecCalibration(t *testing.T) {
	batch := PARSEC()
	violators := 0
	for _, p := range LC() {
		mix := []*sim.Profile{p, batch[1], batch[2], batch[4], batch[5]}
		s, err := sim.New(sim.DefaultMachine(), mix, sim.Options{Seed: 1, NoiseSigma: -1})
		if err != nil {
			t.Fatal(err)
		}
		crit := p.SLO.CriticalIPS()

		eq, err := s.ExactIPS(s.Current())
		if err != nil {
			t.Fatal(err)
		}
		if p.SLO.Violating(eq[0]) {
			violators++
		}

		// A generous allocation: half of every resource to the LC job,
		// the rest split across the batch jobs.
		sp := s.Space()
		c := sp.NewConfig()
		for r := range c.Alloc {
			total := sp.Resources[r].Units
			give := total / 2
			c.Alloc[r][0] = give
			rest := total - give
			for j := 1; j < len(mix); j++ {
				c.Alloc[r][j] = rest / (len(mix) - 1)
			}
			for j := 0; j < rest-(rest/(len(mix)-1))*(len(mix)-1); j++ {
				c.Alloc[r][1+j%(len(mix)-1)]++
			}
		}
		gen, err := s.ExactIPS(c)
		if err != nil {
			t.Fatal(err)
		}
		if gen[0] <= crit {
			t.Errorf("%s: generous allocation IPS %.3g does not clear critical %.3g — SLO unrecoverable", p.Name, gen[0], crit)
		}
	}
	if violators == 0 {
		t.Errorf("no LC profile violates under the equal split — the SLO experiment would have nothing to recover")
	}
	if violators == len(LC()) {
		t.Errorf("every LC profile violates under the equal split — want at least one comfortable service for diversity")
	}
}

func TestMixedMixesDeterministicAndShaped(t *testing.T) {
	opt := MixedMixOptions{Jobs: 5, LCFraction: 0.4, Count: 6, Seed: 42, TargetScaleMin: 0.8, TargetScaleMax: 1.25}
	a, err := MixedMixes(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MixedMixes(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 {
		t.Fatalf("got %d mixes, want 6", len(a))
	}
	for i := range a {
		if strings.Join(a[i].Names(), ",") != strings.Join(b[i].Names(), ",") {
			t.Fatalf("mix %d not deterministic: %v vs %v", i, a[i].Names(), b[i].Names())
		}
		nLC := 0
		for _, p := range a[i].Profiles {
			if err := p.Validate(); err != nil {
				t.Fatalf("mix %d: %v", i, err)
			}
			if p.SLO != nil {
				nLC++
			}
		}
		if nLC != 2 || len(a[i].Profiles) != 5 {
			t.Fatalf("mix %d: %d LC of %d jobs, want 2 of 5", i, nLC, len(a[i].Profiles))
		}
	}
	// Scaling must not alias suite storage: the suite's own targets are
	// untouched by generating scaled mixes.
	orig := LC()[0].SLO.TargetP99
	if _, err := MixedMixes(MixedMixOptions{TargetScaleMin: 0.5, TargetScaleMax: 0.5, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if LC()[0].SLO.TargetP99 != orig {
		t.Fatalf("MixedMixes mutated suite storage")
	}
	// Different seeds draw different mixes.
	c, err := MixedMixes(MixedMixOptions{Jobs: 5, LCFraction: 0.4, Count: 6, Seed: 43, TargetScaleMin: 0.8, TargetScaleMax: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if strings.Join(a[i].Names(), ",") != strings.Join(c[i].Names(), ",") {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 generated identical mix lists")
	}
}

func TestJSONRoundTripSLO(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, LC()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"target_p99"`) {
		t.Fatalf("serialized LC profiles carry no slo section:\n%s", buf.String())
	}
	got, err := ReadProfiles(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range LC() {
		g := got[i]
		if g.SLO == nil {
			t.Fatalf("%s: SLO lost in round trip", p.Name)
		}
		if *g.SLO != *p.SLO {
			t.Fatalf("%s: SLO round trip mismatch: %+v vs %+v", p.Name, g.SLO, p.SLO)
		}
	}
	// Batch profiles stay SLO-free (and the field is omitted on disk).
	buf.Reset()
	if err := WriteProfiles(&buf, PARSEC()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "slo") {
		t.Fatalf("batch profiles serialized an slo section")
	}
}
