package workloads

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	orig := PARSEC()
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost profiles: %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Name != orig[i].Name || got[i].Suite != orig[i].Suite {
			t.Errorf("profile %d identity changed: %s/%s", i, got[i].Suite, got[i].Name)
		}
		if len(got[i].Phases) != len(orig[i].Phases) {
			t.Fatalf("profile %d phase count changed", i)
		}
		for k := range orig[i].Phases {
			if got[i].Phases[k] != orig[i].Phases[k] {
				t.Errorf("profile %d phase %d changed: %+v vs %+v",
					i, k, got[i].Phases[k], orig[i].Phases[k])
			}
		}
	}
}

func TestReadProfilesValidates(t *testing.T) {
	okPhase := `{"name":"p","instructions":1e9,"ips_peak":1e10,"serial_frac":0.1,` +
		`"mpi_max":0.01,"mpi_min":0.001,"ways_half":2,"mem_stall_cost":100}`
	cases := map[string]string{
		"empty list":        `[]`,
		"not json":          `{{{`,
		"unknown field":     `[{"name":"x","bogus":1,"phases":[]}]`,
		"invalid phase":     `[{"name":"x","phases":[{"name":"p","instructions":-1,"ips_peak":1,"serial_frac":0,"mpi_max":0,"mpi_min":0,"ways_half":1,"mem_stall_cost":0}]}]`,
		"no phases":         `[{"name":"x","phases":[]}]`,
		"unknown slo field": `[{"name":"x","slo":{"target_p99":0.01,"service_instructions":1e6,"arrival_rate":100,"bogus":1},"phases":[` + okPhase + `]}]`,
		"negative slo p99":  `[{"name":"x","slo":{"target_p99":-0.01,"service_instructions":1e6,"arrival_rate":100},"phases":[` + okPhase + `]}]`,
		"zero arrival rate": `[{"name":"x","slo":{"target_p99":0.01,"service_instructions":1e6,"arrival_rate":0},"phases":[` + okPhase + `]}]`,
		"empty slo section": `[{"name":"x","slo":{},"phases":[` + okPhase + `]}]`,
	}
	for name, body := range cases {
		if _, err := ReadProfiles(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestReadProfilesHandWrittenSLO accepts a hand-authored LC profile and
// preserves its spec — the documented way to bring a custom LC workload.
func TestReadProfilesHandWrittenSLO(t *testing.T) {
	body := `[{"name":"mine","slo":{"target_p99":0.02,"service_instructions":2e6,"arrival_rate":500},
		"phases":[{"name":"p","instructions":1e9,"ips_peak":1e10,"serial_frac":0.1,
		"mpi_max":0.01,"mpi_min":0.001,"ways_half":2,"mem_stall_cost":100}]}]`
	ps, err := ReadProfiles(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	s := ps[0].SLO
	if s == nil || s.TargetP99 != 0.02 || s.ServiceInstructions != 2e6 || s.ArrivalRate != 500 {
		t.Fatalf("SLO section parsed as %+v", s)
	}
}

func TestReadProfilesDefaultsSuite(t *testing.T) {
	body := `[{"name":"mine","phases":[{"name":"p","instructions":1e9,"ips_peak":1e10,
		"serial_frac":0.1,"mpi_max":0.01,"mpi_min":0.001,"ways_half":2,"mem_stall_cost":100}]}]`
	ps, err := ReadProfiles(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Suite != "custom" {
		t.Errorf("default suite = %q", ps[0].Suite)
	}
}
