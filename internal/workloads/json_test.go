package workloads

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	orig := PARSEC()
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost profiles: %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Name != orig[i].Name || got[i].Suite != orig[i].Suite {
			t.Errorf("profile %d identity changed: %s/%s", i, got[i].Suite, got[i].Name)
		}
		if len(got[i].Phases) != len(orig[i].Phases) {
			t.Fatalf("profile %d phase count changed", i)
		}
		for k := range orig[i].Phases {
			if got[i].Phases[k] != orig[i].Phases[k] {
				t.Errorf("profile %d phase %d changed: %+v vs %+v",
					i, k, got[i].Phases[k], orig[i].Phases[k])
			}
		}
	}
}

func TestReadProfilesValidates(t *testing.T) {
	cases := map[string]string{
		"empty list":    `[]`,
		"not json":      `{{{`,
		"unknown field": `[{"name":"x","bogus":1,"phases":[]}]`,
		"invalid phase": `[{"name":"x","phases":[{"name":"p","instructions":-1,"ips_peak":1,"serial_frac":0,"mpi_max":0,"mpi_min":0,"ways_half":1,"mem_stall_cost":0}]}]`,
		"no phases":     `[{"name":"x","phases":[]}]`,
	}
	for name, body := range cases {
		if _, err := ReadProfiles(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadProfilesDefaultsSuite(t *testing.T) {
	body := `[{"name":"mine","phases":[{"name":"p","instructions":1e9,"ips_peak":1e10,
		"serial_frac":0.1,"mpi_max":0.01,"mpi_min":0.001,"ways_half":2,"mem_stall_cost":100}]}]`
	ps, err := ReadProfiles(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Suite != "custom" {
		t.Errorf("default suite = %q", ps[0].Suite)
	}
}
