// Package workloads defines synthetic performance profiles for every
// benchmark the SATORI paper evaluates: the 7 PARSEC workloads of Table I
// (plus vips, used throughout Sec. V), the 5 CloudSuite workloads of
// Table II and the 5 ECP proxy apps of Table III.
//
// Each profile encodes the benchmark's published resource character as a
// looping schedule of sim.Phase values — core (Amdahl) scaling, LLC
// miss-ratio curve, bandwidth demand — following the paper's own
// characterizations where it gives them (e.g. fluidanimate is strongly
// core-sensitive, blackscholes and fluidanimate contend for memory
// bandwidth, miniFE has intensive compute and LLC requirements, AMG and
// Hypre have near-identical demands). The profiles are a substitution for
// running the real binaries (see DESIGN.md §1): the evaluation only
// depends on each job's time-varying sensitivity to the partitioned
// resources, which is exactly what a profile expresses.
package workloads

import (
	"fmt"
	"sort"

	"satori/internal/sim"
)

// Suite names used in Profile.Suite.
const (
	SuitePARSEC     = "parsec"
	SuiteCloudSuite = "cloudsuite"
	SuiteECP        = "ecp"
	// SuiteLC (the latency-critical suite) is declared in lc.go.
)

// phase builds a sim.Phase from a duration in typical co-located
// wall-clock seconds: under co-location a job runs at roughly 0.3× its
// isolated speed, which is itself around 0.4× the peak rate, so the work
// quantum is scaled by ~0.12×peak. This keeps program phases (and hence
// the drift of the optimal configuration, Fig. 1) on the several-second
// timescale the paper characterizes.
func phase(name string, durSec, ipsPeak, serial, mpiMax, mpiMin, waysHalf, stallCost, powerSens float64) sim.Phase {
	return sim.Phase{
		Name:             name,
		Instructions:     durSec * ipsPeak * 0.12,
		IPSPeak:          ipsPeak,
		SerialFrac:       serial,
		MPIMax:           mpiMax,
		MPIMin:           mpiMin,
		WaysHalf:         waysHalf,
		MemStallCost:     stallCost,
		PowerSensitivity: powerSens,
	}
}

// PARSEC returns the 7 PARSEC profiles (Table I plus vips) in canonical
// (alphabetical) order. Fresh copies are returned on every call.
//
// The parameters are tuned for complementary heterogeneity — the property
// the paper's evaluation depends on: compute-scalers convert cores into
// IPS, cache-lovers convert LLC ways, streamers convert bandwidth, and
// each is nearly indifferent to the resources it does not need. Matching
// resources to demands is therefore positive-sum (throughput AND fairness
// can both improve over the equal split), while greedy throughput
// maximization still conflicts with fairness by over-feeding the
// highest-IPS jobs.
func PARSEC() []*sim.Profile {
	return []*sim.Profile{
		{
			// Option pricing over streaming option batches:
			// bandwidth-hungry (Sec. V: "blackscholes and
			// fluidanimate both contend for ... memory
			// bandwidth"), prefetch-friendly (low stall cost),
			// limited core scaling past the memory wall.
			Name: "blackscholes", Suite: SuitePARSEC,
			Phases: []sim.Phase{
				phase("price", 8, 2.6e10, 0.30, 0.040, 0.034, 1.2, 25, 0.60),
				phase("sweep", 5, 2.2e10, 0.24, 0.050, 0.042, 1.2, 25, 0.55),
			},
		},
		{
			// Simulated annealing on a chip netlist: enormous
			// working set, random access, strongly cache-sensitive
			// and latency-bound; poor core scaling.
			Name: "canneal", Suite: SuitePARSEC,
			Phases: []sim.Phase{
				phase("anneal", 10, 2.0e10, 0.50, 0.050, 0.004, 4.0, 260, 0.35),
				phase("refine", 6, 2.2e10, 0.42, 0.034, 0.003, 3.2, 240, 0.40),
			},
		},
		{
			// Fluid dynamics: near-linear core scaling (the paper
			// singles out its "high compute-resource (number of
			// cores) sensitivity") with a bandwidth-leaning
			// neighbor-exchange phase.
			Name: "fluidanimate", Suite: SuitePARSEC,
			Phases: []sim.Phase{
				phase("advance", 7, 4.2e10, 0.01, 0.006, 0.004, 1.5, 40, 0.85),
				phase("exchange", 4, 3.2e10, 0.04, 0.026, 0.020, 1.4, 30, 0.60),
				phase("rebuild", 3, 3.6e10, 0.02, 0.008, 0.005, 1.8, 40, 0.70),
			},
		},
		{
			// Frequent itemset mining: cache-friendly FP-tree,
			// modest parallelism — a "small" job that keeps most
			// of its isolated speed even on a sliver of the
			// machine.
			Name: "freqmine", Suite: SuitePARSEC,
			Phases: []sim.Phase{
				phase("build", 6, 1.4e10, 0.45, 0.018, 0.003, 2.2, 160, 0.50),
				phase("mine", 12, 1.6e10, 0.38, 0.012, 0.002, 2.0, 150, 0.55),
			},
		},
		{
			// Online stream clustering: pure streaming, flat
			// miss-ratio curve (cache barely helps), very high
			// bandwidth demand, moderate core scaling.
			Name: "streamcluster", Suite: SuitePARSEC,
			Phases: []sim.Phase{
				phase("stream", 9, 3.0e10, 0.20, 0.046, 0.040, 1.0, 20, 0.60),
				phase("recluster", 4, 2.6e10, 0.28, 0.052, 0.046, 1.0, 22, 0.50),
			},
		},
		{
			// Swaption pricing with Monte Carlo: embarrassingly
			// parallel, tiny working set, almost purely
			// compute-bound — the canonical core-scaler.
			Name: "swaptions", Suite: SuitePARSEC,
			Phases: []sim.Phase{
				phase("simulate", 14, 3.8e10, 0.015, 0.0008, 0.0004, 1.0, 60, 0.90),
			},
		},
		{
			// Image-processing pipeline: alternating compute and
			// memory stages, middling on every axis.
			Name: "vips", Suite: SuitePARSEC,
			Phases: []sim.Phase{
				phase("decode", 4, 2.2e10, 0.18, 0.024, 0.014, 2.0, 90, 0.60),
				phase("convolve", 7, 2.8e10, 0.06, 0.010, 0.006, 1.8, 70, 0.75),
				phase("encode", 4, 1.8e10, 0.30, 0.016, 0.008, 2.2, 100, 0.55),
			},
		},
	}
}

// CloudSuite returns the 5 CloudSuite profiles of Table II, tuned with
// the same complementary-heterogeneity scheme as PARSEC (see the PARSEC
// doc comment).
func CloudSuite() []*sim.Profile {
	return []*sim.Profile{
		{
			// Naive Bayes over Wikipedia: scan-dominated streaming
			// over the corpus — prefetch-friendly, bandwidth-bound,
			// flat miss-ratio curve.
			Name: "data-analytics", Suite: SuiteCloudSuite,
			Phases: []sim.Phase{
				phase("scan", 8, 2.4e10, 0.22, 0.044, 0.038, 1.2, 24, 0.55),
				phase("classify", 5, 3.0e10, 0.03, 0.012, 0.0060, 1.8, 80, 0.70),
			},
		},
		{
			// PageRank on Twitter: random graph access, strongly
			// cache- and latency-sensitive, poor core scaling.
			Name: "graph-analytics", Suite: SuiteCloudSuite,
			Phases: []sim.Phase{
				phase("gather", 9, 1.9e10, 0.48, 0.048, 0.0045, 4.6, 250, 0.40),
				phase("apply", 4, 2.1e10, 0.36, 0.030, 0.0040, 3.6, 220, 0.50),
			},
		},
		{
			// In-memory filtering of movie ratings: large resident
			// set, bandwidth-heavy filter with cached aggregation.
			Name: "in-memory-analytics", Suite: SuiteCloudSuite,
			Phases: []sim.Phase{
				phase("filter", 7, 3.4e10, 0.04, 0.036, 0.026, 2.0, 45, 0.60),
				phase("aggregate", 5, 2.8e10, 0.08, 0.018, 0.0070, 2.8, 120, 0.55),
			},
		},
		{
			// Nginx video streaming: a "small" job — mostly kernel
			// and connection handling with a tiny hot set; it keeps
			// most of its speed on a sliver of the machine.
			Name: "media-streaming", Suite: SuiteCloudSuite,
			Phases: []sim.Phase{
				phase("serve", 12, 1.4e10, 0.55, 0.008, 0.0050, 1.2, 70, 0.65),
				phase("burst", 3, 1.8e10, 0.40, 0.014, 0.0090, 1.2, 60, 0.60),
			},
		},
		{
			// Web search: index lookups against a hot cache-resident
			// index; strongly way-sensitive, modest core scaling.
			Name: "web-search", Suite: SuiteCloudSuite,
			Phases: []sim.Phase{
				phase("query", 8, 2.2e10, 0.34, 0.040, 0.0045, 4.2, 230, 0.50),
				phase("rank", 4, 2.5e10, 0.22, 0.020, 0.0040, 3.0, 170, 0.60),
			},
		},
	}
}

// ECP returns the 5 Exascale-Computing-Project proxy-app profiles of
// Table III.
func ECP() []*sim.Profile {
	return []*sim.Profile{
		{
			// Unstructured finite elements: "intensive compute
			// (high IPC and FLOP rate) and last-level cache (high
			// L1 miss-rate) requirements" (Sec. V) — hungry for
			// both cores and ways.
			Name: "minife", Suite: SuiteECP,
			Phases: []sim.Phase{
				phase("assemble", 6, 4.2e10, 0.015, 0.040, 0.0070, 4.6, 130, 0.80),
				phase("cg-solve", 10, 4.6e10, 0.010, 0.034, 0.0090, 4.0, 110, 0.75),
			},
		},
		{
			// Monte Carlo neutronics macro-XS lookup: giant random
			// tables, nearly cache-insensitive (flat curve),
			// latency-bound with modest core scaling.
			Name: "xsbench", Suite: SuiteECP,
			Phases: []sim.Phase{
				phase("lookup", 12, 2.6e10, 0.04, 0.036, 0.030, 1.1, 140, 0.45),
			},
		},
		{
			// FFT for HACC: high LLC demand in transpose steps plus
			// bandwidth-heavy butterfly sweeps.
			Name: "swfft", Suite: SuiteECP,
			Phases: []sim.Phase{
				phase("butterfly", 5, 3.6e10, 0.02, 0.044, 0.020, 3.4, 50, 0.70),
				phase("transpose", 4, 3.0e10, 0.05, 0.052, 0.026, 3.8, 55, 0.55),
			},
		},
		{
			// Algebraic multigrid: classic bandwidth-bound sparse
			// kernels, prefetch-friendly, limited cache reuse.
			Name: "amg", Suite: SuiteECP,
			Phases: []sim.Phase{
				phase("smooth", 7, 3.2e10, 0.03, 0.050, 0.040, 1.8, 22, 0.55),
				phase("coarsen", 4, 2.7e10, 0.08, 0.044, 0.034, 2.2, 28, 0.50),
			},
		},
		{
			// Hypre linear solvers: the paper notes AMG and Hypre
			// "have similar resource requirements for all
			// resources"; the profile mirrors amg with small
			// offsets.
			Name: "hypre", Suite: SuiteECP,
			Phases: []sim.Phase{
				phase("smooth", 6, 3.1e10, 0.04, 0.048, 0.038, 1.9, 24, 0.55),
				phase("restrict", 5, 2.8e10, 0.07, 0.044, 0.033, 2.1, 26, 0.50),
			},
		},
	}
}

// Suites returns all suites keyed by name (the three batch suites plus
// the latency-critical profiles of lc.go).
func Suites() map[string][]*sim.Profile {
	return map[string][]*sim.Profile{
		SuitePARSEC:     PARSEC(),
		SuiteCloudSuite: CloudSuite(),
		SuiteECP:        ECP(),
		SuiteLC:         LC(),
	}
}

// ByName returns a fresh copy of the named profile from any suite.
func ByName(name string) (*sim.Profile, error) {
	for _, suite := range Suites() {
		for _, p := range suite {
			if p.Name == name {
				return p, nil
			}
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns the sorted names of every known benchmark.
func Names() []string {
	var out []string
	for _, suite := range Suites() {
		for _, p := range suite {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Mix is one co-location job mix: an index plus its member profiles.
type Mix struct {
	// Index is the mix's position in the deterministic enumeration
	// order (combinations in lexicographic order over the suite's
	// canonical profile order).
	Index int
	// Profiles are the co-located jobs.
	Profiles []*sim.Profile
}

// Names returns the benchmark names in the mix.
func (m Mix) Names() []string {
	out := make([]string, len(m.Profiles))
	for i, p := range m.Profiles {
		out[i] = p.Name
	}
	return out
}

// Mixes enumerates all k-of-n combinations of profiles in lexicographic
// order — the paper's job-mix construction: 5 of 7 PARSEC (21 mixes),
// 3 of 5 CloudSuite (10 mixes), 2 of 5 ECP (10 mixes).
func Mixes(profiles []*sim.Profile, k int) ([]Mix, error) {
	n := len(profiles)
	if k < 1 || k > n {
		return nil, fmt.Errorf("workloads: cannot choose %d of %d profiles", k, n)
	}
	var mixes []Mix
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		ps := make([]*sim.Profile, k)
		for i, v := range idx {
			ps[i] = profiles[v]
		}
		mixes = append(mixes, Mix{Index: len(mixes), Profiles: ps})
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return mixes, nil
}

// PaperMixes returns the paper's mix sets for a suite name: PARSEC 5-job,
// CloudSuite 3-job, ECP 2-job.
func PaperMixes(suite string) ([]Mix, error) {
	switch suite {
	case SuitePARSEC:
		return Mixes(PARSEC(), 5)
	case SuiteCloudSuite:
		return Mixes(CloudSuite(), 3)
	case SuiteECP:
		return Mixes(ECP(), 2)
	default:
		return nil, fmt.Errorf("workloads: unknown suite %q", suite)
	}
}
