package workloads

import (
	"fmt"
	"math"

	"satori/internal/sim"
	"satori/internal/slo"
	"satori/internal/stats"
)

// SuiteLC names the latency-critical suite.
const SuiteLC = "lc"

// LC returns the latency-critical profiles: interactive services whose
// observed IPS maps to request latency through the queueing model in
// internal/slo, each carrying a p99 SLO target. The profiles follow the
// PARTIES/CoPart evaluation cast — a key-value store, a front-end
// server, and an interactive search leaf — with resource characters
// chosen so an equal split under-provisions them (tail latency blows
// past the target) while a deliberate partition recovers attainment:
// the regime the SLO experiment measures. Fresh copies on every call.
//
// SLO calibration: each spec's CriticalIPS sits between the job's
// equal-split IPS and its well-provisioned co-located IPS on the
// default 5-job machine, so violation is real but recoverable (see
// TestLCSpecCalibration).
func LC() []*sim.Profile {
	return []*sim.Profile{
		{
			// In-memory key-value store: tiny per-request compute,
			// hot-set way-sensitive, latency-bound with modest core
			// scaling.
			Name: "memcached-lc", Suite: SuiteLC,
			Phases: []sim.Phase{
				phase("serve", 30, 1.8e10, 0.35, 0.036, 0.004, 3.0, 220, 0.45),
			},
			SLO: &slo.Spec{TargetP99: 0.012, ServiceInstructions: 4.0e6, ArrivalRate: 300},
		},
		{
			// Front-end web/proxy server: connection handling with a
			// small hot set; keeps most of its speed on a sliver of
			// the machine, but saturates when starved of cores.
			Name: "nginx-lc", Suite: SuiteLC,
			Phases: []sim.Phase{
				phase("proxy", 25, 1.5e10, 0.45, 0.010, 0.005, 1.4, 80, 0.60),
			},
			SLO: &slo.Spec{TargetP99: 0.015, ServiceInstructions: 8.0e6, ArrivalRate: 400},
		},
		{
			// Interactive search leaf: index lookups against a
			// cache-resident shard — strongly way-sensitive, the
			// classic tail-latency victim of LLC contention.
			Name: "search-lc", Suite: SuiteLC,
			Phases: []sim.Phase{
				phase("query", 28, 2.2e10, 0.30, 0.042, 0.005, 4.2, 240, 0.50),
			},
			SLO: &slo.Spec{TargetP99: 0.020, ServiceInstructions: 8.0e6, ArrivalRate: 100},
		},
	}
}

// cloneProfile deep-copies a profile (phases and SLO spec included) so
// generated mixes can rescale targets without aliasing suite storage.
func cloneProfile(p *sim.Profile) *sim.Profile {
	out := *p
	out.Phases = append([]sim.Phase(nil), p.Phases...)
	if p.SLO != nil {
		spec := *p.SLO
		out.SLO = &spec
	}
	return &out
}

// MixedMixOptions parameterizes MixedMixes. Zero values take defaults.
type MixedMixOptions struct {
	// Suite is the batch suite to draw from (default parsec).
	Suite string
	// Jobs is the co-location size (default 5, the PARSEC mix size).
	Jobs int
	// LCFraction is the fraction of slots holding latency-critical
	// jobs, rounded to at least one slot (default 0.4).
	LCFraction float64
	// Count is how many mixes to generate (default 10).
	Count int
	// Seed drives all draws; equal options generate equal mixes.
	Seed uint64
	// TargetScaleMin/Max bound the uniform per-job scaling of each LC
	// job's p99 target, modeling a distribution of SLO strictness
	// across service instances (defaults 1/1 = no scaling).
	TargetScaleMin, TargetScaleMax float64
}

func (o MixedMixOptions) fill() MixedMixOptions {
	if o.Suite == "" {
		o.Suite = SuitePARSEC
	}
	if o.Jobs <= 0 {
		o.Jobs = 5
	}
	if o.LCFraction <= 0 {
		o.LCFraction = 0.4
	}
	if o.Count <= 0 {
		o.Count = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TargetScaleMin <= 0 {
		o.TargetScaleMin = 1
	}
	if o.TargetScaleMax < o.TargetScaleMin {
		o.TargetScaleMax = o.TargetScaleMin
	}
	return o
}

// MixedMixes generates mixed batch+LC co-location mixes: each mix holds
// ceil(Jobs·LCFraction) latency-critical jobs (drawn from LC(), p99
// targets scaled by a uniform draw in [TargetScaleMin, TargetScaleMax])
// and distinct batch jobs drawn from the chosen suite. Scaled LC jobs
// are renamed with their effective target ("search-lc-24ms") so traces
// stay self-describing. Deterministic for equal options.
func MixedMixes(opt MixedMixOptions) ([]Mix, error) {
	opt = opt.fill()
	batch, ok := Suites()[opt.Suite]
	if !ok || opt.Suite == SuiteLC {
		return nil, fmt.Errorf("workloads: unknown batch suite %q", opt.Suite)
	}
	nLC := int(math.Ceil(float64(opt.Jobs) * opt.LCFraction))
	if nLC < 1 {
		nLC = 1
	}
	if nLC > opt.Jobs {
		nLC = opt.Jobs
	}
	nBatch := opt.Jobs - nLC
	if nBatch > len(batch) {
		return nil, fmt.Errorf("workloads: mix needs %d batch jobs but suite %q has %d", nBatch, opt.Suite, len(batch))
	}
	lc := LC()
	rng := stats.NewRNG(opt.Seed ^ 0x510C0DE)
	mixes := make([]Mix, opt.Count)
	for m := range mixes {
		ps := make([]*sim.Profile, 0, opt.Jobs)
		for i := 0; i < nLC; i++ {
			p := cloneProfile(lc[rng.Intn(len(lc))])
			scale := opt.TargetScaleMin + (opt.TargetScaleMax-opt.TargetScaleMin)*rng.Float64()
			if scale != 1 {
				p.SLO.TargetP99 *= scale
				p.Name = fmt.Sprintf("%s-%dms", p.Name, int(math.Round(p.SLO.TargetP99*1000)))
			}
			ps = append(ps, p)
		}
		perm := rng.Perm(len(batch))
		for i := 0; i < nBatch; i++ {
			ps = append(ps, batch[perm[i]])
		}
		mixes[m] = Mix{Index: m, Profiles: ps}
	}
	return mixes, nil
}
