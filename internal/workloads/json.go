package workloads

import (
	"encoding/json"
	"fmt"
	"io"

	"satori/internal/sim"
	"satori/internal/slo"
)

// jsonProfile is the on-disk schema for a workload profile. It mirrors
// sim.Profile/sim.Phase field-for-field with stable lowercase names so
// files survive internal refactors.
type jsonProfile struct {
	Name   string      `json:"name"`
	Suite  string      `json:"suite,omitempty"`
	Phases []jsonPhase `json:"phases"`
	SLO    *jsonSLO    `json:"slo,omitempty"`
}

// jsonSLO is the optional latency-critical section: present, the
// profile is an LC job with a p99 target (see slo.Spec for semantics).
type jsonSLO struct {
	TargetP99           float64 `json:"target_p99"`
	ServiceInstructions float64 `json:"service_instructions"`
	ArrivalRate         float64 `json:"arrival_rate"`
}

type jsonPhase struct {
	Name             string  `json:"name"`
	Instructions     float64 `json:"instructions"`
	IPSPeak          float64 `json:"ips_peak"`
	SerialFrac       float64 `json:"serial_frac"`
	MPIMax           float64 `json:"mpi_max"`
	MPIMin           float64 `json:"mpi_min"`
	WaysHalf         float64 `json:"ways_half"`
	MemStallCost     float64 `json:"mem_stall_cost"`
	PowerSensitivity float64 `json:"power_sensitivity,omitempty"`
}

// WriteProfiles serializes profiles as indented JSON.
func WriteProfiles(w io.Writer, profiles []*sim.Profile) error {
	out := make([]jsonProfile, len(profiles))
	for i, p := range profiles {
		jp := jsonProfile{Name: p.Name, Suite: p.Suite, Phases: make([]jsonPhase, len(p.Phases))}
		if p.SLO != nil {
			jp.SLO = &jsonSLO{
				TargetP99:           p.SLO.TargetP99,
				ServiceInstructions: p.SLO.ServiceInstructions,
				ArrivalRate:         p.SLO.ArrivalRate,
			}
		}
		for k, ph := range p.Phases {
			jp.Phases[k] = jsonPhase{
				Name: ph.Name, Instructions: ph.Instructions, IPSPeak: ph.IPSPeak,
				SerialFrac: ph.SerialFrac, MPIMax: ph.MPIMax, MPIMin: ph.MPIMin,
				WaysHalf: ph.WaysHalf, MemStallCost: ph.MemStallCost,
				PowerSensitivity: ph.PowerSensitivity,
			}
		}
		out[i] = jp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadProfiles parses and validates a JSON profile list written by
// WriteProfiles (or by hand; see the schema in this file).
func ReadProfiles(r io.Reader) ([]*sim.Profile, error) {
	var in []jsonProfile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("workloads: parsing profiles: %w", err)
	}
	if len(in) == 0 {
		return nil, fmt.Errorf("workloads: profile file contains no profiles")
	}
	out := make([]*sim.Profile, len(in))
	for i, jp := range in {
		p := &sim.Profile{Name: jp.Name, Suite: jp.Suite, Phases: make([]sim.Phase, len(jp.Phases))}
		if p.Suite == "" {
			p.Suite = "custom"
		}
		if jp.SLO != nil {
			p.SLO = &slo.Spec{
				TargetP99:           jp.SLO.TargetP99,
				ServiceInstructions: jp.SLO.ServiceInstructions,
				ArrivalRate:         jp.SLO.ArrivalRate,
			}
		}
		for k, ph := range jp.Phases {
			p.Phases[k] = sim.Phase{
				Name: ph.Name, Instructions: ph.Instructions, IPSPeak: ph.IPSPeak,
				SerialFrac: ph.SerialFrac, MPIMax: ph.MPIMax, MPIMin: ph.MPIMin,
				WaysHalf: ph.WaysHalf, MemStallCost: ph.MemStallCost,
				PowerSensitivity: ph.PowerSensitivity,
			}
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("workloads: profile %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}
