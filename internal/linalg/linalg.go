// Package linalg provides the small dense linear-algebra kernel needed by
// the Gaussian-process proxy model: symmetric positive-definite (SPD)
// factorization via Cholesky, triangular solves, and log-determinants.
//
// Matrices are dense, row-major float64. The package is deliberately
// minimal — it implements exactly what GP regression requires and nothing
// more — but is numerically careful (jitter escalation for
// near-singular kernels lives in package gp, log-determinant computed from
// the Cholesky factor here).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when Cholesky factorization encounters a
// non-positive pivot, meaning the matrix is not (numerically) symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = element (i, j)
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x. x must have length Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vector", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full square storage)
}

// NewCholesky factorizes the SPD matrix a (only the lower triangle is
// read). It returns ErrNotSPD when a pivot is not strictly positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l[i*n+j] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// LAt returns element (i, j) of the lower-triangular factor L
// (0 above the diagonal).
func (c *Cholesky) LAt(i, j int) float64 {
	if j > i {
		return 0
	}
	return c.l[i*c.n+j]
}

// SolveVec solves A·x = b using the factorization (forward then backward
// substitution). b is not modified.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("linalg: SolveVec dimension mismatch: %d vs %d", len(b), c.n))
	}
	y := c.SolveLower(b)
	return c.solveUpper(y)
}

// SolveLower solves L·y = b by forward substitution. b is not modified.
func (c *Cholesky) SolveLower(b []float64) []float64 {
	n := c.n
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i*n+k] * y[k]
		}
		y[i] = sum / c.l[i*n+i]
	}
	return y
}

// solveUpper solves Lᵀ·x = y by backward substitution.
func (c *Cholesky) solveUpper(y []float64) []float64 {
	n := c.n
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= c.l[k*n+i] * x[k]
		}
		x[i] = sum / c.l[i*n+i]
	}
	return x
}

// LogDet returns log|A| = 2·Σ log L_ii, computed stably from the factor.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch: %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SquaredDistance returns ||a−b||².
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SquaredDistance dimension mismatch: %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
