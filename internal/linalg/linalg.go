// Package linalg provides the small dense linear-algebra kernel needed by
// the Gaussian-process proxy model: symmetric positive-definite (SPD)
// factorization via Cholesky, triangular solves, and log-determinants.
//
// Matrices are dense, row-major float64. The package is deliberately
// minimal — it implements exactly what GP regression requires and nothing
// more — but is numerically careful (jitter escalation for
// near-singular kernels lives in package gp, log-determinant computed from
// the Cholesky factor here).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when Cholesky factorization encounters a
// non-positive pivot, meaning the matrix is not (numerically) symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// ErrIndefinite is returned by Extend when the Schur-complement pivot of
// the appended row is not strictly positive. The pivot is computed by
// subtraction (diag − ||w||²), so round-off on a near-duplicate point can
// drive it ≤ 0 even when the exact matrix is SPD; without the typed error
// the NaN from Sqrt would silently poison the factor and every subsequent
// solve. It wraps ErrNotSPD, so errors.Is(err, ErrNotSPD) still holds for
// callers that only care about the SPD family.
var ErrIndefinite = fmt.Errorf("linalg: extension pivot not positive (round-off indefiniteness): %w", ErrNotSPD)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = element (i, j)
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x. x must have length Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vector", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
// The factor can grow in place: Extend appends one row/column in O(n²)
// (a rank-1 append), and Factorize refactorizes into the existing storage,
// so long-lived factors on a hot path do not reallocate.
type Cholesky struct {
	n      int
	stride int       // row stride of l; >= n so appends have headroom
	l      []float64 // row-major lower triangle (stride x stride storage)
}

// NewCholesky factorizes the SPD matrix a (only the lower triangle is
// read). It returns ErrNotSPD when a pivot is not strictly positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	c := &Cholesky{}
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Factorize (re)factorizes the SPD matrix a into c, reusing c's storage
// when it is large enough. On error c is left empty (Size 0); the storage
// is retained for the next attempt.
func (c *Cholesky) Factorize(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	c.n = 0
	c.grow(n)
	l, s := c.l, c.stride
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*s+k] * l[j*s+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return ErrNotSPD
				}
				l[i*s+j] = math.Sqrt(sum)
			} else {
				l[i*s+j] = sum / l[j*s+j]
			}
		}
	}
	c.n = n
	return nil
}

// grow ensures storage for an n x n factor, preserving the current rows.
func (c *Cholesky) grow(n int) {
	if n <= c.stride {
		return
	}
	stride := 2 * c.stride
	if stride < n {
		stride = n
	}
	l := make([]float64, stride*stride)
	for i := 0; i < c.n; i++ {
		copy(l[i*stride:i*stride+i+1], c.l[i*c.stride:i*c.stride+i+1])
	}
	c.l, c.stride = l, stride
}

// Extend appends one row/column to the factored matrix in O(n²): given
// row[i] = A(n, i) against the existing points and diag = A(n, n), it
// computes the new factor row by one forward solve plus a scalar pivot.
// This is the rank-1 append that keeps the GP proxy model's per-tick cost
// quadratic instead of cubic. It returns ErrIndefinite (leaving the factor
// unchanged) when the extended matrix loses positive definiteness; window
// eviction is handled by refactorization (Factorize), not downdating.
func (c *Cholesky) Extend(row []float64, diag float64) error {
	if len(row) != c.n {
		panic(fmt.Sprintf("linalg: Extend dimension mismatch: %d vs %d", len(row), c.n))
	}
	n := c.n
	c.grow(n + 1)
	l, s := c.l, c.stride
	// New off-diagonal entries: w = L⁻¹·row (forward substitution),
	// written directly into the appended row.
	for i := 0; i < n; i++ {
		sum := row[i]
		for k := 0; k < i; k++ {
			sum -= l[i*s+k] * l[n*s+k]
		}
		l[n*s+i] = sum / l[i*s+i]
	}
	// New pivot: L(n,n)² = diag − ||w||².
	pivot := diag
	for k := 0; k < n; k++ {
		pivot -= l[n*s+k] * l[n*s+k]
	}
	if pivot <= 0 || math.IsNaN(pivot) {
		return ErrIndefinite
	}
	l[n*s+n] = math.Sqrt(pivot)
	c.n = n + 1
	return nil
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// LAt returns element (i, j) of the lower-triangular factor L
// (0 above the diagonal).
func (c *Cholesky) LAt(i, j int) float64 {
	if j > i {
		return 0
	}
	return c.l[i*c.stride+j]
}

// SolveVec solves A·x = b using the factorization (forward then backward
// substitution). b is not modified.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	return c.SolveVecInto(make([]float64, c.n), b)
}

// SolveVecInto solves A·x = b into dst, which must have length Size and
// may not alias b. No allocations: the backward pass runs in place on the
// forward pass's result.
func (c *Cholesky) SolveVecInto(dst, b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("linalg: SolveVec dimension mismatch: %d vs %d", len(b), c.n))
	}
	c.SolveLowerInto(dst, b)
	n, l, s := c.n, c.l, c.stride
	for i := n - 1; i >= 0; i-- {
		sum := dst[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*s+i] * dst[k]
		}
		dst[i] = sum / l[i*s+i]
	}
	return dst
}

// SolveLower solves L·y = b by forward substitution. b is not modified.
func (c *Cholesky) SolveLower(b []float64) []float64 {
	return c.SolveLowerInto(make([]float64, c.n), b)
}

// SolveLowerInto solves L·y = b into dst, which must have length Size and
// may not alias b. No allocations.
func (c *Cholesky) SolveLowerInto(dst, b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("linalg: SolveLower dimension mismatch: %d vs %d", len(b), c.n))
	}
	n, l, s := c.n, c.l, c.stride
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*s+k] * dst[k]
		}
		dst[i] = sum / l[i*s+i]
	}
	return dst
}

// SolveLowerMatrixInto solves L·Y = B for an n×m right-hand-side matrix B
// by forward substitution, amortizing one traversal of the factor over all
// m columns (the BLAS-3 trsm shape). dst must be n×m and may not alias b.
//
// Column c of the result is bit-identical to SolveLowerInto(dst, B[:,c]):
// the inner loops subtract l[i,k]·y[k,c] for k ascending and divide by the
// pivot, the exact operation sequence of the vector solve, so batched
// callers can replace per-candidate solves without perturbing goldens.
func (c *Cholesky) SolveLowerMatrixInto(dst, b *Matrix) *Matrix {
	if b.Rows != c.n {
		panic(fmt.Sprintf("linalg: SolveLowerMatrix dimension mismatch: %d rows vs factor size %d", b.Rows, c.n))
	}
	if dst.Rows != b.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: SolveLowerMatrix dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, b.Rows, b.Cols))
	}
	n, l, s, m := c.n, c.l, c.stride, b.Cols
	for i := 0; i < n; i++ {
		yi := dst.Data[i*m : i*m+m : i*m+m]
		copy(yi, b.Data[i*m:i*m+m])
		// Eight factor columns per sweep: the chained subtractions stay in
		// k-ascending order (left-associative, rounded after each step),
		// so each column's value sequence is unchanged — the unroll only
		// cuts the loads/stores of yi per subtraction.
		k := 0
		for ; k+8 <= i; k += 8 {
			l0, l1, l2, l3 := l[i*s+k], l[i*s+k+1], l[i*s+k+2], l[i*s+k+3]
			l4, l5, l6, l7 := l[i*s+k+4], l[i*s+k+5], l[i*s+k+6], l[i*s+k+7]
			y0 := dst.Data[(k+0)*m : (k+1)*m : (k+1)*m]
			y1 := dst.Data[(k+1)*m : (k+2)*m : (k+2)*m]
			y2 := dst.Data[(k+2)*m : (k+3)*m : (k+3)*m]
			y3 := dst.Data[(k+3)*m : (k+4)*m : (k+4)*m]
			y4 := dst.Data[(k+4)*m : (k+5)*m : (k+5)*m]
			y5 := dst.Data[(k+5)*m : (k+6)*m : (k+6)*m]
			y6 := dst.Data[(k+6)*m : (k+7)*m : (k+7)*m]
			y7 := dst.Data[(k+7)*m : (k+8)*m : (k+8)*m]
			for j, v := range yi {
				v = v - l0*y0[j] - l1*y1[j] - l2*y2[j] - l3*y3[j]
				yi[j] = v - l4*y4[j] - l5*y5[j] - l6*y6[j] - l7*y7[j]
			}
		}
		for ; k < i; k++ {
			lik := l[i*s+k]
			yk := dst.Data[k*m : k*m+m : k*m+m]
			for j, v := range yk {
				yi[j] -= lik * v
			}
		}
		pivot := l[i*s+i]
		for j := range yi {
			yi[j] /= pivot
		}
	}
	return dst
}

// LogDet returns log|A| = 2·Σ log L_ii, computed stably from the factor.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.stride+i])
	}
	return 2 * s
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch: %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SquaredDistance returns ||a−b||².
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SquaredDistance dimension mismatch: %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
