package linalg

import (
	"errors"
	"math"
	"testing"

	"satori/internal/stats"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("Set/At mismatch")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dimensions did not panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
}

func TestMulVecDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch did not panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.LAt(0, 0)-2) > 1e-12 ||
		math.Abs(c.LAt(1, 0)-1) > 1e-12 ||
		math.Abs(c.LAt(1, 1)-math.Sqrt2) > 1e-12 ||
		c.LAt(0, 1) != 0 {
		t.Errorf("wrong factor: L = [[%g %g],[%g %g]]",
			c.LAt(0, 0), c.LAt(0, 1), c.LAt(1, 0), c.LAt(1, 1))
	}
	if c.Size() != 2 {
		t.Errorf("Size = %d", c.Size())
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3 and -1
	if _, err := NewCholesky(a); err != ErrNotSPD {
		t.Errorf("non-SPD accepted, err = %v", err)
	}
	b := NewMatrix(2, 3)
	if _, err := NewCholesky(b); err == nil {
		t.Error("non-square accepted")
	}
}

// randomSPD builds A = BᵀB + n·I, guaranteed SPD.
func randomSPD(rng *stats.RNG, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func TestCholeskySolveProperty(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		bvec := a.MulVec(x)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("SPD matrix rejected: %v", err)
		}
		got := c.SolveVec(bvec)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("solve error at %d: got %g want %g (n=%d)", i, got[i], x[i], n)
			}
		}
	}
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	rng := stats.NewRNG(23)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		// L·Lᵀ must reproduce A.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += c.LAt(i, k) * c.LAt(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-8 {
					t.Fatalf("reconstruction error at (%d,%d): %g vs %g", i, j, s, a.At(i, j))
				}
			}
		}
	}
}

func TestLogDet(t *testing.T) {
	// diag(2, 3) has log det = log 6.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LogDet(); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("LogDet = %g, want log 6 = %g", got, math.Log(6))
	}
}

func TestSolveLower(t *testing.T) {
	// L = [[2,0],[1,1]]; L·y = [2, 3] -> y = [1, 2].
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 2) // L = [[2,0],[1,1]]
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	y := c.SolveLower([]float64{2, 3})
	if math.Abs(y[0]-1) > 1e-12 || math.Abs(y[1]-2) > 1e-12 {
		t.Errorf("SolveLower = %v, want [1 2]", y)
	}
}

func TestSolveVecDimMismatchPanics(t *testing.T) {
	a := NewMatrix(1, 1)
	a.Set(0, 0, 1)
	c, _ := NewCholesky(a)
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch did not panic")
		}
	}()
	c.SolveVec([]float64{1, 2})
}

func TestDotAndSquaredDistance(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := SquaredDistance([]float64{0, 0}, []float64{3, 4}); got != 25 {
		t.Errorf("SquaredDistance = %g, want 25", got)
	}
	for _, fn := range []func(){
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { SquaredDistance([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("dimension mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestCholeskyExtendMatchesFullFactorization is the property test pinning
// the rank-1 append: growing a factor one row at a time must agree with
// factorizing the full matrix from scratch, across random SPD matrices of
// varied sizes.
func TestCholeskyExtendMatchesFullFactorization(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 25; trial++ {
		n := 2 + int(rng.Uint64n(40))
		a := randomSPD(rng, n)
		full, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: full factorization failed: %v", trial, err)
		}
		// Start from the leading 1x1 block and extend up to n.
		lead := NewMatrix(1, 1)
		lead.Set(0, 0, a.At(0, 0))
		inc, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("trial %d: leading block failed: %v", trial, err)
		}
		for m := 1; m < n; m++ {
			row := make([]float64, m)
			for j := 0; j < m; j++ {
				row[j] = a.At(m, j)
			}
			if err := inc.Extend(row, a.At(m, m)); err != nil {
				t.Fatalf("trial %d: Extend to %d failed: %v", trial, m+1, err)
			}
		}
		if inc.Size() != n {
			t.Fatalf("trial %d: extended size %d, want %d", trial, inc.Size(), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(inc.LAt(i, j) - full.LAt(i, j)); d > 1e-9 {
					t.Fatalf("trial %d: L(%d,%d) differs by %g (extend %g vs full %g)",
						trial, i, j, d, inc.LAt(i, j), full.LAt(i, j))
				}
			}
		}
		if d := math.Abs(inc.LogDet() - full.LogDet()); d > 1e-9 {
			t.Fatalf("trial %d: LogDet differs by %g", trial, d)
		}
	}
}

func TestCholeskyExtendRejectsNonSPD(t *testing.T) {
	a := NewMatrix(1, 1)
	a.Set(0, 0, 4)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Appending a row that makes the matrix singular (second point equal
	// to the first: [[4,4],[4,4]] has determinant 0) must fail and leave
	// the factor untouched. The typed ErrIndefinite lets callers trigger a
	// rebuild fallback, and it wraps ErrNotSPD for the broader family.
	err = c.Extend([]float64{4}, 4)
	if !errors.Is(err, ErrIndefinite) {
		t.Fatalf("Extend on singular append: got %v, want ErrIndefinite", err)
	}
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("ErrIndefinite does not wrap ErrNotSPD: %v", err)
	}
	if c.Size() != 1 || c.LAt(0, 0) != 2 {
		t.Errorf("failed Extend modified the factor: size %d, L(0,0)=%g", c.Size(), c.LAt(0, 0))
	}
}

func TestCholeskyExtendDimMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extend with wrong row length did not panic")
		}
	}()
	c.Extend([]float64{1}, 5)
}

// TestCholeskyFactorizeReuse verifies refactorization into existing
// storage: shrinking, growing, and recovering after an ErrNotSPD attempt.
func TestCholeskyFactorizeReuse(t *testing.T) {
	rng := stats.NewRNG(72)
	c := &Cholesky{}
	for _, n := range []int{8, 3, 12, 1, 20} {
		a := randomSPD(rng, n)
		if err := c.Factorize(a); err != nil {
			t.Fatalf("Factorize n=%d: %v", n, err)
		}
		ref, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if c.LAt(i, j) != ref.LAt(i, j) {
					t.Fatalf("n=%d: reused factor differs at (%d,%d)", n, i, j)
				}
			}
		}
	}
	bad := NewMatrix(2, 2) // all zeros: not SPD
	if err := c.Factorize(bad); err != ErrNotSPD {
		t.Fatalf("Factorize on zero matrix: got %v, want ErrNotSPD", err)
	}
	if c.Size() != 0 {
		t.Errorf("failed Factorize left size %d, want 0", c.Size())
	}
	good := randomSPD(rng, 5)
	if err := c.Factorize(good); err != nil {
		t.Fatalf("Factorize after failure: %v", err)
	}
}

func TestSolveIntoMatchesAllocatingVariants(t *testing.T) {
	rng := stats.NewRNG(73)
	for trial := 0; trial < 10; trial++ {
		n := 1 + int(rng.Uint64n(20))
		a := randomSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		dst := make([]float64, n)
		if got, want := c.SolveVecInto(dst, b), c.SolveVec(b); !equalVecs(got, want) {
			t.Fatalf("trial %d: SolveVecInto differs from SolveVec", trial)
		}
		if got, want := c.SolveLowerInto(dst, b), c.SolveLower(b); !equalVecs(got, want) {
			t.Fatalf("trial %d: SolveLowerInto differs from SolveLower", trial)
		}
	}
}

// TestSolveLowerMatrixBitIdenticalToVectorSolve pins the contract batched
// GP scoring depends on: every column of the matrix solve must equal the
// corresponding vector solve bit for bit (== on float64, not a tolerance),
// or batching would perturb the committed goldens.
func TestSolveLowerMatrixBitIdenticalToVectorSolve(t *testing.T) {
	rng := stats.NewRNG(91)
	for trial := 0; trial < 25; trial++ {
		n := 1 + int(rng.Uint64n(24))
		m := 1 + int(rng.Uint64n(40))
		a := randomSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		b := NewMatrix(n, m)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		dst := c.SolveLowerMatrixInto(NewMatrix(n, m), b)
		col := make([]float64, n)
		want := make([]float64, n)
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				col[i] = b.At(i, j)
			}
			c.SolveLowerInto(want, col)
			for i := 0; i < n; i++ {
				if dst.At(i, j) != want[i] {
					t.Fatalf("trial %d: column %d row %d: matrix solve %v != vector solve %v",
						trial, j, i, dst.At(i, j), want[i])
				}
			}
		}
	}
}

func TestSolveLowerMatrixDimMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { c.SolveLowerMatrixInto(NewMatrix(2, 3), NewMatrix(3, 3)) },
		func() { c.SolveLowerMatrixInto(NewMatrix(2, 2), NewMatrix(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("dimension mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}

func equalVecs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
