package control

import (
	"math"
	"testing"

	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/slo"
)

// specAtCrit builds a Spec whose critical IPS equals crit exactly
// (crit = SI·(λ + ln100/target), solved for SI).
func specAtCrit(crit float64) *slo.Spec {
	const lambda, target = 100.0, 0.02
	return &slo.Spec{
		TargetP99:           target,
		ServiceInstructions: crit / (lambda + math.Log(100)/target),
		ArrivalRate:         lambda,
	}
}

// batchTestProfile is a long single-phase batch job for LC co-location
// tests: no phase edges of its own, so the horizon limiters under test
// are the LC job's.
func batchTestProfile(name string) *sim.Profile {
	return &sim.Profile{
		Name: name, Suite: "test",
		Phases: []sim.Phase{{
			Name: "steady", Instructions: 1e13, IPSPeak: 1.6e10,
			SerialFrac: 0.1, MPIMax: 0.014, MPIMin: 0.005,
			WaysHalf: 2.0, MemStallCost: 190,
		}},
	}
}

// newLCOnsetMix builds a 3-job mix whose LC job crosses from a
// comfortably attaining phase into a violating one mid-run: phase
// "fast" runs ~60 ticks well above the critical rate, then phase
// "slow" drops the job well below it. The spec's critical rate is
// placed midway between the two measured levels, outside the onset
// margin of both, so extrapolation is legal in both steady states and
// the ONLY correctness question is whether a driver can jump the onset.
func newLCOnsetMix(t *testing.T) []*sim.Profile {
	t.Helper()
	fast := sim.Phase{
		Name: "fast", Instructions: 1e13, IPSPeak: 2.4e10,
		SerialFrac: 0.05, MPIMax: 0.008, MPIMin: 0.003,
		WaysHalf: 1.5, MemStallCost: 120,
	}
	slow := sim.Phase{
		Name: "slow", Instructions: 1e13, IPSPeak: 7e9,
		SerialFrac: 0.3, MPIMax: 0.03, MPIMin: 0.015,
		WaysHalf: 4.0, MemStallCost: 260,
	}
	level := func(ph sim.Phase) float64 {
		p := &sim.Profile{Name: "probe", Suite: "test", Phases: []sim.Phase{ph}}
		mix := []*sim.Profile{p, batchTestProfile("b1"), batchTestProfile("b2")}
		s, err := sim.New(sim.DefaultMachine(), mix, sim.Options{NoiseSigma: -1})
		if err != nil {
			t.Fatal(err)
		}
		ips, err := s.ExactIPS(s.Current())
		if err != nil {
			t.Fatal(err)
		}
		return ips[0]
	}
	fastIPS, slowIPS := level(fast), level(slow)
	crit := (fastIPS + slowIPS) / 2
	for _, v := range []float64{fastIPS, slowIPS} {
		if math.Abs(v-crit) <= slo.DefaultOnsetMargin*crit {
			t.Fatalf("steady level %.3g inside the onset margin of crit %.3g — retune the test phases", v, crit)
		}
	}
	// Size the fast phase to end near tick 60 at the observed rate.
	fast.Instructions = fastIPS * sim.TickSeconds * 60
	lc := &sim.Profile{Name: "lc", Suite: "test", Phases: []sim.Phase{fast, slow}}
	lc.SLO = specAtCrit(crit)
	return []*sim.Profile{lc, batchTestProfile("b1"), batchTestProfile("b2")}
}

func newLCLoop(t *testing.T, mix []*sim.Profile, sampling SamplingOptions, sloOpt SLOOptions) *Loop {
	t.Helper()
	simulator, err := sim.New(sim.DefaultMachine(), mix, sim.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Options{
		Platform: sp,
		Policy:   func(rdt.Platform) (policy.Policy, error) { return policy.Static{}, nil },
		Sampling: sampling,
		SLO:      sloOpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return loop
}

// TestViolationOnsetNeverSkipped is the SLO analog of the phase-edge
// extrapolation rule, and the regression test the fast paths must keep
// honest: an event-driven driver that advances through IdleHorizon/
// AdvanceIdle promises, and a coarse driver that jumps with SkipIdle,
// must both observe the exact violation onset a lockstep loop observes
// — same onset count, same violated-tick count, same first violating
// tick. If any fast path extrapolates across the onset, the counts (or
// the onset tick itself) shift and this test fails.
func TestViolationOnsetNeverSkipped(t *testing.T) {
	mix := newLCOnsetMix(t)
	const ticks = 150
	sampling := SamplingOptions{Enabled: true, MaxRun: 100}

	// Lockstep reference.
	lock := newLCLoop(t, mix, sampling, SLOOptions{})
	lockFirst := -1
	for i := 0; i < ticks; i++ {
		st, err := lock.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.SLOViolating && lockFirst < 0 {
			lockFirst = st.Tick
		}
	}
	ls := lock.Summary()
	if ls.SLOOnsets != 1 || lockFirst < 0 {
		t.Fatalf("lockstep run saw %d onsets (first violating tick %d), want exactly 1 — the scenario no longer crosses the boundary", ls.SLOOnsets, lockFirst)
	}
	if ls.SLOViolatedTicks == 0 {
		t.Fatal("lockstep run accumulated no violated ticks")
	}

	// Event-driven driver: honor every promise with AdvanceIdle. While
	// the detector is mid-streak the horizon must be zero — a promise
	// there could jump the flip.
	idle := newLCLoop(t, mix, sampling, SLOOptions{})
	idleFirst, batches := -1, 0
	for idle.Ticks() < ticks {
		if idle.slo != nil && idle.slo.det.MidStreak() {
			if h := idle.IdleHorizon(); h != 0 {
				t.Fatalf("tick %d: IdleHorizon = %d while the detector is mid-streak, want 0", idle.Ticks(), h)
			}
		}
		var st Status
		var err error
		if h := idle.IdleHorizon(); h > 0 {
			if left := ticks - idle.Ticks(); h > left {
				h = left
			}
			st, err = idle.AdvanceIdle(h)
			batches++
		} else {
			st, err = idle.Step()
		}
		if err != nil {
			t.Fatal(err)
		}
		if st.SLOViolating && idleFirst < 0 {
			idleFirst = st.Tick
		}
	}
	is := idle.Summary()
	if batches == 0 {
		t.Fatal("event-driven driver never got an idle promise — the fast path is not exercised")
	}
	if is.SLOOnsets != ls.SLOOnsets || is.SLOViolatedTicks != ls.SLOViolatedTicks {
		t.Fatalf("event-driven onset accounting diverged: onsets %d violated %d, lockstep %d/%d",
			is.SLOOnsets, is.SLOViolatedTicks, ls.SLOOnsets, ls.SLOViolatedTicks)
	}
	if idleFirst != lockFirst {
		t.Fatalf("event-driven driver first saw the violation at tick %d, lockstep at %d", idleFirst, lockFirst)
	}
	if is.MeanObjective != ls.MeanObjective || is.MeanFairness != ls.MeanFairness {
		t.Fatalf("event-driven aggregates diverged from lockstep: %+v vs %+v", is, ls)
	}

	// Coarse driver: SkipIdle jumps are only granted in steady states,
	// so the violated-tick ledger still matches lockstep exactly.
	skip := newLCLoop(t, mix, sampling, SLOOptions{})
	skips := 0
	for skip.Ticks() < ticks {
		if h := skip.IdleHorizon(); h > 0 {
			if left := ticks - skip.Ticks(); h > left {
				h = left
			}
			if err := skip.SkipIdle(h); err != nil {
				t.Fatal(err)
			}
			skips++
			continue
		}
		if _, err := skip.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ss := skip.Summary()
	if skips == 0 {
		t.Fatal("coarse driver never skipped")
	}
	if ss.SLOOnsets != ls.SLOOnsets || ss.SLOViolatedTicks != ls.SLOViolatedTicks {
		t.Fatalf("coarse-skip onset accounting diverged: onsets %d violated %d, lockstep %d/%d",
			ss.SLOOnsets, ss.SLOViolatedTicks, ls.SLOOnsets, ls.SLOViolatedTicks)
	}
}

// TestGoalSwitchHysteresis pins the tracker's switching contract: the
// fairness channel flips to SLO recovery only after OnsetTicks
// consecutive violating observations, flips back only after ClearTicks
// attaining ones, and each direction counts one switch. The scored
// value while switched is the WORST service's attainment.
func TestGoalSwitchHysteresis(t *testing.T) {
	spec := specAtCrit(1e9)
	tr := &sloTracker{
		specs:      []*slo.Spec{spec, nil},
		det:        slo.NewDetector(2, 3),
		goalSwitch: true,
	}
	bad := []float64{5e8, 1e9}  // LC job at half its critical rate
	good := []float64{2e9, 1e9} // LC job at twice its critical rate

	tr.observe(bad)
	if tr.switched {
		t.Fatal("switched after 1 violating observation (onset=2)")
	}
	tr.observe(bad)
	if !tr.switched || tr.switches != 1 {
		t.Fatalf("no switch after onset: switched=%v switches=%d", tr.switched, tr.switches)
	}
	if tr.recovery != spec.AttainFrac(bad[0]) {
		t.Fatalf("recovery score %v, want worst-service attainment %v", tr.recovery, spec.AttainFrac(bad[0]))
	}
	// Two attaining ticks are not enough to clear (clear=3)...
	tr.observe(good)
	tr.observe(good)
	if !tr.switched {
		t.Fatal("switch reverted before ClearTicks attaining observations")
	}
	// ...and a violating tick resets the clearing streak entirely.
	tr.observe(bad)
	tr.observe(good)
	tr.observe(good)
	if !tr.switched {
		t.Fatal("clearing streak survived an interleaved violation")
	}
	tr.observe(good)
	if tr.switched || tr.switches != 2 {
		t.Fatalf("no revert after 3 consecutive attaining observations: switched=%v switches=%d", tr.switched, tr.switches)
	}
	// The accounting survived the round trip.
	if tr.det.Onsets() != 1 || tr.det.Clears() != 1 {
		t.Fatalf("detector counted %d onsets / %d clears, want 1/1", tr.det.Onsets(), tr.det.Clears())
	}
	if tr.violTicks == 0 {
		t.Fatal("no violated ticks accumulated")
	}

	// Without GoalSwitch the same detector trajectory never switches.
	plain := &sloTracker{specs: []*slo.Spec{spec}, det: slo.NewDetector(2, 3)}
	for i := 0; i < 10; i++ {
		plain.observe(bad[:1])
	}
	if plain.switched || plain.switches != 0 {
		t.Fatalf("goalSwitch=false tracker switched: %+v", plain)
	}
	if !plain.det.Violating() {
		t.Fatal("detector did not confirm the violation")
	}
}
