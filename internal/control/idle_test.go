package control

import (
	"testing"

	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/sim"
	"satori/internal/workloads"
)

// newSimLoopReset is newSimLoop with a custom equalization period, so
// horizon/boundary interactions are testable without 100-tick runs.
func newSimLoopReset(t *testing.T, sampling SamplingOptions, pol policy.Policy, resetEvery int) *Loop {
	t.Helper()
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Options{
		Platform:           sp,
		Policy:             func(rdt.Platform) (policy.Policy, error) { return pol, nil },
		Sampling:           sampling,
		BaselineResetTicks: resetEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return loop
}

// IdleHorizon must stay zero until the stability window arms, must never
// promise past the next equalization boundary or the MaxRun budget, and
// must zero itself at a refresh-due tick.
func TestIdleHorizonGating(t *testing.T) {
	resetEvery := 25
	loop := newSimLoopReset(t, SamplingOptions{Enabled: true}, policy.Static{}, resetEvery)
	if h := loop.IdleHorizon(); h != 0 {
		t.Fatalf("fresh loop IdleHorizon = %d, want 0 (window not armed)", h)
	}
	armed := false
	for i := 0; i < 4*resetEvery; i++ {
		if _, err := loop.Step(); err != nil {
			t.Fatal(err)
		}
		h := loop.IdleHorizon()
		if h > 0 {
			armed = true
		}
		if maxRun := loop.sampling.MaxRun - loop.sampledRun; h > maxRun {
			t.Fatalf("tick %d: IdleHorizon %d exceeds MaxRun budget %d", loop.Ticks(), h, maxRun)
		}
		if toBoundary := resetEvery - loop.Ticks()%resetEvery; loop.Ticks()%resetEvery != 0 && h > toBoundary {
			t.Fatalf("tick %d: IdleHorizon %d skips the equalization boundary %d ticks away", loop.Ticks(), h, toBoundary)
		}
		if loop.Ticks()%resetEvery == 0 && !loop.pendReset && h != 0 {
			t.Fatalf("tick %d: IdleHorizon %d at a refresh-due boundary, want 0", loop.Ticks(), h)
		}
	}
	if !armed {
		t.Fatal("IdleHorizon never armed over a phase-stable static run")
	}
}

// A driver that advances via AdvanceIdle whenever a promise is open must
// observe the exact same IPS stream — bit for bit — and the same metric
// aggregates as a lockstep loop stepping every tick, as long as the
// policy holds the configuration (which is what makes the ticks idle).
func TestAdvanceIdleBitIdenticalToLockstep(t *testing.T) {
	lockstep := newSimLoop(t, SamplingOptions{Enabled: true}, policy.Static{})
	idle := newSimLoop(t, SamplingOptions{Enabled: true}, policy.Static{})
	const ticks = 400
	var lock []float64
	for i := 0; i < ticks; i++ {
		st, err := lockstep.Step()
		if err != nil {
			t.Fatal(err)
		}
		lock = append(lock, st.IPS...)
	}
	var idl []float64
	idleBatches := 0
	for idle.Ticks() < ticks {
		if h := idle.IdleHorizon(); h > 0 {
			if left := ticks - idle.Ticks(); h > left {
				h = left
			}
			before := idle.Ticks()
			st, err := idle.AdvanceIdle(h)
			if err != nil {
				t.Fatal(err)
			}
			if idle.Ticks() != before+h {
				t.Fatalf("AdvanceIdle(%d) advanced %d ticks", h, idle.Ticks()-before)
			}
			if st.Tick != idle.Ticks() || !st.SampledTick {
				t.Fatalf("AdvanceIdle last status = %+v, want sampled tick %d", st, idle.Ticks())
			}
			idleBatches++
			// Replay the batch's observations from the status? Only the
			// last tick's IPS is returned; per-tick equality is checked
			// via the aggregates below plus this spot check.
			for j, v := range st.IPS {
				if want := lock[(idle.Ticks()-1)*len(st.IPS)+j]; v != want {
					t.Fatalf("tick %d job %d: idle IPS %v != lockstep %v", idle.Ticks(), j, v, want)
				}
			}
			idl = append(idl, st.IPS...)
			continue
		}
		st, err := idle.Step()
		if err != nil {
			t.Fatal(err)
		}
		idl = append(idl, st.IPS...)
	}
	if idleBatches == 0 {
		t.Fatal("driver never found an open idle promise on a static phase-stable run")
	}
	ls, is := lockstep.Summary(), idle.Summary()
	if ls.Ticks != is.Ticks {
		t.Fatalf("ticks: lockstep %d idle %d", ls.Ticks, is.Ticks)
	}
	if ls.MeanThroughput != is.MeanThroughput || ls.MeanFairness != is.MeanFairness ||
		ls.MeanObjective != is.MeanObjective ||
		ls.StdThroughput != is.StdThroughput || ls.StdFairness != is.StdFairness {
		t.Fatalf("aggregates diverged:\nlockstep %+v\nidle     %+v", ls, is)
	}
	if is.IdleTicks == 0 {
		t.Fatal("idle driver reported no IdleTicks")
	}
	if ls.IdleTicks != 0 {
		t.Fatal("lockstep loop reported IdleTicks")
	}
	t.Logf("idle driver: %d/%d ticks in %d batches (%d sampled)",
		is.IdleTicks, is.Ticks, idleBatches, is.SampledTicks)
}

// Honoring the promise: every tick inside an IdleHorizon batch must come
// from the extrapolation cache (no hidden detailed fallbacks), since the
// fleet's cost model depends on it.
func TestAdvanceIdleStaysSampled(t *testing.T) {
	loop := newSimLoop(t, SamplingOptions{Enabled: true}, policy.Static{})
	for i := 0; i < 600 && loop.IdleHorizon() == 0; i++ {
		if _, err := loop.Step(); err != nil {
			t.Fatal(err)
		}
	}
	h := loop.IdleHorizon()
	if h == 0 {
		t.Fatal("no idle promise after 600 warmup ticks")
	}
	before := loop.Summary().SampledTicks
	if _, err := loop.AdvanceIdle(h); err != nil {
		t.Fatal(err)
	}
	if got := loop.Summary().SampledTicks - before; got != h {
		t.Fatalf("AdvanceIdle(%d) extrapolated only %d ticks", h, got)
	}
	if got := loop.Summary().IdleTicks; got != h {
		t.Fatalf("IdleTicks = %d, want %d", got, h)
	}
}

// SkipIdle is the coarse batched jump: O(jobs) per flush rather than per
// tick. It must advance the clock and aggregates like AdvanceIdle
// (tick-weighted, holding the last good scores), stay deterministic
// across replays, and leave the loop steppable — but it does not promise
// the lockstep-identical trajectory.
func TestSkipIdleCoarseBatch(t *testing.T) {
	run := func() (*Loop, int) {
		loop := newSimLoop(t, SamplingOptions{Enabled: true}, policy.Static{})
		for i := 0; i < 600 && loop.IdleHorizon() == 0; i++ {
			if _, err := loop.Step(); err != nil {
				t.Fatal(err)
			}
		}
		h := loop.IdleHorizon()
		if h == 0 {
			t.Fatal("no idle promise after 600 warmup ticks")
		}
		before := loop.Ticks()
		if err := loop.SkipIdle(h); err != nil {
			t.Fatal(err)
		}
		if got := loop.Ticks() - before; got != h {
			t.Fatalf("SkipIdle(%d) advanced %d ticks", h, got)
		}
		return loop, h
	}
	loop, h := run()
	s := loop.Summary()
	if s.IdleTicks != h || s.SampledTicks < h {
		t.Fatalf("skip not accounted as idle+sampled: %+v (h=%d)", s, h)
	}
	if s.Ticks != loop.Ticks() {
		t.Fatalf("Summary.Ticks %d != clock %d", s.Ticks, loop.Ticks())
	}
	// The loop keeps working after the jump: the next detailed step must
	// land on the post-skip clock.
	st, err := loop.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != loop.Ticks() || len(st.IPS) == 0 {
		t.Fatalf("post-skip step broken: %+v", st)
	}
	// Replays agree exactly — the jump is a pure function of loop state.
	other, _ := run()
	ot, err := other.Step()
	if err != nil {
		t.Fatal(err)
	}
	for j := range st.IPS {
		if st.IPS[j] != ot.IPS[j] {
			t.Fatalf("post-skip replay diverged at job %d: %v vs %v", j, st.IPS[j], ot.IPS[j])
		}
	}
	os, ls := other.Summary(), loop.Summary()
	if os.MeanThroughput != ls.MeanThroughput || os.MeanObjective != ls.MeanObjective {
		t.Fatalf("replay aggregates diverged: %+v vs %+v", os, ls)
	}
}

// A loop without batch capability must fall back to the exact replay path
// inside SkipIdle rather than failing or silently dropping ticks.
func TestSkipIdleFallsBackToReplay(t *testing.T) {
	loop := newSimLoop(t, SamplingOptions{}, policy.Static{})
	for i := 0; i < 10; i++ {
		if _, err := loop.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := loop.SkipIdle(7); err != nil {
		t.Fatal(err)
	}
	if got := loop.Ticks(); got != 17 {
		t.Fatalf("fallback advanced to tick %d, want 17", got)
	}
	if got := loop.Summary().IdleTicks; got != 7 {
		t.Fatalf("IdleTicks = %d, want 7", got)
	}
}
