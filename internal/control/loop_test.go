package control

import (
	"errors"
	"testing"

	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/workloads"
)

// countingPlatform wraps a SimPlatform and counts baseline measurements,
// so tests can assert exactly when the loop re-records baselines. The
// embedded platform's churn methods promote, so the wrapper still
// satisfies rdt.Churner.
type countingPlatform struct {
	*rdt.SimPlatform
	isoCalls int
}

func (c *countingPlatform) MeasureIsolated() ([]float64, error) {
	c.isoCalls++
	return c.SimPlatform.MeasureIsolated()
}

func newCountingLoop(t *testing.T, resetEvery int) (*Loop, *countingPlatform) {
	t.Helper()
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	cp := &countingPlatform{SimPlatform: sp}
	loop, err := New(Options{
		Platform: cp,
		Policy: func(p rdt.Platform) (policy.Policy, error) {
			return policy.Static{}, nil
		},
		BaselineResetTicks: resetEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return loop, cp
}

// The loop must re-record isolated baselines exactly on the equalization
// schedule: once at construction (Algorithm 1 line 3), then at the start
// of the interval after every BaselineResetTicks boundary (line 13), with
// BaselineReset visible to the policy on precisely those intervals.
func TestLoopPeriodicBaselineRefresh(t *testing.T) {
	loop, cp := newCountingLoop(t, 50)
	for tick := 1; tick <= 120; tick++ {
		st, err := loop.Step()
		if err != nil {
			t.Fatal(err)
		}
		want := tick == 1 || tick == 51 || tick == 101
		if st.BaselineReset != want {
			t.Errorf("tick %d: BaselineReset = %v, want %v", tick, st.BaselineReset, want)
		}
		if st.ResetErr != nil {
			t.Errorf("tick %d: unexpected ResetErr %v", tick, st.ResetErr)
		}
	}
	// 1 at construction + refreshes after the 50 and 100 boundaries.
	if cp.isoCalls != 3 {
		t.Errorf("MeasureIsolated calls = %d, want 3", cp.isoCalls)
	}
	if s := loop.Summary(); s.Ticks != 120 || s.RejectedApplies != 0 {
		t.Errorf("summary = %+v, want 120 ticks, 0 rejections", s)
	}
}

// A membership change between ticks re-measures baselines itself, which
// must preempt a periodic refresh due at the same boundary: the paper's
// equalization event is "baselines re-recorded", not "the timer fired".
func TestLoopChurnPreemptsPeriodicRefresh(t *testing.T) {
	loop, cp := newCountingLoop(t, 50)
	if _, err := loop.Run(50); err != nil {
		t.Fatal(err)
	}
	arrival := workloads.PARSEC()[4]
	if err := loop.ReplaceJob(1, arrival); err != nil {
		t.Fatal(err)
	}
	if cp.isoCalls != 2 { // construction + the churn re-measure
		t.Fatalf("MeasureIsolated calls after churn = %d, want 2", cp.isoCalls)
	}
	st, err := loop.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !st.BaselineReset {
		t.Error("tick 51 after churn: BaselineReset = false, want true")
	}
	if cp.isoCalls != 2 {
		t.Errorf("periodic refresh ran despite churn at the boundary: %d calls", cp.isoCalls)
	}
	// The next boundary (tick 100 → refresh at 101) is periodic again.
	if _, err := loop.Run(50); err != nil {
		t.Fatal(err)
	}
	if cp.isoCalls != 3 {
		t.Errorf("MeasureIsolated calls after tick 101 = %d, want 3", cp.isoCalls)
	}
}

// stalePolicy emits a configuration shaped for one more job than the
// space holds — the signature of a policy that missed a membership
// change.
type stalePolicy struct{}

func (stalePolicy) Name() string { return "stale" }

func (stalePolicy) Decide(_ policy.Observation, current resource.Config) resource.Config {
	alloc := make([][]int, len(current.Alloc))
	for r, row := range current.Alloc {
		alloc[r] = append(append([]int(nil), row...), 1)
	}
	return resource.Config{Alloc: alloc}
}

// A stale-shaped decision (right resource rows, wrong job dimension) is
// the policy/platform desync the churn contract forbids: Step must fail
// with the typed *StaleDecisionError wrapping the platform's
// *rdt.ConfigShapeError.
func TestLoopStaleDecisionIsFatal(t *testing.T) {
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Options{
		Platform: sp,
		Policy:   func(rdt.Platform) (policy.Policy, error) { return stalePolicy{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = loop.Step()
	var stale *StaleDecisionError
	if !errors.As(err, &stale) {
		t.Fatalf("Step error = %v, want *StaleDecisionError", err)
	}
	if stale.Tick != 1 {
		t.Errorf("stale.Tick = %d, want 1", stale.Tick)
	}
	var shape *rdt.ConfigShapeError
	if !errors.As(err, &shape) {
		t.Fatal("StaleDecisionError does not unwrap to *rdt.ConfigShapeError")
	}
	if shape.ConfigJobs != 4 || shape.SpaceJobs != 3 {
		t.Errorf("shape = %+v, want config 4 jobs vs space 3", shape)
	}
}

// malformedPolicy emits the zero-value configuration: no allocation
// matrix at all. That is garbage, not staleness.
type malformedPolicy struct{}

func (malformedPolicy) Name() string { return "malformed" }

func (malformedPolicy) Decide(policy.Observation, resource.Config) resource.Config {
	return resource.Config{}
}

// A malformed decision must stay a recoverable rejection — surfaced in
// Status.RejectedApply and counted in the summary, never escalated to
// the fatal stale-shape error (churn cannot change the resource rows).
func TestLoopMalformedDecisionIsRecoverable(t *testing.T) {
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Options{
		Platform: sp,
		Policy:   func(rdt.Platform) (policy.Policy, error) { return malformedPolicy{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick <= 10; tick++ {
		st, err := loop.Step()
		if err != nil {
			t.Fatalf("tick %d: Step error %v (want recoverable rejection)", tick, err)
		}
		if st.RejectedApply == nil {
			t.Fatalf("tick %d: RejectedApply is nil", tick)
		}
	}
	if s := loop.Summary(); s.RejectedApplies != 10 {
		t.Errorf("RejectedApplies = %d, want 10", s.RejectedApplies)
	}
}

// Backends without the rdt.Churner capability must refuse membership
// churn with the typed sentinel, leaving the loop fully usable.
func TestLoopChurnUnsupported(t *testing.T) {
	sampler, err := rdt.NewTraceSampler(
		[]float64{2e9, 3e9},
		[][]float64{{1e9, 1.5e9}, {1.1e9, 1.4e9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := rdt.NewResctrlPlatform(sim.DefaultMachine(), []string{"a", "b"},
		rdt.ResctrlWriter{Root: t.TempDir()}, sampler)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Options{
		Platform: platform,
		Policy:   func(rdt.Platform) (policy.Policy, error) { return policy.Static{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	arrival := workloads.PARSEC()[0]
	if err := loop.AddJob(arrival); !errors.Is(err, ErrChurnUnsupported) {
		t.Errorf("AddJob error = %v, want ErrChurnUnsupported", err)
	}
	if err := loop.RemoveJob(0); !errors.Is(err, ErrChurnUnsupported) {
		t.Errorf("RemoveJob error = %v, want ErrChurnUnsupported", err)
	}
	if err := loop.ReplaceJob(0, arrival); !errors.Is(err, ErrChurnUnsupported) {
		t.Errorf("ReplaceJob error = %v, want ErrChurnUnsupported", err)
	}
	if n := loop.NumJobs(); n != 2 {
		t.Errorf("NumJobs = %d, want 2 via the space fallback", n)
	}
	if _, err := loop.Step(); err != nil {
		t.Errorf("loop unusable after refused churn: %v", err)
	}
}
