package control

import (
	"satori/internal/rdt"
	"satori/internal/slo"
)

// SLOOptions tunes the loop's latency-critical tracking. The tracker
// itself is automatic: it exists exactly when the platform implements
// rdt.SLOProvider and at least one live job carries an SLO spec, and a
// loop without it is bit-identical to a pre-SLO loop.
type SLOOptions struct {
	// GoalSwitch enables violation-driven goal switching: while the
	// hysteretic detector reports a persistent SLO violation, the
	// fairness channel is scored as SLO attainment (recovery first)
	// instead of the configured fairness metric, reverting when the
	// violation clears. This is the "sacrifice short-term fairness for
	// long-term SLO health" arbitration the SLO experiment measures.
	GoalSwitch bool
	// OnsetTicks is how many consecutive violating observations flip
	// the detector into the violating state (default 5).
	OnsetTicks int
	// ClearTicks is how many consecutive attaining observations flip it
	// back (default 10); clearing slower than onset prevents flapping.
	ClearTicks int
}

// sloTracker carries the loop's per-tick latency state: the live SLO
// specs, the hysteretic violation detector, and the most recent good
// tick's derived quantiles and attainment. It is rebuilt on membership
// churn (specs may have changed) and nil whenever no live job is
// latency-critical.
type sloTracker struct {
	specs      []*slo.Spec
	det        *slo.Detector
	goalSwitch bool

	// Last good tick's derived state; the quantile slices are freshly
	// allocated per observation because Status hands them to callers.
	p50, p95, p99 []float64
	attainment    float64 // mean AttainFrac over LC jobs (reported)
	recovery      float64 // min AttainFrac over LC jobs (scored while switched)
	switched      bool    // fairness channel currently scoring SLO recovery

	violTicks int // ticks spent in the hysteretic violating state
	violRun   int // current consecutive run of violating ticks
	switches  int // scoring-channel flips (on and off each count once)
}

// newSLOTracker probes the platform for latency-critical jobs; nil when
// the capability or the specs are absent, which keeps every loop hot
// path allocation-free for batch-only co-locations.
func newSLOTracker(platform rdt.Platform, opt SLOOptions) *sloTracker {
	p, ok := platform.(rdt.SLOProvider)
	if !ok {
		return nil
	}
	specs := p.SLOSpecs()
	if !slo.HasLC(specs) {
		return nil
	}
	return &sloTracker{
		specs:      specs,
		det:        slo.NewDetector(opt.OnsetTicks, opt.ClearTicks),
		goalSwitch: opt.GoalSwitch,
	}
}

// observe ingests one good tick's IPS observation: derive per-job
// latency quantiles and attainment, feed the violation verdict to the
// detector, and track the goal-switch state.
func (t *sloTracker) observe(ips []float64) {
	n := len(ips)
	t.p50, t.p95, t.p99 = make([]float64, n), make([]float64, n), make([]float64, n)
	for j, s := range t.specs {
		if s == nil {
			continue
		}
		t.p50[j] = s.P50(ips[j])
		t.p95[j] = s.P95(ips[j])
		t.p99[j] = s.P99(ips[j])
	}
	t.attainment = slo.AttainmentScore(t.specs, ips)
	t.recovery = slo.RecoveryScore(t.specs, ips)
	t.det.Observe(slo.AnyViolating(t.specs, ips))
	if t.det.Violating() {
		t.violTicks++
		t.violRun++
	} else {
		t.violRun = 0
	}
	switched := t.goalSwitch && t.det.Violating()
	if switched != t.switched {
		t.switches++
	}
	t.switched = switched
}

// hold accounts n coarsely skipped intervals (SkipIdle): the hysteretic
// state is carried forward unchanged. This is sound because IdleHorizon
// refuses to promise ticks while the detector is mid-streak and the
// simulator refuses extrapolation near a violation boundary — a skip is
// only ever granted when the verdict is stable.
func (t *sloTracker) hold(n int) {
	if t.det.Violating() {
		t.violTicks += n
		t.violRun += n
	}
}

// fill copies the tracker's last-observation state into a Status.
func (t *sloTracker) fill(st *Status) {
	st.P50, st.P95, st.P99 = t.p50, t.p95, t.p99
	st.SLOAttainment = t.attainment
	st.SLOViolating = t.det.Violating()
	st.GoalSwitched = t.switched
}

// SLOViolating reports the hysteretic violation state; always false for
// batch-only co-locations.
func (l *Loop) SLOViolating() bool {
	return l.slo != nil && l.slo.det.Violating()
}

// SLOViolationRun returns the length in ticks of the current violation
// run (0 while attaining) — the "sustained violation" measure behind
// the daemon's flag-gated unhealthy state.
func (l *Loop) SLOViolationRun() int {
	if l.slo == nil {
		return 0
	}
	return l.slo.violRun
}

// SLOSpecs returns the live per-slot SLO specs (nil entries are batch
// jobs), or nil when the loop tracks no latency-critical jobs.
func (l *Loop) SLOSpecs() []*slo.Spec {
	if l.slo == nil {
		return nil
	}
	return l.slo.specs
}
