// Package control owns SATORI's per-tick control loop (Algorithm 1's
// outer loop) independent of any backend: sample per-job IPS, score the
// throughput and fairness goals, let the policy decide, apply the next
// partition, re-measure isolated baselines on the equalization schedule,
// and absorb job-membership churn. The loop is driven purely through the
// rdt.Platform interface, so the identical decision loop runs against
// the analytical simulator (rdt.SimPlatform), the Linux resctrl
// filesystem (rdt.ResctrlPlatform), or any future backend. The public
// satori.Session, the fleet's per-node stack, and the experiment harness
// are all thin layers over one Loop.
package control

import (
	"errors"
	"fmt"
	"math"

	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/slo"
	"satori/internal/stats"
)

// TickSeconds is the monitoring/decision interval (100 ms, 10 Hz).
const TickSeconds = sim.TickSeconds

// Options configures a Loop.
type Options struct {
	// Platform is the control+monitor backend (required).
	Platform rdt.Platform
	// Policy builds the partitioning policy against the platform's
	// *live* space (required). The loop re-invokes it after membership
	// churn re-dimensions the space, so factories must read
	// Platform.Space() at call time, not capture it.
	Policy func(rdt.Platform) (policy.Policy, error)
	// Throughput and Fairness select the objective formulas; the zero
	// values are the Default* sentinels resolving to the paper's
	// evaluation pairing (SumIPS + JainIndex, Sec. IV).
	Throughput metrics.ThroughputMetric
	Fairness   metrics.FairnessMetric
	// BaselineResetTicks is the isolated-baseline refresh period
	// (default 100 ticks = 10 s, the equalization period).
	BaselineResetTicks int
	// Sampling enables Pac-Sim-style sampled simulation on backends with
	// the rdt.FastSampler capability; zero-valued fields take defaults.
	Sampling SamplingOptions
	// Resilience tunes retry/backoff, graceful degradation and the
	// circuit breaker (see ResilienceOptions); zero-valued fields take
	// defaults, and none of them change behavior on a fault-free run.
	Resilience ResilienceOptions
	// SLO tunes latency-critical tracking and violation-driven goal
	// switching (see SLOOptions); it has no effect unless the platform
	// exposes jobs with SLO specs (rdt.SLOProvider).
	SLO SLOOptions
}

// SamplingOptions tunes phase-stability detection for sampled simulation:
// once every job's observed IPS has stayed within a relative ε-band for K
// consecutive ticks, the loop asks the backend to extrapolate intervals
// (rdt.FastSampler.SampleFast) instead of evaluating them in detail,
// until a phase change, configuration change, membership churn, or
// baseline refresh re-triggers detailed evaluation. On the analytical
// simulator the extrapolated observations are bit-identical to detailed
// ones (see sim.StepSampled), so enabling sampling changes no outputs —
// only the per-tick evaluation cost.
type SamplingOptions struct {
	// Enabled turns sampled simulation on. Backends without the
	// FastSampler capability silently run every tick detailed.
	Enabled bool
	// Epsilon is the relative IPS band defining phase stability
	// (default 0.1, i.e. ±10%).
	Epsilon float64
	// StableTicks is how many consecutive in-band ticks arm
	// extrapolation (default 5).
	StableTicks int
	// MaxRun caps consecutive extrapolated ticks before a detailed
	// re-validation is forced (default 20).
	MaxRun int
}

// fill resolves defaulted sampling knobs.
func (o SamplingOptions) fill() SamplingOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.StableTicks <= 0 {
		o.StableTicks = 5
	}
	if o.MaxRun <= 0 {
		o.MaxRun = 20
	}
	return o
}

// Status is one interval's outcome.
type Status struct {
	// Tick counts completed 100 ms intervals.
	Tick int
	// Time is elapsed seconds.
	Time float64
	// IPS is the observed per-job instructions/second.
	IPS []float64
	// Isolated is the per-job isolated baseline in force this interval.
	Isolated []float64
	// Speedups is IPS over the isolated baselines.
	Speedups []float64
	// Throughput is the normalized system-throughput score in [0, 1].
	Throughput float64
	// Fairness is the normalized fairness score in [0, 1].
	Fairness float64
	// Config is the partition that will run during the next interval.
	Config resource.Config
	// BaselineReset reports whether isolated baselines were re-measured
	// just before this interval's observation.
	BaselineReset bool
	// RejectedApply is the platform's rejection of this tick's decision
	// (nil when the decision was accepted). The loop keeps running on
	// the live configuration; Summary counts the rejections.
	RejectedApply error
	// ResetErr is a failed periodic baseline re-measurement (nil when
	// none was due or it succeeded). The previous baselines stay in
	// force and the refresh is retried at the next boundary.
	ResetErr error
	// SampledTick reports that this interval's observation was
	// extrapolated from phase-stable state (sampled simulation) instead
	// of evaluated in detail.
	SampledTick bool
	// BadSample reports that the platform returned a non-finite or
	// negative IPS this interval. The observation is rejected: no
	// metrics are accumulated, the policy is not consulted, and the
	// current configuration stays in force. Summary counts these.
	BadSample bool
	// SampleErr is a transient sampling failure this interval (a dropped
	// reading; the 100 ms still elapsed). The loop degrades gracefully:
	// no metrics are accumulated, the policy is not consulted, and the
	// last good configuration stays in force. Non-transient sampling
	// failures still abort Step.
	SampleErr error
	// Degraded reports this interval's observation was lost (SampleErr)
	// and the loop held the installed partition instead of deciding.
	Degraded bool
	// SafeFallback reports the consecutive-failure circuit breaker
	// tripped on this interval and installed the equal-split safe
	// configuration (see ResilienceOptions).
	SafeFallback bool
	// P50, P95 and P99 are the per-job request-latency quantiles in
	// seconds derived from this interval's observation (zero for batch
	// slots, +Inf for a saturated LC job). All SLO fields are nil/zero
	// when the co-location has no latency-critical jobs.
	P50, P95, P99 []float64
	// SLOAttainment is the mean fraction of LC requests served within
	// their p99 targets this interval.
	SLOAttainment float64
	// SLOViolating is the hysteretic violation state after this
	// interval's observation.
	SLOViolating bool
	// GoalSwitched reports the fairness channel is currently scoring
	// SLO attainment instead of the configured fairness metric
	// (SLOOptions.GoalSwitch).
	GoalSwitched bool
	// Regrouped reports the policy committed a cluster-membership
	// migration during this tick's decision (clustered policies only).
	Regrouped bool
}

// StaleDecisionError is Step's typed failure when the policy emits a
// configuration shaped for a job set that no longer exists — the policy
// and platform have desynced, which after churn means the rebuild
// contract was broken. It wraps the platform's *rdt.ConfigShapeError so
// callers (the fleet layer) can distinguish this fatal desync from the
// recoverable rejections counted in Status.RejectedApply. Only a
// shape rejection with the machine's resource-row count and a
// mismatched job dimension qualifies; a malformed configuration (wrong
// resource count, no allocation matrix) is an ordinary rejection.
type StaleDecisionError struct {
	// Tick is the interval whose decision was rejected.
	Tick int
	// Shape is the platform's typed shape rejection.
	Shape *rdt.ConfigShapeError
}

// Error implements error.
func (e *StaleDecisionError) Error() string {
	return fmt.Sprintf("control: tick %d: policy decision is stale-shaped for the live job set (policy not rebuilt after churn?): %v", e.Tick, e.Shape)
}

// Unwrap exposes the wrapped *rdt.ConfigShapeError to errors.As/Is.
func (e *StaleDecisionError) Unwrap() error { return e.Shape }

// ErrChurnUnsupported reports a membership-churn request against a
// backend that does not implement rdt.Churner (e.g. a trace-driven
// resctrl deployment, whose job set is fixed at construction).
var ErrChurnUnsupported = errors.New("control: platform backend does not support job membership churn")

// Loop drives one co-location under a policy, one 100 ms interval at a
// time — the backend-agnostic embodiment of Algorithm 1's outer loop.
type Loop struct {
	platform   rdt.Platform
	pol        policy.Policy
	rebuild    func() (policy.Policy, error)
	tm         metrics.ThroughputMetric
	fm         metrics.FairnessMetric
	isolated   []float64
	current    resource.Config
	tick       int
	resetEvery int
	pendReset  bool
	rejected   int

	// Sampled-simulation state: fast is non-nil only when sampling is
	// enabled AND the backend has the capability; prevIPS/stable track
	// the phase-stability ε-band; sampledRun counts consecutive
	// extrapolated ticks toward MaxRun.
	sampling     SamplingOptions
	fast         rdt.FastSampler
	prevIPS      []float64
	stable       int
	sampledRun   int
	sampledTicks int
	idleTicks    int
	badSamples   int

	// Resilience state: consecFail is the current run of ticks that
	// failed to land a decision; the breaker/safe-config fields back
	// Health() and the equal-split fallback (see resilience.go).
	resil                         ResilienceOptions
	consecFail                    int
	breakerOpen                   bool
	safeInstalled                 bool
	breakerTrips                  int
	retries                       int
	sampleErrs                    int
	resetErrs                     int
	lastGoodSample, lastGoodApply int

	accT, accF, accObj stats.Welford

	// lastT and lastF are the most recent good tick's normalized scores,
	// held by SkipIdle as the metric value of coarsely skipped intervals.
	lastT, lastF float64

	// SLO tracking: slo is non-nil only when the platform exposes
	// latency-critical jobs (rdt.SLOProvider), and is rebuilt on churn.
	sloOpt SLOOptions
	slo    *sloTracker

	// Regroup tracking: regroup is non-nil only when the policy exposes
	// cluster-membership migrations (the regrouper capability of
	// internal/cluster policies); lastRegroups is the policy's counter at
	// the previous tick, so deltas attribute migrations to ticks.
	regroup      regrouper
	lastRegroups int
	regroups     int
}

// regrouper is the optional policy capability for cluster-membership
// migrations (implemented by cluster.Partitioner and cluster.LFOC): a
// monotone count of committed migrations. The loop treats a migration
// tick like churn — a re-measurement boundary that disarms the sampled
// phase-stability window — and surfaces the count in its Summary.
type regrouper interface{ Regroups() int }

// New builds a loop: the policy is constructed on the platform's live
// space, the initial isolated baselines are measured (Algorithm 1
// line 3), and the first observation will carry BaselineReset.
func New(opt Options) (*Loop, error) {
	if opt.Platform == nil {
		return nil, fmt.Errorf("control: Options.Platform is required")
	}
	if opt.Policy == nil {
		return nil, fmt.Errorf("control: Options.Policy is required")
	}
	rebuild := func() (policy.Policy, error) { return opt.Policy(opt.Platform) }
	pol, err := rebuild()
	if err != nil {
		return nil, err
	}
	resetEvery := opt.BaselineResetTicks
	if resetEvery <= 0 {
		resetEvery = 100
	}
	l := &Loop{
		platform:   opt.Platform,
		pol:        pol,
		rebuild:    rebuild,
		tm:         opt.Throughput.Resolve(),
		fm:         opt.Fairness.Resolve(),
		current:    opt.Platform.Current(),
		resetEvery: resetEvery,
		pendReset:  true,
		sampling:   opt.Sampling.fill(),
		resil:      opt.Resilience.fill(),
		sloOpt:     opt.SLO,
	}
	l.slo = newSLOTracker(opt.Platform, l.sloOpt)
	l.captureRegrouper()
	iso, err := l.measureIsolatedRetry()
	if err != nil {
		return nil, err
	}
	l.isolated = iso
	if opt.Sampling.Enabled {
		if fs, ok := opt.Platform.(rdt.FastSampler); ok {
			l.fast = fs
		}
	}
	return l, nil
}

// Platform returns the backend the loop drives.
func (l *Loop) Platform() rdt.Platform { return l.platform }

// Policy returns the active policy (rebuilt after membership churn).
func (l *Loop) Policy() policy.Policy { return l.pol }

// Current returns the configuration that will run next interval.
func (l *Loop) Current() resource.Config { return l.current }

// Isolated returns the isolated baselines currently in force.
func (l *Loop) Isolated() []float64 { return l.isolated }

// Ticks returns the number of completed intervals.
func (l *Loop) Ticks() int { return l.tick }

// Objectives returns the resolved metric choices.
func (l *Loop) Objectives() (metrics.ThroughputMetric, metrics.FairnessMetric) {
	return l.tm, l.fm
}

// SetObjectives swaps the goal formulas mid-run — the daemon's
// reconfigure-goal path. The Default* sentinels resolve as in Options.
// The running aggregates keep accumulating across the switch; the next
// interval is scored under the new pair.
func (l *Loop) SetObjectives(tm metrics.ThroughputMetric, fm metrics.FairnessMetric) {
	l.tm, l.fm = tm.Resolve(), fm.Resolve()
}

// Step advances one 100 ms interval: refresh isolated baselines if an
// equalization boundary was crossed (skipped when churn already
// refreshed them), sample IPS, score both goals, let the policy decide,
// and apply the next partition. Rejected applies are surfaced in the
// status, not swallowed; a stale-shaped decision is a *StaleDecisionError.
func (l *Loop) Step() (Status, error) {
	// Algorithm 1 line 13: re-record isolated baselines every
	// equalization period. The refresh is scheduled at the start of the
	// interval after the boundary tick — the same position in the
	// platform's sampling sequence as refreshing at the previous tick's
	// end — so a membership change between ticks (which re-measures on
	// its own) makes the periodic refresh redundant and it is skipped.
	var resetErr error
	if l.tick > 0 && l.tick%l.resetEvery == 0 && !l.pendReset {
		if iso, err := l.measureIsolatedRetry(); err != nil {
			// The previous baselines stay in force; the refresh retries
			// at the next boundary. Callers distinguish transient blips
			// (count, continue) from fatal failures via rdt.IsTransient.
			resetErr = err
			l.resetErrs++
		} else {
			l.isolated = iso
			l.pendReset = true
			// A baseline refresh is a re-measurement boundary: force the
			// stability window to re-arm through detailed ticks.
			l.resetStability()
		}
	}
	// Sampled simulation: once the phase-stability window is armed, ask
	// the backend to extrapolate this interval. The backend refuses (with
	// no side effects) whenever extrapolation could diverge — imminent
	// phase boundary, configuration change, churn — and we fall through
	// to the detailed path. MaxRun bounds how long extrapolation may run
	// before a detailed re-validation.
	sampled := false
	var ips []float64
	if l.fast != nil && l.stable >= l.sampling.StableTicks && l.sampledRun < l.sampling.MaxRun {
		if v, ok := l.fast.SampleFast(); ok {
			ips, sampled = v, true
			l.sampledRun++
			l.sampledTicks++
		}
	}
	if !sampled {
		var err error
		ips, err = l.platform.Sample()
		if err != nil {
			if !rdt.IsTransient(err) {
				return Status{}, err
			}
			// A transient dropout: the interval elapsed but the reading
			// was lost. Sampling is never retried (the 100 ms is gone) —
			// the loop degrades gracefully instead: hold the last good
			// configuration, skip the policy, count the miss.
			l.tick++
			l.sampleErrs++
			l.sampledRun = 0
			l.resetStability()
			st := Status{
				Tick: l.tick, Time: float64(l.tick) * TickSeconds,
				Isolated:  l.isolated,
				ResetErr:  resetErr,
				SampleErr: err,
				Degraded:  true,
				Config:    l.current,
			}
			l.noteFailedTick(&st)
			return st, nil
		}
		l.sampledRun = 0
	}
	l.tick++
	// Reject corrupt observations before they reach the metrics or the
	// policy: a non-finite or negative IPS (a wedged hardware counter, a
	// torn resctrl read) would silently poison the Welford aggregates and
	// the proxy model. The tick is flagged, counted, and otherwise
	// skipped; the current partition stays in force.
	for _, v := range ips {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			l.badSamples++
			l.resetStability()
			// l.pendReset is left pending so the policy still sees the
			// BaselineReset flag on the next accepted observation.
			st := Status{
				Tick: l.tick, Time: float64(l.tick) * TickSeconds,
				IPS: ips, Isolated: l.isolated,
				ResetErr:    resetErr,
				SampledTick: sampled,
				BadSample:   true,
				Config:      l.current,
			}
			l.noteFailedTick(&st)
			return st, nil
		}
	}
	l.lastGoodSample = l.tick
	l.updateStability(ips)
	if l.slo != nil {
		l.slo.observe(ips)
	}
	speedups := metrics.Speedups(ips, l.isolated)
	t := l.scoreThroughput(ips)
	f := l.scoreFairness(ips)
	l.accT.Add(t)
	l.accF.Add(f)
	l.accObj.Add(0.5*t + 0.5*f)
	l.lastT, l.lastF = t, f

	obs := policy.Observation{
		Tick: l.tick, Time: float64(l.tick) * TickSeconds,
		IPS: ips, Isolated: l.isolated, Speedups: speedups,
		Throughput: t, Fairness: f,
		BaselineReset: l.pendReset,
	}
	if l.slo != nil {
		obs.SLOViolating = l.slo.det.Violating()
		obs.SLOAttainment = l.slo.attainment
	}
	wasReset := l.pendReset
	l.pendReset = false
	next := l.pol.Decide(obs, l.current)
	regrouped := false
	if l.regroup != nil {
		if n := l.regroup.Regroups(); n > l.lastRegroups {
			// The policy committed a cluster-membership migration inside
			// this Decide: the control-group layout just changed under the
			// running jobs, so treat the tick as a churn-like boundary —
			// disarm extrapolation until the ε-band re-fills.
			l.regroups += n - l.lastRegroups
			l.lastRegroups = n
			l.resetStability()
			regrouped = true
		}
	}
	st := Status{
		Tick: l.tick, Time: float64(l.tick) * TickSeconds,
		IPS: ips, Isolated: l.isolated, Speedups: speedups,
		Throughput: t, Fairness: f,
		BaselineReset: wasReset,
		ResetErr:      resetErr,
		SampledTick:   sampled,
		Regrouped:     regrouped,
	}
	if l.slo != nil {
		l.slo.fill(&st)
	}
	err := l.platform.Apply(next)
	// A transient rejection (a busy resctrl write, an injected chaos
	// fault) is retried in-tick with backoff; the retry loop is inlined
	// so the fault-free fast path allocates nothing.
	for attempt := 1; attempt <= l.resil.MaxRetries && rdt.IsTransient(err); attempt++ {
		l.backoff(attempt)
		l.retries++
		err = l.platform.Apply(next)
	}
	if err != nil {
		// A shape rejection is fatal only when it is genuinely stale:
		// churn changes the job dimension but never the resource rows,
		// so a config with the machine's resource count and the wrong
		// job count came from before a membership change the policy
		// never saw. Anything else (e.g. a zero-value config with no
		// allocation matrix) is malformed, not stale — a recoverable
		// rejection like any other invalid decision.
		var shape *rdt.ConfigShapeError
		if errors.As(err, &shape) && shape.ConfigResources == shape.SpaceResources {
			st.Config = l.current
			return st, &StaleDecisionError{Tick: l.tick, Shape: shape}
		}
		st.RejectedApply = err
		l.rejected++
		st.Config = l.current
		l.noteFailedTick(&st)
		return st, nil
	}
	if !l.current.Equal(next) {
		// l.current tracks the platform's installed configuration (both
		// are updated only here and in the churn paths), so an unchanged
		// decision needs no re-clone — the steady-state fast path.
		l.current = l.platform.Current()
	}
	st.Config = l.current
	l.noteGoodTick()
	return st, nil
}

// scoreThroughput maps this tick's observation to the normalized
// throughput score. With latency-critical jobs present, the P99Latency
// metric scores tail-latency headroom from the SLO tracker; every other
// configuration is the pre-SLO computation unchanged.
func (l *Loop) scoreThroughput(ips []float64) float64 {
	if l.slo != nil && l.tm == metrics.P99Latency {
		return slo.HeadroomScore(l.slo.specs, ips)
	}
	return metrics.NormalizedThroughput(l.tm, ips, l.isolated)
}

// scoreFairness maps this tick's observation to the normalized fairness
// score. The SLO tracker substitutes mean attainment when the
// SLOAttainment metric is configured. While a violation persists under
// GoalSwitch it instead scores the WORST service's attainment
// (slo.RecoveryScore) — one healthy service must not mask a starving
// one, or the optimizer loses its gradient before every SLO is met.
// The tracker must have observed this tick already.
func (l *Loop) scoreFairness(ips []float64) float64 {
	if l.slo != nil && l.slo.switched {
		return l.slo.recovery
	}
	if l.slo != nil && l.fm == metrics.SLOAttainment {
		return l.slo.attainment
	}
	return metrics.NormalizedFairness(l.fm, ips, l.isolated)
}

// updateStability advances the phase-stability window: stable counts
// consecutive ticks in which every job's IPS stayed within the relative
// ε-band of the previous tick's observation.
func (l *Loop) updateStability(ips []float64) {
	if l.fast == nil {
		return
	}
	if len(l.prevIPS) != len(ips) {
		l.prevIPS = append(l.prevIPS[:0], ips...)
		l.stable = 0
		return
	}
	within := true
	for j, v := range ips {
		ref := math.Abs(l.prevIPS[j])
		if ref < 1e-12 {
			ref = 1e-12
		}
		if math.Abs(v-l.prevIPS[j])/ref > l.sampling.Epsilon {
			within = false
			break
		}
	}
	if within {
		l.stable++
	} else {
		l.stable = 0
	}
	copy(l.prevIPS, ips)
}

// resetStability disarms extrapolation until the ε-band re-fills — called
// on baseline refreshes, membership churn, and rejected observations.
func (l *Loop) resetStability() {
	l.stable = 0
	l.sampledRun = 0
	l.prevIPS = l.prevIPS[:0]
}

// IdleHorizon returns how many upcoming intervals this loop could advance
// without consulting the policy and without a detailed evaluation — the
// event-driven fleet's skip budget for a node with nothing going on. It
// is 0 unless the backend can extrapolate (rdt.FastSampler), the
// phase-stability window is armed, no baseline refresh is due or pending
// delivery to the policy, and the circuit breaker is closed. The promise
// is bounded by the backend's own phase-boundary lookahead
// (FastSampler.FastHorizon), by the remaining MaxRun extrapolation
// budget, and by the distance to the next equalization boundary — so a
// caller advancing exactly IdleHorizon ticks via AdvanceIdle never skips
// past a baseline refresh or a needed detailed re-validation.
func (l *Loop) IdleHorizon() int {
	if l.fast == nil || l.breakerOpen || l.pendReset {
		return 0
	}
	if l.stable < l.sampling.StableTicks {
		return 0
	}
	// An SLO detector mid-streak is advancing toward an onset or a
	// clear: skipping now could jump the loop straight over the
	// transition (and the goal switch it triggers), so no promise is
	// made until the streak resolves — the violation analogue of a
	// phase edge.
	if l.slo != nil && l.slo.det.MidStreak() {
		return 0
	}
	// A periodic refresh is due right now: the next Step must run it.
	if l.tick > 0 && l.tick%l.resetEvery == 0 {
		return 0
	}
	h := l.fast.FastHorizon()
	if m := l.sampling.MaxRun - l.sampledRun; m < h {
		h = m
	}
	if m := l.resetEvery - l.tick%l.resetEvery; m < h {
		h = m
	}
	if h < 0 {
		return 0
	}
	return h
}

// AdvanceIdle advances n intervals in one batched, policy-free replay —
// the event-driven fleet's catch-up path for a node whose skipped ticks
// have come due. Each tick is observed through the extrapolation cache
// (bit-identical to a detailed evaluation on the simulator backend,
// including the noise draws), scored, and accumulated into the running
// aggregates exactly as Step would; the installed configuration is held
// throughout and the policy is never consulted — which is the point: an
// idle node pays for observation arithmetic only, not for a decision.
// Callers must stay within a promise returned by IdleHorizon; if the
// backend still refuses a tick (conservative horizons may under-promise
// after rounding), that tick falls back to a detailed platform sample,
// preserving the observation stream. The returned status is the last
// advanced tick's. n <= 0 is a no-op.
func (l *Loop) AdvanceIdle(n int) (Status, error) {
	var st Status
	for i := 0; i < n; i++ {
		sampled := false
		var ips []float64
		if l.fast != nil {
			if v, ok := l.fast.SampleFast(); ok {
				ips, sampled = v, true
				l.sampledRun++
				l.sampledTicks++
			}
		}
		if !sampled {
			var err error
			ips, err = l.platform.Sample()
			if err != nil {
				if !rdt.IsTransient(err) {
					return st, err
				}
				l.tick++
				l.idleTicks++
				l.sampleErrs++
				l.sampledRun = 0
				l.resetStability()
				st = Status{
					Tick: l.tick, Time: float64(l.tick) * TickSeconds,
					Isolated:  l.isolated,
					SampleErr: err,
					Degraded:  true,
					Config:    l.current,
				}
				l.noteFailedTick(&st)
				continue
			}
			l.sampledRun = 0
		}
		l.tick++
		l.idleTicks++
		bad := false
		for _, v := range ips {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				bad = true
				break
			}
		}
		if bad {
			l.badSamples++
			l.resetStability()
			st = Status{
				Tick: l.tick, Time: float64(l.tick) * TickSeconds,
				IPS: ips, Isolated: l.isolated,
				SampledTick: sampled,
				BadSample:   true,
				Config:      l.current,
			}
			l.noteFailedTick(&st)
			continue
		}
		l.lastGoodSample = l.tick
		l.updateStability(ips)
		if l.slo != nil {
			l.slo.observe(ips)
		}
		speedups := metrics.Speedups(ips, l.isolated)
		tScore := l.scoreThroughput(ips)
		f := l.scoreFairness(ips)
		l.accT.Add(tScore)
		l.accF.Add(f)
		l.accObj.Add(0.5*tScore + 0.5*f)
		l.lastT, l.lastF = tScore, f
		st = Status{
			Tick: l.tick, Time: float64(l.tick) * TickSeconds,
			IPS: ips, Isolated: l.isolated, Speedups: speedups,
			Throughput: tScore, Fairness: f,
			SampledTick: sampled,
			Config:      l.current,
		}
		if l.slo != nil {
			l.slo.fill(&st)
		}
		l.noteGoodTick()
	}
	return st, nil
}

// SkipIdle advances the loop clock n ticks in one coarse batched jump —
// the cheap half of the event-driven fleet contract. The platform
// extrapolates all n intervals in a single O(jobs) operation (no
// per-interval samples), and the loop holds the last good tick's
// normalized scores as the metric value of every skipped interval, so run
// aggregates keep tick-weighted semantics. The jump is deterministic but
// NOT bit-identical to n lockstep Steps (the per-interval noise terms are
// not realized); callers that need the exact trajectory use AdvanceIdle.
// When the platform has no batch capability — or refuses the jump — the
// call falls back to exact interval-by-interval replay. Callers must
// respect IdleHorizon, exactly as for AdvanceIdle.
func (l *Loop) SkipIdle(n int) error {
	if n <= 0 {
		return nil
	}
	if b, ok := l.fast.(rdt.BatchSampler); ok && b.SkipFast(n) {
		l.tick += n
		l.idleTicks += n
		l.sampledTicks += n
		l.sampledRun += n
		l.lastGoodSample = l.tick
		if l.slo != nil {
			l.slo.hold(n)
		}
		obj := 0.5*l.lastT + 0.5*l.lastF
		for i := 0; i < n; i++ {
			l.accT.Add(l.lastT)
			l.accF.Add(l.lastF)
			l.accObj.Add(obj)
		}
		l.noteGoodTick()
		return nil
	}
	_, err := l.AdvanceIdle(n)
	return err
}

// Run advances n intervals and returns the last status.
func (l *Loop) Run(n int) (Status, error) {
	var last Status
	var err error
	for i := 0; i < n; i++ {
		last, err = l.Step()
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// RefreshBaselines re-measures isolated baselines immediately; the next
// observation carries BaselineReset and any periodic refresh due at the
// same boundary is skipped as redundant.
func (l *Loop) RefreshBaselines() error {
	iso, err := l.measureIsolatedRetry()
	if err != nil {
		return err
	}
	l.isolated = iso
	l.pendReset = true
	l.resetStability()
	return nil
}

// Reinit is the membership-change tail for externally mutated platforms:
// resync the backend's compiled state, rebuild the policy on the live
// space, and re-measure baselines (Algorithm 1 line 13, extended to
// job-count changes). The loop's tick counter and running aggregates
// carry on. The churn methods below call the same tail (minus the
// resync, which rdt.Churner implementations already performed).
func (l *Loop) Reinit() error {
	if err := l.retryTransient(l.platform.Resync); err != nil {
		return err
	}
	return l.rebuildAfterChurn()
}

// rebuildAfterChurn rebuilds the policy on the live space and re-records
// baselines; state is committed only when every step succeeded, so a
// failed rebuild leaves the previous policy running.
func (l *Loop) rebuildAfterChurn() error {
	pol, err := l.rebuild()
	if err != nil {
		return err
	}
	iso, err := l.measureIsolatedRetry()
	if err != nil {
		return err
	}
	l.pol = pol
	l.isolated = iso
	l.current = l.platform.Current()
	l.pendReset = true
	l.resetStability()
	// Membership changed: rebuild the SLO tracker against the new job
	// set (the detector restarts attaining, like a freshly built loop).
	l.slo = newSLOTracker(l.platform, l.sloOpt)
	// The rebuilt policy starts its migration counter fresh.
	l.captureRegrouper()
	return nil
}

// captureRegrouper re-detects the policy's optional migration counter —
// called whenever l.pol is (re)built, so Step's delta tracking restarts
// from the new policy's baseline.
func (l *Loop) captureRegrouper() {
	l.regroup = nil
	l.lastRegroups = 0
	if r, ok := l.pol.(regrouper); ok {
		l.regroup = r
		l.lastRegroups = r.Regroups()
	}
}

// churner returns the platform's churn capability, or the typed error.
func (l *Loop) churner() (rdt.Churner, error) {
	if c, ok := l.platform.(rdt.Churner); ok {
		return c, nil
	}
	return nil, ErrChurnUnsupported
}

// NumJobs returns the number of co-located jobs (falling back to the
// space's job count on backends without the churn capability).
func (l *Loop) NumJobs() int {
	if c, ok := l.platform.(rdt.Churner); ok {
		return c.NumJobs()
	}
	return l.platform.Space().Jobs
}

// ReplaceJob swaps the workload running in slot j for a new one — a job
// departure plus a new arrival in the same slot (Algorithm 1 line 12).
// Isolated baselines are re-measured immediately and the policy sees a
// BaselineReset on its next observation; SATORI requires no other
// re-initialization (Sec. III-C).
func (l *Loop) ReplaceJob(j int, p *sim.Profile) error {
	c, err := l.churner()
	if err != nil {
		return err
	}
	if err := c.ReplaceJob(j, p); err != nil {
		return err
	}
	// The slot's workload (and so possibly its SLO spec) changed:
	// rebuild the tracker like any other membership change.
	l.slo = newSLOTracker(l.platform, l.sloOpt)
	return l.RefreshBaselines()
}

// AddJob admits a new job into the co-location (a fleet-layer arrival).
// The configuration space changes dimension, so unlike ReplaceJob this
// is a full membership change: the partition is re-split, baselines are
// re-measured, and the policy is rebuilt on the new space — the engine
// re-initialization a job-count change requires (its proxy-model inputs
// are per-(resource, job) coordinates).
func (l *Loop) AddJob(p *sim.Profile) error {
	c, err := l.churner()
	if err != nil {
		return err
	}
	if err := c.AddJob(p); err != nil {
		return err
	}
	return l.rebuildAfterChurn()
}

// RemoveJob evicts the job in slot j (a departure); jobs above j shift
// down one slot. Like AddJob this re-splits the partition, re-measures
// baselines and rebuilds the policy on the shrunken space. The last job
// cannot be removed.
func (l *Loop) RemoveJob(j int) error {
	c, err := l.churner()
	if err != nil {
		return err
	}
	if err := c.RemoveJob(j); err != nil {
		return err
	}
	return l.rebuildAfterChurn()
}

// Summary aggregates the loop so far.
type Summary struct {
	// Ticks is the number of completed intervals.
	Ticks int
	// MeanThroughput and MeanFairness are run averages of the
	// normalized scores.
	MeanThroughput, MeanFairness float64
	// MeanObjective is the run average of 0.5·T + 0.5·F.
	MeanObjective float64
	// StdThroughput and StdFairness are the tick-to-tick standard
	// deviations of the normalized scores.
	StdThroughput, StdFairness float64
	// RejectedApplies counts decisions the platform refused (invalid or
	// non-compilable configurations). Without it, a policy emitting
	// garbage is indistinguishable from one deliberately holding the
	// current configuration.
	RejectedApplies int
	// SampledTicks counts intervals observed by extrapolation instead of
	// detailed evaluation (sampled simulation).
	SampledTicks int
	// IdleTicks counts intervals advanced through AdvanceIdle or
	// SkipIdle — batched, policy-free catch-up ticks from the
	// event-driven fleet path.
	IdleTicks int
	// BadSamples counts observations rejected for non-finite or negative
	// IPS (Status.BadSample ticks).
	BadSamples int
	// SampleErrors counts intervals whose observation was lost to a
	// transient sampling failure (Status.Degraded ticks).
	SampleErrors int
	// ResetErrs counts periodic baseline refreshes that failed after
	// retries (Status.ResetErr ticks); the stale baselines stayed in
	// force until the next boundary.
	ResetErrs int
	// Retries counts in-tick retry attempts of transient
	// Apply/MeasureIsolated/Resync failures.
	Retries int
	// BreakerTrips counts circuit-breaker openings — equal-split safe
	// fallbacks after a run of consecutive failed ticks.
	BreakerTrips int
	// SLOViolatedTicks counts intervals spent in the hysteretic SLO
	// violating state (0 for batch-only co-locations).
	SLOViolatedTicks int
	// SLOOnsets counts violation onsets the detector confirmed.
	SLOOnsets int
	// GoalSwitches counts fairness-channel flips (switching to SLO
	// attainment on onset and back on clear each count once).
	GoalSwitches int
	// Regroups counts cluster-membership migrations the policy committed
	// (0 for non-clustered policies).
	Regroups int
}

// Summary returns the running aggregate.
func (l *Loop) Summary() Summary {
	s := Summary{
		Ticks:           l.tick,
		MeanThroughput:  l.accT.Mean(),
		MeanFairness:    l.accF.Mean(),
		MeanObjective:   l.accObj.Mean(),
		StdThroughput:   l.accT.StdDev(),
		StdFairness:     l.accF.StdDev(),
		RejectedApplies: l.rejected,
		SampledTicks:    l.sampledTicks,
		IdleTicks:       l.idleTicks,
		BadSamples:      l.badSamples,
		SampleErrors:    l.sampleErrs,
		ResetErrs:       l.resetErrs,
		Retries:         l.retries,
		BreakerTrips:    l.breakerTrips,
		Regroups:        l.regroups,
	}
	if l.slo != nil {
		s.SLOViolatedTicks = l.slo.violTicks
		s.SLOOnsets = l.slo.det.Onsets()
		s.GoalSwitches = l.slo.switches
	}
	return s
}

// String renders the summary. Fault counters appear only when nonzero,
// so detailed noise-free runs render byte-identically to before.
func (s Summary) String() string {
	out := fmt.Sprintf("ticks=%d throughput=%.3f fairness=%.3f objective=%.3f",
		s.Ticks, s.MeanThroughput, s.MeanFairness, s.MeanObjective)
	if s.SampledTicks > 0 {
		out += fmt.Sprintf(" sampled=%d", s.SampledTicks)
	}
	if s.IdleTicks > 0 {
		out += fmt.Sprintf(" idle=%d", s.IdleTicks)
	}
	if s.BadSamples > 0 {
		out += fmt.Sprintf(" bad-samples=%d", s.BadSamples)
	}
	if s.SampleErrors > 0 {
		out += fmt.Sprintf(" sample-errors=%d", s.SampleErrors)
	}
	if s.ResetErrs > 0 {
		out += fmt.Sprintf(" reset-errors=%d", s.ResetErrs)
	}
	if s.Retries > 0 {
		out += fmt.Sprintf(" retries=%d", s.Retries)
	}
	if s.BreakerTrips > 0 {
		out += fmt.Sprintf(" breaker-trips=%d", s.BreakerTrips)
	}
	if s.SLOViolatedTicks > 0 || s.SLOOnsets > 0 {
		out += fmt.Sprintf(" slo-violated=%d slo-onsets=%d", s.SLOViolatedTicks, s.SLOOnsets)
	}
	if s.GoalSwitches > 0 {
		out += fmt.Sprintf(" goal-switches=%d", s.GoalSwitches)
	}
	if s.Regroups > 0 {
		out += fmt.Sprintf(" regroups=%d", s.Regroups)
	}
	return out
}
