package control

import (
	"math"
	"testing"

	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/workloads"
)

func newSimLoop(t *testing.T, sampling SamplingOptions, pol policy.Policy) *Loop {
	t.Helper()
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Options{
		Platform: sp,
		Policy:   func(rdt.Platform) (policy.Policy, error) { return pol, nil },
		Sampling: sampling,
	})
	if err != nil {
		t.Fatal(err)
	}
	return loop
}

// TestSampledRunBitIdenticalToDetailed is the core sampled-simulation
// contract: an extrapolated run observes the exact same IPS stream —
// bit for bit, including the noise draws — as a fully detailed run, so
// enabling sampling can never move a golden.
func TestSampledRunBitIdenticalToDetailed(t *testing.T) {
	detailed := newSimLoop(t, SamplingOptions{}, policy.Static{})
	sampled := newSimLoop(t, SamplingOptions{Enabled: true}, policy.Static{})
	const ticks = 400
	for i := 0; i < ticks; i++ {
		sd, err := detailed.Step()
		if err != nil {
			t.Fatal(err)
		}
		ss, err := sampled.Step()
		if err != nil {
			t.Fatal(err)
		}
		for j := range sd.IPS {
			if sd.IPS[j] != ss.IPS[j] {
				t.Fatalf("tick %d job %d: sampled IPS %v != detailed %v", i+1, j, ss.IPS[j], sd.IPS[j])
			}
		}
		if sd.Throughput != ss.Throughput || sd.Fairness != ss.Fairness {
			t.Fatalf("tick %d: sampled scores (%v, %v) != detailed (%v, %v)",
				i+1, ss.Throughput, ss.Fairness, sd.Throughput, sd.Fairness)
		}
	}
	sum := sampled.Summary()
	if sum.SampledTicks == 0 {
		t.Fatal("sampling enabled on a static phase-stable run but no tick was extrapolated")
	}
	if detailed.Summary().SampledTicks != 0 {
		t.Fatal("detailed loop reported sampled ticks")
	}
	t.Logf("extrapolated %d of %d ticks", sum.SampledTicks, ticks)
}

// TestSampledReTriggersDetailedOnChurn: a mix change (ReplaceJob) and a
// membership change (AddJob) must each knock the loop out of
// extrapolation and force at least StableTicks detailed intervals before
// sampling can resume.
func TestSampledReTriggersDetailedOnChurn(t *testing.T) {
	const k = 5
	loop := newSimLoop(t, SamplingOptions{Enabled: true, StableTicks: k}, policy.Static{})
	warmUntilSampled := func(label string) {
		t.Helper()
		for i := 0; i < 300; i++ {
			st, err := loop.Step()
			if err != nil {
				t.Fatal(err)
			}
			if st.SampledTick {
				return
			}
		}
		t.Fatalf("%s: no extrapolated tick within 300 intervals", label)
	}
	expectDetailedRun := func(label string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			st, err := loop.Step()
			if err != nil {
				t.Fatal(err)
			}
			if st.SampledTick {
				t.Fatalf("%s: tick %d after churn was extrapolated; want >= %d detailed ticks", label, i+1, n)
			}
		}
	}
	warmUntilSampled("initial")
	if err := loop.ReplaceJob(0, workloads.PARSEC()[4]); err != nil {
		t.Fatal(err)
	}
	expectDetailedRun("mix change", k)
	warmUntilSampled("after mix change")
	if err := loop.AddJob(workloads.PARSEC()[5]); err != nil {
		t.Fatal(err)
	}
	expectDetailedRun("job arrival", k)
	warmUntilSampled("after job arrival")
}

// TestSampledMaxRunForcesRevalidation: extrapolation must pause for a
// detailed tick after MaxRun consecutive sampled intervals.
func TestSampledMaxRunForcesRevalidation(t *testing.T) {
	const maxRun = 7
	loop := newSimLoop(t, SamplingOptions{Enabled: true, MaxRun: maxRun}, policy.Static{})
	run := 0
	for i := 0; i < 500; i++ {
		st, err := loop.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.SampledTick {
			run++
			if run > maxRun {
				t.Fatalf("tick %d: %d consecutive extrapolated ticks exceeds MaxRun=%d", i+1, run, maxRun)
			}
		} else {
			run = 0
		}
	}
	if loop.Summary().SampledTicks == 0 {
		t.Fatal("no extrapolated ticks at all")
	}
}

// corruptPlatform injects a corrupt observation every badEvery samples,
// modeling a wedged hardware counter or a torn resctrl read.
type corruptPlatform struct {
	*rdt.SimPlatform
	badEvery int
	badValue float64
	calls    int
}

func (c *corruptPlatform) Sample() ([]float64, error) {
	ips, err := c.SimPlatform.Sample()
	c.calls++
	if err == nil && c.badEvery > 0 && c.calls%c.badEvery == 0 && len(ips) > 0 {
		ips[0] = c.badValue
	}
	return ips, err
}

// countingPolicy counts Decide calls while holding the configuration.
type countingPolicy struct{ decides int }

func (p *countingPolicy) Name() string { return "counting" }
func (p *countingPolicy) Decide(_ policy.Observation, cur resource.Config) resource.Config {
	p.decides++
	return cur
}

// TestBadSampleRejected: non-finite or negative IPS must be flagged and
// skipped — no metric accumulation, no policy consultation, configuration
// held — instead of silently poisoning the run aggregates.
func TestBadSampleRejected(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), -3.5} {
		profiles := workloads.PARSEC()[:2]
		simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := rdt.NewSimPlatform(simulator)
		if err != nil {
			t.Fatal(err)
		}
		cp := &corruptPlatform{SimPlatform: sp, badEvery: 10, badValue: bad}
		pol := &countingPolicy{}
		loop, err := New(Options{
			Platform: cp,
			Policy:   func(rdt.Platform) (policy.Policy, error) { return pol, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		const ticks = 50
		badTicks := 0
		for i := 0; i < ticks; i++ {
			st, err := loop.Step()
			if err != nil {
				t.Fatal(err)
			}
			if st.BadSample {
				badTicks++
				if !st.Config.Equal(loop.Current()) {
					t.Fatal("bad sample changed the configuration")
				}
			} else if math.IsNaN(st.Throughput) || st.Throughput < 0 {
				t.Fatalf("bad=%v: corrupt observation leaked into scores: %v", bad, st.Throughput)
			}
		}
		sum := loop.Summary()
		if want := ticks / 10; badTicks != want || sum.BadSamples != want {
			t.Fatalf("bad=%v: flagged %d ticks, summary %d, want %d", bad, badTicks, sum.BadSamples, want)
		}
		if pol.decides != ticks-badTicks {
			t.Fatalf("bad=%v: policy consulted %d times, want %d (bad ticks skipped)", bad, pol.decides, ticks-badTicks)
		}
		if math.IsNaN(sum.MeanThroughput) || math.IsNaN(sum.MeanFairness) {
			t.Fatalf("bad=%v: summary aggregates poisoned: %+v", bad, sum)
		}
	}
}
