package control

import (
	"testing"
	"time"

	"satori/internal/metrics"
	"satori/internal/policy"
	"satori/internal/rdt"
	"satori/internal/resource"
	"satori/internal/sim"
	"satori/internal/workloads"
)

// newFaultLoop builds a loop over a sim platform wrapped in a fault
// injector running the given script.
func newFaultLoop(t *testing.T, script rdt.FaultScript, opt Options) (*Loop, *rdt.FaultInjector) {
	t.Helper()
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	script.Sleep = func(time.Duration) {} // no wall-clock in tests
	platform, err := rdt.NewFaultInjector(inner, script)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := rdt.InjectorOf(platform)
	opt.Platform = platform
	if opt.Policy == nil {
		opt.Policy = func(rdt.Platform) (policy.Policy, error) { return policy.Static{}, nil }
	}
	loop, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return loop, fi
}

// With retries disabled, every scripted fault maps 1:1 onto a loop
// counter: the Summary/Health tallies must exactly reconcile against the
// injector's ground truth.
func TestLoopFaultCountersMatchScriptExactly(t *testing.T) {
	script := rdt.FaultScript{
		Faults: []rdt.Fault{
			{Op: rdt.OpSample, Kind: rdt.FaultNaN, Call: 10},
			{Op: rdt.OpSample, Kind: rdt.FaultNegative, Call: 20},
			{Op: rdt.OpSample, Kind: rdt.FaultError, Call: 30, Repeat: 2},
			{Op: rdt.OpMeasureIsolated, Kind: rdt.FaultError, Call: 2},
			{Op: rdt.OpApply, Kind: rdt.FaultError, Call: 5, Repeat: 3},
		},
	}
	loop, fi := newFaultLoop(t, script, Options{
		BaselineResetTicks: 50,
		Resilience:         ResilienceOptions{MaxRetries: -1, BreakerThreshold: 10},
	})
	degraded, bad, rejected, resets := 0, 0, 0, 0
	for tick := 1; tick <= 120; tick++ {
		st, err := loop.Step()
		if err != nil {
			t.Fatalf("tick %d: loop crashed: %v", tick, err)
		}
		if st.Degraded {
			degraded++
			if st.SampleErr == nil || len(st.IPS) != 0 {
				t.Errorf("tick %d: degraded status inconsistent: %+v", tick, st)
			}
		}
		if st.BadSample {
			bad++
		}
		if st.RejectedApply != nil {
			rejected++
		}
		if st.ResetErr != nil {
			resets++
			if !rdt.IsTransient(st.ResetErr) {
				t.Errorf("tick %d: injected reset error not transient: %v", tick, st.ResetErr)
			}
		}
	}
	if degraded != 2 || bad != 2 || rejected != 3 || resets != 1 {
		t.Errorf("per-tick counts = degraded %d bad %d rejected %d resets %d, want 2 2 3 1",
			degraded, bad, rejected, resets)
	}
	sum := loop.Summary()
	counts := fi.Counts()
	if sum.BadSamples != counts.SampleNaNs+counts.SampleNegatives {
		t.Errorf("BadSamples = %d, injector corrupted %d", sum.BadSamples, counts.SampleNaNs+counts.SampleNegatives)
	}
	if sum.SampleErrors != counts.SampleErrors {
		t.Errorf("SampleErrors = %d, injector dropped %d", sum.SampleErrors, counts.SampleErrors)
	}
	if sum.RejectedApplies != counts.ApplyErrors {
		t.Errorf("RejectedApplies = %d, injector rejected %d", sum.RejectedApplies, counts.ApplyErrors)
	}
	if sum.ResetErrs != counts.MeasureErrors {
		t.Errorf("ResetErrs = %d, injector failed %d measurements", sum.ResetErrs, counts.MeasureErrors)
	}
	if sum.Retries != 0 || sum.BreakerTrips != 0 {
		t.Errorf("retries %d trips %d, want 0 0 (retries disabled, faults scattered)", sum.Retries, sum.BreakerTrips)
	}
	h := loop.Health()
	if h.BadSamples != sum.BadSamples || h.SampleErrors != sum.SampleErrors ||
		h.RejectedApplies != sum.RejectedApplies || h.ResetErrs != sum.ResetErrs {
		t.Errorf("Health counters %+v disagree with Summary %+v", h, sum)
	}
	if !h.Healthy() || h.ConsecutiveFailures != 0 || h.TicksSinceGoodSample != 0 || h.TicksSinceGoodApply != 0 {
		t.Errorf("loop should have fully recovered by tick 120: %+v", h)
	}
}

// Bounded retry absorbs short transient bursts: a 1-call Apply fault and
// a 2-call MeasureIsolated burst vanish behind retries, costing only the
// Retries counter — no rejected applies, no reset errors.
func TestLoopRetryAbsorbsTransientBursts(t *testing.T) {
	script := rdt.FaultScript{
		Faults: []rdt.Fault{
			{Op: rdt.OpApply, Kind: rdt.FaultError, Call: 5},
			{Op: rdt.OpMeasureIsolated, Kind: rdt.FaultError, Call: 2, Repeat: 2},
		},
	}
	var slept []time.Duration
	loop, _ := newFaultLoop(t, script, Options{
		BaselineResetTicks: 50,
		Resilience: ResilienceOptions{
			MaxRetries:  2,
			BackoffBase: time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		},
	})
	for tick := 1; tick <= 60; tick++ {
		st, err := loop.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if st.RejectedApply != nil || st.ResetErr != nil || st.Degraded {
			t.Errorf("tick %d: burst leaked through retries: %+v", tick, st)
		}
	}
	sum := loop.Summary()
	if sum.Retries != 3 || sum.RejectedApplies != 0 || sum.ResetErrs != 0 {
		t.Errorf("retries %d rejected %d resets %d, want 3 0 0", sum.Retries, sum.RejectedApplies, sum.ResetErrs)
	}
	// Backoff doubles per attempt: apply retry waits 1 ms; the measure
	// burst waits 1 ms then 2 ms.
	want := []time.Duration{time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoff sleeps = %v, want %v", slept, want)
	}
	// The apply fault fires mid-run (tick 5), after the construction-time
	// measure burst (calls 2-3).
	if slept[0] != want[0] || slept[1] != want[1] || slept[2] != want[2] {
		t.Errorf("backoff sleeps = %v, want %v", slept, want)
	}
}

// movePolicy always decides a fixed non-equal-split configuration, so a
// breaker fallback to the equal split is observable in Status.Config.
type movePolicy struct{ cfg resource.Config }

func (movePolicy) Name() string { return "move" }

func (p movePolicy) Decide(policy.Observation, resource.Config) resource.Config { return p.cfg }

// A sustained failure run must trip the circuit breaker onto the
// equal-split safe configuration, stay open while the failures continue,
// and close on the first clean tick — with the policy's configuration
// reinstated by the next decision.
func TestLoopBreakerFallsBackToEqualSplit(t *testing.T) {
	script := rdt.FaultScript{
		Faults: []rdt.Fault{{Op: rdt.OpSample, Kind: rdt.FaultError, Call: 20, Repeat: 15}},
	}
	profiles := workloads.PARSEC()[:3]
	simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := rdt.NewSimPlatform(simulator)
	if err != nil {
		t.Fatal(err)
	}
	script.Sleep = func(time.Duration) {}
	platform, err := rdt.NewFaultInjector(inner, script)
	if err != nil {
		t.Fatal(err)
	}
	equal := platform.Space().EqualSplit()
	moved := equal.Clone()
	moved.Alloc[0][0]++
	moved.Alloc[0][1]--
	if err := platform.Space().Validate(moved); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	loop, err := New(Options{
		Platform:   platform,
		Policy:     func(rdt.Platform) (policy.Policy, error) { return movePolicy{cfg: moved}, nil },
		Resilience: ResilienceOptions{BreakerThreshold: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick <= 45; tick++ {
		st, err := loop.Step()
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		h := loop.Health()
		switch {
		case tick < 20:
			if !st.Config.Equal(moved) {
				t.Errorf("tick %d: policy config not installed", tick)
			}
			if h.BreakerOpen {
				t.Errorf("tick %d: breaker open before any fault", tick)
			}
		case tick < 29: // failure run building up
			if !st.Config.Equal(moved) {
				t.Errorf("tick %d: config changed before breaker threshold", tick)
			}
			if h.ConsecutiveFailures != tick-19 {
				t.Errorf("tick %d: consecutive failures = %d, want %d", tick, h.ConsecutiveFailures, tick-19)
			}
		case tick == 29: // 10th consecutive failure: trip
			if !st.SafeFallback {
				t.Error("tick 29: SafeFallback not flagged on the tripping tick")
			}
			if !st.Config.Equal(equal) {
				t.Errorf("tick 29: config = %v, want equal split", st.Config.Alloc)
			}
			if !h.BreakerOpen || h.BreakerTrips != 1 {
				t.Errorf("tick 29: health = %+v, want breaker open after 1 trip", h)
			}
		case tick <= 34: // still failing, breaker holds
			if st.SafeFallback {
				t.Errorf("tick %d: SafeFallback re-flagged while already open", tick)
			}
			if !st.Config.Equal(equal) || !h.BreakerOpen {
				t.Errorf("tick %d: safe config not held while open", tick)
			}
		case tick == 35: // first clean tick: close, decide again
			if h.BreakerOpen || h.ConsecutiveFailures != 0 {
				t.Errorf("tick 35: breaker did not close on recovery: %+v", h)
			}
			if !st.Config.Equal(moved) {
				t.Error("tick 35: policy configuration not reinstated after recovery")
			}
		default:
			if h.BreakerOpen {
				t.Errorf("tick %d: breaker re-opened without faults", tick)
			}
		}
	}
	sum := loop.Summary()
	if sum.BreakerTrips != 1 || sum.SampleErrors != 15 {
		t.Errorf("summary = %+v, want 1 trip, 15 sample errors", sum)
	}
}

// A fault-free run through an idle injector must be byte-identical to an
// unwrapped run — the resilience machinery is inert without faults.
func TestLoopResilienceInertWithoutFaults(t *testing.T) {
	run := func(inject bool) ([]Status, Summary) {
		profiles := workloads.PARSEC()[:3]
		simulator, err := sim.New(sim.DefaultMachine(), profiles, sim.Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var platform rdt.Platform
		platform, err = rdt.NewSimPlatform(simulator)
		if err != nil {
			t.Fatal(err)
		}
		if inject {
			platform, err = rdt.NewFaultInjector(platform, rdt.FaultScript{})
			if err != nil {
				t.Fatal(err)
			}
		}
		loop, err := New(Options{
			Platform: platform,
			Policy:   func(rdt.Platform) (policy.Policy, error) { return policy.Static{}, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		var out []Status
		for tick := 1; tick <= 150; tick++ {
			st, err := loop.Step()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, st)
		}
		return out, loop.Summary()
	}
	bare, bareSum := run(false)
	wrapped, wrappedSum := run(true)
	if bareSum != wrappedSum {
		t.Errorf("summaries diverge: %+v != %+v", wrappedSum, bareSum)
	}
	for i := range bare {
		a, b := bare[i], wrapped[i]
		if a.Throughput != b.Throughput || a.Fairness != b.Fairness || a.BaselineReset != b.BaselineReset {
			t.Fatalf("tick %d: statuses diverge: %+v != %+v", i+1, b, a)
		}
		for j := range a.IPS {
			if a.IPS[j] != b.IPS[j] {
				t.Fatalf("tick %d job %d: IPS diverges", i+1, j)
			}
		}
	}
}

// Identical fault scripts must replay identically — chaos is
// deterministic by construction.
func TestLoopFaultRunDeterministic(t *testing.T) {
	run := func() Summary {
		script := rdt.FaultScript{Seed: 3, SampleErrorRate: 0.05, ApplyErrorRate: 0.05}
		loop, _ := newFaultLoop(t, script, Options{})
		for tick := 1; tick <= 200; tick++ {
			if _, err := loop.Step(); err != nil {
				t.Fatalf("tick %d: %v", tick, err)
			}
		}
		return loop.Summary()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same script diverged: %+v != %+v", a, b)
	}
	if a.SampleErrors == 0 && a.RejectedApplies == 0 && a.Retries == 0 {
		t.Error("5% fault rates injected nothing over 200 ticks — script not wired?")
	}
}

// SetObjectives swaps the goal formulas mid-run without disturbing the
// loop.
func TestLoopSetObjectives(t *testing.T) {
	loop, _ := newFaultLoop(t, rdt.FaultScript{}, Options{})
	if _, err := loop.Run(5); err != nil {
		t.Fatal(err)
	}
	loop.SetObjectives(metrics.GeoMeanSpeedup, metrics.OneMinusCoV)
	tm, fm := loop.Objectives()
	if tm != metrics.GeoMeanSpeedup || fm != metrics.OneMinusCoV {
		t.Errorf("objectives = %v/%v after switch", tm, fm)
	}
	if _, err := loop.Run(5); err != nil {
		t.Fatalf("loop unusable after goal switch: %v", err)
	}
	if loop.Summary().Ticks != 10 {
		t.Errorf("ticks = %d, want 10 (aggregates carry across the switch)", loop.Summary().Ticks)
	}
}
