package control

import (
	"time"

	"satori/internal/rdt"
)

// ResilienceOptions tunes how the loop survives platform flakiness. The
// policies only ever engage on failures marked retry-safe by the backend
// (rdt.IsTransient), so on a healthy platform every knob is inert and the
// loop's outputs are byte-identical to a build without them.
//
// Three layers, cheapest first:
//
//  1. Bounded retry with exponential backoff for transient failures of
//     the idempotent control operations — Apply, MeasureIsolated, Resync.
//     Sampling is never retried: the 100 ms interval is gone either way.
//  2. Hold-last-good-config graceful degradation: a lost or corrupt
//     observation (Status.Degraded / Status.BadSample) skips the policy
//     and keeps the installed partition; a decision the platform still
//     rejects after retries is counted and the partition likewise held.
//     The loop never crashes on a transient fault — the decision is
//     deferred, not abandoned.
//  3. A consecutive-failure circuit breaker: when BreakerThreshold ticks
//     in a row fail to land a fresh decision, the loop falls back to the
//     equal-split safe configuration — fair by construction, the paper's
//     equalization starting point — and reports BreakerOpen until a
//     clean tick closes the circuit.
type ResilienceOptions struct {
	// MaxRetries bounds in-tick retries of a transient Apply,
	// MeasureIsolated, or Resync failure (default 2; negative disables
	// retrying).
	MaxRetries int
	// BackoffBase is the pre-retry delay, doubling per attempt (default
	// 1 ms). Delays are issued through Sleep.
	BackoffBase time.Duration
	// Sleep performs backoff delays. Default nil — no waiting — keeps
	// simulated time deterministic and wall-clock free; the daemon
	// installs time.Sleep for real deployments.
	Sleep func(time.Duration)
	// BreakerThreshold is how many consecutive failed ticks trip the
	// breaker to the equal-split safe configuration (default 10;
	// negative disables the breaker).
	BreakerThreshold int
}

// fill resolves defaulted knobs (negative values disable a layer).
func (o ResilienceOptions) fill() ResilienceOptions {
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 10
	} else if o.BreakerThreshold < 0 {
		o.BreakerThreshold = 0
	}
	return o
}

// Health is the loop's liveness summary — what a daemon's /healthz and
// /status endpoints report, and what a soak test reconciles against an
// injected fault script.
type Health struct {
	// Ticks is the number of completed intervals.
	Ticks int
	// ConsecutiveFailures counts the current run of ticks that failed to
	// land a fresh decision (lost/corrupt observation or rejected apply).
	ConsecutiveFailures int
	// BreakerOpen reports the circuit breaker is tripped: the loop is
	// holding the equal-split safe configuration until a clean tick.
	BreakerOpen bool
	// BreakerTrips counts how many times the breaker has opened.
	BreakerTrips int
	// TicksSinceGoodSample is the age, in ticks, of the last accepted
	// observation (0 = this tick).
	TicksSinceGoodSample int
	// TicksSinceGoodApply is the age, in ticks, of the last tick whose
	// decision the platform accepted.
	TicksSinceGoodApply int
	// Retries counts in-tick retry attempts of transient control-path
	// failures (Apply/MeasureIsolated/Resync).
	Retries int
	// BadSamples, SampleErrors, RejectedApplies and ResetErrs mirror the
	// Summary counters of the same names.
	BadSamples, SampleErrors, RejectedApplies, ResetErrs int
}

// Healthy reports whether the loop is operating normally: breaker
// closed and no active failure run.
func (h Health) Healthy() bool { return !h.BreakerOpen && h.ConsecutiveFailures == 0 }

// Health returns the loop's current liveness summary.
func (l *Loop) Health() Health {
	return Health{
		Ticks:                l.tick,
		ConsecutiveFailures:  l.consecFail,
		BreakerOpen:          l.breakerOpen,
		BreakerTrips:         l.breakerTrips,
		TicksSinceGoodSample: l.tick - l.lastGoodSample,
		TicksSinceGoodApply:  l.tick - l.lastGoodApply,
		Retries:              l.retries,
		BadSamples:           l.badSamples,
		SampleErrors:         l.sampleErrs,
		RejectedApplies:      l.rejected,
		ResetErrs:            l.resetErrs,
	}
}

// backoff sleeps before retry attempt k (1-based) when a Sleep hook is
// installed: BackoffBase, 2·BackoffBase, 4·BackoffBase, ...
func (l *Loop) backoff(attempt int) {
	if l.resil.Sleep != nil {
		l.resil.Sleep(l.resil.BackoffBase << (attempt - 1))
	}
}

// retryTransient re-attempts op while it fails transiently, with
// exponential backoff, up to MaxRetries extra attempts. Off the sampling
// hot path — used for the idempotent control operations only.
func (l *Loop) retryTransient(op func() error) error {
	err := op()
	for attempt := 1; attempt <= l.resil.MaxRetries && rdt.IsTransient(err); attempt++ {
		l.backoff(attempt)
		l.retries++
		err = op()
	}
	return err
}

// measureIsolatedRetry measures isolated baselines with transient-retry.
func (l *Loop) measureIsolatedRetry() ([]float64, error) {
	var iso []float64
	err := l.retryTransient(func() error {
		var err error
		iso, err = l.platform.MeasureIsolated()
		return err
	})
	return iso, err
}

// noteGoodTick closes out a tick whose decision landed: the failure run
// ends and an open breaker closes.
func (l *Loop) noteGoodTick() {
	l.consecFail = 0
	l.breakerOpen = false
	l.safeInstalled = false
	l.lastGoodApply = l.tick
}

// noteFailedTick closes out a tick that failed to land a fresh decision
// (lost/corrupt observation or rejected apply). Crossing the breaker
// threshold — or remaining open with the safe config not yet installed —
// falls back to the equal-split safe configuration; st reflects the
// installed partition either way.
func (l *Loop) noteFailedTick(st *Status) {
	l.consecFail++
	if l.resil.BreakerThreshold <= 0 || l.consecFail < l.resil.BreakerThreshold {
		return
	}
	if !l.breakerOpen {
		l.breakerOpen = true
		l.breakerTrips++
	}
	if !l.safeInstalled {
		safe := l.platform.Space().EqualSplit()
		err := l.platform.Apply(safe)
		for attempt := 1; attempt <= l.resil.MaxRetries && rdt.IsTransient(err); attempt++ {
			l.backoff(attempt)
			l.retries++
			err = l.platform.Apply(safe)
		}
		if err == nil {
			l.current = l.platform.Current()
			l.safeInstalled = true
			st.SafeFallback = true
			l.resetStability()
		}
	}
	st.Config = l.current
}
