// Package metrics implements the system-throughput and fairness objectives
// from Sec. II of the SATORI paper.
//
// Throughput can be expressed as the geometric mean of co-located job
// speedups, the harmonic mean of speedups, or the raw sum of instructions
// per second (the paper's evaluation default, Sec. IV). Fairness is Jain's
// fairness index 1/(1+CoV²) (default) or the unbounded 1−CoV form; both
// are computed over the speedups relative to each job's isolated
// (co-location-free) performance.
//
// The zero value of both metric types is an explicit Default* sentinel
// that resolves to the paper's evaluation pairing (SumIPS + JainIndex).
// This keeps "unset" distinguishable from an explicit request for any
// real metric — in particular GeoMeanSpeedup and JainIndex, which would
// otherwise alias the zero value.
//
// All metric values returned by Normalized* functions lie in [0, 1] so the
// SATORI objective f(x) = W_T·T(x) + W_F·F(x) can weigh them directly.
package metrics

import (
	"fmt"

	"satori/internal/stats"
)

// ThroughputMetric selects how system throughput is aggregated.
type ThroughputMetric int

const (
	// DefaultThroughput is the zero-value sentinel: "no explicit
	// choice". It resolves to SumIPS, the paper's evaluation default
	// (Sec. IV). Real metrics start at iota+1 so an explicit
	// GeoMeanSpeedup is never mistaken for an unset field.
	DefaultThroughput ThroughputMetric = iota
	// GeoMeanSpeedup is the geometric mean of per-job speedups
	// (Π s_i)^(1/N) — the paper's primary formulation.
	GeoMeanSpeedup
	// HarmonicMeanSpeedup is the harmonic mean of per-job speedups.
	HarmonicMeanSpeedup
	// SumIPS is the sum of instructions per second across jobs, the
	// default metric in the paper's evaluation (Sec. IV).
	SumIPS
	// P99Latency scores the tail-latency headroom of the co-location's
	// latency-critical jobs: the mean of clamp(target/p99, 0, 1) over
	// jobs carrying an SLO spec (see internal/slo). Per-job latency
	// lives in the control loop's SLO tracker, so layers below the loop
	// — and co-locations with no LC jobs — fall back to SumIPS.
	P99Latency
)

// Resolve maps the DefaultThroughput sentinel to the concrete default
// metric (SumIPS); explicit choices pass through unchanged.
func (m ThroughputMetric) Resolve() ThroughputMetric {
	if m == DefaultThroughput {
		return SumIPS
	}
	return m
}

// String returns the metric's short name.
func (m ThroughputMetric) String() string {
	switch m {
	case DefaultThroughput:
		return "default(sum-ips)"
	case GeoMeanSpeedup:
		return "geomean-speedup"
	case HarmonicMeanSpeedup:
		return "harmonic-speedup"
	case SumIPS:
		return "sum-ips"
	case P99Latency:
		return "p99-latency"
	default:
		return fmt.Sprintf("ThroughputMetric(%d)", int(m))
	}
}

// FairnessMetric selects how fairness is computed from speedups.
type FairnessMetric int

const (
	// DefaultFairness is the zero-value sentinel: "no explicit choice".
	// It resolves to JainIndex, the paper's default.
	DefaultFairness FairnessMetric = iota
	// JainIndex is Jain's fairness index 1/(1+CoV²) over speedups —
	// bounded in (0, 1], 1 meaning perfectly equal slowdowns.
	JainIndex
	// OneMinusCoV is the 1−CoV fairness metric; it is 1 under perfect
	// fairness and can be negative under severe unfairness.
	OneMinusCoV
	// SLOAttainment scores the fraction of latency-critical requests
	// served within their p99 targets: the mean AttainFrac over jobs
	// carrying an SLO spec (see internal/slo). Like P99Latency the
	// latency data lives in the control loop's SLO tracker; contexts
	// without it fall back to JainIndex.
	SLOAttainment
)

// Resolve maps the DefaultFairness sentinel to the concrete default
// metric (JainIndex); explicit choices pass through unchanged.
func (m FairnessMetric) Resolve() FairnessMetric {
	if m == DefaultFairness {
		return JainIndex
	}
	return m
}

// String returns the metric's short name.
func (m FairnessMetric) String() string {
	switch m {
	case DefaultFairness:
		return "default(jain)"
	case JainIndex:
		return "jain"
	case OneMinusCoV:
		return "one-minus-cov"
	case SLOAttainment:
		return "slo-attainment"
	default:
		return fmt.Sprintf("FairnessMetric(%d)", int(m))
	}
}

// Speedups converts per-job IPS observations into speedups relative to the
// per-job isolated baselines. Jobs with a non-positive baseline yield a
// speedup of 0 (they cannot be meaningfully normalized). The two slices
// must have equal length.
func Speedups(ips, isolated []float64) []float64 {
	if len(ips) != len(isolated) {
		panic(fmt.Sprintf("metrics: Speedups length mismatch %d vs %d", len(ips), len(isolated)))
	}
	s := make([]float64, len(ips))
	for i := range ips {
		if isolated[i] > 0 {
			s[i] = ips[i] / isolated[i]
		}
	}
	return s
}

// Throughput aggregates speedups (or raw IPS for SumIPS) with the chosen
// metric. For SumIPS pass the raw per-job IPS values.
func Throughput(m ThroughputMetric, values []float64) float64 {
	switch m.Resolve() {
	case GeoMeanSpeedup:
		return stats.GeoMean(values)
	case HarmonicMeanSpeedup:
		return stats.HarmonicMean(values)
	case SumIPS, P99Latency:
		// P99Latency needs per-job latency data, which only the control
		// loop's SLO tracker holds; at this layer it degrades to the
		// SumIPS aggregation it sits next to.
		return stats.Sum(values)
	default:
		panic("metrics: unknown throughput metric")
	}
}

// Fairness computes the chosen fairness metric over speedups.
func Fairness(m FairnessMetric, speedups []float64) float64 {
	cov := stats.CoV(speedups)
	switch m.Resolve() {
	case JainIndex, SLOAttainment:
		// SLOAttainment needs per-job latency data, which only the
		// control loop's SLO tracker holds; at this layer it degrades
		// to the JainIndex it sits next to.
		return 1 / (1 + cov*cov)
	case OneMinusCoV:
		return 1 - cov
	default:
		panic("metrics: unknown fairness metric")
	}
}

// Jain computes Jain's fairness index directly from speedups.
func Jain(speedups []float64) float64 { return Fairness(JainIndex, speedups) }

// NormalizedThroughput maps a throughput observation into [0, 1] as
// required by the SATORI objective (Sec. III-B). Speedup-based metrics are
// already in (0, 1] under partitioning (isolated performance is the
// ceiling) and are clamped defensively; SumIPS is normalized against the
// sum of isolated IPS, the natural upper envelope.
func NormalizedThroughput(m ThroughputMetric, ips, isolated []float64) float64 {
	switch m := m.Resolve(); m {
	case GeoMeanSpeedup, HarmonicMeanSpeedup:
		t := Throughput(m, Speedups(ips, isolated))
		return stats.Clamp(t, 0, 1)
	case SumIPS, P99Latency:
		// See Throughput: without a latency tracker P99Latency scores
		// as SumIPS. The control loop substitutes the real headroom
		// score when LC jobs are present.
		denom := stats.Sum(isolated)
		if denom <= 0 {
			return 0
		}
		return stats.Clamp(stats.Sum(ips)/denom, 0, 1)
	default:
		panic("metrics: unknown throughput metric")
	}
}

// NormalizedFairness maps a fairness observation into [0, 1]. Jain's index
// is already bounded; 1−CoV has no lower bound and is clamped at 0 per the
// paper's normalization note in Sec. III-B.
func NormalizedFairness(m FairnessMetric, ips, isolated []float64) float64 {
	f := Fairness(m, Speedups(ips, isolated))
	return stats.Clamp(f, 0, 1)
}

// WorstSpeedup returns the minimum per-job speedup — the "worst performing
// job in a mix" quantity plotted in Fig. 9. An empty input yields 0.
func WorstSpeedup(ips, isolated []float64) float64 {
	s := Speedups(ips, isolated)
	if len(s) == 0 {
		return 0
	}
	return stats.Min(s)
}
