package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"satori/internal/stats"
)

func TestSpeedups(t *testing.T) {
	s := Speedups([]float64{50, 30}, []float64{100, 60})
	if s[0] != 0.5 || s[1] != 0.5 {
		t.Errorf("Speedups = %v, want [0.5 0.5]", s)
	}
	// Zero baseline yields zero speedup instead of Inf/NaN.
	s = Speedups([]float64{50}, []float64{0})
	if s[0] != 0 {
		t.Errorf("zero-baseline speedup = %g, want 0", s[0])
	}
}

func TestSpeedupsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Speedups([]float64{1}, []float64{1, 2})
}

func TestThroughputMetrics(t *testing.T) {
	sp := []float64{0.5, 0.5}
	if got := Throughput(GeoMeanSpeedup, sp); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("geomean = %g", got)
	}
	if got := Throughput(HarmonicMeanSpeedup, sp); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("harmonic = %g", got)
	}
	if got := Throughput(SumIPS, []float64{100, 200}); got != 300 {
		t.Errorf("sum-ips = %g", got)
	}
}

func TestJainIndexProperties(t *testing.T) {
	// Perfect fairness: all speedups equal -> Jain = 1.
	if got := Jain([]float64{0.7, 0.7, 0.7}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Jain of equal speedups = %g, want 1", got)
	}
	// Known value: speedups {1, 0} -> mean .5, std .5, CoV 1 -> Jain 0.5.
	if got := Jain([]float64{1, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jain(1,0) = %g, want 0.5", got)
	}
	// More dispersion means lower fairness.
	low := Jain([]float64{0.4, 0.6})
	high := Jain([]float64{0.49, 0.51})
	if low >= high {
		t.Errorf("Jain ordering wrong: dispersed %g >= tight %g", low, high)
	}
}

func TestJainBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(6)
		sp := make([]float64, n)
		for i := range sp {
			sp[i] = rng.Float64()
		}
		j := Jain(sp)
		return j > 0 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainScaleInvarianceProperty(t *testing.T) {
	// Jain's index depends only on relative dispersion: scaling all
	// speedups by a constant must not change it.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(6)
		sp := make([]float64, n)
		scaled := make([]float64, n)
		k := 0.5 + rng.Float64()*3
		for i := range sp {
			sp[i] = 0.1 + rng.Float64()
			scaled[i] = sp[i] * k
		}
		return math.Abs(Jain(sp)-Jain(scaled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOneMinusCoV(t *testing.T) {
	if got := Fairness(OneMinusCoV, []float64{0.5, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("1-CoV of equal = %g, want 1", got)
	}
	// CoV of {1, 0} is 1 -> metric 0; more extreme cases can go negative.
	if got := Fairness(OneMinusCoV, []float64{1, 0}); math.Abs(got) > 1e-12 {
		t.Errorf("1-CoV(1,0) = %g, want 0", got)
	}
	// Can be negative: {10, 0.1, 0.1} has CoV > 1.
	if got := Fairness(OneMinusCoV, []float64{10, 0.1, 0.1}); got >= 0 {
		t.Errorf("1-CoV of extreme dispersion = %g, want negative", got)
	}
}

func TestNormalizedThroughput(t *testing.T) {
	ips := []float64{50, 30}
	iso := []float64{100, 60}
	if got := NormalizedThroughput(GeoMeanSpeedup, ips, iso); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("normalized geomean = %g, want 0.5", got)
	}
	if got := NormalizedThroughput(SumIPS, ips, iso); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("normalized sum-ips = %g, want 0.5", got)
	}
	// Degenerate baseline.
	if got := NormalizedThroughput(SumIPS, []float64{1}, []float64{0}); got != 0 {
		t.Errorf("normalized sum-ips with zero iso = %g, want 0", got)
	}
	// Clamped at 1 even if measurement noise pushes IPS past isolation.
	if got := NormalizedThroughput(GeoMeanSpeedup, []float64{120}, []float64{100}); got != 1 {
		t.Errorf("clamping failed: %g", got)
	}
}

func TestNormalizedFairnessClamps(t *testing.T) {
	ips := []float64{100, 1, 1}
	iso := []float64{100, 100, 100}
	got := NormalizedFairness(OneMinusCoV, ips, iso)
	if got < 0 || got > 1 {
		t.Errorf("normalized 1-CoV out of range: %g", got)
	}
	if got != 0 {
		t.Errorf("extreme unfairness should clamp to 0, got %g", got)
	}
}

func TestNormalizedRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(5)
		ips := make([]float64, n)
		iso := make([]float64, n)
		for i := range ips {
			iso[i] = 10 + rng.Float64()*1000
			ips[i] = rng.Float64() * iso[i]
		}
		for _, tm := range []ThroughputMetric{GeoMeanSpeedup, HarmonicMeanSpeedup, SumIPS} {
			v := NormalizedThroughput(tm, ips, iso)
			if v < 0 || v > 1 {
				return false
			}
		}
		for _, fm := range []FairnessMetric{JainIndex, OneMinusCoV} {
			v := NormalizedFairness(fm, ips, iso)
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorstSpeedup(t *testing.T) {
	got := WorstSpeedup([]float64{90, 20, 50}, []float64{100, 100, 100})
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("WorstSpeedup = %g, want 0.2", got)
	}
	if got := WorstSpeedup(nil, nil); got != 0 {
		t.Errorf("WorstSpeedup(empty) = %g, want 0", got)
	}
}

func TestMetricStrings(t *testing.T) {
	if GeoMeanSpeedup.String() != "geomean-speedup" ||
		HarmonicMeanSpeedup.String() != "harmonic-speedup" ||
		SumIPS.String() != "sum-ips" {
		t.Error("throughput metric names wrong")
	}
	if JainIndex.String() != "jain" || OneMinusCoV.String() != "one-minus-cov" {
		t.Error("fairness metric names wrong")
	}
	if ThroughputMetric(99).String() == "" || FairnessMetric(99).String() == "" {
		t.Error("unknown metrics should still stringify")
	}
}
