package dcat

import (
	"testing"

	"satori/internal/policy"
	"satori/internal/resource"
)

func testSpace() *resource.Space {
	return resource.MustNewSpace(3,
		resource.Resource{Kind: resource.Cores, Units: 6},
		resource.Resource{Kind: resource.LLCWays, Units: 8},
		resource.Resource{Kind: resource.MemBW, Units: 6},
	)
}

// env scores configurations: throughput rises with job 0's ways (job 0 is
// the cache receiver; the others are donors).
type env struct {
	space *resource.Space
}

func (e env) observe(tick int, c resource.Config, reset bool) policy.Observation {
	ways0 := float64(c.Alloc[1][0])
	t := 0.30 + 0.04*ways0
	speedups := []float64{0.2 + 0.02*ways0, 0.5, 0.5}
	return policy.Observation{
		Tick: tick, Time: float64(tick) * 0.1,
		Speedups: speedups, Throughput: t, Fairness: 0.9,
		BaselineReset: reset,
	}
}

func TestNewRequiresLLC(t *testing.T) {
	noLLC := resource.MustNewSpace(2, resource.Resource{Kind: resource.Cores, Units: 4})
	if _, err := New(noLLC, Options{}); err == nil {
		t.Error("space without LLC accepted")
	}
	if p, err := New(testSpace(), Options{}); err != nil || p.Name() != "dcat" {
		t.Errorf("valid space rejected: %v", err)
	}
}

func TestOnlyLLCRowChanges(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := env{space: space}
	cur := space.EqualSplit()
	equal := space.EqualSplit()
	for tick := 1; tick <= 200; tick++ {
		next := p.Decide(e.observe(tick, cur, tick == 1), cur)
		if err := space.Validate(next); err != nil {
			t.Fatalf("invalid config: %v", err)
		}
		for _, row := range []int{0, 2} { // cores, mem-bw
			for j := range next.Alloc[row] {
				if next.Alloc[row][j] != equal.Alloc[row][j] {
					t.Fatalf("tick %d: dCAT changed non-LLC row %d", tick, row)
				}
			}
		}
		cur = next
	}
}

func TestClimbsTowardCacheReceiver(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := env{space: space}
	cur := space.EqualSplit()
	for tick := 1; tick <= 400; tick++ {
		cur = p.Decide(e.observe(tick, cur, tick == 1), cur)
	}
	// Job 0 should have accumulated most of the ways (donors keep the
	// 1-way floor).
	if cur.Alloc[1][0] < 5 {
		t.Errorf("job 0 ways = %d after climb, want >= 5 (alloc %v)", cur.Alloc[1][0], cur.Alloc[1])
	}
}

func TestRevertsFailedTrials(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 1, IdleEpochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Flat environment: no move ever helps; the policy must end up
	// back at (or equal to) the starting configuration and go idle.
	flat := func(tick int, c resource.Config, reset bool) policy.Observation {
		return policy.Observation{
			Tick: tick, Speedups: []float64{0.5, 0.5, 0.5},
			Throughput: 0.5, Fairness: 0.9, BaselineReset: reset,
		}
	}
	start := space.EqualSplit()
	cur := start
	for tick := 1; tick <= 300; tick++ {
		cur = p.Decide(flat(tick, cur, tick == 1), cur)
	}
	if !cur.Equal(start) {
		t.Errorf("flat environment should end at the start config, got %s", cur.Key())
	}
}

func TestBaselineResetClearsState(t *testing.T) {
	space := testSpace()
	p, err := New(space, Options{EpochTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := env{space: space}
	cur := space.EqualSplit()
	for tick := 1; tick <= 50; tick++ {
		cur = p.Decide(e.observe(tick, cur, tick == 1), cur)
	}
	// Reset mid-run: the policy must keep producing valid configs.
	for tick := 51; tick <= 120; tick++ {
		cur = p.Decide(e.observe(tick, cur, tick == 51), cur)
		if err := space.Validate(cur); err != nil {
			t.Fatalf("invalid config after reset: %v", err)
		}
	}
}
